/**
 * @file
 * Reproduces paper Table 5: breakdown of warp instructions by the
 * maximum number of accesses any single memory bank receives, for the
 * partitioned versus unified designs, averaged over the Figure 7
 * (no-benefit) benchmarks.
 *
 * Also reports, as an ablation, total runtime with and without conflict
 * penalties (DESIGN.md Section 5, item 1).
 *
 * Flags: --scale=<f> (default 0.35)
 *        --jobs=<n>  sweep worker threads
 */

#include <iostream>

#include "common/cli.hh"
#include "common/table.hh"
#include "kernels/registry.hh"
#include "mem/bank_conflicts.hh"
#include "sim/sweep.hh"

using namespace unimem;

int
main(int argc, char** argv)
{
    CliArgs args(argc, argv);
    double scale = args.getDouble("scale", 0.35);
    u32 jobs = static_cast<u32>(args.getInt("jobs", 0));

    std::cout << "=== Table 5: warp instructions by max accesses to a "
                 "single bank ===\n"
              << "(averaged across the Figure 7 no-benefit benchmarks)\n\n";

    // Four sweep points per workload: partitioned and unified, each
    // with and without conflict penalties.
    std::vector<std::string> names = noBenefitBenchmarkNames();
    std::vector<SweepJob> sweep;
    for (const std::string& name : names) {
        RunSpec p;
        sweep.push_back(makeSweepJob(name + "/part", name, scale, p));
        RunSpec u;
        u.design = DesignKind::Unified;
        sweep.push_back(makeSweepJob(name + "/uni", name, scale, u));
        p.conflictPenalties = false;
        u.conflictPenalties = false;
        sweep.push_back(
            makeSweepJob(name + "/part-nopenalty", name, scale, p));
        sweep.push_back(
            makeSweepJob(name + "/uni-nopenalty", name, scale, u));
    }
    SweepStats stats;
    std::vector<SimResult> results = runSweep(sweep, jobs, &stats);

    ConflictHistogram part, uni;
    u64 part_cycles = 0, part_cycles_np = 0;
    u64 uni_cycles = 0, uni_cycles_np = 0;

    for (size_t i = 0; i < names.size(); ++i) {
        const SimResult& rp = results[4 * i];
        part.merge(rp.sm.conflictHist);
        part_cycles += rp.cycles();

        const SimResult& ru = results[4 * i + 1];
        uni.merge(ru.sm.conflictHist);
        uni_cycles += ru.cycles();

        part_cycles_np += results[4 * i + 2].cycles();
        uni_cycles_np += results[4 * i + 3].cycles();
    }

    Table t({"design", "<=1", "2", "3", "4", ">4"});
    auto row = [&](const char* label, const ConflictHistogram& h) {
        std::vector<std::string> r{label};
        for (u32 b = 0; b < ConflictHistogram::kNumBuckets; ++b)
            r.push_back(Table::num(h.fraction(b) * 100.0, 2) + "%");
        t.addRow(r);
    };
    row("partitioned", part);
    row("unified", uni);
    t.print(std::cout);

    std::cout << "\nPaper reference: partitioned 97.0/2.7/0.09/0.14/"
                 "0.03%; unified 96.4/3.4/0.01/0.02/0.21%\n";

    std::cout << "\nAblation: conflict penalties on/off (aggregate "
                 "cycles)\n"
              << "  partitioned: " << part_cycles << " / "
              << part_cycles_np << " (overhead "
              << Table::num((static_cast<double>(part_cycles) /
                                 part_cycles_np -
                             1.0) *
                                100.0,
                            2)
              << "%)\n"
              << "  unified:     " << uni_cycles << " / " << uni_cycles_np
              << " (overhead "
              << Table::num((static_cast<double>(uni_cycles) /
                                 uni_cycles_np -
                             1.0) *
                                100.0,
                            2)
              << "%)\n"
              << "\nsweep: " << stats.summary() << "\n";
    return 0;
}
