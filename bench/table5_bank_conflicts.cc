/**
 * @file
 * Reproduces paper Table 5: breakdown of warp instructions by the
 * maximum number of accesses any single memory bank receives, for the
 * partitioned versus unified designs, averaged over the Figure 7
 * (no-benefit) benchmarks.
 *
 * Also reports, as an ablation, total runtime with and without conflict
 * penalties (DESIGN.md Section 5, item 1).
 *
 * Flags: --scale=<f> (default 0.35)
 */

#include <iostream>

#include "common/cli.hh"
#include "common/table.hh"
#include "kernels/registry.hh"
#include "mem/bank_conflicts.hh"
#include "sim/simulator.hh"

using namespace unimem;

int
main(int argc, char** argv)
{
    CliArgs args(argc, argv);
    double scale = args.getDouble("scale", 0.35);

    std::cout << "=== Table 5: warp instructions by max accesses to a "
                 "single bank ===\n"
              << "(averaged across the Figure 7 no-benefit benchmarks)\n\n";

    ConflictHistogram part, uni;
    u64 part_cycles = 0, part_cycles_np = 0;
    u64 uni_cycles = 0, uni_cycles_np = 0;

    for (const std::string& name : noBenefitBenchmarkNames()) {
        RunSpec p;
        SimResult rp = simulateBenchmark(name, scale, p);
        part.merge(rp.sm.conflictHist);
        part_cycles += rp.cycles();

        RunSpec u;
        u.design = DesignKind::Unified;
        SimResult ru = simulateBenchmark(name, scale, u);
        uni.merge(ru.sm.conflictHist);
        uni_cycles += ru.cycles();

        p.conflictPenalties = false;
        u.conflictPenalties = false;
        part_cycles_np += simulateBenchmark(name, scale, p).cycles();
        uni_cycles_np += simulateBenchmark(name, scale, u).cycles();
    }

    Table t({"design", "<=1", "2", "3", "4", ">4"});
    auto row = [&](const char* label, const ConflictHistogram& h) {
        std::vector<std::string> r{label};
        for (u32 b = 0; b < ConflictHistogram::kNumBuckets; ++b)
            r.push_back(Table::num(h.fraction(b) * 100.0, 2) + "%");
        t.addRow(r);
    };
    row("partitioned", part);
    row("unified", uni);
    t.print(std::cout);

    std::cout << "\nPaper reference: partitioned 97.0/2.7/0.09/0.14/"
                 "0.03%; unified 96.4/3.4/0.01/0.02/0.21%\n";

    std::cout << "\nAblation: conflict penalties on/off (aggregate "
                 "cycles)\n"
              << "  partitioned: " << part_cycles << " / "
              << part_cycles_np << " (overhead "
              << Table::num((static_cast<double>(part_cycles) /
                                 part_cycles_np -
                             1.0) *
                                100.0,
                            2)
              << "%)\n"
              << "  unified:     " << uni_cycles << " / " << uni_cycles_np
              << " (overhead "
              << Table::num((static_cast<double>(uni_cycles) /
                                 uni_cycles_np -
                             1.0) *
                                100.0,
                            2)
              << "%)\n";
    return 0;
}
