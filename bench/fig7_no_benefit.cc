/**
 * @file
 * Reproduces paper Figure 7: performance and energy of the 384 KB
 * unified design normalized to the equal-capacity partitioned baseline
 * for the 18 applications that do not benefit from unified storage.
 * The paper's claim: every delta is within ~1%.
 *
 * Supports the RF-hierarchy ablation (DESIGN.md Section 5, item 2):
 *   --no-rf-hierarchy   run both designs without the ORF/LRF
 * Flags: --scale=<f> (default 0.35)
 */

#include <iostream>

#include "common/cli.hh"
#include "common/table.hh"
#include "kernels/registry.hh"
#include "sim/experiments.hh"

using namespace unimem;

int
main(int argc, char** argv)
{
    CliArgs args(argc, argv);
    double scale = args.getDouble("scale", 0.35);
    bool rf = !args.getBool("no-rf-hierarchy", false);

    std::cout << "=== Figure 7: unified (384KB) vs partitioned, "
                 "no-benefit applications ===\n"
              << "(perf > 1 is better, energy < 1 is better; paper: all "
                 "within ~1%)"
              << (rf ? "" : "  [ABLATION: RF hierarchy disabled]")
              << "\n\n";

    Table t({"workload", "norm perf", "norm energy", "perf delta"});
    double worst_perf = 1.0, worst_energy = 1.0;
    double sum_perf = 0.0, sum_energy = 0.0;
    int n = 0;

    for (const std::string& name : noBenefitBenchmarkNames()) {
        RunSpec pspec;
        pspec.rfHierarchy = rf;
        SimResult base = simulateBenchmark(name, scale, pspec);

        RunSpec uspec;
        uspec.design = DesignKind::Unified;
        uspec.unifiedCapacity = 384_KB;
        uspec.rfHierarchy = rf;
        SimResult uni = simulateBenchmark(name, scale, uspec);

        Comparison c = compare(uni, base);
        t.addRow({name, Table::num(c.speedup, 3),
                  Table::num(c.energyRatio, 3),
                  Table::num((c.speedup - 1.0) * 100.0, 2) + "%"});
        worst_perf = std::min(worst_perf, c.speedup);
        worst_energy = std::max(worst_energy, c.energyRatio);
        sum_perf += c.speedup;
        sum_energy += c.energyRatio;
        ++n;
    }
    t.print(std::cout);

    std::cout << "\nsummary: mean perf " << Table::num(sum_perf / n, 3)
              << ", mean energy " << Table::num(sum_energy / n, 3)
              << ", worst perf " << Table::num(worst_perf, 3)
              << ", worst energy " << Table::num(worst_energy, 3) << "\n"
              << "paper: largest perf/energy change < 1% (worst energy "
                 "+0.9% on nn); mean energy -0.06%\n";
    return 0;
}
