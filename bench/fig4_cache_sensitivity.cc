/**
 * @file
 * Reproduces paper Figure 4: performance as a function of primary cache
 * capacity (registers sized to eliminate spills, unbounded scratchpad)
 * for bfs / pcr / gpu-mummer / needle. Lines are thread counts
 * (256..1024), points are cache capacities (0..512 KB). Normalized to
 * the 512 KB / 1024-thread point.
 *
 * Flags: --scale=<f> (default 0.5)
 */

#include <iostream>

#include "common/cli.hh"
#include "common/table.hh"
#include "sim/simulator.hh"

using namespace unimem;

int
main(int argc, char** argv)
{
    CliArgs args(argc, argv);
    double scale = args.getDouble("scale", 0.5);

    std::cout << "=== Figure 4: performance vs cache capacity ===\n"
              << "(no spills, unbounded scratchpad; normalized to 512KB "
                 "cache @ 1024 threads)\n";

    const u64 cache_points[] = {0_KB, 32_KB, 64_KB, 128_KB, 256_KB,
                                512_KB};

    for (const char* name : {"bfs", "pcr", "gpu-mummer", "needle"}) {
        std::cout << "\n--- " << name << " ---\n";

        RunSpec ref;
        ref.partition = MemoryPartition{256_KB, 1_MB, 512_KB};
        double ref_cycles = static_cast<double>(
            simulateBenchmark(name, scale, ref).cycles());

        Table t({"threads", "0", "32K", "64K", "128K", "256K", "512K"});
        for (u32 limit = 256; limit <= kMaxThreadsPerSm; limit += 256) {
            std::vector<std::string> row{std::to_string(limit)};
            for (u64 cache : cache_points) {
                RunSpec spec = ref;
                spec.partition.cacheBytes = cache;
                spec.threadLimit = limit;
                SimResult r = simulateBenchmark(name, scale, spec);
                row.push_back(Table::num(
                    ref_cycles / static_cast<double>(r.cycles()), 3));
            }
            t.addRow(row);
        }
        t.print(std::cout);
    }

    std::cout << "\nExpected shape (paper): bfs and pcr gain strongly "
                 "with cache (pcr has a 256KB->512KB knee); gpu-mummer "
                 "saturates around its ~72KB working set; needle is "
                 "nearly flat.\n";
    return 0;
}
