/**
 * @file
 * Tracked performance benchmark of the simulator itself (host wall-clock,
 * not modeled cycles). Three phases, each timed over --repeat runs:
 *
 *   fig8      the full Figure 8 sweep (partitioned baseline + unified
 *             point per benefit application) through the parallel sweep
 *             engine
 *   autotune  the thread-limit autotuner plus Fermi best-of-two over the
 *             benefit set - heavy result-cache reuse of fig8's points
 *   kernel    one kernel simulated end to end with the result cache off,
 *             reported as simulated warp-instructions and cycles per
 *             wall second (raw SmModel throughput)
 *   chip      an 8-SM bound-weave chip co-simulation of sgemv, reported
 *             as aggregate simulated SM-cycles per wall second (the
 *             parallel chip engine's throughput; workers come from
 *             UNIMEM_CHIP_JOBS)
 *
 * The fig8+autotune composite (sum of phase totals) is the number
 * scripts/bench.sh compares across commits. Results are emitted as JSON
 * (default BENCH_results.json) so CI can archive them per commit.
 *
 * Flags: --scale=<f>    workload scale (default 0.1)
 *        --jobs=<n>     sweep workers (default UNIMEM_JOBS or all cores)
 *        --repeat=<n>   timed repetitions per phase (default 3, or
 *                       UNIMEM_BENCH_REPEAT — raise it on noisy 1-CPU
 *                       containers where frequency drift between runs
 *                       swamps 3-rep totals)
 *        --kernel=<s>   kernel-phase benchmark (default dgemm)
 *        --kernel-irr=<s>  irregular-kernel phase benchmark (default
 *                       bfs; input-dependent footprints, so the rate
 *                       tracks the uncached conflict/coalescing path
 *                       rather than regular-stencil replay)
 *        --kernel-only  run only the dgemm kernel phase (profiling
 *                       mode for scripts/bench.sh --profile; other
 *                       phases report zero and no gate runs)
 *        --out=<path>   JSON output path (default BENCH_results.json)
 *        --no-cache     disable the result cache for the sweep phases
 *        --smoke        CI quick mode (scale 0.05, 1 repetition)
 *        --gate=<path>  regression gate: compare this run's
 *                       kernel_sim_cycles_per_s,
 *                       kernel_irr_sim_cycles_per_s and
 *                       chip_sim_cycles_per_s against the baseline
 *                       JSON at <path> and exit non-zero if any
 *                       dropped by more than 25%. Rates are comparable
 *                       across --scale settings (unlike phase totals),
 *                       so the CI smoke run can gate against the
 *                       committed full-scale BENCH_results.json. A
 *                       baseline that predates the chip or irregular
 *                       phase skips that check. Override with
 *                       UNIMEM_BENCH_NO_GATE=1 (e.g. on a loaded or
 *                       slower machine). The baseline is read before
 *                       the run, so --gate and --out may name the same
 *                       file.
 *
 * Throughput rates are computed from each phase's *best* repetition,
 * not the total: on shared or frequency-scaled hosts the slow reps
 * measure the machine, the best rep measures the simulator, and the
 * cross-commit ratio scripts/bench.sh --compare reports is stable only
 * for the latter. Sweep phases additionally time one *cold* repetition
 * with the result cache disabled (cold_s in the JSON); the composite
 * is the sum of cold times, so it measures simulation, not memo
 * replay. Warm totals remain in composite_warm_s / total_s.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <iterator>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.hh"
#include "common/log.hh"
#include "kernels/registry.hh"
#include "sched/occupancy.hh"
#include "sim/experiments.hh"
#include "sim/sweep.hh"
#include "sm/chip.hh"

// The harness is deliberately portable to commits that predate the
// result cache, so scripts/bench.sh --compare can drop this exact file
// into an older worktree and time the same composite.
#if __has_include("sim/result_cache.hh")
#include "sim/result_cache.hh"
#define UNIMEM_HAVE_RESULT_CACHE 1
#else
#define UNIMEM_HAVE_RESULT_CACHE 0
#endif

using namespace unimem;

namespace {

bool
cacheEnabled()
{
#if UNIMEM_HAVE_RESULT_CACHE
    return resultCache().enabled();
#else
    return false;
#endif
}

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** Wall seconds per repetition plus cache counter deltas for one phase. */
struct PhaseResult
{
    std::string name;
    std::vector<double> secs;
    /** One repetition with the result cache off; < 0 when not timed. */
    double coldS = -1.0;
    u64 memoHits = 0;
    u64 memoMisses = 0;

    double
    total() const
    {
        return std::accumulate(secs.begin(), secs.end(), 0.0);
    }

    double
    best() const
    {
        return *std::min_element(secs.begin(), secs.end());
    }
};

template <typename Body>
PhaseResult
timedPhase(const std::string& name, int repeat, Body&& body)
{
    PhaseResult r;
    r.name = name;
#if UNIMEM_HAVE_RESULT_CACHE
    u64 hits0 = resultCache().hits();
    u64 misses0 = resultCache().misses();
#endif
    for (int i = 0; i < repeat; ++i) {
        Clock::time_point start = Clock::now();
        body();
        r.secs.push_back(secondsSince(start));
    }
#if UNIMEM_HAVE_RESULT_CACHE
    r.memoHits = resultCache().hits() - hits0;
    r.memoMisses = resultCache().misses() - misses0;
#endif
    std::cout << "  " << name << ": total " << r.total() << " s over "
              << repeat << " rep(s), best " << r.best() << " s, memo "
              << r.memoHits << " hit / " << r.memoMisses << " miss\n";
    return r;
}

/**
 * timedPhase preceded by one cold repetition with the result cache
 * forced off. Reps 2..n of a memoizing phase are pure replay (best_s
 * collapses to the cache-probe time, ~1e-5 s), so the warm numbers
 * track reuse while cold_s tracks what a first run actually simulates.
 * Without the result cache every rep is cold and the extra rep is just
 * one more sample.
 */
template <typename Body>
PhaseResult
timedPhaseColdWarm(const std::string& name, int repeat, Body&& body)
{
    double cold;
    {
#if UNIMEM_HAVE_RESULT_CACHE
        ScopedResultCacheDisable off;
#endif
        Clock::time_point start = Clock::now();
        body();
        cold = secondsSince(start);
    }
    std::cout << "  " << name << ": cold " << cold << " s\n";
    PhaseResult r = timedPhase(name, repeat, body);
    r.coldS = cold;
    return r;
}

/** Placeholder for a phase skipped in --kernel-only mode. */
PhaseResult
skippedPhase(const std::string& name)
{
    PhaseResult r;
    r.name = name;
    r.secs.push_back(0.0);
    return r;
}

std::vector<SweepJob>
fig8Jobs(const std::vector<std::string>& names, double scale)
{
    std::vector<SweepJob> jobs;
    jobs.reserve(2 * names.size());
    for (const std::string& name : names) {
        jobs.push_back(
            makeSweepJob(name + "/baseline", name, scale, RunSpec{}));
        RunSpec uni;
        uni.design = DesignKind::Unified;
        uni.unifiedCapacity = 384_KB;
        jobs.push_back(makeSweepJob(name + "/unified", name, scale, uni));
    }
    return jobs;
}

void
appendPhaseJson(std::ostringstream& os, const PhaseResult& r)
{
    os << "    {\"name\": \"" << r.name << "\", \"reps\": "
       << r.secs.size() << ", \"total_s\": " << r.total()
       << ", \"best_s\": " << r.best();
    if (r.coldS >= 0.0)
        os << ", \"cold_s\": " << r.coldS;
    os << ", \"secs\": [";
    for (size_t i = 0; i < r.secs.size(); ++i)
        os << (i ? ", " : "") << r.secs[i];
    os << "], \"memo_hits\": " << r.memoHits
       << ", \"memo_misses\": " << r.memoMisses << "}";
}

/**
 * Pull one numeric field out of a bench JSON blob. The harness writes
 * flat numeric fields with a fixed "key": value layout, so a targeted
 * scan beats dragging in a JSON parser dependency.
 */
bool
extractJsonNumber(const std::string& text, const std::string& key,
                  double* out)
{
    std::string needle = "\"" + key + "\": ";
    size_t pos = text.find(needle);
    if (pos == std::string::npos)
        return false;
    return std::sscanf(text.c_str() + pos + needle.size(), "%lf", out) ==
           1;
}

} // namespace

int
main(int argc, char** argv)
{
    CliArgs args(argc, argv);
    bool smoke = args.getBool("smoke", false);
    bool kernelOnly = args.getBool("kernel-only", false);
    double scale = args.getDouble("scale", smoke ? 0.05 : 0.1);
    u32 jobs = static_cast<u32>(args.getInt("jobs", 0));
    int repeatDefault = smoke ? 1 : 3;
    if (const char* env = std::getenv("UNIMEM_BENCH_REPEAT")) {
        int v = std::atoi(env);
        if (v >= 1)
            repeatDefault = v;
    }
    int repeat = static_cast<int>(args.getInt("repeat", repeatDefault));
    std::string kernelName = args.getString("kernel", "dgemm");
    std::string kernelIrrName = args.getString("kernel-irr", "bfs");
    std::string outPath = args.getString("out", "BENCH_results.json");
    std::string gatePath = args.getString("gate", "");

    // Snapshot the gate baselines before the run so --gate may point at
    // the very file --out is about to overwrite. The chip rate is
    // optional: baselines written before the chip phase existed simply
    // skip that check.
    double gateBaseline = 0.0;
    double gateChipBaseline = 0.0;
    double gateIrrBaseline = 0.0;
    if (!gatePath.empty()) {
        std::ifstream gin(gatePath);
        std::string text((std::istreambuf_iterator<char>(gin)),
                         std::istreambuf_iterator<char>());
        if (!gin.good() && text.empty())
            fatal("perf_harness: cannot read --gate=%s",
                  gatePath.c_str());
        if (!extractJsonNumber(text, "kernel_sim_cycles_per_s",
                               &gateBaseline) ||
            gateBaseline <= 0.0)
            fatal("perf_harness: no kernel_sim_cycles_per_s in %s",
                  gatePath.c_str());
        if (!extractJsonNumber(text, "chip_sim_cycles_per_s",
                               &gateChipBaseline))
            gateChipBaseline = 0.0;
        if (!extractJsonNumber(text, "kernel_irr_sim_cycles_per_s",
                               &gateIrrBaseline))
            gateIrrBaseline = 0.0;
    }
#if UNIMEM_HAVE_RESULT_CACHE
    if (args.getBool("no-cache", false))
        resultCache().setEnabled(false);
#endif
    if (repeat < 1)
        fatal("perf_harness: --repeat must be >= 1");
    if (!findBenchmark(kernelName))
        fatal("perf_harness: unknown --kernel=%s", kernelName.c_str());
    if (!findBenchmark(kernelIrrName))
        fatal("perf_harness: unknown --kernel-irr=%s",
              kernelIrrName.c_str());

    std::vector<std::string> names = benefitBenchmarkNames();
    std::cout << "=== Simulator perf harness (scale " << scale
              << ", repeat " << repeat << ", cache "
              << (cacheEnabled() ? "on" : "off") << ") ===\n";

    // Phase 1: the Figure 8 sweep, the heaviest single harness.
    u32 workersUsed = 0;
    PhaseResult fig8 =
        kernelOnly ? skippedPhase("fig8")
                   : timedPhaseColdWarm("fig8", repeat, [&] {
                         SweepStats stats;
                         runSweep(fig8Jobs(names, scale), jobs, &stats);
                         workersUsed = stats.workers;
                     });

    // Phase 2: autotuner + Fermi best-of, which re-probe many fig8
    // points (this is where the result cache pays off across harnesses).
    PhaseResult autotune =
        kernelOnly ? skippedPhase("autotune")
                   : timedPhaseColdWarm("autotune", repeat, [&] {
                         for (const std::string& name : names) {
                             runUnifiedAutotuned(name, scale, 384_KB);
                             runFermiBest(name, scale, 384_KB);
                         }
                     });

    // Phase 3: raw single-kernel throughput with memoization off, so
    // the number tracks SmModel speed rather than cache hit rate.
    u64 kWarpInstrs = 0;
    u64 kCycles = 0;
    PhaseResult kernel = timedPhase("kernel", repeat, [&] {
#if UNIMEM_HAVE_RESULT_CACHE
        ScopedResultCacheDisable off;
#endif
        SimResult res = simulateBenchmark(kernelName, scale, RunSpec{});
        kWarpInstrs = res.sm.warpInstrs;
        kCycles = res.sm.cycles;
    });
    double kInstrsPerSec =
        static_cast<double>(kWarpInstrs) / kernel.best();
    double kCyclesPerSec = static_cast<double>(kCycles) / kernel.best();

    // Phase 3b: same measurement over an irregular kernel. bfs's
    // footprints are input-dependent, so nearly every issue walks the
    // uncached conflict/coalescing path — the rate most sensitive to
    // the inner-loop data layout, where dgemm amortizes via the
    // footprint cache.
    u64 kIrrWarpInstrs = 0;
    u64 kIrrCycles = 0;
    PhaseResult kernelIrr =
        kernelOnly ? skippedPhase("kernel_irr")
                   : timedPhase("kernel_irr", repeat, [&] {
#if UNIMEM_HAVE_RESULT_CACHE
                         ScopedResultCacheDisable off;
#endif
                         SimResult res = simulateBenchmark(
                             kernelIrrName, scale, RunSpec{});
                         kIrrWarpInstrs = res.sm.warpInstrs;
                         kIrrCycles = res.sm.cycles;
                     });
    double kIrrInstrsPerSec =
        kernelOnly
            ? 0.0
            : static_cast<double>(kIrrWarpInstrs) / kernelIrr.best();
    double kIrrCyclesPerSec =
        kernelOnly ? 0.0
                   : static_cast<double>(kIrrCycles) / kernelIrr.best();

    // Phase 4: chip-level bound-weave throughput. The rate is aggregate
    // per-SM simulated cycles per wall second, so it credits parallel
    // bound-phase speedup directly. Deliberately only touches ChipConfig
    // fields present since the seed (workers come from the
    // UNIMEM_CHIP_JOBS environment variable, read inside ChipModel) so
    // scripts/bench.sh --compare can drop this file into old worktrees.
    const std::string chipKernelName = "sgemv"; // memory-bound: DRAM-heavy
    u64 chipSmCycles = 0;
    u64 chipWarpInstrs = 0;
    PhaseResult chip =
        kernelOnly ? skippedPhase("chip")
                   : timedPhase("chip", repeat, [&] {
                         auto k = createBenchmark(chipKernelName, scale);
                         ChipConfig cc;
                         cc.numSms = 8;
                         cc.sm.launch = occupancyPartitioned(
                             k->params(), cc.sm.partition.rfBytes,
                             cc.sm.partition.sharedBytes);
                         cc.chipDramBytesPerCycle =
                             cc.numSms * cc.sm.dramBytesPerCycle;
                         ChipModel model(cc, *k);
                         const ChipStats& cs = model.run();
                         chipSmCycles = 0;
                         for (const SmStats& s : cs.sms)
                             chipSmCycles += s.cycles;
                         chipWarpInstrs = cs.warpInstrs();
                     });
    double chipCyclesPerSec =
        kernelOnly ? 0.0
                   : static_cast<double>(chipSmCycles) / chip.best();
    double chipInstrsPerSec =
        kernelOnly ? 0.0
                   : static_cast<double>(chipWarpInstrs) / chip.best();

    // Composite from the cold reps when they were timed (cache on):
    // that is the simulate-everything-once cost a fresh checkout pays.
    // With --no-cache there are no separate cold reps; fall back to the
    // best warm rep, which is equally cold.
    double compositeFig8 = fig8.coldS >= 0.0 ? fig8.coldS : fig8.best();
    double compositeAuto =
        autotune.coldS >= 0.0 ? autotune.coldS : autotune.best();
    double composite = compositeFig8 + compositeAuto;
    double compositeWarm = fig8.total() + autotune.total();
    std::cout << "\ncomposite (fig8+autotune, cold): " << composite
              << " s (warm total " << compositeWarm << " s) at "
              << workersUsed << " worker(s)\n"
              << "kernel throughput (" << kernelName << "): "
              << kInstrsPerSec << " warp-instrs/s, " << kCyclesPerSec
              << " sim-cycles/s\n"
              << "irregular kernel throughput (" << kernelIrrName
              << "): " << kIrrInstrsPerSec << " warp-instrs/s, "
              << kIrrCyclesPerSec << " sim-cycles/s\n"
              << "chip throughput (" << chipKernelName << ", 8 SMs): "
              << chipInstrsPerSec << " warp-instrs/s, "
              << chipCyclesPerSec << " agg-SM-cycles/s\n";

    std::ostringstream os;
    os << "{\n"
       << "  \"schema\": \"unimem-bench-2\",\n"
       << "  \"scale\": " << scale << ",\n"
       << "  \"repeat\": " << repeat << ",\n"
       << "  \"workers\": " << workersUsed << ",\n"
       << "  \"cache_enabled\": "
       << (cacheEnabled() ? "true" : "false") << ",\n"
       << "  \"composite_s\": " << composite << ",\n"
       << "  \"composite_warm_s\": " << compositeWarm << ",\n"
       << "  \"phases\": [\n";
    appendPhaseJson(os, fig8);
    os << ",\n";
    appendPhaseJson(os, autotune);
    os << ",\n";
    appendPhaseJson(os, kernel);
    os << ",\n";
    appendPhaseJson(os, kernelIrr);
    os << ",\n";
    appendPhaseJson(os, chip);
    os << "\n  ],\n"
       << "  \"kernel_benchmark\": \"" << kernelName << "\",\n"
       << "  \"kernel_warp_instrs_per_s\": " << kInstrsPerSec << ",\n"
       << "  \"kernel_sim_cycles_per_s\": " << kCyclesPerSec << ",\n"
       << "  \"kernel_irr_benchmark\": \"" << kernelIrrName << "\",\n"
       << "  \"kernel_irr_warp_instrs_per_s\": " << kIrrInstrsPerSec
       << ",\n"
       << "  \"kernel_irr_sim_cycles_per_s\": " << kIrrCyclesPerSec
       << ",\n"
       << "  \"chip_benchmark\": \"" << chipKernelName << "\",\n"
       << "  \"chip_warp_instrs_per_s\": " << chipInstrsPerSec << ",\n"
       << "  \"chip_sim_cycles_per_s\": " << chipCyclesPerSec << "\n"
       << "}\n";

    std::ofstream out(outPath);
    if (!out)
        fatal("perf_harness: cannot write %s", outPath.c_str());
    out << os.str();
    std::cout << "wrote " << outPath << "\n";

    if (!gatePath.empty() && !kernelOnly) {
        auto gateCheck = [&gatePath](const char* key, double current,
                                     double baseline) {
            double ratio = current / baseline;
            std::cout << "gate: " << key << " " << current
                      << " vs baseline " << baseline << " (" << gatePath
                      << ") -> " << ratio << "x\n";
            if (ratio >= 0.75)
                return true;
            const char* no_gate = std::getenv("UNIMEM_BENCH_NO_GATE");
            if (no_gate != nullptr && no_gate[0] == '1') {
                std::cout << "gate: regression > 25% but "
                             "UNIMEM_BENCH_NO_GATE=1, passing\n";
                return true;
            }
            std::cerr << "gate: FAIL - " << key
                      << " regressed by more than 25% (set "
                         "UNIMEM_BENCH_NO_GATE=1 to override)\n";
            return false;
        };
        bool ok = gateCheck("kernel_sim_cycles_per_s", kCyclesPerSec,
                            gateBaseline);
        if (gateIrrBaseline > 0.0)
            ok &= gateCheck("kernel_irr_sim_cycles_per_s",
                            kIrrCyclesPerSec, gateIrrBaseline);
        else
            std::cout << "gate: baseline has no "
                         "kernel_irr_sim_cycles_per_s, skipping "
                         "irregular check\n";
        if (gateChipBaseline > 0.0)
            ok &= gateCheck("chip_sim_cycles_per_s", chipCyclesPerSec,
                            gateChipBaseline);
        else
            std::cout << "gate: baseline has no chip_sim_cycles_per_s, "
                         "skipping chip check\n";
        if (!ok)
            return 1;
    }
    return 0;
}
