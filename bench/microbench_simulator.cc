/**
 * @file
 * Host-side microbenchmarks (google-benchmark) of the simulator itself:
 * end-to-end simulation throughput for representative kernels and the
 * hot primitives (coalescer, cache probes, conflict evaluation).
 */

#include <sstream>

#include <benchmark/benchmark.h>

#include "arch/trace_io.hh"
#include "core/conflict_model.hh"
#include "kernels/registry.hh"
#include "mem/cache.hh"
#include "mem/coalescer.hh"
#include "sim/simulator.hh"
#include "sm/chip.hh"

namespace unimem {
namespace {

void
BM_SimulateKernel(benchmark::State& state, const char* name,
                  DesignKind design)
{
    u64 instrs = 0;
    for (auto _ : state) {
        RunSpec spec;
        spec.design = design;
        SimResult r = simulateBenchmark(name, 0.1, spec);
        instrs += r.sm.warpInstrs;
        benchmark::DoNotOptimize(r.cycles());
    }
    state.counters["warp_instrs_per_s"] = benchmark::Counter(
        static_cast<double>(instrs), benchmark::Counter::kIsRate);
}

void
BM_Coalescer(benchmark::State& state)
{
    WarpInstr in = instr::mem(Opcode::LdGlobal, 1, 0);
    for (u32 lane = 0; lane < kWarpWidth; ++lane)
        in.addr[lane] = static_cast<Addr>(lane) * state.range(0);
    for (auto _ : state)
        benchmark::DoNotOptimize(coalesce(in));
}

void
BM_CacheProbe(benchmark::State& state)
{
    DataCache cache(static_cast<u64>(state.range(0)));
    u64 line = 0;
    for (auto _ : state) {
        Addr a = (line++ % 4096) * kCacheLineBytes;
        if (!cache.read(a))
            cache.fill(a);
    }
}

void
BM_ConflictEvaluate(benchmark::State& state)
{
    ConflictModel model(static_cast<DesignKind>(state.range(0)));
    WarpInstr in = instr::mem(Opcode::LdShared, 1, 0);
    for (u32 lane = 0; lane < kWarpWidth; ++lane)
        in.addr[lane] = static_cast<Addr>(lane) * 36;
    u8 banks[3] = {0, 2};
    for (auto _ : state)
        benchmark::DoNotOptimize(model.evaluate(in, banks, 2));
}

void
BM_ChipSimulate(benchmark::State& state)
{
    u32 sms = static_cast<u32>(state.range(0));
    u64 instrs = 0;
    for (auto _ : state) {
        auto k = createBenchmark("sgemv", 0.1);
        ChipConfig cc;
        cc.numSms = sms;
        cc.chipDramBytesPerCycle = sms * 8;
        cc.sm.partition = baselinePartition();
        cc.sm.launch = occupancyPartitioned(
            k->params(), cc.sm.partition.rfBytes,
            cc.sm.partition.sharedBytes);
        ChipModel chip(cc, *k);
        instrs += chip.run().warpInstrs();
    }
    state.counters["warp_instrs_per_s"] = benchmark::Counter(
        static_cast<double>(instrs), benchmark::Counter::kIsRate);
}

void
BM_TraceRoundTrip(benchmark::State& state)
{
    auto k = createBenchmark("sgemv", 0.05);
    for (auto _ : state) {
        std::stringstream ss;
        writeTrace(*k, ss);
        TraceFileKernel loaded(ss);
        benchmark::DoNotOptimize(loaded.numWarps());
    }
}

BENCHMARK_CAPTURE(BM_SimulateKernel, vectoradd_partitioned, "vectoradd",
                  DesignKind::Partitioned);
BENCHMARK_CAPTURE(BM_SimulateKernel, vectoradd_unified, "vectoradd",
                  DesignKind::Unified);
BENCHMARK_CAPTURE(BM_SimulateKernel, needle_unified, "needle",
                  DesignKind::Unified);
BENCHMARK_CAPTURE(BM_SimulateKernel, dgemm_partitioned, "dgemm",
                  DesignKind::Partitioned);
BENCHMARK(BM_Coalescer)->Arg(4)->Arg(16)->Arg(128);
BENCHMARK(BM_CacheProbe)->Arg(64 << 10)->Arg(384 << 10);
BENCHMARK(BM_ConflictEvaluate)
    ->Arg(static_cast<int>(DesignKind::Partitioned))
    ->Arg(static_cast<int>(DesignKind::Unified));
BENCHMARK(BM_ChipSimulate)->Arg(4)->Arg(8);
BENCHMARK(BM_TraceRoundTrip);

} // namespace
} // namespace unimem

BENCHMARK_MAIN();
