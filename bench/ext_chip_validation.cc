/**
 * @file
 * EXTENSION: validates paper Section 5.1's methodological simplification
 * - "we model execution for the full application running on a single SM
 * and allocate 8 bytes per cycle of DRAM bandwidth, making the
 * simplifying assumption that the global DRAM bandwidth is evenly
 * shared among all 32 SMs ... without sacrificing accuracy."
 *
 * For several benchmarks we compare the single-SM methodology against a
 * chip-level co-simulation in which N SMs (default 8 for speed;
 * --sms=32 for the full chip) share one DRAM channel of N x 8 B/cycle,
 * and report the per-SM runtime discrepancy. We also show what happens
 * when chip bandwidth does NOT scale with SM count (contention).
 *
 * Flags: --scale=<f> (default 0.2), --sms=<n> (default 8),
 *        --chip-jobs=<n> bound-phase workers (default:
 *        UNIMEM_CHIP_JOBS or hardware concurrency; any value gives
 *        identical results), --quantum=<c> (default 64)
 */

#include <iostream>

#include "common/cli.hh"
#include "common/table.hh"
#include "kernels/registry.hh"
#include "sim/simulator.hh"
#include "sm/chip.hh"

using namespace unimem;

int
main(int argc, char** argv)
{
    CliArgs args(argc, argv);
    double scale = args.getDouble("scale", 0.2);
    u32 sms = static_cast<u32>(args.getInt("sms", 8));
    u32 jobs = static_cast<u32>(args.getInt("chip-jobs", 0));
    Cycle quantum = static_cast<Cycle>(args.getInt("quantum", 64));

    std::cout << "=== EXTENSION: single-SM methodology vs chip-level "
                 "co-simulation (" << sms << " SMs, "
              << ChipModel::resolveWorkerCount(jobs, sms)
              << " bound-weave workers, quantum " << quantum
              << ") ===\n\n";

    Table t({"workload", "single-SM cycles", "chip max-SM cycles",
             "error", "imbalance", "chip @ half bandwidth",
             "weave reqs", "windows"});
    for (const char* name :
         {"vectoradd", "sgemv", "bfs", "hotspot", "needle"}) {
        auto k = createBenchmark(name, scale);
        SmRunConfig cfg;
        cfg.partition = baselinePartition();
        cfg.launch =
            occupancyPartitioned(k->params(), cfg.partition.rfBytes,
                                 cfg.partition.sharedBytes);

        SmStats single = runKernel(cfg, *k);

        ChipConfig fair;
        fair.numSms = sms;
        fair.chipDramBytesPerCycle = sms * cfg.dramBytesPerCycle;
        fair.workers = jobs;
        fair.quantum = quantum;
        fair.sm = cfg;
        auto kf = createBenchmark(name, scale);
        ChipModel chip(fair, *kf);
        const ChipStats& cs = chip.run();

        ChipConfig half = fair;
        half.chipDramBytesPerCycle = fair.chipDramBytesPerCycle / 2;
        auto kh = createBenchmark(name, scale);
        ChipModel chip_half(half, *kh);
        Cycle half_cycles = chip_half.run().cycles;

        double err = static_cast<double>(cs.maxSmCycles()) /
                         static_cast<double>(single.cycles) -
                     1.0;
        double imb = static_cast<double>(cs.maxSmCycles()) /
                         static_cast<double>(cs.minSmCycles()) -
                     1.0;
        t.addRow({name, std::to_string(single.cycles),
                  std::to_string(cs.maxSmCycles()),
                  Table::num(err * 100.0, 1) + "%",
                  Table::num(imb * 100.0, 1) + "%",
                  Table::num(static_cast<double>(half_cycles) /
                                 static_cast<double>(cs.cycles),
                             2) +
                      "x",
                  std::to_string(cs.weaveRequests),
                  std::to_string(cs.windows)});
    }
    t.print(std::cout);

    std::cout << "\nExpected: small single-SM methodology error "
                 "(validating the paper's simplification) and clear "
                 "slowdown when chip bandwidth does not scale with SM "
                 "count.\n";
    return 0;
}
