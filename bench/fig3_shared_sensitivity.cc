/**
 * @file
 * Reproduces paper Figure 3: performance versus scratchpad (shared
 * memory) capacity for needle / pcr / lu / sto, with 64 registers per
 * thread and a 64 KB cache. Each point raises the thread count; the
 * x-value is the scratchpad the launch consumes. Normalized to 1024
 * threads (or the maximum the kernel reaches).
 *
 * Flags: --scale=<f> (default 0.5)
 */

#include <iostream>

#include "common/cli.hh"
#include "common/table.hh"
#include "sim/simulator.hh"

using namespace unimem;

int
main(int argc, char** argv)
{
    CliArgs args(argc, argv);
    double scale = args.getDouble("scale", 0.5);

    std::cout << "=== Figure 3: performance vs scratchpad capacity ===\n"
              << "(64 regs/thread, 64KB cache; normalized to the "
                 "1024-thread point)\n";

    for (const char* name : {"needle", "pcr", "lu", "sto"}) {
        std::cout << "\n--- " << name << " ---\n";

        RunSpec ref;
        ref.partition = MemoryPartition{1_MB, 1_MB, 64_KB};
        ref.regsOverride = 64;
        double ref_cycles = static_cast<double>(
            simulateBenchmark(name, scale, ref).cycles());

        Table t({"threads", "shared KB", "norm perf"});
        u32 step = std::string(name) == "needle" ? 128 : 256;
        u32 last_threads = 0;
        for (u32 limit = step; limit <= kMaxThreadsPerSm; limit += step) {
            RunSpec spec = ref;
            spec.threadLimit = limit;
            SimResult r = simulateBenchmark(name, scale, spec);
            if (r.alloc.launch.threads == last_threads)
                continue;
            last_threads = r.alloc.launch.threads;
            t.addRow({std::to_string(r.alloc.launch.threads),
                      Table::num(static_cast<double>(
                                     r.alloc.launch.sharedBytes) /
                                     1024.0,
                                 1),
                      Table::num(ref_cycles /
                                     static_cast<double>(r.cycles()),
                                 3)});
        }
        t.print(std::cout);
    }

    std::cout << "\nExpected shape (paper): needle needs >200KB for full "
                 "occupancy; pcr peaks with only ~20KB; lu wants more "
                 "scratchpad than today's 64KB; sto performs well with "
                 "few threads.\n";
    return 0;
}
