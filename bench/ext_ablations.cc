/**
 * @file
 * EXTENSION: ablations of the design choices DESIGN.md Section 5 calls
 * out, beyond the ones embedded in the figure benches.
 *
 *  1. Cache write policy: the paper's write-through/no-allocate versus
 *     write-back/write-allocate on single kernels (Section 4.3/4.4
 *     motivates write-through with repartitioning; this shows the
 *     standalone performance/traffic differences too).
 *  2. RF hierarchy: MRF access reduction and its effect on the unified
 *     design (the paper's "key enabler", Sections 2.1 and 6.1).
 *  3. Two-level scheduler active set size (prior work used 8).
 *  4. Thread-count autotuning versus the Section 4.5 maximum-threads
 *     rule (the paper notes some applications prefer fewer threads).
 *  5. Power gating unneeded capacity (the conclusion's future-work
 *     idea: "disabling unneeded memory").
 *
 * Flags: --scale=<f> (default 0.35)
 *        --jobs=<n>  sweep worker threads
 */

#include <iostream>

#include "common/cli.hh"
#include "common/table.hh"
#include "kernels/registry.hh"
#include "sim/experiments.hh"
#include "sim/sweep.hh"

using namespace unimem;

namespace {

/** Paired A/B sweep: per name, run both specs and return the results. */
std::vector<SimResult>
pairedSweep(const std::vector<const char*>& names, const RunSpec& a,
            const RunSpec& b, double scale, u32 jobs)
{
    std::vector<SweepJob> sweep;
    for (const char* name : names) {
        sweep.push_back(makeSweepJob(std::string(name) + "/a", name,
                                     scale, a));
        sweep.push_back(makeSweepJob(std::string(name) + "/b", name,
                                     scale, b));
    }
    return runSweep(sweep, jobs);
}

void
writePolicyAblation(double scale, u32 jobs)
{
    std::cout << "--- 1. cache write policy (unified 384KB) ---\n";
    Table t({"workload", "WT cycles", "WB cycles", "WB/WT perf",
             "WT dram", "WB dram", "WB dirty lines at end"});
    std::vector<const char*> names{"vectoradd", "srad", "bfs", "lps",
                                   "nn"};
    RunSpec wt;
    wt.design = DesignKind::Unified;
    RunSpec wb = wt;
    wb.cachePolicy = WritePolicy::WriteBack;
    std::vector<SimResult> results =
        pairedSweep(names, wt, wb, scale, jobs);
    for (size_t i = 0; i < names.size(); ++i) {
        const char* name = names[i];
        const SimResult& rt = results[2 * i];
        const SimResult& rb = results[2 * i + 1];
        t.addRow({name, std::to_string(rt.cycles()),
                  std::to_string(rb.cycles()),
                  Table::num(static_cast<double>(rt.cycles()) /
                                 static_cast<double>(rb.cycles()),
                             3),
                  std::to_string(rt.dramSectors()),
                  std::to_string(rb.dramSectors()),
                  std::to_string(rb.sm.dirtyLinesAtEnd)});
    }
    t.print(std::cout);
    std::cout << "(write-back can reduce DRAM writes for streaming "
                 "stores but leaves dirty state that repartitioning "
                 "must drain - see ext_multi_kernel)\n\n";
}

void
rfHierarchyAblation(double scale, u32 jobs)
{
    std::cout << "--- 2. register file hierarchy (unified 384KB) ---\n";
    Table t({"workload", "MRF reduction", "perf with/without",
             "conflict cycles with/without"});
    std::vector<const char*> names{"dgemm", "pcr", "aes", "needle"};
    RunSpec with;
    with.design = DesignKind::Unified;
    RunSpec without = with;
    without.rfHierarchy = false;
    std::vector<SimResult> results =
        pairedSweep(names, with, without, scale, jobs);
    for (size_t i = 0; i < names.size(); ++i) {
        const char* name = names[i];
        const SimResult& rw = results[2 * i];
        const SimResult& rwo = results[2 * i + 1];
        t.addRow({name, Table::num(rw.sm.rf.reduction() * 100.0, 1) + "%",
                  Table::num(static_cast<double>(rwo.cycles()) /
                                 static_cast<double>(rw.cycles()),
                             3),
                  std::to_string(rw.sm.conflictPenaltyCycles) + " / " +
                      std::to_string(rwo.sm.conflictPenaltyCycles)});
    }
    t.print(std::cout);
    std::cout << "(prior work [9] reports ~60% MRF access reduction)\n\n";
}

void
activeSetAblation(double scale, u32 jobs)
{
    std::cout << "--- 3. two-level scheduler active set size ---\n";
    Table t({"workload", "4", "8 (paper)", "16", "32 (flat)"});
    std::vector<const char*> names{"bfs", "dgemm", "vectoradd"};
    const u32 sizes[] = {4u, 8u, 16u, 32u};
    std::vector<SweepJob> sweep;
    for (const char* name : names) {
        for (u32 size : sizes) {
            RunSpec spec;
            spec.activeSetSize = size;
            sweep.push_back(makeSweepJob(
                std::string(name) + "/as" + std::to_string(size), name,
                scale, spec));
        }
    }
    std::vector<SimResult> results = runSweep(sweep, jobs);
    for (size_t i = 0; i < names.size(); ++i) {
        // The size-8 point doubles as the normalization reference.
        double base = static_cast<double>(results[4 * i + 1].cycles());
        std::vector<std::string> row{names[i]};
        for (size_t j = 0; j < 4; ++j)
            row.push_back(Table::num(
                base / static_cast<double>(results[4 * i + j].cycles()),
                3));
        t.addRow(row);
    }
    t.print(std::cout);
    std::cout << "(normalized to the 8-warp active set; larger sets "
                 "schedule more warps but let fewer values live in the "
                 "ORF/LRF in a real machine)\n\n";
}

void
autotuneAblation(double scale, u32 jobs)
{
    std::cout << "--- 4. Section 4.5 max-threads vs autotuned thread "
                 "count (unified 384KB) ---\n";
    Table t({"workload", "max threads", "autotuned threads",
             "autotune gain"});
    std::vector<std::string> names = benefitBenchmarkNames();
    std::vector<SweepJob> sweep;
    for (const std::string& name : names) {
        SweepJob maxJob;
        maxJob.label = name + "/max-threads";
        maxJob.run = [name, scale] {
            return runUnified(name, scale, 384_KB);
        };
        sweep.push_back(maxJob);
        SweepJob tunedJob;
        tunedJob.label = name + "/autotuned";
        tunedJob.run = [name, scale] {
            return runUnifiedAutotuned(name, scale, 384_KB);
        };
        sweep.push_back(tunedJob);
    }
    std::vector<SimResult> results = runSweep(sweep, jobs);
    for (size_t i = 0; i < names.size(); ++i) {
        const std::string& name = names[i];
        const SimResult& maxed = results[2 * i];
        const SimResult& tuned = results[2 * i + 1];
        t.addRow({name, std::to_string(maxed.alloc.launch.threads),
                  std::to_string(tuned.alloc.launch.threads),
                  Table::num(static_cast<double>(maxed.cycles()) /
                                 static_cast<double>(tuned.cycles()),
                             3)});
    }
    t.print(std::cout);
    std::cout << "(the paper notes some applications run best below "
                 "maximum occupancy and suggests autotuning)\n\n";
}

void
powerGatingAblation(double scale)
{
    std::cout << "--- 5. power gating unneeded capacity (conclusion's "
                 "future work) ---\n";
    Table t({"workload", "384KB perf", "smallest cap within 2%",
             "gated energy ratio"});
    for (const char* name : {"vectoradd", "aes", "sto", "hotspot",
                             "dct8x8"}) {
        SimResult base = runBaseline(name, scale);
        SimResult full = runUnified(name, scale, 384_KB);
        // Find the smallest capacity whose runtime is within 2%.
        u64 best_cap = 384_KB;
        SimResult best = full;
        for (u64 cap = 352_KB;; cap -= 32_KB) {
            auto k = createBenchmark(name, scale);
            if (!allocateUnified(k->params(), cap).launch.feasible)
                break;
            SimResult r = runUnified(name, scale, cap);
            if (static_cast<double>(r.cycles()) >
                static_cast<double>(full.cycles()) * 1.02)
                break;
            best_cap = cap;
            best = r;
            if (cap == 32_KB)
                break;
        }
        double e_full = energyOf(full, base);
        double e_gated = energyOf(best, base);
        t.addRow({name,
                  Table::num(static_cast<double>(base.cycles()) /
                                 static_cast<double>(full.cycles()),
                             3),
                  std::to_string(best_cap / 1024) + " KB",
                  Table::num(e_gated / e_full, 3)});
    }
    t.print(std::cout);
    std::cout << "(disabling SRAM a workload cannot use saves leakage "
                 "at no performance cost)\n";
}

} // namespace

int
main(int argc, char** argv)
{
    CliArgs args(argc, argv);
    double scale = args.getDouble("scale", 0.35);
    u32 jobs = static_cast<u32>(args.getInt("jobs", 0));

    std::cout << "=== EXTENSION: design-choice ablations ===\n\n";
    writePolicyAblation(scale, jobs);
    rfHierarchyAblation(scale, jobs);
    activeSetAblation(scale, jobs);
    autotuneAblation(scale, jobs);
    // Each capacity step depends on the previous one's runtime (early
    // exit), so the power-gating sweep stays serial.
    powerGatingAblation(scale);
    return 0;
}
