/**
 * @file
 * EXTENSION: ablations of the design choices DESIGN.md Section 5 calls
 * out, beyond the ones embedded in the figure benches.
 *
 *  1. Cache write policy: the paper's write-through/no-allocate versus
 *     write-back/write-allocate on single kernels (Section 4.3/4.4
 *     motivates write-through with repartitioning; this shows the
 *     standalone performance/traffic differences too).
 *  2. RF hierarchy: MRF access reduction and its effect on the unified
 *     design (the paper's "key enabler", Sections 2.1 and 6.1).
 *  3. Two-level scheduler active set size (prior work used 8).
 *  4. Thread-count autotuning versus the Section 4.5 maximum-threads
 *     rule (the paper notes some applications prefer fewer threads).
 *  5. Power gating unneeded capacity (the conclusion's future-work
 *     idea: "disabling unneeded memory").
 *
 * Flags: --scale=<f> (default 0.35)
 */

#include <iostream>

#include "common/cli.hh"
#include "common/table.hh"
#include "kernels/registry.hh"
#include "sim/experiments.hh"

using namespace unimem;

namespace {

void
writePolicyAblation(double scale)
{
    std::cout << "--- 1. cache write policy (unified 384KB) ---\n";
    Table t({"workload", "WT cycles", "WB cycles", "WB/WT perf",
             "WT dram", "WB dram", "WB dirty lines at end"});
    for (const char* name : {"vectoradd", "srad", "bfs", "lps", "nn"}) {
        RunSpec wt;
        wt.design = DesignKind::Unified;
        RunSpec wb = wt;
        wb.cachePolicy = WritePolicy::WriteBack;
        SimResult rt = simulateBenchmark(name, scale, wt);
        SimResult rb = simulateBenchmark(name, scale, wb);
        t.addRow({name, std::to_string(rt.cycles()),
                  std::to_string(rb.cycles()),
                  Table::num(static_cast<double>(rt.cycles()) /
                                 static_cast<double>(rb.cycles()),
                             3),
                  std::to_string(rt.dramSectors()),
                  std::to_string(rb.dramSectors()),
                  std::to_string(rb.sm.dirtyLinesAtEnd)});
    }
    t.print(std::cout);
    std::cout << "(write-back can reduce DRAM writes for streaming "
                 "stores but leaves dirty state that repartitioning "
                 "must drain - see ext_multi_kernel)\n\n";
}

void
rfHierarchyAblation(double scale)
{
    std::cout << "--- 2. register file hierarchy (unified 384KB) ---\n";
    Table t({"workload", "MRF reduction", "perf with/without",
             "conflict cycles with/without"});
    for (const char* name : {"dgemm", "pcr", "aes", "needle"}) {
        RunSpec with;
        with.design = DesignKind::Unified;
        RunSpec without = with;
        without.rfHierarchy = false;
        SimResult rw = simulateBenchmark(name, scale, with);
        SimResult rwo = simulateBenchmark(name, scale, without);
        t.addRow({name, Table::num(rw.sm.rf.reduction() * 100.0, 1) + "%",
                  Table::num(static_cast<double>(rwo.cycles()) /
                                 static_cast<double>(rw.cycles()),
                             3),
                  std::to_string(rw.sm.conflictPenaltyCycles) + " / " +
                      std::to_string(rwo.sm.conflictPenaltyCycles)});
    }
    t.print(std::cout);
    std::cout << "(prior work [9] reports ~60% MRF access reduction)\n\n";
}

void
activeSetAblation(double scale)
{
    std::cout << "--- 3. two-level scheduler active set size ---\n";
    Table t({"workload", "4", "8 (paper)", "16", "32 (flat)"});
    for (const char* name : {"bfs", "dgemm", "vectoradd"}) {
        RunSpec ref;
        ref.activeSetSize = 8;
        double base = static_cast<double>(
            simulateBenchmark(name, scale, ref).cycles());
        std::vector<std::string> row{name};
        for (u32 size : {4u, 8u, 16u, 32u}) {
            RunSpec spec;
            spec.activeSetSize = size;
            SimResult r = simulateBenchmark(name, scale, spec);
            row.push_back(Table::num(
                base / static_cast<double>(r.cycles()), 3));
        }
        t.addRow(row);
    }
    t.print(std::cout);
    std::cout << "(normalized to the 8-warp active set; larger sets "
                 "schedule more warps but let fewer values live in the "
                 "ORF/LRF in a real machine)\n\n";
}

void
autotuneAblation(double scale)
{
    std::cout << "--- 4. Section 4.5 max-threads vs autotuned thread "
                 "count (unified 384KB) ---\n";
    Table t({"workload", "max threads", "autotuned threads",
             "autotune gain"});
    for (const std::string& name : benefitBenchmarkNames()) {
        SimResult maxed = runUnified(name, scale, 384_KB);
        SimResult tuned = runUnifiedAutotuned(name, scale, 384_KB);
        t.addRow({name, std::to_string(maxed.alloc.launch.threads),
                  std::to_string(tuned.alloc.launch.threads),
                  Table::num(static_cast<double>(maxed.cycles()) /
                                 static_cast<double>(tuned.cycles()),
                             3)});
    }
    t.print(std::cout);
    std::cout << "(the paper notes some applications run best below "
                 "maximum occupancy and suggests autotuning)\n\n";
}

void
powerGatingAblation(double scale)
{
    std::cout << "--- 5. power gating unneeded capacity (conclusion's "
                 "future work) ---\n";
    Table t({"workload", "384KB perf", "smallest cap within 2%",
             "gated energy ratio"});
    for (const char* name : {"vectoradd", "aes", "sto", "hotspot",
                             "dct8x8"}) {
        SimResult base = runBaseline(name, scale);
        SimResult full = runUnified(name, scale, 384_KB);
        // Find the smallest capacity whose runtime is within 2%.
        u64 best_cap = 384_KB;
        SimResult best = full;
        for (u64 cap = 352_KB;; cap -= 32_KB) {
            auto k = createBenchmark(name, scale);
            if (!allocateUnified(k->params(), cap).launch.feasible)
                break;
            SimResult r = runUnified(name, scale, cap);
            if (static_cast<double>(r.cycles()) >
                static_cast<double>(full.cycles()) * 1.02)
                break;
            best_cap = cap;
            best = r;
            if (cap == 32_KB)
                break;
        }
        double e_full = energyOf(full, base);
        double e_gated = energyOf(best, base);
        t.addRow({name,
                  Table::num(static_cast<double>(base.cycles()) /
                                 static_cast<double>(full.cycles()),
                             3),
                  std::to_string(best_cap / 1024) + " KB",
                  Table::num(e_gated / e_full, 3)});
    }
    t.print(std::cout);
    std::cout << "(disabling SRAM a workload cannot use saves leakage "
                 "at no performance cost)\n";
}

} // namespace

int
main(int argc, char** argv)
{
    CliArgs args(argc, argv);
    double scale = args.getDouble("scale", 0.35);

    std::cout << "=== EXTENSION: design-choice ablations ===\n\n";
    writePolicyAblation(scale);
    rfHierarchyAblation(scale);
    activeSetAblation(scale);
    autotuneAblation(scale);
    powerGatingAblation(scale);
    return 0;
}
