/**
 * @file
 * Reproduces paper Figure 9: performance, energy, and DRAM traffic of
 * the 384 KB unified design normalized to the equal-capacity partitioned
 * baseline, for the eight applications that benefit.
 *
 * Paper: performance +4.2%..+70.8% (avg +16.2%), DRAM traffic -1%..-32%
 * for all but dgemm, energy -2.8%..-33%.
 *
 * Ablation: --no-rf-hierarchy runs both designs without the ORF/LRF
 * (DESIGN.md Section 5, item 2 - the hierarchy is the key enabler).
 * Flags: --scale=<f> (default 0.5)
 *        --jobs=<n>  sweep worker threads
 */

#include <iostream>

#include "common/cli.hh"
#include "common/table.hh"
#include "kernels/registry.hh"
#include "sim/experiments.hh"
#include "sim/sweep.hh"

using namespace unimem;

int
main(int argc, char** argv)
{
    CliArgs args(argc, argv);
    double scale = args.getDouble("scale", 0.5);
    bool rf = !args.getBool("no-rf-hierarchy", false);
    u32 jobs = static_cast<u32>(args.getInt("jobs", 0));

    std::cout << "=== Figure 9: unified (384KB) vs partitioned, benefit "
                 "applications ===\n"
              << "(perf > 1 better; energy, dram < 1 better)"
              << (rf ? "" : "  [ABLATION: RF hierarchy disabled]")
              << "\n\n";

    std::vector<std::string> names = benefitBenchmarkNames();
    std::vector<SweepJob> sweep;
    for (const std::string& name : names) {
        double s = name == "dgemm" ? std::max(scale, 0.75) : scale;

        RunSpec pspec;
        pspec.rfHierarchy = rf;
        sweep.push_back(makeSweepJob(name + "/baseline", name, s, pspec));

        RunSpec uspec;
        uspec.design = DesignKind::Unified;
        uspec.unifiedCapacity = 384_KB;
        uspec.rfHierarchy = rf;
        sweep.push_back(makeSweepJob(name + "/unified", name, s, uspec));
    }
    SweepStats stats;
    std::vector<SimResult> results = runSweep(sweep, jobs, &stats);

    Table t({"workload", "norm perf", "norm energy", "norm dram",
             "threads part->uni"});
    double sum = 0.0;
    int n = 0;
    for (size_t i = 0; i < names.size(); ++i) {
        const SimResult& base = results[2 * i];
        const SimResult& uni = results[2 * i + 1];
        Comparison c = compare(uni, base);
        t.addRow({names[i], Table::num(c.speedup, 3),
                  Table::num(c.energyRatio, 3),
                  Table::num(c.dramRatio, 3),
                  std::to_string(base.alloc.launch.threads) + " -> " +
                      std::to_string(uni.alloc.launch.threads)});
        sum += c.speedup;
        ++n;
    }
    t.print(std::cout);
    std::cout << "\naverage speedup: " << Table::num(sum / n, 3)
              << "  (paper: 1.162; range 1.042..1.708)\n"
              << "sweep: " << stats.summary() << "\n";
    return 0;
}
