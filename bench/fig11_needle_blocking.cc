/**
 * @file
 * Reproduces paper Figure 11: needle performance as a function of
 * scratchpad capacity for blocking factors 16 / 32 / 64. Each point
 * raises the thread count; performance is normalized to the best
 * configuration measured. Larger blocking factors need quadratically
 * more scratchpad per thread but fewer barriers and less redundant
 * border traffic (paper Section 6.5).
 *
 * Flags: --scale=<f> (default 0.5)
 */

#include <algorithm>
#include <iostream>
#include <vector>

#include "common/cli.hh"
#include "common/table.hh"
#include "kernels/workloads.hh"
#include "sim/simulator.hh"

using namespace unimem;

int
main(int argc, char** argv)
{
    CliArgs args(argc, argv);
    double scale = args.getDouble("scale", 0.5);

    std::cout << "=== Figure 11: needle blocking factor vs scratchpad "
                 "capacity ===\n"
              << "(64KB cache; performance normalized to the fastest "
                 "point; x = scratchpad consumed)\n";

    struct Point
    {
        u32 bf;
        u32 threads;
        double shared_kb;
        double cycles;
    };
    std::vector<Point> points;

    for (u32 bf : {16u, 32u, 64u}) {
        auto kernel = makeNeedle(bf, scale);
        u32 step = std::max(128u, kernel->params().ctaThreads);
        u32 last_threads = 0;
        for (u32 limit = step; limit <= kMaxThreadsPerSm; limit += step) {
            RunSpec spec;
            spec.partition = MemoryPartition{1_MB, 1_MB, 64_KB};
            spec.threadLimit = limit;
            auto k = makeNeedle(bf, scale);
            AllocationDecision d = resolveAllocation(k->params(), spec);
            if (!d.launch.feasible ||
                d.launch.threads == last_threads)
                continue;
            last_threads = d.launch.threads;
            SimResult r = simulate(*k, spec);
            points.push_back(
                {bf, r.alloc.launch.threads,
                 static_cast<double>(r.alloc.launch.sharedBytes) / 1024.0,
                 static_cast<double>(r.cycles())});
        }
    }

    double best = points[0].cycles;
    for (const Point& p : points)
        best = std::min(best, p.cycles);

    for (u32 bf : {16u, 32u, 64u}) {
        std::cout << "\n--- blocking factor " << bf << " ---\n";
        Table t({"threads", "shared KB", "norm perf"});
        for (const Point& p : points)
            if (p.bf == bf)
                t.addRow({std::to_string(p.threads),
                          Table::num(p.shared_kb, 1),
                          Table::num(best / p.cycles, 3)});
        t.print(std::cout);
    }

    std::cout << "\nExpected shape (paper): BF=16 tops out lowest; BF=32 "
                 "is the best point when ~64KB of scratchpad is "
                 "available; BF=64 wins once >300KB is available and "
                 "needs fewer threads.\n";
    return 0;
}
