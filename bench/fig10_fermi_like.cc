/**
 * @file
 * Reproduces paper Figure 10: the Fermi-like limited-flexibility design
 * (fixed 256 KB register file; scratchpad/cache pool split 96/32 or
 * 32/96, best option chosen per application) normalized to the
 * partitioned baseline, for the benefit applications.
 *
 * Paper: 1%-20% gains, below the fully unified design for all but
 * gpu-mummer.
 *
 * Flags: --scale=<f> (default 0.5)
 *        --jobs=<n>  sweep worker threads
 */

#include <iostream>

#include "common/cli.hh"
#include "common/table.hh"
#include "kernels/registry.hh"
#include "sim/experiments.hh"
#include "sim/sweep.hh"

using namespace unimem;

int
main(int argc, char** argv)
{
    CliArgs args(argc, argv);
    double scale = args.getDouble("scale", 0.5);
    u32 jobs = static_cast<u32>(args.getInt("jobs", 0));

    std::cout << "=== Figure 10: Fermi-like limited design (384KB) vs "
                 "partitioned ===\n"
              << "(best of 96KB shared + 32KB cache / 32KB shared + 96KB "
                 "cache; unified shown for comparison)\n\n";

    // Three points per workload; the Fermi-like point is a composite
    // best-of-two that nests its own (serialized) sweep.
    std::vector<std::string> names = benefitBenchmarkNames();
    std::vector<SweepJob> sweep;
    for (const std::string& name : names) {
        double s = name == "dgemm" ? std::max(scale, 0.75) : scale;
        SweepJob baseJob;
        baseJob.label = name + "/baseline";
        baseJob.run = [name, s] { return runBaseline(name, s); };
        sweep.push_back(baseJob);
        SweepJob fermiJob;
        fermiJob.label = name + "/fermi-best";
        fermiJob.run = [name, s] { return runFermiBest(name, s, 384_KB); };
        sweep.push_back(fermiJob);
        SweepJob uniJob;
        uniJob.label = name + "/unified";
        uniJob.run = [name, s] { return runUnified(name, s, 384_KB); };
        sweep.push_back(uniJob);
    }
    SweepStats stats;
    std::vector<SimResult> results = runSweep(sweep, jobs, &stats);

    Table t({"workload", "fermi perf", "fermi energy", "fermi dram",
             "unified perf", "fermi shared/cache"});
    for (size_t i = 0; i < names.size(); ++i) {
        const std::string& name = names[i];
        const SimResult& base = results[3 * i];
        const SimResult& fermi = results[3 * i + 1];
        const SimResult& uni = results[3 * i + 2];

        Comparison cf = compare(fermi, base);
        Comparison cu = compare(uni, base);
        t.addRow({name, Table::num(cf.speedup, 3),
                  Table::num(cf.energyRatio, 3),
                  Table::num(cf.dramRatio, 3), Table::num(cu.speedup, 3),
                  std::to_string(fermi.alloc.partition.sharedBytes /
                                 1024) +
                      "/" +
                      std::to_string(fermi.alloc.partition.cacheBytes /
                                     1024) +
                      " KB"});
    }
    t.print(std::cout);

    std::cout << "\nExpected shape (paper): Fermi-like gains 1-20%, "
                 "generally below the fully unified design.\n"
              << "sweep: " << stats.summary() << "\n";
    return 0;
}
