/**
 * @file
 * Reproduces paper Figure 10: the Fermi-like limited-flexibility design
 * (fixed 256 KB register file; scratchpad/cache pool split 96/32 or
 * 32/96, best option chosen per application) normalized to the
 * partitioned baseline, for the benefit applications.
 *
 * Paper: 1%-20% gains, below the fully unified design for all but
 * gpu-mummer.
 *
 * Flags: --scale=<f> (default 0.5)
 */

#include <iostream>

#include "common/cli.hh"
#include "common/table.hh"
#include "kernels/registry.hh"
#include "sim/experiments.hh"

using namespace unimem;

int
main(int argc, char** argv)
{
    CliArgs args(argc, argv);
    double scale = args.getDouble("scale", 0.5);

    std::cout << "=== Figure 10: Fermi-like limited design (384KB) vs "
                 "partitioned ===\n"
              << "(best of 96KB shared + 32KB cache / 32KB shared + 96KB "
                 "cache; unified shown for comparison)\n\n";

    Table t({"workload", "fermi perf", "fermi energy", "fermi dram",
             "unified perf", "fermi shared/cache"});
    for (const std::string& name : benefitBenchmarkNames()) {
        double s = name == "dgemm" ? std::max(scale, 0.75) : scale;

        SimResult base = runBaseline(name, s);
        SimResult fermi = runFermiBest(name, s, 384_KB);
        SimResult uni = runUnified(name, s, 384_KB);

        Comparison cf = compare(fermi, base);
        Comparison cu = compare(uni, base);
        t.addRow({name, Table::num(cf.speedup, 3),
                  Table::num(cf.energyRatio, 3),
                  Table::num(cf.dramRatio, 3), Table::num(cu.speedup, 3),
                  std::to_string(fermi.alloc.partition.sharedBytes /
                                 1024) +
                      "/" +
                      std::to_string(fermi.alloc.partition.cacheBytes /
                                     1024) +
                      " KB"});
    }
    t.print(std::cout);

    std::cout << "\nExpected shape (paper): Fermi-like gains 1-20%, "
                 "generally below the fully unified design.\n";
    return 0;
}
