/**
 * @file
 * EXTENSION (paper Section 4.4): per-kernel repartitioning for
 * multi-kernel applications.
 *
 * The paper argues that reconfiguring the unified memory before each
 * kernel launch is essentially free because the write-through cache has
 * no dirty state. This harness quantifies that claim: three realistic
 * kernel sequences run under (a) the partitioned baseline, (b) a single
 * static unified split sized for the whole application's worst-case
 * demands, and (c) Section 4.5 repartitioning before every kernel -
 * with both the paper's write-through cache and the write-back
 * alternative whose dirty lines must drain at every repartition.
 *
 * Flags: --scale=<f> (default 0.35)
 */

#include <iostream>

#include "common/cli.hh"
#include "common/table.hh"
#include "sim/multi_kernel.hh"

using namespace unimem;

int
main(int argc, char** argv)
{
    CliArgs args(argc, argv);
    double s = args.getDouble("scale", 0.35);

    struct App
    {
        const char* name;
        std::vector<KernelStage> stages;
    };
    const App apps[] = {
        {"image-pipeline",
         {{"srad", s}, {"hotspot", s}, {"recursivegaussian", s}}},
        {"graph-analytics", {{"bfs", s}, {"gpu-mummer", s}, {"nn", s}}},
        {"linear-algebra", {{"dgemm", s}, {"sgemv", s}, {"pcr", s}}},
        {"mixed-demands", {{"needle", s}, {"bfs", s}, {"dgemm", s}}},
    };

    std::cout << "=== EXTENSION: multi-kernel applications and "
                 "per-kernel repartitioning (Section 4.4) ===\n\n";

    for (const App& app : apps) {
        std::cout << "--- " << app.name << " (";
        for (size_t i = 0; i < app.stages.size(); ++i)
            std::cout << (i ? " -> " : "") << app.stages[i].benchmark;
        std::cout << ") ---\n";

        SequenceResult base = runSequence(
            app.stages, ReconfigPolicy::PartitionedBaseline);
        SequenceResult stat =
            runSequence(app.stages, ReconfigPolicy::UnifiedStatic);
        SequenceResult per =
            runSequence(app.stages, ReconfigPolicy::UnifiedPerKernel);
        SequenceResult per_wb = runSequence(
            app.stages, ReconfigPolicy::UnifiedPerKernel, 384_KB,
            WritePolicy::WriteBack);

        Table t({"policy", "total cycles", "speedup", "reconfigs",
                 "drain cycles"});
        auto row = [&](const char* label, const SequenceResult& r) {
            Cycle drain = 0;
            for (const StageResult& st : r.stages)
                drain += st.reconfigCycles;
            t.addRow({label, std::to_string(r.totalCycles),
                      Table::num(static_cast<double>(base.totalCycles) /
                                     static_cast<double>(r.totalCycles),
                                 3),
                      std::to_string(r.reconfigs),
                      std::to_string(drain)});
        };
        row("partitioned baseline", base);
        row("unified, static split", stat);
        row("unified, per-kernel (write-through)", per);
        row("unified, per-kernel (write-back)", per_wb);
        t.print(std::cout);

        std::cout << "per-kernel splits chosen:";
        for (const StageResult& st : per.stages)
            std::cout << "  [" << st.benchmark << ": "
                      << st.partition.str() << "]";
        std::cout << "\n\n";
    }

    std::cout << "Expected shape: per-kernel repartitioning beats the "
                 "static compromise whenever stages want different "
                 "splits; the write-through drain cost is zero (the "
                 "paper's design choice), the write-back drain is "
                 "nonzero but small.\n";
    return 0;
}
