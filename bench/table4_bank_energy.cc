/**
 * @file
 * Reproduces paper Table 4: per-16-byte-access SRAM bank energy for the
 * partitioned design's 8 KB MRF banks and 2 KB shared/cache banks versus
 * the 384 KB unified design's 12 KB banks.
 */

#include <iostream>

#include "common/table.hh"
#include "core/partition.hh"
#include "energy/energy_model.hh"

using namespace unimem;

int
main()
{
    std::cout << "=== Table 4: energy for 16-byte SRAM bank access "
                 "(32nm) ===\n"
              << "(paper reference: 8KB 9.8/11.8 pJ, 2KB 3.9/5.1 pJ, "
                 "12KB 12.1/14.9 pJ)\n\n";

    Table t({"structure", "bank size", "read (pJ)", "write (pJ)"});

    auto row = [&](const char* name, u64 bank) {
        t.addRow({name,
                  Table::num(static_cast<double>(bank) / 1024.0, 0) + " KB",
                  Table::num(bankReadEnergy(bank) * 1e12, 1),
                  Table::num(bankWriteEnergy(bank) * 1e12, 1)});
    };

    MemoryPartition base = baselinePartition();
    row("256KB RF (partitioned)", base.rfBytes / kBanksPerSm);
    row("64KB shared (partitioned)", base.sharedBytes / kBanksPerSm);
    row("64KB cache (partitioned)", base.cacheBytes / kBanksPerSm);
    row("384KB unified", unifiedBankBytes(384_KB));
    row("256KB unified", unifiedBankBytes(256_KB));
    row("128KB unified", unifiedBankBytes(128_KB));

    t.print(std::cout);

    std::cout << "\nTag storage: 64KB cache = "
              << tagStorageBytes(64_KB) << " B, 384KB max unified cache = "
              << tagStorageBytes(384_KB) << " B (paper: ~1.125KB / "
              << "~7.125KB)\n";
    return 0;
}
