/**
 * @file
 * Reproduces paper Table 6: performance and energy of the unified
 * design at 128 / 256 / 384 KB, normalized to the 256/64/64 partitioned
 * baseline, for the benefit applications plus the average over the
 * Figure 7 (no-benefit) set.
 *
 * Paper highlights: performance generally maximized at 384KB; small
 * capacities minimize SRAM leakage, so no-benefit apps see their lowest
 * energy at 128KB.
 *
 * Flags: --scale=<f> (default 0.35)
 */

#include <iostream>

#include "common/cli.hh"
#include "common/table.hh"
#include "kernels/registry.hh"
#include "sim/experiments.hh"

using namespace unimem;

int
main(int argc, char** argv)
{
    CliArgs args(argc, argv);
    double scale = args.getDouble("scale", 0.35);
    const u64 caps[] = {128_KB, 256_KB, 384_KB};

    std::cout << "=== Table 6: unified capacity sensitivity ===\n"
              << "(normalized to the partitioned 256/64/64 baseline; "
                 "perf higher better, energy lower better)\n\n";

    Table t({"workload", "perf 128K", "perf 256K", "perf 384K",
             "energy 128K", "energy 256K", "energy 384K"});

    auto add_benchmark = [&](const std::string& name, double s,
                             std::array<double, 3>& perf,
                             std::array<double, 3>& energy) {
        SimResult base = runBaseline(name, s);
        for (int i = 0; i < 3; ++i) {
            auto k = createBenchmark(name, s);
            AllocationDecision d = allocateUnified(k->params(), caps[i]);
            if (!d.launch.feasible) {
                perf[i] = 0.0;
                energy[i] = 0.0;
                continue;
            }
            SimResult uni = runUnified(name, s, caps[i]);
            Comparison c = compare(uni, base);
            perf[i] = c.speedup;
            energy[i] = c.energyRatio;
        }
    };

    for (const std::string& name : benefitBenchmarkNames()) {
        double s = name == "dgemm" ? std::max(scale, 0.75) : scale;
        std::array<double, 3> perf{}, energy{};
        add_benchmark(name, s, perf, energy);
        t.addRow({name, Table::num(perf[0], 2), Table::num(perf[1], 2),
                  Table::num(perf[2], 2), Table::num(energy[0], 2),
                  Table::num(energy[1], 2), Table::num(energy[2], 2)});
    }

    // Average over the Figure 7 set (paper's last row).
    std::array<double, 3> perf_sum{}, energy_sum{};
    std::array<int, 3> counts{};
    for (const std::string& name : noBenefitBenchmarkNames()) {
        std::array<double, 3> perf{}, energy{};
        add_benchmark(name, scale, perf, energy);
        for (int i = 0; i < 3; ++i) {
            if (perf[i] > 0.0) {
                perf_sum[i] += perf[i];
                energy_sum[i] += energy[i];
                ++counts[i];
            }
        }
    }
    std::vector<std::string> avg{"fig7 benchmarks (avg)"};
    for (int i = 0; i < 3; ++i)
        avg.push_back(Table::num(perf_sum[i] / counts[i], 2));
    for (int i = 0; i < 3; ++i)
        avg.push_back(Table::num(energy_sum[i] / counts[i], 2));
    t.addRow(avg);
    t.print(std::cout);

    std::cout << "\n(0.00 = kernel does not fit at that capacity; paper "
                 "Table 6 reference: average benefit-set perf "
                 "0.97/1.14/1.16, energy 0.98/0.87/0.87; fig7 set perf "
                 "0.99/1.00/1.00, energy 0.93/0.96/1.00)\n";
    return 0;
}
