/**
 * @file
 * Reproduces paper Table 6: performance and energy of the unified
 * design at 128 / 256 / 384 KB, normalized to the 256/64/64 partitioned
 * baseline, for the benefit applications plus the average over the
 * Figure 7 (no-benefit) set.
 *
 * Paper highlights: performance generally maximized at 384KB; small
 * capacities minimize SRAM leakage, so no-benefit apps see their lowest
 * energy at 128KB.
 *
 * Flags: --scale=<f> (default 0.35)
 *        --jobs=<n>  sweep worker threads
 */

#include <iostream>

#include "common/cli.hh"
#include "common/table.hh"
#include "kernels/registry.hh"
#include "sim/experiments.hh"
#include "sim/sweep.hh"

using namespace unimem;

namespace {

/** Sweep-result indices for one benchmark's row (-1 = does not fit). */
struct RowPlan
{
    std::string name;
    double scale = 0.0;
    int baseIdx = -1;
    std::array<int, 3> uniIdx{-1, -1, -1};
};

} // namespace

int
main(int argc, char** argv)
{
    CliArgs args(argc, argv);
    double scale = args.getDouble("scale", 0.35);
    u32 jobs = static_cast<u32>(args.getInt("jobs", 0));
    const u64 caps[] = {128_KB, 256_KB, 384_KB};

    std::cout << "=== Table 6: unified capacity sensitivity ===\n"
              << "(normalized to the partitioned 256/64/64 baseline; "
                 "perf higher better, energy lower better)\n\n";

    // Plan the whole table as one sweep: a baseline point per workload
    // plus one unified point per feasible capacity.
    std::vector<SweepJob> sweep;
    std::vector<RowPlan> plans;
    auto plan_benchmark = [&](const std::string& name, double s) {
        RowPlan plan;
        plan.name = name;
        plan.scale = s;
        plan.baseIdx = static_cast<int>(sweep.size());
        sweep.push_back(
            makeSweepJob(name + "/baseline", name, s, RunSpec{}));
        for (int i = 0; i < 3; ++i) {
            auto k = createBenchmark(name, s);
            if (!allocateUnified(k->params(), caps[i]).launch.feasible)
                continue;
            plan.uniIdx[i] = static_cast<int>(sweep.size());
            RunSpec spec;
            spec.design = DesignKind::Unified;
            spec.unifiedCapacity = caps[i];
            sweep.push_back(makeSweepJob(
                name + "/" + std::to_string(caps[i] / 1024) + "K", name,
                s, spec));
        }
        plans.push_back(plan);
    };

    for (const std::string& name : benefitBenchmarkNames())
        plan_benchmark(name,
                       name == "dgemm" ? std::max(scale, 0.75) : scale);
    size_t benefitRows = plans.size();
    for (const std::string& name : noBenefitBenchmarkNames())
        plan_benchmark(name, scale);

    SweepStats stats;
    std::vector<SimResult> results = runSweep(sweep, jobs, &stats);

    Table t({"workload", "perf 128K", "perf 256K", "perf 384K",
             "energy 128K", "energy 256K", "energy 384K"});

    auto row_metrics = [&](const RowPlan& plan,
                           std::array<double, 3>& perf,
                           std::array<double, 3>& energy) {
        const SimResult& base = results[plan.baseIdx];
        for (int i = 0; i < 3; ++i) {
            if (plan.uniIdx[i] < 0) {
                perf[i] = 0.0;
                energy[i] = 0.0;
                continue;
            }
            Comparison c = compare(results[plan.uniIdx[i]], base);
            perf[i] = c.speedup;
            energy[i] = c.energyRatio;
        }
    };

    for (size_t r = 0; r < benefitRows; ++r) {
        std::array<double, 3> perf{}, energy{};
        row_metrics(plans[r], perf, energy);
        t.addRow({plans[r].name, Table::num(perf[0], 2),
                  Table::num(perf[1], 2), Table::num(perf[2], 2),
                  Table::num(energy[0], 2), Table::num(energy[1], 2),
                  Table::num(energy[2], 2)});
    }

    // Average over the Figure 7 set (paper's last row).
    std::array<double, 3> perf_sum{}, energy_sum{};
    std::array<int, 3> counts{};
    for (size_t r = benefitRows; r < plans.size(); ++r) {
        std::array<double, 3> perf{}, energy{};
        row_metrics(plans[r], perf, energy);
        for (int i = 0; i < 3; ++i) {
            if (perf[i] > 0.0) {
                perf_sum[i] += perf[i];
                energy_sum[i] += energy[i];
                ++counts[i];
            }
        }
    }
    std::vector<std::string> avg{"fig7 benchmarks (avg)"};
    for (int i = 0; i < 3; ++i)
        avg.push_back(Table::num(perf_sum[i] / counts[i], 2));
    for (int i = 0; i < 3; ++i)
        avg.push_back(Table::num(energy_sum[i] / counts[i], 2));
    t.addRow(avg);
    t.print(std::cout);

    std::cout << "\n(0.00 = kernel does not fit at that capacity; paper "
                 "Table 6 reference: average benefit-set perf "
                 "0.97/1.14/1.16, energy 0.98/0.87/0.87; fig7 set perf "
                 "0.99/1.00/1.00, energy 0.93/0.96/1.00)\n"
              << "sweep: " << stats.summary() << "\n";
    return 0;
}
