/**
 * @file
 * Reproduces paper Figure 8: how the Section 4.5 allocation algorithm
 * partitions 384 KB of unified memory for each benefit application
 * (register file / scratchpad / cache split, plus threads).
 */

#include <iostream>

#include "common/table.hh"
#include "core/allocation.hh"
#include "kernels/registry.hh"

using namespace unimem;

int
main()
{
    std::cout << "=== Figure 8: 384KB unified memory configuration per "
                 "benchmark (Section 4.5 allocation) ===\n\n";

    Table t({"workload", "RF KB", "shared KB", "cache KB", "threads",
             "regs/thread"});
    for (const std::string& name : benefitBenchmarkNames()) {
        auto k = createBenchmark(name, 0.1);
        AllocationDecision d = allocateUnified(k->params(), 384_KB);
        t.addRow({name,
                  Table::num(static_cast<double>(d.partition.rfBytes) /
                                 1024.0,
                             0),
                  Table::num(static_cast<double>(
                                 d.partition.sharedBytes) /
                                 1024.0,
                             0),
                  Table::num(static_cast<double>(d.partition.cacheBytes) /
                                 1024.0,
                             0),
                  std::to_string(d.launch.threads),
                  std::to_string(d.launch.regsPerThread)});
    }
    t.print(std::cout);

    std::cout << "\nPaper reference: RF ranges from 36KB (bfs) to 228KB "
                 "(dgemm); needle devotes 264KB to scratchpad; leftovers "
                 "become cache.\n";
    return 0;
}
