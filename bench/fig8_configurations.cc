/**
 * @file
 * Reproduces paper Figure 8: how the Section 4.5 allocation algorithm
 * partitions 384 KB of unified memory for each benefit application
 * (register file / scratchpad / cache split, plus threads), and what the
 * resulting configuration buys over the partitioned baseline (speedup,
 * energy, DRAM ratios computed by the parallel sweep engine).
 *
 * Flags: --scale=<f> (default 0.1)
 *        --jobs=<n>  sweep worker threads (default: UNIMEM_JOBS or all
 *                    hardware threads)
 */

#include <iostream>

#include "common/cli.hh"
#include "common/table.hh"
#include "core/allocation.hh"
#include "kernels/registry.hh"
#include "sim/experiments.hh"
#include "sim/sweep.hh"

using namespace unimem;

int
main(int argc, char** argv)
{
    CliArgs args(argc, argv);
    double scale = args.getDouble("scale", 0.1);
    u32 jobs = static_cast<u32>(args.getInt("jobs", 0));

    std::cout << "=== Figure 8: 384KB unified memory configuration per "
                 "benchmark (Section 4.5 allocation) ===\n\n";

    // Two sweep points per workload: partitioned baseline and unified,
    // submitted pairwise so results come back [base0, uni0, base1, ...].
    std::vector<std::string> names = benefitBenchmarkNames();
    std::vector<SweepJob> sweep;
    for (const std::string& name : names) {
        sweep.push_back(
            makeSweepJob(name + "/baseline", name, scale, RunSpec{}));
        RunSpec uni;
        uni.design = DesignKind::Unified;
        uni.unifiedCapacity = 384_KB;
        sweep.push_back(makeSweepJob(name + "/unified", name, scale, uni));
    }
    SweepStats stats;
    std::vector<SimResult> results = runSweep(sweep, jobs, &stats);

    Table t({"workload", "RF KB", "shared KB", "cache KB", "threads",
             "regs/thread", "perf", "energy", "dram"});
    for (size_t i = 0; i < names.size(); ++i) {
        const SimResult& base = results[2 * i];
        const SimResult& uni = results[2 * i + 1];
        const AllocationDecision& d = uni.alloc;
        Comparison c = compare(uni, base);
        t.addRow({names[i],
                  Table::num(static_cast<double>(d.partition.rfBytes) /
                                 1024.0,
                             0),
                  Table::num(static_cast<double>(
                                 d.partition.sharedBytes) /
                                 1024.0,
                             0),
                  Table::num(static_cast<double>(d.partition.cacheBytes) /
                                 1024.0,
                             0),
                  std::to_string(d.launch.threads),
                  std::to_string(d.launch.regsPerThread),
                  Table::num(c.speedup, 3), Table::num(c.energyRatio, 3),
                  Table::num(c.dramRatio, 3)});
    }
    t.print(std::cout);

    std::cout << "\nPaper reference: RF ranges from 36KB (bfs) to 228KB "
                 "(dgemm); needle devotes 264KB to scratchpad; leftovers "
                 "become cache.\n"
              << "sweep: " << stats.summary() << "\n";
    return 0;
}
