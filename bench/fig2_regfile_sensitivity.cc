/**
 * @file
 * Reproduces paper Figure 2: performance as a function of register file
 * capacity (with 64 KB cache and unbounded scratchpad), for four
 * benchmarks with distinct behaviours (dgemm, pcr, needle, bfs).
 *
 * Each line of the paper's plot is a register allocation per thread
 * (18/24/32/64); each point is a thread count (256/512/768/1024). We
 * print performance normalized to 64 registers per thread and 1024
 * threads, plus the implied register file capacity in KB.
 *
 * Flags: --scale=<f> (default 0.5)
 */

#include <iostream>

#include "common/cli.hh"
#include "common/table.hh"
#include "sim/simulator.hh"

using namespace unimem;

int
main(int argc, char** argv)
{
    CliArgs args(argc, argv);
    double scale = args.getDouble("scale", 0.5);

    std::cout << "=== Figure 2: performance vs register file capacity "
                 "===\n"
              << "(64KB cache, unbounded scratchpad; normalized to 64 "
                 "regs/thread @ 1024 threads)\n";

    const u32 reg_points[] = {18, 24, 32, 64};
    const u32 thread_points[] = {256, 512, 768, 1024};

    for (const char* name : {"dgemm", "pcr", "needle", "bfs"}) {
        std::cout << "\n--- " << name << " ---\n";

        RunSpec ref;
        ref.partition = MemoryPartition{1_MB, 1_MB, 64_KB};
        ref.regsOverride = 64;
        double ref_cycles = static_cast<double>(
            simulateBenchmark(name, scale, ref).cycles());

        Table t({"regs/thread", "threads", "RF KB", "norm perf"});
        for (u32 regs : reg_points) {
            for (u32 threads : thread_points) {
                RunSpec spec = ref;
                spec.regsOverride = regs;
                spec.threadLimit = threads;
                SimResult r = simulateBenchmark(name, scale, spec);
                double perf =
                    ref_cycles / static_cast<double>(r.cycles());
                t.addRow({std::to_string(regs),
                          std::to_string(r.alloc.launch.threads),
                          std::to_string(r.alloc.launch.rfBytes / 1024),
                          Table::num(perf, 3)});
            }
        }
        t.print(std::cout);
    }

    std::cout << "\nExpected shape (paper): dgemm needs both many "
                 "registers and many threads; pcr spills heavily below "
                 "32 regs; needle saturates by 512 threads; bfs is "
                 "insensitive to registers but needs threads.\n";
    return 0;
}
