/**
 * @file
 * Reproduces paper Table 1: workload characteristics of all 26
 * benchmarks — registers per thread without spills, normalized dynamic
 * instruction counts at 18/24/32/40/64 registers per thread, register
 * file size for full occupancy, scratchpad bytes per thread, and
 * normalized DRAM accesses with 0 / 64 KB / 256 KB of primary cache.
 *
 * The spill columns are produced by running the spill injector at each
 * register allocation; the DRAM columns come from full timing runs.
 *
 * Flags: --scale=<f> (default 0.35)
 */

#include <iostream>

#include "common/cli.hh"
#include "common/table.hh"
#include "kernels/registry.hh"
#include "sim/simulator.hh"

using namespace unimem;

namespace {

/** Measured dynamic-instruction multiplier at an allocation. */
double
dynInstrRatio(const std::string& name, double scale, u32 regs)
{
    RunSpec spec;
    // Generous capacities so only the register count varies.
    spec.partition = MemoryPartition{1_MB, 1_MB, 64_KB};
    spec.regsOverride = regs;
    SimResult r = simulateBenchmark(name, scale, spec);

    RunSpec full = spec;
    full.regsOverride = 64;
    SimResult f = simulateBenchmark(name, scale, full);
    return static_cast<double>(r.sm.warpInstrs) /
           static_cast<double>(f.sm.warpInstrs);
}

u64
dramSectors(const std::string& name, double scale, u64 cacheBytes)
{
    RunSpec spec;
    spec.partition = MemoryPartition{256_KB, 1_MB, cacheBytes};
    return simulateBenchmark(name, scale, spec).dramSectors();
}

} // namespace

int
main(int argc, char** argv)
{
    CliArgs args(argc, argv);
    double scale = args.getDouble("scale", 0.35);

    std::cout << "=== Table 1: workload characteristics ===\n"
              << "(normalized dynamic instructions at 18/24/32/40/64 "
                 "regs/thread; normalized DRAM accesses at 0/64KB/256KB "
                 "cache)\n\n";

    Table t({"workload", "category", "regs", "i18", "i24", "i32", "i40",
             "i64", "RF KB full occ", "sh B/thr", "d0", "d64K", "d256K"});

    for (const BenchmarkInfo& info : allBenchmarks()) {
        auto k = createBenchmark(info.name, scale);
        const KernelParams& kp = k->params();

        std::vector<std::string> row;
        row.push_back(info.name);
        row.push_back(categoryName(info.category));
        row.push_back(std::to_string(kp.regsPerThread));
        for (u32 regs : {18u, 24u, 32u, 40u, 64u})
            row.push_back(
                Table::num(dynInstrRatio(info.name, scale, regs), 2));
        row.push_back(std::to_string(kMaxThreadsPerSm * kp.regsPerThread *
                                     kRegBytes / 1024));
        row.push_back(Table::num(kp.sharedBytesPerThread(), 1));

        double d256 = static_cast<double>(
            dramSectors(info.name, scale, 256_KB));
        for (u64 cache : {0_KB, 64_KB, 256_KB})
            row.push_back(Table::num(
                static_cast<double>(dramSectors(info.name, scale, cache)) /
                    d256,
                2));
        t.addRow(row);
    }
    t.print(std::cout);

    std::cout << "\nPaper reference (Table 1) for the same columns:\n";
    Table ref({"workload", "regs", "sh B/thr", "d0", "d64K", "d256K"});
    for (const BenchmarkInfo& info : allBenchmarks())
        ref.addRow({info.name, std::to_string(info.paperRegs),
                    Table::num(info.paperSharedPerThread, 1),
                    Table::num(info.paperDramNone, 2),
                    Table::num(info.paperDram64k, 2),
                    Table::num(info.paperDram256k, 2)});
    ref.print(std::cout);
    return 0;
}
