/**
 * @file
 * Command-line driver for the unimem simulator.
 *
 * Subcommands:
 *   list                        all registered benchmarks with metadata
 *   allocate <bench>            Section 4.5 allocation decision at a
 *                               given capacity (no simulation)
 *   run <bench>                 simulate one configuration
 *   sweep <bench>               capacity/cache/thread sweeps
 *   chip <bench>                chip-level co-simulation (--sms=N)
 *   trace <bench>               dump the warp trace to a file
 *
 * Common flags:
 *   --design=partitioned|unified|fermi   (default partitioned)
 *   --capacity-kb=N     unified capacity   (default 384)
 *   --scale=F           workload scale     (default 0.5)
 *   --jobs=N            sweep worker threads (default: UNIMEM_JOBS or
 *                       all hardware threads; sweeps only)
 *   --chip-jobs=N       chip bound-phase workers (default:
 *                       UNIMEM_CHIP_JOBS or all hardware threads,
 *                       capped to --sms; results are identical for
 *                       any value; chip only)
 *   --quantum=N         chip co-simulation quantum in cycles
 *                       (default 64; chip only)
 *   --threads=N         thread limit
 *   --regs=N            registers/thread override
 *   --write-back        write-back cache ablation
 *   --no-rf-hierarchy   disable the ORF/LRF
 *   --dump-stats        print the full StatSet after a run
 *
 * Examples:
 *   unimem_cli run needle --design=unified
 *   unimem_cli sweep pcr --what=cache
 *   unimem_cli trace sgemv --out=/tmp/sgemv.trace
 */

#include <fstream>
#include <iostream>

#include "arch/trace_io.hh"
#include "common/cli.hh"
#include "common/log.hh"
#include "common/table.hh"
#include "kernels/registry.hh"
#include "sim/experiments.hh"
#include "sim/sweep.hh"
#include "sm/chip.hh"

using namespace unimem;

namespace {

int
cmdList()
{
    Table t({"name", "category", "benefits", "regs/thread",
             "shared B/thread", "paper dram 0/64K/256K"});
    for (const BenchmarkInfo& info : allBenchmarks()) {
        t.addRow({info.name, categoryName(info.category),
                  info.benefits ? "yes" : "no",
                  std::to_string(info.paperRegs),
                  Table::num(info.paperSharedPerThread, 1),
                  Table::num(info.paperDramNone, 2) + " / " +
                      Table::num(info.paperDram64k, 2) + " / " +
                      Table::num(info.paperDram256k, 2)});
    }
    t.print(std::cout);
    return 0;
}

RunSpec
specFromArgs(const CliArgs& args)
{
    RunSpec spec;
    std::string design = args.getString("design", "partitioned");
    if (design == "partitioned") {
        spec.design = DesignKind::Partitioned;
    } else if (design == "unified") {
        spec.design = DesignKind::Unified;
    } else if (design == "fermi") {
        spec.design = DesignKind::FermiLike;
        spec.partition = fermiLikeOptions(
            static_cast<u64>(args.getInt("capacity-kb", 384)) *
            1024)[args.getInt("fermi-option", 0) != 0 ? 1 : 0];
    } else {
        fatal("unknown design '%s'", design.c_str());
    }
    spec.unifiedCapacity =
        static_cast<u64>(args.getInt("capacity-kb", 384)) * 1024;
    spec.threadLimit =
        static_cast<u32>(args.getInt("threads", kMaxThreadsPerSm));
    spec.regsOverride = static_cast<u32>(args.getInt("regs", 0));
    spec.rfHierarchy = !args.getBool("no-rf-hierarchy", false);
    spec.conflictPenalties = !args.getBool("no-conflicts", false);
    spec.aggressiveUnified = args.getBool("aggressive-unified", false);
    if (args.getBool("write-back", false))
        spec.cachePolicy = WritePolicy::WriteBack;
    return spec;
}

std::string
requireBenchmark(const CliArgs& args)
{
    if (args.positional().size() < 2)
        fatal("missing benchmark name (try 'unimem_cli list')");
    std::string name = args.positional()[1];
    if (findBenchmark(name) == nullptr)
        fatal("unknown benchmark '%s' (try 'unimem_cli list')",
              name.c_str());
    return name;
}

int
cmdAllocate(const CliArgs& args)
{
    std::string name = requireBenchmark(args);
    double scale = args.getDouble("scale", 0.5);
    auto k = createBenchmark(name, scale);

    Table t({"capacity", "RF KB", "shared KB", "cache KB", "threads",
             "regs", "spill x"});
    for (u64 kb : {128ull, 192ull, 256ull, 320ull, 384ull, 512ull}) {
        AllocationDecision d = allocateUnified(k->params(), kb * 1024);
        if (!d.launch.feasible) {
            t.addRow({std::to_string(kb) + " KB", "-", "-", "-",
                      "does not fit", "-", "-"});
            continue;
        }
        t.addRow({std::to_string(kb) + " KB",
                  std::to_string(d.partition.rfBytes / 1024),
                  std::to_string(d.partition.sharedBytes / 1024),
                  std::to_string(d.partition.cacheBytes / 1024),
                  std::to_string(d.launch.threads),
                  std::to_string(d.launch.regsPerThread),
                  Table::num(d.launch.spillMultiplier, 2)});
    }
    t.print(std::cout);
    return 0;
}

int
cmdRun(const CliArgs& args)
{
    std::string name = requireBenchmark(args);
    double scale = args.getDouble("scale", 0.5);
    RunSpec spec = specFromArgs(args);

    SimResult r = simulateBenchmark(name, scale, spec);
    std::cout << name << " on " << designName(spec.design) << " ("
              << r.alloc.partition.str() << ")\n"
              << "  threads " << r.alloc.launch.threads << ", regs "
              << r.alloc.launch.regsPerThread << ", spill x"
              << Table::num(r.alloc.launch.spillMultiplier, 2) << "\n"
              << "  cycles " << r.cycles() << ", ipc "
              << Table::num(r.sm.ipc(), 2) << ", dram sectors "
              << r.dramSectors() << "\n";

    if (spec.design != DesignKind::Partitioned ||
        args.getBool("compare", false)) {
        SimResult base = runBaseline(name, scale);
        Comparison c = compare(r, base);
        std::cout << "  vs partitioned baseline: speedup "
                  << Table::num(c.speedup, 3) << ", energy "
                  << Table::num(c.energyRatio, 3) << ", dram "
                  << Table::num(c.dramRatio, 3) << "\n";
    }
    if (args.getBool("dump-stats", false)) {
        std::cout << "\n";
        r.sm.toStatSet().dump(std::cout);
    }
    return 0;
}

int
cmdSweep(const CliArgs& args)
{
    std::string name = requireBenchmark(args);
    double scale = args.getDouble("scale", 0.5);
    std::string what = args.getString("what", "capacity");
    u32 jobs = static_cast<u32>(args.getInt("jobs", 0));

    // Collect the sweep points (infeasible ones keep a table row but
    // are not submitted), then run them all through the pool.
    Table t({"point", "cycles", "dram sectors", "threads"});
    std::vector<SweepJob> sweep;
    std::vector<std::pair<std::string, bool>> points; // label, feasible
    auto add = [&](const std::string& label, const RunSpec& spec) {
        auto k = createBenchmark(name, scale);
        bool feasible =
            resolveAllocation(k->params(), spec).launch.feasible;
        points.emplace_back(label, feasible);
        if (feasible)
            sweep.push_back(makeSweepJob(label, name, scale, spec));
    };

    if (what == "capacity") {
        for (u64 kb : {128ull, 192ull, 256ull, 320ull, 384ull, 512ull}) {
            RunSpec spec = specFromArgs(args);
            spec.design = DesignKind::Unified;
            spec.unifiedCapacity = kb * 1024;
            add(std::to_string(kb) + " KB unified", spec);
        }
    } else if (what == "cache") {
        for (u64 kb : {0ull, 32ull, 64ull, 128ull, 256ull, 512ull}) {
            RunSpec spec = specFromArgs(args);
            spec.design = DesignKind::Partitioned;
            spec.partition = MemoryPartition{256_KB, 1_MB, kb * 1024};
            add(std::to_string(kb) + " KB cache", spec);
        }
    } else if (what == "threads") {
        for (u32 threads = 256; threads <= 1024; threads += 256) {
            RunSpec spec = specFromArgs(args);
            spec.threadLimit = threads;
            add(std::to_string(threads) + " threads", spec);
        }
    } else {
        fatal("unknown sweep '%s' (capacity|cache|threads)",
              what.c_str());
    }

    SweepStats stats;
    std::vector<SimResult> results = runSweep(sweep, jobs, &stats);
    size_t next = 0;
    for (const auto& [label, feasible] : points) {
        if (!feasible) {
            t.addRow({label, "does not fit", "-", "-"});
            continue;
        }
        const SimResult& r = results[next++];
        t.addRow({label, std::to_string(r.cycles()),
                  std::to_string(r.dramSectors()),
                  std::to_string(r.alloc.launch.threads)});
    }
    t.print(std::cout);
    std::cout << "sweep: " << stats.summary() << "\n";
    return 0;
}

int
cmdChip(const CliArgs& args)
{
    std::string name = requireBenchmark(args);
    double scale = args.getDouble("scale", 0.35);
    u32 sms = static_cast<u32>(args.getInt("sms", 8));

    auto k = createBenchmark(name, scale);
    RunSpec spec = specFromArgs(args);
    AllocationDecision d = resolveAllocation(k->params(), spec);
    if (!d.launch.feasible)
        fatal("kernel does not fit under the given design");

    ChipConfig cc;
    cc.numSms = sms;
    cc.chipDramBytesPerCycle =
        static_cast<u32>(args.getInt("chip-bw", sms * 8));
    cc.workers = static_cast<u32>(args.getInt("chip-jobs", 0));
    cc.quantum = static_cast<Cycle>(args.getInt("quantum", 64));
    cc.sm.design = spec.design == DesignKind::FermiLike
                       ? DesignKind::Partitioned
                       : spec.design;
    cc.sm.partition = d.partition;
    cc.sm.launch = d.launch;
    cc.sm.rfHierarchy = spec.rfHierarchy;
    cc.sm.conflictPenalties = spec.conflictPenalties;
    cc.sm.cachePolicy = spec.cachePolicy;

    ChipModel chip(cc, *k);
    const ChipStats& cs = chip.run();
    std::cout << name << " on " << sms << " SMs, "
              << cc.chipDramBytesPerCycle << " B/cycle chip DRAM ("
              << d.partition.str() << " per SM)\n"
              << "  chip cycles " << cs.cycles << " (slowest SM "
              << cs.maxSmCycles() << ", fastest " << cs.minSmCycles()
              << ")\n"
              << "  total warp instrs " << cs.warpInstrs()
              << ", chip dram sectors "
              << cs.dram.sectors() + cs.texDram.sectors() << "\n"
              << "  bound-weave: " << cs.workersUsed << " worker"
              << (cs.workersUsed == 1 ? "" : "s") << ", "
              << cs.windows << " windows, " << cs.boundPasses
              << " bound passes, " << cs.weaveRequests
              << " replayed requests, quantum util "
              << Table::num(cs.quantumUtilization() * 100.0, 1)
              << "%\n"
              << "  finish skew " << cs.finishSkew()
              << " cycles (imbalance "
              << Table::num(cs.loadImbalance() * 100.0, 1) << "%)\n";

    SimResult single = simulateBenchmark(name, scale, spec);
    std::cout << "  single-SM methodology: " << single.cycles()
              << " cycles (error "
              << Table::num((static_cast<double>(cs.maxSmCycles()) /
                                 static_cast<double>(single.cycles()) -
                             1.0) *
                                100.0,
                            1)
              << "%)\n";
    return 0;
}

int
cmdTrace(const CliArgs& args)
{
    std::string name = requireBenchmark(args);
    double scale = args.getDouble("scale", 0.5);
    std::string out = args.getString("out", name + ".trace");

    auto k = createBenchmark(name, scale);
    std::ofstream os(out);
    if (!os)
        fatal("cannot open '%s' for writing", out.c_str());
    writeTrace(*k, os);
    std::cout << "wrote " << out << " (" << k->params().gridCtas
              << " CTAs x " << k->params().warpsPerCta() << " warps)\n";
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    CliArgs args(argc, argv);
    if (args.positional().empty()) {
        std::cerr << "usage: unimem_cli <list|allocate|run|sweep|chip|trace> "
                     "[benchmark] [flags]\n(see the file header for "
                     "flags)\n";
        return 1;
    }
    const std::string& cmd = args.positional()[0];
    if (cmd == "list")
        return cmdList();
    if (cmd == "allocate")
        return cmdAllocate(args);
    if (cmd == "run")
        return cmdRun(args);
    if (cmd == "sweep")
        return cmdSweep(args);
    if (cmd == "chip")
        return cmdChip(args);
    if (cmd == "trace")
        return cmdTrace(args);
    fatal("unknown command '%s'", cmd.c_str());
}
