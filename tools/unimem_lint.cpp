/**
 * @file
 * unimem-lint: static analyzer over the shipped kernel models.
 *
 * Runs the analysis pass framework (analysis/pass.hh) over every
 * registry benchmark — or a --kernel subset — in parallel on the sweep
 * engine, prints a per-kernel metrics table plus every diagnostic, and
 * exits nonzero when any kernel has findings. This is the gate
 * scripts/check.sh and CI run so a kernel-model edit that violates its
 * declared KernelParams fails the build instead of silently corrupting
 * figures.
 *
 * Flags:
 *   --kernel=a,b,c   lint only these benchmarks (default: all 26)
 *   --scale=F        workload scale (default 0.5, same as unimem_cli)
 *   --jobs=N         sweep workers (default: UNIMEM_JOBS or all cores)
 *   --passes=a,b     run these analysis passes (default: default set)
 *   --all-passes     run every registered pass, including the
 *                    simulation-backed cross-checks
 *   --list-passes    print the pass registry and exit
 *   --Werror         treat warnings as errors
 *   --max-instrs=N   trace-prefix bound per sampled warp (default 4096)
 *   --max-diags=N    global cap on stored findings per kernel
 *   --json           machine-readable report on stdout instead of the
 *                    table (diagnostics and per-pass stats included;
 *                    the summary line goes to stderr)
 *   --quiet          suppress per-diagnostic lines (summary table only)
 *
 * Exit status: 0 clean, 1 warnings only, 2 lint errors, 3 usage error.
 */

#include <iostream>
#include <sstream>

#include "analysis/pass.hh"
#include "common/cli.hh"
#include "common/log.hh"
#include "common/table.hh"
#include "kernels/registry.hh"
#include "sim/sweep.hh"

using namespace unimem;

namespace {

std::vector<std::string>
selectKernels(const CliArgs& args)
{
    std::vector<std::string> names;
    if (args.has("kernel")) {
        std::stringstream ss(args.getString("kernel", ""));
        std::string item;
        while (std::getline(ss, item, ','))
            if (!item.empty()) {
                if (findBenchmark(item) == nullptr)
                    fatal("unknown benchmark '%s' (try 'unimem_cli "
                          "list')",
                          item.c_str());
                names.push_back(item);
            }
        if (names.empty())
            fatal("--kernel given but no benchmark names parsed");
    } else {
        for (const BenchmarkInfo& info : allBenchmarks())
            names.push_back(info.name);
    }
    return names;
}

std::vector<std::string>
selectPasses(const CliArgs& args)
{
    if (args.getBool("all-passes", false)) {
        std::vector<std::string> names;
        for (const PassInfo& p : allPasses())
            names.push_back(p.name);
        return names;
    }
    if (args.has("passes")) {
        std::vector<std::string> names;
        std::stringstream ss(args.getString("passes", ""));
        std::string item;
        while (std::getline(ss, item, ','))
            if (!item.empty()) {
                if (findPass(item) == nullptr)
                    fatal("unknown analysis pass '%s' (try "
                          "--list-passes)",
                          item.c_str());
                names.push_back(item);
            }
        if (names.empty())
            fatal("--passes given but no pass names parsed");
        return names;
    }
    return defaultPassNames();
}

std::string
jsonEscape(const std::string& s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (c == '\n') {
            out += "\\n";
            continue;
        }
        out += c;
    }
    return out;
}

void
printJson(std::ostream& os, const std::vector<LintReport>& reports,
          const std::vector<std::string>& passNames)
{
    os << "{\"schema_version\":2,\"passes\":[";
    for (size_t i = 0; i < passNames.size(); ++i)
        os << (i ? "," : "") << "\"" << jsonEscape(passNames[i]) << "\"";
    os << "],\"kernels\":[";
    for (size_t i = 0; i < reports.size(); ++i) {
        const LintReport& r = reports[i];
        const LintMetrics& m = r.metrics;
        os << (i ? "," : "") << "{\"name\":\"" << jsonEscape(r.kernel)
           << "\",\"errors\":" << r.errors()
           << ",\"warnings\":" << r.warnings()
           << ",\"infos\":" << r.infos()
           << ",\"suppressed\":" << r.diags.suppressedCount()
           << ",\"metrics\":{"
           << "\"instrs\":" << m.instrs << ",\"memOps\":" << m.memOps
           << ",\"sharedOps\":" << m.sharedOps
           << ",\"regPressure\":" << m.regPressure
           << ",\"orfReachableFraction\":"
           << Table::num(m.orfReachableFraction(), 4)
           << ",\"avgSharedConflictDegree\":"
           << Table::num(m.avgSharedConflictDegree(), 4)
           << ",\"maxSharedConflictDegree\":" << m.sharedDegreeMax
           << "},\"passes\":[";
        for (size_t p = 0; p < r.passes.size(); ++p) {
            const PassResult& pr = r.passes[p];
            os << (p ? "," : "") << "{\"name\":\"" << jsonEscape(pr.pass)
               << "\",\"stats\":{";
            for (size_t s = 0; s < pr.stats.size(); ++s)
                os << (s ? "," : "") << "\""
                   << jsonEscape(pr.stats[s].first)
                   << "\":" << Table::num(pr.stats[s].second, 4);
            os << "}}";
        }
        os << "],\"diagnostics\":[";
        const auto& ds = r.diags.diagnostics();
        for (size_t j = 0; j < ds.size(); ++j) {
            const Diagnostic& d = ds[j];
            os << (j ? "," : "") << "{\"id\":\"" << diagName(d.id)
               << "\",\"severity\":\"" << severityName(d.severity)
               << "\",\"location\":\"" << jsonEscape(d.loc.str())
               << "\",\"message\":\"" << jsonEscape(d.message)
               << "\",\"occurrences\":" << d.occurrences << "}";
        }
        os << "]}";
    }
    os << "]}\n";
}

} // namespace

int
main(int argc, char** argv)
{
    CliArgs args(argc, argv);
    if (!args.positional().empty()) {
        std::cerr << "usage: unimem_lint [--kernel=a,b] [--scale=F] "
                     "[--jobs=N] [--passes=a,b] [--all-passes] "
                     "[--list-passes] [--Werror] [--max-instrs=N] "
                     "[--max-diags=N] [--json] [--quiet]\n";
        return 3;
    }

    verifyPassRegistry();

    if (args.getBool("list-passes", false)) {
        for (const PassInfo& p : allPasses())
            std::cout << p.name << (p.inDefaultSet ? " [default]" : "")
                      << "\n    " << p.description << "\n";
        return 0;
    }

    std::vector<std::string> names = selectKernels(args);
    std::vector<std::string> passNames = selectPasses(args);
    double scale = args.getDouble("scale", 0.5);
    u32 jobs = static_cast<u32>(args.getInt("jobs", 0));

    LintOptions opt;
    opt.werror = args.getBool("Werror", false);
    opt.maxInstrsPerWarp =
        static_cast<u32>(args.getInt("max-instrs", 4096));
    opt.maxTotalSites =
        static_cast<u64>(args.getInt("max-diags", 0));

    // Each job writes its LintReport into its own submission slot, so
    // the report vector — like every sweep table — is identical at any
    // worker count.
    std::vector<LintReport> reports(names.size());
    std::vector<SweepJob> sweep;
    for (size_t i = 0; i < names.size(); ++i) {
        SweepJob job;
        job.label = "lint " + names[i];
        job.run = [&reports, &names, &opt, &passNames, scale, i]() {
            auto k = createBenchmark(names[i], scale);
            reports[i] = lintKernel(*k, opt, passNames);
            return SimResult{};
        };
        sweep.push_back(std::move(job));
    }
    SweepStats stats;
    runSweep(sweep, jobs, &stats);

    u64 errors = 0, warnings = 0;
    for (const LintReport& r : reports) {
        errors += r.errors();
        warnings += r.warnings();
    }
    int exit_code = errors > 0 ? 2 : warnings > 0 ? 1 : 0;

    if (args.getBool("json", false)) {
        printJson(std::cout, reports, passNames);
        std::cerr << "lint: " << names.size() << " kernels, "
                  << passNames.size() << " passes, " << errors
                  << " errors, " << warnings << " warnings ("
                  << stats.summary() << ")\n";
        return exit_code;
    }

    Table t({"kernel", "instrs", "errors", "warns", "infos", "pressure",
             "orf-reach", "shared-degree avg/max"});
    for (const LintReport& r : reports) {
        const LintMetrics& m = r.metrics;
        t.addRow({r.kernel, std::to_string(m.instrs),
                  std::to_string(r.errors()), std::to_string(r.warnings()),
                  std::to_string(r.infos()),
                  std::to_string(m.regPressure),
                  Table::num(m.orfReachableFraction(), 3),
                  Table::num(m.avgSharedConflictDegree(), 2) + " / " +
                      std::to_string(m.sharedDegreeMax)});
    }
    t.print(std::cout);

    if (!args.getBool("quiet", false))
        for (const LintReport& r : reports)
            r.diags.print(std::cout);

    std::cout << "lint: " << names.size() << " kernels, "
              << passNames.size() << " passes, " << errors
              << " errors, " << warnings << " warnings ("
              << stats.summary() << ")\n";
    return exit_code;
}
