#!/usr/bin/env bash
# Repo verification gate:
#   1. tier-1: configure, build, and run the full ctest suite
#   2. lint: run every analysis pass — including the simulation-backed
#      bank-conflict cross-check and the chip-ownership auditor — over
#      all shipped kernels with warnings promoted to errors
#      (tools/unimem_lint --all-passes); the machine-readable report is
#      written to build/lint_report.json for CI to archive
#   3. concurrency: rebuild the sweep and bound-weave chip engines
#      under ThreadSanitizer and run test_sweep plus
#      test_chip_determinism (randomized ChipConfig stress) to catch
#      data races the functional suite cannot see
#   4. ownership: rebuild test_chip_determinism in Debug (auditing
#      defaults on) with UNIMEM_OWNERSHIP_AUDIT=1 so any cross-actor
#      access during a bound phase panics deterministically — the
#      by-construction complement to TSan's timing-dependent detection
#   5. memory: rebuild the analyzer and integration tests under
#      AddressSanitizer+UBSan and run them with halt_on_error
#   6. tidy (opt-in via --tidy): clang-tidy over src/ using the compile
#      database; skipped with a notice when clang-tidy is absent
#
# Usage: scripts/check.sh [--tier1-only] [--tsan-only] [--asan-only]
#                         [--lint-only] [--ownership-only] [--tidy]
# Sanitizer and debug trees live in build-tsan/, build-asan/, and
# build-debug/ so they never pollute the main build; all build trees
# are .gitignore'd.

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=${JOBS:-$(nproc)}
run_tier1=1
run_lint=1
run_tsan=1
run_ownership=1
run_asan=1
run_tidy=0
for arg in "$@"; do
    case "$arg" in
      --tier1-only) run_lint=0; run_tsan=0; run_ownership=0; run_asan=0 ;;
      --lint-only)  run_tier1=0; run_tsan=0; run_ownership=0; run_asan=0 ;;
      --tsan-only)  run_tier1=0; run_lint=0; run_ownership=0; run_asan=0 ;;
      --ownership-only) run_tier1=0; run_lint=0; run_tsan=0; run_asan=0 ;;
      --asan-only)  run_tier1=0; run_lint=0; run_tsan=0; run_ownership=0 ;;
      --tidy)       run_tidy=1 ;;
      *) echo "unknown flag: $arg" >&2; exit 2 ;;
    esac
done

if [[ $run_tier1 -eq 1 ]]; then
    echo "=== tier-1: build + ctest ==="
    cmake -B build -S . >/dev/null
    cmake --build build -j "$JOBS"
    ctest --test-dir build --output-on-failure -j "$JOBS"
fi

if [[ $run_lint -eq 1 ]]; then
    echo "=== lint: all analysis passes (-Werror) ==="
    if [[ ! -x build/tools/unimem_lint ]]; then
        cmake -B build -S . >/dev/null
        cmake --build build -j "$JOBS" --target unimem_lint
    fi
    # --all-passes adds the simulation-backed gates (bank-conflict
    # differential cross-check, chip-ownership audit) to the static
    # ones. The JSON report is the CI artifact; the summary line it
    # prints on stderr is the console evidence.
    ./build/tools/unimem_lint --Werror --all-passes --jobs="$JOBS" \
        --json > build/lint_report.json
fi

if [[ $run_tsan -eq 1 ]]; then
    echo "=== ThreadSanitizer: sweep + bound-weave chip engines ==="
    cmake -B build-tsan -S . \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DCMAKE_CXX_FLAGS="-fsanitize=thread" \
        -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread" >/dev/null
    cmake --build build-tsan -j "$JOBS" --target test_sweep \
        --target test_chip_determinism
    # TSAN_OPTIONS halt_on_error makes any race a hard failure.
    TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_sweep
    TSAN_OPTIONS="halt_on_error=1" \
        ./build-tsan/tests/test_chip_determinism
fi

if [[ $run_ownership -eq 1 ]]; then
    echo "=== ownership audit: bound-phase isolation (Debug) ==="
    cmake -B build-debug -S . -DCMAKE_BUILD_TYPE=Debug >/dev/null
    cmake --build build-debug -j "$JOBS" --target test_chip_determinism
    # Auditing defaults on in Debug; the env var pins it on explicitly.
    # Any cross-actor access panics, so a violation is a hard failure
    # at every worker count the suite sweeps (1/2/4/8).
    UNIMEM_OWNERSHIP_AUDIT=1 ./build-debug/tests/test_chip_determinism
fi

if [[ $run_asan -eq 1 ]]; then
    echo "=== AddressSanitizer+UBSan: analyzer + integration ==="
    cmake -B build-asan -S . \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all" \
        -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined" >/dev/null
    cmake --build build-asan -j "$JOBS" \
        --target test_analysis --target test_integration \
        --target unimem_lint
    export ASAN_OPTIONS="halt_on_error=1:detect_leaks=1"
    export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
    ./build-asan/tests/test_analysis
    ./build-asan/tests/test_integration
    ./build-asan/tools/unimem_lint --Werror --jobs="$JOBS"
fi

if [[ $run_tidy -eq 1 ]]; then
    echo "=== clang-tidy: src/ via compile database ==="
    if ! command -v clang-tidy >/dev/null 2>&1; then
        echo "clang-tidy not installed; skipping tidy gate" >&2
    else
        cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
        mapfile -t tidy_files < <(find src tools -name '*.cc' -o -name '*.cpp')
        clang-tidy -p build --quiet --warnings-as-errors='*' \
            "${tidy_files[@]}"
    fi
fi

echo "=== check.sh: all gates passed ==="
