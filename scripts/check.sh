#!/usr/bin/env bash
# Repo verification gate:
#   1. tier-1: configure, build, and run the full ctest suite
#   2. concurrency: rebuild the sweep engine and its tests under
#      ThreadSanitizer and run test_sweep to catch data races the
#      functional suite cannot see
#
# Usage: scripts/check.sh [--tsan-only] [--tier1-only]
# The TSan tree lives in build-tsan/ so it never pollutes the main
# build; both trees are .gitignore'd.

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=${JOBS:-$(nproc)}
run_tier1=1
run_tsan=1
for arg in "$@"; do
    case "$arg" in
      --tsan-only) run_tier1=0 ;;
      --tier1-only) run_tsan=0 ;;
      *) echo "unknown flag: $arg" >&2; exit 2 ;;
    esac
done

if [[ $run_tier1 -eq 1 ]]; then
    echo "=== tier-1: build + ctest ==="
    cmake -B build -S . >/dev/null
    cmake --build build -j "$JOBS"
    ctest --test-dir build --output-on-failure -j "$JOBS"
fi

if [[ $run_tsan -eq 1 ]]; then
    echo "=== ThreadSanitizer: sweep engine ==="
    cmake -B build-tsan -S . \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DCMAKE_CXX_FLAGS="-fsanitize=thread" \
        -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread" >/dev/null
    cmake --build build-tsan -j "$JOBS" --target test_sweep
    # TSAN_OPTIONS halt_on_error makes any race a hard failure.
    TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_sweep
fi

echo "=== check.sh: all gates passed ==="
