#!/usr/bin/env bash
# Tracked simulator performance benchmark (host wall-clock).
#
# Builds bench/perf_harness in an optimized tree (build-bench/, Release,
# NDEBUG) and runs it, emitting BENCH_results.json at the repo root.
# Modes:
#   scripts/bench.sh                 full run (scale 0.1, 3 repetitions)
#   scripts/bench.sh --smoke         CI quick mode (scale 0.05, 1 rep)
#   scripts/bench.sh --compare=REF   also build REF in a throwaway git
#                                    worktree (this commit's harness is
#                                    copied in, so both sides time the
#                                    identical composite and kernel
#                                    phase on the same machine), run
#                                    the two binaries in alternating
#                                    rounds (UNIMEM_BENCH_COMPARE_ROUNDS,
#                                    default 3) so sustained frequency
#                                    drift can't land in the ratio, and
#                                    report best-of-rounds new-vs-REF
#                                    speedups
#   scripts/bench.sh --profile       profile the kernel phase instead of
#                                    benchmarking: runs perf_harness
#                                    --kernel-only under `perf stat`
#                                    (cycles, cache and branch misses)
#                                    when perf is available, else under
#                                    a gprof (-pg) build, and writes the
#                                    report to BENCH_profile.txt
# Extra flags (--scale=, --jobs=, --repeat=, --kernel=, --no-cache,
# --gate=) are forwarded to perf_harness. UNIMEM_BENCH_REPEAT raises
# the default repetition count on noisy machines; rates come from each
# phase's best rep, so more reps tighten the estimate. The build tree
# is .gitignore'd.
#
# Every run also appends one line to BENCH_history.jsonl (commit, date,
# cold and warm composite seconds, per-phase best seconds, kernel,
# irregular-kernel and chip-sim throughput) so the tracked numbers
# accumulate a per-commit trail.

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=${JOBS:-$(nproc)}
compare_ref=""
profile=0
harness_flags=()
for arg in "$@"; do
    case "$arg" in
      --compare=*) compare_ref="${arg#--compare=}" ;;
      --compare) echo "use --compare=REF" >&2; exit 2 ;;
      --profile) profile=1 ;;
      *) harness_flags+=("$arg") ;;
    esac
done

build_harness() { # build_harness <srcdir> <builddir>
    cmake -B "$2" -S "$1" -DCMAKE_BUILD_TYPE=Release >/dev/null
    cmake --build "$2" -j "$JOBS" --target perf_harness >/dev/null
}

if [[ "$profile" == 1 ]]; then
    echo "=== bench: profiling the kernel phase ==="
    if command -v perf >/dev/null 2>&1 &&
       perf stat -e cycles true >/dev/null 2>&1; then
        build_harness . build-bench
        perf stat -e cycles,instructions,L1-dcache-loads,L1-dcache-load-misses,branch-misses \
            -o BENCH_profile.txt -- \
            ./build-bench/bench/perf_harness --kernel-only \
            --out=/dev/null ${harness_flags[@]+"${harness_flags[@]}"}
    else
        # No usable perf (common in containers): fall back to gprof via
        # a -pg instrumented tree. Self-time percentages are usable;
        # call counts on this path are not always reliable.
        echo "=== bench: perf unavailable, using gprof fallback ==="
        cmake -B build-gprof -S . -DCMAKE_BUILD_TYPE=Release \
            -DCMAKE_CXX_FLAGS="-pg" -DCMAKE_EXE_LINKER_FLAGS="-pg" \
            >/dev/null
        cmake --build build-gprof -j "$JOBS" --target perf_harness \
            >/dev/null
        (cd build-gprof && ./bench/perf_harness --kernel-only \
            --out=/dev/null ${harness_flags[@]+"${harness_flags[@]}"})
        gprof -b build-gprof/bench/perf_harness build-gprof/gmon.out \
            > BENCH_profile.txt
    fi
    echo "=== bench: wrote BENCH_profile.txt ==="
    exit 0
fi

echo "=== bench: building perf_harness (Release) ==="
build_harness . build-bench

echo "=== bench: running perf_harness ==="
./build-bench/bench/perf_harness --out=BENCH_results.json \
    ${harness_flags[@]+"${harness_flags[@]}"}

# One JSON line per run: enough to plot the trend without digging
# through CI artifacts. jq-free extraction relies on the harness's
# fixed key layout.
json_num() { # json_num <file> <key>
    sed -n "s/.*\"$2\": \([0-9.eE+-]*\).*/\1/p" "$1" | head -n1
}
phase_best() { # phase_best <file> <phase>
    sed -n "s/.*\"name\": \"$2\".*\"best_s\": \([0-9.eE+-]*\).*/\1/p" \
        "$1" | head -n1
}
{
    printf '{"commit": "%s", "date": "%s"' \
        "$(git describe --always --dirty 2>/dev/null || echo unknown)" \
        "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
    printf ', "composite_s": %s' "$(json_num BENCH_results.json composite_s)"
    printf ', "composite_warm_s": %s' \
        "$(json_num BENCH_results.json composite_warm_s)"
    printf ', "phase_best_s": {"fig8": %s, "autotune": %s, "kernel": %s, "kernel_irr": %s, "chip": %s}' \
        "$(phase_best BENCH_results.json fig8)" \
        "$(phase_best BENCH_results.json autotune)" \
        "$(phase_best BENCH_results.json kernel)" \
        "$(phase_best BENCH_results.json kernel_irr)" \
        "$(phase_best BENCH_results.json chip)"
    printf ', "kernel_sim_cycles_per_s": %s' \
        "$(json_num BENCH_results.json kernel_sim_cycles_per_s)"
    printf ', "kernel_irr_sim_cycles_per_s": %s' \
        "$(json_num BENCH_results.json kernel_irr_sim_cycles_per_s)"
    printf ', "chip_sim_cycles_per_s": %s}\n' \
        "$(json_num BENCH_results.json chip_sim_cycles_per_s)"
} >> BENCH_history.jsonl
echo "=== bench: appended BENCH_history.jsonl ==="

if [[ -n "$compare_ref" ]]; then
    worktree=$(mktemp -d /tmp/unimem-bench-ref.XXXXXX)
    trap 'git worktree remove --force "$worktree" >/dev/null 2>&1 || true
          rm -rf "$worktree"' EXIT
    echo "=== bench: building $compare_ref for comparison ==="
    git worktree add --detach --force "$worktree" "$compare_ref" >/dev/null
    # Time the identical composite on both sides: ship this commit's
    # harness into the reference tree (it degrades gracefully on
    # commits that predate the result cache).
    cp bench/perf_harness.cc "$worktree/bench/perf_harness.cc"
    if ! grep -q 'unimem_bench(perf_harness' "$worktree/bench/CMakeLists.txt"
    then
        echo 'unimem_bench(perf_harness perf_harness.cc)' \
            >> "$worktree/bench/CMakeLists.txt"
    fi
    build_harness "$worktree" "$worktree/build-bench"

    # Interleave the two sides. A single new-then-ref sequence puts
    # minutes (including a full ref build) between the runs being
    # compared, so sustained host frequency drift lands squarely in
    # the ratio; alternating ref/new rounds on the already-built
    # binaries and comparing best-of-rounds per side cancels it.
    rounds=${UNIMEM_BENCH_COMPARE_ROUNDS:-3}
    ref_s="" ; ref_k="" ; ref_i="" ; ref_c=""
    new_s=$(json_num BENCH_results.json composite_s)
    new_k=$(json_num BENCH_results.json kernel_sim_cycles_per_s)
    new_i=$(json_num BENCH_results.json kernel_irr_sim_cycles_per_s)
    new_c=$(json_num BENCH_results.json chip_sim_cycles_per_s)
    best() { # best <min|max> <a> <b>  (empty operands pass through)
        awk -v op="$1" -v a="$2" -v b="$3" 'BEGIN {
            if (a == "") { print b; exit }
            if (b == "") { print a; exit }
            if ((op == "max") == (a + 0 > b + 0)) print a; else print b
        }'
    }
    for ((round = 1; round <= rounds; ++round)); do
        echo "=== bench: compare round $round/$rounds ==="
        (cd "$worktree" && ./build-bench/bench/perf_harness \
            --out="$worktree/BENCH_ref.json" \
            ${harness_flags[@]+"${harness_flags[@]}"}) >/dev/null
        ./build-bench/bench/perf_harness --out=BENCH_cmp.json \
            ${harness_flags[@]+"${harness_flags[@]}"} >/dev/null
        ref_s=$(best min "$ref_s" "$(json_num "$worktree/BENCH_ref.json" composite_s)")
        ref_k=$(best max "$ref_k" "$(json_num "$worktree/BENCH_ref.json" kernel_sim_cycles_per_s)")
        ref_i=$(best max "$ref_i" "$(json_num "$worktree/BENCH_ref.json" kernel_irr_sim_cycles_per_s)")
        ref_c=$(best max "$ref_c" "$(json_num "$worktree/BENCH_ref.json" chip_sim_cycles_per_s)")
        new_s=$(best min "$new_s" "$(json_num BENCH_cmp.json composite_s)")
        new_k=$(best max "$new_k" "$(json_num BENCH_cmp.json kernel_sim_cycles_per_s)")
        new_i=$(best max "$new_i" "$(json_num BENCH_cmp.json kernel_irr_sim_cycles_per_s)")
        new_c=$(best max "$new_c" "$(json_num BENCH_cmp.json chip_sim_cycles_per_s)")
    done
    rm -f BENCH_cmp.json

    awk -v new="$new_s" -v ref="$ref_s" -v refname="$compare_ref" \
        'BEGIN { printf "=== bench: composite %.3fs vs %.3fs at %s " \
                        "-> %.2fx speedup ===\n", \
                 new, ref, refname, ref / new }'
    awk -v new="$new_k" -v ref="$ref_k" -v refname="$compare_ref" \
        'BEGIN { printf "=== bench: kernel %.3g vs %.3g sim-cycles/s " \
                        "at %s -> %.2fx speedup ===\n", \
                 new, ref, refname, new / ref }'
    if [[ -n "$new_i" && -n "$ref_i" ]]; then
        awk -v new="$new_i" -v ref="$ref_i" -v refname="$compare_ref" \
            'BEGIN { printf "=== bench: kernel_irr %.3g vs %.3g " \
                            "sim-cycles/s at %s -> %.2fx speedup ===\n", \
                     new, ref, refname, new / ref }'
    fi
    awk -v new="$new_c" -v ref="$ref_c" -v refname="$compare_ref" \
        'BEGIN { printf "=== bench: chip %.3g vs %.3g agg-SM-cycles/s " \
                        "at %s -> %.2fx speedup ===\n", \
                 new, ref, refname, new / ref }'
fi

echo "=== bench: wrote BENCH_results.json ==="
