#!/usr/bin/env bash
# Tracked simulator performance benchmark (host wall-clock).
#
# Builds bench/perf_harness in an optimized tree (build-bench/, Release,
# NDEBUG) and runs it, emitting BENCH_results.json at the repo root.
# Modes:
#   scripts/bench.sh                 full run (scale 0.1, 3 repetitions)
#   scripts/bench.sh --smoke         CI quick mode (scale 0.05, 1 rep)
#   scripts/bench.sh --compare=REF   also build REF in a throwaway git
#                                    worktree (this commit's harness is
#                                    copied in, so both sides time the
#                                    identical composite and kernel
#                                    phase on the same machine) and
#                                    report new-vs-REF speedups
# Extra flags (--scale=, --jobs=, --repeat=, --kernel=, --no-cache,
# --gate=) are forwarded to perf_harness. The build tree is
# .gitignore'd.
#
# Every run also appends one line to BENCH_history.jsonl (commit, date,
# composite seconds, per-phase best seconds, kernel and chip-sim
# throughput) so the tracked numbers accumulate a per-commit trail.

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=${JOBS:-$(nproc)}
compare_ref=""
harness_flags=()
for arg in "$@"; do
    case "$arg" in
      --compare=*) compare_ref="${arg#--compare=}" ;;
      --compare) echo "use --compare=REF" >&2; exit 2 ;;
      *) harness_flags+=("$arg") ;;
    esac
done

build_harness() { # build_harness <srcdir> <builddir>
    cmake -B "$2" -S "$1" -DCMAKE_BUILD_TYPE=Release >/dev/null
    cmake --build "$2" -j "$JOBS" --target perf_harness >/dev/null
}

echo "=== bench: building perf_harness (Release) ==="
build_harness . build-bench

echo "=== bench: running perf_harness ==="
./build-bench/bench/perf_harness --out=BENCH_results.json \
    ${harness_flags[@]+"${harness_flags[@]}"}

# One JSON line per run: enough to plot the trend without digging
# through CI artifacts. jq-free extraction relies on the harness's
# fixed key layout.
json_num() { # json_num <file> <key>
    sed -n "s/.*\"$2\": \([0-9.eE+-]*\).*/\1/p" "$1" | head -n1
}
phase_best() { # phase_best <file> <phase>
    sed -n "s/.*\"name\": \"$2\".*\"best_s\": \([0-9.eE+-]*\).*/\1/p" \
        "$1" | head -n1
}
{
    printf '{"commit": "%s", "date": "%s"' \
        "$(git describe --always --dirty 2>/dev/null || echo unknown)" \
        "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
    printf ', "composite_s": %s' "$(json_num BENCH_results.json composite_s)"
    printf ', "phase_best_s": {"fig8": %s, "autotune": %s, "kernel": %s, "chip": %s}' \
        "$(phase_best BENCH_results.json fig8)" \
        "$(phase_best BENCH_results.json autotune)" \
        "$(phase_best BENCH_results.json kernel)" \
        "$(phase_best BENCH_results.json chip)"
    printf ', "kernel_sim_cycles_per_s": %s' \
        "$(json_num BENCH_results.json kernel_sim_cycles_per_s)"
    printf ', "chip_sim_cycles_per_s": %s}\n' \
        "$(json_num BENCH_results.json chip_sim_cycles_per_s)"
} >> BENCH_history.jsonl
echo "=== bench: appended BENCH_history.jsonl ==="

if [[ -n "$compare_ref" ]]; then
    worktree=$(mktemp -d /tmp/unimem-bench-ref.XXXXXX)
    trap 'git worktree remove --force "$worktree" >/dev/null 2>&1 || true
          rm -rf "$worktree"' EXIT
    echo "=== bench: building $compare_ref for comparison ==="
    git worktree add --detach --force "$worktree" "$compare_ref" >/dev/null
    # Time the identical composite on both sides: ship this commit's
    # harness into the reference tree (it degrades gracefully on
    # commits that predate the result cache).
    cp bench/perf_harness.cc "$worktree/bench/perf_harness.cc"
    if ! grep -q 'unimem_bench(perf_harness' "$worktree/bench/CMakeLists.txt"
    then
        echo 'unimem_bench(perf_harness perf_harness.cc)' \
            >> "$worktree/bench/CMakeLists.txt"
    fi
    build_harness "$worktree" "$worktree/build-bench"

    echo "=== bench: running perf_harness at $compare_ref ==="
    (cd "$worktree" && ./build-bench/bench/perf_harness \
        --out="$worktree/BENCH_ref.json" \
        ${harness_flags[@]+"${harness_flags[@]}"})

    new_s=$(json_num BENCH_results.json composite_s)
    ref_s=$(json_num "$worktree/BENCH_ref.json" composite_s)
    awk -v new="$new_s" -v ref="$ref_s" -v refname="$compare_ref" \
        'BEGIN { printf "=== bench: composite %.3fs vs %.3fs at %s " \
                        "-> %.2fx speedup ===\n", \
                 new, ref, refname, ref / new }'
    new_k=$(json_num BENCH_results.json kernel_sim_cycles_per_s)
    ref_k=$(json_num "$worktree/BENCH_ref.json" kernel_sim_cycles_per_s)
    awk -v new="$new_k" -v ref="$ref_k" -v refname="$compare_ref" \
        'BEGIN { printf "=== bench: kernel %.3g vs %.3g sim-cycles/s " \
                        "at %s -> %.2fx speedup ===\n", \
                 new, ref, refname, new / ref }'
    new_c=$(json_num BENCH_results.json chip_sim_cycles_per_s)
    ref_c=$(json_num "$worktree/BENCH_ref.json" chip_sim_cycles_per_s)
    awk -v new="$new_c" -v ref="$ref_c" -v refname="$compare_ref" \
        'BEGIN { printf "=== bench: chip %.3g vs %.3g agg-SM-cycles/s " \
                        "at %s -> %.2fx speedup ===\n", \
                 new, ref, refname, new / ref }'
fi

echo "=== bench: wrote BENCH_results.json ==="
