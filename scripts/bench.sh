#!/usr/bin/env bash
# Tracked simulator performance benchmark (host wall-clock).
#
# Builds bench/perf_harness in an optimized tree (build-bench/, Release,
# NDEBUG) and runs it, emitting BENCH_results.json at the repo root.
# Modes:
#   scripts/bench.sh                 full run (scale 0.1, 3 repetitions)
#   scripts/bench.sh --smoke         CI quick mode (scale 0.05, 1 rep)
#   scripts/bench.sh --compare REF   also build REF in a throwaway git
#                                    worktree (this commit's harness is
#                                    copied in, so both sides time the
#                                    identical fig8+autotune composite)
#                                    and report new-vs-REF speedup
# Extra flags (--scale=, --jobs=, --repeat=, --kernel=, --no-cache) are
# forwarded to perf_harness. The build tree is .gitignore'd.

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=${JOBS:-$(nproc)}
compare_ref=""
harness_flags=()
for arg in "$@"; do
    case "$arg" in
      --compare=*) compare_ref="${arg#--compare=}" ;;
      --compare) echo "use --compare=REF" >&2; exit 2 ;;
      *) harness_flags+=("$arg") ;;
    esac
done

build_harness() { # build_harness <srcdir> <builddir>
    cmake -B "$2" -S "$1" -DCMAKE_BUILD_TYPE=Release >/dev/null
    cmake --build "$2" -j "$JOBS" --target perf_harness >/dev/null
}

echo "=== bench: building perf_harness (Release) ==="
build_harness . build-bench

echo "=== bench: running perf_harness ==="
./build-bench/bench/perf_harness --out=BENCH_results.json \
    ${harness_flags[@]+"${harness_flags[@]}"}

if [[ -n "$compare_ref" ]]; then
    worktree=$(mktemp -d /tmp/unimem-bench-ref.XXXXXX)
    trap 'git worktree remove --force "$worktree" >/dev/null 2>&1 || true
          rm -rf "$worktree"' EXIT
    echo "=== bench: building $compare_ref for comparison ==="
    git worktree add --detach --force "$worktree" "$compare_ref" >/dev/null
    # Time the identical composite on both sides: ship this commit's
    # harness into the reference tree (it degrades gracefully on
    # commits that predate the result cache).
    cp bench/perf_harness.cc "$worktree/bench/perf_harness.cc"
    if ! grep -q 'unimem_bench(perf_harness' "$worktree/bench/CMakeLists.txt"
    then
        echo 'unimem_bench(perf_harness perf_harness.cc)' \
            >> "$worktree/bench/CMakeLists.txt"
    fi
    build_harness "$worktree" "$worktree/build-bench"

    echo "=== bench: running perf_harness at $compare_ref ==="
    (cd "$worktree" && ./build-bench/bench/perf_harness \
        --out="$worktree/BENCH_ref.json" \
        ${harness_flags[@]+"${harness_flags[@]}"})

    new_s=$(sed -n 's/.*"composite_s": \([0-9.eE+-]*\).*/\1/p' \
        BENCH_results.json)
    ref_s=$(sed -n 's/.*"composite_s": \([0-9.eE+-]*\).*/\1/p' \
        "$worktree/BENCH_ref.json")
    awk -v new="$new_s" -v ref="$ref_s" -v refname="$compare_ref" \
        'BEGIN { printf "=== bench: composite %.3fs vs %.3fs at %s " \
                        "-> %.2fx speedup ===\n", \
                 new, ref, refname, ref / new }'
fi

echo "=== bench: wrote BENCH_results.json ==="
