#!/usr/bin/env python3
"""Plot unimem benchmark harness output.

Usage:
    UNIMEM_TABLE=csv ./build/bench/fig9_benefit > fig9.csv
    python3 scripts/plot_results.py fig9.csv --x workload --y "norm perf"

The harnesses emit one or more CSV tables (with prose lines between
them) when UNIMEM_TABLE=csv is set. This script extracts the tables,
prints them, and renders a bar/line chart per table if matplotlib is
available.
"""

import argparse
import csv
import io
import sys


def extract_tables(text):
    """Split mixed harness output into CSV tables.

    A table is a maximal run of lines with a consistent comma count >= 1.
    """
    tables = []
    block = []
    for line in text.splitlines():
        if "," in line and (not block or
                            line.count(",") == block[0].count(",")):
            block.append(line)
        else:
            if len(block) >= 2:
                tables.append(block)
            block = [line] if "," in line else []
    if len(block) >= 2:
        tables.append(block)
    return [list(csv.reader(io.StringIO("\n".join(b)))) for b in tables]


def numeric(value):
    try:
        return float(value.rstrip("%x"))
    except ValueError:
        return None


def plot_table(rows, x_col, y_cols, out):
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib not available; table printed above only")
        return
    header, data = rows[0], rows[1:]
    if x_col not in header:
        print(f"column '{x_col}' not in {header}")
        return
    xi = header.index(x_col)
    xs = [r[xi] for r in data]
    fig, ax = plt.subplots(figsize=(max(6, len(xs) * 0.7), 4))
    for y_col in y_cols:
        if y_col not in header:
            continue
        yi = header.index(y_col)
        ys = [numeric(r[yi]) for r in data]
        ax.plot(range(len(xs)), ys, marker="o", label=y_col)
    ax.set_xticks(range(len(xs)))
    ax.set_xticklabels(xs, rotation=45, ha="right")
    ax.set_xlabel(x_col)
    ax.legend()
    ax.grid(True, alpha=0.3)
    fig.tight_layout()
    fig.savefig(out)
    print(f"wrote {out}")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("input", help="harness CSV output (or - for stdin)")
    ap.add_argument("--x", default=None, help="x-axis column")
    ap.add_argument("--y", action="append", default=[],
                    help="y column (repeatable; default: all numeric)")
    ap.add_argument("--out", default="plot.png")
    args = ap.parse_args()

    text = (sys.stdin.read() if args.input == "-" else
            open(args.input).read())
    tables = extract_tables(text)
    if not tables:
        sys.exit("no CSV tables found (did you set UNIMEM_TABLE=csv?)")

    for i, rows in enumerate(tables):
        header, data = rows[0], rows[1:]
        print(f"table {i}: {len(data)} rows, columns {header}")
        x = args.x or header[0]
        ys = args.y or [c for c in header[1:]
                        if data and numeric(data[0][header.index(c)])
                        is not None]
        out = (args.out if len(tables) == 1 else
               args.out.replace(".png", f"_{i}.png"))
        plot_table(rows, x, ys, out)


if __name__ == "__main__":
    main()
