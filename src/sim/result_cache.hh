/**
 * @file
 * Config-keyed simulation result memoization.
 *
 * Every simulation of a registry benchmark is a pure function of
 * (benchmark name, scale, RunSpec): the RNG is seeded from the spec and
 * the trace generators are deterministic (the invariant the sweep engine
 * already audits via UNIMEM_CHECK_DETERMINISM). The figure/table
 * harnesses, the thread-limit autotuner, and the Fermi best-of loops all
 * probe overlapping points, so simulateBenchmark() fronts the simulator
 * with a process-wide, thread-safe, LRU-bounded result cache: duplicate
 * points simulate once and every later probe is a map lookup.
 *
 * The cache key is the *resolved* form of a run - benchmark identity
 * (name, scale, KernelParams), the allocation the RunSpec implies
 * (partition, LaunchConfig), and every model knob the SmRunConfig
 * carries (design, active set, hierarchy/conflict/cache policy, seed) -
 * serialized as raw bytes and compared exactly (no hash-collision
 * risk). Keying on the resolved allocation instead of the raw RunSpec
 * captures strictly more reuse: the thread-limit autotuner probes specs
 * that differ only in threadLimit yet collapse to the allocation a
 * figure sweep already simulated, and those now hit. A hit is
 * bit-identical to re-simulating by construction. simulate() on an
 * arbitrary KernelModel is NOT cached: only the registry factory
 * guarantees that (name, scale) pins down the whole workload.
 *
 * Environment knobs (read once at first use):
 *   UNIMEM_RESULT_CACHE=0|off      disable memoization
 *   UNIMEM_RESULT_CACHE_ENTRIES=N  LRU capacity (default 8192)
 */

#ifndef UNIMEM_SIM_RESULT_CACHE_HH
#define UNIMEM_SIM_RESULT_CACHE_HH

#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "sim/simulator.hh"

namespace unimem {

/**
 * Exact-match key for one simulation point: benchmark identity plus the
 * resolved (KernelParams, allocation, SmRunConfig-equivalent, seed)
 * content. @p kp must be the params of the kernel (name, scale) creates.
 */
std::string resultCacheKey(const std::string& benchmark, double scale,
                           const KernelParams& kp, const RunSpec& spec);

/**
 * Thread-safe LRU map from cache key to SimResult. All counters and the
 * LRU structure are guarded by one mutex; the lock is never held while a
 * simulation runs, so concurrent sweep workers that miss on the same key
 * simulate independently and the last insert wins (both results are
 * identical by the determinism invariant).
 */
class SimResultCache
{
  public:
    explicit SimResultCache(size_t capacity = kDefaultCapacity);

    /** Copy of the cached result, or nullopt. Counts a hit or a miss. */
    std::optional<SimResult> lookup(const std::string& key);

    /** Insert (or refresh) @p key, evicting LRU entries beyond capacity. */
    void insert(const std::string& key, const SimResult& result);

    /** Drop all entries (counters keep accumulating). */
    void clear();

    /** Memoization on/off; lookups and inserts are no-ops when off. */
    void setEnabled(bool enabled);
    bool enabled() const;

    /** Resize the LRU bound, evicting immediately if shrinking. */
    void setCapacity(size_t capacity);
    size_t capacity() const;

    size_t size() const;
    u64 hits() const;
    u64 misses() const;
    u64 evictions() const;

    static constexpr size_t kDefaultCapacity = 8192;

  private:
    void evictToCapacityLocked();

    mutable std::mutex mu_;
    size_t capacity_;
    bool enabled_ = true;

    /** Most-recently-used entries at the front. */
    std::list<std::pair<std::string, SimResult>> lru_;
    std::unordered_map<std::string, decltype(lru_)::iterator> map_;

    u64 hits_ = 0;
    u64 misses_ = 0;
    u64 evictions_ = 0;
};

/** The process-wide cache simulateBenchmark() consults. */
SimResultCache& resultCache();

/**
 * RAII guard that turns the global cache off (tests that must exercise
 * real re-simulation, e.g. the sweep determinism suite).
 */
class ScopedResultCacheDisable
{
  public:
    ScopedResultCacheDisable() : prev_(resultCache().enabled())
    {
        resultCache().setEnabled(false);
    }

    ~ScopedResultCacheDisable() { resultCache().setEnabled(prev_); }

    ScopedResultCacheDisable(const ScopedResultCacheDisable&) = delete;
    ScopedResultCacheDisable&
    operator=(const ScopedResultCacheDisable&) = delete;

  private:
    bool prev_;
};

} // namespace unimem

#endif // UNIMEM_SIM_RESULT_CACHE_HH
