#include "sim/sweep.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <stdexcept>
#include <thread>

#include "common/log.hh"
#include "common/worker_pool.hh"
#include "sim/result_cache.hh"

namespace unimem {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** Set while the current thread is executing a sweep job. */
thread_local bool tlInSweepWorker = false;

struct JobOutcome
{
    SimResult result;
    std::exception_ptr error;
};

SimResult
executeJob(const SweepJob& job)
{
    if (job.run)
        return job.run();
    return simulateBenchmark(job.benchmark, job.scale, job.spec);
}

} // namespace

SweepJob
makeSweepJob(std::string label, std::string benchmark, double scale,
             const RunSpec& spec)
{
    SweepJob job;
    job.label = std::move(label);
    job.benchmark = std::move(benchmark);
    job.scale = scale;
    job.spec = spec;
    return job;
}

double
SweepStats::utilization() const
{
    if (workers == 0 || wallSeconds <= 0.0)
        return 0.0;
    double busy = 0.0;
    for (double s : workerBusySeconds)
        busy += s;
    return busy / (static_cast<double>(workers) * wallSeconds);
}

std::string
SweepStats::summary() const
{
    std::string s =
        strprintf("%llu jobs on %u worker%s in %.3fs (utilization "
                  "%.0f%%)",
                  static_cast<unsigned long long>(jobCount), workers,
                  workers == 1 ? "" : "s", wallSeconds,
                  utilization() * 100.0);
    if (memoHits + memoMisses > 0)
        s += strprintf(", memo %llu hit%s / %llu miss%s",
                       static_cast<unsigned long long>(memoHits),
                       memoHits == 1 ? "" : "s",
                       static_cast<unsigned long long>(memoMisses),
                       memoMisses == 1 ? "" : "es");
    return s;
}

SweepRunner::SweepRunner(u32 workers)
    : workers_(resolveWorkerCount(workers))
{
}

SweepRunner::~SweepRunner() = default;

u32
SweepRunner::resolveWorkerCount(u32 requested)
{
    if (requested != 0)
        return requested;
    if (const char* env = std::getenv("UNIMEM_JOBS")) {
        long n = std::atol(env);
        if (n > 0)
            return static_cast<u32>(n);
        warn("ignoring invalid UNIMEM_JOBS='%s'", env);
    }
    u32 hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

bool
SweepRunner::inSweepWorker()
{
    return tlInSweepWorker;
}

std::vector<SimResult>
SweepRunner::run(const std::vector<SweepJob>& jobs)
{
    stats_ = SweepStats{};
    stats_.jobCount = jobs.size();
    stats_.jobSeconds.assign(jobs.size(), 0.0);
    stats_.jobCycles.assign(jobs.size(), 0);

    // Nested sweeps run serially on the calling worker so pools never
    // multiply; tiny batches skip thread startup entirely.
    u32 workers = workers_;
    if (tlInSweepWorker || jobs.size() <= 1)
        workers = 1;
    workers = std::min<u32>(
        workers, static_cast<u32>(std::max<size_t>(jobs.size(), 1)));
    stats_.workers = workers;
    stats_.workerBusySeconds.assign(workers, 0.0);

    std::vector<JobOutcome> outcomes(jobs.size());
    Clock::time_point sweepStart = Clock::now();
    u64 memoHits0 = resultCache().hits();
    u64 memoMisses0 = resultCache().misses();

    // Each worker claims the next unclaimed index and writes the
    // outcome into that index's slot: completion order never affects
    // the returned order, which keeps parallel output byte-identical
    // to the serial path.
    std::atomic<size_t> next{0};
    auto workerLoop = [&](u32 workerId) {
        bool wasInWorker = tlInSweepWorker;
        tlInSweepWorker = true;
        Clock::time_point busyStart = Clock::now();
        for (;;) {
            size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= jobs.size())
                break;
            Clock::time_point jobStart = Clock::now();
            try {
                outcomes[i].result = executeJob(jobs[i]);
                stats_.jobCycles[i] = outcomes[i].result.cycles();
            } catch (...) {
                outcomes[i].error = std::current_exception();
            }
            stats_.jobSeconds[i] = secondsSince(jobStart);
        }
        stats_.workerBusySeconds[workerId] = secondsSince(busyStart);
        tlInSweepWorker = wasInWorker;
    };

    if (workers <= 1) {
        workerLoop(0);
    } else {
        // Shared fork-join pool (common/worker_pool.hh): one slot per
        // worker, each slot running the dynamic claim loop above. The
        // pool is kept across run() calls so repeated sweeps reuse the
        // parked threads.
        if (pool_ == nullptr || pool_->workers() < workers)
            pool_ = std::make_unique<WorkerPool>(workers);
        pool_->dispatch(workers, workerLoop);
    }
    stats_.wallSeconds = secondsSince(sweepStart);
    stats_.memoHits = resultCache().hits() - memoHits0;
    stats_.memoMisses = resultCache().misses() - memoMisses0;

    // Propagate the first failure in submission order - deterministic
    // no matter which worker hit it first.
    for (size_t i = 0; i < outcomes.size(); ++i) {
        if (outcomes[i].error) {
            try {
                std::rethrow_exception(outcomes[i].error);
            } catch (const std::exception& e) {
                throw std::runtime_error(
                    strprintf("sweep job %zu ('%s') failed: %s", i,
                              jobs[i].label.c_str(), e.what()));
            }
        }
    }

    std::vector<SimResult> results;
    results.reserve(outcomes.size());
    for (JobOutcome& o : outcomes)
        results.push_back(std::move(o.result));
    return results;
}

std::vector<SimResult>
runSweep(const std::vector<SweepJob>& jobs, u32 workers,
         SweepStats* stats)
{
    SweepRunner runner(workers);
    std::vector<SimResult> results = runner.run(jobs);
    if (stats)
        *stats = runner.stats();
    return results;
}

} // namespace unimem
