/**
 * @file
 * Shared experiment helpers for the paper-reproduction harnesses:
 * baseline/unified/Fermi-like runs, best-of-two Fermi selection, thread
 * count autotuning, and normalized metric computation (performance,
 * chip energy, DRAM traffic) against a calibrated baseline.
 */

#ifndef UNIMEM_SIM_EXPERIMENTS_HH
#define UNIMEM_SIM_EXPERIMENTS_HH

#include <optional>
#include <string>
#include <vector>

#include "sim/simulator.hh"

namespace unimem {

/** Run a benchmark on the paper's 256/64/64 partitioned baseline. */
SimResult runBaseline(const std::string& name, double scale);

/** Run a benchmark on the unified design at @p capacity (Section 4.5). */
SimResult runUnified(const std::string& name, double scale, u64 capacity);

/**
 * Run both Fermi-like options at @p totalBytes and return the
 * better-performing feasible one (paper Section 6.3: the programmer
 * picks the configuration per application).
 */
SimResult runFermiBest(const std::string& name, double scale,
                       u64 totalBytes);

/**
 * Sweep thread limits (multiples of 256) and return the
 * best-performing unified run (paper Section 4.5's autotuning remark).
 */
SimResult runUnifiedAutotuned(const std::string& name, double scale,
                              u64 capacity);

/** Normalized comparison of a run against a baseline run. */
struct Comparison
{
    /** baseline cycles / run cycles (> 1 means the run is faster). */
    double speedup = 1.0;

    /** run energy / baseline energy (< 1 means the run is better). */
    double energyRatio = 1.0;

    /** run DRAM sectors / baseline DRAM sectors. */
    double dramRatio = 1.0;
};

/**
 * Compare @p run to @p baseline using the Section 5.2 energy model with
 * the benchmark's dynamic power calibrated on @p baseline.
 */
Comparison compare(const SimResult& run, const SimResult& baseline);

/** Total chip-view energy (J) of @p run calibrated on @p baseline. */
double energyOf(const SimResult& run, const SimResult& baseline);

/** Energy decomposition of @p run calibrated on @p baseline. */
EnergyBreakdown energyBreakdownOf(const SimResult& run,
                                  const SimResult& baseline);

} // namespace unimem

#endif // UNIMEM_SIM_EXPERIMENTS_HH
