/**
 * @file
 * Parallel sweep engine: run many independent simulations concurrently
 * on a worker pool and return the results in submission order.
 *
 * Every figure/table harness replays dozens of (benchmark, RunSpec)
 * points; each point is pure (seeded RNG in, SimResult out), so the
 * sweep parallelizes trivially. The engine guarantees determinism: each
 * job runs an isolated simulator with its own seeded RNG and writes its
 * result into a slot addressed by submission index, so output is
 * byte-identical to the serial path regardless of worker count or
 * completion order.
 *
 * Worker count resolution (first match wins):
 *   1. explicit count passed to the constructor / runSweep()
 *   2. the UNIMEM_JOBS environment variable
 *   3. std::thread::hardware_concurrency()
 *
 * Nested sweeps (a job that itself calls runSweep, e.g. runFermiBest
 * inside a fig10 job) execute serially on the calling worker instead of
 * spawning a second pool, so worker counts never multiply.
 */

#ifndef UNIMEM_SIM_SWEEP_HH
#define UNIMEM_SIM_SWEEP_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/simulator.hh"

namespace unimem {
class WorkerPool;
}

namespace unimem {

/** One sweep point: a labeled simulation to run. */
struct SweepJob
{
    /** Identifies the point in stats, errors, and reports. */
    std::string label;

    /** Registry benchmark to instantiate (ignored when `run` is set). */
    std::string benchmark;

    /** Workload scale (ignored when `run` is set). */
    double scale = 0.5;

    /** Configuration to simulate (ignored when `run` is set). */
    RunSpec spec;

    /**
     * Optional custom thunk replacing the (benchmark, scale, spec)
     * simulation - for composite points such as best-of-N selections.
     * Must be safe to call from a worker thread.
     */
    std::function<SimResult()> run;
};

/** Convenience constructor for the common (label, RunSpec) job. */
SweepJob makeSweepJob(std::string label, std::string benchmark,
                      double scale, const RunSpec& spec);

/** Observability record of one sweep execution. */
struct SweepStats
{
    /** Workers the pool actually used. */
    u32 workers = 0;

    /** Jobs submitted. */
    u64 jobCount = 0;

    /** Wall time of the whole sweep (seconds). */
    double wallSeconds = 0.0;

    /** Per-job wall time (seconds), in submission order. */
    std::vector<double> jobSeconds;

    /** Per-job simulated cycles, in submission order (0 on failure). */
    std::vector<u64> jobCycles;

    /** Busy time per worker (seconds). */
    std::vector<double> workerBusySeconds;

    /** Result-cache hits during this run (duplicate points memoized). */
    u64 memoHits = 0;

    /** Result-cache misses during this run (points actually simulated). */
    u64 memoMisses = 0;

    /** Sum of worker busy time / (workers * wall); 0 when empty. */
    double utilization() const;

    /** One-line human-readable summary. */
    std::string summary() const;
};

/**
 * Thread-pool sweep runner. Construct once, run one or more job
 * batches; stats() describes the most recent run() call.
 */
class SweepRunner
{
  public:
    /** @param workers worker count; 0 resolves via resolveWorkerCount */
    explicit SweepRunner(u32 workers = 0);

    /** Worker count this runner will use. */
    u32 workers() const { return workers_; }

    /**
     * Execute @p jobs and return their results in submission order.
     * If any job throws, the first failing job (by submission order) has
     * its exception rethrown after all workers drain; results of other
     * jobs are discarded.
     */
    std::vector<SimResult> run(const std::vector<SweepJob>& jobs);

    /** Stats of the most recent run(). */
    const SweepStats& stats() const { return stats_; }

    /**
     * Resolve a worker count: @p requested if nonzero, else the
     * UNIMEM_JOBS environment variable, else hardware_concurrency
     * (minimum 1).
     */
    static u32 resolveWorkerCount(u32 requested = 0);

    /** True while the calling thread is executing a sweep job. */
    static bool inSweepWorker();

    ~SweepRunner();

  private:
    u32 workers_;
    SweepStats stats_;

    /** Lazily created, reused across run() calls. */
    std::unique_ptr<WorkerPool> pool_;
};

/** One-shot helper: run @p jobs on a fresh SweepRunner. */
std::vector<SimResult> runSweep(const std::vector<SweepJob>& jobs,
                                u32 workers = 0,
                                SweepStats* stats = nullptr);

} // namespace unimem

#endif // UNIMEM_SIM_SWEEP_HH
