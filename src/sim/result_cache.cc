#include "sim/result_cache.hh"

#include <cstdlib>
#include <cstring>
#include <type_traits>

#include "common/log.hh"

namespace unimem {

namespace {

/** Append the raw bytes of @p v to @p key. */
template <typename T>
void
appendBytes(std::string& key, const T& v)
{
    static_assert(std::is_trivially_copyable_v<T>);
    const char* p = reinterpret_cast<const char*>(&v);
    key.append(p, sizeof(T));
}

} // namespace

std::string
resultCacheKey(const std::string& benchmark, double scale,
               const KernelParams& kp, const RunSpec& spec)
{
    // The key is the resolved run: any two RunSpecs that collapse to
    // the same allocation (e.g. autotuner thread limits past the
    // occupancy knee) share an entry. Every field that reaches the
    // SmRunConfig participates; the asserts fail the build when a field
    // is added so this list cannot rot. (Sizes are the x86-64 SysV
    // layout the toolchain and CI both use.)
#if defined(__x86_64__) && defined(__linux__)
    static_assert(sizeof(RunSpec) == 72,
                  "RunSpec changed: add the new field to resultCacheKey");
    static_assert(sizeof(LaunchConfig) == 40,
                  "LaunchConfig changed: add the field to resultCacheKey");
#endif
    AllocationDecision alloc = resolveAllocation(kp, spec);

    std::string key;
    key.reserve(benchmark.size() + 1 + 120);
    key += benchmark;
    key += '\0'; // names never contain NUL; keeps the key unambiguous
    appendBytes(key, scale);

    // Kernel identity beyond the name (defensive against a registry
    // change remapping the same (name, scale) to new parameters).
    appendBytes(key, kp.regsPerThread);
    appendBytes(key, kp.sharedBytesPerCta);
    appendBytes(key, kp.ctaThreads);
    appendBytes(key, kp.gridCtas);

    // Resolved allocation. spec.design (not the post-resolution Fermi ->
    // Partitioned mapping) so FermiLike results keep their design tag.
    appendBytes(key, spec.design);
    appendBytes(key, alloc.partition.rfBytes);
    appendBytes(key, alloc.partition.sharedBytes);
    appendBytes(key, alloc.partition.cacheBytes);
    appendBytes(key, alloc.launch.feasible);
    appendBytes(key, alloc.launch.regsPerThread);
    appendBytes(key, alloc.launch.spillMultiplier);
    appendBytes(key, alloc.launch.ctas);
    appendBytes(key, alloc.launch.threads);
    appendBytes(key, alloc.launch.rfBytes);
    appendBytes(key, alloc.launch.sharedBytes);

    // Model knobs the SmRunConfig carries verbatim.
    appendBytes(key, spec.rfHierarchy);
    appendBytes(key, spec.conflictPenalties);
    appendBytes(key, spec.aggressiveUnified);
    appendBytes(key, spec.cachePolicy);
    appendBytes(key, spec.activeSetSize);
    appendBytes(key, spec.seed);
    return key;
}

SimResultCache::SimResultCache(size_t capacity) : capacity_(capacity)
{
}

std::optional<SimResult>
SimResultCache::lookup(const std::string& key)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!enabled_)
        return std::nullopt;
    auto it = map_.find(key);
    if (it == map_.end()) {
        ++misses_;
        return std::nullopt;
    }
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->second;
}

void
SimResultCache::insert(const std::string& key, const SimResult& result)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!enabled_ || capacity_ == 0)
        return;
    auto it = map_.find(key);
    if (it != map_.end()) {
        // Concurrent workers can race to fill the same key; by the
        // determinism invariant both computed the same result.
        it->second->second = result;
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    lru_.emplace_front(key, result);
    map_[key] = lru_.begin();
    evictToCapacityLocked();
}

void
SimResultCache::evictToCapacityLocked()
{
    while (lru_.size() > capacity_) {
        map_.erase(lru_.back().first);
        lru_.pop_back();
        ++evictions_;
    }
}

void
SimResultCache::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    lru_.clear();
    map_.clear();
}

void
SimResultCache::setEnabled(bool enabled)
{
    std::lock_guard<std::mutex> lock(mu_);
    enabled_ = enabled;
}

bool
SimResultCache::enabled() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return enabled_;
}

void
SimResultCache::setCapacity(size_t capacity)
{
    std::lock_guard<std::mutex> lock(mu_);
    capacity_ = capacity;
    evictToCapacityLocked();
}

size_t
SimResultCache::capacity() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return capacity_;
}

size_t
SimResultCache::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return lru_.size();
}

u64
SimResultCache::hits() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return hits_;
}

u64
SimResultCache::misses() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return misses_;
}

u64
SimResultCache::evictions() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return evictions_;
}

SimResultCache&
resultCache()
{
    static SimResultCache* cache = [] {
        auto* c = new SimResultCache();
        if (const char* env = std::getenv("UNIMEM_RESULT_CACHE")) {
            if (std::strcmp(env, "0") == 0 ||
                std::strcmp(env, "off") == 0)
                c->setEnabled(false);
        }
        if (const char* env =
                std::getenv("UNIMEM_RESULT_CACHE_ENTRIES")) {
            long n = std::atol(env);
            if (n >= 0)
                c->setCapacity(static_cast<size_t>(n));
            else
                warn("ignoring invalid UNIMEM_RESULT_CACHE_ENTRIES='%s'",
                     env);
        }
        return c;
    }();
    return *cache;
}

} // namespace unimem
