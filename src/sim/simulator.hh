/**
 * @file
 * Public simulation facade: describe a run (benchmark, design, capacity,
 * optional overrides), get back timing, traffic, and energy-accounting
 * inputs. This is the API the examples and benchmark harnesses use.
 */

#ifndef UNIMEM_SIM_SIMULATOR_HH
#define UNIMEM_SIM_SIMULATOR_HH

#include <string>

#include "core/allocation.hh"
#include "energy/energy_model.hh"
#include "sm/sm.hh"

namespace unimem {

/** Full description of one simulation run. */
struct RunSpec
{
    DesignKind design = DesignKind::Partitioned;

    /** Capacities for Partitioned / FermiLike designs. */
    MemoryPartition partition = baselinePartition();

    /** Total capacity for the Unified design. */
    u64 unifiedCapacity = 384_KB;

    /**
     * Unified design only: instead of the Section 4.5 split, use
     * `partition` verbatim (unified bank structure, fixed split). Used
     * for no-reconfiguration comparisons across kernel sequences.
     */
    bool unifiedUseFixedPartition = false;

    /** Cap on resident threads (sensitivity sweeps); 0 = maximum. */
    u32 threadLimit = kMaxThreadsPerSm;

    /** Registers per thread override; 0 = the kernel's no-spill count. */
    u32 regsOverride = 0;

    /** Model options / ablations. */
    bool rfHierarchy = true;
    bool conflictPenalties = true;
    bool aggressiveUnified = false;
    WritePolicy cachePolicy = WritePolicy::WriteThrough;
    u32 activeSetSize = 8;

    u64 seed = 1;
};

/** Everything one run produces. */
struct SimResult
{
    SmStats sm;
    AllocationDecision alloc;
    EnergyInputs energy;

    Cycle cycles() const { return sm.cycles; }
    u64 dramSectors() const { return sm.dramSectors(); }
};

/** Map SM statistics to energy-model inputs. */
EnergyInputs energyInputsOf(const SmStats& sm,
                            const AllocationDecision& alloc);

/** Resolve the allocation a RunSpec implies for @p kp. */
AllocationDecision resolveAllocation(const KernelParams& kp,
                                     const RunSpec& spec);

/**
 * Field-by-field equality of two results: allocation, launch, every
 * exported SM statistic, and the derived energy inputs. This is the
 * determinism predicate the sweep engine relies on: two simulations of
 * the same RunSpec must satisfy it.
 */
bool identicalResults(const SimResult& a, const SimResult& b);

/**
 * Run one kernel under one spec. Fatal if the launch is infeasible.
 *
 * When the UNIMEM_CHECK_DETERMINISM environment variable is set, every
 * simulation runs twice and panics unless both runs produce identical
 * results (the seed-plumbing audit backing the parallel sweep engine).
 */
SimResult simulate(const KernelModel& kernel, const RunSpec& spec);

/**
 * Convenience: instantiate a registry benchmark and run it.
 *
 * Fronted by the process-wide result cache (sim/result_cache.hh):
 * a (name, scale, spec) point that has already been simulated returns
 * its memoized SimResult instead of re-simulating. Disable with
 * UNIMEM_RESULT_CACHE=0 or a ScopedResultCacheDisable guard.
 */
SimResult simulateBenchmark(const std::string& name, double scale,
                            const RunSpec& spec);

} // namespace unimem

#endif // UNIMEM_SIM_SIMULATOR_HH
