#include "sim/multi_kernel.hh"

#include <algorithm>

#include "common/log.hh"
#include "kernels/registry.hh"

namespace unimem {

const char*
reconfigPolicyName(ReconfigPolicy p)
{
    switch (p) {
      case ReconfigPolicy::PartitionedBaseline: return "partitioned";
      case ReconfigPolicy::UnifiedStatic: return "unified-static";
      case ReconfigPolicy::UnifiedPerKernel: return "unified-per-kernel";
    }
    panic("reconfigPolicyName: bad policy %d", static_cast<int>(p));
}

MemoryPartition
staticCompromisePartition(const std::vector<KernelStage>& stages,
                          u64 capacity)
{
    // Registers and scratchpad must satisfy the hungriest stage of the
    // whole application; whatever is left over serves as cache. This is
    // what a flexible-but-unreconfigurable design is forced into.
    u64 rf = 0, shared = 0;
    for (const KernelStage& st : stages) {
        auto k = createBenchmark(st.benchmark, st.scale);
        AllocationDecision d = allocateUnified(k->params(), capacity);
        if (!d.launch.feasible)
            fatal("staticCompromisePartition: %s does not fit in %llu "
                  "bytes",
                  st.benchmark.c_str(),
                  static_cast<unsigned long long>(capacity));
        rf = std::max(rf, d.partition.rfBytes);
        shared = std::max(shared, d.partition.sharedBytes);
    }
    MemoryPartition p;
    if (rf + shared > capacity) {
        // Cannot satisfy both maxima at once: shrink the register file
        // (the compiler spills) so at least the scratchpad demand fits.
        rf = capacity > shared ? capacity - shared : 0;
    }
    p.rfBytes = rf;
    p.sharedBytes = shared;
    p.cacheBytes = capacity - rf - shared;
    return p;
}

namespace {

RunSpec
specFor(ReconfigPolicy policy, const MemoryPartition& staticSplit,
        u64 capacity, WritePolicy writePolicy)
{
    RunSpec spec;
    spec.cachePolicy = writePolicy;
    switch (policy) {
      case ReconfigPolicy::PartitionedBaseline:
        spec.design = DesignKind::Partitioned;
        spec.partition = baselinePartition();
        break;
      case ReconfigPolicy::UnifiedStatic:
        spec.design = DesignKind::Unified;
        spec.unifiedUseFixedPartition = true;
        spec.partition = staticSplit;
        break;
      case ReconfigPolicy::UnifiedPerKernel:
        spec.design = DesignKind::Unified;
        spec.unifiedCapacity = capacity;
        break;
    }
    return spec;
}

} // namespace

SequenceResult
runSequence(const std::vector<KernelStage>& stages, ReconfigPolicy policy,
            u64 capacity, WritePolicy writePolicy)
{
    if (stages.empty())
        fatal("runSequence: empty kernel sequence");

    SequenceResult seq;
    seq.policy = policy;

    MemoryPartition static_split;
    if (policy == ReconfigPolicy::UnifiedStatic)
        static_split = staticCompromisePartition(stages, capacity);

    u64 pending_dirty = 0;
    for (size_t i = 0; i < stages.size(); ++i) {
        const KernelStage& st = stages[i];
        RunSpec spec =
            specFor(policy, static_split, capacity, writePolicy);

        StageResult stage;
        stage.benchmark = st.benchmark;
        stage.sim = simulateBenchmark(st.benchmark, st.scale, spec);
        stage.partition = stage.sim.alloc.partition;
        stage.threads = stage.sim.alloc.launch.threads;
        stage.cycles = stage.sim.cycles();

        // Repartitioning happens before this launch (the first launch
        // configures an empty machine; a static split never changes).
        bool repartition =
            policy == ReconfigPolicy::UnifiedPerKernel && i > 0;
        if (repartition) {
            ++seq.reconfigs;
            // The previous kernel's dirty lines must drain through the
            // SM's DRAM bandwidth share before banks can be reassigned.
            // Write-through never has dirty data: the drain is free.
            stage.reconfigCycles =
                pending_dirty * kCacheLineBytes / kDramBytesPerCycle;
        }

        pending_dirty = stage.sim.sm.dirtyLinesAtEnd;
        seq.totalCycles += stage.cycles + stage.reconfigCycles;
        seq.stages.push_back(std::move(stage));
    }
    return seq;
}

} // namespace unimem
