#include "sim/experiments.hh"

#include "common/log.hh"
#include "kernels/registry.hh"

namespace unimem {

SimResult
runBaseline(const std::string& name, double scale)
{
    RunSpec spec;
    spec.design = DesignKind::Partitioned;
    spec.partition = baselinePartition();
    return simulateBenchmark(name, scale, spec);
}

SimResult
runUnified(const std::string& name, double scale, u64 capacity)
{
    RunSpec spec;
    spec.design = DesignKind::Unified;
    spec.unifiedCapacity = capacity;
    return simulateBenchmark(name, scale, spec);
}

SimResult
runFermiBest(const std::string& name, double scale, u64 totalBytes)
{
    std::optional<SimResult> best;
    for (const MemoryPartition& part : fermiLikeOptions(totalBytes)) {
        RunSpec spec;
        spec.design = DesignKind::FermiLike;
        spec.partition = part;
        std::unique_ptr<KernelModel> kernel = createBenchmark(name, scale);
        AllocationDecision d = resolveAllocation(kernel->params(), spec);
        if (!d.launch.feasible)
            continue;
        SimResult res = simulate(*kernel, spec);
        if (!best || res.cycles() < best->cycles())
            best = std::move(res);
    }
    if (!best)
        fatal("runFermiBest: no feasible Fermi-like option for %s",
              name.c_str());
    return *best;
}

SimResult
runUnifiedAutotuned(const std::string& name, double scale, u64 capacity)
{
    std::optional<SimResult> best;
    for (u32 limit = 256; limit <= kMaxThreadsPerSm; limit += 256) {
        RunSpec spec;
        spec.design = DesignKind::Unified;
        spec.unifiedCapacity = capacity;
        spec.threadLimit = limit;
        std::unique_ptr<KernelModel> kernel = createBenchmark(name, scale);
        AllocationDecision d = resolveAllocation(kernel->params(), spec);
        if (!d.launch.feasible)
            continue;
        if (best && d.launch.threads == best->alloc.launch.threads)
            continue; // same occupancy as a previous point
        SimResult res = simulate(*kernel, spec);
        if (!best || res.cycles() < best->cycles())
            best = std::move(res);
    }
    if (!best)
        fatal("runUnifiedAutotuned: %s infeasible at %llu bytes",
              name.c_str(), static_cast<unsigned long long>(capacity));
    return *best;
}

double
energyOf(const SimResult& run, const SimResult& baseline)
{
    return energyBreakdownOf(run, baseline).total();
}

EnergyBreakdown
energyBreakdownOf(const SimResult& run, const SimResult& baseline)
{
    EnergyParams params;
    double other = calibrateOtherDynamicPower(baseline.energy, params);
    return computeEnergy(run.energy, params, other);
}

Comparison
compare(const SimResult& run, const SimResult& baseline)
{
    Comparison c;
    c.speedup = static_cast<double>(baseline.cycles()) /
                static_cast<double>(run.cycles());
    double base_j = energyOf(baseline, baseline);
    double run_j = energyOf(run, baseline);
    c.energyRatio = run_j / base_j;
    u64 base_dram = baseline.dramSectors();
    c.dramRatio = base_dram == 0
                      ? 1.0
                      : static_cast<double>(run.dramSectors()) /
                            static_cast<double>(base_dram);
    return c;
}

} // namespace unimem
