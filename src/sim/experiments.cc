#include "sim/experiments.hh"

#include "common/log.hh"
#include "kernels/registry.hh"
#include "sim/sweep.hh"

namespace unimem {

SimResult
runBaseline(const std::string& name, double scale)
{
    RunSpec spec;
    spec.design = DesignKind::Partitioned;
    spec.partition = baselinePartition();
    return simulateBenchmark(name, scale, spec);
}

SimResult
runUnified(const std::string& name, double scale, u64 capacity)
{
    RunSpec spec;
    spec.design = DesignKind::Unified;
    spec.unifiedCapacity = capacity;
    return simulateBenchmark(name, scale, spec);
}

namespace {

/**
 * Run the candidate configurations through the sweep engine and keep
 * the fastest (earliest submitted wins ties, matching the serial
 * best-of loops these helpers replace).
 */
SimResult
bestOf(const std::vector<SweepJob>& jobs)
{
    std::vector<SimResult> results = runSweep(jobs);
    size_t best = 0;
    for (size_t i = 1; i < results.size(); ++i)
        if (results[i].cycles() < results[best].cycles())
            best = i;
    return std::move(results[best]);
}

} // namespace

SimResult
runFermiBest(const std::string& name, double scale, u64 totalBytes)
{
    std::vector<SweepJob> jobs;
    for (const MemoryPartition& part : fermiLikeOptions(totalBytes)) {
        RunSpec spec;
        spec.design = DesignKind::FermiLike;
        spec.partition = part;
        std::unique_ptr<KernelModel> kernel = createBenchmark(name, scale);
        if (!resolveAllocation(kernel->params(), spec).launch.feasible)
            continue;
        jobs.push_back(makeSweepJob(name + "/fermi/" + part.str(), name,
                                    scale, spec));
    }
    if (jobs.empty())
        fatal("runFermiBest: no feasible Fermi-like option for %s",
              name.c_str());
    return bestOf(jobs);
}

SimResult
runUnifiedAutotuned(const std::string& name, double scale, u64 capacity)
{
    // Resolve allocations serially (cheap) and keep the first thread
    // limit reaching each distinct occupancy; duplicate occupancies
    // simulate identically, so dropping them preserves the result of
    // the serial best-of loop while the pool runs the distinct points.
    std::vector<SweepJob> jobs;
    u32 lastThreads = 0;
    for (u32 limit = 256; limit <= kMaxThreadsPerSm; limit += 256) {
        RunSpec spec;
        spec.design = DesignKind::Unified;
        spec.unifiedCapacity = capacity;
        spec.threadLimit = limit;
        std::unique_ptr<KernelModel> kernel = createBenchmark(name, scale);
        AllocationDecision d = resolveAllocation(kernel->params(), spec);
        if (!d.launch.feasible)
            continue;
        if (!jobs.empty() && d.launch.threads == lastThreads)
            continue;
        lastThreads = d.launch.threads;
        jobs.push_back(makeSweepJob(
            name + "/autotune/" + std::to_string(limit), name, scale,
            spec));
    }
    if (jobs.empty())
        fatal("runUnifiedAutotuned: %s infeasible at %llu bytes",
              name.c_str(), static_cast<unsigned long long>(capacity));
    return bestOf(jobs);
}

double
energyOf(const SimResult& run, const SimResult& baseline)
{
    return energyBreakdownOf(run, baseline).total();
}

EnergyBreakdown
energyBreakdownOf(const SimResult& run, const SimResult& baseline)
{
    EnergyParams params;
    double other = calibrateOtherDynamicPower(baseline.energy, params);
    return computeEnergy(run.energy, params, other);
}

Comparison
compare(const SimResult& run, const SimResult& baseline)
{
    Comparison c;
    c.speedup = static_cast<double>(baseline.cycles()) /
                static_cast<double>(run.cycles());
    double base_j = energyOf(baseline, baseline);
    double run_j = energyOf(run, baseline);
    c.energyRatio = run_j / base_j;
    u64 base_dram = baseline.dramSectors();
    c.dramRatio = base_dram == 0
                      ? 1.0
                      : static_cast<double>(run.dramSectors()) /
                            static_cast<double>(base_dram);
    return c;
}

} // namespace unimem
