/**
 * @file
 * Multi-kernel applications and per-kernel repartitioning (paper
 * Section 4.4).
 *
 * Real GPU applications launch several kernels with different resource
 * needs. The unified design can repartition the memory before every
 * launch: registers and scratchpad are not persistent across CTA
 * boundaries, so with the paper's write-through cache the only
 * reconfiguration work is invalidating (clean) cache lines - free. The
 * ablation write-back cache instead has to drain its dirty lines
 * through the DRAM bandwidth before the next kernel may start, which is
 * precisely why the paper chose write-through.
 *
 * This module runs a sequence of kernels on one SM under three regimes:
 *  - partitioned baseline (fixed 256/64/64),
 *  - unified with one fixed compromise split chosen for the whole
 *    sequence (the best a design without reconfiguration could do),
 *  - unified with a Section 4.5 split chosen before every kernel.
 */

#ifndef UNIMEM_SIM_MULTI_KERNEL_HH
#define UNIMEM_SIM_MULTI_KERNEL_HH

#include <string>
#include <vector>

#include "sim/simulator.hh"

namespace unimem {

/** One launch in a multi-kernel application. */
struct KernelStage
{
    std::string benchmark;
    double scale = 0.5;
};

/** How the sequence manages unified memory across launches. */
enum class ReconfigPolicy : u8
{
    /** Hard-partitioned baseline; no flexibility at all. */
    PartitionedBaseline,

    /** One unified split for the whole application (no reconfig). */
    UnifiedStatic,

    /** Section 4.4/4.5: repartition before every kernel. */
    UnifiedPerKernel,
};

const char* reconfigPolicyName(ReconfigPolicy p);

/** Result of one stage within a sequence run. */
struct StageResult
{
    std::string benchmark;
    MemoryPartition partition;
    u32 threads = 0;
    Cycle cycles = 0;

    /** Cycles spent draining dirty cache lines before this launch. */
    Cycle reconfigCycles = 0;

    SimResult sim;
};

/** Result of a whole sequence. */
struct SequenceResult
{
    ReconfigPolicy policy = ReconfigPolicy::PartitionedBaseline;
    std::vector<StageResult> stages;

    /** Total runtime including reconfiguration drains. */
    Cycle totalCycles = 0;

    /** Number of repartitions performed. */
    u32 reconfigs = 0;
};

/**
 * The fixed compromise split for UnifiedStatic: register file and
 * scratchpad sized for the most demanding stage, remainder as cache.
 * Returns an infeasible decision for a stage that cannot fit.
 */
MemoryPartition staticCompromisePartition(
    const std::vector<KernelStage>& stages, u64 capacity);

/**
 * Run @p stages back to back under @p policy with @p capacity bytes of
 * unified memory (ignored for the partitioned baseline).
 *
 * @param writePolicy cache policy; WriteBack adds a dirty-line drain
 *        at every repartition boundary (Section 4.4 ablation)
 */
SequenceResult runSequence(const std::vector<KernelStage>& stages,
                           ReconfigPolicy policy, u64 capacity = 384_KB,
                           WritePolicy writePolicy =
                               WritePolicy::WriteThrough);

} // namespace unimem

#endif // UNIMEM_SIM_MULTI_KERNEL_HH
