#include "sim/simulator.hh"

#include <cstdlib>

#include "common/log.hh"
#include "kernels/registry.hh"
#include "sim/result_cache.hh"

namespace unimem {

EnergyInputs
energyInputsOf(const SmStats& sm, const AllocationDecision& alloc)
{
    EnergyInputs in;
    in.design = alloc.design;
    in.partition = alloc.partition;
    in.cycles = sm.cycles;
    in.mrfReads = sm.rf.mrfReads;
    in.mrfWrites = sm.rf.mrfWrites;
    in.sharedReadBytes = sm.sharedReadBytes;
    in.sharedWriteBytes = sm.sharedWriteBytes;
    in.cacheReadBytes = sm.cacheReadBytes;
    in.cacheWriteBytes = sm.cacheWriteBytes;
    in.dramBytes = sm.dramBytes();
    return in;
}

AllocationDecision
resolveAllocation(const KernelParams& kp, const RunSpec& spec)
{
    u32 limit =
        spec.threadLimit == 0 ? kMaxThreadsPerSm : spec.threadLimit;
    switch (spec.design) {
      case DesignKind::Partitioned:
      case DesignKind::FermiLike: {
        AllocationDecision d = allocatePartitioned(
            kp, spec.partition, limit, spec.regsOverride);
        d.design = spec.design;
        return d;
      }
      case DesignKind::Unified:
        if (spec.unifiedUseFixedPartition) {
            AllocationDecision d = allocatePartitioned(
                kp, spec.partition, limit, spec.regsOverride);
            d.design = DesignKind::Unified;
            return d;
        }
        return allocateUnified(kp, spec.unifiedCapacity, limit,
                               spec.regsOverride);
    }
    panic("resolveAllocation: bad design kind");
}

bool
identicalResults(const SimResult& a, const SimResult& b)
{
    if (a.alloc.design != b.alloc.design ||
        a.alloc.partition.rfBytes != b.alloc.partition.rfBytes ||
        a.alloc.partition.sharedBytes != b.alloc.partition.sharedBytes ||
        a.alloc.partition.cacheBytes != b.alloc.partition.cacheBytes)
        return false;
    const LaunchConfig& la = a.alloc.launch;
    const LaunchConfig& lb = b.alloc.launch;
    if (la.feasible != lb.feasible || la.ctas != lb.ctas ||
        la.threads != lb.threads ||
        la.regsPerThread != lb.regsPerThread ||
        la.spillMultiplier != lb.spillMultiplier ||
        la.rfBytes != lb.rfBytes || la.sharedBytes != lb.sharedBytes)
        return false;
    if (a.cycles() != b.cycles() || a.dramSectors() != b.dramSectors())
        return false;
    if (a.sm.toStatSet().entries() != b.sm.toStatSet().entries())
        return false;
    // Energy inputs are derived from the stats above, but compare the
    // fields the energy model consumes directly as a belt-and-braces
    // check of energyInputsOf itself.
    return a.energy.cycles == b.energy.cycles &&
           a.energy.mrfReads == b.energy.mrfReads &&
           a.energy.mrfWrites == b.energy.mrfWrites &&
           a.energy.dramBytes == b.energy.dramBytes;
}

namespace {

SimResult
simulateOnce(const KernelModel& kernel, const RunSpec& spec)
{
    SimResult res;
    res.alloc = resolveAllocation(kernel.params(), spec);
    if (!res.alloc.launch.feasible)
        fatal("simulate: kernel %s does not fit (design %s, %s)",
              kernel.params().name.c_str(), designName(spec.design),
              res.alloc.partition.str().c_str());

    SmRunConfig cfg;
    cfg.design = spec.design == DesignKind::FermiLike
                     ? DesignKind::Partitioned
                     : spec.design; // Fermi-like banks behave partitioned
    cfg.partition = res.alloc.partition;
    cfg.launch = res.alloc.launch;
    cfg.activeSetSize = spec.activeSetSize;
    cfg.rfHierarchy = spec.rfHierarchy;
    cfg.conflictPenalties = spec.conflictPenalties;
    cfg.aggressiveUnified = spec.aggressiveUnified;
    cfg.cachePolicy = spec.cachePolicy;
    cfg.seed = spec.seed;

    res.sm = runKernel(cfg, kernel);
    res.energy = energyInputsOf(res.sm, res.alloc);
    return res;
}

} // namespace

SimResult
simulate(const KernelModel& kernel, const RunSpec& spec)
{
    SimResult res = simulateOnce(kernel, spec);
    static const bool audit =
        std::getenv("UNIMEM_CHECK_DETERMINISM") != nullptr;
    if (audit && !identicalResults(res, simulateOnce(kernel, spec)))
        panic("simulate: kernel %s is not deterministic under its "
              "RunSpec (seed %llu) - seed plumbing is broken",
              kernel.params().name.c_str(),
              static_cast<unsigned long long>(spec.seed));
    return res;
}

SimResult
simulateBenchmark(const std::string& name, double scale,
                  const RunSpec& spec)
{
    // Registry benchmarks are pure functions of (name, scale, spec), so
    // duplicate points across harnesses resolve from the result cache.
    std::unique_ptr<KernelModel> kernel = createBenchmark(name, scale);
    std::string key =
        resultCacheKey(name, scale, kernel->params(), spec);
    if (std::optional<SimResult> hit = resultCache().lookup(key))
        return *std::move(hit);
    SimResult res = simulate(*kernel, spec);
    resultCache().insert(key, res);
    return res;
}

} // namespace unimem
