#include "sim/simulator.hh"

#include "common/log.hh"
#include "kernels/registry.hh"

namespace unimem {

EnergyInputs
energyInputsOf(const SmStats& sm, const AllocationDecision& alloc)
{
    EnergyInputs in;
    in.design = alloc.design;
    in.partition = alloc.partition;
    in.cycles = sm.cycles;
    in.mrfReads = sm.rf.mrfReads;
    in.mrfWrites = sm.rf.mrfWrites;
    in.sharedReadBytes = sm.sharedReadBytes;
    in.sharedWriteBytes = sm.sharedWriteBytes;
    in.cacheReadBytes = sm.cacheReadBytes;
    in.cacheWriteBytes = sm.cacheWriteBytes;
    in.dramBytes = sm.dramBytes();
    return in;
}

AllocationDecision
resolveAllocation(const KernelParams& kp, const RunSpec& spec)
{
    u32 limit =
        spec.threadLimit == 0 ? kMaxThreadsPerSm : spec.threadLimit;
    switch (spec.design) {
      case DesignKind::Partitioned:
      case DesignKind::FermiLike: {
        AllocationDecision d = allocatePartitioned(
            kp, spec.partition, limit, spec.regsOverride);
        d.design = spec.design;
        return d;
      }
      case DesignKind::Unified:
        if (spec.unifiedUseFixedPartition) {
            AllocationDecision d = allocatePartitioned(
                kp, spec.partition, limit, spec.regsOverride);
            d.design = DesignKind::Unified;
            return d;
        }
        return allocateUnified(kp, spec.unifiedCapacity, limit,
                               spec.regsOverride);
    }
    panic("resolveAllocation: bad design kind");
}

SimResult
simulate(const KernelModel& kernel, const RunSpec& spec)
{
    SimResult res;
    res.alloc = resolveAllocation(kernel.params(), spec);
    if (!res.alloc.launch.feasible)
        fatal("simulate: kernel %s does not fit (design %s, %s)",
              kernel.params().name.c_str(), designName(spec.design),
              res.alloc.partition.str().c_str());

    SmRunConfig cfg;
    cfg.design = spec.design == DesignKind::FermiLike
                     ? DesignKind::Partitioned
                     : spec.design; // Fermi-like banks behave partitioned
    cfg.partition = res.alloc.partition;
    cfg.launch = res.alloc.launch;
    cfg.activeSetSize = spec.activeSetSize;
    cfg.rfHierarchy = spec.rfHierarchy;
    cfg.conflictPenalties = spec.conflictPenalties;
    cfg.aggressiveUnified = spec.aggressiveUnified;
    cfg.cachePolicy = spec.cachePolicy;
    cfg.seed = spec.seed;

    res.sm = runKernel(cfg, kernel);
    res.energy = energyInputsOf(res.sm, res.alloc);
    return res;
}

SimResult
simulateBenchmark(const std::string& name, double scale,
                  const RunSpec& spec)
{
    std::unique_ptr<KernelModel> kernel = createBenchmark(name, scale);
    return simulate(*kernel, spec);
}

} // namespace unimem
