#include "regfile/rf_hierarchy.hh"

#include "common/log.hh"

namespace unimem {

WarpRegFile::WarpRegFile(const RfHierarchyConfig& cfg, u32 warpSlot)
{
    reset(cfg, warpSlot);
}

void
WarpRegFile::reset(const RfHierarchyConfig& cfg, u32 warpSlot)
{
    if (cfg.orfEntries > orf_.size())
        fatal("WarpRegFile: orfEntries %u exceeds model maximum %zu",
              cfg.orfEntries, orf_.size());
    cfg_ = cfg;
    warpSlot_ = warpSlot;
    lrfReg_ = kInvalidReg;
    orf_.fill(OrfEntry{});
    useClock_ = 0;
    counts_ = RfAccessCounts{};
}

bool
WarpRegFile::inHierarchy(RegId r) const
{
    if (r == kInvalidReg)
        return false;
    if (r == lrfReg_)
        return true;
    for (u32 i = 0; i < cfg_.orfEntries; ++i)
        if (orf_[i].reg == r)
            return true;
    return false;
}

void
WarpRegFile::writeDst(RegId r, bool toMrf)
{
    ++counts_.dstWrites;

    if (!cfg_.enabled || toMrf) {
        ++counts_.mrfWrites;
        // The value now lives in the MRF; drop stale hierarchy copies.
        if (lrfReg_ == r)
            lrfReg_ = kInvalidReg;
        for (u32 i = 0; i < cfg_.orfEntries; ++i)
            if (orf_[i].reg == r)
                orf_[i].reg = kInvalidReg;
        return;
    }

    // Overwriting a register that is already in the hierarchy simply
    // replaces it (the old value dies without an MRF writeback).
    for (u32 i = 0; i < cfg_.orfEntries; ++i)
        if (orf_[i].reg == r)
            orf_[i].reg = kInvalidReg;

    if (lrfReg_ != kInvalidReg && lrfReg_ != r) {
        // Demote the previous last-result into the ORF.
        OrfEntry* victim = nullptr;
        for (u32 i = 0; i < cfg_.orfEntries; ++i) {
            if (orf_[i].reg == kInvalidReg) {
                victim = &orf_[i];
                break;
            }
            if (victim == nullptr || orf_[i].lastUse < victim->lastUse)
                victim = &orf_[i];
        }
        if (victim != nullptr) {
            if (victim->reg != kInvalidReg) {
                // Evicted ORF value must persist in the MRF.
                ++counts_.mrfWrites;
            }
            victim->reg = lrfReg_;
            victim->lastUse = ++useClock_;
            ++counts_.orfWrites;
        } else {
            // No ORF configured: previous LRF value goes to MRF.
            ++counts_.mrfWrites;
        }
    }

    lrfReg_ = r;
    ++counts_.lrfWrites;
}

u32
WarpRegFile::accessOperands(const WarpInstr& in, bool isLongLatencyLoad,
                            u8* outBanks)
{
    u32 num_mrf = 0;
    for (u8 s = 0; s < in.numSrc; ++s) {
        RegId r = in.src[s];
        if (r == kInvalidReg)
            continue;
        ++counts_.srcReads;
        if (cfg_.enabled && r == lrfReg_) {
            ++counts_.lrfReads;
            continue;
        }
        bool in_orf = false;
        if (cfg_.enabled) {
            for (u32 i = 0; i < cfg_.orfEntries; ++i) {
                if (orf_[i].reg == r) {
                    orf_[i].lastUse = ++useClock_;
                    ++counts_.orfReads;
                    in_orf = true;
                    break;
                }
            }
        }
        if (!in_orf) {
            ++counts_.mrfReads;
            if (outBanks != nullptr)
                outBanks[num_mrf] = static_cast<u8>(mrfBank(r));
            ++num_mrf;
        }
    }

    if (in.hasDst())
        writeDst(in.dst, isLongLatencyLoad);
    return num_mrf;
}

void
WarpRegFile::flushToMrf()
{
    if (!cfg_.enabled)
        return;
    if (lrfReg_ != kInvalidReg) {
        ++counts_.mrfWrites;
        ++counts_.descheduleWritebacks;
        lrfReg_ = kInvalidReg;
    }
    for (u32 i = 0; i < cfg_.orfEntries; ++i) {
        if (orf_[i].reg != kInvalidReg) {
            ++counts_.mrfWrites;
            ++counts_.descheduleWritebacks;
            orf_[i].reg = kInvalidReg;
        }
    }
}

} // namespace unimem
