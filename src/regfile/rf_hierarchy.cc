#include "regfile/rf_hierarchy.hh"

#include "common/log.hh"

namespace unimem {

WarpRegFile::WarpRegFile(const RfHierarchyConfig& cfg, u32 warpSlot)
{
    reset(cfg, warpSlot);
}

void
WarpRegFile::reset(const RfHierarchyConfig& cfg, u32 warpSlot)
{
    if (cfg.orfEntries > orfReg_.size())
        fatal("WarpRegFile: orfEntries %u exceeds model maximum %zu",
              cfg.orfEntries, orfReg_.size());
    cfg_ = cfg;
    warpSlot_ = warpSlot;
    lrfReg_ = kInvalidReg;
    orfReg_.fill(kInvalidReg);
    orfUse_.fill(0);
    useClock_ = 0;
    counts_ = RfAccessCounts{};
}

bool
WarpRegFile::inHierarchy(RegId r) const
{
    if (r == kInvalidReg)
        return false;
    if (r == lrfReg_)
        return true;
    for (u32 i = 0; i < cfg_.orfEntries; ++i)
        if (orfReg_[i] == r)
            return true;
    return false;
}

void
WarpRegFile::flushToMrf()
{
    if (!cfg_.enabled)
        return;
    if (lrfReg_ != kInvalidReg) {
        ++counts_.mrfWrites;
        ++counts_.descheduleWritebacks;
        lrfReg_ = kInvalidReg;
    }
    for (u32 i = 0; i < cfg_.orfEntries; ++i) {
        if (orfReg_[i] != kInvalidReg) {
            ++counts_.mrfWrites;
            ++counts_.descheduleWritebacks;
            orfReg_[i] = kInvalidReg;
        }
    }
}

} // namespace unimem
