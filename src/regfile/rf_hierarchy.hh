/**
 * @file
 * Software-controlled register file hierarchy (Gebhart et al. [8,9],
 * paper Section 2.1).
 *
 * Each thread has a single-entry last result file (LRF) and a 4-entry
 * operand register file (ORF) in front of the main register file (MRF).
 * The compiler keeps short-lived values in the LRF/ORF while a warp is in
 * the active set; all live values must reside in the MRF when a warp is
 * descheduled. The paper relies on the resulting ~60% reduction in MRF
 * accesses to make shared register/memory bank bandwidth viable.
 *
 * We model the compile-time allocation with a dynamic policy at warp
 * granularity: the most recently produced value sits in the LRF, older
 * recent values rotate through the ORF (LRU), values evicted or alive at
 * a deschedule are written back to the MRF. This is a slight overcount of
 * MRF writes (a real compiler skips dead writebacks) and is noted in
 * DESIGN.md.
 */

#ifndef UNIMEM_REGFILE_RF_HIERARCHY_HH
#define UNIMEM_REGFILE_RF_HIERARCHY_HH

#include <array>

#include "arch/gpu_constants.hh"
#include "arch/warp_instr.hh"
#include "mem/bank_conflicts.hh"

namespace unimem {

/** Configuration of the register file hierarchy. */
struct RfHierarchyConfig
{
    bool enabled = true;

    /** ORF entries per thread (paper: 4). */
    u32 orfEntries = 4;
};

/** Aggregate operand-traffic counters. */
struct RfAccessCounts
{
    u64 srcReads = 0;
    u64 dstWrites = 0;
    u64 lrfReads = 0;
    u64 orfReads = 0;
    u64 mrfReads = 0;
    u64 lrfWrites = 0;
    u64 orfWrites = 0;
    u64 mrfWrites = 0;
    u64 descheduleWritebacks = 0;

    u64 mrfAccesses() const { return mrfReads + mrfWrites; }

    /** MRF accesses a flat register file would have made. */
    u64 flatAccesses() const { return srcReads + dstWrites; }

    /** Fraction of MRF accesses removed by the hierarchy. */
    double
    reduction() const
    {
        u64 flat = flatAccesses();
        if (flat == 0)
            return 0.0;
        return 1.0 - static_cast<double>(mrfAccesses()) /
                         static_cast<double>(flat);
    }

    void
    merge(const RfAccessCounts& o)
    {
        srcReads += o.srcReads;
        dstWrites += o.dstWrites;
        lrfReads += o.lrfReads;
        orfReads += o.orfReads;
        mrfReads += o.mrfReads;
        lrfWrites += o.lrfWrites;
        orfWrites += o.orfWrites;
        mrfWrites += o.mrfWrites;
        descheduleWritebacks += o.descheduleWritebacks;
    }
};

/** Per-warp operand placement state. */
class WarpRegFile
{
  public:
    /** Inert state; call reset() before use (pooled warp slots). */
    WarpRegFile() = default;

    WarpRegFile(const RfHierarchyConfig& cfg, u32 warpSlot);

    /**
     * Reinitialize for a fresh warp launch: clears the LRF/ORF, the use
     * clock, and the access counters. Equivalent to constructing anew,
     * without the allocation (warp slots pool these across relaunches).
     */
    void reset(const RfHierarchyConfig& cfg, u32 warpSlot);

    /**
     * Classify the operand accesses of one instruction.
     *
     * MRF reads of this instruction are written into @p outBanks as
     * cluster-local bank ids (0..kBanksPerCluster-1); the same-named
     * register of every lane lives in the same bank index in each
     * cluster.
     *
     * @param in the instruction being issued
     * @param isLongLatencyLoad destination is produced by a descheduling
     *        load and is written straight to the MRF
     * @param outBanks caller array of at least 3 entries (may be null)
     * @return number of MRF reads recorded into @p outBanks
     */
    u32 accessOperands(const WarpInstr& in, bool isLongLatencyLoad,
                       u8* outBanks);

    /** Write all dirty LRF/ORF values back to the MRF (deschedule). */
    void flushToMrf();

    /** Cluster-local MRF bank of register @p r for this warp. */
    u32
    mrfBank(RegId r) const
    {
        return (static_cast<u32>(r) + warpSlot_) % kBanksPerCluster;
    }

    const RfAccessCounts& counts() const { return counts_; }

    /** True if @p r currently lives in the LRF or ORF (for tests). */
    bool inHierarchy(RegId r) const;

  private:
    void writeDst(RegId r, bool toMrf);

    RfHierarchyConfig cfg_;
    u32 warpSlot_ = 0;

    RegId lrfReg_ = kInvalidReg;

    struct OrfEntry
    {
        RegId reg = kInvalidReg;
        u64 lastUse = 0;
    };

    std::array<OrfEntry, 8> orf_{}; // first cfg_.orfEntries used
    u64 useClock_ = 0;

    RfAccessCounts counts_;
};

} // namespace unimem

#endif // UNIMEM_REGFILE_RF_HIERARCHY_HH
