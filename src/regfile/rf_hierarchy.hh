/**
 * @file
 * Software-controlled register file hierarchy (Gebhart et al. [8,9],
 * paper Section 2.1).
 *
 * Each thread has a single-entry last result file (LRF) and a 4-entry
 * operand register file (ORF) in front of the main register file (MRF).
 * The compiler keeps short-lived values in the LRF/ORF while a warp is in
 * the active set; all live values must reside in the MRF when a warp is
 * descheduled. The paper relies on the resulting ~60% reduction in MRF
 * accesses to make shared register/memory bank bandwidth viable.
 *
 * We model the compile-time allocation with a dynamic policy at warp
 * granularity: the most recently produced value sits in the LRF, older
 * recent values rotate through the ORF (LRU), values evicted or alive at
 * a deschedule are written back to the MRF. This is a slight overcount of
 * MRF writes (a real compiler skips dead writebacks) and is noted in
 * DESIGN.md.
 */

#ifndef UNIMEM_REGFILE_RF_HIERARCHY_HH
#define UNIMEM_REGFILE_RF_HIERARCHY_HH

#include <array>

#include "arch/gpu_constants.hh"
#include "arch/warp_instr.hh"
#include "mem/bank_conflicts.hh"

namespace unimem {

/** Configuration of the register file hierarchy. */
struct RfHierarchyConfig
{
    bool enabled = true;

    /** ORF entries per thread (paper: 4). */
    u32 orfEntries = 4;
};

/** Aggregate operand-traffic counters. */
struct RfAccessCounts
{
    u64 srcReads = 0;
    u64 dstWrites = 0;
    u64 lrfReads = 0;
    u64 orfReads = 0;
    u64 mrfReads = 0;
    u64 lrfWrites = 0;
    u64 orfWrites = 0;
    u64 mrfWrites = 0;
    u64 descheduleWritebacks = 0;

    u64 mrfAccesses() const { return mrfReads + mrfWrites; }

    /** MRF accesses a flat register file would have made. */
    u64 flatAccesses() const { return srcReads + dstWrites; }

    /** Fraction of MRF accesses removed by the hierarchy. */
    double
    reduction() const
    {
        u64 flat = flatAccesses();
        if (flat == 0)
            return 0.0;
        return 1.0 - static_cast<double>(mrfAccesses()) /
                         static_cast<double>(flat);
    }

    void
    merge(const RfAccessCounts& o)
    {
        srcReads += o.srcReads;
        dstWrites += o.dstWrites;
        lrfReads += o.lrfReads;
        orfReads += o.orfReads;
        mrfReads += o.mrfReads;
        lrfWrites += o.lrfWrites;
        orfWrites += o.orfWrites;
        mrfWrites += o.mrfWrites;
        descheduleWritebacks += o.descheduleWritebacks;
    }
};

/** Per-warp operand placement state. */
class WarpRegFile
{
  public:
    /** Inert state; call reset() before use (pooled warp slots). */
    WarpRegFile() = default;

    WarpRegFile(const RfHierarchyConfig& cfg, u32 warpSlot);

    /**
     * Reinitialize for a fresh warp launch: clears the LRF/ORF, the use
     * clock, and the access counters. Equivalent to constructing anew,
     * without the allocation (warp slots pool these across relaunches).
     */
    void reset(const RfHierarchyConfig& cfg, u32 warpSlot);

    /**
     * Classify the operand accesses of one instruction.
     *
     * MRF reads of this instruction are written into @p outBanks as
     * cluster-local bank ids (0..kBanksPerCluster-1); the same-named
     * register of every lane lives in the same bank index in each
     * cluster.
     *
     * In the header (with writeDst below) because the pair runs exactly
     * once per issued instruction: the bodies are short linear scans
     * over at most cfg_.orfEntries slots, and the out-of-line calls
     * showed up as a top-five cost in the issue loop profile.
     *
     * @param in the instruction being issued
     * @param isLongLatencyLoad destination is produced by a descheduling
     *        load and is written straight to the MRF
     * @param outBanks caller array of at least 3 entries (may be null)
     * @return number of MRF reads recorded into @p outBanks
     */
    u32
    accessOperands(const WarpInstr& in, bool isLongLatencyLoad, u8* outBanks)
    {
        u32 num_mrf = 0;
        for (u8 s = 0; s < in.numSrc; ++s) {
            RegId r = in.src[s];
            if (r == kInvalidReg)
                continue;
            ++counts_.srcReads;
            if (cfg_.enabled && r == lrfReg_) {
                ++counts_.lrfReads;
                continue;
            }
            bool in_orf = false;
            if (cfg_.enabled) {
                // Branchless membership test over the full fixed-size
                // array: slots past cfg_.orfEntries hold kInvalidReg
                // forever and r != kInvalidReg here, so they can never
                // match. Eight u16 compares fold to one vector compare
                // instead of a data-dependent branchy scan, and a
                // register is in the ORF at most once (writeDst clears
                // duplicates), so the low set bit is the old loop's
                // first (only) match.
                u32 hit = 0;
                for (u32 i = 0; i < orfReg_.size(); ++i)
                    hit |= static_cast<u32>(orfReg_[i] == r) << i;
                if (hit != 0) {
                    orfUse_[static_cast<u32>(__builtin_ctz(hit))] =
                        ++useClock_;
                    ++counts_.orfReads;
                    in_orf = true;
                }
            }
            if (!in_orf) {
                ++counts_.mrfReads;
                if (outBanks != nullptr)
                    outBanks[num_mrf] = static_cast<u8>(mrfBank(r));
                ++num_mrf;
            }
        }

        if (in.hasDst())
            writeDst(in.dst, isLongLatencyLoad);
        return num_mrf;
    }

    /** Write all dirty LRF/ORF values back to the MRF (deschedule). */
    void flushToMrf();

    /** Cluster-local MRF bank of register @p r for this warp. */
    u32
    mrfBank(RegId r) const
    {
        return (static_cast<u32>(r) + warpSlot_) % kBanksPerCluster;
    }

    const RfAccessCounts& counts() const { return counts_; }

    /** True if @p r currently lives in the LRF or ORF (for tests). */
    bool inHierarchy(RegId r) const;

  private:
    void
    writeDst(RegId r, bool toMrf)
    {
        ++counts_.dstWrites;

        if (!cfg_.enabled || toMrf) {
            ++counts_.mrfWrites;
            // The value now lives in the MRF; drop stale hierarchy
            // copies (cmov-friendly full-array sweep, as above).
            if (lrfReg_ == r)
                lrfReg_ = kInvalidReg;
            for (u32 i = 0; i < orfReg_.size(); ++i)
                if (orfReg_[i] == r)
                    orfReg_[i] = kInvalidReg;
            return;
        }

        // Overwriting a register that is already in the hierarchy simply
        // replaces it (the old value dies without an MRF writeback).
        for (u32 i = 0; i < orfReg_.size(); ++i)
            if (orfReg_[i] == r)
                orfReg_[i] = kInvalidReg;

        if (lrfReg_ != kInvalidReg && lrfReg_ != r) {
            if (cfg_.orfEntries == 0) {
                // No ORF configured: previous LRF value goes to MRF.
                ++counts_.mrfWrites;
            } else {
                // Demote the previous last-result into the ORF. Victim
                // rule as one min-reduction: an invalid slot scores 0,
                // a valid slot its lastUse stamp (always >= 1, and
                // distinct — each assignment ticks the clock), and the
                // first index wins ties. That is exactly the old scan:
                // first invalid slot if any, else the unique LRU entry.
                u32 vi = 0;
                u64 vkey = orfReg_[0] == kInvalidReg ? 0 : orfUse_[0];
                for (u32 i = 1; i < cfg_.orfEntries; ++i) {
                    u64 k = orfReg_[i] == kInvalidReg ? 0 : orfUse_[i];
                    if (k < vkey) {
                        vkey = k;
                        vi = i;
                    }
                }
                if (orfReg_[vi] != kInvalidReg) {
                    // Evicted ORF value must persist in the MRF.
                    ++counts_.mrfWrites;
                }
                orfReg_[vi] = lrfReg_;
                orfUse_[vi] = ++useClock_;
                ++counts_.orfWrites;
            }
        }

        lrfReg_ = r;
        ++counts_.lrfWrites;
    }

    RfHierarchyConfig cfg_;
    u32 warpSlot_ = 0;

    RegId lrfReg_ = kInvalidReg;

    /**
     * ORF as two parallel arrays (registers, LRU stamps) so the
     * per-operand membership test is one vector compare over the
     * register lane and the hot loops carry no struct padding. Only
     * the first cfg_.orfEntries slots are ever written; the rest stay
     * kInvalidReg so fixed-size sweeps cannot mis-match.
     */
    std::array<RegId, 8> orfReg_{kInvalidReg, kInvalidReg, kInvalidReg,
                                 kInvalidReg, kInvalidReg, kInvalidReg,
                                 kInvalidReg, kInvalidReg};
    std::array<u64, 8> orfUse_{};
    u64 useClock_ = 0;

    RfAccessCounts counts_;
};

} // namespace unimem

#endif // UNIMEM_REGFILE_RF_HIERARCHY_HH
