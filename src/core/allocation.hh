/**
 * @file
 * The paper's Section 4.5 allocation algorithm: before each kernel
 * launch, decide the register/scratchpad/cache split of the unified
 * memory (or validate a launch against fixed capacities for the
 * partitioned and Fermi-like designs).
 */

#ifndef UNIMEM_CORE_ALLOCATION_HH
#define UNIMEM_CORE_ALLOCATION_HH

#include <vector>

#include "arch/kernel_params.hh"
#include "core/partition.hh"
#include "sched/occupancy.hh"

namespace unimem {

/** A fully resolved design + partition + launch for one kernel. */
struct AllocationDecision
{
    DesignKind design = DesignKind::Partitioned;

    /**
     * Capacities. For the partitioned/Fermi-like designs these are the
     * physical structure sizes; for the unified design they are the
     * chosen split of the unified capacity (rf/shared = consumed,
     * cache = leftover).
     */
    MemoryPartition partition;

    LaunchConfig launch;
};

/** Launch a kernel on fixed partitioned capacities. */
AllocationDecision allocatePartitioned(const KernelParams& kp,
                                       const MemoryPartition& part,
                                       u32 threadLimit = kMaxThreadsPerSm,
                                       u32 regsOverride = 0);

/**
 * Section 4.5: registers per thread from the compiler (no-spill count
 * unless overridden), scratchpad from the kernel, thread count maximized,
 * remainder to cache.
 */
AllocationDecision allocateUnified(const KernelParams& kp, u64 capacity,
                                   u32 threadLimit = kMaxThreadsPerSm,
                                   u32 regsOverride = 0);

/**
 * The two Fermi-like configurations for @p totalBytes (Section 6.3);
 * infeasible options are still returned with launch.feasible == false.
 */
std::vector<AllocationDecision>
allocateFermiLike(const KernelParams& kp, u64 totalBytes,
                  u32 threadLimit = kMaxThreadsPerSm);

} // namespace unimem

#endif // UNIMEM_CORE_ALLOCATION_HH
