/**
 * @file
 * Per-instruction bank/arbitration conflict model for the partitioned and
 * unified bank organizations (paper Sections 2.1, 4.2, 4.3, 6.1).
 *
 * Partitioned design:
 *  - MRF: 4 banks per cluster, 16 B wide; an instruction reading two MRF
 *    operands mapped to the same bank stalls one cycle per extra access.
 *  - Scratchpad: 32 banks, 4 B wide; distinct words mapping to the same
 *    bank conflict; identical words broadcast.
 *  - Cache: 128 B lines span all 32 banks with aligned access, so a
 *    single line access is conflict-free; multiple lines serialize on the
 *    tag port (modeled separately by the SM).
 *
 * Unified design:
 *  - 32 banks of total/32 bytes, 16 B wide. Register mapping is unchanged.
 *  - Scratchpad and cache data are striped in 16-byte chunks: chunk k
 *    lives in cluster k%8, bank (k/8)%4 of that cluster; a 128-byte line
 *    therefore occupies one bank in each of the 8 clusters.
 *  - The *simple* design routes at most one bank per cluster to the
 *    crossbar per cycle, so distinct chunks in the same cluster serialize
 *    even in different banks; the *aggressive* design lifts that
 *    restriction (paper measured it worth only 0.5%).
 *  - Arbitration conflicts: an instruction whose MRF operand reads land
 *    in the same physical bank as its scratchpad/cache chunks serializes
 *    on that bank (register access has priority, Section 4.3).
 */

#ifndef UNIMEM_CORE_CONFLICT_MODEL_HH
#define UNIMEM_CORE_CONFLICT_MODEL_HH

#include "arch/warp_instr.hh"
#include "core/partition.hh"
#include "mem/bank_conflicts.hh"

namespace unimem {

/** Result of evaluating one warp instruction against the bank layout. */
struct ConflictOutcome
{
    /** Extra cycles the instruction is delayed (Section 6.1 model). */
    u32 penalty = 0;

    /**
     * Portion of the penalty due to operand (MRF) bank conflicts; these
     * stall the issue stage. The remainder (penalty - regPenalty) is
     * data-bank serialization, which occupies the memory access port.
     */
    u32 regPenalty = 0;

    /** Maximum accesses to any single physical bank (Table 5 metric). */
    u32 maxPerBank = 0;

    /**
     * Maximum accesses to any single bank from the *data* (scratchpad/
     * cache) footprint alone, excluding MRF operand reads. Unlike
     * maxPerBank this is a pure function of the instruction's lane
     * addresses, so a static trace replay can recompute it exactly —
     * the bank-conflict differential cross-check pass compares this
     * field against its own prediction instruction by instruction.
     */
    u32 dataMaxPerBank = 0;

    /** Distinct 4-byte words touched (partitioned data energy unit). */
    u32 distinctWords = 0;

    /** Distinct 16-byte chunks touched (unified data energy unit). */
    u32 distinctChunks = 0;
};

/** Evaluates bank and arbitration conflicts for one SM design. */
class ConflictModel
{
  public:
    ConflictModel(DesignKind kind, bool aggressiveUnified = false)
        : kind_(kind), aggressive_(aggressiveUnified)
    {
    }

    /**
     * Evaluate one instruction.
     *
     * @param in the warp instruction (lane addresses used for memory ops)
     * @param mrfBanks cluster-local bank ids (0..3) of this instruction's
     *        MRF operand reads, as produced by WarpRegFile
     * @param numMrfReads number of valid entries in @p mrfBanks
     */
    ConflictOutcome evaluate(const WarpInstr& in, const u8* mrfBanks,
                             u32 numMrfReads) const;

    DesignKind kind() const { return kind_; }

  private:
    ConflictOutcome evalPartitioned(const WarpInstr& in, const u8* mrfBanks,
                                    u32 numMrfReads) const;
    ConflictOutcome evalUnified(const WarpInstr& in, const u8* mrfBanks,
                                u32 numMrfReads) const;

    /**
     * Scratch for distinct-granule collection: an open-addressing set
     * with generation-stamped slots, so each collection starts O(1)
     * (bump the stamp) instead of clearing memory, and membership
     * tests are O(1) probes instead of the linear scan that made
     * conflict evaluation quadratic in the footprint size. Purely an
     * algorithmic swap: callers consume only the distinct values and
     * their count, which are set properties independent of how the
     * set is represented.
     *
     * Sized 4x the worst case (32 lanes x 2 words each = 64 distinct
     * values) so probe chains stay short. Mutable because evaluation
     * is logically const; ConflictModel is per-SM and thread-confined
     * like the footprint cache.
     */
    struct DistinctScratch
    {
        static constexpr u32 kSlots = 256;

        std::array<Addr, kSlots> val;
        std::array<u32, kSlots> stamp{}; // 0 = never written
        u32 gen = 0;

        /** Start a fresh (empty) set. */
        void
        begin()
        {
            if (++gen == 0) { // stamp wrap: only now is a clear needed
                stamp.fill(0);
                gen = 1;
            }
        }

        /** Insert @p v; true if it was not yet in the set. */
        bool
        insert(Addr v)
        {
            // Fibonacci multiplicative hash; high bits are well mixed.
            u32 h = static_cast<u32>(
                        (v * 0x9e3779b97f4a7c15ull) >> 32) &
                    (kSlots - 1);
            for (;;) {
                if (stamp[h] != gen) {
                    stamp[h] = gen;
                    val[h] = v;
                    return true;
                }
                if (val[h] == v)
                    return false;
                h = (h + 1) & (kSlots - 1);
            }
        }
    };

    mutable DistinctScratch scratch_;

    /**
     * Distinct 4-byte word indices the instruction's active lanes
     * touch, written to @p out in first-touch order. Coarser granules
     * (16-byte chunks, 128-byte lines) are derived from this list:
     * every granule contribution is (addr + 4k) / granule, and
     * x/16 == (x/4)/4, x/128 == (x/4)/32 in integer arithmetic, so
     * deduplicating word/4 (word/32) over the distinct words yields
     * exactly the set a direct per-lane collection would.
     */
    u32 collectWords(const WarpInstr& in, Addr* out) const;

    /** Deduplicate @p n values shifted right by @p shift into @p out. */
    u32 dedupShifted(const Addr* vals, u32 n, u32 shift,
                     Addr* out) const;

    DesignKind kind_;
    bool aggressive_;
};

} // namespace unimem

#endif // UNIMEM_CORE_CONFLICT_MODEL_HH
