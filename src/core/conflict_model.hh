/**
 * @file
 * Per-instruction bank/arbitration conflict model for the partitioned and
 * unified bank organizations (paper Sections 2.1, 4.2, 4.3, 6.1).
 *
 * Partitioned design:
 *  - MRF: 4 banks per cluster, 16 B wide; an instruction reading two MRF
 *    operands mapped to the same bank stalls one cycle per extra access.
 *  - Scratchpad: 32 banks, 4 B wide; distinct words mapping to the same
 *    bank conflict; identical words broadcast.
 *  - Cache: 128 B lines span all 32 banks with aligned access, so a
 *    single line access is conflict-free; multiple lines serialize on the
 *    tag port (modeled separately by the SM).
 *
 * Unified design:
 *  - 32 banks of total/32 bytes, 16 B wide. Register mapping is unchanged.
 *  - Scratchpad and cache data are striped in 16-byte chunks: chunk k
 *    lives in cluster k%8, bank (k/8)%4 of that cluster; a 128-byte line
 *    therefore occupies one bank in each of the 8 clusters.
 *  - The *simple* design routes at most one bank per cluster to the
 *    crossbar per cycle, so distinct chunks in the same cluster serialize
 *    even in different banks; the *aggressive* design lifts that
 *    restriction (paper measured it worth only 0.5%).
 *  - Arbitration conflicts: an instruction whose MRF operand reads land
 *    in the same physical bank as its scratchpad/cache chunks serializes
 *    on that bank (register access has priority, Section 4.3).
 */

#ifndef UNIMEM_CORE_CONFLICT_MODEL_HH
#define UNIMEM_CORE_CONFLICT_MODEL_HH

#include "arch/warp_instr.hh"
#include "core/partition.hh"
#include "mem/bank_conflicts.hh"

namespace unimem {

/** Result of evaluating one warp instruction against the bank layout. */
struct ConflictOutcome
{
    /** Extra cycles the instruction is delayed (Section 6.1 model). */
    u32 penalty = 0;

    /**
     * Portion of the penalty due to operand (MRF) bank conflicts; these
     * stall the issue stage. The remainder (penalty - regPenalty) is
     * data-bank serialization, which occupies the memory access port.
     */
    u32 regPenalty = 0;

    /** Maximum accesses to any single physical bank (Table 5 metric). */
    u32 maxPerBank = 0;

    /**
     * Maximum accesses to any single bank from the *data* (scratchpad/
     * cache) footprint alone, excluding MRF operand reads. Unlike
     * maxPerBank this is a pure function of the instruction's lane
     * addresses, so a static trace replay can recompute it exactly —
     * the bank-conflict differential cross-check pass compares this
     * field against its own prediction instruction by instruction.
     */
    u32 dataMaxPerBank = 0;

    /** Distinct 4-byte words touched (partitioned data energy unit). */
    u32 distinctWords = 0;

    /** Distinct 16-byte chunks touched (unified data energy unit). */
    u32 distinctChunks = 0;
};

/** Evaluates bank and arbitration conflicts for one SM design. */
class ConflictModel
{
  public:
    ConflictModel(DesignKind kind, bool aggressiveUnified = false)
        : kind_(kind), aggressive_(aggressiveUnified)
    {
    }

    /**
     * Evaluate one instruction.
     *
     * @param in the warp instruction (lane addresses used for memory ops)
     * @param mrfBanks cluster-local bank ids (0..3) of this instruction's
     *        MRF operand reads, as produced by WarpRegFile
     * @param numMrfReads number of valid entries in @p mrfBanks
     */
    ConflictOutcome evaluate(const WarpInstr& in, const u8* mrfBanks,
                             u32 numMrfReads) const;

    DesignKind kind() const { return kind_; }

  private:
    ConflictOutcome evalPartitioned(const WarpInstr& in, const u8* mrfBanks,
                                    u32 numMrfReads) const;
    ConflictOutcome evalUnified(const WarpInstr& in, const u8* mrfBanks,
                                u32 numMrfReads) const;

    DesignKind kind_;
    bool aggressive_;
};

} // namespace unimem

#endif // UNIMEM_CORE_CONFLICT_MODEL_HH
