#include "core/conflict_model.hh"

#include <algorithm>
#include <array>

#include "common/log.hh"

namespace unimem {

namespace {

/** Collect distinct values (words, chunks, or lines) from a warp's lanes. */
class DistinctSet
{
  public:
    void
    add(Addr v)
    {
        // Scan newest-first: lane-order address runs put duplicates
        // next to the most recent insertion.
        for (u32 i = size_; i-- > 0;)
            if (vals_[i] == v)
                return;
        if (size_ < vals_.size())
            vals_[size_++] = v;
    }

    u32 size() const { return size_; }
    Addr operator[](u32 i) const { return vals_[i]; }

  private:
    /** 8-byte accesses touch up to two 4-byte words per lane. */
    std::array<Addr, 2 * kWarpWidth> vals_; // only [0, size_) is live
    u32 size_ = 0;
};

/**
 * Distinct granule indices an instruction's active lanes touch. Every
 * lane contributes each @p granule -sized unit its accessBytes span
 * covers — an 8-byte access occupies two 4-byte words (and, when
 * misaligned across a boundary, two 16-byte chunks), exactly the units
 * the banks must serve.
 */
DistinctSet
distinctGranules(const WarpInstr& in, u32 granule)
{
    DistinctSet set;
    for (u32 lane = 0; lane < kWarpWidth; ++lane)
        if (in.laneActive(lane))
            for (u32 b = 0; b < in.accessBytes; b += 4)
                set.add((in.addr[lane] + b) / granule);
    return set;
}

bool
usesDataBanks(Opcode op)
{
    // Texture fetches go through the texture unit, not the SM data banks.
    return isMemOp(op) && op != Opcode::Tex;
}

} // namespace

ConflictOutcome
ConflictModel::evaluate(const WarpInstr& in, const u8* mrfBanks,
                        u32 numMrfReads) const
{
    if (kind_ == DesignKind::Unified)
        return evalUnified(in, mrfBanks, numMrfReads);
    return evalPartitioned(in, mrfBanks, numMrfReads);
}

ConflictOutcome
ConflictModel::evalPartitioned(const WarpInstr& in, const u8* mrfBanks,
                               u32 numMrfReads) const
{
    ConflictOutcome out;

    // MRF operand reads: one bank per operand, replicated per cluster.
    std::array<u32, kBanksPerCluster> regCounts{};
    for (u32 i = 0; i < numMrfReads; ++i)
        ++regCounts[mrfBanks[i] % kBanksPerCluster];
    u32 reg_max = *std::max_element(regCounts.begin(), regCounts.end());

    u32 mem_max = 0;
    if (usesDataBanks(in.op)) {
        DistinctSet words = distinctGranules(in, kPartitionedBankWidth);
        out.distinctWords = words.size();
        // Chunk count is reported for cross-design comparisons even
        // though the partitioned design moves data in 4-byte words.
        out.distinctChunks =
            distinctGranules(in, kUnifiedBankWidth).size();

        if (isSharedSpace(in.op)) {
            std::array<u32, kBanksPerSm> memCounts{};
            for (u32 i = 0; i < words.size(); ++i)
                ++memCounts[words[i] % kBanksPerSm];
            mem_max = *std::max_element(memCounts.begin(), memCounts.end());
        } else {
            // Aligned full-line cache access: one access per bank per
            // line; multi-line serialization is charged at the tag port.
            mem_max = words.size() > 0 ? 1 : 0;
        }
        out.dataMaxPerBank = mem_max;
    }

    u32 reg_pen = reg_max > 1 ? reg_max - 1 : 0;
    u32 mem_pen = mem_max > 1 ? mem_max - 1 : 0;
    out.penalty = reg_pen + mem_pen;
    out.regPenalty = reg_pen;
    out.maxPerBank = std::max(reg_max, mem_max);
    return out;
}

ConflictOutcome
ConflictModel::evalUnified(const WarpInstr& in, const u8* mrfBanks,
                           u32 numMrfReads) const
{
    ConflictOutcome out;

    // counts[cluster][bank]: a register read hits its bank in every
    // cluster (the same-named register of each lane group).
    std::array<std::array<u32, kBanksPerCluster>, kNumClusters> counts{};
    std::array<u32, kNumClusters> chunksPerCluster{};

    for (u32 i = 0; i < numMrfReads; ++i) {
        u32 bank = mrfBanks[i] % kBanksPerCluster;
        for (u32 c = 0; c < kNumClusters; ++c)
            ++counts[c][bank];
    }

    if (usesDataBanks(in.op)) {
        DistinctSet chunks = distinctGranules(in, kUnifiedBankWidth);
        out.distinctChunks = chunks.size();
        out.distinctWords =
            distinctGranules(in, kPartitionedBankWidth).size();

        if (isSharedSpace(in.op)) {
            // Scatter/gather access: every distinct 16-byte chunk is a
            // separate bank access, and the simple design serializes
            // chunks cluster-wide. Data contributions are counted on
            // their own first so dataMaxPerBank excludes operand reads.
            std::array<std::array<u32, kBanksPerCluster>, kNumClusters>
                dataCounts{};
            for (u32 i = 0; i < chunks.size(); ++i) {
                Addr k = chunks[i];
                u32 cluster = static_cast<u32>(k % kNumClusters);
                u32 bank = static_cast<u32>((k / kNumClusters) %
                                            kBanksPerCluster);
                ++dataCounts[cluster][bank];
                ++chunksPerCluster[cluster];
            }
            for (u32 c = 0; c < kNumClusters; ++c) {
                for (u32 b = 0; b < kBanksPerCluster; ++b) {
                    out.dataMaxPerBank =
                        std::max(out.dataMaxPerBank, dataCounts[c][b]);
                    counts[c][b] += dataCounts[c][b];
                }
            }
        } else {
            // Cache access: a 128-byte line is read/written as one
            // parallel access to bank (line % 4) in all 8 clusters;
            // multiple lines contend only at bank granularity (they
            // already serialize on the tag port).
            DistinctSet lines = distinctGranules(in, kCacheLineBytes);
            std::array<u32, kBanksPerCluster> linesPerBank{};
            for (u32 i = 0; i < lines.size(); ++i) {
                u32 bank =
                    static_cast<u32>(lines[i] % kBanksPerCluster);
                ++linesPerBank[bank];
                for (u32 c = 0; c < kNumClusters; ++c)
                    ++counts[c][bank];
            }
            out.dataMaxPerBank = *std::max_element(linesPerBank.begin(),
                                                   linesPerBank.end());
        }
    }

    u32 chain_max = 0;
    u32 bank_max = 0;
    for (u32 c = 0; c < kNumClusters; ++c) {
        u32 cluster_bank_max =
            *std::max_element(counts[c].begin(), counts[c].end());
        bank_max = std::max(bank_max, cluster_bank_max);
        u32 chain = cluster_bank_max;
        if (!aggressive_) {
            // Simple design: one bank per cluster reaches the crossbar
            // per cycle, so chunks serialize cluster-wide.
            chain = std::max(chain, chunksPerCluster[c]);
        }
        chain_max = std::max(chain_max, chain);
    }

    out.penalty = chain_max > 1 ? chain_max - 1 : 0;
    // Pure compute instructions stall the issue stage on operand
    // conflicts; memory instructions serialize in the access port.
    out.regPenalty = usesDataBanks(in.op) ? 0 : out.penalty;
    out.maxPerBank = bank_max;
    return out;
}

} // namespace unimem
