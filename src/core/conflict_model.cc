#include "core/conflict_model.hh"

#include <algorithm>
#include <array>

#include "common/log.hh"

namespace unimem {

namespace {

bool
usesDataBanks(Opcode op)
{
    // Texture fetches go through the texture unit, not the SM data banks.
    return isMemOp(op) && op != Opcode::Tex;
}

} // namespace

u32
ConflictModel::collectWords(const WarpInstr& in, Addr* out) const
{
    // Every lane contributes each 4-byte word its accessBytes span
    // covers — an 8-byte access occupies two words, exactly the units
    // the banks must serve.
    //
    // The common footprints (unit/constant positive stride) emit their
    // words in non-decreasing order, where first-occurrence dedup
    // degenerates to skipping adjacent repeats — same output array as
    // the hash path, without the per-word probe. Gather first, pick the
    // dedup strategy after.
    Addr raw[2 * kWarpWidth];
    u32 n_raw = 0;
    bool sorted = true;
    for (u32 lane = 0; lane < kWarpWidth; ++lane) {
        if (!in.laneActive(lane))
            continue;
        for (u32 b = 0; b < in.accessBytes; b += 4) {
            Addr w = (in.addr[lane] + b) / kPartitionedBankWidth;
            sorted &= n_raw == 0 || w >= raw[n_raw - 1];
            raw[n_raw++] = w;
        }
    }
    u32 n = 0;
    if (sorted) {
        for (u32 i = 0; i < n_raw; ++i)
            if (n == 0 || raw[i] != out[n - 1])
                out[n++] = raw[i];
        return n;
    }
    scratch_.begin();
    for (u32 i = 0; i < n_raw; ++i)
        if (scratch_.insert(raw[i]))
            out[n++] = raw[i];
    return n;
}

u32
ConflictModel::dedupShifted(const Addr* vals, u32 n, u32 shift,
                            Addr* out) const
{
    // Deduplicated input in ascending order (the usual case: it came
    // from collectWords' sorted path) stays ascending after the shift,
    // so adjacent-skip reproduces the hash path's first-occurrence
    // output exactly.
    bool sorted = true;
    for (u32 i = 1; i < n; ++i)
        sorted &= vals[i] >= vals[i - 1];
    u32 m = 0;
    if (sorted) {
        for (u32 i = 0; i < n; ++i) {
            Addr v = vals[i] >> shift;
            if (m == 0 || v != out[m - 1])
                out[m++] = v;
        }
        return m;
    }
    scratch_.begin();
    for (u32 i = 0; i < n; ++i) {
        Addr v = vals[i] >> shift;
        if (scratch_.insert(v))
            out[m++] = v;
    }
    return m;
}

ConflictOutcome
ConflictModel::evaluate(const WarpInstr& in, const u8* mrfBanks,
                        u32 numMrfReads) const
{
    if (kind_ == DesignKind::Unified)
        return evalUnified(in, mrfBanks, numMrfReads);
    return evalPartitioned(in, mrfBanks, numMrfReads);
}

ConflictOutcome
ConflictModel::evalPartitioned(const WarpInstr& in, const u8* mrfBanks,
                               u32 numMrfReads) const
{
    ConflictOutcome out;

    // MRF operand reads: one bank per operand, replicated per cluster.
    std::array<u32, kBanksPerCluster> regCounts{};
    for (u32 i = 0; i < numMrfReads; ++i)
        ++regCounts[mrfBanks[i] % kBanksPerCluster];
    u32 reg_max = *std::max_element(regCounts.begin(), regCounts.end());

    u32 mem_max = 0;
    if (usesDataBanks(in.op)) {
        // Gather the raw word stream once. In the sorted common case
        // (all strided kernel footprints) every output this function
        // reports is an order-independent reduction over the *distinct*
        // words — a count, a shifted count, and a histogram max — and
        // sorted first-occurrence dedup is adjacent-unique, so one
        // fused pass over the raw stream produces all three without
        // materializing the words/chunks arrays or re-scanning them.
        Addr raw[2 * kWarpWidth];
        u32 n_raw = 0;
        bool sorted = true;
        for (u32 lane = 0; lane < kWarpWidth; ++lane) {
            if (!in.laneActive(lane))
                continue;
            for (u32 b = 0; b < in.accessBytes; b += 4) {
                Addr w = (in.addr[lane] + b) / kPartitionedBankWidth;
                sorted &= n_raw == 0 || w >= raw[n_raw - 1];
                raw[n_raw++] = w;
            }
        }
        const bool is_shared = isSharedSpace(in.op);
        if (sorted) {
            u32 num_words = 0;
            u32 num_chunks = 0;
            Addr prev_chunk = 0;
            std::array<u32, kBanksPerSm> memCounts{};
            for (u32 i = 0; i < n_raw; ++i) {
                Addr w = raw[i];
                // Non-decreasing stream: equal words are contiguous.
                if (i != 0 && w == raw[i - 1])
                    continue;
                ++num_words;
                if (is_shared) {
                    u32 c = ++memCounts[w % kBanksPerSm];
                    mem_max = std::max(mem_max, c);
                }
                // Distinct words ascend, so their >>2 images are
                // non-decreasing: adjacent-unique again.
                Addr ch = w >> 2;
                if (num_chunks == 0 || ch != prev_chunk)
                    ++num_chunks;
                prev_chunk = ch;
            }
            out.distinctWords = num_words;
            // Chunk count is reported for cross-design comparisons even
            // though the partitioned design moves data in 4-byte words.
            out.distinctChunks = num_chunks;
            if (!is_shared)
                mem_max = num_words > 0 ? 1 : 0;
        } else {
            Addr words[2 * kWarpWidth];
            Addr chunks[2 * kWarpWidth];
            u32 num_words = collectWords(in, words);
            out.distinctWords = num_words;
            out.distinctChunks =
                dedupShifted(words, num_words, 2, chunks);
            if (is_shared) {
                std::array<u32, kBanksPerSm> memCounts{};
                for (u32 i = 0; i < num_words; ++i)
                    ++memCounts[words[i] % kBanksPerSm];
                mem_max =
                    *std::max_element(memCounts.begin(), memCounts.end());
            } else {
                // Aligned full-line cache access: one access per bank
                // per line; multi-line serialization is charged at the
                // tag port.
                mem_max = num_words > 0 ? 1 : 0;
            }
        }
        out.dataMaxPerBank = mem_max;
    }

    u32 reg_pen = reg_max > 1 ? reg_max - 1 : 0;
    u32 mem_pen = mem_max > 1 ? mem_max - 1 : 0;
    out.penalty = reg_pen + mem_pen;
    out.regPenalty = reg_pen;
    out.maxPerBank = std::max(reg_max, mem_max);
    return out;
}

ConflictOutcome
ConflictModel::evalUnified(const WarpInstr& in, const u8* mrfBanks,
                           u32 numMrfReads) const
{
    ConflictOutcome out;

    // counts[cluster][bank]: a register read hits its bank in every
    // cluster (the same-named register of each lane group).
    std::array<std::array<u32, kBanksPerCluster>, kNumClusters> counts{};
    std::array<u32, kNumClusters> chunksPerCluster{};

    for (u32 i = 0; i < numMrfReads; ++i) {
        u32 bank = mrfBanks[i] % kBanksPerCluster;
        for (u32 c = 0; c < kNumClusters; ++c)
            ++counts[c][bank];
    }

    if (usesDataBanks(in.op)) {
        Addr words[2 * kWarpWidth];
        Addr chunks[2 * kWarpWidth];
        u32 num_words = collectWords(in, words);
        out.distinctWords = num_words;
        u32 num_chunks = dedupShifted(words, num_words, 2, chunks);
        out.distinctChunks = num_chunks;

        if (isSharedSpace(in.op)) {
            // Scatter/gather access: every distinct 16-byte chunk is a
            // separate bank access, and the simple design serializes
            // chunks cluster-wide. Data contributions are counted on
            // their own first so dataMaxPerBank excludes operand reads.
            std::array<std::array<u32, kBanksPerCluster>, kNumClusters>
                dataCounts{};
            for (u32 i = 0; i < num_chunks; ++i) {
                Addr k = chunks[i];
                u32 cluster = static_cast<u32>(k % kNumClusters);
                u32 bank = static_cast<u32>((k / kNumClusters) %
                                            kBanksPerCluster);
                ++dataCounts[cluster][bank];
                ++chunksPerCluster[cluster];
            }
            for (u32 c = 0; c < kNumClusters; ++c) {
                for (u32 b = 0; b < kBanksPerCluster; ++b) {
                    out.dataMaxPerBank =
                        std::max(out.dataMaxPerBank, dataCounts[c][b]);
                    counts[c][b] += dataCounts[c][b];
                }
            }
        } else {
            // Cache access: a 128-byte line is read/written as one
            // parallel access to bank (line % 4) in all 8 clusters;
            // multiple lines contend only at bank granularity (they
            // already serialize on the tag port). 16-byte chunks fold
            // into 128-byte lines with a further >>3.
            Addr lines[2 * kWarpWidth];
            u32 num_lines = dedupShifted(chunks, num_chunks, 3, lines);
            std::array<u32, kBanksPerCluster> linesPerBank{};
            for (u32 i = 0; i < num_lines; ++i) {
                u32 bank =
                    static_cast<u32>(lines[i] % kBanksPerCluster);
                ++linesPerBank[bank];
                for (u32 c = 0; c < kNumClusters; ++c)
                    ++counts[c][bank];
            }
            out.dataMaxPerBank = *std::max_element(linesPerBank.begin(),
                                                   linesPerBank.end());
        }
    }

    u32 chain_max = 0;
    u32 bank_max = 0;
    for (u32 c = 0; c < kNumClusters; ++c) {
        u32 cluster_bank_max =
            *std::max_element(counts[c].begin(), counts[c].end());
        bank_max = std::max(bank_max, cluster_bank_max);
        u32 chain = cluster_bank_max;
        if (!aggressive_) {
            // Simple design: one bank per cluster reaches the crossbar
            // per cycle, so chunks serialize cluster-wide.
            chain = std::max(chain, chunksPerCluster[c]);
        }
        chain_max = std::max(chain_max, chain);
    }

    out.penalty = chain_max > 1 ? chain_max - 1 : 0;
    // Pure compute instructions stall the issue stage on operand
    // conflicts; memory instructions serialize in the access port.
    out.regPenalty = usesDataBanks(in.op) ? 0 : out.penalty;
    out.maxPerBank = bank_max;
    return out;
}

} // namespace unimem
