#include "core/allocation.hh"

namespace unimem {

AllocationDecision
allocatePartitioned(const KernelParams& kp, const MemoryPartition& part,
                    u32 threadLimit, u32 regsOverride)
{
    AllocationDecision d;
    d.design = DesignKind::Partitioned;
    d.partition = part;
    d.launch = occupancyPartitioned(kp, part.rfBytes, part.sharedBytes,
                                    threadLimit, regsOverride);
    return d;
}

AllocationDecision
allocateUnified(const KernelParams& kp, u64 capacity, u32 threadLimit,
                u32 regsOverride)
{
    AllocationDecision d;
    d.design = DesignKind::Unified;
    UnifiedLaunch ul =
        occupancyUnified(kp, capacity, threadLimit, regsOverride);
    d.launch = ul.launch;
    d.partition.rfBytes = ul.launch.rfBytes;
    d.partition.sharedBytes = ul.launch.sharedBytes;
    d.partition.cacheBytes = ul.cacheBytes;
    return d;
}

std::vector<AllocationDecision>
allocateFermiLike(const KernelParams& kp, u64 totalBytes, u32 threadLimit)
{
    std::vector<AllocationDecision> out;
    for (const MemoryPartition& part : fermiLikeOptions(totalBytes)) {
        AllocationDecision d;
        d.design = DesignKind::FermiLike;
        d.partition = part;
        d.launch = occupancyPartitioned(kp, part.rfBytes, part.sharedBytes,
                                        threadLimit, 0);
        out.push_back(d);
    }
    return out;
}

} // namespace unimem
