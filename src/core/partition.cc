#include "core/partition.hh"

#include "common/log.hh"

namespace unimem {

const char*
designName(DesignKind kind)
{
    switch (kind) {
      case DesignKind::Partitioned: return "partitioned";
      case DesignKind::Unified: return "unified";
      case DesignKind::FermiLike: return "fermi-like";
    }
    panic("designName: bad kind %d", static_cast<int>(kind));
}

std::string
MemoryPartition::str() const
{
    return strprintf("rf=%lluKB shared=%lluKB cache=%lluKB",
                     static_cast<unsigned long long>(rfBytes / 1024),
                     static_cast<unsigned long long>(sharedBytes / 1024),
                     static_cast<unsigned long long>(cacheBytes / 1024));
}

MemoryPartition
baselinePartition()
{
    return MemoryPartition{256_KB, 64_KB, 64_KB};
}

std::vector<MemoryPartition>
fermiLikeOptions(u64 totalBytes)
{
    if (totalBytes <= 256_KB)
        fatal("fermiLikeOptions: total %llu too small for the fixed 256KB "
              "register file",
              static_cast<unsigned long long>(totalBytes));
    u64 pool = totalBytes - 256_KB;
    u64 big = pool * 3 / 4;
    u64 small = pool - big;
    return {
        MemoryPartition{256_KB, big, small},
        MemoryPartition{256_KB, small, big},
    };
}

u64
unifiedBankBytes(u64 totalBytes)
{
    return totalBytes / kBanksPerSm;
}

u64
tagStorageBytes(u64 cacheBytes)
{
    u64 lines = cacheBytes / kCacheLineBytes;
    // ~19 bits of tag + valid per line, rounded to bytes; reproduces the
    // paper's 1.125KB for 64KB and ~7.125KB for a 384KB maximum cache.
    return lines * 19 / 8 + lines / 8;
}

} // namespace unimem
