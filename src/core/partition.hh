/**
 * @file
 * Memory partition descriptors for the three SM designs the paper
 * evaluates: the hard-partitioned baseline, the fully unified design, and
 * the Fermi-like limited-flexibility design (paper Sections 2, 4, 6.3).
 */

#ifndef UNIMEM_CORE_PARTITION_HH
#define UNIMEM_CORE_PARTITION_HH

#include <string>
#include <vector>

#include "arch/gpu_constants.hh"
#include "common/types.hh"

namespace unimem {

/** Which bank organization the SM uses. */
enum class DesignKind : u8
{
    /** Separate MRF / scratchpad / cache structures (baseline). */
    Partitioned,

    /** One pool of 32 unified banks, flexible split (the proposal). */
    Unified,

    /**
     * Fixed register file; scratchpad and cache share a pool with a
     * two-way configurable split (Fermi-style). Bank structure behaves
     * like the partitioned design.
     */
    FermiLike,
};

const char* designName(DesignKind kind);

/** Byte capacities of the three storage types. */
struct MemoryPartition
{
    u64 rfBytes = 0;
    u64 sharedBytes = 0;
    u64 cacheBytes = 0;

    u64 total() const { return rfBytes + sharedBytes + cacheBytes; }

    std::string str() const;
};

/** The paper's baseline: 256 KB RF + 64 KB shared + 64 KB cache. */
MemoryPartition baselinePartition();

/**
 * The two Fermi-like options for a given total capacity: the register
 * file is fixed at 256 KB and the remainder splits 3:1 either way
 * (for 384 KB total: 96/32 and 32/96, paper Section 6.3).
 */
std::vector<MemoryPartition> fermiLikeOptions(u64 totalBytes);

/**
 * Per-bank capacity of the unified design (capacity spread over the SM's
 * 32 banks; 384 KB -> 12 KB banks).
 */
u64 unifiedBankBytes(u64 totalBytes);

/**
 * Tag storage required for a cache of @p cacheBytes (used to report the
 * unified design's tag overhead, paper Section 4.1): 4-way, 128 B lines,
 * ~18 tag bits + valid per line.
 */
u64 tagStorageBytes(u64 cacheBytes);

} // namespace unimem

#endif // UNIMEM_CORE_PARTITION_HH
