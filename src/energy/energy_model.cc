#include "energy/energy_model.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"

namespace unimem {

namespace {

// Fit E[pJ] = a + b*sqrt(bytes) through Table 4's (2KB, 8KB) points;
// the 12KB unified point then lands within 3% of the paper's value.
constexpr double kReadA = -1.999;
constexpr double kReadB = 0.13036;
constexpr double kWriteA = -1.599;
constexpr double kWriteB = 0.14804;
constexpr double kMinAccessPj = 0.5;

double
fitEnergy(double a, double b, u64 bankBytes)
{
    double pj = a + b * std::sqrt(static_cast<double>(bankBytes));
    return std::max(pj, kMinAccessPj) * 1e-12;
}

} // namespace

double
bankReadEnergy(u64 bankBytes)
{
    return fitEnergy(kReadA, kReadB, bankBytes);
}

double
bankWriteEnergy(u64 bankBytes)
{
    return fitEnergy(kWriteA, kWriteB, bankBytes);
}

double
bankAccessEnergy(const EnergyInputs& in, const EnergyParams& p)
{
    const bool unified = in.design == DesignKind::Unified;
    const double wire = unified ? p.unifiedWiringFactor : 1.0;

    u64 rf_bank, shared_bank, cache_bank;
    if (unified) {
        rf_bank = shared_bank = cache_bank =
            unifiedBankBytes(in.partition.total());
    } else {
        rf_bank = in.partition.rfBytes / kBanksPerSm;
        shared_bank = in.partition.sharedBytes / kBanksPerSm;
        cache_bank = in.partition.cacheBytes / kBanksPerSm;
    }

    double e = 0.0;
    // Each warp-wide MRF access touches one 16B bank in every cluster.
    e += static_cast<double>(in.mrfReads) * kNumClusters *
         bankReadEnergy(rf_bank);
    e += static_cast<double>(in.mrfWrites) * kNumClusters *
         bankWriteEnergy(rf_bank);

    auto data_energy = [&](u64 read_bytes, u64 write_bytes, u64 bank) {
        if (bank == 0)
            return 0.0;
        double accesses_r =
            static_cast<double>(read_bytes) / kUnifiedBankWidth;
        double accesses_w =
            static_cast<double>(write_bytes) / kUnifiedBankWidth;
        return wire * (accesses_r * bankReadEnergy(bank) +
                       accesses_w * bankWriteEnergy(bank));
    };
    e += data_energy(in.sharedReadBytes, in.sharedWriteBytes, shared_bank);
    e += data_energy(in.cacheReadBytes, in.cacheWriteBytes, cache_bank);
    return e;
}

double
calibrateOtherDynamicPower(const EnergyInputs& baseline,
                           const EnergyParams& p)
{
    if (baseline.cycles == 0)
        fatal("calibrateOtherDynamicPower: zero-cycle baseline");
    double seconds =
        static_cast<double>(baseline.cycles) / p.frequencyHz;
    double bank_power = bankAccessEnergy(baseline, p) / seconds;
    return std::max(p.smDynamicPowerW - bank_power,
                    p.minOtherDynamicPowerW);
}

EnergyBreakdown
computeEnergy(const EnergyInputs& in, const EnergyParams& p,
              double otherDynamicPowerW)
{
    EnergyBreakdown out;
    double seconds = static_cast<double>(in.cycles) / p.frequencyHz;

    out.coreDynamicJ = otherDynamicPowerW * seconds;
    out.bankAccessJ = bankAccessEnergy(in, p);

    double sram_kb =
        static_cast<double>(in.partition.total()) / 1024.0;
    double leak_w = p.smLeakageBaselineW +
                    (sram_kb - p.baselineSramKb) * p.sramLeakagePerKbW;
    leak_w = std::max(leak_w, p.minLeakageW);
    out.leakageJ = leak_w * seconds;

    out.dramJ = static_cast<double>(in.dramBytes) * 8.0 *
                p.dramEnergyPerBitJ;
    return out;
}

} // namespace unimem
