/**
 * @file
 * Chip energy model (paper Section 5.2, Tables 3 and 4).
 *
 * Components modeled:
 *  - Bank access energy: per-16-byte-access SRAM energy as a function of
 *    bank capacity, fit through the paper's Table 4 points
 *    (E = a + b*sqrt(capacity) reproduces all three rows within ~3%).
 *  - Wiring overhead: unified scratchpad/cache accesses cost 10% extra
 *    (the 4:1 crossbar mux, longer wires, and tag lookup growth).
 *  - SM dynamic energy: each benchmark's "everything else" dynamic power
 *    is calibrated so the baseline 256/64/64 run dissipates 1.9 W.
 *  - Leakage: 0.9 W per SM at the 384 KB baseline, adjusted by
 *    2.37 mW per KB of SRAM capacity, scaled by runtime.
 *  - DRAM: 40 pJ per bit transferred.
 */

#ifndef UNIMEM_ENERGY_ENERGY_MODEL_HH
#define UNIMEM_ENERGY_ENERGY_MODEL_HH

#include "core/partition.hh"

namespace unimem {

/** Table 3 constants. */
struct EnergyParams
{
    double frequencyHz = 1e9;
    double smDynamicPowerW = 1.9;
    double smLeakageBaselineW = 0.9;
    double sramLeakagePerKbW = 2.37e-3;
    double baselineSramKb = 384.0;
    double dramEnergyPerBitJ = 40e-12;
    double unifiedWiringFactor = 1.10;

    /** Floor for the calibrated non-bank dynamic power. */
    double minOtherDynamicPowerW = 0.1;

    /** Floor for total SM leakage at small capacities. */
    double minLeakageW = 0.1;
};

/** Per-16-byte-access read energy (J) for a bank of @p bankBytes. */
double bankReadEnergy(u64 bankBytes);

/** Per-16-byte-access write energy (J) for a bank of @p bankBytes. */
double bankWriteEnergy(u64 bankBytes);

/** Traffic counters a simulation exports for energy accounting. */
struct EnergyInputs
{
    DesignKind design = DesignKind::Partitioned;
    MemoryPartition partition;

    /** Runtime in cycles. */
    u64 cycles = 0;

    /** Warp-wide MRF accesses (each touches one 16B bank per cluster). */
    u64 mrfReads = 0;
    u64 mrfWrites = 0;

    /** Bytes moved through scratchpad banks. */
    u64 sharedReadBytes = 0;
    u64 sharedWriteBytes = 0;

    /** Bytes moved through cache data banks (hits and fills). */
    u64 cacheReadBytes = 0;
    u64 cacheWriteBytes = 0;

    /** Bytes transferred to/from DRAM. */
    u64 dramBytes = 0;
};

/** Energy decomposition in joules. */
struct EnergyBreakdown
{
    double coreDynamicJ = 0;
    double bankAccessJ = 0;
    double leakageJ = 0;
    double dramJ = 0;

    double
    total() const
    {
        return coreDynamicJ + bankAccessJ + leakageJ + dramJ;
    }
};

/** Bank access energy only (used for calibration). */
double bankAccessEnergy(const EnergyInputs& in, const EnergyParams& p);

/**
 * Calibrate the benchmark's non-bank SM dynamic power from its baseline
 * run so that total SM dynamic power equals smDynamicPowerW (Section 5.2).
 */
double calibrateOtherDynamicPower(const EnergyInputs& baseline,
                                  const EnergyParams& p);

/**
 * Full energy for a run.
 * @param otherDynamicPowerW value from calibrateOtherDynamicPower()
 */
EnergyBreakdown computeEnergy(const EnergyInputs& in, const EnergyParams& p,
                              double otherDynamicPowerW);

} // namespace unimem

#endif // UNIMEM_ENERGY_ENERGY_MODEL_HH
