/**
 * @file
 * Bank-conflict differential cross-check (analysis/pass.hh).
 *
 * The shared-memory conflict degree of one warp instruction is a pure
 * function of its lane addresses and the design's bank mapping, so two
 * independent implementations must agree on every instruction:
 *
 *  - the *dynamic* side: an SmModel run whose issue loop records the
 *    ConflictModel's dataMaxPerBank/distinctWords/distinctChunks for
 *    every issued shared op (footprint-cache replays included), via
 *    SmModel::setSharedConflictTrace();
 *  - the *static* side: this pass re-streams each recorded warp's
 *    trace and recomputes the same quantities from first principles
 *    (partitioned: distinct 4-byte words, bank = word % 32; unified:
 *    distinct 16-byte chunks, cluster = chunk % 8, bank = chunk/8 % 4).
 *
 * Within one warp the simulator's records are in program order, so the
 * comparison is element-wise. Any divergence — a wrong degree, a wrong
 * distinct-granule count, or a missing/extra record — is a simulator
 * bug (bank mapping, footprint-cache replay, or issue accounting) and
 * is reported as bank-conflict-mismatch. Both designs are checked.
 */

#include <algorithm>

#include "analysis/pass.hh"
#include "common/log.hh"
#include "sm/sm.hh"

namespace unimem {

namespace {

/** Static recomputation of one shared op's conflict accounting. */
struct Prediction
{
    u32 dataMaxPerBank = 0;
    u32 distinctWords = 0;
    u32 distinctChunks = 0;
};

/** Distinct @p granule -sized units the active lanes touch. */
std::vector<Addr>
granules(const WarpInstr& in, u32 granule)
{
    std::vector<Addr> out;
    for (u32 lane = 0; lane < kWarpWidth; ++lane)
        if (in.laneActive(lane))
            for (u32 b = 0; b < in.accessBytes; b += 4) {
                Addr g = (in.addr[lane] + b) / granule;
                if (std::find(out.begin(), out.end(), g) == out.end())
                    out.push_back(g);
            }
    return out;
}

Prediction
predictShared(const WarpInstr& in, DesignKind design)
{
    Prediction p;
    std::vector<Addr> words = granules(in, kPartitionedBankWidth);
    std::vector<Addr> chunks = granules(in, kUnifiedBankWidth);
    p.distinctWords = static_cast<u32>(words.size());
    p.distinctChunks = static_cast<u32>(chunks.size());

    if (design == DesignKind::Unified) {
        std::array<std::array<u32, kBanksPerCluster>, kNumClusters>
            counts{};
        for (Addr k : chunks) {
            u32 cluster = static_cast<u32>(k % kNumClusters);
            u32 bank =
                static_cast<u32>((k / kNumClusters) % kBanksPerCluster);
            p.dataMaxPerBank =
                std::max(p.dataMaxPerBank, ++counts[cluster][bank]);
        }
    } else {
        std::array<u32, kBanksPerSm> counts{};
        for (Addr w : words)
            p.dataMaxPerBank = std::max(
                p.dataMaxPerBank,
                ++counts[static_cast<u32>(w % kBanksPerSm)]);
    }
    return p;
}

class BankConflictXcheckPass : public AnalysisPass
{
  public:
    const char* name() const override { return "bank-conflict-xcheck"; }

    const char*
    description() const override
    {
        return "differential cross-check of the static shared-memory "
               "conflict predictor against simulator accounting";
    }

    void
    run(AnalysisContext& ctx, DiagnosticEngine& diags,
        PassResult& out) override
    {
        u64 checked = 0;
        u64 mismatches = 0;
        checkDesign(ctx, DesignKind::Partitioned, diags, checked,
                    mismatches);
        checkDesign(ctx, DesignKind::Unified, diags, checked,
                    mismatches);
        out.stat("ops_checked", static_cast<double>(checked));
        out.stat("mismatches", static_cast<double>(mismatches));
    }

  private:
    void
    checkDesign(AnalysisContext& ctx, DesignKind design,
                DiagnosticEngine& diags, u64& checked, u64& mismatches)
    {
        const AllocationDecision& alloc = ctx.allocation(design);
        if (!alloc.launch.feasible)
            return; // register-hazard pass reports this

        SmRunConfig cfg;
        cfg.design = design;
        cfg.partition = alloc.partition;
        cfg.launch = alloc.launch;
        cfg.seed =
            ctx.options().seeds.empty() ? 1 : ctx.options().seeds[0];

        std::vector<SmModel::SharedConflictRecord> records;
        SmModel sm(cfg, ctx.kernel());
        sm.setSharedConflictTrace(&records);
        sm.run();

        // Group records per warp, preserving program order (stable
        // sort): record i of warp g must match the warp's i-th shared
        // op in its regenerated trace.
        std::vector<u32> order(records.size());
        for (u32 i = 0; i < records.size(); ++i)
            order[i] = i;
        std::stable_sort(order.begin(), order.end(),
                         [&](u32 a, u32 b) {
                             return records[a].warpGlobalId <
                                    records[b].warpGlobalId;
                         });

        for (size_t lo = 0; lo < order.size();) {
            u64 gid = records[order[lo]].warpGlobalId;
            size_t hi = lo;
            while (hi < order.size() &&
                   records[order[hi]].warpGlobalId == gid)
                ++hi;
            checkWarp(ctx, design, cfg.seed, gid,
                      {order.begin() + lo, order.begin() + hi}, records,
                      diags, checked, mismatches);
            lo = hi;
        }
    }

    void
    checkWarp(AnalysisContext& ctx, DesignKind design, u64 seed,
              u64 gid, const std::vector<u32>& recIdx,
              const std::vector<SmModel::SharedConflictRecord>& records,
              DiagnosticEngine& diags, u64& checked, u64& mismatches)
    {
        const KernelParams& kp = ctx.kp();
        WarpCtx wc;
        wc.ctaId = static_cast<u32>(gid / kp.warpsPerCta());
        wc.warpInCta = static_cast<u32>(gid % kp.warpsPerCta());
        wc.warpsPerCta = kp.warpsPerCta();
        wc.threadsPerCta = kp.ctaThreads;
        wc.seed = seed;

        DiagLoc loc;
        loc.kernel = kp.name;
        loc.ctaId = wc.ctaId;
        loc.warpInCta = wc.warpInCta;

        size_t next = 0;
        u64 sharedIndex = 0;
        InstrStream stream(ctx.kernel().warpProgram(wc));
        const WarpInstr* in;
        while ((in = stream.peek()) != nullptr) {
            if (isSharedSpace(in->op)) {
                if (next >= recIdx.size()) {
                    ++mismatches;
                    loc.instrIndex = sharedIndex;
                    diags.report(
                        DiagId::BankConflictMismatch, loc,
                        strprintf("%s: simulator recorded only %zu "
                                  "shared ops for this warp but the "
                                  "trace has more",
                                  designName(design), recIdx.size()));
                    return;
                }
                const SmModel::SharedConflictRecord& rec =
                    records[recIdx[next]];
                Prediction p = predictShared(*in, design);
                ++checked;
                if (p.dataMaxPerBank != rec.dataMaxPerBank ||
                    p.distinctWords != rec.distinctWords ||
                    p.distinctChunks != rec.distinctChunks) {
                    ++mismatches;
                    loc.instrIndex = sharedIndex;
                    diags.report(
                        DiagId::BankConflictMismatch, loc,
                        strprintf(
                            "%s shared op %llu: predicted "
                            "degree/words/chunks %u/%u/%u but the "
                            "simulator charged %u/%u/%u",
                            designName(design),
                            static_cast<unsigned long long>(
                                sharedIndex),
                            p.dataMaxPerBank, p.distinctWords,
                            p.distinctChunks, rec.dataMaxPerBank,
                            rec.distinctWords, rec.distinctChunks));
                }
                ++next;
                ++sharedIndex;
            }
            stream.pop();
        }
        if (next != recIdx.size()) {
            ++mismatches;
            loc.instrIndex = DiagLoc::kNoInstr;
            diags.report(
                DiagId::BankConflictMismatch, loc,
                strprintf("%s: simulator recorded %zu shared ops for "
                          "this warp but the trace has only %zu",
                          designName(design), recIdx.size(), next));
        }
    }
};

} // namespace

std::unique_ptr<AnalysisPass>
makeBankConflictXcheckPass()
{
    return std::make_unique<BankConflictXcheckPass>();
}

} // namespace unimem
