/**
 * @file
 * Barrier-divergence/deadlock detector (analysis/pass.hh).
 *
 * The SM releases a barrier when every resident warp of the CTA has
 * arrived (sm.cc execBarrier/releaseBarrier), so a CTA whose warps
 * execute unequal Bar counts deadlocks: the warps that run out of
 * barriers retire while the rest wait forever — or, worse, a later
 * barrier pairs warps across *different* program barriers. Warp traces
 * are straight-line (divergence is folded into active masks), so equal
 * per-warp Bar counts prove every warp reaches each barrier the same
 * number of times; unequal counts are a guaranteed hang.
 *
 * Unlike the warp-invariants prefix sampler this pass scans warps'
 * whole traces — a count mismatch can hide arbitrarily deep — under a
 * kernel-wide instruction budget. CTAs are sampled ({first, middle,
 * last} when the grid is large) but every warp of a chosen CTA is
 * counted, since the invariant is a property of the whole CTA.
 */

#include <algorithm>

#include "analysis/pass.hh"
#include "common/log.hh"

namespace unimem {

namespace {

class BarrierSyncPass : public AnalysisPass
{
  public:
    const char* name() const override { return "barrier-sync"; }

    const char*
    description() const override
    {
        return "whole-trace proof that every warp of a CTA reaches "
               "each barrier the same number of times";
    }

    void
    run(AnalysisContext& ctx, DiagnosticEngine& diags,
        PassResult& out) override
    {
        const KernelParams& kp = ctx.kp();
        const LintOptions& opt = ctx.options();

        std::vector<u32> ctas;
        if (kp.gridCtas <= 8) {
            for (u32 c = 0; c < kp.gridCtas; ++c)
                ctas.push_back(c);
        } else {
            ctas = {0, kp.gridCtas / 2, kp.gridCtas - 1};
        }

        u64 budget = opt.barrierScanBudget;
        u64 instrs = 0;
        u64 warps = 0;
        u32 divergent = 0;
        bool truncated = false;

        std::vector<u64> barCounts(kp.warpsPerCta());
        for (u64 seed : opt.seeds) {
            for (u32 cta : ctas) {
                bool complete = true;
                for (u32 w = 0; w < kp.warpsPerCta(); ++w) {
                    WarpCtx wc;
                    wc.ctaId = cta;
                    wc.warpInCta = w;
                    wc.warpsPerCta = kp.warpsPerCta();
                    wc.threadsPerCta = kp.ctaThreads;
                    wc.seed = seed;

                    u64 bars = 0;
                    InstrStream stream(ctx.kernel().warpProgram(wc));
                    const WarpInstr* in;
                    while ((in = stream.peek()) != nullptr) {
                        if (instrs >= budget) {
                            complete = false;
                            truncated = true;
                            break;
                        }
                        if (in->op == Opcode::Bar)
                            ++bars;
                        ++instrs;
                        stream.pop();
                    }
                    barCounts[w] = bars;
                    ++warps;
                    if (!complete)
                        break;
                }
                if (!complete)
                    continue; // partial counts prove nothing

                auto [lo, hi] = std::minmax_element(barCounts.begin(),
                                                    barCounts.end());
                if (*lo != *hi) {
                    ++divergent;
                    DiagLoc loc;
                    loc.kernel = kp.name;
                    loc.ctaId = cta;
                    loc.warpInCta = static_cast<u32>(
                        std::distance(barCounts.begin(), lo));
                    diags.report(
                        DiagId::BarrierDivergence, loc,
                        strprintf(
                            "CTA %u warps reach between %llu and %llu "
                            "barriers (seed %llu); the CTA deadlocks "
                            "at barrier %llu",
                            cta, static_cast<unsigned long long>(*lo),
                            static_cast<unsigned long long>(*hi),
                            static_cast<unsigned long long>(seed),
                            static_cast<unsigned long long>(*lo)));
                }
            }
        }

        if (truncated) {
            DiagLoc loc;
            loc.kernel = kp.name;
            diags.report(
                DiagId::TraceBoundExceeded, loc,
                strprintf("barrier scan hit its %llu-instruction "
                          "budget; CTAs past the cutoff are unproven",
                          static_cast<unsigned long long>(budget)));
        }

        out.stat("ctas_scanned",
                 static_cast<double>(ctas.size() * opt.seeds.size()));
        out.stat("warps_scanned", static_cast<double>(warps));
        out.stat("instrs_scanned", static_cast<double>(instrs));
        out.stat("divergent_ctas", static_cast<double>(divergent));
        out.stat("truncated", truncated ? 1.0 : 0.0);
    }
};

} // namespace

std::unique_ptr<AnalysisPass>
makeBarrierSyncPass()
{
    return std::make_unique<BarrierSyncPass>();
}

} // namespace unimem
