#include "analysis/lint.hh"

#include <algorithm>
#include <set>
#include <sstream>

#include "analysis/liveness.hh"
#include "analysis/pass.hh"
#include "common/log.hh"
#include "common/table.hh"

namespace unimem {

namespace {

/** Per-instruction invariant checker for one warp. */
class WarpChecker
{
  public:
    WarpChecker(const KernelParams& kp, const WarpCtx& ctx,
                const LintOptions& opt, DiagnosticEngine& diags,
                LintMetrics& metrics)
        : kp_(kp), opt_(opt), diags_(diags), metrics_(metrics),
          liveness_(kp.regsPerThread, kp.liveInRegCount(), opt.orfEntries),
          written_(kp.regsPerThread, false),
          ctaSharedBase_(static_cast<Addr>(ctx.ctaId) *
                         kp.sharedBytesPerCta)
    {
        loc_.kernel = kp.name;
        loc_.ctaId = ctx.ctaId;
        loc_.warpInCta = ctx.warpInCta;
    }

    void
    check(const WarpInstr& in)
    {
        loc_.instrIndex = index_;
        checkShape(in);
        checkRegisters(in);
        if (isMemOp(in.op))
            checkMemory(in);
        liveness_.step(in);
        ++metrics_.instrs;
        ++index_;
    }

    void
    finish()
    {
        LivenessSummary s = liveness_.finish();
        metrics_.regPressure = std::max(metrics_.regPressure, s.maxLive);
        metrics_.regReads += s.regReads;
        metrics_.orfCaptured += s.orfCaptured;
    }

  private:
    void
    checkShape(const WarpInstr& in)
    {
        const OpcodeShape& shape = opcodeShape(in.op);
        if (in.numSrc > 3 || in.numSrc < shape.minSrc ||
            in.numSrc > shape.maxSrc) {
            diags_.report(DiagId::BadArity, loc_,
                          strprintf("%s carries %u source operands "
                                    "(expects %u..%u)",
                                    opcodeName(in.op), in.numSrc,
                                    shape.minSrc, shape.maxSrc));
        } else {
            for (u8 s = 0; s < in.numSrc; ++s)
                if (in.src[s] == kInvalidReg)
                    diags_.report(
                        DiagId::InvalidSrcOperand, loc_,
                        strprintf("%s source %u is kInvalidReg inside "
                                  "the declared arity",
                                  opcodeName(in.op), s));
        }
        if (shape.hasDst && !in.hasDst())
            diags_.report(DiagId::MissingDst, loc_,
                          strprintf("%s produces a value but has no "
                                    "destination register",
                                    opcodeName(in.op)));
        if (!shape.hasDst && in.hasDst())
            diags_.report(DiagId::UnexpectedDst, loc_,
                          strprintf("%s carries destination r%u but "
                                    "produces no value",
                                    opcodeName(in.op), in.dst));
        if (isMemOp(in.op)) {
            if (in.activeMask == 0)
                diags_.report(DiagId::EmptyActiveMask, loc_,
                              strprintf("%s with no active lanes",
                                        opcodeName(in.op)));
            if (in.accessBytes != 4 && in.accessBytes != 8)
                diags_.report(DiagId::BadAccessBytes, loc_,
                              strprintf("%s accesses %u bytes per lane "
                                        "(must be 4 or 8)",
                                        opcodeName(in.op),
                                        in.accessBytes));
        }
    }

    void
    checkRegisters(const WarpInstr& in)
    {
        for (u8 s = 0; s < in.numSrc && s < 3; ++s) {
            RegId r = in.src[s];
            if (r == kInvalidReg)
                continue;
            if (r >= kp_.regsPerThread) {
                diags_.report(
                    DiagId::RegOutOfRange, loc_,
                    strprintf("source r%u exceeds the declared footprint "
                              "of %u registers/thread",
                              r, kp_.regsPerThread));
            } else if (!written_[r] && r >= kp_.liveInRegCount()) {
                diags_.report(
                    DiagId::ReadBeforeWrite, loc_,
                    strprintf("r%u read before any write (live-in set is "
                              "[0, %u))",
                              r, kp_.liveInRegCount()));
            }
        }
        if (in.hasDst()) {
            if (in.dst >= kp_.regsPerThread)
                diags_.report(
                    DiagId::RegOutOfRange, loc_,
                    strprintf("destination r%u exceeds the declared "
                              "footprint of %u registers/thread",
                              in.dst, kp_.regsPerThread));
            else
                written_[in.dst] = true;
        }
    }

    void
    checkMemory(const WarpInstr& in)
    {
        ++metrics_.memOps;
        if (isSharedSpace(in.op))
            checkShared(in);
        else if (in.op == Opcode::LdLocal || in.op == Opcode::StLocal)
            checkLocal(in);
        else
            checkGlobal(in);
        checkAlignment(in);
    }

    void
    checkShared(const WarpInstr& in)
    {
        ++metrics_.sharedOps;
        if (kp_.sharedBytesPerCta == 0) {
            diags_.report(DiagId::SharedUnallocated, loc_,
                          strprintf("%s but the kernel declares no "
                                    "scratchpad",
                                    opcodeName(in.op)));
            return;
        }
        for (u32 lane = 0; lane < kWarpWidth; ++lane) {
            if (!in.laneActive(lane))
                continue;
            Addr a = in.addr[lane];
            if (a < ctaSharedBase_ ||
                a + in.accessBytes >
                    ctaSharedBase_ + kp_.sharedBytesPerCta) {
                diags_.report(
                    DiagId::SharedOutOfBounds, loc_,
                    strprintf("lane %u offset %lld outside the CTA's "
                              "%u-byte scratchpad slab",
                              lane,
                              static_cast<long long>(
                                  static_cast<i64>(a - ctaSharedBase_)),
                              kp_.sharedBytesPerCta));
                break; // one finding per instruction
            }
        }
        recordSharedConflicts(in);
    }

    void
    recordSharedConflicts(const WarpInstr& in)
    {
        // Statically provable conflict degree under the partitioned
        // mapping: distinct 4-byte words, bank = word % kBanksPerSm;
        // degree = max accesses to one bank (mem/bank_conflicts.hh uses
        // the same counting dynamically).
        std::set<Addr> words;
        for (u32 lane = 0; lane < kWarpWidth; ++lane)
            if (in.laneActive(lane))
                for (u32 b = 0; b < in.accessBytes; b += 4)
                    words.insert((in.addr[lane] + b) / 4);
        std::array<u32, kBanksPerSm> perBank{};
        u32 degree = 0;
        for (Addr w : words) {
            u32 bank = static_cast<u32>(w % kBanksPerSm);
            degree = std::max(degree, ++perBank[bank]);
        }
        if (degree <= 1)
            ++metrics_.sharedConflictFree;
        metrics_.sharedDegreeSum += degree;
        metrics_.sharedDegreeMax =
            std::max(metrics_.sharedDegreeMax, degree);
    }

    void
    checkLocal(const WarpInstr& in)
    {
        for (u32 lane = 0; lane < kWarpWidth; ++lane) {
            if (!in.laneActive(lane))
                continue;
            if (in.addr[lane] < kLocalBase) {
                diags_.report(
                    DiagId::LocalOutsideAperture, loc_,
                    strprintf("lane %u address 0x%llx below the "
                              "thread-local aperture",
                              lane,
                              static_cast<unsigned long long>(
                                  in.addr[lane])));
                break;
            }
        }
    }

    void
    checkGlobal(const WarpInstr& in)
    {
        Addr lo = ~Addr(0);
        Addr hi = 0;
        bool any = false;
        for (u32 lane = 0; lane < kWarpWidth; ++lane) {
            if (!in.laneActive(lane))
                continue;
            Addr a = in.addr[lane];
            if (a >= kLocalBase) {
                diags_.report(
                    DiagId::GlobalInLocalAperture, loc_,
                    strprintf("lane %u address 0x%llx inside the "
                              "thread-local aperture",
                              lane, static_cast<unsigned long long>(a)));
                return;
            }
            lo = std::min(lo, a);
            hi = std::max(hi, a);
            any = true;
        }
        if (any && hi - lo > opt_.laneSpreadLimit)
            diags_.report(
                DiagId::ImpossibleLaneSpread, loc_,
                strprintf("lane addresses span 0x%llx bytes in one warp "
                          "access (limit 0x%llx)",
                          static_cast<unsigned long long>(hi - lo),
                          static_cast<unsigned long long>(
                              opt_.laneSpreadLimit)));
    }

    void
    checkAlignment(const WarpInstr& in)
    {
        if (in.accessBytes != 4 && in.accessBytes != 8)
            return; // already an error
        for (u32 lane = 0; lane < kWarpWidth; ++lane) {
            if (!in.laneActive(lane))
                continue;
            if (in.addr[lane] % in.accessBytes != 0) {
                diags_.report(
                    DiagId::MisalignedAddress, loc_,
                    strprintf("lane %u address 0x%llx not %u-byte "
                              "aligned",
                              lane,
                              static_cast<unsigned long long>(
                                  in.addr[lane]),
                              in.accessBytes));
                break;
            }
        }
    }

    const KernelParams& kp_;
    const LintOptions& opt_;
    DiagnosticEngine& diags_;
    LintMetrics& metrics_;
    TraceLiveness liveness_;
    std::vector<bool> written_;
    Addr ctaSharedBase_;
    DiagLoc loc_;
    u64 index_ = 0;
};

} // namespace

void
LintMetrics::merge(const LintMetrics& o)
{
    instrs += o.instrs;
    memOps += o.memOps;
    sharedOps += o.sharedOps;
    regPressure = std::max(regPressure, o.regPressure);
    regReads += o.regReads;
    orfCaptured += o.orfCaptured;
    sharedConflictFree += o.sharedConflictFree;
    sharedDegreeSum += o.sharedDegreeSum;
    sharedDegreeMax = std::max(sharedDegreeMax, o.sharedDegreeMax);
}

std::vector<WarpCtx>
lintWarpSamples(const KernelParams& kp, const LintOptions& opt)
{
    std::vector<u32> ctas = {0, kp.gridCtas / 2, kp.gridCtas - 1};
    std::vector<u32> warps = {0, kp.warpsPerCta() - 1};
    std::sort(ctas.begin(), ctas.end());
    ctas.erase(std::unique(ctas.begin(), ctas.end()), ctas.end());
    std::sort(warps.begin(), warps.end());
    warps.erase(std::unique(warps.begin(), warps.end()), warps.end());

    std::vector<WarpCtx> out;
    for (u64 seed : opt.seeds)
        for (u32 cta : ctas)
            for (u32 warp : warps) {
                WarpCtx ctx;
                ctx.ctaId = cta;
                ctx.warpInCta = warp;
                ctx.warpsPerCta = kp.warpsPerCta();
                ctx.threadsPerCta = kp.ctaThreads;
                ctx.seed = seed;
                out.push_back(ctx);
            }
    return out;
}

void
lintWarp(const KernelModel& kernel, const WarpCtx& ctx,
         const LintOptions& opt, DiagnosticEngine& diags,
         LintMetrics& metrics)
{
    WarpChecker checker(kernel.params(), ctx, opt, diags, metrics);
    InstrStream stream(kernel.warpProgram(ctx));
    for (u32 i = 0; i < opt.maxInstrsPerWarp; ++i) {
        const WarpInstr* in = stream.peek();
        if (in == nullptr)
            break;
        checker.check(*in);
        stream.pop();
    }
    checker.finish();
}

namespace {

/**
 * The original analyzer as a pass: per-instruction invariants over the
 * sampled warp prefixes plus the derived-metric advisories.
 */
class WarpInvariantsPass : public AnalysisPass
{
  public:
    const char* name() const override { return "warp-invariants"; }

    const char*
    description() const override
    {
        return "per-instruction shape/register/address invariants over "
               "sampled warp trace prefixes";
    }

    void
    run(AnalysisContext& ctx, DiagnosticEngine& diags,
        PassResult& out) override
    {
        const KernelParams& kp = ctx.kp();
        const LintOptions& opt = ctx.options();
        for (const WarpCtx& wc : ctx.warpSamples())
            lintWarp(ctx.kernel(), wc, opt, diags, out.metrics);

        if (out.metrics.regReads > 0 &&
            out.metrics.orfReachableFraction() < opt.orfAdvisoryFloor) {
            DiagLoc loc;
            loc.kernel = kp.name;
            diags.report(
                DiagId::LowOrfCapture, loc,
                strprintf("ORF-reachable read fraction %.2f is below "
                          "the Section 2.1 band (floor %.2f)",
                          out.metrics.orfReachableFraction(),
                          opt.orfAdvisoryFloor));
        }

        out.stat("instrs", static_cast<double>(out.metrics.instrs));
        out.stat("mem_ops", static_cast<double>(out.metrics.memOps));
        out.stat("shared_ops",
                 static_cast<double>(out.metrics.sharedOps));
        out.stat("reg_pressure",
                 static_cast<double>(out.metrics.regPressure));
        out.stat("orf_fraction", out.metrics.orfReachableFraction());
        out.stat("shared_degree_avg",
                 out.metrics.avgSharedConflictDegree());
        out.stat("shared_degree_max",
                 static_cast<double>(out.metrics.sharedDegreeMax));
    }
};

} // namespace

std::unique_ptr<AnalysisPass>
makeWarpInvariantsPass()
{
    return std::make_unique<WarpInvariantsPass>();
}

std::string
LintReport::str() const
{
    std::ostringstream os;
    os << kernel << ": " << metrics.instrs << " instrs, " << errors()
       << " errors, " << warnings() << " warnings, " << infos()
       << " infos; pressure " << metrics.regPressure << ", orf "
       << Table::num(metrics.orfReachableFraction(), 3) << ", shared-degree "
       << Table::num(metrics.avgSharedConflictDegree(), 2) << " avg / "
       << metrics.sharedDegreeMax << " max\n";
    diags.print(os);
    return os.str();
}

} // namespace unimem
