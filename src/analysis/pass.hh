/**
 * @file
 * Whole-trace analysis pass framework (DESIGN.md Section 11).
 *
 * The single-warp checker of lint.cc generalizes to a set of named
 * verifier passes sharing one per-kernel AnalysisContext. Each pass
 * proves (or refutes) one invariant the simulator's correctness rests
 * on and reports violations through the common DiagnosticEngine:
 *
 *  - warp-invariants: the original per-instruction checker over the
 *    sampled warp prefixes (shape, registers, address spaces) plus the
 *    static metric advisories;
 *  - barrier-sync: every warp of a CTA reaches each barrier the same
 *    number of times, proven by counting Bar instructions over whole
 *    warp traces (straight-line traces make count equality a full
 *    alignment proof);
 *  - register-hazard: WAR/WAW hygiene across ORF capture windows
 *    (dead long-latency-load overwrites, zero-read same-window
 *    redefinitions) and unified-pool allocation legality;
 *  - bank-conflict-xcheck: differential cross-check of the static
 *    shared-memory conflict predictor against the simulator's own
 *    per-instruction accounting — any divergence is a simulator bug;
 *  - chip-ownership: runs a small bound-weave chip co-simulation with
 *    the ownership auditor armed (common/ownership.hh) and reports any
 *    cross-SM access during the bound phase.
 *
 * Passes are registered in a static table (allPasses()); unimem_lint
 * exposes them via --passes/--all-passes and emits each pass's summary
 * statistics in the JSON report.
 */

#ifndef UNIMEM_ANALYSIS_PASS_HH
#define UNIMEM_ANALYSIS_PASS_HH

#include <array>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/lint.hh"
#include "core/allocation.hh"

namespace unimem {

/**
 * Shared per-kernel state the passes draw on. Derived products (the
 * warp sample set, per-design allocation decisions) are computed on
 * first use and cached so passes never repeat each other's work.
 */
class AnalysisContext
{
  public:
    AnalysisContext(const KernelModel& kernel, const LintOptions& opt)
        : kernel_(kernel), opt_(opt)
    {
    }

    const KernelModel& kernel() const { return kernel_; }
    const KernelParams& kp() const { return kernel_.params(); }
    const LintOptions& options() const { return opt_; }

    /** The lintWarpSamples() set (cached). */
    const std::vector<WarpCtx>& warpSamples();

    /**
     * The allocation a default RunSpec of @p design implies for this
     * kernel (baseline partition / 384 KB unified pool), cached per
     * design. FermiLike resolves against the baseline capacities.
     */
    const AllocationDecision& allocation(DesignKind design);

  private:
    const KernelModel& kernel_;
    LintOptions opt_;
    std::optional<std::vector<WarpCtx>> samples_;
    std::array<std::optional<AllocationDecision>, 3> allocs_;
};

/** One verifier pass over a kernel model. */
class AnalysisPass
{
  public:
    virtual ~AnalysisPass() = default;

    /** Stable kebab-case name (CLI selection, JSON report key). */
    virtual const char* name() const = 0;

    virtual const char* description() const = 0;

    /**
     * Run over @p ctx, reporting findings into @p diags and summary
     * numbers into @p out (out.pass is pre-filled by the driver).
     */
    virtual void run(AnalysisContext& ctx, DiagnosticEngine& diags,
                     PassResult& out) = 0;
};

/** Registry entry of one pass. */
struct PassInfo
{
    const char* name;
    const char* description;

    /** Member of the default lintKernel() set? */
    bool inDefaultSet;

    std::unique_ptr<AnalysisPass> (*create)();
};

/** Every registered pass, in canonical execution order. */
const std::vector<PassInfo>& allPasses();

/** Look up a pass by name; nullptr if unknown. */
const PassInfo* findPass(const std::string& name);

/** Names of the default pass set, in order. */
std::vector<std::string> defaultPassNames();

/**
 * Assert registry integrity (non-empty unique kebab-case names, working
 * factories) and the diagnostic registry it reports through. Panics on
 * violation; called from unimem_lint and tests.
 */
void verifyPassRegistry();

/** Pass factories (one per pass_*.cc translation unit). */
std::unique_ptr<AnalysisPass> makeWarpInvariantsPass();
std::unique_ptr<AnalysisPass> makeBarrierSyncPass();
std::unique_ptr<AnalysisPass> makeRegisterHazardPass();
std::unique_ptr<AnalysisPass> makeBankConflictXcheckPass();
std::unique_ptr<AnalysisPass> makeChipOwnershipPass();

} // namespace unimem

#endif // UNIMEM_ANALYSIS_PASS_HH
