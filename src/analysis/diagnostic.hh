/**
 * @file
 * Diagnostic vocabulary and collection engine for the static trace
 * analyzer (analysis/lint.hh).
 *
 * Modeled on a compiler driver: every finding is a named diagnostic with
 * a severity and a source location (kernel, CTA, warp, instruction
 * index). The engine deduplicates repeated findings (a loop that reads
 * an uninitialized register reports once, with an occurrence count),
 * caps the number of distinct sites kept per diagnostic kind, and
 * supports -Werror-style severity promotion.
 */

#ifndef UNIMEM_ANALYSIS_DIAGNOSTIC_HH
#define UNIMEM_ANALYSIS_DIAGNOSTIC_HH

#include <array>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hh"

namespace unimem {

/** Diagnostic severity, ordered so that higher is worse. */
enum class Severity : u8
{
    Info,
    Warning,
    Error,
};

const char* severityName(Severity s);

/**
 * Every check the analyzer can report (DESIGN.md Sections 7 and 11).
 *
 * The underlying value of an id is part of the stable machine-readable
 * interface (JSON reports, suppression lists), so new ids are only ever
 * appended and the type is wide enough that the registry can keep
 * growing; verifyDiagRegistry() asserts the name table stays dense,
 * unique and stable.
 */
enum class DiagId : u16
{
    // (a) dataflow
    ReadBeforeWrite, ///< register read with no prior def, not live-in

    // (b) declared register footprint
    RegOutOfRange, ///< register id >= params().regsPerThread

    // (c) address-space invariants
    SharedOutOfBounds,     ///< scratchpad access outside the CTA's slab
    SharedUnallocated,     ///< shared access with sharedBytesPerCta == 0
    LocalOutsideAperture,  ///< local access below kLocalBase
    GlobalInLocalAperture, ///< global/tex access inside the local window
    ImpossibleLaneSpread,  ///< one warp access spanning > spreadLimit
    MisalignedAddress,     ///< lane address not accessBytes-aligned

    // (d) instruction well-formedness
    BadArity,          ///< numSrc outside the opcode's shape
    MissingDst,        ///< opcode produces a value but dst is invalid
    UnexpectedDst,     ///< store/barrier carrying a destination
    InvalidSrcOperand, ///< src[i] == kInvalidReg for i < numSrc
    EmptyActiveMask,   ///< memory op with no active lanes
    BadAccessBytes,    ///< memory op with accessBytes not in {4, 8}

    // (e) derived-metric advisories
    LowOrfCapture, ///< ORF-reachable read fraction below the paper's band

    // (f) barrier synchronization (analysis/pass_barrier.cc)
    BarrierDivergence,  ///< warps of one CTA reach unequal Bar counts
    TraceBoundExceeded, ///< whole-trace scan hit its instruction budget

    // (g) register hazards across ORF capture windows
    DeadLoadOverwrite, ///< LL-load result overwritten with zero reads
    OrfWindowWaw,      ///< same-window redefinition with zero reads

    // (h) unified-pool allocation legality
    AllocInfeasibleLaunch,  ///< allocation cannot fit the launch shape
    AllocOverSubscribed,    ///< partitions exceed the pool capacity
    AllocPartitionOverlap,  ///< cache/scratch/RF partition overlap

    // (i) differential simulator cross-checks
    BankConflictMismatch, ///< static predictor vs simulator accounting

    // (j) bound-phase determinism (common/ownership.hh auditor)
    OwnershipViolation, ///< cross-SM access during the bound phase
};

constexpr u32 kNumDiagIds =
    static_cast<u32>(DiagId::OwnershipViolation) + 1;

/** Stable kebab-case name, e.g. "read-before-write". */
const char* diagName(DiagId id);

/** Built-in severity of @p id before any -Werror promotion. */
Severity diagDefaultSeverity(DiagId id);

/**
 * Assert the diagnostic registry's integrity: every id in
 * [0, kNumDiagIds) has a non-empty kebab-case name, no two ids share a
 * name, and the anchor ids that external tooling keys on have not been
 * renumbered. Panics on violation; called from unimem_lint and tests.
 */
void verifyDiagRegistry();

/** Where a diagnostic fired. */
struct DiagLoc
{
    std::string kernel;
    u32 ctaId = 0;
    u32 warpInCta = 0;

    /** Instruction index within the warp's trace, or kNoInstr. */
    u64 instrIndex = kNoInstr;

    static constexpr u64 kNoInstr = ~u64(0);

    /** "kernel:cta0:w1:i42" (omits the instruction when kNoInstr). */
    std::string str() const;
};

/** One deduplicated finding. */
struct Diagnostic
{
    DiagId id = DiagId::ReadBeforeWrite;
    Severity severity = Severity::Error;
    DiagLoc loc;
    std::string message;

    /** Times this (id, warp, message) site fired; first location kept. */
    u64 occurrences = 1;

    /** "kernel:cta0:w1:i42: error: message [read-before-write] (x3)" */
    std::string str() const;
};

/** Collection policy of a DiagnosticEngine. */
struct DiagnosticOptions
{
    /** Promote warnings to errors at report time (-Werror). */
    bool werror = false;

    /** Distinct stored sites per DiagId; further ones are counted. */
    u32 maxSitesPerId = 16;

    /**
     * Findings below this severity (after -Werror promotion) are
     * discarded without being stored or counted as suppressed.
     */
    Severity minSeverity = Severity::Info;

    /**
     * Global cap on stored sites across all ids (--max-diags);
     * 0 means unlimited. Overflow sites count as suppressed.
     */
    u64 maxTotalSites = 0;
};

/**
 * Collects diagnostics with deduplication and severity gating.
 *
 * Deduplication key: (id, kernel, ctaId, warpInCta, message) — the first
 * occurrence keeps its location, later ones bump the count. Per
 * diagnostic id at most maxSitesPerId distinct sites are stored;
 * overflow sites are only counted (suppressedCount). All state is
 * deterministic: insertion order is trace order.
 */
class DiagnosticEngine
{
  public:
    explicit DiagnosticEngine(const DiagnosticOptions& opt = {})
        : opt_(opt)
    {
    }

    /** Report a finding with the id's default (possibly promoted)
     *  severity. */
    void report(DiagId id, const DiagLoc& loc, std::string message);

    /** Findings in first-occurrence order. */
    const std::vector<Diagnostic>& diagnostics() const { return diags_; }

    /** Findings (deduplicated sites) at exactly @p s. */
    u64 count(Severity s) const;

    /** Deduplicated sites with the given id. */
    u64 countOf(DiagId id) const;

    /** Sites dropped by the per-id or global cap. */
    u64 suppressedCount() const { return suppressed_; }

    /** Reports discarded by the minSeverity filter. */
    u64 filteredCount() const { return filtered_; }

    bool hasErrors() const { return count(Severity::Error) > 0; }

    const DiagnosticOptions& options() const { return opt_; }

    /** Fold another engine's findings into this one (same dedup rules). */
    void merge(const DiagnosticEngine& other);

    /** One line per finding, plus a suppression note when applicable. */
    void print(std::ostream& os) const;

  private:
    DiagnosticOptions opt_;
    std::vector<Diagnostic> diags_;

    /** Dedup key -> index into diags_. */
    std::map<std::string, size_t> index_;

    /** Stored sites per id (enforces maxSitesPerId). */
    std::array<u64, kNumDiagIds> sitesPerId_{};

    u64 suppressed_ = 0;
    u64 filtered_ = 0;
};

} // namespace unimem

#endif // UNIMEM_ANALYSIS_DIAGNOSTIC_HH
