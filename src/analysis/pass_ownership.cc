/**
 * @file
 * Bound-phase ownership auditor pass (analysis/pass.hh).
 *
 * The bound-weave chip engine's determinism proof (DESIGN.md Section
 * 10) rests on an ownership discipline: during the bound phase each SM
 * worker may touch only its own SM and its private request queue, and
 * every shared structure (the chip DramModels, the deferred-group
 * arrays, the scoreboard delivery entry points) is touched only by the
 * single-threaded weaver. common/ownership.hh tags those structures
 * with owners and checks the calling thread's actor on every access.
 *
 * This pass arms the auditor, runs a small multi-worker chip
 * co-simulation of the kernel, and reports every recorded violation as
 * an ownership-violation error. A clean run is a dynamic proof that
 * the bound phase performed no cross-SM access on any audited site for
 * this kernel's schedule; any violation is a determinism race the
 * TSan gate might miss (TSan needs the racing interleaving to occur,
 * the auditor only needs the access to happen at all).
 */

#include <algorithm>
#include <mutex>

#include "analysis/pass.hh"
#include "common/log.hh"
#include "common/ownership.hh"
#include "sm/chip.hh"

namespace unimem {

namespace {

/** Violation sink shared with worker threads (handler is global). */
std::mutex gSinkMu;
std::vector<ownership::Violation>* gSink = nullptr;

void
collectViolation(const ownership::Violation& v)
{
    std::lock_guard<std::mutex> lock(gSinkMu);
    if (gSink != nullptr)
        gSink->push_back(v);
}

class ChipOwnershipPass : public AnalysisPass
{
  public:
    const char* name() const override { return "chip-ownership"; }

    const char*
    description() const override
    {
        return "bound-weave chip run with the ownership auditor armed "
               "(no cross-SM access during the bound phase)";
    }

    void
    run(AnalysisContext& ctx, DiagnosticEngine& diags,
        PassResult& out) override
    {
        const KernelParams& kp = ctx.kp();
        const AllocationDecision& alloc =
            ctx.allocation(DesignKind::Partitioned);
        if (!alloc.launch.feasible)
            return; // register-hazard pass reports this

        ChipConfig cfg;
        cfg.numSms = 4;
        cfg.quantum = 64;
        cfg.workers = 2;
        cfg.sm.design = DesignKind::Partitioned;
        cfg.sm.partition = alloc.partition;
        cfg.sm.launch = alloc.launch;
        cfg.sm.seed =
            ctx.options().seeds.empty() ? 1 : ctx.options().seeds[0];

        // The violation handler and auditing flag are process-global:
        // serialize concurrent passes and restore both on exit.
        static std::mutex passMu;
        std::lock_guard<std::mutex> passLock(passMu);

        std::vector<ownership::Violation> violations;
        {
            std::lock_guard<std::mutex> lock(gSinkMu);
            gSink = &violations;
        }
        bool prevAudit = ownership::auditing();
        ownership::setAuditing(true);
        ownership::Handler prevHandler =
            ownership::setViolationHandler(collectViolation);
        u64 checksBefore = ownership::checksPerformed();

        ChipStats stats;
        {
            ChipModel chip(cfg, ctx.kernel());
            stats = chip.run();
        }

        ownership::setViolationHandler(prevHandler);
        ownership::setAuditing(prevAudit);
        u64 checks = ownership::checksPerformed() - checksBefore;
        {
            std::lock_guard<std::mutex> lock(gSinkMu);
            gSink = nullptr;
        }

        // Workers race to record, so order the findings canonically
        // before reporting.
        std::sort(violations.begin(), violations.end(),
                  [](const ownership::Violation& a,
                     const ownership::Violation& b) {
                      if (std::string(a.site) != b.site)
                          return std::string(a.site) < b.site;
                      if (a.actor != b.actor)
                          return a.actor < b.actor;
                      return a.owner < b.owner;
                  });
        for (const ownership::Violation& v : violations) {
            DiagLoc loc;
            loc.kernel = kp.name;
            diags.report(DiagId::OwnershipViolation, loc,
                         v.str() + " during a 4-SM/2-worker chip run");
        }

        out.stat("sms", static_cast<double>(cfg.numSms));
        out.stat("workers", static_cast<double>(stats.workersUsed));
        out.stat("windows", static_cast<double>(stats.windows));
        out.stat("ownership_checks", static_cast<double>(checks));
        out.stat("violations", static_cast<double>(violations.size()));
    }
};

} // namespace

std::unique_ptr<AnalysisPass>
makeChipOwnershipPass()
{
    return std::make_unique<ChipOwnershipPass>();
}

} // namespace unimem
