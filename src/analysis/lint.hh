/**
 * @file
 * Static analyzer for kernel models ("unimem-lint").
 *
 * The simulator trusts every KernelModel twice: the Section 4.5
 * allocator sizes the MRF slice and scratchpad from the *declared*
 * KernelParams, and the LRF/ORF hierarchy assumes compiler-known
 * register lifetimes (Section 2.1). lintKernel() machine-checks that
 * trust: it replays a bounded prefix of several warps' traces — first,
 * middle, and last CTA, first and last warp, multiple seeds — through a
 * def-use/liveness pass and a set of invariant checks, each reported as
 * a named diagnostic (analysis/diagnostic.hh). It also derives the
 * static metrics the docs quote: register pressure, ORF-reachable read
 * fraction, and statically provable shared-bank conflict degree.
 *
 * The pass is purely static: no SM, cache, or DRAM model runs, so
 * linting all 26 shipped kernels takes milliseconds and is wired into
 * ctest and scripts/check.sh as a hard gate (tools/unimem_lint).
 */

#ifndef UNIMEM_ANALYSIS_LINT_HH
#define UNIMEM_ANALYSIS_LINT_HH

#include <string>
#include <vector>

#include "analysis/diagnostic.hh"
#include "arch/kernel_model.hh"

namespace unimem {

/** Tunables of one lint pass. */
struct LintOptions
{
    /** Trace-prefix bound per sampled warp. */
    u32 maxInstrsPerWarp = 4096;

    /** ORF entries behind the LRF for the capture metric (paper: 4). */
    u32 orfEntries = 4;

    /** Treat warnings as errors (-Werror). */
    bool werror = false;

    /**
     * Widest address spread one warp-instruction may legally cover in
     * the global/texture space. One access targets one data structure;
     * a larger spread means a broken per-lane address computation
     * (signed underflow, unscaled index).
     */
    Addr laneSpreadLimit = Addr(1) << 30;

    /** ORF-reachable fraction below this raises low-orf-capture (info). */
    double orfAdvisoryFloor = 0.5;

    /** Launch seeds to sample (distinct WarpCtx shapes per seed). */
    std::vector<u64> seeds = {1, 2};

    /**
     * Whole-trace instruction budget of the barrier-sync pass, spent
     * across all scanned warps of one kernel. Exhausting it truncates
     * the proof and raises trace-bound-exceeded (warning).
     */
    u64 barrierScanBudget = u64(16) << 20;

    /** Findings below this severity are discarded (see DiagnosticOptions). */
    Severity minSeverity = Severity::Info;

    /** Global stored-finding cap (--max-diags); 0 = unlimited. */
    u64 maxTotalSites = 0;

    DiagnosticOptions
    diagOptions() const
    {
        DiagnosticOptions o;
        o.werror = werror;
        o.minSeverity = minSeverity;
        o.maxTotalSites = maxTotalSites;
        return o;
    }
};

/** Static metrics aggregated over all sampled warps of one kernel. */
struct LintMetrics
{
    u64 instrs = 0;
    u64 memOps = 0;
    u64 sharedOps = 0;

    /** Max simultaneously live values over any sampled warp. */
    u32 regPressure = 0;

    /** Register source reads / LRF+ORF-window hits (Section 2.1). */
    u64 regReads = 0;
    u64 orfCaptured = 0;

    /** Shared ops by statically provable max-accesses-per-bank. */
    u64 sharedConflictFree = 0; ///< degree <= 1
    u64 sharedDegreeSum = 0;    ///< sum of per-op degrees
    u32 sharedDegreeMax = 0;

    double
    orfReachableFraction() const
    {
        return regReads == 0 ? 0.0
                             : static_cast<double>(orfCaptured) /
                                   static_cast<double>(regReads);
    }

    double
    avgSharedConflictDegree() const
    {
        return sharedOps == 0 ? 0.0
                              : static_cast<double>(sharedDegreeSum) /
                                    static_cast<double>(sharedOps);
    }

    void merge(const LintMetrics& o);
};

/**
 * Summary one analysis pass leaves behind (analysis/pass.hh). The
 * findings themselves land in the report's shared DiagnosticEngine;
 * this carries the pass's aggregate numbers for the JSON report.
 */
struct PassResult
{
    std::string pass;

    /** Warp-prefix metrics (meaningful for the warp-invariants pass). */
    LintMetrics metrics;

    /** Named summary statistics, in deterministic emission order. */
    std::vector<std::pair<std::string, double>> stats;

    void
    stat(const std::string& name, double value)
    {
        stats.emplace_back(name, value);
    }
};

/** Everything one lintKernel() call produces. */
struct LintReport
{
    std::string kernel;

    /** Warp-invariants metrics (empty if that pass did not run). */
    LintMetrics metrics;

    DiagnosticEngine diags;

    /** One entry per executed pass, in execution order. */
    std::vector<PassResult> passes;

    u64 errors() const { return diags.count(Severity::Error); }
    u64 warnings() const { return diags.count(Severity::Warning); }
    u64 infos() const { return diags.count(Severity::Info); }
    bool clean() const { return !diags.hasErrors(); }

    /** Deterministic multi-line rendering (metrics + findings). */
    std::string str() const;
};

/**
 * The WarpCtx sample set lintKernel() analyzes: the cross product of
 * {first, middle, last} CTA, {first, last} warp-in-CTA, and opt.seeds,
 * deduplicated. Exposed so tests can pin the sampling policy.
 */
std::vector<WarpCtx> lintWarpSamples(const KernelParams& kp,
                                     const LintOptions& opt);

/**
 * Analyze one warp's trace prefix, appending findings to @p diags and
 * accumulating @p metrics. Building block of lintKernel(), exposed for
 * targeted tests.
 */
void lintWarp(const KernelModel& kernel, const WarpCtx& ctx,
              const LintOptions& opt, DiagnosticEngine& diags,
              LintMetrics& metrics);

/**
 * Run the default analysis pass set over @p kernel (analysis/pass.hh).
 * Backward compatible with the original single-pass analyzer: the
 * warp-invariants pass reproduces its findings and metrics exactly.
 */
LintReport lintKernel(const KernelModel& kernel,
                      const LintOptions& opt = {});

/** Run an explicit pass-name list (unknown names are fatal). */
LintReport lintKernel(const KernelModel& kernel, const LintOptions& opt,
                      const std::vector<std::string>& passNames);

} // namespace unimem

#endif // UNIMEM_ANALYSIS_LINT_HH
