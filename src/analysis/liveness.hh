/**
 * @file
 * Def-use and liveness analysis over one warp's linear trace.
 *
 * Warp traces are straight-line (branch divergence is folded into active
 * masks), so liveness reduces to interval analysis: a value defined at
 * position p is live until its last use before the register's next
 * definition. From the intervals we derive the two static metrics the
 * paper's register-hierarchy argument rests on (Section 2.1):
 *
 *  - register pressure: the maximum number of simultaneously live
 *    values, which the Section 4.5 allocator's regsPerThread declaration
 *    must cover;
 *  - ORF-reachable reads: the fraction of register reads whose producing
 *    definition is still within the 1-entry LRF + 4-entry ORF recency
 *    window, i.e. reads the hierarchy filters away from the MRF (the
 *    paper's ~60% claim, checked per kernel model).
 */

#ifndef UNIMEM_ANALYSIS_LIVENESS_HH
#define UNIMEM_ANALYSIS_LIVENESS_HH

#include <functional>
#include <vector>

#include "arch/warp_instr.hh"

namespace unimem {

/** Results of one warp-trace liveness pass. */
struct LivenessSummary
{
    /** Maximum simultaneously live register values over the prefix. */
    u32 maxLive = 0;

    /** Register source operands read. */
    u64 regReads = 0;

    /** Reads whose def is inside the LRF+ORF recency window. */
    u64 orfCaptured = 0;

    double
    orfFraction() const
    {
        return regReads == 0
                   ? 0.0
                   : static_cast<double>(orfCaptured) /
                         static_cast<double>(regReads);
    }
};

/**
 * One register hazard the analyzer observed: a definition overwritten
 * before any read. Which kind depends on the overwritten producer —
 * a long-latency load result thrown away is wasted DRAM traffic, a
 * zero-read redefinition inside the LRF+ORF recency window is a WAW
 * the capture hierarchy silently absorbs (analysis/pass_reghazard.cc
 * turns these into diagnostics).
 */
struct HazardEvent
{
    enum class Kind : u8
    {
        DeadLoadOverwrite, ///< overwritten def was a memory load
        WindowWaw,         ///< redefined while still in the ORF window
    };

    Kind kind;
    RegId reg;

    /** Trace position of the overwritten definition. */
    u64 defPos;

    /** Trace position of the overwriting definition. */
    u64 redefPos;
};

/**
 * Streaming liveness/def-use analyzer. Feed instructions in trace order
 * with step(); call finish() once for the summary.
 *
 * Out-of-footprint register ids are ignored here — the bounds check in
 * lint.cc owns them — so pressure reflects the declared footprint only.
 */
class TraceLiveness
{
  public:
    /**
     * @param numRegs the kernel's declared register footprint
     * @param liveInRegs registers [0, liveInRegs) are live at entry
     * @param orfEntries ORF capacity behind the single-entry LRF
     */
    TraceLiveness(u32 numRegs, u32 liveInRegs, u32 orfEntries = 4);

    void step(const WarpInstr& in);

    LivenessSummary finish();

    /** Receive hazard events as they are discovered (empty disables). */
    void
    setHazardSink(std::function<void(const HazardEvent&)> sink)
    {
        hazardSink_ = std::move(sink);
    }

  private:
    void use(RegId r);
    void def(RegId r, bool isLoad);

    struct RegState
    {
        /** Position of the live definition, or kNoDef. */
        u64 defPos = kNoDef;
        u64 lastUse = 0;

        /** The live definition came from a memory load. */
        bool defIsLoad = false;

        /** The live definition is a kernel live-in, not a trace def. */
        bool liveIn = false;

        static constexpr u64 kNoDef = ~u64(0);
    };

    /** Close the open interval of @p r, recording +1/-1 events. */
    void closeInterval(const RegState& st);

    std::vector<RegState> regs_;
    u32 orfCapacity_;

    /** Recency list of distinct defined registers, most recent first;
     *  index 0 models the LRF, 1..orfCapacity_ the ORF. */
    std::vector<RegId> recency_;

    u64 pos_ = 0;
    LivenessSummary summary_;
    std::function<void(const HazardEvent&)> hazardSink_;

    /** (position, +1 at start / -1 past end) liveness events. */
    std::vector<std::pair<u64, i32>> events_;
};

} // namespace unimem

#endif // UNIMEM_ANALYSIS_LIVENESS_HH
