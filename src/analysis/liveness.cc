#include "analysis/liveness.hh"

#include <algorithm>

namespace unimem {

TraceLiveness::TraceLiveness(u32 numRegs, u32 liveInRegs, u32 orfEntries)
    : regs_(numRegs), orfCapacity_(orfEntries)
{
    // Live-in values are defined "before" the trace; give them an open
    // interval starting at position 0 so an unused live-in costs nothing
    // (its interval collapses) while a used one is live from entry.
    u32 n = std::min(liveInRegs, numRegs);
    for (u32 r = 0; r < n; ++r) {
        regs_[r].defPos = 0;
        regs_[r].lastUse = 0;
        regs_[r].liveIn = true;
    }
    recency_.reserve(orfCapacity_ + 1);
}

void
TraceLiveness::use(RegId r)
{
    if (r >= regs_.size())
        return;
    ++summary_.regReads;
    auto it = std::find(recency_.begin(), recency_.end(), r);
    if (it != recency_.end())
        ++summary_.orfCaptured;
    if (regs_[r].defPos != RegState::kNoDef)
        regs_[r].lastUse = pos_;
}

void
TraceLiveness::closeInterval(const RegState& st)
{
    if (st.defPos == RegState::kNoDef || st.lastUse <= st.defPos)
        return; // never live beyond its def point
    events_.emplace_back(st.defPos, 1);
    events_.emplace_back(st.lastUse, -1);
}

void
TraceLiveness::def(RegId r, bool isLoad)
{
    if (r >= regs_.size())
        return;
    RegState& st = regs_[r];

    // A live, never-read definition being overwritten is a hazard:
    // classify by what produced it. Unused live-ins are fine (kernels
    // routinely ignore some of their inputs).
    if (hazardSink_ && st.defPos != RegState::kNoDef &&
        st.lastUse <= st.defPos && !st.liveIn) {
        if (st.defIsLoad)
            hazardSink_({HazardEvent::Kind::DeadLoadOverwrite, r,
                         st.defPos, pos_});
        else if (std::find(recency_.begin(), recency_.end(), r) !=
                 recency_.end())
            hazardSink_(
                {HazardEvent::Kind::WindowWaw, r, st.defPos, pos_});
    }

    closeInterval(st);
    st.defPos = pos_;
    st.lastUse = pos_;
    st.defIsLoad = isLoad;
    st.liveIn = false;

    auto it = std::find(recency_.begin(), recency_.end(), r);
    if (it != recency_.end())
        recency_.erase(it);
    recency_.insert(recency_.begin(), r);
    if (recency_.size() > orfCapacity_ + 1)
        recency_.pop_back();
}

void
TraceLiveness::step(const WarpInstr& in)
{
    for (u8 s = 0; s < in.numSrc && s < 3; ++s)
        if (in.src[s] != kInvalidReg)
            use(in.src[s]);
    if (in.hasDst())
        def(in.dst, isLoad(in.op));
    ++pos_;
}

LivenessSummary
TraceLiveness::finish()
{
    for (const RegState& st : regs_)
        closeInterval(st);

    // Sweep: sort events by position, ends before starts at a tie so an
    // interval ending where another begins does not overlap it.
    std::sort(events_.begin(), events_.end(),
              [](const auto& a, const auto& b) {
                  if (a.first != b.first)
                      return a.first < b.first;
                  return a.second < b.second;
              });
    i64 live = 0;
    i64 peak = 0;
    for (const auto& [p, delta] : events_) {
        live += delta;
        peak = std::max(peak, live);
    }
    summary_.maxLive = static_cast<u32>(peak);
    return summary_;
}

} // namespace unimem
