#include "analysis/pass.hh"

#include "common/log.hh"
#include "sim/simulator.hh"

namespace unimem {

const std::vector<WarpCtx>&
AnalysisContext::warpSamples()
{
    if (!samples_)
        samples_ = lintWarpSamples(kp(), opt_);
    return *samples_;
}

const AllocationDecision&
AnalysisContext::allocation(DesignKind design)
{
    auto& slot = allocs_[static_cast<u32>(design)];
    if (!slot) {
        RunSpec spec;
        spec.design = design;
        slot = resolveAllocation(kp(), spec);
    }
    return *slot;
}

const std::vector<PassInfo>&
allPasses()
{
    // Canonical execution order: cheap static proofs first, then the
    // passes that run simulations.
    static const std::vector<PassInfo> table = {
        {"warp-invariants",
         "per-instruction shape/register/address invariants over "
         "sampled warp trace prefixes",
         true, makeWarpInvariantsPass},
        {"barrier-sync",
         "whole-trace proof that every warp of a CTA reaches each "
         "barrier the same number of times",
         true, makeBarrierSyncPass},
        {"register-hazard",
         "WAR/WAW hygiene across ORF capture windows and "
         "unified-pool allocation legality",
         true, makeRegisterHazardPass},
        {"bank-conflict-xcheck",
         "differential cross-check of the static shared-memory "
         "conflict predictor against simulator accounting",
         false, makeBankConflictXcheckPass},
        {"chip-ownership",
         "bound-weave chip run with the ownership auditor armed "
         "(no cross-SM access during the bound phase)",
         false, makeChipOwnershipPass},
    };
    return table;
}

const PassInfo*
findPass(const std::string& name)
{
    for (const PassInfo& p : allPasses())
        if (name == p.name)
            return &p;
    return nullptr;
}

std::vector<std::string>
defaultPassNames()
{
    std::vector<std::string> names;
    for (const PassInfo& p : allPasses())
        if (p.inDefaultSet)
            names.push_back(p.name);
    return names;
}

void
verifyPassRegistry()
{
    verifyDiagRegistry();
    const std::vector<PassInfo>& table = allPasses();
    if (table.empty())
        panic("verifyPassRegistry: no passes registered");
    for (size_t i = 0; i < table.size(); ++i) {
        const PassInfo& p = table[i];
        if (p.name == nullptr || p.name[0] == '\0')
            panic("verifyPassRegistry: pass %zu has no name", i);
        for (char c : std::string(p.name))
            if (!((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                  c == '-'))
                panic("verifyPassRegistry: '%s' is not kebab-case",
                      p.name);
        if (p.description == nullptr || p.description[0] == '\0')
            panic("verifyPassRegistry: pass '%s' has no description",
                  p.name);
        for (size_t j = 0; j < i; ++j)
            if (std::string(p.name) == table[j].name)
                panic("verifyPassRegistry: duplicate pass '%s'", p.name);
        if (p.create == nullptr)
            panic("verifyPassRegistry: pass '%s' has no factory",
                  p.name);
        std::unique_ptr<AnalysisPass> inst = p.create();
        if (inst == nullptr || std::string(inst->name()) != p.name)
            panic("verifyPassRegistry: pass '%s' factory mismatch",
                  p.name);
    }
}

LintReport
lintKernel(const KernelModel& kernel, const LintOptions& opt,
           const std::vector<std::string>& passNames)
{
    LintReport report;
    report.kernel = kernel.params().name;
    report.diags = DiagnosticEngine(opt.diagOptions());

    AnalysisContext ctx(kernel, opt);
    for (const std::string& name : passNames) {
        const PassInfo* info = findPass(name);
        if (info == nullptr)
            fatal("lintKernel: unknown analysis pass '%s'",
                  name.c_str());
        std::unique_ptr<AnalysisPass> pass = info->create();
        PassResult result;
        result.pass = info->name;
        pass->run(ctx, report.diags, result);
        if (name == "warp-invariants")
            report.metrics = result.metrics;
        report.passes.push_back(std::move(result));
    }
    return report;
}

LintReport
lintKernel(const KernelModel& kernel, const LintOptions& opt)
{
    return lintKernel(kernel, opt, defaultPassNames());
}

} // namespace unimem
