#include "analysis/diagnostic.hh"

#include "common/log.hh"

namespace unimem {

const char*
severityName(Severity s)
{
    switch (s) {
      case Severity::Info: return "info";
      case Severity::Warning: return "warning";
      case Severity::Error: return "error";
    }
    panic("severityName: bad severity %d", static_cast<int>(s));
}

const char*
diagName(DiagId id)
{
    switch (id) {
      case DiagId::ReadBeforeWrite: return "read-before-write";
      case DiagId::RegOutOfRange: return "reg-out-of-range";
      case DiagId::SharedOutOfBounds: return "shared-out-of-bounds";
      case DiagId::SharedUnallocated: return "shared-unallocated";
      case DiagId::LocalOutsideAperture: return "local-outside-aperture";
      case DiagId::GlobalInLocalAperture:
        return "global-in-local-aperture";
      case DiagId::ImpossibleLaneSpread: return "impossible-lane-spread";
      case DiagId::MisalignedAddress: return "misaligned-address";
      case DiagId::BadArity: return "bad-arity";
      case DiagId::MissingDst: return "missing-dst";
      case DiagId::UnexpectedDst: return "unexpected-dst";
      case DiagId::InvalidSrcOperand: return "invalid-src-operand";
      case DiagId::EmptyActiveMask: return "empty-active-mask";
      case DiagId::BadAccessBytes: return "bad-access-bytes";
      case DiagId::LowOrfCapture: return "low-orf-capture";
    }
    panic("diagName: bad diag id %d", static_cast<int>(id));
}

Severity
diagDefaultSeverity(DiagId id)
{
    switch (id) {
      // Advisory metrics: never gate the suite.
      case DiagId::LowOrfCapture:
        return Severity::Info;
      // Suspicious but survivable: the coalescer/cache handle these;
      // they usually indicate an address-generation sloppiness, not a
      // model-corrupting bug.
      case DiagId::MisalignedAddress:
        return Severity::Warning;
      default:
        return Severity::Error;
    }
}

std::string
DiagLoc::str() const
{
    std::string s = kernel + ":cta" + std::to_string(ctaId) + ":w" +
                    std::to_string(warpInCta);
    if (instrIndex != kNoInstr)
        s += ":i" + std::to_string(instrIndex);
    return s;
}

std::string
Diagnostic::str() const
{
    std::string s = loc.str() + ": " + severityName(severity) + ": " +
                    message + " [" + diagName(id) + "]";
    if (occurrences > 1)
        s += " (x" + std::to_string(occurrences) + ")";
    return s;
}

void
DiagnosticEngine::report(DiagId id, const DiagLoc& loc, std::string message)
{
    std::string key = std::to_string(static_cast<u32>(id)) + "|" +
                      loc.kernel + "|" + std::to_string(loc.ctaId) + "|" +
                      std::to_string(loc.warpInCta) + "|" + message;
    auto it = index_.find(key);
    if (it != index_.end()) {
        ++diags_[it->second].occurrences;
        return;
    }
    if (sitesPerId_[static_cast<u32>(id)] >= opt_.maxSitesPerId) {
        ++suppressed_;
        return;
    }
    ++sitesPerId_[static_cast<u32>(id)];

    Diagnostic d;
    d.id = id;
    d.severity = diagDefaultSeverity(id);
    if (opt_.werror && d.severity == Severity::Warning)
        d.severity = Severity::Error;
    d.loc = loc;
    d.message = std::move(message);
    index_.emplace(std::move(key), diags_.size());
    diags_.push_back(std::move(d));
}

u64
DiagnosticEngine::count(Severity s) const
{
    u64 n = 0;
    for (const Diagnostic& d : diags_)
        if (d.severity == s)
            ++n;
    return n;
}

u64
DiagnosticEngine::countOf(DiagId id) const
{
    u64 n = 0;
    for (const Diagnostic& d : diags_)
        if (d.id == id)
            ++n;
    return n;
}

void
DiagnosticEngine::merge(const DiagnosticEngine& other)
{
    for (const Diagnostic& d : other.diags_) {
        // Re-report to share the dedup map, then restore the original
        // occurrence count on a fresh insertion.
        size_t before = diags_.size();
        report(d.id, d.loc, d.message);
        if (diags_.size() > before)
            diags_.back().occurrences = d.occurrences;
        else {
            std::string key =
                std::to_string(static_cast<u32>(d.id)) + "|" +
                d.loc.kernel + "|" + std::to_string(d.loc.ctaId) + "|" +
                std::to_string(d.loc.warpInCta) + "|" + d.message;
            auto it = index_.find(key);
            if (it != index_.end())
                diags_[it->second].occurrences += d.occurrences - 1;
        }
    }
    suppressed_ += other.suppressed_;
}

void
DiagnosticEngine::print(std::ostream& os) const
{
    for (const Diagnostic& d : diags_)
        os << d.str() << "\n";
    if (suppressed_ > 0)
        os << "(" << suppressed_
           << " further sites suppressed by the per-check cap)\n";
}

} // namespace unimem
