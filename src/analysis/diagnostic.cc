#include "analysis/diagnostic.hh"

#include "common/log.hh"

namespace unimem {

const char*
severityName(Severity s)
{
    switch (s) {
      case Severity::Info: return "info";
      case Severity::Warning: return "warning";
      case Severity::Error: return "error";
    }
    panic("severityName: bad severity %d", static_cast<int>(s));
}

const char*
diagName(DiagId id)
{
    switch (id) {
      case DiagId::ReadBeforeWrite: return "read-before-write";
      case DiagId::RegOutOfRange: return "reg-out-of-range";
      case DiagId::SharedOutOfBounds: return "shared-out-of-bounds";
      case DiagId::SharedUnallocated: return "shared-unallocated";
      case DiagId::LocalOutsideAperture: return "local-outside-aperture";
      case DiagId::GlobalInLocalAperture:
        return "global-in-local-aperture";
      case DiagId::ImpossibleLaneSpread: return "impossible-lane-spread";
      case DiagId::MisalignedAddress: return "misaligned-address";
      case DiagId::BadArity: return "bad-arity";
      case DiagId::MissingDst: return "missing-dst";
      case DiagId::UnexpectedDst: return "unexpected-dst";
      case DiagId::InvalidSrcOperand: return "invalid-src-operand";
      case DiagId::EmptyActiveMask: return "empty-active-mask";
      case DiagId::BadAccessBytes: return "bad-access-bytes";
      case DiagId::LowOrfCapture: return "low-orf-capture";
      case DiagId::BarrierDivergence: return "barrier-divergence";
      case DiagId::TraceBoundExceeded: return "trace-bound-exceeded";
      case DiagId::DeadLoadOverwrite: return "dead-load-overwrite";
      case DiagId::OrfWindowWaw: return "orf-window-waw";
      case DiagId::AllocInfeasibleLaunch:
        return "alloc-infeasible-launch";
      case DiagId::AllocOverSubscribed: return "alloc-over-subscribed";
      case DiagId::AllocPartitionOverlap:
        return "alloc-partition-overlap";
      case DiagId::BankConflictMismatch:
        return "bank-conflict-mismatch";
      case DiagId::OwnershipViolation: return "ownership-violation";
    }
    panic("diagName: bad diag id %d", static_cast<int>(id));
}

Severity
diagDefaultSeverity(DiagId id)
{
    switch (id) {
      // Advisory metrics: never gate the suite. Dead loads and
      // window WAWs are wasted work, not broken semantics — the
      // synthetic benchmark generators produce both routinely.
      case DiagId::LowOrfCapture:
      case DiagId::OrfWindowWaw:
      case DiagId::DeadLoadOverwrite:
        return Severity::Info;
      // Suspicious but survivable: the coalescer/cache handle these;
      // they usually indicate an address-generation sloppiness, not a
      // model-corrupting bug. A truncated whole-trace scan likewise
      // weakens a proof without evidencing a defect.
      case DiagId::MisalignedAddress:
      case DiagId::TraceBoundExceeded:
        return Severity::Warning;
      default:
        return Severity::Error;
    }
}

void
verifyDiagRegistry()
{
    // Dense and unique: every id names itself and no name repeats.
    for (u32 i = 0; i < kNumDiagIds; ++i) {
        const char* name = diagName(static_cast<DiagId>(i));
        if (name == nullptr || name[0] == '\0')
            panic("verifyDiagRegistry: id %u has no name", i);
        for (char c : std::string(name))
            if (!((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                  c == '-'))
                panic("verifyDiagRegistry: '%s' is not kebab-case",
                      name);
        for (u32 j = 0; j < i; ++j)
            if (std::string(name) == diagName(static_cast<DiagId>(j)))
                panic("verifyDiagRegistry: ids %u and %u share '%s'", j,
                      i, name);
        severityName(diagDefaultSeverity(static_cast<DiagId>(i)));
    }
    // Anchors external tooling keys on: appending ids is fine,
    // renumbering is not.
    if (static_cast<u32>(DiagId::ReadBeforeWrite) != 0 ||
        static_cast<u32>(DiagId::LowOrfCapture) != 14 ||
        static_cast<u32>(DiagId::BarrierDivergence) != 15 ||
        static_cast<u32>(DiagId::OwnershipViolation) != 23)
        panic("verifyDiagRegistry: stable ids were renumbered");
}

std::string
DiagLoc::str() const
{
    std::string s = kernel + ":cta" + std::to_string(ctaId) + ":w" +
                    std::to_string(warpInCta);
    if (instrIndex != kNoInstr)
        s += ":i" + std::to_string(instrIndex);
    return s;
}

std::string
Diagnostic::str() const
{
    std::string s = loc.str() + ": " + severityName(severity) + ": " +
                    message + " [" + diagName(id) + "]";
    if (occurrences > 1)
        s += " (x" + std::to_string(occurrences) + ")";
    return s;
}

void
DiagnosticEngine::report(DiagId id, const DiagLoc& loc, std::string message)
{
    std::string key = std::to_string(static_cast<u32>(id)) + "|" +
                      loc.kernel + "|" + std::to_string(loc.ctaId) + "|" +
                      std::to_string(loc.warpInCta) + "|" + message;
    Severity sev = diagDefaultSeverity(id);
    if (opt_.werror && sev == Severity::Warning)
        sev = Severity::Error;
    if (sev < opt_.minSeverity) {
        ++filtered_;
        return;
    }
    auto it = index_.find(key);
    if (it != index_.end()) {
        ++diags_[it->second].occurrences;
        return;
    }
    if (sitesPerId_[static_cast<u32>(id)] >= opt_.maxSitesPerId ||
        (opt_.maxTotalSites != 0 && diags_.size() >= opt_.maxTotalSites)) {
        ++suppressed_;
        return;
    }
    ++sitesPerId_[static_cast<u32>(id)];

    Diagnostic d;
    d.id = id;
    d.severity = sev;
    d.loc = loc;
    d.message = std::move(message);
    index_.emplace(std::move(key), diags_.size());
    diags_.push_back(std::move(d));
}

u64
DiagnosticEngine::count(Severity s) const
{
    u64 n = 0;
    for (const Diagnostic& d : diags_)
        if (d.severity == s)
            ++n;
    return n;
}

u64
DiagnosticEngine::countOf(DiagId id) const
{
    u64 n = 0;
    for (const Diagnostic& d : diags_)
        if (d.id == id)
            ++n;
    return n;
}

void
DiagnosticEngine::merge(const DiagnosticEngine& other)
{
    for (const Diagnostic& d : other.diags_) {
        // Re-report to share the dedup map, then restore the original
        // occurrence count on a fresh insertion.
        size_t before = diags_.size();
        report(d.id, d.loc, d.message);
        if (diags_.size() > before)
            diags_.back().occurrences = d.occurrences;
        else {
            std::string key =
                std::to_string(static_cast<u32>(d.id)) + "|" +
                d.loc.kernel + "|" + std::to_string(d.loc.ctaId) + "|" +
                std::to_string(d.loc.warpInCta) + "|" + d.message;
            auto it = index_.find(key);
            if (it != index_.end())
                diags_[it->second].occurrences += d.occurrences - 1;
        }
    }
    suppressed_ += other.suppressed_;
    filtered_ += other.filtered_;
}

void
DiagnosticEngine::print(std::ostream& os) const
{
    for (const Diagnostic& d : diags_)
        os << d.str() << "\n";
    if (suppressed_ > 0)
        os << "(" << suppressed_
           << " further sites suppressed by the per-check cap)\n";
}

} // namespace unimem
