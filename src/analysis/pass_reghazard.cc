/**
 * @file
 * Register-hazard and allocation-legality pass (analysis/pass.hh).
 *
 * Two invariant families share this pass because both guard the
 * register-file side of the Section 4.5 allocation contract:
 *
 *  1. Hazards across ORF capture windows (via TraceLiveness's hazard
 *     sink): a long-latency load whose destination is redefined before
 *     any read threw its DRAM transaction away (dead-load-overwrite —
 *     the simulator still times the pointless load), and a zero-read
 *     redefinition while the value still sits in the LRF+ORF recency
 *     window is a WAW the capture hierarchy absorbs silently
 *     (orf-window-waw). Both are advisories: wasted work, not broken
 *     semantics, and routine in the synthetic benchmark generators.
 *
 *  2. Allocation legality for the default partitioned and unified
 *     RunSpecs: the launch must be feasible, the consumed register/
 *     scratchpad bytes must fit their partitions (over-subscription),
 *     and the partition sizes must tile the pool exactly — a unified
 *     split whose rf+shared+cache differs from the pool capacity means
 *     partitions overlap or leak bytes.
 */

#include "analysis/liveness.hh"
#include "analysis/pass.hh"
#include "common/log.hh"

namespace unimem {

namespace {

class RegisterHazardPass : public AnalysisPass
{
  public:
    const char* name() const override { return "register-hazard"; }

    const char*
    description() const override
    {
        return "WAR/WAW hygiene across ORF capture windows and "
               "unified-pool allocation legality";
    }

    void
    run(AnalysisContext& ctx, DiagnosticEngine& diags,
        PassResult& out) override
    {
        const KernelParams& kp = ctx.kp();
        const LintOptions& opt = ctx.options();

        u64 deadLoads = 0;
        u64 windowWaws = 0;
        for (const WarpCtx& wc : ctx.warpSamples()) {
            DiagLoc loc;
            loc.kernel = kp.name;
            loc.ctaId = wc.ctaId;
            loc.warpInCta = wc.warpInCta;

            TraceLiveness liveness(kp.regsPerThread, kp.liveInRegCount(),
                                   opt.orfEntries);
            liveness.setHazardSink([&](const HazardEvent& ev) {
                loc.instrIndex = ev.redefPos;
                if (ev.kind == HazardEvent::Kind::DeadLoadOverwrite) {
                    ++deadLoads;
                    diags.report(
                        DiagId::DeadLoadOverwrite, loc,
                        strprintf("r%u loaded at i%llu is overwritten "
                                  "with zero reads; the load's memory "
                                  "traffic is wasted",
                                  ev.reg,
                                  static_cast<unsigned long long>(
                                      ev.defPos)));
                } else {
                    ++windowWaws;
                    diags.report(
                        DiagId::OrfWindowWaw, loc,
                        strprintf("r%u defined at i%llu is redefined "
                                  "with zero reads inside the LRF+ORF "
                                  "window",
                                  ev.reg,
                                  static_cast<unsigned long long>(
                                      ev.defPos)));
                }
            });

            InstrStream stream(ctx.kernel().warpProgram(wc));
            for (u32 i = 0; i < opt.maxInstrsPerWarp; ++i) {
                const WarpInstr* in = stream.peek();
                if (in == nullptr)
                    break;
                liveness.step(*in);
                stream.pop();
            }
            liveness.finish();
        }

        u32 allocFindings = 0;
        allocFindings += checkAllocation(
            ctx, DesignKind::Partitioned, baselinePartition().total(),
            diags);
        allocFindings +=
            checkAllocation(ctx, DesignKind::Unified, 384_KB, diags);

        out.stat("dead_load_overwrites", static_cast<double>(deadLoads));
        out.stat("orf_window_waws", static_cast<double>(windowWaws));
        out.stat("alloc_findings", static_cast<double>(allocFindings));
    }

  private:
    /** @return number of findings reported for this design. */
    u32
    checkAllocation(AnalysisContext& ctx, DesignKind design,
                    u64 poolBytes, DiagnosticEngine& diags)
    {
        const KernelParams& kp = ctx.kp();
        const AllocationDecision& alloc = ctx.allocation(design);
        const MemoryPartition& part = alloc.partition;
        const LaunchConfig& launch = alloc.launch;

        DiagLoc loc;
        loc.kernel = kp.name;
        u32 findings = 0;

        if (!launch.feasible || launch.ctas == 0 ||
            launch.threads == 0) {
            ++findings;
            diags.report(
                DiagId::AllocInfeasibleLaunch, loc,
                strprintf("%s allocation cannot launch the kernel "
                          "(%u CTAs, %u threads)",
                          designName(design), launch.ctas,
                          launch.threads));
            return findings; // consumption fields are meaningless
        }
        if (launch.rfBytes > part.rfBytes ||
            launch.sharedBytes > part.sharedBytes) {
            ++findings;
            diags.report(
                DiagId::AllocOverSubscribed, loc,
                strprintf("%s launch consumes %llu RF + %llu shared "
                          "bytes against partitions of %llu + %llu",
                          designName(design),
                          static_cast<unsigned long long>(launch.rfBytes),
                          static_cast<unsigned long long>(
                              launch.sharedBytes),
                          static_cast<unsigned long long>(part.rfBytes),
                          static_cast<unsigned long long>(
                              part.sharedBytes)));
        }
        if (part.total() != poolBytes) {
            ++findings;
            diags.report(
                DiagId::AllocPartitionOverlap, loc,
                strprintf("%s partitions sum to %llu bytes, not the "
                          "%llu-byte pool: partitions overlap or leak",
                          designName(design),
                          static_cast<unsigned long long>(part.total()),
                          static_cast<unsigned long long>(poolBytes)));
        }
        return findings;
    }
};

} // namespace

std::unique_ptr<AnalysisPass>
makeRegisterHazardPass()
{
    return std::make_unique<RegisterHazardPass>();
}

} // namespace unimem
