#include "arch/kernel_params.hh"

#include <algorithm>

#include "arch/gpu_constants.hh"
#include "common/log.hh"

namespace unimem {

SpillCurve::SpillCurve(std::vector<std::pair<u32, double>> points)
    : points_(std::move(points))
{
    for (size_t i = 0; i < points_.size(); ++i) {
        if (points_[i].second < 1.0)
            fatal("SpillCurve: multiplier %f < 1", points_[i].second);
        if (i > 0) {
            if (points_[i].first <= points_[i - 1].first)
                fatal("SpillCurve: register counts not increasing");
            if (points_[i].second > points_[i - 1].second)
                fatal("SpillCurve: multiplier increases with registers");
        }
    }
}

double
SpillCurve::multiplier(u32 regs) const
{
    if (points_.empty())
        return 1.0;
    if (regs >= points_.back().first)
        return 1.0;
    if (regs <= points_.front().first) {
        if (points_.size() < 2 || points_.front().second <= 1.0)
            return points_.front().second;
        // Extrapolate the slope of the first segment below the first point.
        const auto& [r0, m0] = points_[0];
        const auto& [r1, m1] = points_[1];
        double slope = (m0 - m1) / static_cast<double>(r1 - r0);
        double m = m0 + slope * static_cast<double>(r0 - regs);
        return std::min(m, kMaxMultiplier);
    }
    for (size_t i = 1; i < points_.size(); ++i) {
        if (regs <= points_[i].first) {
            const auto& [r0, m0] = points_[i - 1];
            const auto& [r1, m1] = points_[i];
            double t = static_cast<double>(regs - r0) /
                       static_cast<double>(r1 - r0);
            return m0 + t * (m1 - m0);
        }
    }
    return 1.0;
}

u32
KernelParams::warpsPerCta() const
{
    return (ctaThreads + kWarpWidth - 1) / kWarpWidth;
}

u32
KernelParams::liveInRegCount() const
{
    return std::min(liveInRegs, regsPerThread);
}

void
KernelParams::validate() const
{
    if (ctaThreads == 0 || ctaThreads % kWarpWidth != 0)
        fatal("kernel %s: ctaThreads %u is not a positive warp multiple",
              name.c_str(), ctaThreads);
    if (ctaThreads > kMaxThreadsPerSm)
        fatal("kernel %s: ctaThreads %u exceeds SM capacity", name.c_str(),
              ctaThreads);
    if (regsPerThread == 0)
        fatal("kernel %s: zero registers per thread", name.c_str());
    if (gridCtas == 0)
        fatal("kernel %s: empty grid", name.c_str());
}

} // namespace unimem
