/**
 * @file
 * Interface between workload models and the SM simulator: a KernelModel
 * declares its static launch requirements and produces per-warp trace
 * generators. This is the substitution point for the paper's Ocelot-based
 * CUDA tracing (see DESIGN.md Section 2).
 */

#ifndef UNIMEM_ARCH_KERNEL_MODEL_HH
#define UNIMEM_ARCH_KERNEL_MODEL_HH

#include <memory>

#include "arch/kernel_params.hh"
#include "arch/warp_program.hh"

namespace unimem {

/** A synthetic workload: launch parameters plus trace generation. */
class KernelModel
{
  public:
    virtual ~KernelModel() = default;

    /** Static requirements (registers, scratchpad, CTA geometry, grid). */
    virtual const KernelParams& params() const = 0;

    /** Trace generator for one warp of one CTA. */
    virtual std::unique_ptr<WarpProgram>
    warpProgram(const WarpCtx& ctx) const = 0;
};

} // namespace unimem

#endif // UNIMEM_ARCH_KERNEL_MODEL_HH
