#include "arch/opcode.hh"

#include "common/log.hh"

namespace unimem {

const char*
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::IntAlu: return "ialu";
      case Opcode::FpAlu: return "falu";
      case Opcode::Sfu: return "sfu";
      case Opcode::LdGlobal: return "ld.global";
      case Opcode::StGlobal: return "st.global";
      case Opcode::LdShared: return "ld.shared";
      case Opcode::StShared: return "st.shared";
      case Opcode::LdLocal: return "ld.local";
      case Opcode::StLocal: return "st.local";
      case Opcode::Tex: return "tex";
      case Opcode::Bar: return "bar";
    }
    panic("opcodeName: bad opcode %d", static_cast<int>(op));
}

const OpcodeShape&
opcodeShape(Opcode op)
{
    static const OpcodeShape alu{0, 3, true};
    static const OpcodeShape sfu{1, 1, true};
    static const OpcodeShape load{0, 1, true};
    static const OpcodeShape store{1, 2, false};
    static const OpcodeShape bar{0, 0, false};
    switch (op) {
      case Opcode::IntAlu:
      case Opcode::FpAlu:
        return alu;
      case Opcode::Sfu:
        return sfu;
      case Opcode::LdGlobal:
      case Opcode::LdShared:
      case Opcode::LdLocal:
      case Opcode::Tex:
        return load;
      case Opcode::StGlobal:
      case Opcode::StShared:
      case Opcode::StLocal:
        return store;
      case Opcode::Bar:
        return bar;
    }
    panic("opcodeShape: bad opcode %d", static_cast<int>(op));
}

} // namespace unimem
