#include "arch/trace_io.hh"

#include <istream>
#include <ostream>
#include <sstream>

#include "common/log.hh"

namespace unimem {

namespace {

/** Opcode <-> token mapping for the trace format. */
Opcode
opcodeFromName(const std::string& name)
{
    for (int i = 0; i <= static_cast<int>(Opcode::Bar); ++i) {
        Opcode op = static_cast<Opcode>(i);
        if (name == opcodeName(op))
            return op;
    }
    fatal("trace: unknown opcode '%s'", name.c_str());
}

void
writeWarp(std::ostream& os, const KernelModel& kernel, const WarpCtx& ctx)
{
    os << "warp " << ctx.ctaId << " " << ctx.warpInCta << "\n";
    auto prog = kernel.warpProgram(ctx);
    std::vector<WarpInstr> buf;
    while (prog->fill(buf)) {
        for (const WarpInstr& in : buf) {
            os << "i " << opcodeName(in.op) << " " << in.dst;
            for (u8 s = 0; s < 3; ++s)
                os << " " << (s < in.numSrc ? in.src[s] : kInvalidReg);
            os << " " << std::hex << in.activeMask << std::dec << " "
               << static_cast<u32>(in.accessBytes) << "\n";
            if (isMemOp(in.op)) {
                os << "a" << std::hex;
                for (u32 lane = 0; lane < kWarpWidth; ++lane)
                    if (in.laneActive(lane))
                        os << " " << in.addr[lane];
                os << std::dec << "\n";
            }
        }
        buf.clear();
    }
    os << "end\n";
}

} // namespace

void
writeTrace(const KernelModel& kernel, std::ostream& os, u64 seed)
{
    const KernelParams& kp = kernel.params();
    kp.validate();
    os << "unimem-trace " << kTraceFormatVersion << "\n";
    os << "kernel " << kp.name << " regs " << kp.regsPerThread
       << " shared " << kp.sharedBytesPerCta << " cta " << kp.ctaThreads
       << " grid " << kp.gridCtas << "\n";
    for (u32 cta = 0; cta < kp.gridCtas; ++cta) {
        for (u32 w = 0; w < kp.warpsPerCta(); ++w) {
            WarpCtx ctx;
            ctx.ctaId = cta;
            ctx.warpInCta = w;
            ctx.warpsPerCta = kp.warpsPerCta();
            ctx.threadsPerCta = kp.ctaThreads;
            ctx.seed = seed;
            writeWarp(os, kernel, ctx);
        }
    }
}

TraceFileKernel::TraceFileKernel(std::istream& is)
{
    std::string line;
    if (!std::getline(is, line))
        fatal("trace: empty input");
    {
        std::istringstream hdr(line);
        std::string magic;
        u32 version = 0;
        hdr >> magic >> version;
        if (magic != "unimem-trace")
            fatal("trace: bad magic '%s'", magic.c_str());
        if (version != kTraceFormatVersion)
            fatal("trace: unsupported version %u", version);
    }
    if (!std::getline(is, line))
        fatal("trace: missing kernel header");
    {
        std::istringstream hdr(line);
        std::string kw, name, t;
        hdr >> kw >> name;
        if (kw != "kernel")
            fatal("trace: expected 'kernel', got '%s'", kw.c_str());
        params_.name = name;
        while (hdr >> kw) {
            u64 value = 0;
            if (!(hdr >> value))
                fatal("trace: missing value for '%s'", kw.c_str());
            if (kw == "regs")
                params_.regsPerThread = static_cast<u32>(value);
            else if (kw == "shared")
                params_.sharedBytesPerCta = static_cast<u32>(value);
            else if (kw == "cta")
                params_.ctaThreads = static_cast<u32>(value);
            else if (kw == "grid")
                params_.gridCtas = static_cast<u32>(value);
            else
                fatal("trace: unknown kernel attribute '%s'", kw.c_str());
        }
    }
    params_.validate();

    std::vector<WarpInstr>* current = nullptr;
    WarpInstr* last_mem = nullptr;
    while (std::getline(is, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        std::string kw;
        ls >> kw;
        if (kw == "warp") {
            u32 cta = 0, w = 0;
            if (!(ls >> cta >> w))
                fatal("trace: malformed warp header");
            WarpKey key{cta, w};
            if (warps_.count(key))
                fatal("trace: duplicate warp %u/%u", cta, w);
            current = &warps_[key];
            last_mem = nullptr;
        } else if (kw == "i") {
            if (current == nullptr)
                fatal("trace: instruction outside a warp block");
            std::string opname;
            u32 dst, s0, s1, s2, bytes;
            u32 mask;
            ls >> opname >> dst >> s0 >> s1 >> s2 >> std::hex >> mask >>
                std::dec >> bytes;
            if (ls.fail())
                fatal("trace: malformed instruction line '%s'",
                      line.c_str());
            WarpInstr in;
            in.op = opcodeFromName(opname);
            in.dst = static_cast<RegId>(dst);
            in.src = {static_cast<RegId>(s0), static_cast<RegId>(s1),
                      static_cast<RegId>(s2)};
            in.numSrc = 0;
            for (RegId s : in.src)
                if (s != kInvalidReg)
                    ++in.numSrc;
            in.activeMask = mask;
            in.accessBytes = static_cast<u8>(bytes);
            current->push_back(in);
            last_mem = isMemOp(in.op) ? &current->back() : nullptr;
            if (last_mem != nullptr)
                last_mem->addr.fill(0); // 'a' lines set active lanes only
        } else if (kw == "a") {
            if (last_mem == nullptr)
                fatal("trace: address line without a memory op");
            for (u32 lane = 0; lane < kWarpWidth; ++lane) {
                if (!last_mem->laneActive(lane))
                    continue;
                u64 addr = 0;
                if (!(ls >> std::hex >> addr))
                    fatal("trace: too few addresses");
                last_mem->addr[lane] = addr;
            }
            last_mem = nullptr;
        } else if (kw == "end") {
            current = nullptr;
            last_mem = nullptr;
        } else {
            fatal("trace: unknown directive '%s'", kw.c_str());
        }
    }

    u64 expected =
        static_cast<u64>(params_.gridCtas) * params_.warpsPerCta();
    if (warps_.size() != expected)
        fatal("trace: found %zu warp streams, header implies %llu",
              warps_.size(), static_cast<unsigned long long>(expected));
}

std::unique_ptr<WarpProgram>
TraceFileKernel::warpProgram(const WarpCtx& ctx) const
{
    auto it = warps_.find(WarpKey{ctx.ctaId, ctx.warpInCta});
    if (it == warps_.end())
        fatal("trace: no stream for warp %u/%u", ctx.ctaId,
              ctx.warpInCta);
    return std::make_unique<FixedProgram>(it->second);
}

} // namespace unimem
