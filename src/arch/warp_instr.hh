/**
 * @file
 * The trace unit consumed by the SM timing model: one warp-wide
 * instruction with per-lane memory addresses.
 */

#ifndef UNIMEM_ARCH_WARP_INSTR_HH
#define UNIMEM_ARCH_WARP_INSTR_HH

#include <array>

#include "arch/gpu_constants.hh"
#include "arch/opcode.hh"
#include "common/types.hh"

namespace unimem {

/** One dynamic warp instruction. */
struct WarpInstr
{
    /**
     * Deliberately leaves @c addr uninitialized: trace generation emits
     * hundreds of thousands of instructions per run, and a 256-byte
     * clear per instruction dominates the emission cost. Every producer
     * of memory ops writes all 32 lanes (or zero-fills explicitly);
     * addresses of non-memory ops are never read.
     */
    WarpInstr() {}

    Opcode op = Opcode::IntAlu;

    /** Destination register, or kInvalidReg. */
    RegId dst = kInvalidReg;

    /** Source registers; only the first numSrc entries are valid. */
    std::array<RegId, 3> src{kInvalidReg, kInvalidReg, kInvalidReg};
    u8 numSrc = 0;

    /** Per-thread access size in bytes for memory ops (4 or 8). */
    u8 accessBytes = 4;

    /** Bit i set means lane i executes this instruction. */
    u32 activeMask = 0xffffffffu;

    /** Per-lane byte addresses, valid for memory ops on active lanes. */
    std::array<Addr, kWarpWidth> addr;

    bool hasDst() const { return dst != kInvalidReg; }

    u32
    numActive() const
    {
        return static_cast<u32>(__builtin_popcount(activeMask));
    }

    bool laneActive(u32 lane) const { return (activeMask >> lane) & 1u; }
};

/**
 * Convenience factories used by the kernel models and tests. All of
 * them fully initialize the instruction (including the address vector),
 * so factory-built programs behave exactly like value-initialized ones.
 */
namespace instr {

WarpInstr
alu(RegId dst, RegId s0 = kInvalidReg, RegId s1 = kInvalidReg,
    RegId s2 = kInvalidReg, bool fp = false);

WarpInstr sfu(RegId dst, RegId s0);

WarpInstr bar();

/** Memory op skeleton; the caller fills per-lane addresses. */
WarpInstr
mem(Opcode op, RegId dstOrData, RegId addrReg, u32 activeMask = 0xffffffffu);

} // namespace instr

inline WarpInstr
instr::alu(RegId dst, RegId s0, RegId s1, RegId s2, bool fp)
{
    WarpInstr in;
    in.addr.fill(0);
    in.op = fp ? Opcode::FpAlu : Opcode::IntAlu;
    in.dst = dst;
    u8 n = 0;
    for (RegId s : {s0, s1, s2})
        if (s != kInvalidReg)
            in.src[n++] = s;
    in.numSrc = n;
    return in;
}

inline WarpInstr
instr::sfu(RegId dst, RegId s0)
{
    WarpInstr in;
    in.addr.fill(0);
    in.op = Opcode::Sfu;
    in.dst = dst;
    in.src[0] = s0;
    in.numSrc = 1;
    return in;
}

inline WarpInstr
instr::bar()
{
    WarpInstr in;
    in.addr.fill(0);
    in.op = Opcode::Bar;
    return in;
}

inline WarpInstr
instr::mem(Opcode op, RegId dstOrData, RegId addrReg, u32 activeMask)
{
    WarpInstr in;
    in.addr.fill(0); // callers often set only a few lanes
    in.op = op;
    in.activeMask = activeMask;
    if (isLoad(op)) {
        in.dst = dstOrData;
        in.src[0] = addrReg;
        in.numSrc = 1;
    } else {
        in.src[0] = addrReg;
        in.src[1] = dstOrData; // store data operand
        in.numSrc = 2;
    }
    return in;
}

} // namespace unimem

#endif // UNIMEM_ARCH_WARP_INSTR_HH
