/**
 * @file
 * Static per-kernel resource requirements plus the spill-overhead curve
 * (paper Table 1, columns 2-9).
 */

#ifndef UNIMEM_ARCH_KERNEL_PARAMS_HH
#define UNIMEM_ARCH_KERNEL_PARAMS_HH

#include <string>
#include <vector>

#include "common/types.hh"

namespace unimem {

/**
 * Dynamic-instruction inflation as a function of allocated registers per
 * thread. A multiplier of 1.0 means no spill/fill code; the paper reports
 * these multipliers at 18/24/32/40/64 registers per thread (Table 1).
 */
class SpillCurve
{
  public:
    /** Identity curve: no spills at any register count. */
    SpillCurve() = default;

    /**
     * Curve through the given (regs, multiplier) points. Points must be
     * sorted by register count; multipliers must be >= 1 and
     * non-increasing in register count.
     */
    explicit SpillCurve(std::vector<std::pair<u32, double>> points);

    /**
     * Dynamic instruction multiplier with @p regs registers per thread.
     * Linear interpolation between points; linear extrapolation below the
     * first point (clamped to kMaxMultiplier); 1.0 above the last point.
     */
    double multiplier(u32 regs) const;

    bool identity() const { return points_.empty(); }

    static constexpr double kMaxMultiplier = 8.0;

  private:
    std::vector<std::pair<u32, double>> points_;
};

/** Static launch parameters of one kernel. */
struct KernelParams
{
    std::string name;

    /** Registers per thread required to eliminate spills. */
    u32 regsPerThread = 16;

    /** Scratchpad bytes statically allocated per CTA. */
    u32 sharedBytesPerCta = 0;

    /** Threads per CTA (multiple of kWarpWidth). */
    u32 ctaThreads = 256;

    /** Total CTAs this SM executes (the SM's 1/32 share of the grid). */
    u32 gridCtas = 8;

    SpillCurve spillCurve;

    /**
     * Registers [0, liveInRegs) hold live-in values at kernel entry
     * (arguments, thread indices, launch constants): reading one of them
     * before any write is legal. kLiveInAll declares the whole footprint
     * live-in — the right default for the synthetic steady-state models,
     * whose traces begin mid-kernel with every register carrying state.
     * Hand-built traces (tests, replays) declare a tight set so the
     * linter's read-before-write check has teeth.
     */
    static constexpr u32 kLiveInAll = 0xffffffffu;
    u32 liveInRegs = kLiveInAll;

    /** Declared live-in register count, clamped to the footprint. */
    u32 liveInRegCount() const;

    double
    sharedBytesPerThread() const
    {
        return ctaThreads == 0
                   ? 0.0
                   : static_cast<double>(sharedBytesPerCta) / ctaThreads;
    }

    u32 warpsPerCta() const;

    /** Sanity-check invariants; fatal() on violation. */
    void validate() const;
};

} // namespace unimem

#endif // UNIMEM_ARCH_KERNEL_PARAMS_HH
