#include "arch/spill_injector.hh"

#include "common/log.hh"

namespace unimem {

SpillInjector::SpillInjector(std::unique_ptr<WarpProgram> base,
                             const SpillConfig& cfg, u64 warpGlobalId)
    : base_(std::move(base)), cfg_(cfg), warpGlobalId_(warpGlobalId)
{
    if (cfg_.allocatedRegs == 0)
        fatal("SpillInjector: zero allocated registers");
    if (cfg_.multiplier < 1.0)
        fatal("SpillInjector: multiplier %f < 1", cfg_.multiplier);
}

Addr
SpillInjector::slotAddr(u32 slot, u32 lane) const
{
    // Per-warp contiguous stack, per-slot 128-byte line, lane-interleaved.
    u64 warpStack = static_cast<u64>(cfg_.numSlots()) * kWarpWidth *
                    kRegBytes;
    return kLocalBase + warpGlobalId_ * warpStack +
           static_cast<u64>(slot) * kWarpWidth * kRegBytes +
           static_cast<u64>(lane) * kRegBytes;
}

RegId
SpillInjector::remap(RegId r) const
{
    if (r == kInvalidReg)
        return r;
    return static_cast<RegId>(r % cfg_.allocatedRegs);
}

void
SpillInjector::emitSpillOps(std::vector<WarpInstr>& buf)
{
    while (owed_ >= 1.0) {
        owed_ -= 1.0;
        u32 slot = static_cast<u32>(spillCounter_ / 2 % cfg_.numSlots());
        bool store = (spillCounter_ % 2) == 0;
        ++spillCounter_;

        WarpInstr in;
        in.op = store ? Opcode::StLocal : Opcode::LdLocal;
        // Spill data/result cycles through the low allocated registers;
        // the address is implicit (frame-pointer relative), so model a
        // single register operand.
        RegId r = static_cast<RegId>(spillCounter_ % cfg_.allocatedRegs);
        if (store) {
            in.src[0] = r;
            in.numSrc = 1;
        } else {
            in.dst = r;
            in.numSrc = 0;
        }
        in.accessBytes = kRegBytes;
        in.activeMask = 0xffffffffu;
        for (u32 lane = 0; lane < kWarpWidth; ++lane)
            in.addr[lane] = slotAddr(slot, lane);
        buf.push_back(in);
    }
}

bool
SpillInjector::fill(std::vector<WarpInstr>& buf)
{
    size_t start = buf.size();
    if (!base_->fill(buf))
        return false;
    if (!cfg_.active()) {
        // Still remap register ids in case allocated < needed without a
        // spill penalty (defensive; normally multiplier > 1 then).
        if (cfg_.allocatedRegs < cfg_.neededRegs)
            for (size_t i = start; i < buf.size(); ++i) {
                buf[i].dst = remap(buf[i].dst);
                for (u8 s = 0; s < buf[i].numSrc; ++s)
                    buf[i].src[s] = remap(buf[i].src[s]);
            }
        return true;
    }

    // Remap the chunk into the allocated register range, then interleave
    // spill traffic at the configured rate. Barriers never spill around.
    chunk_.assign(buf.begin() + start, buf.end());
    buf.resize(start);
    double rate = cfg_.multiplier - 1.0;
    for (WarpInstr in : chunk_) {
        in.dst = remap(in.dst);
        for (u8 s = 0; s < in.numSrc; ++s)
            in.src[s] = remap(in.src[s]);
        buf.push_back(in);
        if (in.op != Opcode::Bar) {
            owed_ += rate;
            emitSpillOps(buf);
        }
    }
    return true;
}

} // namespace unimem
