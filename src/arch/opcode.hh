/**
 * @file
 * Trace-level opcode set. The simulator is trace driven, so opcodes only
 * distinguish behaviours that matter for timing and energy: functional
 * unit, memory space, and synchronization.
 */

#ifndef UNIMEM_ARCH_OPCODE_HH
#define UNIMEM_ARCH_OPCODE_HH

#include "common/types.hh"

namespace unimem {

enum class Opcode : u8
{
    IntAlu,   ///< integer ALU op (8-cycle latency)
    FpAlu,    ///< floating point ALU op (8-cycle latency)
    Sfu,      ///< special function unit op (20-cycle latency)
    LdGlobal, ///< load from global memory (through cache)
    StGlobal, ///< store to global memory (write-through)
    LdShared, ///< load from scratchpad (shared memory)
    StShared, ///< store to scratchpad (shared memory)
    LdLocal,  ///< load from thread-local memory (spill fill, cached)
    StLocal,  ///< store to thread-local memory (register spill, cached)
    Tex,      ///< texture fetch (400-cycle latency, bypasses data cache)
    Bar,      ///< CTA-wide barrier
};

/** Human-readable opcode name. */
const char* opcodeName(Opcode op);

// The classification predicates below are constexpr in the header: the
// issue loop consults several of them per instruction, and as
// out-of-line calls they were among the most-called functions in the
// whole simulator profile.

/** Any memory-space access (global/shared/local/texture). */
constexpr bool
isMemOp(Opcode op)
{
    static_assert(static_cast<u8>(Opcode::Tex) -
                          static_cast<u8>(Opcode::LdGlobal) ==
                      6,
                  "isMemOp relies on the memory opcodes being contiguous");
    return op >= Opcode::LdGlobal && op <= Opcode::Tex;
}

/** Loads that produce a register value. */
constexpr bool
isLoad(Opcode op)
{
    return op == Opcode::LdGlobal || op == Opcode::LdShared ||
           op == Opcode::LdLocal || op == Opcode::Tex;
}

/** Stores. */
constexpr bool
isStore(Opcode op)
{
    return op == Opcode::StGlobal || op == Opcode::StShared ||
           op == Opcode::StLocal;
}

/** Accesses that go through the primary data cache and DRAM. */
constexpr bool
isGlobalSpace(Opcode op)
{
    return op == Opcode::LdGlobal || op == Opcode::StGlobal ||
           op == Opcode::LdLocal || op == Opcode::StLocal;
}

/** Accesses to the scratchpad. */
constexpr bool
isSharedSpace(Opcode op)
{
    return op == Opcode::LdShared || op == Opcode::StShared;
}

/**
 * Variable/long-latency producers: the two-level scheduler deschedules a
 * warp that becomes dependent on one of these (paper Section 2.1).
 */
constexpr bool
isLongLatency(Opcode op)
{
    return op == Opcode::LdGlobal || op == Opcode::LdLocal ||
           op == Opcode::Tex;
}

/**
 * Static operand-shape constraints of one opcode, used by the trace
 * linter (analysis/lint.hh) to reject malformed instructions before they
 * reach the timing model.
 */
struct OpcodeShape
{
    /** Fewest register source operands a well-formed instance carries. */
    u8 minSrc;

    /** Most register source operands a well-formed instance carries. */
    u8 maxSrc;

    /** True when the opcode produces a register result. */
    bool hasDst;
};

/**
 * Operand-arity metadata for @p op. Loads may carry zero sources
 * (frame-pointer-relative spill fills); stores carry an address register
 * and optionally a data register; barriers carry nothing.
 */
const OpcodeShape& opcodeShape(Opcode op);

} // namespace unimem

#endif // UNIMEM_ARCH_OPCODE_HH
