/**
 * @file
 * Trace-level opcode set. The simulator is trace driven, so opcodes only
 * distinguish behaviours that matter for timing and energy: functional
 * unit, memory space, and synchronization.
 */

#ifndef UNIMEM_ARCH_OPCODE_HH
#define UNIMEM_ARCH_OPCODE_HH

#include "common/types.hh"

namespace unimem {

enum class Opcode : u8
{
    IntAlu,   ///< integer ALU op (8-cycle latency)
    FpAlu,    ///< floating point ALU op (8-cycle latency)
    Sfu,      ///< special function unit op (20-cycle latency)
    LdGlobal, ///< load from global memory (through cache)
    StGlobal, ///< store to global memory (write-through)
    LdShared, ///< load from scratchpad (shared memory)
    StShared, ///< store to scratchpad (shared memory)
    LdLocal,  ///< load from thread-local memory (spill fill, cached)
    StLocal,  ///< store to thread-local memory (register spill, cached)
    Tex,      ///< texture fetch (400-cycle latency, bypasses data cache)
    Bar,      ///< CTA-wide barrier
};

/** Human-readable opcode name. */
const char* opcodeName(Opcode op);

/** Any memory-space access (global/shared/local/texture). */
bool isMemOp(Opcode op);

/** Loads that produce a register value. */
bool isLoad(Opcode op);

/** Stores. */
bool isStore(Opcode op);

/** Accesses that go through the primary data cache and DRAM. */
bool isGlobalSpace(Opcode op);

/** Accesses to the scratchpad. */
bool isSharedSpace(Opcode op);

/**
 * Variable/long-latency producers: the two-level scheduler deschedules a
 * warp that becomes dependent on one of these (paper Section 2.1).
 */
bool isLongLatency(Opcode op);

/**
 * Static operand-shape constraints of one opcode, used by the trace
 * linter (analysis/lint.hh) to reject malformed instructions before they
 * reach the timing model.
 */
struct OpcodeShape
{
    /** Fewest register source operands a well-formed instance carries. */
    u8 minSrc;

    /** Most register source operands a well-formed instance carries. */
    u8 maxSrc;

    /** True when the opcode produces a register result. */
    bool hasDst;
};

/**
 * Operand-arity metadata for @p op. Loads may carry zero sources
 * (frame-pointer-relative spill fills); stores carry an address register
 * and optionally a data register; barriers carry nothing.
 */
const OpcodeShape& opcodeShape(Opcode op);

} // namespace unimem

#endif // UNIMEM_ARCH_OPCODE_HH
