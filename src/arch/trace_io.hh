/**
 * @file
 * Warp-trace serialization.
 *
 * The paper's methodology is trace driven: Ocelot produced execution and
 * address traces of CUDA binaries which a custom SM simulator consumed
 * (Section 5.1). This module provides the equivalent interface for this
 * simulator: any KernelModel's trace can be dumped to a portable text
 * format, and a trace file can be loaded back as a KernelModel - so
 * externally produced traces (from an instrumented emulator, a real-GPU
 * profiler, or another simulator) can drive all of the experiments.
 *
 * Format (line oriented, '#' comments):
 *
 *   unimem-trace 1
 *   kernel <name> regs <n> shared <bytes/cta> cta <threads> grid <ctas>
 *   warp <ctaId> <warpInCta>
 *   i <op> <dst> <src0> <src1> <src2> <mask-hex> <bytes>
 *   a <addr-hex> ... (per active lane, only for memory ops)
 *   end
 *
 * <dst>/<srcN> use 65535 for "none". The "a" line follows its "i" line
 * and lists one address per active lane, lowest lane first.
 */

#ifndef UNIMEM_ARCH_TRACE_IO_HH
#define UNIMEM_ARCH_TRACE_IO_HH

#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "arch/kernel_model.hh"

namespace unimem {

/** Current trace format version. */
constexpr u32 kTraceFormatVersion = 1;

/**
 * Serialize every warp of every CTA of @p kernel to @p os.
 * @param seed launch seed used to generate the traces
 */
void writeTrace(const KernelModel& kernel, std::ostream& os,
                u64 seed = 1);

/** A kernel whose warp traces come from a parsed trace file. */
class TraceFileKernel : public KernelModel
{
  public:
    /** Parse a trace from @p is; fatal() on malformed input. */
    explicit TraceFileKernel(std::istream& is);

    const KernelParams& params() const override { return params_; }

    std::unique_ptr<WarpProgram>
    warpProgram(const WarpCtx& ctx) const override;

    /** Number of distinct warp streams the file contained. */
    size_t numWarps() const { return warps_.size(); }

  private:
    using WarpKey = std::pair<u32, u32>; // (ctaId, warpInCta)

    KernelParams params_;
    std::map<WarpKey, std::vector<WarpInstr>> warps_;
};

} // namespace unimem

#endif // UNIMEM_ARCH_TRACE_IO_HH
