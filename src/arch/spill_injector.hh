/**
 * @file
 * Register spill/fill modeling.
 *
 * When a kernel is run with fewer registers per thread than it needs, the
 * compiler inserts spill stores and fill loads to thread-local memory. The
 * SpillInjector wraps a base WarpProgram and injects ld.local/st.local
 * instructions at the rate given by the kernel's SpillCurve, remapping
 * register ids into the allocated range. Local memory is interleaved per
 * lane so that a warp's spill traffic coalesces into contiguous 128-byte
 * lines, as real CUDA local memory does.
 */

#ifndef UNIMEM_ARCH_SPILL_INJECTOR_HH
#define UNIMEM_ARCH_SPILL_INJECTOR_HH

#include <memory>

#include "arch/kernel_params.hh"
#include "arch/warp_program.hh"

namespace unimem {

/** Configuration of the spill transformation for one launch. */
struct SpillConfig
{
    /** Registers per thread the kernel would need for zero spills. */
    u32 neededRegs = 16;

    /** Registers per thread actually allocated. */
    u32 allocatedRegs = 16;

    /** Dynamic-instruction multiplier at allocatedRegs (from SpillCurve). */
    double multiplier = 1.0;

    bool active() const { return multiplier > 1.0 + 1e-9; }

    /** Number of distinct thread-local spill slots. */
    u32
    numSlots() const
    {
        return neededRegs > allocatedRegs ? neededRegs - allocatedRegs : 1;
    }
};

/** Wraps a warp trace, adding spill/fill traffic and remapping registers. */
class SpillInjector : public WarpProgram
{
  public:
    /**
     * @param base the unspilled warp trace
     * @param cfg spill parameters for this launch
     * @param warpGlobalId unique warp number, used to place the warp's
     *        local-memory stack
     */
    SpillInjector(std::unique_ptr<WarpProgram> base, const SpillConfig& cfg,
                  u64 warpGlobalId);

    bool fill(std::vector<WarpInstr>& buf) override;

    /** Local-memory address of spill slot @p slot for lane @p lane. */
    Addr slotAddr(u32 slot, u32 lane) const;

  private:
    void emitSpillOps(std::vector<WarpInstr>& buf);
    RegId remap(RegId r) const;

    std::unique_ptr<WarpProgram> base_;
    SpillConfig cfg_;
    u64 warpGlobalId_;

    /** Fractional spill ops owed; incremented per base instruction. */
    double owed_ = 0.0;

    /** Alternates stores and fills for injected traffic. */
    u64 spillCounter_ = 0;

    /** Scratch for the remap pass; reused across fill() calls. */
    std::vector<WarpInstr> chunk_;
};

} // namespace unimem

#endif // UNIMEM_ARCH_SPILL_INJECTOR_HH
