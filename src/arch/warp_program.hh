/**
 * @file
 * The trace-stream abstraction: a WarpProgram produces the dynamic
 * instruction sequence of one warp, chunk by chunk, so that arbitrarily
 * long traces never need to be materialized in memory.
 */

#ifndef UNIMEM_ARCH_WARP_PROGRAM_HH
#define UNIMEM_ARCH_WARP_PROGRAM_HH

#include <memory>
#include <vector>

#include "arch/warp_instr.hh"
#include "common/types.hh"

namespace unimem {

/** Identity of one warp within a kernel launch, given to trace generators. */
struct WarpCtx
{
    /** CTA index within the SM's share of the grid. */
    u32 ctaId = 0;

    /** Warp index within the CTA. */
    u32 warpInCta = 0;

    u32 warpsPerCta = 1;
    u32 threadsPerCta = kWarpWidth;

    /** Deterministic per-launch seed; generators derive their RNG from it. */
    u64 seed = 0;

    /** Global thread id of this warp's lane 0. */
    u64
    firstThread() const
    {
        return static_cast<u64>(ctaId) * threadsPerCta +
               static_cast<u64>(warpInCta) * kWarpWidth;
    }
};

/**
 * Generator of one warp's dynamic instruction stream.
 *
 * fill() appends the next chunk of instructions to @p buf and returns true,
 * or returns false (appending nothing) when the warp has retired. A chunk
 * is typically one loop iteration of the modeled kernel.
 */
class WarpProgram
{
  public:
    virtual ~WarpProgram() = default;
    virtual bool fill(std::vector<WarpInstr>& buf) = 0;
};

/**
 * Pull-based reader over a WarpProgram with single-instruction lookahead,
 * which is what the issue logic needs for dependence checks.
 */
class InstrStream
{
  public:
    explicit InstrStream(std::unique_ptr<WarpProgram> prog)
        : prog_(std::move(prog))
    {
    }

    /** Next instruction without consuming it; nullptr at end of trace. */
    const WarpInstr*
    peek()
    {
        while (pos_ >= buf_.size()) {
            if (done_)
                return nullptr;
            buf_.clear();
            pos_ = 0;
            if (!prog_->fill(buf_))
                done_ = true;
        }
        return &buf_[pos_];
    }

    /** Consume the instruction returned by peek(). */
    void pop() { ++pos_; }

    bool exhausted() { return peek() == nullptr; }

  private:
    std::unique_ptr<WarpProgram> prog_;
    std::vector<WarpInstr> buf_;
    size_t pos_ = 0;
    bool done_ = false;
};

/** A WarpProgram over a fixed instruction vector (used in tests). */
class FixedProgram : public WarpProgram
{
  public:
    explicit FixedProgram(std::vector<WarpInstr> instrs)
        : instrs_(std::move(instrs))
    {
    }

    bool
    fill(std::vector<WarpInstr>& buf) override
    {
        if (emitted_)
            return false;
        emitted_ = true;
        buf.insert(buf.end(), instrs_.begin(), instrs_.end());
        return true;
    }

  private:
    std::vector<WarpInstr> instrs_;
    bool emitted_ = false;
};

} // namespace unimem

#endif // UNIMEM_ARCH_WARP_PROGRAM_HH
