/**
 * @file
 * The trace-stream abstraction: a WarpProgram produces the dynamic
 * instruction sequence of one warp, chunk by chunk, so that arbitrarily
 * long traces never need to be materialized in memory.
 */

#ifndef UNIMEM_ARCH_WARP_PROGRAM_HH
#define UNIMEM_ARCH_WARP_PROGRAM_HH

#include <memory>
#include <vector>

#include "arch/warp_instr.hh"
#include "common/types.hh"

namespace unimem {

/** Identity of one warp within a kernel launch, given to trace generators. */
struct WarpCtx
{
    /** CTA index within the SM's share of the grid. */
    u32 ctaId = 0;

    /** Warp index within the CTA. */
    u32 warpInCta = 0;

    u32 warpsPerCta = 1;
    u32 threadsPerCta = kWarpWidth;

    /** Deterministic per-launch seed; generators derive their RNG from it. */
    u64 seed = 0;

    /** Global thread id of this warp's lane 0. */
    u64
    firstThread() const
    {
        return static_cast<u64>(ctaId) * threadsPerCta +
               static_cast<u64>(warpInCta) * kWarpWidth;
    }
};

/**
 * Generator of one warp's dynamic instruction stream.
 *
 * fill() appends the next chunk of instructions to @p buf and returns true,
 * or returns false (appending nothing) when the warp has retired. A chunk
 * is typically one loop iteration of the modeled kernel.
 */
class WarpProgram
{
  public:
    virtual ~WarpProgram() = default;
    virtual bool fill(std::vector<WarpInstr>& buf) = 0;
};

/**
 * Pull-based reader over a WarpProgram with single-instruction lookahead,
 * which is what the issue logic needs for dependence checks.
 *
 * Refills batch several fill() calls into one chunk buffer so the
 * per-instruction cost of the issue loop is an index bump, not a virtual
 * dispatch; the buffer's capacity is retained across reset() so CTA
 * relaunches reuse it instead of reallocating.
 */
class InstrStream
{
  public:
    /** Empty stream; bind a program with reset() before use. */
    InstrStream() = default;

    explicit InstrStream(std::unique_ptr<WarpProgram> prog)
        : prog_(std::move(prog))
    {
    }

    /** Rebind to a new program, reusing the chunk buffer's capacity. */
    void
    reset(std::unique_ptr<WarpProgram> prog)
    {
        prog_ = std::move(prog);
        buf_.clear();
        pos_ = 0;
        done_ = false;
    }

    /** Drop the program at warp retirement; the buffer stays pooled. */
    void release() { prog_.reset(); }

    /** Next instruction without consuming it; nullptr at end of trace. */
    const WarpInstr*
    peek()
    {
        if (pos_ < buf_.size())
            return &buf_[pos_];
        return refill();
    }

    /** Consume the instruction returned by peek(). */
    void pop() { ++pos_; }

    bool exhausted() { return peek() == nullptr; }

  private:
    /** Gather fill() chunks until the batch target is reached. */
    const WarpInstr*
    refill()
    {
        if (done_)
            return nullptr;
        buf_.clear();
        // Skip the geometric growth ramp on a stream's first refill:
        // every chunk ends at or just past the target, and WarpInstr is
        // ~300 bytes, so the handful of doubling reallocations per
        // fresh stream copied tens of kilobytes each.
        if (buf_.capacity() < kChunkTarget)
            buf_.reserve(kChunkTarget + kChunkTarget / 2);
        pos_ = 0;
        while (buf_.size() < kChunkTarget) {
            if (!prog_->fill(buf_)) {
                done_ = true;
                break;
            }
        }
        return pos_ < buf_.size() ? &buf_[pos_] : nullptr;
    }

    /** Instructions gathered per refill; one fill() is typically 5-20. */
    static constexpr size_t kChunkTarget = 64;

    std::unique_ptr<WarpProgram> prog_;
    std::vector<WarpInstr> buf_;
    size_t pos_ = 0;
    bool done_ = false;
};

/** A WarpProgram over a fixed instruction vector (used in tests). */
class FixedProgram : public WarpProgram
{
  public:
    explicit FixedProgram(std::vector<WarpInstr> instrs)
        : instrs_(std::move(instrs))
    {
    }

    bool
    fill(std::vector<WarpInstr>& buf) override
    {
        if (emitted_)
            return false;
        emitted_ = true;
        buf.insert(buf.end(), instrs_.begin(), instrs_.end());
        return true;
    }

  private:
    std::vector<WarpInstr> instrs_;
    bool emitted_ = false;
};

} // namespace unimem

#endif // UNIMEM_ARCH_WARP_PROGRAM_HH
