/**
 * @file
 * Fixed architectural constants of the modeled streaming multiprocessor
 * (paper Section 2.1 / Table 2). Capacities that the unified design varies
 * are NOT here; they live in core/partition.hh.
 */

#ifndef UNIMEM_ARCH_GPU_CONSTANTS_HH
#define UNIMEM_ARCH_GPU_CONSTANTS_HH

#include "common/types.hh"

namespace unimem {

/** Threads per warp (SIMT width). */
constexpr u32 kWarpWidth = 32;

/** SIMT lane clusters per SM; each cluster has 4 lanes and 4 MRF banks. */
constexpr u32 kNumClusters = 8;

/** SIMT lanes per cluster. */
constexpr u32 kLanesPerCluster = 4;

/** MRF banks per cluster (one 16-byte-wide bank per lane). */
constexpr u32 kBanksPerCluster = 4;

/** Total physical banks per SM in every design (keeps bandwidth constant). */
constexpr u32 kBanksPerSm = kNumClusters * kBanksPerCluster;

/** Maximum resident threads per SM. */
constexpr u32 kMaxThreadsPerSm = 1024;

/** Maximum resident warps per SM. */
constexpr u32 kMaxWarpsPerSm = kMaxThreadsPerSm / kWarpWidth;

/** Cache line size in bytes (both designs). */
constexpr u32 kCacheLineBytes = 128;

/** Minimum DRAM transfer granule in bytes (a "sector"). */
constexpr u32 kDramSectorBytes = 32;

/** Bytes per architectural register per thread. */
constexpr u32 kRegBytes = 4;

/** Width of a unified memory bank in bytes. */
constexpr u32 kUnifiedBankWidth = 16;

/** Width of a partitioned shared/cache bank in bytes. */
constexpr u32 kPartitionedBankWidth = 4;

/** Default pipeline latencies (paper Table 2). */
struct Latencies
{
    u32 alu = 8;
    u32 sfu = 20;
    u32 sharedMem = 20;
    u32 texture = 400;
    u32 dram = 400;
    /** Latency of a primary-cache hit for a global access. */
    u32 cacheHit = 20;
};

/** DRAM bandwidth share of one SM, bytes per cycle (paper Table 2). */
constexpr u32 kDramBytesPerCycle = 8;

/** Address-space bases for synthetic traces. */
constexpr Addr kGlobalBase = 0;
constexpr Addr kLocalBase = Addr(1) << 40;

} // namespace unimem

#endif // UNIMEM_ARCH_GPU_CONSTANTS_HH
