#include "mem/cache.hh"

#include "common/log.hh"

namespace unimem {

DataCache::DataCache(u64 capacityBytes, u32 assoc, WritePolicy policy)
    : capacityBytes_(capacityBytes), assoc_(assoc), policy_(policy)
{
    if (assoc_ == 0)
        fatal("DataCache: zero associativity");
    if (capacityBytes_ == 0) {
        numSets_ = 0;
        return;
    }
    u64 lines = capacityBytes_ / kCacheLineBytes;
    if (lines == 0)
        fatal("DataCache: capacity %llu smaller than one line",
              static_cast<unsigned long long>(capacityBytes_));
    if (lines < assoc_)
        assoc_ = static_cast<u32>(lines);
    // The unified allocator hands the cache arbitrary leftovers (e.g.
    // 88KB), so sets are not restricted to powers of two; a modulo
    // index keeps all capacity usable.
    numSets_ = static_cast<u32>(lines / assoc_);
    assoc_ = static_cast<u32>(lines / numSets_);
    ways_.assign(static_cast<size_t>(numSets_) * assoc_, Way{});
}

u32
DataCache::setIndex(Addr lineAddr) const
{
    u64 lineNum = lineAddr / kCacheLineBytes;
    // Plain modulo indexing: the set count is rarely a power of two
    // (the allocator hands the cache arbitrary leftovers), which
    // already de-correlates power-of-two strides.
    return static_cast<u32>(lineNum % numSets_);
}

DataCache::Way*
DataCache::findWay(Addr lineAddr)
{
    u32 set = setIndex(lineAddr);
    Way* base = &ways_[static_cast<size_t>(set) * assoc_];
    for (u32 w = 0; w < assoc_; ++w)
        if (base[w].valid && base[w].tag == lineAddr)
            return &base[w];
    return nullptr;
}

const DataCache::Way*
DataCache::findWay(Addr lineAddr) const
{
    return const_cast<DataCache*>(this)->findWay(lineAddr);
}

bool
DataCache::read(Addr lineAddr)
{
    if (!enabled()) {
        ++stats_.readMisses;
        return false;
    }
    if (Way* w = findWay(lineAddr)) {
        w->lastUse = ++useClock_;
        ++stats_.readHits;
        return true;
    }
    ++stats_.readMisses;
    return false;
}

bool
DataCache::write(Addr lineAddr)
{
    if (!enabled()) {
        ++stats_.writeMisses;
        return false;
    }
    if (Way* w = findWay(lineAddr)) {
        w->lastUse = ++useClock_;
        if (policy_ == WritePolicy::WriteBack)
            w->dirty = true;
        ++stats_.writeHits;
        return true;
    }
    ++stats_.writeMisses;
    return false;
}

void
DataCache::markDirty(Addr lineAddr)
{
    if (policy_ != WritePolicy::WriteBack)
        panic("DataCache: markDirty on a write-through cache");
    if (Way* w = findWay(lineAddr))
        w->dirty = true;
}

bool
DataCache::fill(Addr lineAddr)
{
    if (!enabled())
        return false;
    if (findWay(lineAddr) != nullptr)
        return false; // already present (e.g. duplicate outstanding miss)
    u32 set = setIndex(lineAddr);
    Way* base = &ways_[static_cast<size_t>(set) * assoc_];
    Way* victim = &base[0];
    for (u32 w = 0; w < assoc_; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (base[w].lastUse < victim->lastUse)
            victim = &base[w];
    }
    bool dirty_evicted = victim->valid && victim->dirty;
    if (dirty_evicted)
        ++stats_.dirtyEvictions;
    victim->valid = true;
    victim->dirty = false;
    victim->tag = lineAddr;
    victim->lastUse = ++useClock_;
    ++stats_.fills;
    return dirty_evicted;
}

bool
DataCache::contains(Addr lineAddr) const
{
    return enabled() && findWay(lineAddr) != nullptr;
}

bool
DataCache::isDirty(Addr lineAddr) const
{
    const Way* w = findWay(lineAddr);
    return w != nullptr && w->dirty;
}

u64
DataCache::dirtyLineCount() const
{
    u64 n = 0;
    for (const Way& w : ways_)
        if (w.valid && w.dirty)
            ++n;
    return n;
}

u64
DataCache::invalidateAll()
{
    u64 dirty = 0;
    for (auto& w : ways_) {
        if (w.valid && w.dirty)
            ++dirty;
        w.valid = false;
        w.dirty = false;
    }
    return dirty;
}

} // namespace unimem
