#include "mem/dram.hh"

#include <algorithm>

#include "common/log.hh"

namespace unimem {

DramModel::DramModel(u32 bytesPerCycle, u32 latency)
    : bytesPerCycle_(bytesPerCycle), latency_(latency)
{
    if (bytesPerCycle_ == 0)
        fatal("DramModel: zero bandwidth");
}

Cycle
DramModel::occupy(Cycle now, u32 sectors)
{
    if (sectors == 0)
        panic("DramModel: zero-sector request");
    Cycle start = std::max(now, nextFree_);
    u64 bytes = static_cast<u64>(sectors) * kDramSectorBytes;
    Cycle xfer = (bytes + bytesPerCycle_ - 1) / bytesPerCycle_;
    nextFree_ = start + xfer;
    return start + xfer;
}

Cycle
DramModel::read(Cycle now, u32 sectors)
{
    ownership::check(owner_, "DramModel::read");
    Cycle drained = occupy(now, sectors);
    ++stats_.readRequests;
    stats_.readSectors += sectors;
    return drained + latency_;
}

Cycle
DramModel::write(Cycle now, u32 sectors)
{
    ownership::check(owner_, "DramModel::write");
    Cycle drained = occupy(now, sectors);
    ++stats_.writeRequests;
    stats_.writeSectors += sectors;
    return drained;
}

} // namespace unimem
