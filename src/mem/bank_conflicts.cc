#include "mem/bank_conflicts.hh"

#include "common/log.hh"

namespace unimem {

const char*
ConflictHistogram::bucketName(u32 b)
{
    switch (b) {
      case 0: return "<=1";
      case 1: return "2";
      case 2: return "3";
      case 3: return "4";
      case 4: return ">4";
    }
    panic("ConflictHistogram: bad bucket %u", b);
}

} // namespace unimem
