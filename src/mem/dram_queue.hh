/**
 * @file
 * Record/replay DRAM request queue for bound-weave chip co-simulation.
 *
 * In the bound phase each SM advances privately and, instead of calling
 * the shared DramModel directly, records its global/texture traffic
 * here. In the weave phase a single thread merges all SMs' queues in a
 * canonical (cycle, smId) order and replays them against the shared
 * memory controllers, so the contention outcome is independent of the
 * worker count and of the order in which SMs ran (DESIGN.md Section 10).
 *
 * Two record granularities:
 *  - ungrouped requests (kNoGroup): posted stores, victim write-backs,
 *    loads nobody waits on. Optionally tracked so their drain cycle can
 *    be folded into the SM's last-completion bookkeeping on replay.
 *  - grouped reads: the cache-line fills of one load (or texture fetch)
 *    instruction. The group carries the destination register and the
 *    completion contributions already known at record time (cache hits,
 *    pipeline latency); replay computes the final completion as
 *    max(known, max over member fills of (fill + extra)) and delivers
 *    it back to the SM's scoreboard.
 *
 * Open groups also export a conservative *stall bound*: a lower bound
 * on the earliest cycle any unresolved completion could land. The SM
 * must not make scheduling decisions at or beyond the minimum bound
 * until the next weave resolves the group, which is what makes the
 * deferred engine decision-for-decision identical to the immediate one.
 */

#ifndef UNIMEM_MEM_DRAM_QUEUE_HH
#define UNIMEM_MEM_DRAM_QUEUE_HH

#include <vector>

#include "common/ownership.hh"
#include "common/types.hh"

namespace unimem {

/** Group id for traffic no instruction waits on. */
constexpr u32 kNoGroup = ~u32(0);

/** Replay channel selectors (separate DramModels at chip level). */
constexpr u8 kDataDramChannel = 0;
constexpr u8 kTexDramChannel = 1;

/** One recorded DRAM transaction awaiting replay. */
struct DramRequest
{
    Cycle at = 0;   //!< issue cycle on the SM's clock
    u32 sectors = 0;
    u32 group = kNoGroup;
    u8 channel = kDataDramChannel;
    bool isRead = true;
    /** Fold the replayed drain cycle into the SM's lastCompletion. */
    bool trackDrain = false;
};

/** One deferred load/texture completion awaiting replay. */
struct DeferredGroup
{
    Cycle known = 0;       //!< completion known at record time
    Cycle extra = 0;       //!< post-fill addend (texture pipeline tail)
    Cycle bound = 0;       //!< lower bound on the final completion
    Cycle placeholder = 0; //!< scoreboard sentinel (delivery check)
    Cycle result = 0;      //!< final completion (filled by the weave)
    u32 warp = 0;
    u32 gen = 0;
    RegId reg = kInvalidReg;
    u32 members = 0;       //!< recorded fill reads in this group
    bool wake = false;     //!< deliver to scoreboard + load event
    bool trackCompletion = false;
};

/** Per-SM record buffer, drained by the chip's weave phase. */
class DramRequestQueue
{
  public:
    explicit DramRequestQueue(u32 dramLatency)
        : dramLatency_(dramLatency)
    {
    }

    /**
     * Tag this queue with its owning SM (chip mode). Record-side
     * mutations then assert the bound phase's data-isolation contract:
     * only the owner SM's thread may record, and only the weaver may
     * clear replayed state (common/ownership.hh).
     */
    void setOwner(ownership::Actor sm) { owner_ = sm; }

    /**
     * Open a completion group for one load/texture instruction. Member
     * fills are added with recordRead(); close with endGroup().
     */
    u32
    beginGroup(u32 warp, u32 gen, RegId reg, Cycle extra)
    {
        ownership::check(owner_, "DramRequestQueue::beginGroup");
        DeferredGroup g;
        g.warp = warp;
        g.gen = gen;
        g.reg = reg;
        g.extra = extra;
        groups_.push_back(g);
        return static_cast<u32>(groups_.size() - 1);
    }

    /**
     * Close group @p g. Returns true if the group stays deferred (it
     * recorded at least one DRAM fill); when it does and @p wake is
     * set, a fresh scoreboard placeholder is available from
     * lastPlaceholder(). Returns false and drops the group when it has
     * no members: the completion equals @p known exactly and the
     * caller should handle it on the immediate (single-SM) path.
     */
    bool
    endGroup(u32 g, Cycle known, bool wake, bool trackCompletion)
    {
        ownership::check(owner_, "DramRequestQueue::endGroup");
        DeferredGroup& grp = groups_[g];
        if (grp.members == 0) {
            groups_.pop_back(); // groups are opened/closed LIFO
            return false;
        }
        grp.known = known;
        grp.wake = wake;
        grp.trackCompletion = trackCompletion;
        grp.bound = grp.bound > known ? grp.bound : known;
        if (wake)
            grp.placeholder = lastPlaceholder_ =
                kCycleNever - (++placeholderSeq_);
        if (grp.bound < minBound_)
            minBound_ = grp.bound;
        return true;
    }

    Cycle lastPlaceholder() const { return lastPlaceholder_; }

    void
    recordRead(u8 channel, Cycle at, u32 sectors, u32 group,
               bool trackDrain)
    {
        ownership::check(owner_, "DramRequestQueue::recordRead");
        requests_.push_back(
            {at, sectors, group, channel, true, trackDrain});
        ++totalRequests_;
        if (group != kNoGroup) {
            DeferredGroup& grp = groups_[group];
            ++grp.members;
            // Earliest this fill can complete: one transfer cycle plus
            // the fixed DRAM latency plus the group's pipeline tail.
            Cycle b = at + 1 + dramLatency_ + grp.extra;
            if (b > grp.bound)
                grp.bound = b;
        }
    }

    void
    recordWrite(u8 channel, Cycle at, u32 sectors, bool trackDrain)
    {
        ownership::check(owner_, "DramRequestQueue::recordWrite");
        requests_.push_back(
            {at, sectors, kNoGroup, channel, false, trackDrain});
        ++totalRequests_;
    }

    /**
     * Earliest cycle at which an unresolved group completion could
     * land; the SM stalls there until the next weave. kCycleNever when
     * nothing is pending.
     */
    Cycle stallBound() const { return minBound_; }

    bool hasPendingGroups() const { return !groups_.empty(); }

    bool empty() const { return requests_.empty() && groups_.empty(); }

    std::vector<DramRequest>& requests() { return requests_; }
    std::vector<DeferredGroup>& groups() { return groups_; }

    /** Lifetime count of recorded requests (contention accounting). */
    u64 totalRequests() const { return totalRequests_; }

    /** Drop replayed state; called by the weave after delivery. */
    void
    clearReplayed()
    {
        if (owner_ != ownership::kNoActor)
            ownership::check(ownership::kWeaver,
                             "DramRequestQueue::clearReplayed");
        requests_.clear();
        groups_.clear();
        minBound_ = kCycleNever;
    }

  private:
    u32 dramLatency_;
    ownership::Actor owner_ = ownership::kNoActor;
    u64 placeholderSeq_ = 0;
    Cycle lastPlaceholder_ = 0;
    Cycle minBound_ = kCycleNever;
    u64 totalRequests_ = 0;
    std::vector<DramRequest> requests_;
    std::vector<DeferredGroup> groups_;
};

} // namespace unimem

#endif // UNIMEM_MEM_DRAM_QUEUE_HH
