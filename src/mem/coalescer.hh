/**
 * @file
 * Global-memory access coalescer.
 *
 * Merges the per-lane addresses of one warp memory instruction into
 * 128-byte cache-line transactions, tracking which 32-byte sectors of
 * each line are actually touched. Sector masks let the DRAM model charge
 * exact traffic when no cache is present (32-byte granules) versus full
 * lines on cache fills, which is what makes cache-induced overfetch
 * visible (paper Section 3.1, Needle row of Table 1).
 */

#ifndef UNIMEM_MEM_COALESCER_HH
#define UNIMEM_MEM_COALESCER_HH

#include <vector>

#include "arch/warp_instr.hh"

namespace unimem {

/** One coalesced line-granularity transaction. */
struct CoalescedAccess
{
    /** 128-byte-aligned line address. */
    Addr lineAddr = 0;

    /** Bit s set means 32-byte sector s of the line is touched. */
    u8 sectorMask = 0;

    /** Exact bytes touched within the line. */
    u32 bytesTouched = 0;

    u32 numSectors() const
    {
        return static_cast<u32>(__builtin_popcount(sectorMask));
    }
};

/**
 * Coalesce one warp instruction's lane addresses into @p out (cleared
 * first). Results are ordered by first-touching lane. Taking the output
 * vector lets the per-cycle issue path reuse one scratch buffer instead
 * of allocating per memory instruction.
 */
void coalesce(const WarpInstr& in, std::vector<CoalescedAccess>& out);

/** Allocating convenience wrapper. */
std::vector<CoalescedAccess> coalesce(const WarpInstr& in);

} // namespace unimem

#endif // UNIMEM_MEM_COALESCER_HH
