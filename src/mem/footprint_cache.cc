#include "mem/footprint_cache.hh"

#include <cstdlib>

namespace unimem {

bool
footprintCacheEnabledByEnv()
{
    static const bool on = [] {
        const char* v = std::getenv("UNIMEM_FOOTPRINT_CACHE");
        return v == nullptr || v[0] != '0';
    }();
    return on;
}

} // namespace unimem
