/**
 * @file
 * Per-static-instruction footprint cache (DESIGN.md Section 9).
 *
 * The deterministic kernel models emit repeating address patterns: a
 * dgemm warp re-reads the same shared-memory tile addresses every
 * blocking step, and compute instructions cycle through a handful of
 * operand-bank layouts. The bank-conflict and coalescing models are
 * pure functions of the instruction's footprint — (opcode, active mask,
 * access size, per-lane addresses, operand-bank signature) — so their
 * results can be memoized on that exact key and replayed for later
 * dynamic instances. Input-dependent patterns simply miss and fall back
 * to the full computation; a hit is bit-identical by construction
 * because the key captures every input the models read.
 *
 * Two structures, both per-SM (thread-confined, no locks):
 *  - a 256-entry direct table for instructions that touch no data banks
 *    (ALU/SFU/texture), whose outcome depends only on the 8-bit operand
 *    bank signature;
 *  - a direct-mapped, overwrite-on-collision cache for data-bank ops,
 *    keyed on the full footprint, holding the conflict outcome plus up
 *    to four coalesced lines for replay in the global-memory path.
 *
 * The class is templated on the outcome type so this header does not
 * depend on the core conflict model (core already links against mem).
 * Disable with UNIMEM_FOOTPRINT_CACHE=0 for A/B timing comparisons.
 */

#ifndef UNIMEM_MEM_FOOTPRINT_CACHE_HH
#define UNIMEM_MEM_FOOTPRINT_CACHE_HH

#include <array>
#include <vector>

#include "arch/warp_instr.hh"
#include "mem/coalescer.hh"

namespace unimem {

/** Process-wide UNIMEM_FOOTPRINT_CACHE knob (default on), read once. */
bool footprintCacheEnabledByEnv();

/** Hit/miss counters (diagnostics only; never part of SmStats). */
struct FootprintStats
{
    u64 computeHits = 0;
    u64 computeMisses = 0;
    u64 memHits = 0;
    u64 memMisses = 0;
    u64 lineReplays = 0;
    u64 lineRecomputes = 0;
};

/**
 * Pack up to three cluster-local operand bank ids (0..3) plus their
 * count into one byte. Equal signatures imply identical bank-count
 * vectors, which is all the conflict model reads for operand conflicts.
 */
inline u8
mrfSignature(const u8* mrfBanks, u32 numMrfReads)
{
    u8 sig = static_cast<u8>(numMrfReads << 6);
    for (u32 i = 0; i < numMrfReads; ++i)
        sig |= static_cast<u8>((mrfBanks[i] & 3u) << (2 * i));
    return sig;
}

template <typename Outcome>
class FootprintCache
{
  public:
    static constexpr u32 kMemSlots = 8192;
    static constexpr u8 kMaxInlineLines = 4;
    static constexpr u8 kLinesUnknown = 0xff;  // not coalesced yet
    static constexpr u8 kLinesOverflow = 0xfe; // > kMaxInlineLines

    /** One data-bank-op entry: exact key, outcome, replayable lines. */
    struct MemEntry
    {
        std::array<Addr, kWarpWidth> addr{};
        u32 activeMask = 0;
        Opcode op = Opcode::IntAlu;
        u8 accessBytes = 0;
        u8 sig = 0;
        u8 numLines = kLinesUnknown;
        /** Valid iff equal to the owning cache's epoch (see slabPool). */
        u64 gen = 0;
        Outcome outcome{};
        std::array<CoalescedAccess, kMaxInlineLines> lines{};
    };

    FootprintCache() : enabled_(footprintCacheEnabledByEnv()) {}

    /**
     * Return the slot slab to the thread-local pool instead of freeing
     * it. The next cache instance that inherits the slab claims a fresh
     * epoch, which invalidates every inherited entry without touching
     * the ~3 MB of slot memory — constructing an SM model no longer
     * pays a multi-megabyte zero-fill per simulation run.
     */
    ~FootprintCache()
    {
        if (!mem_.empty())
            slabPool().push_back(std::move(mem_));
    }

    FootprintCache(const FootprintCache&) = delete;
    FootprintCache& operator=(const FootprintCache&) = delete;

    bool enabled() const { return enabled_; }
    void setEnabled(bool on) { enabled_ = on; }
    const FootprintStats& stats() const { return stats_; }

    /** Lookup for ops that touch no data banks. nullptr on miss. */
    const Outcome*
    findCompute(u8 sig)
    {
        const ComputeEntry& e = compute_[sig];
        if (e.valid) {
            ++stats_.computeHits;
            return &e.outcome;
        }
        ++stats_.computeMisses;
        return nullptr;
    }

    void
    insertCompute(u8 sig, const Outcome& outcome)
    {
        compute_[sig].outcome = outcome;
        compute_[sig].valid = true;
    }

    /**
     * One slot computation serving both lookup and (on a miss) the
     * subsequent insert — the issue path previously hashed the same
     * key twice per miss.
     */
    struct MemProbe
    {
        MemEntry* entry; ///< the key's slot, hit or not
        bool hit;        ///< entry verified against the full key
    };

    /** Verified single-probe lookup for data-bank ops. */
    MemProbe
    probeMem(const WarpInstr& in, u8 sig)
    {
        MemEntry& e = slotFor(in, sig);
        if (e.gen == memGen_ && e.op == in.op &&
            e.activeMask == in.activeMask &&
            e.accessBytes == in.accessBytes && e.sig == sig &&
            e.addr == in.addr) {
            ++stats_.memHits;
            return {&e, true};
        }
        ++stats_.memMisses;
        return {&e, false};
    }

    /**
     * Claim (overwrite) a missed probe's slot with @p in's key. The
     * caller stores the freshly computed outcome; lines stay
     * kLinesUnknown until the global-memory path coalesces them.
     */
    void
    claimMem(MemEntry& e, const WarpInstr& in, u8 sig)
    {
        e.addr = in.addr;
        e.activeMask = in.activeMask;
        e.op = in.op;
        e.accessBytes = in.accessBytes;
        e.sig = sig;
        e.numLines = kLinesUnknown;
        e.gen = memGen_;
    }

    /** Verified lookup for data-bank ops. nullptr on miss. */
    MemEntry*
    findMem(const WarpInstr& in, u8 sig)
    {
        MemProbe p = probeMem(in, sig);
        return p.hit ? p.entry : nullptr;
    }

    /** findMem-compatible claim that redoes the slot lookup (tests). */
    MemEntry&
    insertMem(const WarpInstr& in, u8 sig)
    {
        MemEntry& e = slotFor(in, sig);
        claimMem(e, in, sig);
        return e;
    }

    void noteLineReplay() { ++stats_.lineReplays; }
    void noteLineRecompute() { ++stats_.lineRecomputes; }

  private:
    struct ComputeEntry
    {
        Outcome outcome{};
        bool valid = false;
    };

    MemEntry&
    slotFor(const WarpInstr& in, u8 sig)
    {
        // The slot array is sized for hot sets of a few hundred live
        // static instructions; allocate it only when a data-bank op
        // actually shows up (pure-compute or disabled runs stay lean),
        // and prefer a recycled slab over a fresh zero-fill. Claiming
        // an epoch strictly above every gen stamp any pooled slab can
        // carry makes all inherited entries misses, so a recycled cache
        // is observably identical to a zero-initialized one.
        if (mem_.empty()) {
            auto& pool = slabPool();
            if (!pool.empty()) {
                mem_ = std::move(pool.back());
                pool.pop_back();
            } else {
                mem_.resize(kMemSlots);
            }
            memGen_ = ++epochCounter();
        }
        // Fold a sample of lanes rather than all 32: the slot index
        // only steers collision rate (the full-key compare in findMem
        // keeps hits exact), and real footprint families — strided
        // accesses differing in base, stride, or span, plus scattered
        // ones — already separate on the first, second, middle, and
        // last lanes. Hashing every lane cost a 32-step fold on each
        // data-bank issue for no measurable hit-rate gain.
        u64 h = (static_cast<u64>(in.activeMask) << 24) ^
                (static_cast<u64>(in.op) << 16) ^
                (static_cast<u64>(in.accessBytes) << 8) ^ sig;
        h ^= in.addr[0];
        h ^= (in.addr[1] << 9) | (in.addr[1] >> 55);
        h ^= (in.addr[kWarpWidth / 2] << 21) | (in.addr[kWarpWidth / 2] >> 43);
        h ^= (in.addr[kWarpWidth - 1] << 43) | (in.addr[kWarpWidth - 1] >> 21);
        // Murmur3 finalizer: the fold above is xor-linear, so without
        // strong bit mixing the slot index would see only low-entropy
        // combinations of the address bits.
        h ^= h >> 33;
        h *= 0xff51afd7ed558ccdull;
        h ^= h >> 33;
        h *= 0xc4ceb9fe1a85ec53ull;
        h ^= h >> 33;
        return mem_[h & (kMemSlots - 1)];
    }

    /**
     * Thread-local free list of retired slot slabs. Thread-local (not
     * global) so chip co-simulation workers never share slabs: each
     * worker's acquire/release stays lock-free, and a worker's epoch
     * sequence depends only on its own cache lifetimes, keeping the
     * simulation bitwise independent of the worker count.
     */
    static std::vector<std::vector<MemEntry>>&
    slabPool()
    {
        static thread_local std::vector<std::vector<MemEntry>> pool;
        return pool;
    }

    /** Monotonic epoch source; fresh slabs stamp entries with gen 0. */
    static u64&
    epochCounter()
    {
        static thread_local u64 epoch = 0;
        return epoch;
    }

    std::array<ComputeEntry, 256> compute_{};
    std::vector<MemEntry> mem_;
    u64 memGen_ = 0;
    bool enabled_;
    FootprintStats stats_;
};

} // namespace unimem

#endif // UNIMEM_MEM_FOOTPRINT_CACHE_HH
