/**
 * @file
 * Per-static-instruction footprint cache (DESIGN.md Section 9).
 *
 * The deterministic kernel models emit repeating address patterns: a
 * dgemm warp re-reads the same shared-memory tile addresses every
 * blocking step, and compute instructions cycle through a handful of
 * operand-bank layouts. The bank-conflict and coalescing models are
 * pure functions of the instruction's footprint — (opcode, active mask,
 * access size, per-lane addresses, operand-bank signature) — so their
 * results can be memoized on that exact key and replayed for later
 * dynamic instances. Input-dependent patterns simply miss and fall back
 * to the full computation; a hit is bit-identical by construction
 * because the key captures every input the models read.
 *
 * Two structures, both per-SM (thread-confined, no locks):
 *  - a 256-entry direct table for instructions that touch no data banks
 *    (ALU/SFU/texture), whose outcome depends only on the 8-bit operand
 *    bank signature;
 *  - a direct-mapped, overwrite-on-collision cache for data-bank ops,
 *    keyed on the full footprint, holding the conflict outcome plus up
 *    to four coalesced lines for replay in the global-memory path.
 *
 * The class is templated on the outcome type so this header does not
 * depend on the core conflict model (core already links against mem).
 * Disable with UNIMEM_FOOTPRINT_CACHE=0 for A/B timing comparisons.
 */

#ifndef UNIMEM_MEM_FOOTPRINT_CACHE_HH
#define UNIMEM_MEM_FOOTPRINT_CACHE_HH

#include <array>
#include <vector>

#include "arch/warp_instr.hh"
#include "mem/coalescer.hh"

namespace unimem {

/** Process-wide UNIMEM_FOOTPRINT_CACHE knob (default on), read once. */
bool footprintCacheEnabledByEnv();

/** Hit/miss counters (diagnostics only; never part of SmStats). */
struct FootprintStats
{
    u64 computeHits = 0;
    u64 computeMisses = 0;
    u64 memHits = 0;
    u64 memMisses = 0;
    u64 lineReplays = 0;
    u64 lineRecomputes = 0;
};

/**
 * Pack up to three cluster-local operand bank ids (0..3) plus their
 * count into one byte. Equal signatures imply identical bank-count
 * vectors, which is all the conflict model reads for operand conflicts.
 */
inline u8
mrfSignature(const u8* mrfBanks, u32 numMrfReads)
{
    u8 sig = static_cast<u8>(numMrfReads << 6);
    for (u32 i = 0; i < numMrfReads; ++i)
        sig |= static_cast<u8>((mrfBanks[i] & 3u) << (2 * i));
    return sig;
}

template <typename Outcome>
class FootprintCache
{
  public:
    static constexpr u32 kMemSlots = 8192;
    static constexpr u8 kMaxInlineLines = 4;
    static constexpr u8 kLinesUnknown = 0xff;  // not coalesced yet
    static constexpr u8 kLinesOverflow = 0xfe; // > kMaxInlineLines

    /** One data-bank-op entry: exact key, outcome, replayable lines. */
    struct MemEntry
    {
        std::array<Addr, kWarpWidth> addr{};
        u32 activeMask = 0;
        Opcode op = Opcode::IntAlu;
        u8 accessBytes = 0;
        u8 sig = 0;
        u8 numLines = kLinesUnknown;
        bool valid = false;
        Outcome outcome{};
        std::array<CoalescedAccess, kMaxInlineLines> lines{};
    };

    FootprintCache() : enabled_(footprintCacheEnabledByEnv()) {}

    bool enabled() const { return enabled_; }
    void setEnabled(bool on) { enabled_ = on; }
    const FootprintStats& stats() const { return stats_; }

    /** Lookup for ops that touch no data banks. nullptr on miss. */
    const Outcome*
    findCompute(u8 sig)
    {
        const ComputeEntry& e = compute_[sig];
        if (e.valid) {
            ++stats_.computeHits;
            return &e.outcome;
        }
        ++stats_.computeMisses;
        return nullptr;
    }

    void
    insertCompute(u8 sig, const Outcome& outcome)
    {
        compute_[sig].outcome = outcome;
        compute_[sig].valid = true;
    }

    /** Verified lookup for data-bank ops. nullptr on miss. */
    MemEntry*
    findMem(const WarpInstr& in, u8 sig)
    {
        MemEntry& e = slotFor(in, sig);
        if (e.valid && e.op == in.op && e.activeMask == in.activeMask &&
            e.accessBytes == in.accessBytes && e.sig == sig &&
            e.addr == in.addr) {
            ++stats_.memHits;
            return &e;
        }
        ++stats_.memMisses;
        return nullptr;
    }

    /**
     * Claim (overwrite) the slot for @p in and fill its key. The caller
     * stores the freshly computed outcome; lines stay kLinesUnknown
     * until the global-memory path coalesces them.
     */
    MemEntry&
    insertMem(const WarpInstr& in, u8 sig)
    {
        MemEntry& e = slotFor(in, sig);
        e.addr = in.addr;
        e.activeMask = in.activeMask;
        e.op = in.op;
        e.accessBytes = in.accessBytes;
        e.sig = sig;
        e.numLines = kLinesUnknown;
        e.valid = true;
        return e;
    }

    void noteLineReplay() { ++stats_.lineReplays; }
    void noteLineRecompute() { ++stats_.lineRecomputes; }

  private:
    struct ComputeEntry
    {
        Outcome outcome{};
        bool valid = false;
    };

    MemEntry&
    slotFor(const WarpInstr& in, u8 sig)
    {
        // The slot array is sized for hot sets of a few hundred live
        // static instructions; allocate it only when a data-bank op
        // actually shows up (pure-compute or disabled runs stay lean).
        if (mem_.empty())
            mem_.resize(kMemSlots);
        u64 h = 14695981039346656037ull;
        constexpr u64 kPrime = 1099511628211ull;
        for (Addr a : in.addr)
            h = (h ^ a) * kPrime;
        h = (h ^ in.activeMask) * kPrime;
        h = (h ^ static_cast<u64>(in.op)) * kPrime;
        h = (h ^ in.accessBytes) * kPrime;
        h = (h ^ sig) * kPrime;
        // XOR and multiply are closed mod 2^k, so without a finalizer
        // the slot index would only see the low bits of the addresses —
        // and strided kernel footprints collapse onto a handful of
        // slots. Fold the high bits down first (Murmur3-style).
        h ^= h >> 33;
        h *= 0xff51afd7ed558ccdull;
        h ^= h >> 33;
        return mem_[h & (kMemSlots - 1)];
    }

    std::array<ComputeEntry, 256> compute_{};
    std::vector<MemEntry> mem_;
    bool enabled_;
    FootprintStats stats_;
};

} // namespace unimem

#endif // UNIMEM_MEM_FOOTPRINT_CACHE_HH
