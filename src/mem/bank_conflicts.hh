/**
 * @file
 * Per-warp-instruction bank conflict accounting (paper Section 6.1).
 *
 * The paper's simplified model counts, for each warp instruction, the
 * number of accesses made to each physical bank; the instruction is
 * delayed one cycle for each access beyond the first to the most-accessed
 * bank. The same counter produces the Table 5 breakdown of instructions
 * by maximum accesses to a single bank.
 */

#ifndef UNIMEM_MEM_BANK_CONFLICTS_HH
#define UNIMEM_MEM_BANK_CONFLICTS_HH

#include <array>

#include "common/types.hh"

namespace unimem {

/** Accumulates per-bank access counts for one warp instruction. */
class BankAccessCounter
{
  public:
    /** Record @p count accesses to @p bankId. */
    void
    add(u32 bankId, u32 count = 1)
    {
        for (u32 i = 0; i < size_; ++i) {
            if (entries_[i].bank == bankId) {
                entries_[i].count += count;
                return;
            }
        }
        if (size_ < entries_.size()) {
            entries_[size_].bank = bankId;
            entries_[size_].count = count;
            ++size_;
        }
    }

    /** Maximum accesses to any single bank (0 when nothing recorded). */
    u32
    maxCount() const
    {
        u32 m = 0;
        for (u32 i = 0; i < size_; ++i)
            m = m > entries_[i].count ? m : entries_[i].count;
        return m;
    }

    /** Total recorded accesses. */
    u32
    total() const
    {
        u32 t = 0;
        for (u32 i = 0; i < size_; ++i)
            t += entries_[i].count;
        return t;
    }

    /** Stall cycles: one per access beyond the first to the hottest bank. */
    u32
    penalty() const
    {
        u32 m = maxCount();
        return m > 1 ? m - 1 : 0;
    }

    void reset() { size_ = 0; }

  private:
    struct Entry
    {
        u32 bank = 0;
        u32 count = 0;
    };

    std::array<Entry, 64> entries_{};
    u32 size_ = 0;
};

/**
 * Table 5 histogram: warp instructions bucketed by the maximum number of
 * accesses any single bank received (<=1, 2, 3, 4, >4).
 */
class ConflictHistogram
{
  public:
    void
    record(u32 maxAccesses)
    {
        ++total_;
        if (maxAccesses <= 1)
            ++buckets_[0];
        else if (maxAccesses == 2)
            ++buckets_[1];
        else if (maxAccesses == 3)
            ++buckets_[2];
        else if (maxAccesses == 4)
            ++buckets_[3];
        else
            ++buckets_[4];
    }

    /** Fraction of instructions in bucket @p b (0: <=1 ... 4: >4). */
    double
    fraction(u32 b) const
    {
        return total_ == 0
                   ? 0.0
                   : static_cast<double>(buckets_[b]) /
                         static_cast<double>(total_);
    }

    u64 total() const { return total_; }
    u64 bucket(u32 b) const { return buckets_[b]; }

    void
    merge(const ConflictHistogram& o)
    {
        total_ += o.total_;
        for (u32 i = 0; i < 5; ++i)
            buckets_[i] += o.buckets_[i];
    }

    static constexpr u32 kNumBuckets = 5;
    static const char* bucketName(u32 b);

  private:
    std::array<u64, kNumBuckets> buckets_{};
    u64 total_ = 0;
};

} // namespace unimem

#endif // UNIMEM_MEM_BANK_CONFLICTS_HH
