#include "mem/coalescer.hh"

#include "common/log.hh"

namespace unimem {

void
coalesce(const WarpInstr& in, std::vector<CoalescedAccess>& out)
{
    out.clear();
    if (!isMemOp(in.op))
        panic("coalesce: non-memory opcode %s", opcodeName(in.op));

    for (u32 lane = 0; lane < kWarpWidth; ++lane) {
        if (!in.laneActive(lane))
            continue;
        Addr a = in.addr[lane];
        Addr line = a & ~static_cast<Addr>(kCacheLineBytes - 1);
        // Accesses are assumed not to straddle a line (4/8-byte aligned).
        u32 sector = static_cast<u32>((a - line) / kDramSectorBytes);

        CoalescedAccess* acc = nullptr;
        for (auto& c : out) {
            if (c.lineAddr == line) {
                acc = &c;
                break;
            }
        }
        if (acc == nullptr) {
            out.push_back(CoalescedAccess{line, 0, 0});
            acc = &out.back();
        }
        acc->sectorMask |= static_cast<u8>(1u << sector);
        acc->bytesTouched += in.accessBytes;
    }
}

std::vector<CoalescedAccess>
coalesce(const WarpInstr& in)
{
    std::vector<CoalescedAccess> out;
    coalesce(in, out);
    return out;
}

} // namespace unimem
