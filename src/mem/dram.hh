/**
 * @file
 * DRAM channel share model.
 *
 * One SM sees 1/32 of chip DRAM bandwidth (8 bytes/cycle) with a fixed
 * 400-cycle access latency (paper Table 2 and Section 5.1). Requests
 * serialize on bandwidth in arrival order; the model tracks when the
 * channel is next free and returns per-request completion times.
 *
 * Traffic is counted in 32-byte sectors, the minimum DRAM fetch size, so
 * that cache-line overfetch (128-byte fills for partially used lines) is
 * visible in the DRAM-access statistics, as in paper Table 1.
 */

#ifndef UNIMEM_MEM_DRAM_HH
#define UNIMEM_MEM_DRAM_HH

#include "arch/gpu_constants.hh"
#include "common/ownership.hh"
#include "common/types.hh"

namespace unimem {

/** DRAM traffic statistics. */
struct DramStats
{
    u64 readSectors = 0;
    u64 writeSectors = 0;
    u64 readRequests = 0;
    u64 writeRequests = 0;

    u64 sectors() const { return readSectors + writeSectors; }
    u64 bytes() const { return sectors() * kDramSectorBytes; }
};

/** Bandwidth/latency model of one SM's DRAM share. */
class DramModel
{
  public:
    explicit DramModel(u32 bytesPerCycle = kDramBytesPerCycle,
                       u32 latency = 400);

    /**
     * Issue a read of @p sectors 32-byte sectors at @p now.
     * @return cycle at which the data is available to the SM.
     */
    Cycle read(Cycle now, u32 sectors);

    /**
     * Issue a write of @p sectors 32-byte sectors at @p now. Writes are
     * posted (no one waits on them) but consume bandwidth.
     * @return cycle at which the write has drained.
     */
    Cycle write(Cycle now, u32 sectors);

    /** First cycle at which a new request could start transferring. */
    Cycle nextFree() const { return nextFree_; }

    const DramStats& stats() const { return stats_; }

    /**
     * Tag this controller as shared chip state (chip mode): read()/
     * write() then assert they run under @p owner — the weaver — so a
     * bound-phase SM can never time traffic against a shared
     * controller (common/ownership.hh).
     */
    void setOwner(ownership::Actor owner) { owner_ = owner; }

  private:
    Cycle occupy(Cycle now, u32 sectors);

    ownership::Actor owner_ = ownership::kNoActor;
    u32 bytesPerCycle_;
    u32 latency_;
    Cycle nextFree_ = 0;
    DramStats stats_;
};

} // namespace unimem

#endif // UNIMEM_MEM_DRAM_HH
