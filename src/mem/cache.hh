/**
 * @file
 * Primary data cache model: set-associative, 128-byte lines, LRU,
 * single-ported tag array (one tag lookup per cycle, paper Sections 2.1
 * and 4.3).
 *
 * The paper's design is write-through with no write-allocate, which is
 * what makes per-kernel repartitioning free (no dirty data to drain,
 * Section 4.4). A write-back write-allocate mode is provided as the
 * design-choice ablation: it tracks dirty lines, reports dirty
 * evictions, and makes reconfiguration pay a flush.
 *
 * The cache is a pure tag model — the simulator is trace driven, so no
 * data is stored. Capacity zero is a valid configuration meaning "no
 * cache" (every access misses and goes to DRAM at sector granularity).
 */

#ifndef UNIMEM_MEM_CACHE_HH
#define UNIMEM_MEM_CACHE_HH

#include <vector>

#include "arch/gpu_constants.hh"
#include "common/types.hh"

namespace unimem {

/** Aggregate cache statistics. */
struct CacheStats
{
    u64 readHits = 0;
    u64 readMisses = 0;
    u64 writeHits = 0;
    u64 writeMisses = 0;
    u64 fills = 0;
    u64 dirtyEvictions = 0;

    u64 accesses() const
    {
        return readHits + readMisses + writeHits + writeMisses;
    }
};

/** Write handling policy. */
enum class WritePolicy : u8
{
    /** Paper default: write-through, no write-allocate. */
    WriteThrough,

    /** Ablation: write-back, write-allocate (dirty lines tracked). */
    WriteBack,
};

/** Set-associative tag store. */
class DataCache
{
  public:
    /**
     * @param capacityBytes total capacity; zero disables the cache
     * @param assoc ways per set (paper Table 2: 4)
     * @param policy write handling (paper default: write-through)
     */
    explicit DataCache(u64 capacityBytes, u32 assoc = 4,
                       WritePolicy policy = WritePolicy::WriteThrough);

    /**
     * Read probe for @p lineAddr (must be line aligned). On a hit the LRU
     * state is updated; on a miss nothing is allocated — call fill() when
     * the line returns from DRAM.
     * @return true on hit.
     */
    bool read(Addr lineAddr);

    /**
     * Write probe. Write-through: updates LRU on hit, never allocates.
     * Write-back: marks the line dirty on hit; on a miss the caller is
     * expected to fill() (write-allocate) and then call write() again
     * or markDirty().
     * @return true if the line was present.
     */
    bool write(Addr lineAddr);

    /** Write-back mode: set the dirty bit of a resident line. */
    void markDirty(Addr lineAddr);

    /**
     * Install @p lineAddr, evicting LRU.
     * @return true if the evicted line was dirty (the caller owes a
     *         DRAM writeback); always false in write-through mode.
     */
    bool fill(Addr lineAddr);

    /** Probe without side effects. */
    bool contains(Addr lineAddr) const;

    /** True if the line is resident and dirty. */
    bool isDirty(Addr lineAddr) const;

    /** Number of resident dirty lines (reconfiguration flush cost). */
    u64 dirtyLineCount() const;

    /**
     * Drop all lines (kernel-boundary repartitioning, Section 4.4).
     * @return number of dirty lines that had to be written back first
     *         (always 0 for the paper's write-through design).
     */
    u64 invalidateAll();

    u64 capacity() const { return capacityBytes_; }
    u32 numSets() const { return numSets_; }
    bool enabled() const { return capacityBytes_ > 0; }
    WritePolicy policy() const { return policy_; }

    const CacheStats& stats() const { return stats_; }

  private:
    struct Way
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        u64 lastUse = 0;
    };

    u32 setIndex(Addr lineAddr) const;
    Way* findWay(Addr lineAddr);
    const Way* findWay(Addr lineAddr) const;

    u64 capacityBytes_;
    u32 assoc_;
    WritePolicy policy_;
    u32 numSets_;
    u64 useClock_ = 0;
    std::vector<Way> ways_; // numSets_ x assoc_, row major
    CacheStats stats_;
};

} // namespace unimem

#endif // UNIMEM_MEM_CACHE_HH
