/**
 * @file
 * CTA occupancy calculation for the partitioned and unified designs
 * (paper Sections 3.1 and 4.5).
 *
 * Given a kernel's per-thread register requirement and per-CTA scratchpad
 * requirement, these helpers compute how many CTAs fit into a set of
 * capacities, how many registers per thread are actually allocated (fewer
 * than needed forces spill code), and - for the unified design - how much
 * capacity is left over for the primary cache.
 */

#ifndef UNIMEM_SCHED_OCCUPANCY_HH
#define UNIMEM_SCHED_OCCUPANCY_HH

#include "arch/gpu_constants.hh"
#include "arch/kernel_params.hh"

namespace unimem {

/** Minimum registers per thread the compiler can scrape by with. */
constexpr u32 kMinRegsPerThread = 8;

/** Resolved launch configuration for one SM. */
struct LaunchConfig
{
    bool feasible = false;

    /** Registers per thread actually allocated. */
    u32 regsPerThread = 0;

    /** Dynamic-instruction multiplier from spilling at regsPerThread. */
    double spillMultiplier = 1.0;

    /** Concurrent CTAs resident on the SM. */
    u32 ctas = 0;

    /** Concurrent threads (ctas * ctaThreads). */
    u32 threads = 0;

    /** Register file bytes consumed. */
    u64 rfBytes = 0;

    /** Scratchpad bytes consumed. */
    u64 sharedBytes = 0;
};

/** Unified-design launch: occupancy plus leftover capacity for cache. */
struct UnifiedLaunch
{
    LaunchConfig launch;

    /** Capacity not claimed by registers or scratchpad (paper 4.5). */
    u64 cacheBytes = 0;
};

/**
 * Occupancy under hard-partitioned register file and scratchpad
 * capacities (baseline and Fermi-like designs).
 *
 * @param kp kernel requirements
 * @param rfCapacity register file bytes
 * @param sharedCapacity scratchpad bytes
 * @param threadLimit cap on resident threads (sensitivity sweeps)
 * @param regsOverride if nonzero, allocate exactly this many registers
 *        per thread (values below the requirement induce spills)
 */
LaunchConfig occupancyPartitioned(const KernelParams& kp, u64 rfCapacity,
                                  u64 sharedCapacity,
                                  u32 threadLimit = kMaxThreadsPerSm,
                                  u32 regsOverride = 0);

/**
 * Paper Section 4.5 allocation: registers and scratchpad are claimed out
 * of the unified capacity for as many CTAs as fit (or as @p threadLimit
 * allows); every remaining byte becomes primary cache.
 */
UnifiedLaunch occupancyUnified(const KernelParams& kp, u64 capacity,
                               u32 threadLimit = kMaxThreadsPerSm,
                               u32 regsOverride = 0);

} // namespace unimem

#endif // UNIMEM_SCHED_OCCUPANCY_HH
