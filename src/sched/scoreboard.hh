/**
 * @file
 * Per-warp register scoreboard for the in-order SM pipeline.
 *
 * Tracks when each architectural register's pending value becomes
 * available and whether the producer is a long-latency (descheduling)
 * operation, which is what the two-level scheduler keys on.
 */

#ifndef UNIMEM_SCHED_SCOREBOARD_HH
#define UNIMEM_SCHED_SCOREBOARD_HH

#include <algorithm>
#include <array>

#include "arch/warp_instr.hh"
#include "common/log.hh"
#include "common/types.hh"

namespace unimem {

/** Register dependence tracking for one warp. */
class Scoreboard
{
  public:
    /** Maximum architectural registers per thread the model supports. */
    static constexpr u32 kMaxRegs = 256;

    /**
     * Mark @p r as produced at @p readyAt by a (long-latency?) op.
     * In the header (like readyInfo) because it runs once per issued
     * instruction with a destination.
     */
    void
    setPending(RegId r, Cycle readyAt, bool longLatency)
    {
        if (r == kInvalidReg)
            return;
        if (r >= kMaxRegs)
            panic("Scoreboard: register %u out of range", r);
        Entry& e = regs_[r];
        if (e.longLatency)
            --longLatencyCount_; // WAW over a pending long op
        e.readyAt = readyAt;
        e.longLatency = longLatency;
        if (longLatency)
            ++longLatencyCount_;
    }

    /** Producer of @p r completed (clears long-latency flag). */
    void
    clearPending(RegId r)
    {
        if (r == kInvalidReg || r >= kMaxRegs)
            return;
        Entry& e = regs_[r];
        if (e.longLatency) {
            e.longLatency = false;
            --longLatencyCount_;
        }
    }

    /** Cycle at which instruction @p in could issue given dependences. */
    Cycle readyCycle(const WarpInstr& in) const;

    /** True if @p in depends (RAW or WAW) on a pending long-latency op. */
    bool dependsOnLongLatency(const WarpInstr& in) const;

    /** readyCycle + dependsOnLongLatency of @p in, one register pass. */
    struct ReadyInfo
    {
        Cycle readyAt;
        bool longLatency;
    };

    /**
     * In the header so the per-issue readiness refresh inlines it:
     * the whole body is a handful of array reads and the call ran
     * out-of-line once per issued instruction plus once per load
     * wakeup.
     */
    ReadyInfo
    readyInfo(const WarpInstr& in) const
    {
        ReadyInfo info{0, false};
        for (u8 s = 0; s < in.numSrc; ++s) {
            RegId r = in.src[s];
            if (r == kInvalidReg || r >= kMaxRegs)
                continue;
            const Entry& e = regs_[r];
            info.readyAt = std::max(info.readyAt, e.readyAt);
            info.longLatency |= e.longLatency;
        }
        if (in.hasDst() && in.dst < kMaxRegs) {
            const Entry& e = regs_[in.dst];
            info.readyAt = std::max(info.readyAt, e.readyAt);
            info.longLatency |= e.longLatency;
        }
        return info;
    }

    /** True if any long-latency producer is outstanding for this warp. */
    bool anyLongLatencyPending() const { return longLatencyCount_ > 0; }

    /**
     * Raw pending-ready cycle of @p r. Used by the deferred-DRAM
     * delivery path to verify that the entry still holds the sentinel
     * this load planted (and was not overwritten by a younger writer).
     */
    Cycle
    pendingAt(RegId r) const
    {
        return r < kMaxRegs ? regs_[r].readyAt : 0;
    }

    void reset();

  private:
    struct Entry
    {
        Cycle readyAt = 0;
        bool longLatency = false;
    };

    std::array<Entry, kMaxRegs> regs_{};
    u32 longLatencyCount_ = 0;
};

} // namespace unimem

#endif // UNIMEM_SCHED_SCOREBOARD_HH
