#include "sched/two_level_scheduler.hh"

#include <algorithm>

#include "common/log.hh"

namespace unimem {

TwoLevelScheduler::TwoLevelScheduler(u32 maxActive)
    : maxActive_(maxActive), state_(kMaxWarpsPerSm, State::NotResident)
{
    if (maxActive_ == 0)
        fatal("TwoLevelScheduler: active set size must be positive");
}

void
TwoLevelScheduler::addWarp(u32 warp)
{
    if (warp >= state_.size())
        panic("TwoLevelScheduler: warp %u out of range", warp);
    if (state_[warp] != State::NotResident)
        panic("TwoLevelScheduler: warp %u already resident", warp);
    ++numResident_;
    if (active_.size() < maxActive_) {
        activate(warp);
    } else {
        state_[warp] = State::Eligible;
        eligible_.push_back(warp);
    }
}

void
TwoLevelScheduler::retire(u32 warp)
{
    switch (state_[warp]) {
      case State::NotResident:
        panic("TwoLevelScheduler: retiring non-resident warp %u", warp);
      case State::Active:
        active_.erase(std::find(active_.begin(), active_.end(), warp));
        break;
      case State::Eligible:
        eligible_.erase(std::find(eligible_.begin(), eligible_.end(), warp));
        break;
      case State::Pending:
        break;
    }
    state_[warp] = State::NotResident;
    --numResident_;
    promote();
}

void
TwoLevelScheduler::deschedule(u32 warp)
{
    if (state_[warp] != State::Active)
        panic("TwoLevelScheduler: descheduling non-active warp %u", warp);
    active_.erase(std::find(active_.begin(), active_.end(), warp));
    state_[warp] = State::Pending;
    ++stats_.deschedules;
    promote();
}

void
TwoLevelScheduler::signalEligible(u32 warp)
{
    if (state_[warp] != State::Pending)
        return; // already eligible/active (e.g. multiple loads completing)
    state_[warp] = State::Eligible;
    eligible_.push_back(warp);
    promote();
}

void
TwoLevelScheduler::promote()
{
    while (active_.size() < maxActive_ && !eligible_.empty()) {
        u32 warp = eligible_.front();
        eligible_.pop_front();
        activate(warp);
    }
}

bool
TwoLevelScheduler::isActive(u32 warp) const
{
    return state_[warp] == State::Active;
}

} // namespace unimem
