#include "sched/scoreboard.hh"

namespace unimem {

Cycle
Scoreboard::readyCycle(const WarpInstr& in) const
{
    Cycle ready = 0;
    for (u8 s = 0; s < in.numSrc; ++s) {
        RegId r = in.src[s];
        if (r == kInvalidReg || r >= kMaxRegs)
            continue;
        ready = std::max(ready, regs_[r].readyAt);
    }
    // In-order writeback: a WAW hazard also delays issue.
    if (in.hasDst() && in.dst < kMaxRegs)
        ready = std::max(ready, regs_[in.dst].readyAt);
    return ready;
}

bool
Scoreboard::dependsOnLongLatency(const WarpInstr& in) const
{
    for (u8 s = 0; s < in.numSrc; ++s) {
        RegId r = in.src[s];
        if (r != kInvalidReg && r < kMaxRegs && regs_[r].longLatency)
            return true;
    }
    if (in.hasDst() && in.dst < kMaxRegs && regs_[in.dst].longLatency)
        return true;
    return false;
}

void
Scoreboard::reset()
{
    regs_.fill(Entry{});
    longLatencyCount_ = 0;
}

} // namespace unimem
