#include "sched/scoreboard.hh"

#include "common/log.hh"

namespace unimem {

void
Scoreboard::setPending(RegId r, Cycle readyAt, bool longLatency)
{
    if (r == kInvalidReg)
        return;
    if (r >= kMaxRegs)
        panic("Scoreboard: register %u out of range", r);
    Entry& e = regs_[r];
    if (e.longLatency)
        --longLatencyCount_; // WAW over a pending long op
    e.readyAt = readyAt;
    e.longLatency = longLatency;
    if (longLatency)
        ++longLatencyCount_;
}

void
Scoreboard::clearPending(RegId r)
{
    if (r == kInvalidReg || r >= kMaxRegs)
        return;
    Entry& e = regs_[r];
    if (e.longLatency) {
        e.longLatency = false;
        --longLatencyCount_;
    }
}

Cycle
Scoreboard::readyCycle(const WarpInstr& in) const
{
    Cycle ready = 0;
    for (u8 s = 0; s < in.numSrc; ++s) {
        RegId r = in.src[s];
        if (r == kInvalidReg || r >= kMaxRegs)
            continue;
        ready = std::max(ready, regs_[r].readyAt);
    }
    // In-order writeback: a WAW hazard also delays issue.
    if (in.hasDst() && in.dst < kMaxRegs)
        ready = std::max(ready, regs_[in.dst].readyAt);
    return ready;
}

bool
Scoreboard::dependsOnLongLatency(const WarpInstr& in) const
{
    for (u8 s = 0; s < in.numSrc; ++s) {
        RegId r = in.src[s];
        if (r != kInvalidReg && r < kMaxRegs && regs_[r].longLatency)
            return true;
    }
    if (in.hasDst() && in.dst < kMaxRegs && regs_[in.dst].longLatency)
        return true;
    return false;
}

Scoreboard::ReadyInfo
Scoreboard::readyInfo(const WarpInstr& in) const
{
    ReadyInfo info{0, false};
    for (u8 s = 0; s < in.numSrc; ++s) {
        RegId r = in.src[s];
        if (r == kInvalidReg || r >= kMaxRegs)
            continue;
        const Entry& e = regs_[r];
        info.readyAt = std::max(info.readyAt, e.readyAt);
        info.longLatency |= e.longLatency;
    }
    if (in.hasDst() && in.dst < kMaxRegs) {
        const Entry& e = regs_[in.dst];
        info.readyAt = std::max(info.readyAt, e.readyAt);
        info.longLatency |= e.longLatency;
    }
    return info;
}

void
Scoreboard::reset()
{
    regs_.fill(Entry{});
    longLatencyCount_ = 0;
}

} // namespace unimem
