/**
 * @file
 * Two-level warp scheduler (Gebhart et al. [8], paper Section 2.1).
 *
 * Resident warps are split into a small active set, which competes for
 * the single issue slot each cycle, and an inactive set. A warp is
 * descheduled (moved out of the active set) when it encounters a
 * dependence on a long-latency operation; when the operation completes
 * the warp becomes eligible and is re-activated as slots free up.
 * Only active warps may hold values in the LRF/ORF.
 */

#ifndef UNIMEM_SCHED_TWO_LEVEL_SCHEDULER_HH
#define UNIMEM_SCHED_TWO_LEVEL_SCHEDULER_HH

#include <deque>
#include <vector>

#include "arch/gpu_constants.hh"
#include "common/types.hh"

namespace unimem {

/** Scheduler statistics. */
struct SchedulerStats
{
    u64 deschedules = 0;
    u64 activations = 0;
};

/** Active/inactive warp set management with round-robin issue selection. */
class TwoLevelScheduler
{
  public:
    /**
     * @param maxActive active-set size (paper/prior work: 8); a value of
     *        kMaxWarpsPerSm degenerates to a flat single-level scheduler
     */
    explicit TwoLevelScheduler(u32 maxActive = 8);

    /** A warp became resident (CTA launch). */
    void addWarp(u32 warp);

    /** The warp's trace is exhausted; frees its slot. */
    void retire(u32 warp);

    /** Active warp hit a long-latency dependence: move it out. */
    void deschedule(u32 warp);

    /** A descheduled warp's blocking condition cleared. */
    void signalEligible(u32 warp);

    /**
     * Round-robin selection among active warps for which @p ready returns
     * true. Returns the warp id, or kNone. Templated on the predicate so
     * the per-cycle hot path carries no type-erasure (std::function)
     * overhead; the callable is inlined at the single call site.
     */
    template <typename ReadyFn>
    u32
    pickIssue(ReadyFn&& ready)
    {
        if (active_.empty())
            return kNone;
        u32 n = static_cast<u32>(active_.size());
        // rrNext_ can be out of range after the active list shrank;
        // fold it once so the walk below needs only a compare-subtract
        // per probe instead of an integer divide (this loop runs per
        // scheduling decision — the hottest path in the simulator).
        u32 idx = rrNext_ < n ? rrNext_ : rrNext_ % n;
        for (u32 i = 0; i < n; ++i) {
            u32 warp = active_[idx];
            if (ready(warp)) {
                rrNext_ = idx + 1 == n ? 0 : idx + 1;
                return warp;
            }
            if (++idx == n)
                idx = 0;
        }
        return kNone;
    }

    /**
     * Every warp id entering the active set (addWarp or promotion) is
     * appended to @p sink (nullptr disables). The SM uses this to feed
     * its incremental housekeeping work list: activation is one of the
     * only two events after which a warp can need retire/deschedule
     * attention (the other being its own issue).
     */
    void setActivationSink(std::vector<u32>* sink)
    {
        activationSink_ = sink;
    }

    const std::vector<u32>& activeWarps() const { return active_; }
    bool isActive(u32 warp) const;
    u32 numResident() const { return numResident_; }

    const SchedulerStats& stats() const { return stats_; }

    static constexpr u32 kNone = ~u32(0);

  private:
    enum class State : u8
    {
        NotResident,
        Active,
        Pending,  // descheduled, waiting on completion
        Eligible, // ready, waiting for an active slot
    };

    void promote();

    void
    activate(u32 warp)
    {
        state_[warp] = State::Active;
        active_.push_back(warp);
        ++stats_.activations;
        if (activationSink_ != nullptr)
            activationSink_->push_back(warp);
    }

    u32 maxActive_;
    std::vector<u32> active_;
    std::deque<u32> eligible_;
    std::vector<State> state_;
    std::vector<u32>* activationSink_ = nullptr;
    u32 numResident_ = 0;
    u32 rrNext_ = 0;
    SchedulerStats stats_;
};

} // namespace unimem

#endif // UNIMEM_SCHED_TWO_LEVEL_SCHEDULER_HH
