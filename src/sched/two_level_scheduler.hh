/**
 * @file
 * Two-level warp scheduler (Gebhart et al. [8], paper Section 2.1).
 *
 * Resident warps are split into a small active set, which competes for
 * the single issue slot each cycle, and an inactive set. A warp is
 * descheduled (moved out of the active set) when it encounters a
 * dependence on a long-latency operation; when the operation completes
 * the warp becomes eligible and is re-activated as slots free up.
 * Only active warps may hold values in the LRF/ORF.
 */

#ifndef UNIMEM_SCHED_TWO_LEVEL_SCHEDULER_HH
#define UNIMEM_SCHED_TWO_LEVEL_SCHEDULER_HH

#include <deque>
#include <functional>
#include <vector>

#include "arch/gpu_constants.hh"
#include "common/types.hh"

namespace unimem {

/** Scheduler statistics. */
struct SchedulerStats
{
    u64 deschedules = 0;
    u64 activations = 0;
};

/** Active/inactive warp set management with round-robin issue selection. */
class TwoLevelScheduler
{
  public:
    /**
     * @param maxActive active-set size (paper/prior work: 8); a value of
     *        kMaxWarpsPerSm degenerates to a flat single-level scheduler
     */
    explicit TwoLevelScheduler(u32 maxActive = 8);

    /** A warp became resident (CTA launch). */
    void addWarp(u32 warp);

    /** The warp's trace is exhausted; frees its slot. */
    void retire(u32 warp);

    /** Active warp hit a long-latency dependence: move it out. */
    void deschedule(u32 warp);

    /** A descheduled warp's blocking condition cleared. */
    void signalEligible(u32 warp);

    /**
     * Round-robin selection among active warps for which @p ready returns
     * true. Returns the warp id, or kNone.
     */
    u32 pickIssue(const std::function<bool(u32)>& ready);

    const std::vector<u32>& activeWarps() const { return active_; }
    bool isActive(u32 warp) const;
    u32 numResident() const { return numResident_; }

    const SchedulerStats& stats() const { return stats_; }

    static constexpr u32 kNone = ~u32(0);

  private:
    enum class State : u8
    {
        NotResident,
        Active,
        Pending,  // descheduled, waiting on completion
        Eligible, // ready, waiting for an active slot
    };

    void promote();

    u32 maxActive_;
    std::vector<u32> active_;
    std::deque<u32> eligible_;
    std::vector<State> state_;
    u32 numResident_ = 0;
    u32 rrNext_ = 0;
    SchedulerStats stats_;
};

} // namespace unimem

#endif // UNIMEM_SCHED_TWO_LEVEL_SCHEDULER_HH
