#include "sched/occupancy.hh"

#include <algorithm>

#include "common/log.hh"

namespace unimem {

namespace {

/** Clamp an allocated register count into the supported range. */
u32
clampRegs(u32 regs)
{
    return std::max(regs, kMinRegsPerThread);
}

void
finishLaunch(const KernelParams& kp, LaunchConfig& lc, u64 ctas)
{
    if (ctas == 0) {
        lc.feasible = false;
        return;
    }
    lc.feasible = true;
    lc.ctas = static_cast<u32>(ctas);
    lc.threads = lc.ctas * kp.ctaThreads;
    lc.rfBytes = static_cast<u64>(lc.threads) * lc.regsPerThread * kRegBytes;
    lc.sharedBytes = static_cast<u64>(lc.ctas) * kp.sharedBytesPerCta;
    lc.spillMultiplier = kp.spillCurve.multiplier(lc.regsPerThread);
    if (lc.regsPerThread >= kp.regsPerThread)
        lc.spillMultiplier = 1.0;
}

} // namespace

LaunchConfig
occupancyPartitioned(const KernelParams& kp, u64 rfCapacity,
                     u64 sharedCapacity, u32 threadLimit, u32 regsOverride)
{
    kp.validate();
    LaunchConfig lc;

    u32 regs = regsOverride != 0 ? regsOverride : kp.regsPerThread;
    u64 rfPerCta = static_cast<u64>(kp.ctaThreads) * regs * kRegBytes;
    if (rfPerCta > rfCapacity) {
        // Not even one CTA fits at the requested register count: the
        // compiler spills down to what fits.
        regs = clampRegs(
            static_cast<u32>(rfCapacity / (kp.ctaThreads * kRegBytes)));
        rfPerCta = static_cast<u64>(kp.ctaThreads) * regs * kRegBytes;
        if (rfPerCta > rfCapacity)
            return lc; // infeasible even at the minimum
    }
    lc.regsPerThread = regs;

    u64 ctas = rfCapacity / rfPerCta;
    if (kp.sharedBytesPerCta > 0)
        ctas = std::min(ctas, sharedCapacity / kp.sharedBytesPerCta);
    ctas = std::min(ctas, static_cast<u64>(threadLimit / kp.ctaThreads));
    ctas = std::min(ctas,
                    static_cast<u64>(kMaxThreadsPerSm / kp.ctaThreads));

    finishLaunch(kp, lc, ctas);
    return lc;
}

UnifiedLaunch
occupancyUnified(const KernelParams& kp, u64 capacity, u32 threadLimit,
                 u32 regsOverride)
{
    kp.validate();
    UnifiedLaunch ul;
    LaunchConfig& lc = ul.launch;

    u32 regs = regsOverride != 0 ? regsOverride : kp.regsPerThread;
    u64 perCta = static_cast<u64>(kp.ctaThreads) * regs * kRegBytes +
                 kp.sharedBytesPerCta;
    if (perCta > capacity) {
        if (kp.sharedBytesPerCta >= capacity)
            return ul; // scratchpad alone does not fit: infeasible
        regs = clampRegs(static_cast<u32>((capacity - kp.sharedBytesPerCta) /
                                          (kp.ctaThreads * kRegBytes)));
        perCta = static_cast<u64>(kp.ctaThreads) * regs * kRegBytes +
                 kp.sharedBytesPerCta;
        if (perCta > capacity)
            return ul;
    }
    lc.regsPerThread = regs;

    u64 ctas = capacity / perCta;
    ctas = std::min(ctas, static_cast<u64>(threadLimit / kp.ctaThreads));
    ctas = std::min(ctas,
                    static_cast<u64>(kMaxThreadsPerSm / kp.ctaThreads));

    finishLaunch(kp, lc, ctas);
    if (lc.feasible)
        ul.cacheBytes = capacity - ctas * perCta;
    return ul;
}

} // namespace unimem
