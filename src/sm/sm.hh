/**
 * @file
 * Cycle-level model of one streaming multiprocessor (paper Section 5.1).
 *
 * The model is trace driven: each resident warp owns an InstrStream
 * produced by the kernel model (wrapped in a SpillInjector when the
 * launch allocates fewer registers than the kernel needs). Each cycle the
 * two-level scheduler picks one ready active warp and issues its next
 * instruction; bank and arbitration conflicts delay the issue port by the
 * Section 6.1 penalty model; global accesses probe the single-ported tag
 * array and either hit in the cache or queue on the SM's DRAM bandwidth
 * share. Warps that hit a dependence on a long-latency load are
 * descheduled (writing their LRF/ORF state back to the MRF) and
 * reactivated when the load returns. CTAs are launched in waves as slots
 * free up; barriers synchronize the warps of a CTA.
 *
 * Idle stretches are skipped by advancing the clock directly to the next
 * interesting event, so DRAM-bound phases simulate quickly.
 */

#ifndef UNIMEM_SM_SM_HH
#define UNIMEM_SM_SM_HH

#include <memory>
#include <queue>
#include <vector>

#include "arch/kernel_model.hh"
#include "common/ownership.hh"
#include "core/conflict_model.hh"
#include "mem/coalescer.hh"
#include "mem/dram_queue.hh"
#include "mem/footprint_cache.hh"
#include "sched/scoreboard.hh"
#include "sm/sm_config.hh"
#include "sm/tex_unit.hh"

namespace unimem {

/** One-shot simulator: construct, run(), read stats. */
class SmModel
{
  public:
    /**
     * @param cfg run configuration
     * @param kernel workload
     * @param chipQueue if non-null, global/texture DRAM traffic is
     *        recorded into this externally owned queue instead of
     *        being timed against a private DramModel; the chip-level
     *        weave phase replays it and delivers completions through
     *        deliverLoad()/noteDrain() (bound-weave co-simulation)
     */
    SmModel(const SmRunConfig& cfg, const KernelModel& kernel,
            DramRequestQueue* chipQueue = nullptr);

    /** Run the kernel's whole grid share to completion. */
    const SmStats& run();

    // -- Steppable interface for chip-level co-simulation ------------

    /** Launch the initial CTA wave (idempotent). */
    void start();

    /**
     * Advance simulation until the local clock reaches @p limit or the
     * SM finishes. May overshoot the limit by one scheduling decision.
     * @return the local clock after advancing.
     */
    Cycle advance(Cycle limit);

    /** All CTAs retired? */
    bool finished() const { return started_ && residentWarps_ == 0; }

    /** Local clock. */
    Cycle now() const { return now_; }

    /** Finalize statistics once finished (idempotent). */
    const SmStats& finalize();

    const SmStats& stats() const { return stats_; }

    // -- Weave-phase delivery (deferred-DRAM mode only) --------------

    /**
     * Deliver the replayed completion of a deferred load/texture group.
     * Pushes the wakeup event exactly as the immediate path would and,
     * when the scoreboard entry still holds @p placeholder (i.e. no
     * younger writer overtook the load), installs the real completion
     * cycle in place of the sentinel.
     */
    void deliverLoad(u32 warp, u32 gen, RegId reg, Cycle completion,
                     Cycle placeholder, bool trackCompletion);

    /** Fold a replayed drain/completion into the end-of-run clock. */
    void
    noteDrain(Cycle c)
    {
        ownership::check(deliveryOwner_, "SmModel::noteDrain");
        if (c > lastCompletion_)
            lastCompletion_ = c;
    }

    /**
     * Chip mode: restrict deliverLoad()/noteDrain() to @p owner (the
     * weaver). A bound-phase worker calling a delivery entry point is
     * exactly the cross-SM mutation the bound-weave contract forbids.
     */
    void setDeliveryOwner(ownership::Actor owner)
    {
        deliveryOwner_ = owner;
    }

    /**
     * True when advance() returned before its limit because an
     * unresolved deferred completion fences further scheduling; the
     * chip must weave before calling advance() again.
     */
    bool
    stalledOnWeave(Cycle limit) const
    {
        return queue_ != nullptr && residentWarps_ > 0 && now_ < limit &&
               now_ >= queue_->stallBound();
    }

    /** One scheduler decision (order-trace tests and debugging). */
    struct IssueRecord
    {
        Cycle cycle;
        u32 warp;
        u64 warpGlobalId;
        Opcode op;
    };

    /**
     * Record every issue into @p sink (nullptr disables). The sequence
     * of records is part of the model's deterministic contract: the
     * scheduler-order golden test asserts it byte-for-byte.
     */
    void setIssueTrace(std::vector<IssueRecord>* sink)
    {
        issueTrace_ = sink;
    }

    /**
     * One issued shared-memory instruction's conflict accounting, as
     * charged by the simulator (footprint-cache replays included).
     * Within one warp the records appear in program order, so a static
     * replay of that warp's trace can be compared element-wise — the
     * bank-conflict differential cross-check pass does exactly that.
     */
    struct SharedConflictRecord
    {
        u64 warpGlobalId;
        u32 dataMaxPerBank;
        u32 distinctWords;
        u32 distinctChunks;
    };

    /** Record every issued shared op into @p sink (nullptr disables). */
    void setSharedConflictTrace(std::vector<SharedConflictRecord>* sink)
    {
        sharedTrace_ = sink;
    }

    /**
     * High-water mark of the livelock guard's no-progress counter
     * (advance-loop iterations without the clock moving). Regression
     * tests assert it stays O(1) regardless of kernel length or how
     * the run is sliced into bounded advance(limit) calls.
     */
    u64 guardPeak() const { return guardPeak_; }

    /**
     * Static-instruction footprint cache (test/diagnostic hook; its
     * counters are deliberately not part of SmStats so cached and
     * uncached runs export identical statistics).
     */
    FootprintCache<ConflictOutcome>& footprintCache()
    {
        return footprints_;
    }

    const FootprintStats& footprintStats() const
    {
        return footprints_.stats();
    }

  private:
    /**
     * Per-warp *cold* state: everything the scheduler inner loop does
     * not touch while deciding who issues next. Held by value so the
     * stream's chunk buffer and the register-file bookkeeping are
     * pooled across CTA relaunches (reset, not reallocated, in
     * launchCta). The Scoreboard alone is ~4 KB, which is exactly why
     * the hot per-warp fields live in the parallel arrays below
     * instead of here (DESIGN.md Section 12): with them embedded, two
     * consecutive warps' ready cycles were ~5 KB apart and every
     * scheduler touch was a guaranteed L1 miss.
     */
    struct WarpCold
    {
        InstrStream stream;
        Scoreboard sb;
        WarpRegFile rf;
        u32 ctaSlot = 0;
        u64 warpGlobalId = 0;
    };

    /**
     * Bits of hotFlags_[w] — the warp's entire scheduler-visible
     * boolean state in one byte, so the whole SM's flag set (≤64
     * warps) fits in a single cache line.
     */
    enum : u8 {
        kWfResident = 1u << 0,
        kWfAtBarrier = 1u << 1,

        /**
         * Cached readiness of the stream head (DESIGN.md Section 9),
         * valid only while kWfCacheValid: the head and its scoreboard
         * entries can change only through this warp's own issue (pop +
         * setPending), a load completion (clearPending), or a CTA
         * relaunch, and each of those sites clears the flag. HeadNull
         * and DependsLL mirror the refresh outcome for housekeeping
         * (retire vs. deschedule) and wakeup-eligibility decisions.
         */
        kWfHeadNull = 1u << 2,
        kWfDependsLL = 1u << 3,
        kWfCacheValid = 1u << 4,

        /** Queued in checkList_ for the next housekeeping pass? */
        kWfDirty = 1u << 5,
    };

    /**
     * Fixed-capacity ring of warp indices awaiting housekeeping.
     * Capacity is the warp count rounded up to a power of two;
     * entries are deduplicated by kWfDirty before pushing, so the
     * ring can never overflow. A ring rather than a vector so the
     * housekeeping queue owns exactly one small allocation for the
     * whole run and drains without touching capacity bookkeeping.
     */
    class IndexRing
    {
      public:
        void
        reset(u32 minCapacity)
        {
            u32 cap = 1;
            while (cap < minCapacity)
                cap <<= 1;
            buf_.assign(cap, 0);
            mask_ = cap - 1;
            head_ = 0;
            size_ = 0;
        }

        void
        push(u32 v)
        {
            buf_[(head_ + size_) & mask_] = v;
            ++size_;
        }

        u32 size() const { return size_; }
        bool empty() const { return size_ == 0; }
        u32 at(u32 i) const { return buf_[(head_ + i) & mask_]; }

        void
        clear()
        {
            head_ = (head_ + size_) & mask_;
            size_ = 0;
        }

      private:
        std::vector<u32> buf_;
        u32 mask_ = 0;
        u32 head_ = 0;
        u32 size_ = 0;
    };

    struct CtaSlot
    {
        std::vector<u32> warps; // warp slot indices
        u32 warpsRemaining = 0;
        u32 barrierWaiting = 0;
        bool occupied = false;
    };

    struct LoadEvent
    {
        Cycle at;
        u32 warp;
        u32 gen;
        RegId reg;

        /**
         * Strict total order so the heap's pop order is a function of
         * the event multiset alone, never of insertion history. The
         * deferred-DRAM engine pushes the same events at a different
         * time than the immediate engine (at the weave instead of at
         * issue), so anything weaker would let same-cycle wakeups
         * drain in engine-dependent order.
         */
        bool
        operator>(const LoadEvent& o) const
        {
            if (at != o.at)
                return at > o.at;
            if (warp != o.warp)
                return warp > o.warp;
            if (gen != o.gen)
                return gen > o.gen;
            return reg > o.reg;
        }
    };

    void launchCta(u32 ctaSlot);

    /**
     * Wake warps whose loads completed. The empty/not-yet-due check is
     * inline so the per-cycle fast path costs two compares, not a call.
     */
    void
    processEvents()
    {
        if (!events_.empty() && events_.top().at <= now_)
            drainDueEvents();
    }

    void drainDueEvents();
    void housekeeping();
    bool warpReady(u32 w);
    void issue(u32 w);
    void retireWarp(u32 w);
    void releaseBarrier(CtaSlot& cta);
    Cycle nextInterestingCycle();

    /** Recompute warp @p w's hot readiness from its stream/scoreboard. */
    void refreshReadyCache(u32 w);

    /** Queue @p w for the next housekeeping pass (deduplicated). */
    void
    markDirty(u32 w)
    {
        if (!(hotFlags_[w] & kWfDirty)) {
            hotFlags_[w] |= kWfDirty;
            checkList_.push(w);
        }
    }

    void execCompute(u32 w, const WarpInstr& in, Cycle issueAt);
    void execShared(u32 w, const WarpInstr& in, Cycle issueAt,
                    const ConflictOutcome& co);
    void execGlobal(u32 w, const WarpInstr& in, Cycle issueAt,
                    FootprintCache<ConflictOutcome>::MemEntry* fp);
    void execTexture(u32 w, const WarpInstr& in, Cycle issueAt);
    void execBarrier(u32 w);

    SmRunConfig cfg_;
    const KernelModel& kernel_;

    /** Hoisted kernel_.params() — hot members read it every launch. */
    const KernelParams& kp_;

    ConflictModel conflicts_;
    FootprintCache<ConflictOutcome> footprints_;
    TwoLevelScheduler sched_;
    DataCache cache_;
    DramModel ownDram_;
    DramModel ownTexDram_;
    /** Non-null in chip mode: record DRAM traffic instead of timing it. */
    DramRequestQueue* queue_;
    TexUnit tex_;

    /**
     * Struct-of-arrays hot state, indexed by warp slot (DESIGN.md
     * Section 12). hotReady_[w] is the *scan key*: the cached ready
     * cycle of the head, or kCycleNever when the head is null or
     * depends on a pending long-latency load. Both the issue-side
     * readiness test and the idle-jump scan reduce to comparing this
     * one contiguous Cycle array against now_; at the maximum 64
     * warps the keys span four cache lines and the flag bytes one.
     */
    std::vector<Cycle> hotReady_;
    std::vector<u8> hotFlags_;

    /** Warp instance generation — filters stale in-flight events. */
    std::vector<u32> hotGen_;

    std::vector<WarpCold> cold_;
    std::vector<CtaSlot> ctas_;

    std::priority_queue<LoadEvent, std::vector<LoadEvent>,
                        std::greater<LoadEvent>>
        events_;

    Cycle now_ = 0;
    Cycle issueFreeAt_ = 0;
    Cycle memPortFreeAt_ = 0;
    Cycle tagFreeAt_ = 0;
    Cycle lastCompletion_ = 0;

    u32 nextCta_ = 0;
    u32 residentWarps_ = 0;
    bool started_ = false;
    bool finalized_ = false;

    /**
     * Livelock guard: iterations of the advance loop since the local
     * clock last moved. Every legitimate path advances now_ within a
     * handful of iterations, so the counter resets constantly; unlike a
     * cumulative cycle budget it cannot trip on long kernels or on many
     * interleaved bounded advance(limit) calls (chip co-simulation).
     */
    u64 guardNoProgress_ = 0;
    u64 guardPeak_ = 0;
    Cycle guardLastNow_ = 0;

    /**
     * Memoized min over active warps inside nextInterestingCycle()
     * (DESIGN.md Section 9). Reused only while no scheduler, stream,
     * or scoreboard mutation occurred and the memo still lies in the
     * future; any such mutation clears scanMemoValid_.
     */
    Cycle scanMemo_ = 0;
    bool scanMemoValid_ = false;

    /** Warps needing a housekeeping look (just issued or activated). */
    IndexRing checkList_;

    /** Activation sink the scheduler appends to (drained each pass). */
    std::vector<u32> activations_;

    /** Per-cycle scratch buffers (reused, never reallocated when hot). */
    std::vector<u32> activeScratch_;
    std::vector<CoalescedAccess> coalesceScratch_;

    std::vector<IssueRecord>* issueTrace_ = nullptr;
    std::vector<SharedConflictRecord>* sharedTrace_ = nullptr;

    ownership::Actor deliveryOwner_ = ownership::kNoActor;

#ifndef NDEBUG
    /**
     * UNIMEM_SOA_AUDIT=1 (Debug builds): after every housekeeping
     * pass and at finalize, recompute each warp's hot entries from
     * its cold stream/scoreboard state and panic on any divergence —
     * a stale readiness cache, a dropped dirty mark, or a resident
     * count drift. Reads only already-buffered stream heads, so it
     * cannot perturb the simulation it is checking.
     */
    bool audit_ = false;
    void auditHotState();
#endif

    SmStats stats_;
};

/** Convenience: build the config from an allocation and run. */
SmStats runKernel(const SmRunConfig& cfg, const KernelModel& kernel);

} // namespace unimem

#endif // UNIMEM_SM_SM_HH
