#include "sm/sm.hh"

#include <algorithm>

#include "arch/spill_injector.hh"
#include "common/log.hh"
#include "mem/coalescer.hh"

namespace unimem {

SmModel::SmModel(const SmRunConfig& cfg, const KernelModel& kernel,
                 DramModel* sharedDram, DramModel* sharedTexDram)
    : cfg_(cfg), kernel_(kernel), kp_(kernel.params()),
      conflicts_(cfg.design, cfg.aggressiveUnified),
      sched_(cfg.activeSetSize),
      cache_(cfg.partition.cacheBytes, 4, cfg.cachePolicy),
      ownDram_(cfg.dramBytesPerCycle, cfg.lat.dram),
      ownTexDram_(cfg.dramBytesPerCycle, cfg.lat.dram),
      dram_(sharedDram != nullptr ? sharedDram : &ownDram_),
      texDram_(sharedTexDram != nullptr ? sharedTexDram : &ownTexDram_),
      tex_(cfg.texCacheBytes, cfg.lat.texture, texDram_)
{
    kp_.validate();
    if (!cfg_.launch.feasible)
        fatal("SmModel: infeasible launch for kernel %s",
              kp_.name.c_str());

    u32 warps_per_cta = kp_.warpsPerCta();
    u32 num_warps = cfg_.launch.ctas * warps_per_cta;
    if (num_warps == 0 || num_warps > kMaxWarpsPerSm)
        fatal("SmModel: %u resident warps out of range", num_warps);

    warps_.resize(num_warps);
    ctas_.resize(cfg_.launch.ctas);
    for (u32 c = 0; c < cfg_.launch.ctas; ++c) {
        ctas_[c].warps.reserve(warps_per_cta);
        for (u32 w = 0; w < warps_per_cta; ++w)
            ctas_[c].warps.push_back(c * warps_per_cta + w);
    }
    activeScratch_.reserve(cfg_.activeSetSize);
    coalesceScratch_.reserve(kWarpWidth);
}

void
SmModel::launchCta(u32 ctaSlot)
{
    CtaSlot& cta = ctas_[ctaSlot];
    const u32 warps_per_cta = kp_.warpsPerCta();

    u32 cta_id = nextCta_++;
    cta.occupied = true;
    cta.warpsRemaining = warps_per_cta;
    cta.barrierWaiting = 0;

    SpillConfig spill;
    spill.neededRegs = kp_.regsPerThread;
    spill.allocatedRegs = cfg_.launch.regsPerThread;
    spill.multiplier = cfg_.launch.spillMultiplier;

    // When the launch allocates the full register budget and the curve
    // injects nothing, the SpillInjector is a pure pass-through; skip
    // the wrapper (and its per-chunk copy) entirely.
    const bool needs_spill =
        spill.active() || spill.allocatedRegs < spill.neededRegs;

    RfHierarchyConfig rf_cfg;
    rf_cfg.enabled = cfg_.rfHierarchy;

    for (u32 i = 0; i < cta.warps.size(); ++i) {
        u32 slot = cta.warps[i];
        WarpSlot& ws = warps_[slot];

        WarpCtx ctx;
        ctx.ctaId = cta_id;
        ctx.warpInCta = i;
        ctx.warpsPerCta = warps_per_cta;
        ctx.threadsPerCta = kp_.ctaThreads;
        ctx.seed = cfg_.seed;

        u64 warp_gid = static_cast<u64>(cta_id) * warps_per_cta + i;
        std::unique_ptr<WarpProgram> prog = kernel_.warpProgram(ctx);
        if (needs_spill)
            prog = std::make_unique<SpillInjector>(std::move(prog),
                                                   spill, warp_gid);

        ws.stream.reset(std::move(prog));
        ws.sb.reset();
        ws.rf.reset(rf_cfg, slot);
        ws.resident = true;
        ws.atBarrier = false;
        ws.ctaSlot = ctaSlot;
        ++ws.gen;
        ws.warpGlobalId = warp_gid;

        sched_.addWarp(slot);
        ++residentWarps_;
    }
}

void
SmModel::retireWarp(u32 w)
{
    WarpSlot& ws = warps_[w];
    stats_.rf.merge(ws.rf.counts());
    sched_.retire(w);
    ws.resident = false;
    ws.stream.release();
    ++ws.gen; // invalidate in-flight load events
    --residentWarps_;

    CtaSlot& cta = ctas_[ws.ctaSlot];
    if (--cta.warpsRemaining == 0) {
        cta.occupied = false;
        ++stats_.ctasExecuted;
        if (nextCta_ < kp_.gridCtas)
            launchCta(ws.ctaSlot);
    }
}

void
SmModel::drainDueEvents()
{
    // Caller (the inline processEvents) has already established that
    // at least one event is due.
    do {
        LoadEvent ev = events_.top();
        events_.pop();
        WarpSlot& ws = warps_[ev.warp];
        if (ws.gen != ev.gen || !ws.resident)
            continue;
        ws.sb.clearPending(ev.reg);
        if (ws.atBarrier || sched_.isActive(ev.warp))
            continue;
        const WarpInstr* next = ws.stream.peek();
        if (next == nullptr || !ws.sb.dependsOnLongLatency(*next))
            sched_.signalEligible(ev.warp);
    } while (!events_.empty() && events_.top().at <= now_);
}

void
SmModel::housekeeping()
{
    // Snapshot into a reused scratch buffer: retire and deschedule
    // mutate the active list, and a fresh vector here would put one
    // heap allocation on every simulated cycle.
    activeScratch_ = sched_.activeWarps();
    for (u32 w : activeScratch_) {
        WarpSlot& ws = warps_[w];
        const WarpInstr* in = ws.stream.peek();
        if (in == nullptr) {
            retireWarp(w);
        } else if (ws.sb.dependsOnLongLatency(*in)) {
            // All live values must reside in the MRF while inactive.
            ws.rf.flushToMrf();
            sched_.deschedule(w);
        }
    }
}

bool
SmModel::warpReady(u32 w) const
{
    const WarpSlot& ws = warps_[w];
    if (!ws.resident || ws.atBarrier)
        return false;
    const WarpInstr* in = const_cast<InstrStream&>(ws.stream).peek();
    if (in == nullptr)
        return false;
    return ws.sb.readyCycle(*in) <= now_;
}

void
SmModel::releaseBarrier(CtaSlot& cta)
{
    cta.barrierWaiting = 0;
    for (u32 w : cta.warps) {
        WarpSlot& ws = warps_[w];
        if (ws.resident && ws.atBarrier) {
            ws.atBarrier = false;
            sched_.signalEligible(w);
        }
    }
}

void
SmModel::execBarrier(u32 w)
{
    WarpSlot& ws = warps_[w];
    CtaSlot& cta = ctas_[ws.ctaSlot];
    ++stats_.barriers;

    ws.atBarrier = true;
    ws.rf.flushToMrf();
    sched_.deschedule(w);
    if (++cta.barrierWaiting == cta.warpsRemaining)
        releaseBarrier(cta);
}

void
SmModel::execCompute(u32 w, const WarpInstr& in, Cycle issueAt)
{
    WarpSlot& ws = warps_[w];
    u32 latency = in.op == Opcode::Sfu ? cfg_.lat.sfu : cfg_.lat.alu;
    if (in.hasDst()) {
        Cycle done = issueAt + latency;
        ws.sb.setPending(in.dst, done, false);
        lastCompletion_ = std::max(lastCompletion_, done);
    }
}

void
SmModel::execShared(u32 w, const WarpInstr& in, Cycle issueAt,
                    const ConflictOutcome& co)
{
    WarpSlot& ws = warps_[w];
    u64 bytes = cfg_.design == DesignKind::Unified
                    ? static_cast<u64>(co.distinctChunks) * kUnifiedBankWidth
                    : static_cast<u64>(co.distinctWords) *
                          kPartitionedBankWidth;
    if (in.op == Opcode::LdShared) {
        stats_.sharedReadBytes += bytes;
        Cycle done = issueAt + cfg_.lat.sharedMem;
        if (in.hasDst()) {
            ws.sb.setPending(in.dst, done, false);
            lastCompletion_ = std::max(lastCompletion_, done);
        }
    } else {
        stats_.sharedWriteBytes += bytes;
    }
}

void
SmModel::execGlobal(u32 w, const WarpInstr& in, Cycle issueAt)
{
    WarpSlot& ws = warps_[w];
    coalesce(in, coalesceScratch_);
    const std::vector<CoalescedAccess>& lines = coalesceScratch_;
    if (lines.empty())
        return;

    const bool unified = cfg_.design == DesignKind::Unified;
    const bool is_load = isLoad(in.op);

    Cycle tag_time = std::max(issueAt, tagFreeAt_);
    Cycle completion = 0;

    for (const CoalescedAccess& acc : lines) {
        tag_time += 1; // single-ported tag array
        u64 hit_bytes =
            unified ? static_cast<u64>(
                          (acc.bytesTouched + kUnifiedBankWidth - 1) /
                          kUnifiedBankWidth) *
                          kUnifiedBankWidth
                    : kCacheLineBytes;
        constexpr u32 line_sectors = kCacheLineBytes / kDramSectorBytes;
        if (is_load) {
            if (cache_.enabled()) {
                if (cache_.read(acc.lineAddr)) {
                    completion = std::max(
                        completion, tag_time + cfg_.lat.cacheHit);
                    stats_.cacheReadBytes += hit_bytes;
                } else {
                    Cycle ready = dram_->read(tag_time, line_sectors);
                    if (cache_.fill(acc.lineAddr)) {
                        // Dirty victim (write-back mode) drains first.
                        dram_->write(tag_time, line_sectors);
                    }
                    stats_.cacheWriteBytes += kCacheLineBytes;
                    completion = std::max(completion, ready);
                }
            } else {
                Cycle ready = dram_->read(tag_time, acc.numSectors());
                completion = std::max(completion, ready);
            }
        } else if (cfg_.cachePolicy == WritePolicy::WriteBack &&
                   cache_.enabled()) {
            // Ablation mode: write-back with write-allocate.
            if (cache_.write(acc.lineAddr)) {
                stats_.cacheWriteBytes += hit_bytes;
            } else {
                Cycle ready = dram_->read(tag_time, line_sectors);
                if (cache_.fill(acc.lineAddr))
                    dram_->write(tag_time, line_sectors);
                cache_.markDirty(acc.lineAddr);
                stats_.cacheWriteBytes += kCacheLineBytes + hit_bytes;
                lastCompletion_ = std::max(lastCompletion_, ready);
            }
        } else {
            // Paper design: write-through, no write-allocate.
            if (cache_.enabled() && cache_.write(acc.lineAddr))
                stats_.cacheWriteBytes += hit_bytes;
            Cycle drained = dram_->write(tag_time, acc.numSectors());
            lastCompletion_ = std::max(lastCompletion_, drained);
        }
    }
    tagFreeAt_ = tag_time;
    stats_.tagSerializationCycles += lines.size() - 1;

    if (is_load && in.hasDst()) {
        ws.sb.setPending(in.dst, completion, true);
        lastCompletion_ = std::max(lastCompletion_, completion);
        events_.push(LoadEvent{completion, w, ws.gen, in.dst});
    }
}

void
SmModel::execTexture(u32 w, const WarpInstr& in, Cycle issueAt)
{
    WarpSlot& ws = warps_[w];
    Cycle done = tex_.access(issueAt, in);
    lastCompletion_ = std::max(lastCompletion_, done);
    if (in.hasDst()) {
        ws.sb.setPending(in.dst, done, true);
        events_.push(LoadEvent{done, w, ws.gen, in.dst});
    }
}

void
SmModel::issue(u32 w)
{
    WarpSlot& ws = warps_[w];
    const WarpInstr in = *ws.stream.peek();
    ws.stream.pop();

    ++stats_.warpInstrs;
    stats_.threadInstrs += in.numActive();
    ++stats_.issuedByOp[static_cast<size_t>(in.op)];

    if (in.op == Opcode::Bar) {
        stats_.conflictHist.record(0);
        issueFreeAt_ = now_ + 1;
        execBarrier(w);
        return;
    }

    // Operand fetch through the RF hierarchy; long-latency load results
    // bypass the LRF/ORF and land in the MRF (the warp will usually be
    // descheduled before consuming them).
    u8 mrf_banks[3];
    bool ll_load = isLoad(in.op) && isLongLatency(in.op);
    u32 num_mrf = ws.rf.accessOperands(in, ll_load, mrf_banks);

    ConflictOutcome co = conflicts_.evaluate(in, mrf_banks, num_mrf);
    stats_.conflictHist.record(co.maxPerBank);
    u32 reg_pen = cfg_.conflictPenalties ? co.regPenalty : 0;
    u32 mem_pen =
        cfg_.conflictPenalties ? co.penalty - co.regPenalty : 0;
    stats_.conflictPenaltyCycles += reg_pen + mem_pen;

    // Operand bank conflicts stall the issue stage; data bank conflicts
    // serialize in the memory access port (instructions from other
    // warps keep issuing behind them).
    issueFreeAt_ = now_ + 1 + reg_pen;
    Cycle exec_at = now_;
    if (isMemOp(in.op) && in.op != Opcode::Tex) {
        Cycle start = std::max(now_, memPortFreeAt_);
        memPortFreeAt_ = start + 1 + mem_pen;
        exec_at = start + mem_pen;
    }

    switch (in.op) {
      case Opcode::IntAlu:
      case Opcode::FpAlu:
      case Opcode::Sfu:
        execCompute(w, in, now_);
        break;
      case Opcode::LdShared:
      case Opcode::StShared:
        execShared(w, in, exec_at, co);
        break;
      case Opcode::LdGlobal:
      case Opcode::StGlobal:
      case Opcode::LdLocal:
      case Opcode::StLocal:
        execGlobal(w, in, exec_at);
        break;
      case Opcode::Tex:
        execTexture(w, in, now_);
        break;
      case Opcode::Bar:
        break; // handled above
    }

    if (ws.stream.exhausted())
        retireWarp(w);
}

Cycle
SmModel::nextInterestingCycle() const
{
    Cycle t = kCycleNever;
    if (!events_.empty())
        t = std::min(t, events_.top().at);
    if (issueFreeAt_ > now_)
        t = std::min(t, issueFreeAt_);
    for (u32 w : sched_.activeWarps()) {
        const WarpSlot& ws = warps_[w];
        if (!ws.resident || ws.atBarrier)
            continue;
        const WarpInstr* in =
            const_cast<InstrStream&>(ws.stream).peek();
        if (in == nullptr || ws.sb.dependsOnLongLatency(*in))
            continue;
        Cycle ready = ws.sb.readyCycle(*in);
        if (ready > now_)
            t = std::min(t, ready);
    }
    return t;
}

void
SmModel::start()
{
    if (started_)
        return;
    started_ = true;
    const u32 total_ctas = kp_.gridCtas;
    for (u32 c = 0; c < ctas_.size() && nextCta_ < total_ctas; ++c)
        launchCta(c);
}

Cycle
SmModel::advance(Cycle limit)
{
    if (!started_)
        panic("SmModel::advance before start");
    const u64 guard_limit = 50ull * 1000 * 1000 * 1000;

    while (residentWarps_ > 0 && now_ < limit) {
        if (++guard_ > guard_limit)
            panic("SmModel: cycle guard tripped (livelock?)");

        processEvents();
        housekeeping();
        if (residentWarps_ == 0)
            break;

        if (issueFreeAt_ > now_) {
            now_ = std::min(issueFreeAt_, nextInterestingCycle());
            continue;
        }

        u32 w = sched_.pickIssue([this](u32 cand) {
            return warpReady(cand);
        });
        if (w == TwoLevelScheduler::kNone) {
            Cycle t = nextInterestingCycle();
            if (t == kCycleNever) {
                if (residentWarps_ > 0)
                    panic("SmModel: deadlock with %u resident warps "
                          "(unbalanced barriers?)",
                          residentWarps_);
                break;
            }
            now_ = std::max(t, now_ + 1);
            continue;
        }
        issue(w);
    }
    return now_;
}

const SmStats&
SmModel::finalize()
{
    if (!finished())
        panic("SmModel::finalize before the SM finished");
    if (finalized_)
        return stats_;
    finalized_ = true;

    // With a private DRAM its drain time belongs to this SM; a shared
    // chip DRAM's residual drain is accounted for by the chip model.
    Cycle drain = dram_ == &ownDram_ ? ownDram_.nextFree() : 0;
    Cycle tex_drain =
        texDram_ == &ownTexDram_ ? ownTexDram_.nextFree() : 0;
    stats_.cycles =
        std::max({now_, lastCompletion_, drain, tex_drain});
    stats_.dirtyLinesAtEnd = cache_.dirtyLineCount();
    stats_.cache = cache_.stats();
    // Shared (chip-level) DRAM statistics belong to the chip model;
    // only private DRAM traffic is reported per SM.
    if (dram_ == &ownDram_)
        stats_.dram = ownDram_.stats();
    if (texDram_ == &ownTexDram_)
        stats_.texDram = ownTexDram_.stats();
    stats_.sched = sched_.stats();
    return stats_;
}

const SmStats&
SmModel::run()
{
    if (started_)
        panic("SmModel::run on an already started model");
    start();
    advance(kCycleNever);
    return finalize();
}

SmStats
runKernel(const SmRunConfig& cfg, const KernelModel& kernel)
{
    SmModel sm(cfg, kernel);
    return sm.run();
}

} // namespace unimem
