#include "sm/sm.hh"

#include <algorithm>
#include <cstdlib>

#include "arch/spill_injector.hh"
#include "common/log.hh"
#include "mem/coalescer.hh"

namespace unimem {

SmModel::SmModel(const SmRunConfig& cfg, const KernelModel& kernel,
                 DramRequestQueue* chipQueue)
    : cfg_(cfg), kernel_(kernel), kp_(kernel.params()),
      conflicts_(cfg.design, cfg.aggressiveUnified),
      sched_(cfg.activeSetSize),
      cache_(cfg.partition.cacheBytes, 4, cfg.cachePolicy),
      ownDram_(cfg.dramBytesPerCycle, cfg.lat.dram),
      ownTexDram_(cfg.dramBytesPerCycle, cfg.lat.dram),
      queue_(chipQueue),
      tex_(cfg.texCacheBytes, cfg.lat.texture, &ownTexDram_)
{
    kp_.validate();
    if (!cfg_.launch.feasible)
        fatal("SmModel: infeasible launch for kernel %s",
              kp_.name.c_str());

    u32 warps_per_cta = kp_.warpsPerCta();
    u32 num_warps = cfg_.launch.ctas * warps_per_cta;
    if (num_warps == 0 || num_warps > kMaxWarpsPerSm)
        fatal("SmModel: %u resident warps out of range", num_warps);

    hotReady_.assign(num_warps, 0);
    hotFlags_.assign(num_warps, 0);
    hotGen_.assign(num_warps, 0);
    cold_.resize(num_warps);
    ctas_.resize(cfg_.launch.ctas);
    for (u32 c = 0; c < cfg_.launch.ctas; ++c) {
        ctas_[c].warps.reserve(warps_per_cta);
        for (u32 w = 0; w < warps_per_cta; ++w)
            ctas_[c].warps.push_back(c * warps_per_cta + w);
    }
    activeScratch_.reserve(cfg_.activeSetSize);
    coalesceScratch_.reserve(kWarpWidth);
    checkList_.reset(num_warps);
    activations_.reserve(num_warps);
    sched_.setActivationSink(&activations_);
#ifndef NDEBUG
    audit_ = std::getenv("UNIMEM_SOA_AUDIT") != nullptr;
#endif
}

void
SmModel::launchCta(u32 ctaSlot)
{
    CtaSlot& cta = ctas_[ctaSlot];
    const u32 warps_per_cta = kp_.warpsPerCta();

    u32 cta_id = nextCta_++;
    cta.occupied = true;
    cta.warpsRemaining = warps_per_cta;
    cta.barrierWaiting = 0;

    SpillConfig spill;
    spill.neededRegs = kp_.regsPerThread;
    spill.allocatedRegs = cfg_.launch.regsPerThread;
    spill.multiplier = cfg_.launch.spillMultiplier;

    // When the launch allocates the full register budget and the curve
    // injects nothing, the SpillInjector is a pure pass-through; skip
    // the wrapper (and its per-chunk copy) entirely.
    const bool needs_spill =
        spill.active() || spill.allocatedRegs < spill.neededRegs;

    RfHierarchyConfig rf_cfg;
    rf_cfg.enabled = cfg_.rfHierarchy;

    for (u32 i = 0; i < cta.warps.size(); ++i) {
        u32 slot = cta.warps[i];
        WarpCold& wc = cold_[slot];

        WarpCtx ctx;
        ctx.ctaId = cta_id;
        ctx.warpInCta = i;
        ctx.warpsPerCta = warps_per_cta;
        ctx.threadsPerCta = kp_.ctaThreads;
        ctx.seed = cfg_.seed;

        u64 warp_gid = static_cast<u64>(cta_id) * warps_per_cta + i;
        std::unique_ptr<WarpProgram> prog = kernel_.warpProgram(ctx);
        if (needs_spill)
            prog = std::make_unique<SpillInjector>(std::move(prog),
                                                   spill, warp_gid);

        wc.stream.reset(std::move(prog));
        wc.sb.reset();
        wc.rf.reset(rf_cfg, slot);
        wc.ctaSlot = ctaSlot;
        wc.warpGlobalId = warp_gid;
        ++hotGen_[slot];
        // Resident, not at a barrier, readiness cache invalid; a still
        // pending dirty mark survives the relaunch (the ring entry is
        // live, so the flag must stay in sync with it).
        hotFlags_[slot] = (hotFlags_[slot] & kWfDirty) | kWfResident;

        sched_.addWarp(slot);
        ++residentWarps_;
    }
    scanMemoValid_ = false;
}

void
SmModel::retireWarp(u32 w)
{
    WarpCold& wc = cold_[w];
    stats_.rf.merge(wc.rf.counts());
    sched_.retire(w);
    hotFlags_[w] &= ~kWfResident;
    wc.stream.release();
    ++hotGen_[w]; // invalidate in-flight load events
    --residentWarps_;
    scanMemoValid_ = false;

    CtaSlot& cta = ctas_[wc.ctaSlot];
    if (--cta.warpsRemaining == 0) {
        cta.occupied = false;
        ++stats_.ctasExecuted;
        if (nextCta_ < kp_.gridCtas)
            launchCta(wc.ctaSlot);
    }
}

void
SmModel::drainDueEvents()
{
    // Caller (the inline processEvents) has already established that
    // at least one event is due.
    scanMemoValid_ = false;
    do {
        LoadEvent ev = events_.top();
        events_.pop();
        if (hotGen_[ev.warp] != ev.gen ||
            !(hotFlags_[ev.warp] & kWfResident))
            continue;
        cold_[ev.warp].sb.clearPending(ev.reg);
        // clearPending can flip the head's long-latency dependence, so
        // recompute the cached readiness (eagerly: the eligibility test
        // below needs it anyway).
        refreshReadyCache(ev.warp);
        u8 f = hotFlags_[ev.warp];
        if ((f & kWfAtBarrier) || sched_.isActive(ev.warp))
            continue;
        if ((f & kWfHeadNull) || !(f & kWfDependsLL))
            sched_.signalEligible(ev.warp);
    } while (!events_.empty() && events_.top().at <= now_);
}

void
SmModel::refreshReadyCache(u32 w)
{
    WarpCold& wc = cold_[w];
    u8 f = hotFlags_[w] & ~(kWfHeadNull | kWfDependsLL);
    // Scan-key encoding: a null head and a long-latency dependence both
    // map to kCycleNever. The head contributes to the idle-jump min
    // only when neither holds (exactly the cases the old scan skipped),
    // and the issue-side test `key <= now_` matches the old
    // `!headNull && readyAt <= now_` because a long-latency dependence
    // always has readyAt > now_ wherever readiness is consulted: due
    // load events are drained (clearPending + refresh) at the top of
    // every advance iteration, before any pickIssue.
    Cycle key = kCycleNever;
    const WarpInstr* in = wc.stream.peek();
    if (in == nullptr) {
        f |= kWfHeadNull;
    } else {
        Scoreboard::ReadyInfo info = wc.sb.readyInfo(*in);
        if (info.longLatency)
            f |= kWfDependsLL;
        else
            key = info.readyAt;
    }
    hotReady_[w] = key;
    hotFlags_[w] = f | kWfCacheValid;
}

void
SmModel::housekeeping()
{
    // A warp can need attention here (exhausted stream -> retire, head
    // blocked on a long-latency load -> deschedule) only after one of
    // two events: it issued, or it entered the active set. Both sites
    // queue the warp, so instead of rescanning the whole active set
    // every iteration we examine only the queued warps — the common
    // case is an empty list and an immediate return.
    for (u32 w : activations_)
        markDirty(w);
    activations_.clear();
    if (checkList_.empty())
        return;

    // Select queued ∩ active in current active-list order — the order
    // the snapshot-based scan processed them in — into a reused scratch
    // buffer: retire and deschedule mutate the active list. Warps
    // activated during processing are queued for the next pass, exactly
    // when the snapshot-based scan would first have seen them.
    //
    // Single queued warp (the just-issued one — the common case by far)
    // needs no ordering, so skip the active-list walk.
    activeScratch_.clear();
    if (checkList_.size() == 1) {
        u32 w = checkList_.at(0);
        hotFlags_[w] &= ~kWfDirty;
        checkList_.clear();
        if (sched_.isActive(w))
            activeScratch_.push_back(w);
    } else {
        for (u32 w : sched_.activeWarps())
            if (hotFlags_[w] & kWfDirty)
                activeScratch_.push_back(w);
        for (u32 i = 0; i < checkList_.size(); ++i)
            hotFlags_[checkList_.at(i)] &= ~kWfDirty;
        checkList_.clear();
    }

    for (u32 w : activeScratch_) {
        u8 f = hotFlags_[w];
        if (!(f & kWfCacheValid)) {
            refreshReadyCache(w);
            f = hotFlags_[w];
        }
        if (f & kWfHeadNull) {
            retireWarp(w);
        } else if (f & kWfDependsLL) {
            // All live values must reside in the MRF while inactive.
            cold_[w].rf.flushToMrf();
            sched_.deschedule(w);
            scanMemoValid_ = false;
        }
    }

#ifndef NDEBUG
    if (audit_)
        auditHotState();
#endif
}

bool
SmModel::warpReady(u32 w)
{
    u8 f = hotFlags_[w];
    if ((f & (kWfResident | kWfAtBarrier)) != kWfResident)
        return false;
    if (!(f & kWfCacheValid))
        refreshReadyCache(w);
    return hotReady_[w] <= now_;
}

void
SmModel::releaseBarrier(CtaSlot& cta)
{
    cta.barrierWaiting = 0;
    for (u32 w : cta.warps) {
        u8& f = hotFlags_[w];
        if ((f & (kWfResident | kWfAtBarrier)) ==
            (kWfResident | kWfAtBarrier)) {
            f &= ~kWfAtBarrier;
            sched_.signalEligible(w);
        }
    }
}

void
SmModel::execBarrier(u32 w)
{
    WarpCold& wc = cold_[w];
    CtaSlot& cta = ctas_[wc.ctaSlot];
    ++stats_.barriers;
    scanMemoValid_ = false;

    hotFlags_[w] |= kWfAtBarrier;
    wc.rf.flushToMrf();
    sched_.deschedule(w);
    if (++cta.barrierWaiting == cta.warpsRemaining)
        releaseBarrier(cta);
}

void
SmModel::execCompute(u32 w, const WarpInstr& in, Cycle issueAt)
{
    WarpCold& wc = cold_[w];
    u32 latency = in.op == Opcode::Sfu ? cfg_.lat.sfu : cfg_.lat.alu;
    if (in.hasDst()) {
        Cycle done = issueAt + latency;
        wc.sb.setPending(in.dst, done, false);
        lastCompletion_ = std::max(lastCompletion_, done);
    }
}

void
SmModel::execShared(u32 w, const WarpInstr& in, Cycle issueAt,
                    const ConflictOutcome& co)
{
    WarpCold& wc = cold_[w];
    u64 bytes = cfg_.design == DesignKind::Unified
                    ? static_cast<u64>(co.distinctChunks) * kUnifiedBankWidth
                    : static_cast<u64>(co.distinctWords) *
                          kPartitionedBankWidth;
    if (in.op == Opcode::LdShared) {
        stats_.sharedReadBytes += bytes;
        Cycle done = issueAt + cfg_.lat.sharedMem;
        if (in.hasDst()) {
            wc.sb.setPending(in.dst, done, false);
            lastCompletion_ = std::max(lastCompletion_, done);
        }
    } else {
        stats_.sharedWriteBytes += bytes;
    }
}

void
SmModel::execGlobal(u32 w, const WarpInstr& in, Cycle issueAt,
                    FootprintCache<ConflictOutcome>::MemEntry* fp)
{
    using Fp = FootprintCache<ConflictOutcome>;
    WarpCold& wc = cold_[w];
    if (fp != nullptr && fp->numLines <= Fp::kMaxInlineLines) {
        // Replay the coalesced-line footprint decoded for an earlier
        // dynamic instance of this exact (addresses included) key.
        coalesceScratch_.assign(fp->lines.begin(),
                                fp->lines.begin() + fp->numLines);
        footprints_.noteLineReplay();
    } else {
        coalesce(in, coalesceScratch_);
        if (fp != nullptr) {
            footprints_.noteLineRecompute();
            if (fp->numLines == Fp::kLinesUnknown) {
                if (coalesceScratch_.size() <= Fp::kMaxInlineLines) {
                    std::copy(coalesceScratch_.begin(),
                              coalesceScratch_.end(),
                              fp->lines.begin());
                    fp->numLines =
                        static_cast<u8>(coalesceScratch_.size());
                } else {
                    fp->numLines = Fp::kLinesOverflow;
                }
            }
        }
    }
    const std::vector<CoalescedAccess>& lines = coalesceScratch_;
    if (lines.empty())
        return;

    const bool unified = cfg_.design == DesignKind::Unified;
    const bool is_load = isLoad(in.op);

    Cycle tag_time = std::max(issueAt, tagFreeAt_);
    Cycle completion = 0;

    // Deferred-DRAM mode: misses of a load some register waits on form
    // a completion group; everything else records as fire-and-forget
    // traffic. Cache state (tags, LRU, dirty bits) evolves here exactly
    // as on the immediate path — only DRAM *timing* is deferred.
    u32 group = kNoGroup;
    if (queue_ != nullptr && is_load && in.hasDst())
        group = queue_->beginGroup(w, hotGen_[w], in.dst, 0);

    for (const CoalescedAccess& acc : lines) {
        tag_time += 1; // single-ported tag array
        u64 hit_bytes =
            unified ? static_cast<u64>(
                          (acc.bytesTouched + kUnifiedBankWidth - 1) /
                          kUnifiedBankWidth) *
                          kUnifiedBankWidth
                    : kCacheLineBytes;
        constexpr u32 line_sectors = kCacheLineBytes / kDramSectorBytes;
        if (is_load) {
            if (cache_.enabled()) {
                if (cache_.read(acc.lineAddr)) {
                    completion = std::max(
                        completion, tag_time + cfg_.lat.cacheHit);
                    stats_.cacheReadBytes += hit_bytes;
                } else {
                    if (queue_ != nullptr) {
                        queue_->recordRead(kDataDramChannel, tag_time,
                                           line_sectors, group, false);
                        if (cache_.fill(acc.lineAddr)) {
                            // Dirty victim (write-back mode) drains
                            // first.
                            queue_->recordWrite(kDataDramChannel,
                                                tag_time, line_sectors,
                                                false);
                        }
                    } else {
                        Cycle ready =
                            ownDram_.read(tag_time, line_sectors);
                        if (cache_.fill(acc.lineAddr))
                            ownDram_.write(tag_time, line_sectors);
                        completion = std::max(completion, ready);
                    }
                    stats_.cacheWriteBytes += kCacheLineBytes;
                }
            } else if (queue_ != nullptr) {
                queue_->recordRead(kDataDramChannel, tag_time,
                                   acc.numSectors(), group, false);
            } else {
                Cycle ready = ownDram_.read(tag_time, acc.numSectors());
                completion = std::max(completion, ready);
            }
        } else if (cfg_.cachePolicy == WritePolicy::WriteBack &&
                   cache_.enabled()) {
            // Ablation mode: write-back with write-allocate.
            if (cache_.write(acc.lineAddr)) {
                stats_.cacheWriteBytes += hit_bytes;
            } else {
                if (queue_ != nullptr) {
                    // The fill's completion feeds only the end-of-run
                    // clock; the weave folds it in via noteDrain().
                    queue_->recordRead(kDataDramChannel, tag_time,
                                       line_sectors, kNoGroup, true);
                    if (cache_.fill(acc.lineAddr))
                        queue_->recordWrite(kDataDramChannel, tag_time,
                                            line_sectors, false);
                } else {
                    Cycle ready = ownDram_.read(tag_time, line_sectors);
                    if (cache_.fill(acc.lineAddr))
                        ownDram_.write(tag_time, line_sectors);
                    lastCompletion_ = std::max(lastCompletion_, ready);
                }
                cache_.markDirty(acc.lineAddr);
                stats_.cacheWriteBytes += kCacheLineBytes + hit_bytes;
            }
        } else {
            // Paper design: write-through, no write-allocate.
            if (cache_.enabled() && cache_.write(acc.lineAddr))
                stats_.cacheWriteBytes += hit_bytes;
            if (queue_ != nullptr) {
                queue_->recordWrite(kDataDramChannel, tag_time,
                                    acc.numSectors(), true);
            } else {
                Cycle drained =
                    ownDram_.write(tag_time, acc.numSectors());
                lastCompletion_ = std::max(lastCompletion_, drained);
            }
        }
    }
    tagFreeAt_ = tag_time;
    stats_.tagSerializationCycles += lines.size() - 1;

    if (is_load && in.hasDst()) {
        if (group != kNoGroup &&
            queue_->endGroup(group, completion, true, true)) {
            // Completion unresolved until the weave: plant the sentinel
            // (descheduling sees the same long-latency dependence the
            // real value would create) and let deliverLoad() install
            // the replayed completion plus the wakeup event.
            wc.sb.setPending(in.dst, queue_->lastPlaceholder(), true);
        } else {
            wc.sb.setPending(in.dst, completion, true);
            lastCompletion_ = std::max(lastCompletion_, completion);
            events_.push(LoadEvent{completion, w, hotGen_[w], in.dst});
        }
    }
}

void
SmModel::execTexture(u32 w, const WarpInstr& in, Cycle issueAt)
{
    WarpCold& wc = cold_[w];
    if (queue_ != nullptr) {
        u32 group = queue_->beginGroup(w, hotGen_[w], in.dst,
                                       cfg_.lat.texture / 4);
        Cycle base = tex_.accessDeferred(issueAt, in, *queue_, group);
        if (queue_->endGroup(group, base, in.hasDst(), true)) {
            if (in.hasDst())
                wc.sb.setPending(in.dst, queue_->lastPlaceholder(),
                                 true);
            return;
        }
        // Every line hit the texture cache: the pipeline latency is the
        // exact completion, no weave needed.
        lastCompletion_ = std::max(lastCompletion_, base);
        if (in.hasDst()) {
            wc.sb.setPending(in.dst, base, true);
            events_.push(LoadEvent{base, w, hotGen_[w], in.dst});
        }
        return;
    }
    Cycle done = tex_.access(issueAt, in);
    lastCompletion_ = std::max(lastCompletion_, done);
    if (in.hasDst()) {
        wc.sb.setPending(in.dst, done, true);
        events_.push(LoadEvent{done, w, hotGen_[w], in.dst});
    }
}

void
SmModel::deliverLoad(u32 warp, u32 gen, RegId reg, Cycle completion,
                     Cycle placeholder, bool trackCompletion)
{
    ownership::check(deliveryOwner_, "SmModel::deliverLoad");
    if (trackCompletion)
        lastCompletion_ = std::max(lastCompletion_, completion);
    // Push the wakeup even when the warp instance is gone: the
    // immediate engine's event (pushed at issue time) also outlives a
    // retired warp — it is gen-filtered at drain time but participates
    // in idle-jump targeting until then.
    events_.push(LoadEvent{completion, warp, gen, reg});
    WarpCold& wc = cold_[warp];
    if (hotGen_[warp] == gen && (hotFlags_[warp] & kWfResident) &&
        wc.sb.pendingAt(reg) == placeholder) {
        wc.sb.setPending(reg, completion, true);
        hotFlags_[warp] &= ~kWfCacheValid;
    }
    scanMemoValid_ = false;
}

void
SmModel::issue(u32 w)
{
    WarpCold& wc = cold_[w];
    // Reference, not a copy: pop() only bumps the chunk cursor, and the
    // buffer cannot refill before the exhausted() check at the bottom
    // (nothing below peeks this warp's stream), so `in` stays valid for
    // the whole function.
    const WarpInstr& in = *wc.stream.peek();
    wc.stream.pop();
    // New head, and the exec handlers below touch the scoreboard.
    hotFlags_[w] &= ~kWfCacheValid;
    scanMemoValid_ = false;

    if (issueTrace_ != nullptr)
        issueTrace_->push_back({now_, w, wc.warpGlobalId, in.op});

    ++stats_.warpInstrs;
    stats_.threadInstrs += in.numActive();
    ++stats_.issuedByOp[static_cast<size_t>(in.op)];

    if (in.op == Opcode::Bar) {
        stats_.conflictHist.record(0);
        issueFreeAt_ = now_ + 1;
        execBarrier(w);
        return;
    }

    // Operand fetch through the RF hierarchy; long-latency load results
    // bypass the LRF/ORF and land in the MRF (the warp will usually be
    // descheduled before consuming them).
    u8 mrf_banks[3];
    bool ll_load = isLoad(in.op) && isLongLatency(in.op);
    u32 num_mrf = wc.rf.accessOperands(in, ll_load, mrf_banks);

    // Conflict evaluation through the footprint cache: the outcome is
    // a pure function of the key, so a verified hit replays the exact
    // numbers the model would recompute. Data-bank ops keep a pointer
    // to their entry so the global path can also replay its coalesced
    // lines without a second probe.
    FootprintCache<ConflictOutcome>::MemEntry* fp = nullptr;
    ConflictOutcome co;
    const bool data_banks = isMemOp(in.op) && in.op != Opcode::Tex;
    if (!footprints_.enabled()) {
        co = conflicts_.evaluate(in, mrf_banks, num_mrf);
    } else if (!data_banks) {
        u8 sig = mrfSignature(mrf_banks, num_mrf);
        if (const ConflictOutcome* hit = footprints_.findCompute(sig)) {
            co = *hit;
        } else {
            co = conflicts_.evaluate(in, mrf_banks, num_mrf);
            footprints_.insertCompute(sig, co);
        }
    } else {
        u8 sig = mrfSignature(mrf_banks, num_mrf);
        FootprintCache<ConflictOutcome>::MemProbe probe =
            footprints_.probeMem(in, sig);
        fp = probe.entry;
        if (probe.hit) {
            co = fp->outcome;
        } else {
            co = conflicts_.evaluate(in, mrf_banks, num_mrf);
            footprints_.claimMem(*fp, in, sig);
            fp->outcome = co;
        }
    }
    stats_.conflictHist.record(co.maxPerBank);
    if (sharedTrace_ != nullptr && isSharedSpace(in.op))
        sharedTrace_->push_back({wc.warpGlobalId, co.dataMaxPerBank,
                                 co.distinctWords, co.distinctChunks});
    u32 reg_pen = cfg_.conflictPenalties ? co.regPenalty : 0;
    u32 mem_pen =
        cfg_.conflictPenalties ? co.penalty - co.regPenalty : 0;
    stats_.conflictPenaltyCycles += reg_pen + mem_pen;

    // Operand bank conflicts stall the issue stage; data bank conflicts
    // serialize in the memory access port (instructions from other
    // warps keep issuing behind them).
    issueFreeAt_ = now_ + 1 + reg_pen;
    Cycle exec_at = now_;
    if (isMemOp(in.op) && in.op != Opcode::Tex) {
        Cycle start = std::max(now_, memPortFreeAt_);
        memPortFreeAt_ = start + 1 + mem_pen;
        exec_at = start + mem_pen;
    }

    switch (in.op) {
      case Opcode::IntAlu:
      case Opcode::FpAlu:
      case Opcode::Sfu:
        execCompute(w, in, now_);
        break;
      case Opcode::LdShared:
      case Opcode::StShared:
        execShared(w, in, exec_at, co);
        break;
      case Opcode::LdGlobal:
      case Opcode::StGlobal:
      case Opcode::LdLocal:
      case Opcode::StLocal:
        execGlobal(w, in, exec_at, fp);
        break;
      case Opcode::Tex:
        execTexture(w, in, now_);
        break;
      case Opcode::Bar:
        break; // handled above
    }

    if (wc.stream.exhausted()) {
        retireWarp(w);
    } else {
        // Refresh eagerly instead of queueing for housekeeping
        // unconditionally: every event pushed above completes strictly
        // after now_, and drainDueEvents only touches its own event's
        // warp, so the scoreboard state housekeeping would have seen
        // next iteration is exactly the state right here. Housekeeping
        // acts only on a null or long-latency-blocked head (retire /
        // deschedule), so only those need the ring trip; the refreshed
        // cache is reused as-is by the next pickIssue either way.
        refreshReadyCache(w);
        if (hotFlags_[w] & (kWfHeadNull | kWfDependsLL))
            markDirty(w);
    }
}

Cycle
SmModel::nextInterestingCycle()
{
    Cycle t = kCycleNever;
    if (!events_.empty())
        t = std::min(t, events_.top().at);
    if (issueFreeAt_ > now_)
        t = std::min(t, issueFreeAt_);

    // The active-warp minimum is memoized. Reuse is sound while no
    // mutation occurred (scanMemoValid_) and the memo is still in the
    // future: had any warp's ready cycle fallen inside (then, now_],
    // it would itself have been the memoized minimum, contradicting
    // scanMemo_ > now_.
    if (!scanMemoValid_ || scanMemo_ <= now_) {
        // The scan reads only the flat hotReady_/hotFlags_ arrays: a
        // null head or long-latency dependence is encoded as
        // kCycleNever, which can never win the min (m starts there),
        // so no per-warp branch on those states is needed.
        Cycle m = kCycleNever;
        for (u32 w : sched_.activeWarps()) {
            u8 f = hotFlags_[w];
            if ((f & (kWfResident | kWfAtBarrier)) != kWfResident)
                continue;
            if (!(f & kWfCacheValid))
                refreshReadyCache(w);
            Cycle key = hotReady_[w];
            if (key > now_)
                m = std::min(m, key);
        }
        scanMemo_ = m;
        scanMemoValid_ = true;
    }
    return std::min(t, scanMemo_);
}

void
SmModel::start()
{
    if (started_)
        return;
    started_ = true;
    const u32 total_ctas = kp_.gridCtas;
    for (u32 c = 0; c < ctas_.size() && nextCta_ < total_ctas; ++c)
        launchCta(c);
}

Cycle
SmModel::advance(Cycle limit)
{
    if (!started_)
        panic("SmModel::advance before start");

    // Livelock guard scaled to progress, not to total loop iterations:
    // a cumulative budget accumulates across bounded advance(limit)
    // calls (chip stepping, multi-kernel apps) and would eventually
    // trip on a legitimately long run. Every well-formed path advances
    // now_ within a few iterations (issue -> issueFreeAt_ jump, or a
    // strictly increasing idle skip), so a large iteration count at one
    // clock value can only be a livelock.
    const u64 guard_limit = 1000 * 1000;

    while (residentWarps_ > 0 && now_ < limit) {
        // Deferred-DRAM fence: an unresolved load completion could land
        // as early as stallBound(), so no scheduling decision may be
        // made at or beyond it — return and let the chip weave.
        const Cycle fence =
            queue_ != nullptr ? queue_->stallBound() : kCycleNever;
        if (now_ >= fence)
            break;

        if (now_ != guardLastNow_) {
            guardLastNow_ = now_;
            guardNoProgress_ = 0;
        } else {
            // Count only repeat iterations at one clock value, and
            // track the peak on that slow path alone — the common
            // advancing iteration pays a single compare.
            if (++guardNoProgress_ > guard_limit)
                panic("SmModel: no forward progress at cycle %llu "
                      "(livelock?)",
                      static_cast<unsigned long long>(now_));
            if (guardNoProgress_ > guardPeak_)
                guardPeak_ = guardNoProgress_;
        }

        processEvents();
        if (!activations_.empty() || !checkList_.empty())
            housekeeping();
        if (residentWarps_ == 0)
            break;

        if (issueFreeAt_ > now_) {
            // nextInterestingCycle() is always > now_ (due events were
            // just drained, cached ready cycles at or before now_ are
            // excluded from the scan), so when the port frees on the
            // very next cycle the min is now_ + 1 no matter what the
            // scan would return — skip it. This removes the O(active)
            // rescan after every penalty-free issue; the clock stops at
            // exactly the same cycles either way.
            Cycle target =
                issueFreeAt_ == now_ + 1
                    ? now_ + 1
                    : std::min(issueFreeAt_, nextInterestingCycle());
            now_ = std::min(target, fence);
            continue;
        }

        u32 w = sched_.pickIssue([this](u32 cand) {
            return warpReady(cand);
        });
        if (w == TwoLevelScheduler::kNone) {
            Cycle t = nextInterestingCycle();
            if (t == kCycleNever) {
                if (fence != kCycleNever)
                    break; // everyone waits on the weave, not deadlock
                if (residentWarps_ > 0)
                    panic("SmModel: deadlock with %u resident warps "
                          "(unbalanced barriers?)",
                          residentWarps_);
                break;
            }
            now_ = std::min(std::max(t, now_ + 1), fence);
            continue;
        }
        issue(w);

        // Fused port-busy skip: after a penalty-free issue that queued
        // no warp for housekeeping, the next iteration could only
        // advance the clock one cycle — every event issue() pushed
        // completes strictly after now_, so processEvents would be a
        // no-op at this clock value. Replicating that iteration's
        // fence arithmetic here (stallBound may have moved if issue()
        // enqueued DRAM work) saves a full round of loop checks per
        // issued instruction.
        if (residentWarps_ > 0 && issueFreeAt_ == now_ + 1 &&
            activations_.empty() && checkList_.empty()) {
            const Cycle f =
                queue_ != nullptr ? queue_->stallBound() : kCycleNever;
            if (now_ >= f)
                break;
            now_ = std::min(now_ + 1, f);
        }
    }
    return now_;
}

#ifndef NDEBUG
void
SmModel::auditHotState()
{
    u32 resident = 0;
    u32 dirty = 0;
    for (u32 w = 0; w < cold_.size(); ++w) {
        u8 f = hotFlags_[w];
        if (f & kWfResident)
            ++resident;
        if (f & kWfDirty)
            ++dirty;
        if ((f & (kWfResident | kWfCacheValid)) !=
            (kWfResident | kWfCacheValid))
            continue;
        // A valid cache means refreshReadyCache already peeked this
        // head, so peek() here returns the buffered instruction
        // without side effects.
        const WarpInstr* in = cold_[w].stream.peek();
        bool head_null = in == nullptr;
        bool dep_ll = false;
        Cycle key = kCycleNever;
        if (!head_null) {
            Scoreboard::ReadyInfo info = cold_[w].sb.readyInfo(*in);
            dep_ll = info.longLatency;
            if (!dep_ll)
                key = info.readyAt;
        }
        if (head_null != ((f & kWfHeadNull) != 0) ||
            dep_ll != ((f & kWfDependsLL) != 0) || key != hotReady_[w])
            panic("SoA audit: warp %u hot state stale (flags=%u "
                  "key=%llu, recomputed headNull=%d dependsLL=%d "
                  "key=%llu)",
                  w, static_cast<unsigned>(f),
                  static_cast<unsigned long long>(hotReady_[w]),
                  static_cast<int>(head_null), static_cast<int>(dep_ll),
                  static_cast<unsigned long long>(key));
    }
    if (resident != residentWarps_)
        panic("SoA audit: %u resident flags vs residentWarps_=%u",
              resident, residentWarps_);
    if (dirty != checkList_.size())
        panic("SoA audit: %u dirty flags vs %u queued housekeeping "
              "entries",
              dirty, checkList_.size());
    for (u32 i = 0; i < checkList_.size(); ++i)
        if (!(hotFlags_[checkList_.at(i)] & kWfDirty))
            panic("SoA audit: queued warp %u not marked dirty",
                  checkList_.at(i));
}
#endif

const SmStats&
SmModel::finalize()
{
    if (!finished())
        panic("SmModel::finalize before the SM finished");
    if (finalized_)
        return stats_;
    finalized_ = true;
#ifndef NDEBUG
    if (audit_)
        auditHotState();
#endif

    // With a private DRAM its drain time belongs to this SM; in chip
    // mode the residual drain (and all DRAM statistics) live at the
    // chip's shared memory controllers.
    Cycle drain = queue_ == nullptr ? ownDram_.nextFree() : 0;
    Cycle tex_drain = queue_ == nullptr ? ownTexDram_.nextFree() : 0;
    stats_.cycles =
        std::max({now_, lastCompletion_, drain, tex_drain});
    stats_.dirtyLinesAtEnd = cache_.dirtyLineCount();
    stats_.cache = cache_.stats();
    if (queue_ == nullptr) {
        stats_.dram = ownDram_.stats();
        stats_.texDram = ownTexDram_.stats();
    }
    stats_.sched = sched_.stats();
    return stats_;
}

const SmStats&
SmModel::run()
{
    if (started_)
        panic("SmModel::run on an already started model");
    start();
    advance(kCycleNever);
    return finalize();
}

SmStats
runKernel(const SmRunConfig& cfg, const KernelModel& kernel)
{
    SmModel sm(cfg, kernel);
    return sm.run();
}

} // namespace unimem
