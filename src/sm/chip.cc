#include "sm/chip.hh"

#include <algorithm>
#include <cstdlib>
#include <thread>

#include "common/log.hh"
#include "common/ownership.hh"
#include "common/worker_pool.hh"

namespace unimem {

Cycle
ChipStats::maxSmCycles() const
{
    Cycle m = 0;
    for (const SmStats& s : sms)
        m = std::max(m, s.cycles);
    return m;
}

Cycle
ChipStats::minSmCycles() const
{
    Cycle m = kCycleNever;
    for (const SmStats& s : sms)
        m = std::min(m, s.cycles);
    return m;
}

double
ChipStats::loadImbalance() const
{
    if (sms.empty())
        return 0.0;
    double sum = 0.0;
    for (const SmStats& s : sms)
        sum += static_cast<double>(s.cycles);
    double mean = sum / static_cast<double>(sms.size());
    if (mean <= 0.0)
        return 0.0;
    return static_cast<double>(maxSmCycles()) / mean - 1.0;
}

double
ChipStats::quantumUtilization() const
{
    u64 total = smQuantaRun + smQuantaSkipped;
    return total == 0
               ? 0.0
               : static_cast<double>(smQuantaRun) /
                     static_cast<double>(total);
}

u32
ChipModel::resolveWorkerCount(u32 requested, u32 numSms)
{
    u32 workers = requested;
    if (workers == 0) {
        if (const char* env = std::getenv("UNIMEM_CHIP_JOBS")) {
            long n = std::atol(env);
            if (n > 0)
                workers = static_cast<u32>(n);
            else
                warn("ignoring invalid UNIMEM_CHIP_JOBS='%s'", env);
        }
    }
    if (workers == 0) {
        u32 hw = std::thread::hardware_concurrency();
        workers = hw == 0 ? 1 : hw;
    }
    return std::min(std::max<u32>(workers, 1), std::max<u32>(numSms, 1));
}

ChipModel::ChipModel(const ChipConfig& cfg, const KernelModel& kernel)
    : cfg_(cfg), dram_(cfg.chipDramBytesPerCycle, cfg.sm.lat.dram),
      texDram_(cfg.chipDramBytesPerCycle, cfg.sm.lat.dram)
{
    if (cfg_.numSms == 0)
        fatal("ChipModel: zero SMs");
    if (cfg_.quantum == 0)
        fatal("ChipModel: zero quantum");
    // Ownership contract (common/ownership.hh): queue i records only
    // under SM i's bound-phase actor; the shared controllers and every
    // delivery entry point belong to the weaver.
    dram_.setOwner(ownership::kWeaver);
    texDram_.setOwner(ownership::kWeaver);
    for (u32 i = 0; i < cfg_.numSms; ++i) {
        queues_.push_back(
            std::make_unique<DramRequestQueue>(cfg_.sm.lat.dram));
        queues_.back()->setOwner(i);
        SmRunConfig sm_cfg = cfg_.sm;
        sm_cfg.seed = cfg_.sm.seed + i; // per-SM-distinct traces
        sms_.push_back(std::make_unique<SmModel>(sm_cfg, kernel,
                                                 queues_.back().get()));
        sms_.back()->setDeliveryOwner(ownership::kWeaver);
    }
}

ChipModel::~ChipModel() = default;

void
ChipModel::weave()
{
    ownership::ScopedActor actor(ownership::kWeaver);
    // Canonical replay order: by issue cycle, ties by smId, ties within
    // one SM in record order (the merge array is built in smId order
    // and the sort is stable). Per-SM record order is nondecreasing in
    // cycle per channel, so for a single SM the replay is exactly the
    // immediate engine's call sequence — the basis of the 1-SM
    // exactness invariant. The two channels share one sorted pass but
    // hit independent DramModels.
    merge_.clear();
    for (u32 i = 0; i < cfg_.numSms; ++i) {
        const std::vector<DramRequest>& reqs = queues_[i]->requests();
        for (u32 r = 0; r < reqs.size(); ++r)
            merge_.push_back(MergeRef{reqs[r].at, i, r});
    }
    if (!merge_.empty()) {
        std::stable_sort(merge_.begin(), merge_.end(),
                         [](const MergeRef& a, const MergeRef& b) {
                             if (a.at != b.at)
                                 return a.at < b.at;
                             return a.sm < b.sm;
                         });
        for (const MergeRef& m : merge_) {
            const DramRequest& rq = queues_[m.sm]->requests()[m.idx];
            DramModel& ch =
                rq.channel == kTexDramChannel ? texDram_ : dram_;
            Cycle done = rq.isRead ? ch.read(rq.at, rq.sectors)
                                   : ch.write(rq.at, rq.sectors);
            stats_.perSmDramSectors[m.sm] += rq.sectors;
            if (rq.group != kNoGroup) {
                DeferredGroup& g = queues_[m.sm]->groups()[rq.group];
                Cycle c = done + g.extra;
                if (c > g.result)
                    g.result = c;
            } else if (rq.trackDrain) {
                sms_[m.sm]->noteDrain(done);
            }
        }
        stats_.weaveRequests += merge_.size();
    }

    // Deliver resolved completions per SM in record (program) order —
    // the order the immediate engine would have pushed the events in.
    for (u32 i = 0; i < cfg_.numSms; ++i) {
        for (DeferredGroup& g : queues_[i]->groups()) {
            Cycle result = std::max(g.known, g.result);
            if (g.wake)
                sms_[i]->deliverLoad(g.warp, g.gen, g.reg, result,
                                     g.placeholder, g.trackCompletion);
            else if (g.trackCompletion)
                sms_[i]->noteDrain(result);
        }
        queues_[i]->clearReplayed();
    }
}

const ChipStats&
ChipModel::run()
{
    if (ran_)
        panic("ChipModel::run called twice");
    ran_ = true;

    for (auto& sm : sms_)
        sm->start();

    u32 workers = resolveWorkerCount(cfg_.workers, cfg_.numSms);
    stats_.workersUsed = workers;
    stats_.perSmDramSectors.assign(cfg_.numSms, 0);
    WorkerPool pool(workers);

    std::vector<u32> runnable;
    runnable.reserve(cfg_.numSms);

    Cycle window_end = cfg_.quantum;
    const u64 guard_limit = 2ull * 1000 * 1000 * 1000;
    u64 guard = 0;

    for (;;) {
        // ---- one window: bound sub-rounds + weave to a fixpoint ----
        // With quantum <= DRAM latency every deferred completion fence
        // lies beyond the window and this loop runs exactly once; with
        // larger quanta, fenced SMs stall mid-window and need another
        // pass after the weave resolves their loads.
        bool first_pass = true;
        for (;;) {
            runnable.clear();
            for (u32 i = 0; i < cfg_.numSms; ++i) {
                if (sms_[i]->finished())
                    continue;
                if (sms_[i]->now() < window_end)
                    runnable.push_back(i);
                else if (first_pass)
                    ++stats_.smQuantaSkipped;
            }
            if (first_pass)
                stats_.smQuantaRun += runnable.size();
            first_pass = false;
            if (runnable.empty())
                break;
            if (++guard > guard_limit)
                panic("ChipModel: window guard tripped");

            pool.parallelFor(
                static_cast<u32>(runnable.size()), [&](u32 j) {
                    ownership::ScopedActor actor(runnable[j]);
                    sms_[runnable[j]]->advance(window_end);
                });
            ++stats_.boundPasses;

            for (u32 i : runnable) {
                if (!sms_[i]->finished() && sms_[i]->now() < window_end)
                    stats_.weaveStallCycles +=
                        window_end - sms_[i]->now();
            }
            weave();
        }
        ++stats_.windows;

        // Every queue is empty after the weave; find where to go next.
        bool any_unfinished = false;
        Cycle min_now = kCycleNever;
        for (auto& sm : sms_) {
            if (!sm->finished()) {
                any_unfinished = true;
                min_now = std::min(min_now, sm->now());
            }
        }
        if (!any_unfinished)
            break;

        // Fast-forward over empty windows (all unfinished SMs overshot
        // this window via idle jumps): hop along the quantum grid so
        // the skipped windows — which would record no traffic — cost
        // nothing. Staying on the grid keeps results identical to
        // stepping them one by one.
        window_end += cfg_.quantum;
        if (min_now >= window_end) {
            u64 skip = (min_now - window_end) / cfg_.quantum;
            window_end += skip * cfg_.quantum;
        }
    }

    Cycle max_cycles = 0;
    for (auto& sm : sms_) {
        stats_.sms.push_back(sm->finalize());
        max_cycles = std::max(max_cycles, stats_.sms.back().cycles);
    }
    stats_.cycles =
        std::max({max_cycles, dram_.nextFree(), texDram_.nextFree()});
    stats_.dram = dram_.stats();
    stats_.texDram = texDram_.stats();
    return stats_;
}

} // namespace unimem
