#include "sm/chip.hh"

#include <algorithm>

#include "common/log.hh"

namespace unimem {

Cycle
ChipStats::maxSmCycles() const
{
    Cycle m = 0;
    for (const SmStats& s : sms)
        m = std::max(m, s.cycles);
    return m;
}

Cycle
ChipStats::minSmCycles() const
{
    Cycle m = kCycleNever;
    for (const SmStats& s : sms)
        m = std::min(m, s.cycles);
    return m;
}

ChipModel::ChipModel(const ChipConfig& cfg, const KernelModel& kernel)
    : cfg_(cfg), dram_(cfg.chipDramBytesPerCycle, cfg.sm.lat.dram),
      texDram_(cfg.chipDramBytesPerCycle, cfg.sm.lat.dram)
{
    if (cfg_.numSms == 0)
        fatal("ChipModel: zero SMs");
    if (cfg_.quantum == 0)
        fatal("ChipModel: zero quantum");
    for (u32 i = 0; i < cfg_.numSms; ++i) {
        SmRunConfig sm_cfg = cfg_.sm;
        sm_cfg.seed = cfg_.sm.seed + i; // per-SM-distinct traces
        sms_.push_back(std::make_unique<SmModel>(sm_cfg, kernel, &dram_,
                                                 &texDram_));
    }
}

const ChipStats&
ChipModel::run()
{
    if (ran_)
        panic("ChipModel::run called twice");
    ran_ = true;

    for (auto& sm : sms_)
        sm->start();

    // Conservative quantum co-simulation: every SM advances to the
    // window end before any SM enters the next window, bounding the
    // timestamp skew seen by the shared DRAM to one quantum.
    Cycle window_end = cfg_.quantum;
    const u64 guard_limit = 2ull * 1000 * 1000 * 1000;
    u64 guard = 0;

    bool any_running = true;
    while (any_running) {
        if (++guard > guard_limit)
            panic("ChipModel: window guard tripped");
        any_running = false;
        for (auto& sm : sms_) {
            if (sm->finished())
                continue;
            sm->advance(window_end);
            if (!sm->finished())
                any_running = true;
        }
        window_end += cfg_.quantum;
    }

    Cycle max_cycles = 0;
    for (auto& sm : sms_) {
        stats_.sms.push_back(sm->finalize());
        max_cycles = std::max(max_cycles, stats_.sms.back().cycles);
    }
    stats_.cycles =
        std::max({max_cycles, dram_.nextFree(), texDram_.nextFree()});
    stats_.dram = dram_.stats();
    stats_.texDram = texDram_.stats();
    return stats_;
}

} // namespace unimem
