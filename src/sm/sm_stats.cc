#include "sm/sm_config.hh"

namespace unimem {

StatSet
SmStats::toStatSet() const
{
    StatSet s;
    s.set("cycles", static_cast<double>(cycles));
    s.set("warp_instrs", static_cast<double>(warpInstrs));
    s.set("thread_instrs", static_cast<double>(threadInstrs));
    s.set("ipc", ipc());
    s.set("barriers", static_cast<double>(barriers));
    s.set("ctas_executed", static_cast<double>(ctasExecuted));

    for (size_t i = 0; i < issuedByOp.size(); ++i) {
        if (issuedByOp[i] == 0)
            continue;
        s.set(std::string("issued.") +
                  opcodeName(static_cast<Opcode>(i)),
              static_cast<double>(issuedByOp[i]));
    }

    s.set("conflict.penalty_cycles",
          static_cast<double>(conflictPenaltyCycles));
    s.set("conflict.tag_serialization_cycles",
          static_cast<double>(tagSerializationCycles));
    for (u32 b = 0; b < ConflictHistogram::kNumBuckets; ++b)
        s.set(std::string("conflict.max_per_bank.") +
                  ConflictHistogram::bucketName(b),
              conflictHist.fraction(b));

    s.set("rf.src_reads", static_cast<double>(rf.srcReads));
    s.set("rf.dst_writes", static_cast<double>(rf.dstWrites));
    s.set("rf.lrf_reads", static_cast<double>(rf.lrfReads));
    s.set("rf.orf_reads", static_cast<double>(rf.orfReads));
    s.set("rf.mrf_reads", static_cast<double>(rf.mrfReads));
    s.set("rf.mrf_writes", static_cast<double>(rf.mrfWrites));
    s.set("rf.deschedule_writebacks",
          static_cast<double>(rf.descheduleWritebacks));
    s.set("rf.mrf_reduction", rf.reduction());

    s.set("cache.read_hits", static_cast<double>(cache.readHits));
    s.set("cache.read_misses", static_cast<double>(cache.readMisses));
    s.set("cache.write_hits", static_cast<double>(cache.writeHits));
    s.set("cache.write_misses", static_cast<double>(cache.writeMisses));
    s.set("cache.fills", static_cast<double>(cache.fills));
    s.set("cache.dirty_evictions",
          static_cast<double>(cache.dirtyEvictions));
    s.set("cache.dirty_lines_at_end",
          static_cast<double>(dirtyLinesAtEnd));

    s.set("dram.read_sectors", static_cast<double>(dram.readSectors));
    s.set("dram.write_sectors", static_cast<double>(dram.writeSectors));
    s.set("dram.tex_sectors", static_cast<double>(texDram.sectors()));
    s.set("dram.bytes", static_cast<double>(dramBytes()));

    s.set("sched.deschedules", static_cast<double>(sched.deschedules));
    s.set("sched.activations", static_cast<double>(sched.activations));

    s.set("banks.shared_read_bytes",
          static_cast<double>(sharedReadBytes));
    s.set("banks.shared_write_bytes",
          static_cast<double>(sharedWriteBytes));
    s.set("banks.cache_read_bytes", static_cast<double>(cacheReadBytes));
    s.set("banks.cache_write_bytes",
          static_cast<double>(cacheWriteBytes));
    return s;
}

} // namespace unimem
