#include "sm/tex_unit.hh"

#include <algorithm>

#include "common/log.hh"
#include "mem/coalescer.hh"

namespace unimem {

TexUnit::TexUnit(u64 cacheBytes, u32 pipelineLatency, DramModel* dram)
    : cache_(cacheBytes), latency_(pipelineLatency), dram_(dram)
{
    if (dram_ == nullptr)
        panic("TexUnit: null DRAM model");
}

Cycle
TexUnit::access(Cycle now, const WarpInstr& in)
{
    if (in.op != Opcode::Tex)
        panic("TexUnit: non-texture opcode %s", opcodeName(in.op));

    Cycle ready = now + latency_;
    for (const CoalescedAccess& acc : coalesce(in)) {
        if (cache_.read(acc.lineAddr))
            continue;
        Cycle fill =
            dram_->read(now, kCacheLineBytes / kDramSectorBytes);
        cache_.fill(acc.lineAddr);
        ready = std::max(ready, fill + latency_ / 4);
    }
    return ready;
}

Cycle
TexUnit::accessDeferred(Cycle now, const WarpInstr& in,
                        DramRequestQueue& q, u32 group)
{
    if (in.op != Opcode::Tex)
        panic("TexUnit: non-texture opcode %s", opcodeName(in.op));

    // Same cache evolution as the immediate path; only the fill timing
    // moves to the weave (the group's `extra` carries latency_/4).
    for (const CoalescedAccess& acc : coalesce(in)) {
        if (cache_.read(acc.lineAddr))
            continue;
        q.recordRead(kTexDramChannel, now,
                     kCacheLineBytes / kDramSectorBytes, group, false);
        cache_.fill(acc.lineAddr);
    }
    return now + latency_;
}

} // namespace unimem
