/**
 * @file
 * Run configuration and statistics of one SM simulation.
 */

#ifndef UNIMEM_SM_SM_CONFIG_HH
#define UNIMEM_SM_SM_CONFIG_HH

#include <array>

#include "arch/gpu_constants.hh"
#include "common/stats.hh"
#include "core/partition.hh"
#include "mem/bank_conflicts.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "regfile/rf_hierarchy.hh"
#include "sched/occupancy.hh"
#include "sched/two_level_scheduler.hh"

namespace unimem {

/** Everything the SM model needs to run one kernel. */
struct SmRunConfig
{
    DesignKind design = DesignKind::Partitioned;

    /** Physical (partitioned) or chosen (unified) capacities. */
    MemoryPartition partition = baselinePartition();

    /** Resolved occupancy/allocation for this launch. */
    LaunchConfig launch;

    /** Two-level scheduler active set size (prior work: 8). */
    u32 activeSetSize = 8;

    /** Model the ORF/LRF hierarchy (ablation: false). */
    bool rfHierarchy = true;

    /** Charge bank/arbitration conflict penalties (ablation: false). */
    bool conflictPenalties = true;

    /** Unified design with multi-bank-per-cluster scatter/gather. */
    bool aggressiveUnified = false;

    /**
     * Cache write policy. The paper uses write-through so repartitioning
     * never has dirty data to drain (Section 4.4); WriteBack is the
     * design-choice ablation.
     */
    WritePolicy cachePolicy = WritePolicy::WriteThrough;

    Latencies lat;

    u32 dramBytesPerCycle = kDramBytesPerCycle;

    /** Private texture cache capacity (constant across configs). */
    u64 texCacheBytes = 16_KB;

    u64 seed = 1;
};

/** Results of one SM simulation. */
struct SmStats
{
    Cycle cycles = 0;
    u64 warpInstrs = 0;
    u64 threadInstrs = 0;
    u64 barriers = 0;
    u64 ctasExecuted = 0;

    /** Issued warp instructions per opcode (index = Opcode value). */
    std::array<u64, 11> issuedByOp{};

    u64
    issued(Opcode op) const
    {
        return issuedByOp[static_cast<size_t>(op)];
    }

    u64 conflictPenaltyCycles = 0;
    u64 tagSerializationCycles = 0;
    ConflictHistogram conflictHist;

    RfAccessCounts rf;
    CacheStats cache;
    DramStats dram;
    DramStats texDram;
    SchedulerStats sched;

    /** Bytes moved through data banks, split by structure. */
    u64 sharedReadBytes = 0;
    u64 sharedWriteBytes = 0;
    u64 cacheReadBytes = 0;
    u64 cacheWriteBytes = 0;

    /** Dirty lines resident at kernel end (write-back ablation only). */
    u64 dirtyLinesAtEnd = 0;

    double
    ipc() const
    {
        return cycles == 0
                   ? 0.0
                   : static_cast<double>(threadInstrs) /
                         static_cast<double>(cycles);
    }

    /** Total DRAM sectors including texture traffic. */
    u64 dramSectors() const { return dram.sectors() + texDram.sectors(); }

    u64
    dramBytes() const
    {
        return dramSectors() * kDramSectorBytes;
    }

    /** Export every statistic into a named snapshot (for reporting). */
    StatSet toStatSet() const;
};

} // namespace unimem

#endif // UNIMEM_SM_SM_CONFIG_HH
