/**
 * @file
 * Chip-level co-simulation (validation of paper Section 5.1).
 *
 * The paper simulates a single SM and gives it 1/32 of the chip's DRAM
 * bandwidth, arguing that with many symmetric SMs this "simplifies
 * simulation without sacrificing accuracy". This module checks that
 * claim: it runs N SmModels concurrently against one shared DRAM model
 * with the full chip bandwidth (paper Section 2: 6 channels, 256
 * bytes/cycle for 32 SMs), advancing the SMs in small conservative time
 * quanta so their memory traffic interleaves.
 *
 * Each SM executes its own 1/N grid share of the kernel with a
 * per-SM-distinct trace seed.
 */

#ifndef UNIMEM_SM_CHIP_HH
#define UNIMEM_SM_CHIP_HH

#include <memory>
#include <vector>

#include "sm/sm.hh"

namespace unimem {

/** Chip-level run configuration. */
struct ChipConfig
{
    /** Number of SMs (paper: 32). */
    u32 numSms = 32;

    /** Chip-wide DRAM bandwidth in bytes/cycle (paper: 256). */
    u32 chipDramBytesPerCycle = 256;

    /**
     * Conservative co-simulation quantum in cycles: SMs run round-robin
     * in windows of this size against the shared DRAM. Smaller values
     * interleave traffic more faithfully; larger values simulate
     * faster.
     */
    Cycle quantum = 64;

    /** Per-SM configuration (design, partition, launch, options). */
    SmRunConfig sm;
};

/** Chip-level results. */
struct ChipStats
{
    /** Chip runtime: the slowest SM's clock plus the DRAM drain. */
    Cycle cycles = 0;

    /** Shared-DRAM traffic of all SMs together. */
    DramStats dram;
    DramStats texDram;

    /** Per-SM statistics (dram fields empty: traffic is chip-level). */
    std::vector<SmStats> sms;

    u64
    warpInstrs() const
    {
        u64 n = 0;
        for (const SmStats& s : sms)
            n += s.warpInstrs;
        return n;
    }

    /** Slowest / fastest SM finish times (load-imbalance measure). */
    Cycle maxSmCycles() const;
    Cycle minSmCycles() const;
};

/** Co-simulates N identical SMs sharing the chip's DRAM bandwidth. */
class ChipModel
{
  public:
    ChipModel(const ChipConfig& cfg, const KernelModel& kernel);

    /** Run every SM's grid share to completion. */
    const ChipStats& run();

    const ChipStats& stats() const { return stats_; }

  private:
    ChipConfig cfg_;
    DramModel dram_;
    DramModel texDram_;
    std::vector<std::unique_ptr<SmModel>> sms_;
    ChipStats stats_;
    bool ran_ = false;
};

} // namespace unimem

#endif // UNIMEM_SM_CHIP_HH
