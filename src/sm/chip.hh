/**
 * @file
 * Chip-level co-simulation (validation of paper Section 5.1) with a
 * parallel two-phase bound-weave engine (DESIGN.md Section 10).
 *
 * The paper simulates a single SM and gives it 1/32 of the chip's DRAM
 * bandwidth, arguing that with many symmetric SMs this "simplifies
 * simulation without sacrificing accuracy". This module checks that
 * claim: it runs N SmModels against shared memory controllers with the
 * full chip bandwidth (paper Section 2: 6 channels, 256 bytes/cycle for
 * 32 SMs).
 *
 * Execution alternates two phases per conservative time quantum:
 *  - bound: every runnable SM advances privately to the window end on a
 *    worker pool, recording its DRAM traffic into a per-SM
 *    DramRequestQueue instead of timing it. SMs that already overshot
 *    the window (idle-jump memoization) are skipped entirely.
 *  - weave: a single thread merges all queues in the canonical
 *    (cycle, smId) order, replays them against the shared DramModels,
 *    and delivers the resolved load completions back to each SM.
 *
 * Because the weave order and every SM's decision trace are functions
 * of the configuration alone, results are bit-identical regardless of
 * the worker count — the same invariant the sweep engine enforces.
 *
 * Each SM executes its own 1/N grid share of the kernel with a
 * per-SM-distinct trace seed.
 */

#ifndef UNIMEM_SM_CHIP_HH
#define UNIMEM_SM_CHIP_HH

#include <memory>
#include <vector>

#include "sm/sm.hh"

namespace unimem {

/** Chip-level run configuration. */
struct ChipConfig
{
    /** Number of SMs (paper: 32). */
    u32 numSms = 32;

    /** Chip-wide DRAM bandwidth in bytes/cycle (paper: 256). */
    u32 chipDramBytesPerCycle = 256;

    /**
     * Conservative co-simulation quantum in cycles: all SMs reach the
     * window end (bound) before the window's DRAM traffic is replayed
     * (weave). Smaller values interleave multi-SM traffic at a finer
     * grain; larger values batch more work per dispatch. Single-SM
     * results are quantum-invariant; multi-SM contention timing is not
     * (the weave replays whole windows).
     */
    Cycle quantum = 64;

    /**
     * Bound-phase worker threads. 0 resolves, in order, from the
     * UNIMEM_CHIP_JOBS environment variable, then hardware
     * concurrency; the result is capped to numSms. Any value produces
     * identical simulation results.
     */
    u32 workers = 0;

    /** Per-SM configuration (design, partition, launch, options). */
    SmRunConfig sm;
};

/** Chip-level results. */
struct ChipStats
{
    /** Chip runtime: the slowest SM's clock plus the DRAM drain. */
    Cycle cycles = 0;

    /** Shared-DRAM traffic of all SMs together. */
    DramStats dram;
    DramStats texDram;

    /** Per-SM statistics (dram fields empty: traffic is chip-level). */
    std::vector<SmStats> sms;

    /** Per-SM share of replayed chip-DRAM sectors (both channels). */
    std::vector<u64> perSmDramSectors;

    /** Bound-phase workers the run actually used. */
    u32 workersUsed = 0;

    /** Quanta processed (empty windows are fast-forwarded, not run). */
    u64 windows = 0;

    /** Bound dispatches (> windows when in-window sub-rounds occur). */
    u64 boundPasses = 0;

    /** DRAM transactions replayed by the weave phase. */
    u64 weaveRequests = 0;

    /**
     * Cycles SMs spent fenced before a window boundary waiting for the
     * weave to resolve a deferred completion (quantum > DRAM latency).
     */
    u64 weaveStallCycles = 0;

    /** (SM, window) slots that ran vs. were skipped as quiescent. */
    u64 smQuantaRun = 0;
    u64 smQuantaSkipped = 0;

    u64
    warpInstrs() const
    {
        u64 n = 0;
        for (const SmStats& s : sms)
            n += s.warpInstrs;
        return n;
    }

    /** Slowest / fastest SM finish times (load-imbalance measure). */
    Cycle maxSmCycles() const;
    Cycle minSmCycles() const;

    /** Finish-time spread between the slowest and fastest SM. */
    Cycle finishSkew() const { return maxSmCycles() - minSmCycles(); }

    /** Slowest SM finish over the mean finish, minus 1 (0 = balanced). */
    double loadImbalance() const;

    /** Fraction of (SM, window) slots that did bound-phase work. */
    double quantumUtilization() const;
};

/** Co-simulates N identical SMs sharing the chip's DRAM bandwidth. */
class ChipModel
{
  public:
    ChipModel(const ChipConfig& cfg, const KernelModel& kernel);
    ~ChipModel();

    /** Run every SM's grid share to completion. */
    const ChipStats& run();

    const ChipStats& stats() const { return stats_; }

    /** Worker count a run with this config would use (cfg resolution). */
    static u32 resolveWorkerCount(u32 requested, u32 numSms);

  private:
    void weave();

    /** Sort key for the canonical weave replay order. */
    struct MergeRef
    {
        Cycle at;
        u32 sm;
        u32 idx;
    };

    ChipConfig cfg_;
    DramModel dram_;
    DramModel texDram_;
    std::vector<std::unique_ptr<DramRequestQueue>> queues_;
    std::vector<std::unique_ptr<SmModel>> sms_;
    std::vector<MergeRef> merge_; // reused weave scratch
    ChipStats stats_;
    bool ran_ = false;
};

} // namespace unimem

#endif // UNIMEM_SM_CHIP_HH
