/**
 * @file
 * Texture unit model: a private read-only cache in front of DRAM with a
 * long fixed pipeline latency (paper Table 2: 400 cycles). The texture
 * path bypasses the primary data cache, so texture-heavy workloads (e.g.
 * BicubicTexture) are insensitive to the primary cache capacity, matching
 * Table 1.
 */

#ifndef UNIMEM_SM_TEX_UNIT_HH
#define UNIMEM_SM_TEX_UNIT_HH

#include "arch/warp_instr.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/dram_queue.hh"

namespace unimem {

/** Texture fetch path with its own cache and DRAM accounting. */
class TexUnit
{
  public:
    /**
     * @param cacheBytes private texture cache capacity
     * @param pipelineLatency fixed texture latency in cycles
     * @param dram DRAM model charged for texture misses (not owned)
     */
    TexUnit(u64 cacheBytes, u32 pipelineLatency, DramModel* dram);

    /**
     * Issue a texture fetch at @p now.
     * @return cycle at which the result is available.
     */
    Cycle access(Cycle now, const WarpInstr& in);

    /**
     * Deferred variant for chip co-simulation: probe and fill the
     * private cache exactly as access() would, but record the miss
     * fills into @p q under @p group instead of calling DRAM. The
     * final completion is resolved by the chip's weave phase as
     * max(returned base, max over fills of (fill + latency/4)).
     * @return the pipeline-only completion (now + latency), i.e. the
     *         group's "known" completion contribution.
     */
    Cycle accessDeferred(Cycle now, const WarpInstr& in,
                         DramRequestQueue& q, u32 group);

    const CacheStats& cacheStats() const { return cache_.stats(); }

  private:
    DataCache cache_;
    u32 latency_;
    DramModel* dram_;
};

} // namespace unimem

#endif // UNIMEM_SM_TEX_UNIT_HH
