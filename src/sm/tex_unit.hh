/**
 * @file
 * Texture unit model: a private read-only cache in front of DRAM with a
 * long fixed pipeline latency (paper Table 2: 400 cycles). The texture
 * path bypasses the primary data cache, so texture-heavy workloads (e.g.
 * BicubicTexture) are insensitive to the primary cache capacity, matching
 * Table 1.
 */

#ifndef UNIMEM_SM_TEX_UNIT_HH
#define UNIMEM_SM_TEX_UNIT_HH

#include "arch/warp_instr.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"

namespace unimem {

/** Texture fetch path with its own cache and DRAM accounting. */
class TexUnit
{
  public:
    /**
     * @param cacheBytes private texture cache capacity
     * @param pipelineLatency fixed texture latency in cycles
     * @param dram DRAM model charged for texture misses (not owned)
     */
    TexUnit(u64 cacheBytes, u32 pipelineLatency, DramModel* dram);

    /**
     * Issue a texture fetch at @p now.
     * @return cycle at which the result is available.
     */
    Cycle access(Cycle now, const WarpInstr& in);

    const CacheStats& cacheStats() const { return cache_.stats(); }

  private:
    DataCache cache_;
    u32 latency_;
    DramModel* dram_;
};

} // namespace unimem

#endif // UNIMEM_SM_TEX_UNIT_HH
