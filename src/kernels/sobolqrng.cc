/**
 * @file
 * Sobol quasi-random number generation (CUDA SDK "SobolQRNG").
 *
 * Mostly integer bit manipulation against a 1 KB direction-vector table
 * (read once per dimension) followed by coalesced output stores -
 * compute/store bound and fully cache-insensitive (Table 1: 1.00 / 1.00
 * / 1.00) with tiny register/scratchpad needs.
 */

#include "kernels/step_program.hh"
#include "kernels/workloads.hh"

namespace unimem {

namespace {

constexpr Addr kDirBase = 0;
constexpr Addr kOutBase = 1ull << 32;
constexpr u32 kDraws = 32;

class SobolProgram : public StepProgram
{
  public:
    SobolProgram(const WarpCtx& ctx, const KernelParams& kp)
        : StepProgram(ctx, kp.regsPerThread, kDraws, kp.sharedBytesPerCta)
    {
        warpGid_ = static_cast<Addr>(ctx.ctaId) * ctx.warpsPerCta +
                   ctx.warpInCta;
    }

  protected:
    void
    emitStep(u32 step) override
    {
        if (step % 8 == 0) {
            // Direction vector for the next bit position: broadcast.
            LaneAddrs d{};
            Addr da = kDirBase + (static_cast<Addr>(step) * 16) % 1024;
            for (u32 lane = 0; lane < kWarpWidth; ++lane)
                d[lane] = da;
            ldGlobalIdx(d, 4);
        }
        alu(5); // gray-code / xor update chain
        stGlobal(kOutBase + (warpGid_ * kDraws + step) * kWarpWidth * 4,
                 4, 4);
    }

  private:
    Addr warpGid_ = 0;
};

class SobolKernel : public SyntheticKernel
{
  public:
    explicit SobolKernel(double scale)
    {
        params_.name = "sobolqrng";
        params_.regsPerThread = 12;
        params_.sharedBytesPerCta = 2 * 256;
        params_.ctaThreads = 256;
        params_.gridCtas = scaledCtas(32, scale);
        params_.spillCurve = SpillCurve();
    }

    std::unique_ptr<WarpProgram>
    warpProgram(const WarpCtx& ctx) const override
    {
        return std::make_unique<SobolProgram>(ctx, params_);
    }
};

} // namespace

std::unique_ptr<KernelModel>
makeSobolQrng(double scale)
{
    return std::make_unique<SobolKernel>(scale);
}

} // namespace unimem
