#include "kernels/step_program.hh"

#include <algorithm>

#include "common/log.hh"

namespace unimem {

StepProgram::StepProgram(const WarpCtx& ctx, u32 numRegs, u32 numSteps,
                         u32 sharedBytesPerCta)
    : ctx_(ctx), numRegs_(numRegs), numSteps_(numSteps),
      sharedBase_(static_cast<Addr>(ctx.ctaId) * sharedBytesPerCta),
      rng_(ctx.seed * 0x9e3779b97f4a7c15ull + ctx.ctaId * 1000003ull +
           ctx.warpInCta * 7919ull + 1)
{
    if (numRegs_ == 0)
        fatal("StepProgram: zero register budget");
}

bool
StepProgram::fill(std::vector<WarpInstr>& buf)
{
    if (step_ >= numSteps_)
        return false;
    buf_ = &buf;
    emitStep(step_++);
    buf_ = nullptr;
    return true;
}

void
StepProgram::alu(u32 count, bool fp, double recentFrac)
{
    for (u32 i = 0; i < count; ++i) {
        RegId s0 = last_;
        RegId s1 = rng_.chance(recentFrac) ? recentReg() : randomReg();
        s1 = avoidBankOf(s1, s0);
        RegId d = nextReg();
        WarpInstr& in =
            append(fp ? Opcode::FpAlu : Opcode::IntAlu, d, kFullMask);
        in.src[0] = s0;
        in.src[1] = s1;
        in.numSrc = 2;
    }
}

void
StepProgram::fma(RegId acc, bool fp)
{
    RegId s1 = avoidBankOf(last_, acc);
    RegId s2 = avoidBankOf(recentReg(), acc);
    s2 = avoidBankOf(s2, s1);
    WarpInstr& in =
        append(fp ? Opcode::FpAlu : Opcode::IntAlu, acc, kFullMask);
    in.src[0] = acc;
    in.src[1] = s1;
    in.src[2] = s2;
    in.numSrc = 3;
    last_ = acc;
}

void
StepProgram::sfu(u32 count)
{
    for (u32 i = 0; i < count; ++i) {
        RegId s0 = last_;
        RegId d = nextReg();
        WarpInstr& in = append(Opcode::Sfu, d, kFullMask);
        in.src[0] = s0;
        in.numSrc = 1;
    }
}

void
StepProgram::barrier()
{
    append(Opcode::Bar, kInvalidReg, kFullMask);
}

namespace {

/** Fill all 32 lanes with base + lane * stride, in place. */
void
fillStride(LaneAddrs& a, Addr base, i64 stride)
{
    for (u32 lane = 0; lane < kWarpWidth; ++lane)
        a[lane] = base + static_cast<Addr>(static_cast<i64>(lane) * stride);
}

/** Fill all 32 lanes with src[lane] + offset, in place. */
void
fillOffset(LaneAddrs& a, const LaneAddrs& src, Addr offset)
{
    for (u32 lane = 0; lane < kWarpWidth; ++lane)
        a[lane] = src[lane] + offset;
}

} // namespace

RegId
StepProgram::emitAddrCompute()
{
    // GPU codegen computes the effective address with an integer op
    // right before the access, so the address register is the last
    // result (LRF) even straight after a deschedule point.
    RegId s0 = last_;
    RegId s1 = avoidBankOf(recentReg(), s0);
    RegId d = nextReg();
    WarpInstr& in = append(Opcode::IntAlu, d, kFullMask);
    in.src[0] = s0;
    in.src[1] = s1;
    in.numSrc = 2;
    return d;
}

WarpInstr&
StepProgram::emitLoad(Opcode op, u8 bytes, u32 mask, RegId& dstOut)
{
    RegId addr_reg = emitAddrCompute();
    RegId d = nextReg();
    WarpInstr& in = append(op, d, mask);
    in.src[0] = addr_reg;
    in.numSrc = 1;
    in.accessBytes = bytes;
    dstOut = d;
    return in; // caller fills in.addr in place
}

WarpInstr&
StepProgram::emitStore(Opcode op, u8 bytes, u32 mask)
{
    RegId data_reg = last_;
    RegId addr_reg = emitAddrCompute();
    WarpInstr& in = append(op, kInvalidReg, mask);
    in.src[0] = addr_reg;
    in.src[1] = avoidBankOf(data_reg, addr_reg); // store data
    in.numSrc = 2;
    in.accessBytes = bytes;
    return in; // caller fills in.addr in place
}

RegId
StepProgram::ldGlobal(Addr base, i64 laneStride, u8 bytes, u32 mask)
{
    RegId d;
    fillStride(emitLoad(Opcode::LdGlobal, bytes, mask, d).addr, base,
               laneStride);
    return d;
}

RegId
StepProgram::ldGlobalIdx(const LaneAddrs& addrs, u8 bytes, u32 mask)
{
    RegId d;
    fillOffset(emitLoad(Opcode::LdGlobal, bytes, mask, d).addr, addrs, 0);
    return d;
}

void
StepProgram::stGlobal(Addr base, i64 laneStride, u8 bytes, u32 mask)
{
    fillStride(emitStore(Opcode::StGlobal, bytes, mask).addr, base,
               laneStride);
}

void
StepProgram::stGlobalIdx(const LaneAddrs& addrs, u8 bytes, u32 mask)
{
    fillOffset(emitStore(Opcode::StGlobal, bytes, mask).addr, addrs, 0);
}

RegId
StepProgram::ldShared(Addr ctaOffset, i64 laneStride, u8 bytes, u32 mask)
{
    RegId d;
    fillStride(emitLoad(Opcode::LdShared, bytes, mask, d).addr,
               sharedBase_ + ctaOffset, laneStride);
    return d;
}

RegId
StepProgram::ldSharedIdx(const LaneAddrs& ctaOffsets, u8 bytes, u32 mask)
{
    RegId d;
    fillOffset(emitLoad(Opcode::LdShared, bytes, mask, d).addr, ctaOffsets,
               sharedBase_);
    return d;
}

void
StepProgram::stShared(Addr ctaOffset, i64 laneStride, u8 bytes, u32 mask)
{
    fillStride(emitStore(Opcode::StShared, bytes, mask).addr,
               sharedBase_ + ctaOffset, laneStride);
}

void
StepProgram::stSharedIdx(const LaneAddrs& ctaOffsets, u8 bytes, u32 mask)
{
    fillOffset(emitStore(Opcode::StShared, bytes, mask).addr, ctaOffsets,
               sharedBase_);
}

RegId
StepProgram::texFetch(const LaneAddrs& addrs, u8 bytes, u32 mask)
{
    RegId d;
    fillOffset(emitLoad(Opcode::Tex, bytes, mask, d).addr, addrs, 0);
    return d;
}

} // namespace unimem
