#include "kernels/step_program.hh"

#include <algorithm>

#include "common/log.hh"

namespace unimem {

StepProgram::StepProgram(const WarpCtx& ctx, u32 numRegs, u32 numSteps,
                         u32 sharedBytesPerCta)
    : ctx_(ctx), numRegs_(numRegs), numSteps_(numSteps),
      sharedBase_(static_cast<Addr>(ctx.ctaId) * sharedBytesPerCta),
      rng_(ctx.seed * 0x9e3779b97f4a7c15ull + ctx.ctaId * 1000003ull +
           ctx.warpInCta * 7919ull + 1)
{
    if (numRegs_ == 0)
        fatal("StepProgram: zero register budget");
}

bool
StepProgram::fill(std::vector<WarpInstr>& buf)
{
    if (step_ >= numSteps_)
        return false;
    buf_ = &buf;
    emitStep(step_++);
    buf_ = nullptr;
    return true;
}

RegId
StepProgram::nextReg()
{
    RegId r = static_cast<RegId>(rot_ % numRegs_);
    ++rot_;
    last_ = r;
    recent_[recentPos_ % recent_.size()] = r;
    ++recentPos_;
    return r;
}

RegId
StepProgram::randomReg()
{
    return static_cast<RegId>(rng_.range(numRegs_));
}

RegId
StepProgram::recentReg()
{
    u32 n = std::min<u32>(recentPos_, static_cast<u32>(recent_.size()));
    if (n == 0)
        return 0;
    return recent_[rng_.range(n)];
}

WarpInstr&
StepProgram::append(Opcode op, RegId dst, u32 mask)
{
    buf_->emplace_back();
    WarpInstr& in = buf_->back();
    in.op = op;
    in.dst = dst;
    in.activeMask = mask;
    return in;
}

void
StepProgram::alu(u32 count, bool fp, double recentFrac)
{
    for (u32 i = 0; i < count; ++i) {
        RegId s0 = last_;
        RegId s1 = rng_.chance(recentFrac) ? recentReg() : randomReg();
        s1 = avoidBankOf(s1, s0);
        RegId d = nextReg();
        WarpInstr& in =
            append(fp ? Opcode::FpAlu : Opcode::IntAlu, d, kFullMask);
        in.src[0] = s0;
        in.src[1] = s1;
        in.numSrc = 2;
    }
}

RegId
StepProgram::avoidBankOf(RegId r, RegId other)
{
    // Real compilers allocate the operands of one instruction to
    // different MRF banks (paper Section 2.1 / [27]); model that with a
    // high success rate, leaving a residue of unavoidable conflicts.
    if (r % kBanksPerCluster == other % kBanksPerCluster &&
        rng_.chance(0.9))
        return static_cast<RegId>((r + 1) % numRegs_);
    return r;
}

void
StepProgram::fma(RegId acc, bool fp)
{
    RegId s1 = avoidBankOf(last_, acc);
    RegId s2 = avoidBankOf(recentReg(), acc);
    s2 = avoidBankOf(s2, s1);
    WarpInstr& in =
        append(fp ? Opcode::FpAlu : Opcode::IntAlu, acc, kFullMask);
    in.src[0] = acc;
    in.src[1] = s1;
    in.src[2] = s2;
    in.numSrc = 3;
    last_ = acc;
}

void
StepProgram::sfu(u32 count)
{
    for (u32 i = 0; i < count; ++i) {
        RegId s0 = last_;
        RegId d = nextReg();
        WarpInstr& in = append(Opcode::Sfu, d, kFullMask);
        in.src[0] = s0;
        in.numSrc = 1;
    }
}

void
StepProgram::barrier()
{
    append(Opcode::Bar, kInvalidReg, kFullMask);
}

LaneAddrs
StepProgram::strideAddrs(Addr base, i64 stride) const
{
    LaneAddrs a{};
    for (u32 lane = 0; lane < kWarpWidth; ++lane)
        a[lane] = base + static_cast<Addr>(static_cast<i64>(lane) * stride);
    return a;
}

RegId
StepProgram::emitAddrCompute()
{
    // GPU codegen computes the effective address with an integer op
    // right before the access, so the address register is the last
    // result (LRF) even straight after a deschedule point.
    RegId s0 = last_;
    RegId s1 = avoidBankOf(recentReg(), s0);
    RegId d = nextReg();
    WarpInstr& in = append(Opcode::IntAlu, d, kFullMask);
    in.src[0] = s0;
    in.src[1] = s1;
    in.numSrc = 2;
    return d;
}

RegId
StepProgram::emitLoad(Opcode op, const LaneAddrs& addrs, u8 bytes, u32 mask)
{
    RegId addr_reg = emitAddrCompute();
    RegId d = nextReg();
    WarpInstr& in = append(op, d, mask);
    in.src[0] = addr_reg;
    in.numSrc = 1;
    in.accessBytes = bytes;
    in.addr = addrs;
    return d;
}

void
StepProgram::emitStore(Opcode op, const LaneAddrs& addrs, u8 bytes,
                       u32 mask)
{
    RegId data_reg = last_;
    RegId addr_reg = emitAddrCompute();
    WarpInstr& in = append(op, kInvalidReg, mask);
    in.src[0] = addr_reg;
    in.src[1] = avoidBankOf(data_reg, addr_reg); // store data
    in.numSrc = 2;
    in.accessBytes = bytes;
    in.addr = addrs;
}

RegId
StepProgram::ldGlobal(Addr base, i64 laneStride, u8 bytes, u32 mask)
{
    return emitLoad(Opcode::LdGlobal, strideAddrs(base, laneStride), bytes,
                    mask);
}

RegId
StepProgram::ldGlobalIdx(const LaneAddrs& addrs, u8 bytes, u32 mask)
{
    return emitLoad(Opcode::LdGlobal, addrs, bytes, mask);
}

void
StepProgram::stGlobal(Addr base, i64 laneStride, u8 bytes, u32 mask)
{
    emitStore(Opcode::StGlobal, strideAddrs(base, laneStride), bytes, mask);
}

void
StepProgram::stGlobalIdx(const LaneAddrs& addrs, u8 bytes, u32 mask)
{
    emitStore(Opcode::StGlobal, addrs, bytes, mask);
}

RegId
StepProgram::ldShared(Addr ctaOffset, i64 laneStride, u8 bytes, u32 mask)
{
    return emitLoad(Opcode::LdShared,
                    strideAddrs(sharedBase_ + ctaOffset, laneStride), bytes,
                    mask);
}

RegId
StepProgram::ldSharedIdx(const LaneAddrs& ctaOffsets, u8 bytes, u32 mask)
{
    LaneAddrs a = ctaOffsets;
    for (Addr& v : a)
        v += sharedBase_;
    return emitLoad(Opcode::LdShared, a, bytes, mask);
}

void
StepProgram::stShared(Addr ctaOffset, i64 laneStride, u8 bytes, u32 mask)
{
    emitStore(Opcode::StShared,
              strideAddrs(sharedBase_ + ctaOffset, laneStride), bytes,
              mask);
}

void
StepProgram::stSharedIdx(const LaneAddrs& ctaOffsets, u8 bytes, u32 mask)
{
    LaneAddrs a = ctaOffsets;
    for (Addr& v : a)
        v += sharedBase_;
    emitStore(Opcode::StShared, a, bytes, mask);
}

RegId
StepProgram::texFetch(const LaneAddrs& addrs, u8 bytes, u32 mask)
{
    return emitLoad(Opcode::Tex, addrs, bytes, mask);
}

} // namespace unimem
