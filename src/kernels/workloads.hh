/**
 * @file
 * Factory functions for the 26 synthetic workload models (paper Table 1).
 * Each model reproduces its benchmark's resource footprint (registers per
 * thread, scratchpad bytes, spill curve) and memory behaviour (working
 * set, coalescing, reuse pattern); see DESIGN.md Section 6.
 *
 * @param scale multiplies the amount of work (grid CTAs); 1.0 is the
 *        default evaluation size, tests use smaller values.
 */

#ifndef UNIMEM_KERNELS_WORKLOADS_HH
#define UNIMEM_KERNELS_WORKLOADS_HH

#include <memory>

#include "arch/kernel_model.hh"

namespace unimem {

/** Scale a base CTA count, keeping at least one CTA. */
u32 scaledCtas(u32 base, double scale);

/** Common base for the synthetic kernels: stores the KernelParams. */
class SyntheticKernel : public KernelModel
{
  public:
    const KernelParams& params() const override { return params_; }

  protected:
    KernelParams params_;
};

// Shared-memory-limited workloads.
std::unique_ptr<KernelModel> makeNeedle(u32 blockingFactor, double scale);
std::unique_ptr<KernelModel> makeSto(double scale);
std::unique_ptr<KernelModel> makeLu(double scale);

// Cache-limited workloads.
std::unique_ptr<KernelModel> makeMummer(double scale);
std::unique_ptr<KernelModel> makeBfs(double scale);
std::unique_ptr<KernelModel> makeBackprop(double scale);
std::unique_ptr<KernelModel> makeMatrixMul(double scale);
std::unique_ptr<KernelModel> makeNbody(double scale);
std::unique_ptr<KernelModel> makeVectorAdd(double scale);
std::unique_ptr<KernelModel> makeSrad(double scale);

// Register-limited workloads.
std::unique_ptr<KernelModel> makeDgemm(double scale);
std::unique_ptr<KernelModel> makePcr(double scale);
std::unique_ptr<KernelModel> makeBicubicTexture(double scale);
std::unique_ptr<KernelModel> makeHwt(double scale);
std::unique_ptr<KernelModel> makeRay(double scale);

// Balanced / minimal-requirement workloads.
std::unique_ptr<KernelModel> makeHotspot(double scale);
std::unique_ptr<KernelModel> makeRecursiveGaussian(double scale);
std::unique_ptr<KernelModel> makeSad(double scale);
std::unique_ptr<KernelModel> makeScalarProd(double scale);
std::unique_ptr<KernelModel> makeSgemv(double scale);
std::unique_ptr<KernelModel> makeSobolQrng(double scale);
std::unique_ptr<KernelModel> makeAes(double scale);
std::unique_ptr<KernelModel> makeDct8x8(double scale);
std::unique_ptr<KernelModel> makeDwtHaar1d(double scale);
std::unique_ptr<KernelModel> makeLps(double scale);
std::unique_ptr<KernelModel> makeNn(double scale);

} // namespace unimem

#endif // UNIMEM_KERNELS_WORKLOADS_HH
