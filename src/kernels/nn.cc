/**
 * @file
 * k-nearest-neighbour search (GPGPU-Sim suite "nn").
 *
 * The ~80 KB record array is re-scanned once per query (20 queries), so
 * without a cache DRAM traffic is ~20x the cached case - the extreme
 * 20.81 entry of Table 1. At 64 KB the array almost fits (1.07); at
 * 256 KB it resides entirely on chip (1.00). Minimal registers, no
 * scratchpad.
 */

#include "kernels/step_program.hh"
#include "kernels/workloads.hh"

namespace unimem {

namespace {

constexpr Addr kRecordBase = 0;
constexpr Addr kDistBase = 1ull << 32;
constexpr u64 kRecordBytes = 80 * 1024;
constexpr u32 kQueries = 20;

class NnProgram : public StepProgram
{
  public:
    NnProgram(const WarpCtx& ctx, const KernelParams& kp)
        : StepProgram(ctx, kp.regsPerThread, kQueries,
                      kp.sharedBytesPerCta)
    {
    }

  protected:
    void
    emitStep(u32 step) override
    {
        // Each thread owns one record; the whole array is re-read for
        // every query (8-byte lat/long records, coalesced).
        Addr rec = kRecordBase + (threadId(0) * 8) % kRecordBytes;
        ldGlobal(rec, 8, 8);
        alu(4, true);
        sfu(1); // square root of the distance
        // Only the winning distances are written out at the end.
        if (step == kQueries - 1)
            stGlobal(kDistBase + threadId(0) * 4, 4, 4);
    }
};

class NnKernel : public SyntheticKernel
{
  public:
    explicit NnKernel(double scale)
    {
        params_.name = "nn";
        params_.regsPerThread = 13;
        params_.sharedBytesPerCta = 0;
        params_.ctaThreads = 256;
        params_.gridCtas = scaledCtas(40, scale);
        params_.spillCurve = SpillCurve();
    }

    std::unique_ptr<WarpProgram>
    warpProgram(const WarpCtx& ctx) const override
    {
        return std::make_unique<NnProgram>(ctx, params_);
    }
};

} // namespace

std::unique_ptr<KernelModel>
makeNn(double scale)
{
    return std::make_unique<NnKernel>(scale);
}

} // namespace unimem
