/**
 * @file
 * Breadth-first search over a million-node graph (Rodinia "bfs").
 *
 * Per frontier iteration each thread reads its node record (coalesced),
 * walks ~4 edges (coalesced edge-list reads) and probes the visited/cost
 * array of the 1MB graph at each neighbour's index. Probes concentrate
 * on high-degree hub nodes (small, cached anywhere) and the frontier's
 * drifting community region (~160KB - needs a large cache); a tail is
 * uniform over the graph (Table 1 shape: 1.46 / 1.13 / 1.00). Uses few
 * registers (9) and no scratchpad, so under the unified design nearly
 * all capacity becomes cache (Figure 8).
 */

#include "kernels/step_program.hh"
#include "kernels/workloads.hh"

namespace unimem {

namespace {

constexpr Addr kNodeBase = 0;
constexpr Addr kEdgeBase = 1ull << 32;
constexpr Addr kVisitedBase = 2ull << 32;
/** Visited/cost array of the million-node graph (1 node = 1 word). */
constexpr u64 kVisitedBytes = 1024 * 1024;
/** Hub region: high-degree nodes most edges point at. */
constexpr u64 kHubBytes = 40 * 1024;
/** Drifting community region around the current frontier. */
constexpr u64 kCommunityBytes = 160 * 1024;
constexpr u32 kIterations = 12;
constexpr u32 kDegree = 4;

class BfsProgram : public StepProgram
{
  public:
    BfsProgram(const WarpCtx& ctx, const KernelParams& kp)
        : StepProgram(ctx, kp.regsPerThread, kIterations,
                      kp.sharedBytesPerCta)
    {
    }

  protected:
    void
    emitStep(u32 step) override
    {
        u64 tid0 = threadId(0);

        // Node records and frontier costs: a different slice of the
        // graph each frontier iteration (coalesced, no reuse).
        Addr wave = static_cast<Addr>(step) * (1ull << 24);
        ldGlobal(kNodeBase + wave + tid0 * 8, 8, 8);
        ldGlobal(kNodeBase + (1ull << 30) + wave + tid0 * 4, 4, 4);
        alu(2);

        // Community window drifts with the frontier.
        u64 community =
            (static_cast<u64>(step) * 32 * 1024) % kVisitedBytes;

        for (u32 e = 0; e < kDegree; ++e) {
            // Edge list for this frontier: coalesced fresh stream.
            ldGlobal(kEdgeBase + wave + (tid0 * kDegree + e) * 4, 4, 4);
            alu(1);

            // Visited probes: edges mostly point at hub nodes (hot,
            // fits any cache) or the frontier's community (fits a large
            // cache), with a tail across the whole graph. Two probes
            // per edge (visited flag + cost).
            for (u32 probe_i = 0; probe_i < 2; ++probe_i) {
                double p = rng().uniform();
                u64 centre;
                if (p < 0.65)
                    centre = rng().range(kHubBytes);
                else if (p < 0.90)
                    centre = community + rng().range(kCommunityBytes);
                else
                    centre = rng().range(kVisitedBytes);
                LaneAddrs probe{};
                for (u32 lane = 0; lane < kWarpWidth; ++lane) {
                    u64 off = (centre + rng().range(256)) % kVisitedBytes;
                    probe[lane] = kVisitedBase + (off & ~3ull);
                }
                ldGlobalIdx(probe, 4);
                alu(4);

                // A few lanes update the frontier/cost.
                u32 mask = static_cast<u32>(rng().next()) &
                           static_cast<u32>(rng().next()) &
                           static_cast<u32>(rng().next());
                if (probe_i == 1 && mask != 0)
                    stGlobalIdx(probe, 4, mask);
            }
        }
    }
};

class BfsKernel : public SyntheticKernel
{
  public:
    explicit BfsKernel(double scale)
    {
        params_.name = "bfs";
        params_.regsPerThread = 9;
        params_.sharedBytesPerCta = 0;
        params_.ctaThreads = 256;
        params_.gridCtas = scaledCtas(32, scale);
        params_.spillCurve = SpillCurve();
    }

    std::unique_ptr<WarpProgram>
    warpProgram(const WarpCtx& ctx) const override
    {
        return std::make_unique<BfsProgram>(ctx, params_);
    }
};

} // namespace

std::unique_ptr<KernelModel>
makeBfs(double scale)
{
    return std::make_unique<BfsKernel>(scale);
}

} // namespace unimem
