/**
 * @file
 * Element-wise vector addition (CUDA SDK "vectorAdd").
 *
 * Each thread processes four consecutive elements, so one warp
 * instruction touches every fourth word of four cache lines and the same
 * four lines are revisited by the next three iterations. A small cache
 * therefore fetches each line once while the cache-less design re-reads
 * the partially-touched sectors on every pass (Table 1: 3.88 without a
 * cache, flat at and beyond 64 KB). Minimal registers (9), no
 * scratchpad.
 */

#include "kernels/step_program.hh"
#include "kernels/workloads.hh"

namespace unimem {

namespace {

constexpr Addr kABase = 0;
constexpr Addr kBBase = 1ull << 32;
constexpr Addr kCBase = 2ull << 32;
constexpr u32 kGroups = 16;       // element groups per thread
constexpr u32 kElemsPerGroup = 4; // consecutive elements per thread

class VectorAddProgram : public StepProgram
{
  public:
    VectorAddProgram(const WarpCtx& ctx, const KernelParams& kp)
        : StepProgram(ctx, kp.regsPerThread, kGroups * kElemsPerGroup,
                      kp.sharedBytesPerCta)
    {
        warpGid_ = static_cast<Addr>(ctx.ctaId) * ctx.warpsPerCta +
                   ctx.warpInCta;
    }

  protected:
    void
    emitStep(u32 step) override
    {
        u32 group = step / kElemsPerGroup;
        u32 j = step % kElemsPerGroup;
        // Grid-stride mapping: concurrent warps cover consecutive 512B
        // regions of each pass. Warp lanes stride 16B and revisit the
        // same four lines for j = 0..3.
        Addr off = (static_cast<Addr>(group) * 1024 + warpGid_) *
                       (kWarpWidth * kElemsPerGroup * 4) +
                   static_cast<Addr>(j) * 4;
        ldGlobal(kABase + off, 16, 4);
        ldGlobal(kBBase + off, 16, 4);
        alu(2, true);
        stGlobal(kCBase + off, 16, 4);
    }

  private:
    Addr warpGid_ = 0;
};

class VectorAddKernel : public SyntheticKernel
{
  public:
    explicit VectorAddKernel(double scale)
    {
        params_.name = "vectoradd";
        params_.regsPerThread = 9;
        params_.sharedBytesPerCta = 0;
        params_.ctaThreads = 256;
        params_.gridCtas = scaledCtas(48, scale);
        params_.spillCurve = SpillCurve();
    }

    std::unique_ptr<WarpProgram>
    warpProgram(const WarpCtx& ctx) const override
    {
        return std::make_unique<VectorAddProgram>(ctx, params_);
    }
};

} // namespace

std::unique_ptr<KernelModel>
makeVectorAdd(double scale)
{
    return std::make_unique<VectorAddKernel>(scale);
}

} // namespace unimem
