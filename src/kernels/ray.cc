/**
 * @file
 * Ray tracing with reflections and shadows (GPGPU-Sim suite "ray").
 *
 * Each thread renders one pixel: per bounce it intersects against a
 * small sphere list (warp-wide broadcast reads) and samples a large
 * environment/scene structure at an incoherent per-lane address. The
 * scattered reads are few (~3% of traffic) but latency-critical; a 64 KB
 * cache mostly misses on them and the 128-byte fills make DRAM traffic
 * slightly *worse* than no cache, while 256 KB captures the environment
 * (Table 1: 1.02 / 1.07 / 1.00). High register demand (42/thread, no
 * scratchpad) keeps occupancy register-limited.
 */

#include "kernels/step_program.hh"
#include "kernels/workloads.hh"

namespace unimem {

namespace {

constexpr Addr kSceneBase = 0;
constexpr Addr kEnvBase = 1ull << 32;
constexpr Addr kFrameBase = 2ull << 32;
constexpr u64 kSceneBytes = 4 * 1024;
constexpr u64 kEnvBytes = 224 * 1024;
constexpr u32 kBounces = 4;
constexpr u32 kSpheres = 8;

class RayProgram : public StepProgram
{
  public:
    RayProgram(const WarpCtx& ctx, const KernelParams& kp)
        : StepProgram(ctx, kp.regsPerThread, kBounces + 1,
                      kp.sharedBytesPerCta)
    {
    }

  protected:
    void
    emitStep(u32 step) override
    {
        if (step == kBounces) {
            stGlobal(kFrameBase + threadId(0) * 4, 4, 4);
            return;
        }

        // Sphere intersection tests: broadcast scene reads.
        for (u32 s = 0; s < kSpheres; ++s) {
            LaneAddrs a{};
            Addr sphere = kSceneBase +
                          ((static_cast<Addr>(s) * 32 + step * 256) %
                           kSceneBytes);
            for (u32 lane = 0; lane < kWarpWidth; ++lane)
                a[lane] = sphere;
            ldGlobalIdx(a, 4);
            fma(static_cast<RegId>(numRegs() - 1 - s % 4));
            alu(2, true);
        }

        // Ray state spills/reloads per bounce (SoA layout): coalesced
        // streams that dominate DRAM traffic; the incoherent samples
        // below are few but latency-critical.
        Addr ray_state = kFrameBase + (1ull << 30) +
                         (static_cast<Addr>(step) * (1ull << 24)) +
                         threadId(0) * 8;
        ldGlobal(ray_state, 8, 8);
        ldGlobal(ray_state + (1ull << 22), 8, 8);
        stGlobal(ray_state + (2ull << 22), 8, 8);
        stGlobal(ray_state + (3ull << 22), 8, 8);

        // Environment/shadow sample: rays of a warp diverge across a
        // few cache lines around a common direction.
        u64 centre = rng().range(kEnvBytes);
        LaneAddrs env{};
        for (u32 lane = 0; lane < kWarpWidth; ++lane)
            env[lane] =
                kEnvBase + ((centre + rng().range(512)) % kEnvBytes &
                            ~3ull);
        ldGlobalIdx(env, 4);
        alu(3, true);
        sfu(2); // normalize / reciprocal sqrt
    }
};

class RayKernel : public SyntheticKernel
{
  public:
    explicit RayKernel(double scale)
    {
        params_.name = "ray";
        params_.regsPerThread = 42;
        params_.sharedBytesPerCta = 0;
        params_.ctaThreads = 256;
        params_.gridCtas = scaledCtas(32, scale);
        params_.spillCurve = SpillCurve(
            {{18, 1.18}, {24, 1.11}, {32, 1.08}, {40, 1.05}, {64, 1.0}});
    }

    std::unique_ptr<WarpProgram>
    warpProgram(const WarpCtx& ctx) const override
    {
        return std::make_unique<RayProgram>(ctx, params_);
    }
};

} // namespace

std::unique_ptr<KernelModel>
makeRay(double scale)
{
    return std::make_unique<RayKernel>(scale);
}

} // namespace unimem
