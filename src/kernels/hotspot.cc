/**
 * @file
 * Thermal simulation stencil (Rodinia "hotspot").
 *
 * A 5-point stencil over a narrow band staged through the scratchpad
 * (12 B/thread): the north/south rows are re-read from global memory
 * each step but the band is small, so a 64 KB cache already captures all
 * reuse (Table 1: 1.44 / 1.00 / 1.00).
 */

#include "kernels/step_program.hh"
#include "kernels/workloads.hh"

namespace unimem {

namespace {

constexpr Addr kTempBase = 0;
constexpr Addr kPowerBase = 1ull << 32;
constexpr Addr kOutBase = 2ull << 32;
constexpr u32 kRows = 16;
constexpr u32 kBandRows = 8; // per-CTA hot band (fits a 64KB cache x4 CTAs)
constexpr u32 kRowBytes = 1024;

class HotspotProgram : public StepProgram
{
  public:
    HotspotProgram(const WarpCtx& ctx, const KernelParams& kp)
        : StepProgram(ctx, kp.regsPerThread, kRows, kp.sharedBytesPerCta),
          band_(kTempBase +
                static_cast<Addr>(ctx.ctaId) * kBandRows * kRowBytes)
    {
    }

  protected:
    void
    emitStep(u32 step) override
    {
        Addr row = band_ +
                   static_cast<Addr>(step % kBandRows) * kRowBytes +
                   ctx().warpInCta * 128;
        ldGlobal(row, 4, 4);                         // center
        ldGlobal(row >= kRowBytes ? row - kRowBytes : row, 4, 4);
        ldGlobal(row + kRowBytes, 4, 4);             // south
        ldGlobal(kPowerBase + (row - kTempBase), 4, 4);
        stShared(static_cast<Addr>(ctx().warpInCta) * 384, 4, 4);
        barrier();
        ldShared(static_cast<Addr>(ctx().warpInCta) * 384, 4, 4);
        alu(6, true);
        stGlobal(kOutBase + (row - kTempBase), 4, 4);
    }

  private:
    Addr band_;
};

class HotspotKernel : public SyntheticKernel
{
  public:
    explicit HotspotKernel(double scale)
    {
        params_.name = "hotspot";
        params_.regsPerThread = 22;
        params_.sharedBytesPerCta = 12 * 256;
        params_.ctaThreads = 256;
        params_.gridCtas = scaledCtas(24, scale);
        params_.spillCurve = SpillCurve({{18, 1.21}, {24, 1.0}});
    }

    std::unique_ptr<WarpProgram>
    warpProgram(const WarpCtx& ctx) const override
    {
        return std::make_unique<HotspotProgram>(ctx, params_);
    }
};

} // namespace

std::unique_ptr<KernelModel>
makeHotspot(double scale)
{
    return std::make_unique<HotspotKernel>(scale);
}

} // namespace unimem
