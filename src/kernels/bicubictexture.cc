/**
 * @file
 * Bicubic texture filtering (CUDA SDK "bicubicTexture").
 *
 * Each output pixel takes a 4x4 neighbourhood of texture taps plus
 * weight evaluation - register hungry (33/thread, spills below 40) with
 * no scratchpad. All fetches go through the texture unit, which has its
 * own cache, so the primary data cache capacity is irrelevant
 * (Table 1: 1.00 / 1.00 / 1.00).
 */

#include "kernels/step_program.hh"
#include "kernels/workloads.hh"

namespace unimem {

namespace {

constexpr Addr kTexBase = 0;
constexpr Addr kOutBase = 1ull << 32;
constexpr u32 kTexWidth = 1024; // texels per row
constexpr u32 kPixelsPerThread = 12;

class BicubicProgram : public StepProgram
{
  public:
    BicubicProgram(const WarpCtx& ctx, const KernelParams& kp)
        : StepProgram(ctx, kp.regsPerThread, kPixelsPerThread,
                      kp.sharedBytesPerCta)
    {
    }

  protected:
    void
    emitStep(u32 step) override
    {
        // Pixel coordinates: warps sweep rows, lanes adjacent columns.
        u64 px0 = (threadId(0) * kPixelsPerThread + step) % kTexWidth;
        u64 py = (threadId(0) / kTexWidth + step * 3) % kTexWidth;

        for (u32 ty = 0; ty < 2; ++ty) {
            LaneAddrs a{};
            for (u32 lane = 0; lane < kWarpWidth; ++lane) {
                u64 px = (px0 + lane) % kTexWidth;
                a[lane] = kTexBase +
                          ((py + ty) % kTexWidth * kTexWidth + px) * 4;
            }
            texFetch(a, 4);
            texFetch(a, 4); // second row pair of the 4x4 footprint
            alu(3, true);
        }
        // Cubic weight evaluation.
        alu(6, true);
        sfu(1);
        stGlobal(kOutBase + (threadId(0) * kPixelsPerThread + step) * 4,
                 4, 4);
    }
};

class BicubicKernel : public SyntheticKernel
{
  public:
    explicit BicubicKernel(double scale)
    {
        params_.name = "bicubictexture";
        params_.regsPerThread = 33;
        params_.sharedBytesPerCta = 0;
        params_.ctaThreads = 256;
        params_.gridCtas = scaledCtas(24, scale);
        params_.spillCurve =
            SpillCurve({{18, 1.18}, {24, 1.10}, {32, 1.05}, {40, 1.0}});
    }

    std::unique_ptr<WarpProgram>
    warpProgram(const WarpCtx& ctx) const override
    {
        return std::make_unique<BicubicProgram>(ctx, params_);
    }
};

} // namespace

std::unique_ptr<KernelModel>
makeBicubicTexture(double scale)
{
    return std::make_unique<BicubicKernel>(scale);
}

} // namespace unimem
