/**
 * @file
 * Neural-network back-propagation layer sweep (Rodinia "backprop").
 *
 * The weight matrix streams through once (coalesced, no reuse) while the
 * small input-activation vector (~12 KB) is re-read for every weight
 * row; a 64 KB cache fully captures the vector (Table 1: 1.56 / 1.00 /
 * 1.00). A few bytes of scratchpad stage partial sums (2.125 B/thread).
 */

#include "kernels/step_program.hh"
#include "kernels/workloads.hh"

namespace unimem {

namespace {

constexpr Addr kWeightBase = 0;
constexpr Addr kInputBase = 1ull << 32;
constexpr Addr kOutBase = 2ull << 32;
constexpr u64 kInputBytes = 12 * 1024;
constexpr u32 kRows = 24;

class BackpropProgram : public StepProgram
{
  public:
    BackpropProgram(const WarpCtx& ctx, const KernelParams& kp)
        : StepProgram(ctx, kp.regsPerThread, kRows, kp.sharedBytesPerCta)
    {
    }

  protected:
    void
    emitStep(u32 step) override
    {
        // Fresh weight-row slice: coalesced stream, never re-read.
        Addr w_addr =
            kWeightBase +
            ((static_cast<Addr>(ctx().ctaId) * ctx().warpsPerCta +
              ctx().warpInCta) *
                 kRows +
             step) *
                kWarpWidth * 4;
        ldGlobal(w_addr, 4, 4);

        // Two activation reads from the small shared vector: the j index
        // walks the vector, identical across warps (broadcast within the
        // warp; heavily re-read across the grid).
        for (u32 k = 0; k < 2; ++k) {
            u64 j = (static_cast<u64>(step) * 2 + k) * 64 % kInputBytes;
            LaneAddrs a{};
            for (u32 lane = 0; lane < kWarpWidth; ++lane)
                a[lane] = kInputBase + j + (lane % 4) * 4;
            ldGlobalIdx(a, 4);
            fma(static_cast<RegId>(numRegs() - 1));
        }
        alu(2, true);

        // Stage partial sums in the (tiny) scratchpad every few rows.
        if (step % 8 == 7) {
            stShared(static_cast<Addr>(ctx().warpInCta) * 64, 4, 4, laneMask(16));
            barrier();
            ldShared(static_cast<Addr>(ctx().warpInCta) * 64, 4, 4, laneMask(16));
            alu(1, true);
            stGlobal(kOutBase + w_addr / 8, 4, 4);
        }
    }
};

class BackpropKernel : public SyntheticKernel
{
  public:
    explicit BackpropKernel(double scale)
    {
        params_.name = "backprop";
        params_.regsPerThread = 17;
        params_.sharedBytesPerCta = 544; // 2.125 B/thread
        params_.ctaThreads = 256;
        params_.gridCtas = scaledCtas(32, scale);
        params_.spillCurve = SpillCurve({{18, 1.02}, {24, 1.0}});
    }

    std::unique_ptr<WarpProgram>
    warpProgram(const WarpCtx& ctx) const override
    {
        return std::make_unique<BackpropProgram>(ctx, params_);
    }
};

} // namespace

std::unique_ptr<KernelModel>
makeBackprop(double scale)
{
    return std::make_unique<BackpropKernel>(scale);
}

} // namespace unimem
