/**
 * @file
 * Parallel cyclic reduction tridiagonal solver (Zhang/Cohen/Owens
 * "pcr").
 *
 * log2(N) reduction steps stream the three coefficient arrays (a, b, c;
 * ~384 KB combined) with a stride that doubles each step; every step
 * re-reads the whole system, so DRAM traffic keeps dropping until the
 * cache holds all three arrays - the paper's pronounced 256 KB -> 512 KB
 * knee (Figure 4) and Table 1's 2.88 / 1.29 / 1.00 column. High
 * register demand (33/thread) with spills below 32 registers.
 */

#include "kernels/step_program.hh"
#include "kernels/workloads.hh"

namespace unimem {

namespace {

constexpr Addr kArrayBase = 0;
constexpr u64 kArrayBytes = 16ull << 20; // each of a, b, c (streamed)
constexpr u64 kArrayStride = 1ull << 32;
constexpr u32 kSteps = 9;

class PcrProgram : public StepProgram
{
  public:
    PcrProgram(const WarpCtx& ctx, const KernelParams& kp)
        : StepProgram(ctx, kp.regsPerThread, kSteps, kp.sharedBytesPerCta)
    {
        // Batched solver: every CTA reduces a fresh system, so the
        // dataset streams (paper: "streams a large dataset").
        slice_ = static_cast<u64>(ctx.ctaId) * 8192;
        lane0_ = (static_cast<u64>(ctx.warpInCta) * kWarpWidth) * 4;
    }

  protected:
    void
    emitStep(u32 step) override
    {
        // Reduction distance doubles per step. The i+delta read of step
        // s is re-read as the i+delta read of step s+1 (it equals
        // 2*delta of step s), so most reuse is one step apart - a 64KB
        // cache captures much of it - while the largest strides only
        // pay off with several hundred KB (Table 1: 2.88/1.29/1.00).
        u64 delta = (4ull << step) * 4;
        for (u32 arr = 0; arr < 3; ++arr) {
            Addr base = kArrayBase + arr * kArrayStride;
            // i - delta/2 and i + delta were both touched by the
            // previous level; i + 2*delta is this level's fresh reach.
            u64 off0 = (slice_ + lane0_ + delta / 2) % kArrayBytes;
            ldGlobal(base + off0, 4, 4);
            u64 off = (slice_ + lane0_ + delta) % kArrayBytes;
            ldGlobal(base + off, 4, 4);
            u64 off2 = (slice_ + lane0_ + 2 * delta) % kArrayBytes;
            ldGlobal(base + off2, 4, 4);
            alu(6, true);
        }
        sfu(2); // reciprocals in the reduction formula
        // Read-modify-write of the warp's own system slice: re-read
        // every step, so any reasonable cache captures it.
        ldGlobal(kArrayBase + (slice_ + lane0_) % kArrayBytes, 4, 4);
        alu(1, true);
        stGlobal(kArrayBase + (slice_ + lane0_) % kArrayBytes, 4, 4);

        // Small scratchpad exchange between reduction levels.
        stShared(static_cast<Addr>(ctx().warpInCta) * 512, 4, 4);
        barrier();
        ldShared(static_cast<Addr>(ctx().warpInCta) * 512, 4, 4);
        alu(2, true);
    }

  private:
    u64 slice_ = 0;
    u64 lane0_ = 0;
};

class PcrKernel : public SyntheticKernel
{
  public:
    explicit PcrKernel(double scale)
    {
        params_.name = "pcr";
        params_.regsPerThread = 33;
        params_.sharedBytesPerCta = 20 * 256;
        params_.ctaThreads = 256;
        params_.gridCtas = scaledCtas(24, scale);
        params_.spillCurve =
            SpillCurve({{18, 1.39}, {24, 1.18}, {32, 1.03}, {40, 1.0}});
    }

    std::unique_ptr<WarpProgram>
    warpProgram(const WarpCtx& ctx) const override
    {
        return std::make_unique<PcrProgram>(ctx, params_);
    }
};

} // namespace

std::unique_ptr<KernelModel>
makePcr(double scale)
{
    return std::make_unique<PcrKernel>(scale);
}

} // namespace unimem
