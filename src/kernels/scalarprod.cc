/**
 * @file
 * Batched dot products (CUDA SDK "scalarProd").
 *
 * Two input vectors stream through fused multiply-adds; partial sums
 * reduce through the scratchpad (16 B/thread) every few chunks. Pure
 * streaming, cache-insensitive (Table 1: 1.00 / 1.00 / 1.00).
 */

#include "kernels/step_program.hh"
#include "kernels/workloads.hh"

namespace unimem {

namespace {

constexpr Addr kABase = 0;
constexpr Addr kBBase = 1ull << 32;
constexpr Addr kOutBase = 2ull << 32;
constexpr u32 kChunks = 24;

class ScalarProdProgram : public StepProgram
{
  public:
    ScalarProdProgram(const WarpCtx& ctx, const KernelParams& kp)
        : StepProgram(ctx, kp.regsPerThread, kChunks, kp.sharedBytesPerCta)
    {
        warpGid_ = static_cast<Addr>(ctx.ctaId) * ctx.warpsPerCta +
                   ctx.warpInCta;
    }

  protected:
    void
    emitStep(u32 step) override
    {
        Addr off = (warpGid_ * kChunks + step) * kWarpWidth * 4;
        ldGlobal(kABase + off, 4, 4);
        ldGlobal(kBBase + off, 4, 4);
        fma(static_cast<RegId>(numRegs() - 1));
        alu(1, true);

        if (step % 8 == 7) {
            // Tree reduction through the scratchpad.
            stShared(static_cast<Addr>(ctx().warpInCta) * 512, 4, 4);
            barrier();
            ldShared(static_cast<Addr>(ctx().warpInCta) * 512, 8, 4);
            alu(2, true);
            stGlobal(kOutBase + (warpGid_ * 32 + step) * 4, 4, 4);
        }
    }

  private:
    Addr warpGid_ = 0;
};

class ScalarProdKernel : public SyntheticKernel
{
  public:
    explicit ScalarProdKernel(double scale)
    {
        params_.name = "scalarprod";
        params_.regsPerThread = 18;
        params_.sharedBytesPerCta = 16 * 256;
        params_.ctaThreads = 256;
        params_.gridCtas = scaledCtas(32, scale);
        params_.spillCurve = SpillCurve({{18, 1.01}, {24, 1.0}});
    }

    std::unique_ptr<WarpProgram>
    warpProgram(const WarpCtx& ctx) const override
    {
        return std::make_unique<ScalarProdProgram>(ctx, params_);
    }
};

} // namespace

std::unique_ptr<KernelModel>
makeScalarProd(double scale)
{
    return std::make_unique<ScalarProdKernel>(scale);
}

} // namespace unimem
