/**
 * @file
 * Shared-memory tiled single-precision matrix multiply (CUDA SDK
 * "matrixMul").
 *
 * Classic 16x16 tiling: each step stages one A tile and one B tile in
 * the scratchpad (8 B/thread), synchronizes, and accumulates 16 inner
 * products out of the scratchpad. Concurrent CTAs in the same grid row
 * re-read the same A tiles and CTAs in the same column the same B tiles,
 * so even a small cache removes the ~4x redundancy the paper measures
 * without one (Table 1: 4.77 / 1.00 / 1.00).
 */

#include "kernels/step_program.hh"
#include "kernels/workloads.hh"

namespace unimem {

namespace {

constexpr Addr kABase = 0;
constexpr Addr kBBase = 1ull << 32;
constexpr Addr kCBase = 2ull << 32;
constexpr u32 kTiles = 12;    // K dimension in tiles
constexpr u32 kGridWidth = 4; // CTAs per grid row
constexpr u32 kTileBytes = 16 * 16 * 4;

class MatrixMulProgram : public StepProgram
{
  public:
    MatrixMulProgram(const WarpCtx& ctx, const KernelParams& kp)
        : StepProgram(ctx, kp.regsPerThread, kTiles + 1,
                      kp.sharedBytesPerCta),
          ctaRow_(ctx.ctaId / kGridWidth), ctaCol_(ctx.ctaId % kGridWidth)
    {
    }

  protected:
    void
    emitStep(u32 step) override
    {
        if (step == kTiles) {
            // Result tile streams out, coalesced.
            Addr c_addr = kCBase +
                          (static_cast<Addr>(ctx().ctaId) * 8 +
                           ctx().warpInCta) *
                              kWarpWidth * 4;
            stGlobal(c_addr, 4, 4);
            return;
        }

        // A tile depends on (ctaRow, k); B tile on (k, ctaCol): shared
        // across concurrent CTAs of the same row/column.
        Addr a_addr = kABase +
                      (static_cast<Addr>(ctaRow_) * kTiles + step) *
                          kTileBytes +
                      ctx().warpInCta % 8 * 128;
        Addr b_addr = kBBase +
                      (static_cast<Addr>(step) * kGridWidth + ctaCol_) *
                          kTileBytes +
                      ctx().warpInCta % 8 * 128;
        ldGlobal(a_addr, 4, 4);
        stShared(static_cast<Addr>(ctx().warpInCta) * 128, 4, 4);
        ldGlobal(b_addr, 4, 4);
        stShared(1024 + static_cast<Addr>(ctx().warpInCta) * 128, 4, 4);
        barrier();

        for (u32 k = 0; k < 16; ++k) {
            // A row element broadcast + B column strided.
            ldShared((static_cast<Addr>(k) * 64) % 1024, 0, 4);
            ldShared(1024 + static_cast<Addr>(k) * 4, 4, 4);
            fma(static_cast<RegId>(numRegs() - 1));
        }
        barrier();
    }

  private:
    u32 ctaRow_;
    u32 ctaCol_;
};

class MatrixMulKernel : public SyntheticKernel
{
  public:
    explicit MatrixMulKernel(double scale)
    {
        params_.name = "matrixmul";
        params_.regsPerThread = 17;
        params_.sharedBytesPerCta = 2048; // two 16x16 tiles
        params_.ctaThreads = 256;
        params_.gridCtas = scaledCtas(32, scale);
        params_.spillCurve = SpillCurve({{18, 1.04}, {24, 1.0}});
    }

    std::unique_ptr<WarpProgram>
    warpProgram(const WarpCtx& ctx) const override
    {
        return std::make_unique<MatrixMulProgram>(ctx, params_);
    }
};

} // namespace

std::unique_ptr<KernelModel>
makeMatrixMul(double scale)
{
    return std::make_unique<MatrixMulKernel>(scale);
}

} // namespace unimem
