/**
 * @file
 * Needleman-Wunsch DNA sequence alignment (Rodinia "needle").
 *
 * The 2048x2048 dynamic-programming matrix is processed in BF x BF tiles;
 * a tile plus its reference block live in the scratchpad, giving the
 * paper's ~264 bytes of shared memory per thread at BF=32 (Table 1) and
 * making the kernel shared-memory limited. Processing sweeps 2*BF-1
 * anti-diagonals with a barrier per step. Border columns are fetched with
 * an 8 KB row stride, so each fetched cache line contributes only 4 used
 * bytes - the line overfetch that makes needle's DRAM traffic *lower*
 * without a cache (Table 1: 0.85).
 *
 * The blocking factor is a tuning parameter (paper Section 6.5 /
 * Figure 11): larger BF means fewer barriers and less redundant border
 * traffic but quadratically more scratchpad per CTA.
 */

#include <algorithm>

#include "common/log.hh"
#include "kernels/step_program.hh"
#include "kernels/workloads.hh"

namespace unimem {

namespace {

constexpr u32 kMatrixDim = 2048;
constexpr u32 kRowBytes = kMatrixDim * 4;

// The DP matrix is padded with a boundary row/column (the real kernel
// scores against row -1 / column -1), so cell (0, 0) sits one row into
// the allocation. Padding by a whole row keeps every address 128-byte
// line-aligned exactly as before while the edge tiles' border reads
// (cellAddr - kRowBytes, cellAddr - 4) stay inside the buffer instead
// of underflowing (caught by unimem-lint's global-in-local-aperture).
constexpr Addr kMatrixBase = kRowBytes;
constexpr Addr kRefBase = 1ull << 32;

class NeedleProgram : public StepProgram
{
  public:
    NeedleProgram(const WarpCtx& ctx, const KernelParams& kp, u32 bf)
        : StepProgram(ctx, kp.regsPerThread, 2 + (2 * bf - 1),
                      kp.sharedBytesPerCta),
          bf_(bf)
    {
        u32 tiles_per_row = kMatrixDim / bf_;
        tileRow_ = (ctx.ctaId / tiles_per_row) % tiles_per_row;
        tileCol_ = ctx.ctaId % tiles_per_row;
    }

  protected:
    void
    emitStep(u32 step) override
    {
        if (step == 0)
            emitPrologue();
        else if (step <= 2 * bf_ - 1)
            emitDiagonal(step - 1);
        else
            emitEpilogue();
    }

  private:
    /** Per-warp lane count and column offset for BF=64 two-warp CTAs. */
    u32 warpCols() const { return std::min(bf_, kWarpWidth); }
    u32 colBase() const { return ctx().warpInCta * kWarpWidth; }

    Addr
    cellAddr(u32 row, u32 col) const
    {
        return kMatrixBase +
               (static_cast<Addr>(tileRow_ * bf_ + row) * kMatrixDim +
                tileCol_ * bf_ + col) *
                   4;
    }

    /**
     * Scratchpad offset of DP cell i on anti-diagonal d.
     *
     * The DP tile uses a diagonal-major rotating layout (four live
     * diagonals), the standard bank-conflict-free organization for
     * wavefront kernels: cells of one diagonal are contiguous, so warp
     * accesses are unit-stride. The CTA still allocates the full
     * 2*(BF+1)^2 words (paper Table 1 footprint); the trace simply only
     * touches the live diagonals plus the reference block.
     */
    Addr
    diagOff(u32 d, u32 i) const
    {
        return (static_cast<Addr>(d % 4) * (bf_ + 2) + i + 1) * 4;
    }

    /** Scratchpad offset in the row-major reference block. */
    Addr
    refOff(u32 i, u32 j) const
    {
        return static_cast<Addr>(4) * (bf_ + 2) * 4 +
               (static_cast<Addr>(i) * bf_ + j) * 4;
    }

    void
    emitPrologue()
    {
        u32 mask = laneMask(warpCols());
        // Reference block rows: coalesced full-line row segments.
        for (u32 i = 0; i < bf_; ++i) {
            if (i % ctx().warpsPerCta != ctx().warpInCta)
                continue; // split rows across the CTA's warps
            ldGlobal(kRefBase + cellAddr(i, colBase()), 4, 4, mask);
            stShared(refOff(i, colBase()), 4, 4, mask);
        }
        // Left border column: one 4-byte cell per 8KB matrix row, so
        // each line fetched for it is only fractionally used (two cells
        // per lane over half the lanes).
        u32 col_mask = laneMask(std::min(warpCols(), 16u));
        LaneAddrs col{};
        for (u32 lane = 0; lane < kWarpWidth; ++lane)
            col[lane] = cellAddr(colBase() + 2 * lane, 0) - 4;
        ldGlobalIdx(col, 4, col_mask);
        stShared(diagOff(0, colBase()), 4, 4, mask);
        // Top border row: coalesced.
        if (ctx().warpInCta == 0) {
            ldGlobal(cellAddr(0, 0) - kRowBytes, 4, 4, laneMask(bf_));
            stShared(diagOff(1, 0), 4, 4, laneMask(bf_));
        }
        barrier();
    }

    void
    emitDiagonal(u32 d)
    {
        // Cells on anti-diagonal d: (i, d-i). Lanes cover rows; this
        // warp owns rows [colBase, colBase+32).
        u32 active = 0;
        LaneAddrs nw{}, n{}, w{}, ref{}, out{};
        for (u32 lane = 0; lane < kWarpWidth; ++lane) {
            u32 i = colBase() + lane;
            if (i > d || i >= bf_ || d - i >= bf_)
                continue;
            u32 j = d - i;
            nw[lane] = diagOff(d, i);
            n[lane] = diagOff(d + 1, i);
            w[lane] = diagOff(d + 1, i + 1);
            ref[lane] = refOff(i, j);
            out[lane] = diagOff(d + 2, i);
            active |= 1u << lane;
        }
        if (active != 0) {
            ldSharedIdx(nw, 4, active);
            ldSharedIdx(n, 4, active);
            ldSharedIdx(w, 4, active);
            ldSharedIdx(ref, 4, active);
            alu(2);
            stSharedIdx(out, 4, active);
        }
        barrier();
    }

    void
    emitEpilogue()
    {
        u32 mask = laneMask(warpCols());
        for (u32 i = 0; i < bf_; ++i) {
            if (i % ctx().warpsPerCta != ctx().warpInCta)
                continue;
            ldShared(diagOff(i, colBase()), 4, 4, mask);
            stGlobal(cellAddr(i, colBase()), 4, 4, mask);
        }
    }

    u32 bf_;
    u32 tileRow_ = 0;
    u32 tileCol_ = 0;
};

class NeedleKernel : public SyntheticKernel
{
  public:
    NeedleKernel(u32 bf, double scale) : bf_(bf)
    {
        if (bf != 16 && bf != 32 && bf != 64)
            fatal("needle: blocking factor %u not in {16, 32, 64}", bf);
        params_.name = bf == 32 ? "needle"
                                : strprintf("needle-bf%u", bf);
        params_.regsPerThread = 18;
        params_.sharedBytesPerCta = 2 * (bf + 1) * (bf + 1) * 4;
        params_.ctaThreads = std::max(bf, kWarpWidth);
        // Constant total matrix work: tiles shrink quadratically in BF.
        params_.gridCtas =
            scaledCtas(96, scale * (32.0 * 32.0) / (bf * bf));
        params_.spillCurve = SpillCurve({{18, 1.02}, {24, 1.0}});
    }

    std::unique_ptr<WarpProgram>
    warpProgram(const WarpCtx& ctx) const override
    {
        return std::make_unique<NeedleProgram>(ctx, params_, bf_);
    }

  private:
    u32 bf_;
};

} // namespace

std::unique_ptr<KernelModel>
makeNeedle(u32 blockingFactor, double scale)
{
    return std::make_unique<NeedleKernel>(blockingFactor, scale);
}

} // namespace unimem
