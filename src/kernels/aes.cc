/**
 * @file
 * AES block encryption (GPGPU-Sim suite "aes").
 *
 * The T-box lookup tables (4 KB) are staged into the scratchpad once per
 * CTA; each round then performs per-lane table lookups. The access
 * pattern follows the tuned CUDA implementation: lookups are mostly
 * conflict-free strides with a small random perturbation, so the
 * partitioned design sees few conflicts and the unified design's wider
 * 16-byte banks see slightly more (Table 5's 0.6 percentage-point
 * shift). Input/output blocks stream; cache-insensitive (Table 1:
 * 1.00 / 1.00 / 1.00).
 */

#include "kernels/step_program.hh"
#include "kernels/workloads.hh"

namespace unimem {

namespace {

constexpr Addr kTboxBase = 0;
constexpr Addr kInBase = 1ull << 32;
constexpr Addr kOutBase = 2ull << 32;
constexpr u32 kRounds = 10;
constexpr u32 kBlocks = 3;
constexpr u64 kTableBytes = 4096;

class AesProgram : public StepProgram
{
  public:
    AesProgram(const WarpCtx& ctx, const KernelParams& kp)
        : StepProgram(ctx, kp.regsPerThread, 1 + kBlocks * (kRounds + 2),
                      kp.sharedBytesPerCta)
    {
        warpGid_ = static_cast<Addr>(ctx.ctaId) * ctx.warpsPerCta +
                   ctx.warpInCta;
    }

  protected:
    void
    emitStep(u32 step) override
    {
        if (step == 0) {
            // Stage the T-boxes: each warp copies a slice.
            for (u32 i = 0; i < 2; ++i) {
                Addr off = (static_cast<Addr>(ctx().warpInCta) * 2 + i) *
                           kWarpWidth * 4 % kTableBytes;
                ldGlobal(kTboxBase + off, 4, 4);
                stShared(off, 4, 4);
            }
            barrier();
            return;
        }

        u32 phase = (step - 1) % (kRounds + 2);
        u32 block = (step - 1) / (kRounds + 2);
        if (phase == 0) {
            // Plaintext block in: coalesced.
            ldGlobal(kInBase +
                         (warpGid_ * kBlocks + block) * kWarpWidth * 16,
                     16, 4);
            alu(2);
        } else if (phase == kRounds + 1) {
            stGlobal(kOutBase +
                         (warpGid_ * kBlocks + block) * kWarpWidth * 16,
                     16, 4);
        } else {
            // One round: four T-box lookups. Lanes use a conflict-free
            // stride with ~0.5% perturbed lanes (data-dependent bytes).
            for (u32 t = 0; t < 4; ++t) {
                LaneAddrs a{};
                u64 base = rng().range(256);
                for (u32 lane = 0; lane < kWarpWidth; ++lane) {
                    u64 idx = (base + lane) % 256;
                    if (rng().chance(0.005))
                        idx = rng().range(256);
                    a[lane] = (static_cast<Addr>(t) * 1024 + idx * 4) %
                              kTableBytes;
                }
                ldSharedIdx(a, 4);
                alu(1);
            }
        }
    }

  private:
    Addr warpGid_ = 0;
};

class AesKernel : public SyntheticKernel
{
  public:
    explicit AesKernel(double scale)
    {
        params_.name = "aes";
        params_.regsPerThread = 28;
        params_.sharedBytesPerCta = 24 * 256;
        params_.ctaThreads = 256;
        params_.gridCtas = scaledCtas(24, scale);
        params_.spillCurve =
            SpillCurve({{18, 1.30}, {24, 1.18}, {32, 1.0}});
    }

    std::unique_ptr<WarpProgram>
    warpProgram(const WarpCtx& ctx) const override
    {
        return std::make_unique<AesProgram>(ctx, params_);
    }
};

} // namespace

std::unique_ptr<KernelModel>
makeAes(double scale)
{
    return std::make_unique<AesKernel>(scale);
}

} // namespace unimem
