/**
 * @file
 * MUMmerGPU DNA sequence alignment via suffix-tree traversal (Rodinia
 * "mummergpu" / paper "GPU-mummer").
 *
 * Threads stream query strings (coalesced) and walk a shared reference
 * suffix tree of ~56 KB - almost exactly the baseline 64 KB cache, which
 * is why the paper sees 1.48 / 1.01 / 1.00 DRAM traffic at 0 / 64 KB /
 * 256 KB ("a small working set for the input datasets we used"). Tree
 * node reads are pointer chases; warps traverse together near the root
 * (broadcast) and no scratchpad is used because the working set is
 * input-dependent (paper Section 3.2).
 */

#include "kernels/step_program.hh"
#include "kernels/workloads.hh"

namespace unimem {

namespace {

constexpr Addr kQueryBase = 0;
constexpr Addr kTreeBase = 1ull << 32;
constexpr u64 kTreeBytes = 56 * 1024;
constexpr u32 kQueriesPerWarp = 6;
constexpr u32 kWalkDepth = 10;

class MummerProgram : public StepProgram
{
  public:
    MummerProgram(const WarpCtx& ctx, const KernelParams& kp)
        : StepProgram(ctx, kp.regsPerThread, kQueriesPerWarp,
                      kp.sharedBytesPerCta)
    {
    }

  protected:
    void
    emitStep(u32 step) override
    {
        // Stream this query's characters (coalesced; 8B per thread).
        Addr q_addr = kQueryBase +
                      (static_cast<Addr>(ctx().ctaId) * ctx().warpsPerCta +
                       ctx().warpInCta) *
                          kQueriesPerWarp * kWarpWidth * 8 +
                      static_cast<Addr>(step) * kWarpWidth * 8;
        ldGlobal(q_addr, 8, 8);
        alu(2);

        // Pointer-chase down the tree. The warp stays together (all
        // lanes at the same node): one 16-byte node per step.
        u64 node = rng().range(64); // all queries enter near the root
        for (u32 d = 0; d < kWalkDepth; ++d) {
            LaneAddrs a{};
            Addr addr = kTreeBase + (node * 16) % kTreeBytes;
            for (u32 lane = 0; lane < kWarpWidth; ++lane)
                a[lane] = addr;
            ldGlobalIdx(a, 4);
            alu(6);
            // Next child: nearby for shallow levels, scattered deeper.
            node = node * 4 + 1 + rng().range(4) +
                   (d > 4 ? rng().range(64) : 0);
        }
        stGlobal(kQueryBase + (1ull << 31) + q_addr / 2, 4, 4);
    }
};

class MummerKernel : public SyntheticKernel
{
  public:
    explicit MummerKernel(double scale)
    {
        params_.name = "gpu-mummer";
        params_.regsPerThread = 21;
        params_.sharedBytesPerCta = 0;
        params_.ctaThreads = 256;
        params_.gridCtas = scaledCtas(24, scale);
        params_.spillCurve = SpillCurve({{18, 1.04}, {24, 1.0}});
    }

    std::unique_ptr<WarpProgram>
    warpProgram(const WarpCtx& ctx) const override
    {
        return std::make_unique<MummerProgram>(ctx, params_);
    }
};

} // namespace

std::unique_ptr<KernelModel>
makeMummer(double scale)
{
    return std::make_unique<MummerKernel>(scale);
}

} // namespace unimem
