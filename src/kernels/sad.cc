/**
 * @file
 * Sum-of-absolute-differences motion estimation (Parboil "sad").
 *
 * Streams the current-frame macroblock and reference-frame candidates
 * (both coalesced) through absolute-difference reductions. Pure
 * streaming: DRAM traffic is cache-insensitive (Table 1: 1.01 / 1.01 /
 * 1.00). Moderately register heavy (31/thread) for the candidate
 * offsets and partial sums.
 */

#include "kernels/step_program.hh"
#include "kernels/workloads.hh"

namespace unimem {

namespace {

constexpr Addr kCurBase = 0;
constexpr Addr kRefBase = 1ull << 32;
constexpr Addr kSadBase = 2ull << 32;
constexpr u32 kCandidates = 24;

class SadProgram : public StepProgram
{
  public:
    SadProgram(const WarpCtx& ctx, const KernelParams& kp)
        : StepProgram(ctx, kp.regsPerThread, kCandidates,
                      kp.sharedBytesPerCta)
    {
        warpGid_ = static_cast<Addr>(ctx.ctaId) * ctx.warpsPerCta +
                   ctx.warpInCta;
    }

  protected:
    void
    emitStep(u32 step) override
    {
        Addr cur = kCurBase +
                   (warpGid_ * kCandidates + step) * kWarpWidth * 4;
        Addr ref = kRefBase +
                   (warpGid_ * kCandidates + step) * kWarpWidth * 4;
        ldGlobal(cur, 4, 4);
        ldGlobal(ref, 4, 4);
        alu(4); // abs-diff + accumulate
        fma(static_cast<RegId>(numRegs() - 1 - step % 8), false);
        if (step % 6 == 5)
            stGlobal(kSadBase + (warpGid_ * kCandidates + step) * 4, 4,
                     4);
    }

  private:
    Addr warpGid_ = 0;
};

class SadKernel : public SyntheticKernel
{
  public:
    explicit SadKernel(double scale)
    {
        params_.name = "sad";
        params_.regsPerThread = 31;
        params_.sharedBytesPerCta = 0;
        params_.ctaThreads = 256;
        params_.gridCtas = scaledCtas(32, scale);
        params_.spillCurve = SpillCurve({{18, 1.01}, {24, 1.0}});
    }

    std::unique_ptr<WarpProgram>
    warpProgram(const WarpCtx& ctx) const override
    {
        return std::make_unique<SadProgram>(ctx, params_);
    }
};

} // namespace

std::unique_ptr<KernelModel>
makeSad(double scale)
{
    return std::make_unique<SadKernel>(scale);
}

} // namespace unimem
