/**
 * @file
 * 8x8 discrete cosine transform (CUDA SDK "dct8x8", the register-resident
 * variant with no scratchpad, per Table 1).
 *
 * Each thread keeps an 8x8 block's row in registers through two butterfly
 * passes: coalesced block loads, a long FP ALU chain, coalesced stores.
 * Cache-insensitive streaming (Table 1: 1.00 / 1.00 / 1.00).
 */

#include "kernels/step_program.hh"
#include "kernels/workloads.hh"

namespace unimem {

namespace {

constexpr Addr kInBase = 0;
constexpr Addr kOutBase = 1ull << 32;
constexpr u32 kBlocksPerThread = 8;

class DctProgram : public StepProgram
{
  public:
    DctProgram(const WarpCtx& ctx, const KernelParams& kp)
        : StepProgram(ctx, kp.regsPerThread, kBlocksPerThread,
                      kp.sharedBytesPerCta)
    {
        warpGid_ = static_cast<Addr>(ctx.ctaId) * ctx.warpsPerCta +
                   ctx.warpInCta;
    }

  protected:
    void
    emitStep(u32 step) override
    {
        Addr block =
            (warpGid_ * kBlocksPerThread + step) * kWarpWidth * 32;
        // Load 8 row elements (two 16B vector loads per thread).
        ldGlobal(kInBase + block, 16, 4);
        ldGlobal(kInBase + block + kWarpWidth * 16, 16, 4);
        // Row and column butterfly passes.
        alu(12, true);
        fma(static_cast<RegId>(numRegs() - 1));
        fma(static_cast<RegId>(numRegs() - 2));
        alu(10, true);
        stGlobal(kOutBase + block, 16, 4);
        stGlobal(kOutBase + block + kWarpWidth * 16, 16, 4);
    }

  private:
    Addr warpGid_ = 0;
};

class DctKernel : public SyntheticKernel
{
  public:
    explicit DctKernel(double scale)
    {
        params_.name = "dct8x8";
        params_.regsPerThread = 26;
        params_.sharedBytesPerCta = 0;
        params_.ctaThreads = 256;
        params_.gridCtas = scaledCtas(24, scale);
        params_.spillCurve =
            SpillCurve({{18, 1.16}, {24, 1.10}, {32, 1.0}});
    }

    std::unique_ptr<WarpProgram>
    warpProgram(const WarpCtx& ctx) const override
    {
        return std::make_unique<DctProgram>(ctx, params_);
    }
};

} // namespace

std::unique_ptr<KernelModel>
makeDct8x8(double scale)
{
    return std::make_unique<DctKernel>(scale);
}

} // namespace unimem
