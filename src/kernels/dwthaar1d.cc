/**
 * @file
 * One-level-per-kernel 1D Haar wavelet (CUDA SDK "dwtHaar1D").
 *
 * Signal pairs load coalesced, averages/differences compute in
 * registers, results ping-pong through a small scratchpad region
 * (8 B/thread) with per-level barriers. Streaming and cache-insensitive
 * (Table 1: 1.00 / 1.00 / 1.00).
 */

#include "kernels/step_program.hh"
#include "kernels/workloads.hh"

namespace unimem {

namespace {

constexpr Addr kInBase = 0;
constexpr Addr kOutBase = 1ull << 32;
constexpr u32 kLevels = 8;

class DwtProgram : public StepProgram
{
  public:
    DwtProgram(const WarpCtx& ctx, const KernelParams& kp)
        : StepProgram(ctx, kp.regsPerThread, kLevels + 2,
                      kp.sharedBytesPerCta),
          warpShared_(static_cast<Addr>(ctx.warpInCta) * 256)
    {
        warpGid_ = static_cast<Addr>(ctx.ctaId) * ctx.warpsPerCta +
                   ctx.warpInCta;
    }

  protected:
    void
    emitStep(u32 step) override
    {
        if (step == 0) {
            ldGlobal(kInBase + warpGid_ * kWarpWidth * 8, 8, 8);
            alu(2, true);
            stShared(warpShared_, 4, 4);
            barrier();
            return;
        }
        if (step == kLevels + 1) {
            ldShared(warpShared_, 4, 4);
            stGlobal(kOutBase + warpGid_ * kWarpWidth * 8, 8, 8);
            return;
        }
        u32 level = step - 1;
        Addr src = warpShared_ + (level % 2) * 128;
        ldShared(src, 4, 4, laneMask(kWarpWidth >> (level % 4)));
        alu(3, true);
        stShared(warpShared_ + ((level + 1) % 2) * 128, 4, 4,
                 laneMask(kWarpWidth >> (level % 4)));
        barrier();
    }

  private:
    Addr warpShared_;
    Addr warpGid_ = 0;
};

class DwtKernel : public SyntheticKernel
{
  public:
    explicit DwtKernel(double scale)
    {
        params_.name = "dwthaar1d";
        params_.regsPerThread = 14;
        params_.sharedBytesPerCta = 8 * 256;
        params_.ctaThreads = 256;
        params_.gridCtas = scaledCtas(32, scale);
        params_.spillCurve = SpillCurve();
    }

    std::unique_ptr<WarpProgram>
    warpProgram(const WarpCtx& ctx) const override
    {
        return std::make_unique<DwtProgram>(ctx, params_);
    }
};

} // namespace

std::unique_ptr<KernelModel>
makeDwtHaar1d(double scale)
{
    return std::make_unique<DwtKernel>(scale);
}

} // namespace unimem
