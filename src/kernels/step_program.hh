/**
 * @file
 * Base class for synthetic warp-trace generators.
 *
 * A StepProgram produces its trace one "step" at a time (typically one
 * loop iteration of the modeled kernel), using emission helpers that
 * maintain a realistic register dataflow pattern: destinations rotate
 * through the kernel's register budget, most ALU sources are recent
 * values (which the LRF/ORF hierarchy captures), and a configurable
 * fraction are long-lived values that must come from the MRF.
 */

#ifndef UNIMEM_KERNELS_STEP_PROGRAM_HH
#define UNIMEM_KERNELS_STEP_PROGRAM_HH

#include <algorithm>
#include <array>

#include "arch/gpu_constants.hh"
#include "arch/warp_program.hh"
#include "common/rng.hh"

namespace unimem {

/** All 32 lanes active. */
constexpr u32 kFullMask = 0xffffffffu;

/** Mask with the low @p n lanes active. */
constexpr u32
laneMask(u32 n)
{
    return n >= kWarpWidth ? kFullMask : ((1u << n) - 1u);
}

/** Per-lane address vector. */
using LaneAddrs = std::array<Addr, kWarpWidth>;

/** Step-wise warp trace generator with register-pattern helpers. */
class StepProgram : public WarpProgram
{
  public:
    bool fill(std::vector<WarpInstr>& buf) final;

  protected:
    /**
     * @param ctx warp identity
     * @param numRegs the kernel's no-spill register budget; emitted
     *        register ids stay below this
     * @param numSteps number of emitStep() calls before the trace ends
     * @param sharedBytesPerCta used to place this CTA's scratchpad region
     */
    StepProgram(const WarpCtx& ctx, u32 numRegs, u32 numSteps,
                u32 sharedBytesPerCta);

    /** Emit one step of the trace (append via the helpers below). */
    virtual void emitStep(u32 step) = 0;

    const WarpCtx& ctx() const { return ctx_; }
    Rng& rng() { return rng_; }
    u32 numRegs() const { return numRegs_; }

    /** Base address of this CTA's scratchpad allocation. */
    Addr sharedBase() const { return sharedBase_; }

    /** Global thread id of lane @p lane. */
    u64
    threadId(u32 lane) const
    {
        return ctx_.firstThread() + lane;
    }

    // ---- register helpers -------------------------------------------

    // The register helpers and emission primitives are in the header:
    // they run once or more per generated instruction, and trace
    // generation is a measurable slice of a whole simulation run.

    /** Most recently written register. */
    RegId lastReg() const { return last_; }

    /** Next rotating destination register. */
    RegId
    nextReg()
    {
        RegId r = static_cast<RegId>(rot_ % numRegs_);
        ++rot_;
        last_ = r;
        recent_[recentPos_ % recent_.size()] = r;
        ++recentPos_;
        return r;
    }

    /** Uniformly random register id below the budget. */
    RegId randomReg() { return static_cast<RegId>(rng_.range(numRegs_)); }

    /**
     * One of the last few written registers (likely still in the ORF).
     */
    RegId
    recentReg()
    {
        u32 n = std::min<u32>(recentPos_, static_cast<u32>(recent_.size()));
        if (n == 0)
            return 0;
        return recent_[rng_.range(n)];
    }

    // ---- emission helpers -------------------------------------------

    /**
     * Emit @p count ALU ops. Each reads the last result plus a second
     * source that is recent with probability @p recentFrac (long-lived
     * MRF values otherwise).
     */
    void alu(u32 count = 1, bool fp = false, double recentFrac = 0.7);

    /** Fused multiply-add into a fixed accumulator register. */
    void fma(RegId acc, bool fp = true);

    void sfu(u32 count = 1);

    void barrier();

    /** Load with per-lane addresses base + lane * stride. */
    RegId ldGlobal(Addr base, i64 laneStride, u8 bytes = 4,
                   u32 mask = kFullMask);

    /** Load with explicit per-lane addresses. */
    RegId ldGlobalIdx(const LaneAddrs& addrs, u8 bytes = 4,
                      u32 mask = kFullMask);

    void stGlobal(Addr base, i64 laneStride, u8 bytes = 4,
                  u32 mask = kFullMask);

    void stGlobalIdx(const LaneAddrs& addrs, u8 bytes = 4,
                     u32 mask = kFullMask);

    /** Scratchpad load at CTA-relative offset + lane * stride. */
    RegId ldShared(Addr ctaOffset, i64 laneStride, u8 bytes = 4,
                   u32 mask = kFullMask);

    RegId ldSharedIdx(const LaneAddrs& ctaOffsets, u8 bytes = 4,
                      u32 mask = kFullMask);

    void stShared(Addr ctaOffset, i64 laneStride, u8 bytes = 4,
                  u32 mask = kFullMask);

    void stSharedIdx(const LaneAddrs& ctaOffsets, u8 bytes = 4,
                     u32 mask = kFullMask);

    /** Texture fetch with explicit per-lane addresses. */
    RegId texFetch(const LaneAddrs& addrs, u8 bytes = 4,
                   u32 mask = kFullMask);

  private:
    WarpInstr&
    append(Opcode op, RegId dst, u32 mask)
    {
        buf_->emplace_back();
        WarpInstr& in = buf_->back();
        in.op = op;
        in.dst = dst;
        in.activeMask = mask;
        return in;
    }

    RegId
    avoidBankOf(RegId r, RegId other)
    {
        // Real compilers allocate the operands of one instruction to
        // different MRF banks (paper Section 2.1 / [27]); model that
        // with a high success rate, leaving a residue of unavoidable
        // conflicts.
        if (r % kBanksPerCluster == other % kBanksPerCluster &&
            rng_.chance(0.9))
            return static_cast<RegId>((r + 1) % numRegs_);
        return r;
    }

    RegId emitAddrCompute();

    /**
     * Emit the address compute + access skeleton and return the
     * instruction so the caller can fill its lane addresses in place
     * (avoids staging the 256-byte address vector through a temporary).
     */
    WarpInstr& emitLoad(Opcode op, u8 bytes, u32 mask, RegId& dstOut);
    WarpInstr& emitStore(Opcode op, u8 bytes, u32 mask);

    WarpCtx ctx_;
    u32 numRegs_;
    u32 numSteps_;
    u32 step_ = 0;
    Addr sharedBase_;

    std::vector<WarpInstr>* buf_ = nullptr;
    Rng rng_;

    u32 rot_ = 0;
    RegId last_ = 0;
    std::array<RegId, 4> recent_{0, 0, 0, 0};
    u32 recentPos_ = 0;
};

} // namespace unimem

#endif // UNIMEM_KERNELS_STEP_PROGRAM_HH
