/**
 * @file
 * Benchmark registry: metadata for every Table 1 workload (category,
 * paper reference numbers used by the harnesses and tests) and a factory
 * keyed by name.
 */

#ifndef UNIMEM_KERNELS_REGISTRY_HH
#define UNIMEM_KERNELS_REGISTRY_HH

#include <memory>
#include <string>
#include <vector>

#include "arch/kernel_model.hh"

namespace unimem {

/** Paper Table 1 categories. */
enum class WorkloadCategory : u8
{
    SharedLimited,
    CacheLimited,
    RegisterLimited,
    Balanced,
};

const char* categoryName(WorkloadCategory c);

/** Registry entry with the paper's reference characterization. */
struct BenchmarkInfo
{
    const char* name;
    WorkloadCategory category;

    /** In the paper's Figure 9 "benefits from unified memory" set. */
    bool benefits;

    /** Table 1 column 2: registers/thread to eliminate spills. */
    u32 paperRegs;

    /** Table 1 column 9: scratchpad bytes per thread. */
    double paperSharedPerThread;

    /** Table 1 columns 10-12: normalized DRAM accesses at 0/64K/256K. */
    double paperDramNone;
    double paperDram64k;
    double paperDram256k;
};

/** All 26 Table 1 benchmarks in paper order. */
const std::vector<BenchmarkInfo>& allBenchmarks();

/** Lookup by name; nullptr if unknown. */
const BenchmarkInfo* findBenchmark(const std::string& name);

/** Names of the paper's Figure 9 (benefit) set. */
std::vector<std::string> benefitBenchmarkNames();

/** Names of the paper's Figure 7 (no-benefit) set. */
std::vector<std::string> noBenefitBenchmarkNames();

/**
 * Instantiate a benchmark by registry name; fatal() on unknown names.
 * Needle uses its default blocking factor of 32 (see makeNeedle for
 * other blocking factors).
 */
std::unique_ptr<KernelModel> createBenchmark(const std::string& name,
                                             double scale = 1.0);

} // namespace unimem

#endif // UNIMEM_KERNELS_REGISTRY_HH
