/**
 * @file
 * All-pairs N-body force computation (CUDA SDK "nbody", shared-memory
 * staging disabled as in the paper's Table 1, which reports zero
 * scratchpad use).
 *
 * Every thread accumulates forces from every body: body j's position is
 * a warp-wide broadcast read, repeated by every warp in the SM, so a
 * small cache collapses the redundancy (Table 1: 3.52 without a cache,
 * flat from 64 KB up - the body array is only ~8 KB).
 */

#include "kernels/step_program.hh"
#include "kernels/workloads.hh"

namespace unimem {

namespace {

constexpr Addr kPosBase = 0;
constexpr Addr kOutBase = 1ull << 32;
constexpr u32 kBodies = 512;
constexpr u32 kBodiesPerStep = 8;

class NbodyProgram : public StepProgram
{
  public:
    NbodyProgram(const WarpCtx& ctx, const KernelParams& kp)
        : StepProgram(ctx, kp.regsPerThread,
                      kBodies / kBodiesPerStep + 2, kp.sharedBytesPerCta)
    {
    }

  protected:
    void
    emitStep(u32 step) override
    {
        if (step == 0) {
            // Own position: coalesced 16B per thread.
            ldGlobal(kPosBase + (1ull << 31) + threadId(0) * 16, 16, 8);
            alu(2, true);
            return;
        }
        if (step == kBodies / kBodiesPerStep + 1) {
            stGlobal(kOutBase + threadId(0) * 16, 16, 8);
            return;
        }

        // Per-step interaction parameters stream (softening, masses):
        // fresh coalesced data that dilutes the broadcast redundancy.
        ldGlobal(kOutBase + (1ull << 30) +
                     (static_cast<Addr>(step) * (1ull << 20) +
                      threadId(0)) *
                         4,
                 4, 4);

        for (u32 b = 0; b < kBodiesPerStep; ++b) {
            u32 j = (step - 1) * kBodiesPerStep + b;
            LaneAddrs a{};
            for (u32 lane = 0; lane < kWarpWidth; ++lane)
                a[lane] = kPosBase + static_cast<Addr>(j) * 16;
            ldGlobalIdx(a, 8);
            fma(static_cast<RegId>(numRegs() - 1));
            fma(static_cast<RegId>(numRegs() - 2));
            fma(static_cast<RegId>(numRegs() - 3));
        }
        if (step % 16 == 0)
            sfu(1); // inverse square root
    }
};

class NbodyKernel : public SyntheticKernel
{
  public:
    explicit NbodyKernel(double scale)
    {
        params_.name = "nbody";
        params_.regsPerThread = 23;
        params_.sharedBytesPerCta = 0;
        params_.ctaThreads = 256;
        params_.gridCtas = scaledCtas(8, scale);
        params_.spillCurve = SpillCurve({{18, 1.0}});
    }

    std::unique_ptr<WarpProgram>
    warpProgram(const WarpCtx& ctx) const override
    {
        return std::make_unique<NbodyProgram>(ctx, params_);
    }
};

} // namespace

std::unique_ptr<KernelModel>
makeNbody(double scale)
{
    return std::make_unique<NbodyKernel>(scale);
}

} // namespace unimem
