/**
 * @file
 * Blocked LU decomposition (Rodinia "lud").
 *
 * Each step stages a pivot-row/column segment of the matrix into the
 * scratchpad (96 bytes per thread - high scratchpad demand), updates the
 * trailing submatrix, and writes results back. Row segments are
 * re-touched by later elimination steps across the ~160 KB active
 * working region, so a large primary cache removes most of the repeated
 * DRAM reads (Table 1: 1.94 / 1.46 / 1.00 at 0 / 64 KB / 256 KB).
 */

#include "kernels/step_program.hh"
#include "kernels/workloads.hh"

namespace unimem {

namespace {

constexpr Addr kMatrixBase = 0;
constexpr Addr kOutBase = 1ull << 32;
constexpr u32 kSteps = 24;

class LuProgram : public StepProgram
{
  public:
    LuProgram(const WarpCtx& ctx, const KernelParams& kp)
        : StepProgram(ctx, kp.regsPerThread, kSteps, kp.sharedBytesPerCta)
    {
    }

  protected:
    void
    emitStep(u32 step) override
    {
        // Two elimination sweeps over the CTA's 24KB trailing-submatrix
        // band: every row segment is read again one sweep later, so the
        // reuse distance spans the ~100KB that the four concurrent CTAs
        // keep hot - 64KB captures part of it, 256KB all of it
        // (Table 1: 1.94 / 1.46 / 1.00).
        u32 band = ctx().ctaId % 4;
        u32 row = step % (kSteps / 2);
        Addr row_addr = kMatrixBase +
                        static_cast<Addr>(band) * (kSteps / 2) * 2048 +
                        static_cast<Addr>(row) * 2048 +
                        ctx().warpInCta * 256;
        ldGlobal(row_addr, 4, 4);
        ldGlobal(row_addr + 128, 4, 4);
        stShared(static_cast<Addr>(ctx().warpInCta) * 3072, 4, 4);
        barrier();

        // Trailing-submatrix update out of the scratchpad.
        for (u32 i = 0; i < 4; ++i) {
            Addr off =
                (static_cast<Addr>(ctx().warpInCta) * 3072 + i * 512) %
                24576;
            ldShared(off, 4, 4);
            ldShared((off + 2048) % 24576, 4, 4);
            alu(8, true);
        }
        barrier();

        // Updated segment streams out.
        Addr out_addr = kOutBase +
                        (static_cast<Addr>(ctx().ctaId) * kSteps + step) *
                            8192 +
                        ctx().warpInCta * 128;
        stGlobal(out_addr, 4, 4);
    }
};

class LuKernel : public SyntheticKernel
{
  public:
    explicit LuKernel(double scale)
    {
        params_.name = "lu";
        params_.regsPerThread = 20;
        params_.sharedBytesPerCta = 96 * 256;
        params_.ctaThreads = 256;
        params_.gridCtas = scaledCtas(16, scale);
        params_.spillCurve = SpillCurve({{18, 1.0}});
    }

    std::unique_ptr<WarpProgram>
    warpProgram(const WarpCtx& ctx) const override
    {
        return std::make_unique<LuProgram>(ctx, params_);
    }
};

} // namespace

std::unique_ptr<KernelModel>
makeLu(double scale)
{
    return std::make_unique<LuKernel>(scale);
}

} // namespace unimem
