/**
 * @file
 * Recursive Gaussian blur (CUDA SDK "recursiveGaussian").
 *
 * A column-parallel IIR filter: the forward pass streams rows down the
 * image band, the short backward pass re-reads the most recent quarter.
 * The modest re-read (Table 1: 1.04 / 1.03 / 1.00) is captured by any
 * reasonable cache.
 */

#include "kernels/step_program.hh"
#include "kernels/workloads.hh"

namespace unimem {

namespace {

constexpr Addr kImgBase = 0;
constexpr Addr kOutBase = 1ull << 32;
constexpr u32 kRows = 24;
constexpr u32 kRowBytes = 1024;

class RecGaussProgram : public StepProgram
{
  public:
    RecGaussProgram(const WarpCtx& ctx, const KernelParams& kp)
        : StepProgram(ctx, kp.regsPerThread, kRows + kRows / 4,
                      kp.sharedBytesPerCta),
          band_(kImgBase +
                static_cast<Addr>(ctx.ctaId) * kRows * kRowBytes)
    {
    }

  protected:
    void
    emitStep(u32 step) override
    {
        bool backward = step >= kRows;
        u32 row = backward ? kRows - 1 - (step - kRows) : step;
        Addr addr = band_ + static_cast<Addr>(row) * kRowBytes +
                    ctx().warpInCta * 128;
        ldGlobal(addr, 4, 4);
        alu(7, true); // recursive filter taps carry state in registers
        stGlobal(kOutBase + (addr - kImgBase), 4, 4);
        if (step % 8 == 3) {
            stShared(static_cast<Addr>(ctx().warpInCta) * 64, 4, 4, laneMask(16));
            barrier();
        }
    }

  private:
    Addr band_;
};

class RecGaussKernel : public SyntheticKernel
{
  public:
    explicit RecGaussKernel(double scale)
    {
        params_.name = "recursivegaussian";
        params_.regsPerThread = 23;
        params_.sharedBytesPerCta = 544;
        params_.ctaThreads = 256;
        params_.gridCtas = scaledCtas(24, scale);
        params_.spillCurve = SpillCurve({{18, 1.02}, {24, 1.0}});
    }

    std::unique_ptr<WarpProgram>
    warpProgram(const WarpCtx& ctx) const override
    {
        return std::make_unique<RecGaussProgram>(ctx, params_);
    }
};

} // namespace

std::unique_ptr<KernelModel>
makeRecursiveGaussian(double scale)
{
    return std::make_unique<RecGaussKernel>(scale);
}

} // namespace unimem
