/**
 * @file
 * Speckle-reducing anisotropic diffusion (Rodinia "srad").
 *
 * Two passes of a 5-point stencil over a wide image band: pass 1 computes
 * diffusion coefficients, pass 2 re-reads the band to apply the update.
 * The band re-read distance (~190 KB across the concurrent CTAs) exceeds
 * 64 KB but fits in 256 KB, reproducing the paper's near-flat 64 KB
 * column (Table 1: 1.22 / 1.20 / 1.00) and srad's large-cache benefit
 * (Figures 4 and 9). Moderate registers (18) and scratchpad
 * (24 B/thread).
 */

#include "kernels/step_program.hh"
#include "kernels/workloads.hh"

namespace unimem {

namespace {

constexpr Addr kImgBase = 0;
constexpr Addr kCoefBase = 1ull << 32;
constexpr Addr kOutBase = 2ull << 32;
constexpr u32 kRows = 24;
constexpr u32 kRowBytes = 1024; // per-CTA band row (256 threads x 4B)

class SradProgram : public StepProgram
{
  public:
    SradProgram(const WarpCtx& ctx, const KernelParams& kp)
        : StepProgram(ctx, kp.regsPerThread, 2 * kRows,
                      kp.sharedBytesPerCta),
          band_(kImgBase +
                static_cast<Addr>(ctx.ctaId) * kRows * kRowBytes)
    {
    }

  protected:
    void
    emitStep(u32 step) override
    {
        bool second_pass = step >= kRows;
        u32 row = step % kRows;
        Addr row_addr = band_ + static_cast<Addr>(row) * kRowBytes +
                        ctx().warpInCta * 128;

        if (!second_pass) {
            // Pass 1: 5-point stencil over the image band; coefficients
            // staged in scratchpad and written out.
            ldGlobal(row_addr, 4, 4);
            ldGlobal(row_addr >= kRowBytes ? row_addr - kRowBytes
                                           : row_addr,
                     4, 4);
            ldGlobal(row_addr + kRowBytes, 4, 4);
            alu(4, true);
            sfu(1);
            stShared(static_cast<Addr>(ctx().warpInCta) * 768, 4, 4);
            alu(2, true);
            stGlobal(kCoefBase + (row_addr - kImgBase), 4, 4);
        } else {
            // Pass 2: re-reads the image row and its coefficients - the
            // band-distance reuse that only a large cache captures.
            ldGlobal(row_addr, 4, 4);
            ldGlobal(kCoefBase + (row_addr - kImgBase), 4, 4);
            ldShared(static_cast<Addr>(ctx().warpInCta) * 768, 4, 4);
            alu(4, true);
            stGlobal(kOutBase + (row_addr - kImgBase), 4, 4);
        }
    }

  private:
    Addr band_;
};

class SradKernel : public SyntheticKernel
{
  public:
    explicit SradKernel(double scale)
    {
        params_.name = "srad";
        params_.regsPerThread = 18;
        params_.sharedBytesPerCta = 24 * 256;
        params_.ctaThreads = 256;
        params_.gridCtas = scaledCtas(24, scale);
        params_.spillCurve = SpillCurve();
    }

    std::unique_ptr<WarpProgram>
    warpProgram(const WarpCtx& ctx) const override
    {
        return std::make_unique<SradProgram>(ctx, params_);
    }
};

} // namespace

std::unique_ptr<KernelModel>
makeSrad(double scale)
{
    return std::make_unique<SradKernel>(scale);
}

} // namespace unimem