/**
 * @file
 * Single-precision matrix-vector multiply (MAGMA "sgemv").
 *
 * The matrix streams through once row by row while the small x vector
 * (4 KB) is re-read per row; the vector fits in any cache (Table 1:
 * 1.01 / 1.01 / 1.00). Light register (14) and scratchpad (4 B/thread)
 * use.
 */

#include "kernels/step_program.hh"
#include "kernels/workloads.hh"

namespace unimem {

namespace {

constexpr Addr kMatBase = 0;
constexpr Addr kVecBase = 1ull << 32;
constexpr Addr kOutBase = 2ull << 32;
constexpr u64 kVecBytes = 4 * 1024;
constexpr u32 kRows = 24;

class SgemvProgram : public StepProgram
{
  public:
    SgemvProgram(const WarpCtx& ctx, const KernelParams& kp)
        : StepProgram(ctx, kp.regsPerThread, kRows, kp.sharedBytesPerCta)
    {
        warpGid_ = static_cast<Addr>(ctx.ctaId) * ctx.warpsPerCta +
                   ctx.warpInCta;
    }

  protected:
    void
    emitStep(u32 step) override
    {
        // Fresh matrix row slice (dominant stream).
        Addr m = kMatBase + (warpGid_ * kRows + step) * kWarpWidth * 8;
        ldGlobal(m, 4, 4);
        ldGlobal(m + kWarpWidth * 4, 4, 4);
        // x element: broadcast, re-read by every warp.
        LaneAddrs x{};
        Addr xa = kVecBase + (static_cast<Addr>(step) * 128) % kVecBytes;
        for (u32 lane = 0; lane < kWarpWidth; ++lane)
            x[lane] = xa;
        ldGlobalIdx(x, 4);
        fma(static_cast<RegId>(numRegs() - 1));
        alu(1, true);
        if (step % 12 == 11) {
            stShared(static_cast<Addr>(ctx().warpInCta) * 128, 4, 4);
            barrier();
            stGlobal(kOutBase + warpGid_ * 8, 4, 4);
        }
    }

  private:
    Addr warpGid_ = 0;
};

class SgemvKernel : public SyntheticKernel
{
  public:
    explicit SgemvKernel(double scale)
    {
        params_.name = "sgemv";
        params_.regsPerThread = 14;
        params_.sharedBytesPerCta = 4 * 256;
        params_.ctaThreads = 256;
        params_.gridCtas = scaledCtas(24, scale);
        params_.spillCurve = SpillCurve();
    }

    std::unique_ptr<WarpProgram>
    warpProgram(const WarpCtx& ctx) const override
    {
        return std::make_unique<SgemvProgram>(ctx, params_);
    }
};

} // namespace

std::unique_ptr<KernelModel>
makeSgemv(double scale)
{
    return std::make_unique<SgemvKernel>(scale);
}

} // namespace unimem
