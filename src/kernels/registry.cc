#include "kernels/registry.hh"

#include "common/log.hh"
#include "kernels/workloads.hh"

namespace unimem {

u32
scaledCtas(u32 base, double scale)
{
    double v = static_cast<double>(base) * scale;
    u32 ctas = static_cast<u32>(v + 0.5);
    return ctas == 0 ? 1 : ctas;
}

const char*
categoryName(WorkloadCategory c)
{
    switch (c) {
      case WorkloadCategory::SharedLimited: return "shared-limited";
      case WorkloadCategory::CacheLimited: return "cache-limited";
      case WorkloadCategory::RegisterLimited: return "register-limited";
      case WorkloadCategory::Balanced: return "balanced";
    }
    panic("categoryName: bad category %d", static_cast<int>(c));
}

const std::vector<BenchmarkInfo>&
allBenchmarks()
{
    using WC = WorkloadCategory;
    static const std::vector<BenchmarkInfo> table = {
        // name, category, benefits, regs, shared B/thr, dram 0/64K/256K
        {"needle", WC::SharedLimited, true, 18, 264.1, 0.85, 1.00, 1.00},
        {"sto", WC::SharedLimited, false, 33, 127.0, 3.95, 1.00, 1.00},
        {"lu", WC::SharedLimited, true, 20, 96.0, 1.94, 1.46, 1.00},
        {"gpu-mummer", WC::CacheLimited, true, 21, 0.0, 1.48, 1.01, 1.00},
        {"bfs", WC::CacheLimited, true, 9, 0.0, 1.46, 1.13, 1.00},
        {"backprop", WC::CacheLimited, false, 17, 2.125, 1.56, 1.00, 1.00},
        {"matrixmul", WC::CacheLimited, false, 17, 8.0, 4.77, 1.00, 1.00},
        {"nbody", WC::CacheLimited, false, 23, 0.0, 3.52, 1.00, 1.00},
        {"vectoradd", WC::CacheLimited, false, 9, 0.0, 3.88, 1.00, 1.00},
        {"srad", WC::CacheLimited, true, 18, 24.0, 1.22, 1.20, 1.00},
        {"dgemm", WC::RegisterLimited, true, 57, 66.5, 1.00, 1.00, 1.00},
        {"pcr", WC::RegisterLimited, true, 33, 20.0, 2.88, 1.29, 1.00},
        {"bicubictexture", WC::RegisterLimited, false, 33, 0.0, 1.00, 1.00,
         1.00},
        {"hwt", WC::RegisterLimited, false, 35, 23.0, 1.00, 1.00, 1.00},
        {"ray", WC::RegisterLimited, true, 42, 0.0, 1.02, 1.07, 1.00},
        {"hotspot", WC::Balanced, false, 22, 12.0, 1.44, 1.00, 1.00},
        {"recursivegaussian", WC::Balanced, false, 23, 2.125, 1.04, 1.03,
         1.00},
        {"sad", WC::Balanced, false, 31, 0.0, 1.01, 1.01, 1.00},
        {"scalarprod", WC::Balanced, false, 18, 16.0, 1.00, 1.00, 1.00},
        {"sgemv", WC::Balanced, false, 14, 4.0, 1.01, 1.01, 1.00},
        {"sobolqrng", WC::Balanced, false, 12, 2.0, 1.00, 1.00, 1.00},
        {"aes", WC::Balanced, false, 28, 24.0, 1.00, 1.00, 1.00},
        {"dct8x8", WC::Balanced, false, 26, 0.0, 1.00, 1.00, 1.00},
        {"dwthaar1d", WC::Balanced, false, 14, 8.0, 1.00, 1.00, 1.00},
        {"lps", WC::Balanced, false, 15, 19.0, 1.48, 1.00, 1.00},
        {"nn", WC::Balanced, false, 13, 0.0, 20.81, 1.07, 1.00},
    };
    return table;
}

const BenchmarkInfo*
findBenchmark(const std::string& name)
{
    for (const BenchmarkInfo& info : allBenchmarks())
        if (name == info.name)
            return &info;
    return nullptr;
}

std::vector<std::string>
benefitBenchmarkNames()
{
    std::vector<std::string> out;
    for (const BenchmarkInfo& info : allBenchmarks())
        if (info.benefits)
            out.push_back(info.name);
    return out;
}

std::vector<std::string>
noBenefitBenchmarkNames()
{
    std::vector<std::string> out;
    for (const BenchmarkInfo& info : allBenchmarks())
        if (!info.benefits)
            out.push_back(info.name);
    return out;
}

std::unique_ptr<KernelModel>
createBenchmark(const std::string& name, double scale)
{
    if (name == "needle")
        return makeNeedle(32, scale);
    if (name == "sto")
        return makeSto(scale);
    if (name == "lu")
        return makeLu(scale);
    if (name == "gpu-mummer")
        return makeMummer(scale);
    if (name == "bfs")
        return makeBfs(scale);
    if (name == "backprop")
        return makeBackprop(scale);
    if (name == "matrixmul")
        return makeMatrixMul(scale);
    if (name == "nbody")
        return makeNbody(scale);
    if (name == "vectoradd")
        return makeVectorAdd(scale);
    if (name == "srad")
        return makeSrad(scale);
    if (name == "dgemm")
        return makeDgemm(scale);
    if (name == "pcr")
        return makePcr(scale);
    if (name == "bicubictexture")
        return makeBicubicTexture(scale);
    if (name == "hwt")
        return makeHwt(scale);
    if (name == "ray")
        return makeRay(scale);
    if (name == "hotspot")
        return makeHotspot(scale);
    if (name == "recursivegaussian")
        return makeRecursiveGaussian(scale);
    if (name == "sad")
        return makeSad(scale);
    if (name == "scalarprod")
        return makeScalarProd(scale);
    if (name == "sgemv")
        return makeSgemv(scale);
    if (name == "sobolqrng")
        return makeSobolQrng(scale);
    if (name == "aes")
        return makeAes(scale);
    if (name == "dct8x8")
        return makeDct8x8(scale);
    if (name == "dwthaar1d")
        return makeDwtHaar1d(scale);
    if (name == "lps")
        return makeLps(scale);
    if (name == "nn")
        return makeNn(scale);
    fatal("createBenchmark: unknown benchmark '%s'", name.c_str());
}

} // namespace unimem
