/**
 * @file
 * 1D Haar wavelet transform (GPGPU-Sim suite "hwt", the multi-level
 * variant with 35 registers per thread).
 *
 * The signal is loaded once, transformed level by level in the
 * scratchpad (23 B/thread) with a barrier between levels, and written
 * back - negligible cache sensitivity (Table 1: 1.00 / 1.00 / 1.00) but
 * high register pressure for the filter state.
 */

#include "kernels/step_program.hh"
#include "kernels/workloads.hh"

namespace unimem {

namespace {

constexpr Addr kInBase = 0;
constexpr Addr kOutBase = 1ull << 32;
constexpr u32 kLevels = 8;

class HwtProgram : public StepProgram
{
  public:
    HwtProgram(const WarpCtx& ctx, const KernelParams& kp)
        : StepProgram(ctx, kp.regsPerThread, kLevels + 2,
                      kp.sharedBytesPerCta),
          warpShared_(static_cast<Addr>(ctx.warpInCta) * 640)
    {
        warpGid_ = static_cast<Addr>(ctx.ctaId) * ctx.warpsPerCta +
                   ctx.warpInCta;
    }

  protected:
    void
    emitStep(u32 step) override
    {
        if (step == 0) {
            ldGlobal(kInBase + warpGid_ * kWarpWidth * 8, 8, 8);
            stShared(warpShared_, 4, 4);
            barrier();
            return;
        }
        if (step == kLevels + 1) {
            ldShared(warpShared_, 4, 4);
            stGlobal(kOutBase + warpGid_ * kWarpWidth * 8, 8, 8);
            return;
        }

        u32 level = step - 1;
        // Average/difference pairs: even/odd elements of this level's
        // half of the warp's scratchpad region (ping-pong buffers).
        Addr src = warpShared_ + (level % 2) * 256;
        ldShared(src, 8, 4);
        ldShared(src + 4, 8, 4);
        alu(5, true);
        stShared(warpShared_ + ((level + 1) % 2) * 256, 4, 4);
        barrier();
    }

  private:
    Addr warpShared_;
    Addr warpGid_ = 0;
};

class HwtKernel : public SyntheticKernel
{
  public:
    explicit HwtKernel(double scale)
    {
        params_.name = "hwt";
        params_.regsPerThread = 35;
        params_.sharedBytesPerCta = 23 * 256;
        params_.ctaThreads = 256;
        params_.gridCtas = scaledCtas(32, scale);
        params_.spillCurve =
            SpillCurve({{18, 1.04}, {32, 1.04}, {40, 1.0}});
    }

    std::unique_ptr<WarpProgram>
    warpProgram(const WarpCtx& ctx) const override
    {
        return std::make_unique<HwtProgram>(ctx, params_);
    }
};

} // namespace

std::unique_ptr<KernelModel>
makeHwt(double scale)
{
    return std::make_unique<HwtKernel>(scale);
}

} // namespace unimem
