/**
 * @file
 * StoreGPU sliding-window hashing (GPGPU-Sim suite "sto").
 *
 * Each thread hashes overlapping windows of its input chunk: four
 * overlapping loads shifted by 4 bytes bring the chunk in (a small cache
 * filters the ~4x redundancy, Table 1: 3.95 without a cache), the chunk
 * is staged in the scratchpad (127 bytes per thread - shared-memory
 * limited), and many rounds of scratchpad reads feed the hash rounds.
 */

#include "kernels/step_program.hh"
#include "kernels/workloads.hh"

namespace unimem {

namespace {

constexpr Addr kInputBase = 0;
constexpr Addr kDigestBase = 1ull << 32;
constexpr u32 kHashRounds = 30;

class StoProgram : public StepProgram
{
  public:
    StoProgram(const WarpCtx& ctx, const KernelParams& kp)
        : StepProgram(ctx, kp.regsPerThread, 2 + kHashRounds,
                      kp.sharedBytesPerCta),
          warpShared_(static_cast<Addr>(ctx.warpInCta) * kWarpWidth * 127)
    {
        chunkBase_ = kInputBase +
                     (static_cast<Addr>(ctx.ctaId) * ctx.warpsPerCta +
                      ctx.warpInCta) *
                         kWarpWidth * 16;
    }

  protected:
    void
    emitStep(u32 step) override
    {
        if (step == 0) {
            // Four overlapping window loads: each covers the same 512B
            // chunk shifted by 4 bytes.
            for (u32 k = 0; k < 4; ++k) {
                ldGlobal(chunkBase_ + k * 4, 16, 4);
                stShared(warpShared_ + k * kWarpWidth * 4, 4, 4);
            }
            barrier();
        } else if (step <= kHashRounds) {
            u32 r = step - 1;
            ldShared(warpShared_ + (r % 4) * kWarpWidth * 4, 4, 4);
            ldShared(warpShared_ + ((r + 1) % 4) * kWarpWidth * 4, 4, 4);
            alu(6);
        } else {
            stGlobal(kDigestBase + chunkBase_ / 4, 4, 4);
        }
    }

  private:
    Addr warpShared_;
    Addr chunkBase_ = 0;
};

class StoKernel : public SyntheticKernel
{
  public:
    explicit StoKernel(double scale)
    {
        params_.name = "sto";
        params_.regsPerThread = 33;
        params_.sharedBytesPerCta = 127 * 256;
        params_.ctaThreads = 256;
        params_.gridCtas = scaledCtas(24, scale);
        params_.spillCurve =
            SpillCurve({{18, 1.18}, {24, 1.08}, {32, 1.0}});
    }

    std::unique_ptr<WarpProgram>
    warpProgram(const WarpCtx& ctx) const override
    {
        return std::make_unique<StoProgram>(ctx, params_);
    }
};

} // namespace

std::unique_ptr<KernelModel>
makeSto(double scale)
{
    return std::make_unique<StoKernel>(scale);
}

} // namespace unimem
