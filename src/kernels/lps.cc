/**
 * @file
 * 3D Laplace solver (GPGPU-Sim suite "lps").
 *
 * A 3D stencil marching in z: the current plane is staged in the
 * scratchpad (19 B/thread); the z-1 and z+1 planes are re-read from
 * global memory each step. The plane re-reads are what a cache removes
 * (Table 1: 1.48 / 1.00 / 1.00 - the per-CTA planes are small enough
 * for 64 KB).
 */

#include "kernels/step_program.hh"
#include "kernels/workloads.hh"

namespace unimem {

namespace {

constexpr Addr kGridBase = 0;
constexpr Addr kOutBase = 1ull << 32;
constexpr u32 kPlanes = 16;
constexpr u32 kPlaneBytes = 1024; // per-CTA plane slice

class LpsProgram : public StepProgram
{
  public:
    LpsProgram(const WarpCtx& ctx, const KernelParams& kp)
        : StepProgram(ctx, kp.regsPerThread, kPlanes,
                      kp.sharedBytesPerCta),
          base_(kGridBase +
                static_cast<Addr>(ctx.ctaId) * kPlanes * kPlaneBytes)
    {
    }

  protected:
    void
    emitStep(u32 step) override
    {
        Addr plane = base_ + static_cast<Addr>(step) * kPlaneBytes +
                     ctx().warpInCta * 128;
        ldGlobal(plane, 4, 4); // center plane
        stShared(static_cast<Addr>(ctx().warpInCta) * 576, 4, 4);
        barrier();
        // The z+1 plane is re-read from global each step (the z-1
        // plane is still staged in the scratchpad).
        ldGlobal(plane + kPlaneBytes, 4, 4);
        ldShared(static_cast<Addr>(ctx().warpInCta) * 576, 4, 4);
        ldShared(static_cast<Addr>(ctx().warpInCta) * 576 + 4, 4, 4);
        alu(6, true);
        stGlobal(kOutBase + (plane - kGridBase), 4, 4);
        barrier();
    }

  private:
    Addr base_;
};

class LpsKernel : public SyntheticKernel
{
  public:
    explicit LpsKernel(double scale)
    {
        params_.name = "lps";
        params_.regsPerThread = 15;
        params_.sharedBytesPerCta = 19 * 256;
        params_.ctaThreads = 256;
        params_.gridCtas = scaledCtas(24, scale);
        params_.spillCurve = SpillCurve();
    }

    std::unique_ptr<WarpProgram>
    warpProgram(const WarpCtx& ctx) const override
    {
        return std::make_unique<LpsProgram>(ctx, params_);
    }
};

} // namespace

std::unique_ptr<KernelModel>
makeLps(double scale)
{
    return std::make_unique<LpsKernel>(scale);
}

} // namespace unimem
