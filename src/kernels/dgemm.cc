/**
 * @file
 * Register-blocked double-precision GEMM (MAGMA "dgemm").
 *
 * The inner product accumulates into a 16-register block per thread on
 * top of scratchpad-staged A tiles, requiring 57 registers per thread to
 * avoid spills - the highest register demand in Table 1 (228 KB for full
 * occupancy). Shared memory holds two tiles (66.5 B/thread). All data
 * reuse is captured by registers and scratchpad, so the primary cache is
 * irrelevant (Table 1: 1.00 / 1.00 / 1.00); the unified design's win
 * comes purely from fitting more threads (Figures 8 and 9).
 */

#include "kernels/step_program.hh"
#include "kernels/workloads.hh"

namespace unimem {

namespace {

constexpr Addr kABase = 0;
constexpr Addr kBBase = 1ull << 32;
constexpr Addr kCBase = 2ull << 32;
constexpr u32 kTiles = 8;
constexpr u32 kAccRegs = 16;

class DgemmProgram : public StepProgram
{
  public:
    DgemmProgram(const WarpCtx& ctx, const KernelParams& kp)
        : StepProgram(ctx, kp.regsPerThread, kTiles + 1,
                      kp.sharedBytesPerCta)
    {
        warpGid_ = static_cast<Addr>(ctx.ctaId) * ctx.warpsPerCta +
                   ctx.warpInCta;
    }

  protected:
    void
    emitStep(u32 step) override
    {
        if (step == kTiles) {
            // 16 result elements per thread stream out (fp64).
            stGlobal(kCBase + warpGid_ * kWarpWidth * 16, 8, 8);
            stGlobal(kCBase + warpGid_ * kWarpWidth * 16 + 8, 8, 8);
            return;
        }

        // Stage the A tile slice in scratchpad (fp64, coalesced,
        // grid-stride across concurrent warps).
        Addr a_addr = kABase + (static_cast<Addr>(step) * 1024 +
                                warpGid_) *
                                   (kWarpWidth * 8);
        ldGlobal(a_addr, 8, 8);
        stShared(static_cast<Addr>(ctx().warpInCta) * 2048, 8, 8);
        // B streams straight into registers (fp64, coalesced).
        ldGlobal(kBBase + (a_addr - kABase), 8, 8);
        stShared(static_cast<Addr>(ctx().warpInCta) * 2048 + 1024, 8, 8);
        barrier();

        // Register-blocked inner product: each staged element feeds
        // several accumulators (high arithmetic intensity).
        for (u32 k = 0; k < 16; ++k) {
            ldShared((static_cast<Addr>(ctx().warpInCta) * 2048 +
                      static_cast<Addr>(k) * 128) %
                         17024,
                     8, 8);
            fma(accReg(3 * k));
            fma(accReg(3 * k + 1));
            fma(accReg(3 * k + 2));
        }
        barrier();
    }

  private:
    RegId
    accReg(u32 i) const
    {
        return static_cast<RegId>(numRegs() - kAccRegs + (i % kAccRegs));
    }

    Addr warpGid_ = 0;
};

class DgemmKernel : public SyntheticKernel
{
  public:
    explicit DgemmKernel(double scale)
    {
        params_.name = "dgemm";
        params_.regsPerThread = 57;
        params_.sharedBytesPerCta = 17024; // 66.5 B/thread
        params_.ctaThreads = 256;
        params_.gridCtas = scaledCtas(48, scale);
        params_.spillCurve = SpillCurve(
            {{18, 1.42}, {24, 1.23}, {32, 1.01}, {40, 1.0}});
    }

    std::unique_ptr<WarpProgram>
    warpProgram(const WarpCtx& ctx) const override
    {
        return std::make_unique<DgemmProgram>(ctx, params_);
    }
};

} // namespace

std::unique_ptr<KernelModel>
makeDgemm(double scale)
{
    return std::make_unique<DgemmKernel>(scale);
}

} // namespace unimem
