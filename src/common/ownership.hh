/**
 * @file
 * Bound-phase ownership auditing for the chip co-simulation engine.
 *
 * The bound-weave engine (DESIGN.md Section 10) is deterministic only
 * because the bound phase is data-isolated: while worker threads advance
 * SMs privately, each SM may touch exactly its own DramRequestQueue, and
 * the shared DramModels plus every weave-side delivery entry point
 * (SmModel::deliverLoad / noteDrain, group replay, clearReplayed) may be
 * touched only by the single-threaded weave. TSan can catch a violation
 * of that contract, but only when the racing accesses happen to overlap
 * in time on the test machine. This module asserts the contract by
 * construction instead: shared chip state is tagged with its owning
 * *actor* (an SM id or the weaver), every instrumented access compares
 * the tag against a thread-local current actor, and any cross-actor
 * access is reported deterministically — on every run, at any worker
 * count, even at workers=1 where no race physically exists.
 *
 * Cost model: a disabled check is one relaxed atomic load and a branch,
 * so the instrumentation is compiled in unconditionally. Auditing
 * defaults to ON in debug builds (!NDEBUG) and OFF in optimized builds;
 * the UNIMEM_OWNERSHIP_AUDIT environment variable (0/1) overrides, and
 * setAuditing() lets the chip-ownership analysis pass force it at
 * runtime in any build.
 *
 * Violations invoke a process-wide handler: the default panics (hard
 * deterministic failure under ctest), while the analysis pass installs
 * a collector to turn violations into diagnostics.
 */

#ifndef UNIMEM_COMMON_OWNERSHIP_HH
#define UNIMEM_COMMON_OWNERSHIP_HH

#include <atomic>
#include <string>

#include "common/types.hh"

namespace unimem {
namespace ownership {

/** Actor identity: an SM id, the weaver, or unattributed. */
using Actor = u32;

/** No actor established (main thread outside chip phases). */
constexpr Actor kNoActor = ~Actor(0);

/** The single-threaded weave/replay phase. */
constexpr Actor kWeaver = ~Actor(0) - 1;

/** Human-readable actor name ("sm3", "weaver", "none"). */
std::string actorName(Actor a);

/** Is auditing currently enabled? (relaxed read; the hot-path gate) */
bool auditing();

/** Force auditing on/off at runtime (analysis pass, tests). */
void setAuditing(bool on);

/** One detected cross-actor access. */
struct Violation
{
    Actor actor = kNoActor; //!< who performed the access
    Actor owner = kNoActor; //!< who the resource belongs to
    const char* site = "";  //!< instrumentation point, e.g. "DramRequestQueue::recordRead"

    std::string str() const;
};

/** Violation handler; the default implementation panics. */
using Handler = void (*)(const Violation&);

/**
 * Install @p h (nullptr restores the default panic handler). Returns
 * the previous handler. Not thread-safe against concurrent violations;
 * install before starting the audited run.
 */
Handler setViolationHandler(Handler h);

/** The actor bound to the calling thread (kNoActor by default). */
Actor currentActor();

/** Lifetime count of ownership checks evaluated while auditing. */
u64 checksPerformed();

/** RAII actor binding for the calling thread. */
class ScopedActor
{
  public:
    explicit ScopedActor(Actor a);
    ~ScopedActor();

    ScopedActor(const ScopedActor&) = delete;
    ScopedActor& operator=(const ScopedActor&) = delete;

  private:
    Actor prev_;
};

namespace detail {
extern std::atomic<bool> gAuditing;
void checkSlow(Actor owner, const char* site);
} // namespace detail

/**
 * Assert that the calling thread's actor matches @p owner. Resources
 * with no owner tag (kNoActor — single-SM mode, unit tests) are exempt:
 * ownership is a chip-mode contract and the tag is only planted by
 * ChipModel.
 */
inline void
check(Actor owner, const char* site)
{
    if (detail::gAuditing.load(std::memory_order_relaxed) &&
        owner != kNoActor)
        detail::checkSlow(owner, site);
}

} // namespace ownership
} // namespace unimem

#endif // UNIMEM_COMMON_OWNERSHIP_HH
