/**
 * @file
 * Minimal command-line flag parser for examples and bench harnesses.
 *
 * Accepts flags of the form --name=value and bare switches --name
 * (interpreted as boolean true). Positional arguments are kept in order.
 */

#ifndef UNIMEM_COMMON_CLI_HH
#define UNIMEM_COMMON_CLI_HH

#include <map>
#include <string>
#include <vector>

namespace unimem {

/** Parsed command line: --key=value flags plus positional arguments. */
class CliArgs
{
  public:
    CliArgs(int argc, const char* const* argv);

    bool has(const std::string& name) const;

    std::string getString(const std::string& name,
                          const std::string& dflt) const;
    long getInt(const std::string& name, long dflt) const;
    double getDouble(const std::string& name, double dflt) const;
    bool getBool(const std::string& name, bool dflt) const;

    const std::vector<std::string>& positional() const { return positional_; }

  private:
    std::map<std::string, std::string> flags_;
    std::vector<std::string> positional_;
};

} // namespace unimem

#endif // UNIMEM_COMMON_CLI_HH
