/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All randomness in the simulator (workload address patterns, scheduling
 * jitter) flows through Rng so that simulations are exactly reproducible
 * from a seed. The generator is xorshift64* seeded through splitmix64.
 */

#ifndef UNIMEM_COMMON_RNG_HH
#define UNIMEM_COMMON_RNG_HH

#include <cstdint>

#include "common/types.hh"

namespace unimem {

/** Small, fast, deterministic PRNG (xorshift64*). */
class Rng
{
  public:
    explicit Rng(u64 seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

    /** Re-seed; a zero seed is remapped to a fixed non-zero state. */
    void
    reseed(u64 seed)
    {
        // splitmix64 to spread low-entropy seeds across the state space.
        u64 z = seed + 0x9e3779b97f4a7c15ull;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        state_ = (z ^ (z >> 31)) | 1ull;
    }

    /** Next raw 64-bit value. */
    u64
    next()
    {
        u64 x = state_;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state_ = x;
        return x * 0x2545f4914f6cdd1dull;
    }

    /** Uniform in [0, n). n must be > 0. */
    u64 range(u64 n) { return next() % n; }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Bernoulli trial with probability p. */
    bool chance(double p) { return uniform() < p; }

  private:
    u64 state_;
};

} // namespace unimem

#endif // UNIMEM_COMMON_RNG_HH
