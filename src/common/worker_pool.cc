#include "common/worker_pool.hh"

#include <algorithm>

#include "common/log.hh"

namespace unimem {

WorkerPool::WorkerPool(u32 workers) : workers_(std::max<u32>(workers, 1))
{
    threads_.reserve(workers_ - 1);
    for (u32 i = 0; i + 1 < workers_; ++i)
        threads_.emplace_back([this] { workerMain(); });
}

WorkerPool::~WorkerPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    wake_.notify_all();
    for (std::thread& t : threads_)
        t.join();
}

void
WorkerPool::runSlots(const std::function<void(u32)>& fn, u32 count)
{
    for (;;) {
        u32 slot = nextSlot_.fetch_add(1, std::memory_order_relaxed);
        if (slot >= count)
            return;
        std::exception_ptr err;
        try {
            fn(slot);
        } catch (...) {
            err = std::current_exception();
        }
        std::lock_guard<std::mutex> lock(mutex_);
        if (err && (!error_ || slot < errorSlot_)) {
            error_ = err;
            errorSlot_ = slot;
        }
        if (++slotsDone_ == count)
            done_.notify_all();
    }
}

void
WorkerPool::workerMain()
{
    u64 seen = 0;
    for (;;) {
        const std::function<void(u32)>* fn = nullptr;
        u32 count = 0;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [&] {
                return shutdown_ || generation_ != seen;
            });
            if (shutdown_)
                return;
            seen = generation_;
            // A dispatch that already fully completed (slotCount_
            // reset) leaves nothing to claim; go back to sleep without
            // touching the claim counter of a future dispatch.
            if (slotCount_ == 0)
                continue;
            fn = fn_;
            count = slotCount_;
            ++busyRunners_;
        }
        runSlots(*fn, count);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (--busyRunners_ == 0)
                done_.notify_all();
        }
    }
}

void
WorkerPool::dispatch(u32 slots, const std::function<void(u32)>& fn)
{
    if (slots == 0)
        return;
    if (workers_ == 1 || slots == 1) {
        // Inline fast path: no synchronization, exceptions propagate
        // directly (slot order is trivially deterministic).
        for (u32 s = 0; s < slots; ++s)
            fn(s);
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        fn_ = &fn;
        slotCount_ = slots;
        nextSlot_.store(0, std::memory_order_relaxed);
        slotsDone_ = 0;
        error_ = nullptr;
        ++generation_;
    }
    wake_.notify_all();
    runSlots(fn, slots); // the calling thread is worker 0

    std::unique_lock<std::mutex> lock(mutex_);
    // All slots done AND every helper out of runSlots: only then is it
    // safe for a future dispatch to reset the claim counter.
    done_.wait(lock, [&] {
        return slotsDone_ == slotCount_ && busyRunners_ == 0;
    });
    fn_ = nullptr;
    slotCount_ = 0;
    if (error_) {
        std::exception_ptr err = error_;
        error_ = nullptr;
        lock.unlock();
        std::rethrow_exception(err);
    }
}

void
WorkerPool::parallelFor(u32 n, const std::function<void(u32)>& fn)
{
    if (n == 0)
        return;
    u32 slots = std::min(workers_, n);
    if (slots <= 1) {
        for (u32 i = 0; i < n; ++i)
            fn(i);
        return;
    }
    std::atomic<u32> next{0};
    dispatch(slots, [&](u32) {
        for (;;) {
            u32 i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            fn(i);
        }
    });
}

} // namespace unimem
