/**
 * @file
 * Fundamental scalar types used throughout the unimem simulator.
 */

#ifndef UNIMEM_COMMON_TYPES_HH
#define UNIMEM_COMMON_TYPES_HH

#include <cstdint>

namespace unimem {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/** Simulated clock cycle count. */
using Cycle = std::uint64_t;

/** Byte address in any simulated address space. */
using Addr = std::uint64_t;

/** Architectural register identifier within a thread. */
using RegId = std::uint16_t;

/** Sentinel for "no register". */
constexpr RegId kInvalidReg = 0xffff;

/** A cycle value meaning "never" / "not scheduled". */
constexpr Cycle kCycleNever = ~Cycle(0);

constexpr u64 operator"" _KB(unsigned long long v) { return v * 1024ull; }
constexpr u64 operator"" _MB(unsigned long long v)
{
    return v * 1024ull * 1024ull;
}

} // namespace unimem

#endif // UNIMEM_COMMON_TYPES_HH
