/**
 * @file
 * Persistent worker-thread pool shared by the parallel engines.
 *
 * Extracted from the PR-1 sweep engine so that other deterministic
 * parallel drivers (the chip-level bound-weave co-simulator, nested
 * batch runners) can reuse one pool implementation instead of spawning
 * threads per batch. The pool keeps `workers - 1` threads parked on a
 * condition variable; each dispatch() wakes them, runs one task per
 * slot with the calling thread participating as slot 0, and returns
 * once every slot finished. parallelFor() layers dynamic index claiming
 * on top for irregular work.
 *
 * Determinism contract: the pool only schedules; tasks communicate
 * results through caller-owned slots addressed by task index, so
 * output never depends on worker count or completion order (the same
 * invariant the sweep engine enforces). Completion is published with
 * acquire/release ordering: everything a task wrote is visible to the
 * caller when dispatch() returns.
 */

#ifndef UNIMEM_COMMON_WORKER_POOL_HH
#define UNIMEM_COMMON_WORKER_POOL_HH

#include <atomic>
#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.hh"

namespace unimem {

/** Reusable pool of worker threads with a fork-join dispatch. */
class WorkerPool
{
  public:
    /**
     * @param workers total concurrency including the calling thread;
     *        1 means "run everything inline, spawn nothing"
     */
    explicit WorkerPool(u32 workers);

    WorkerPool(const WorkerPool&) = delete;
    WorkerPool& operator=(const WorkerPool&) = delete;

    ~WorkerPool();

    u32 workers() const { return workers_; }

    /**
     * Run @p fn(slot) for every slot in [0, slots). Blocks until all
     * slots completed; the calling thread executes slots itself. If any
     * slot throws, the exception of the lowest-numbered failing slot is
     * rethrown after all slots drain (deterministic regardless of which
     * worker hit it first).
     */
    void dispatch(u32 slots, const std::function<void(u32)>& fn);

    /**
     * Run @p fn(i) for i in [0, n) with dynamic claiming over
     * min(workers, n) slots. Same blocking/exception contract as
     * dispatch().
     */
    void parallelFor(u32 n, const std::function<void(u32)>& fn);

  private:
    void workerMain();
    void runSlots(const std::function<void(u32)>& fn, u32 count);

    u32 workers_;
    std::vector<std::thread> threads_;

    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable done_;

    /** Bumped per dispatch; parked workers wait for it to change. */
    u64 generation_ = 0;
    bool shutdown_ = false;

    /** Current dispatch (valid while slotsLeft_ > 0). */
    const std::function<void(u32)>* fn_ = nullptr;
    u32 slotCount_ = 0;
    std::atomic<u32> nextSlot_{0};
    u32 slotsDone_ = 0;
    /** Helper threads currently inside runSlots() for this dispatch. */
    u32 busyRunners_ = 0;

    /** Lowest-slot exception of the current dispatch. */
    std::exception_ptr error_;
    u32 errorSlot_ = 0;
};

} // namespace unimem

#endif // UNIMEM_COMMON_WORKER_POOL_HH
