#include "common/cli.hh"

#include <cstdlib>

#include "common/log.hh"

namespace unimem {

CliArgs::CliArgs(int argc, const char* const* argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) == 0) {
            std::string body = arg.substr(2);
            auto eq = body.find('=');
            if (eq == std::string::npos)
                flags_[body] = "true";
            else
                flags_[body.substr(0, eq)] = body.substr(eq + 1);
        } else {
            positional_.push_back(arg);
        }
    }
}

bool
CliArgs::has(const std::string& name) const
{
    return flags_.count(name) != 0;
}

std::string
CliArgs::getString(const std::string& name, const std::string& dflt) const
{
    auto it = flags_.find(name);
    return it == flags_.end() ? dflt : it->second;
}

long
CliArgs::getInt(const std::string& name, long dflt) const
{
    auto it = flags_.find(name);
    if (it == flags_.end())
        return dflt;
    char* end = nullptr;
    long v = std::strtol(it->second.c_str(), &end, 0);
    if (end == nullptr || *end != '\0')
        fatal("flag --%s expects an integer, got '%s'", name.c_str(),
              it->second.c_str());
    return v;
}

double
CliArgs::getDouble(const std::string& name, double dflt) const
{
    auto it = flags_.find(name);
    if (it == flags_.end())
        return dflt;
    char* end = nullptr;
    double v = std::strtod(it->second.c_str(), &end);
    if (end == nullptr || *end != '\0')
        fatal("flag --%s expects a number, got '%s'", name.c_str(),
              it->second.c_str());
    return v;
}

bool
CliArgs::getBool(const std::string& name, bool dflt) const
{
    auto it = flags_.find(name);
    if (it == flags_.end())
        return dflt;
    const std::string& v = it->second;
    if (v == "true" || v == "1" || v == "yes" || v == "on")
        return true;
    if (v == "false" || v == "0" || v == "no" || v == "off")
        return false;
    fatal("flag --%s expects a boolean, got '%s'", name.c_str(), v.c_str());
}

} // namespace unimem
