/**
 * @file
 * ASCII table formatter used by the benchmark harnesses to print
 * paper-style result tables.
 */

#ifndef UNIMEM_COMMON_TABLE_HH
#define UNIMEM_COMMON_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace unimem {

/** Column-aligned ASCII table with a header row. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Append a row; must have the same arity as the header. */
    void addRow(std::vector<std::string> row);

    /** Convenience: format a double with @p precision decimals. */
    static std::string num(double v, int precision = 2);

    /**
     * Render the table. Default: aligned ASCII columns with a separator
     * rule. When the environment variable UNIMEM_TABLE is set to "csv",
     * every table in the process renders as CSV instead, so any bench
     * harness output can feed a plotting script unchanged.
     */
    void print(std::ostream& os) const;

    /** Render as comma-separated values (quotes fields with commas). */
    void printCsv(std::ostream& os) const;

    size_t numRows() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace unimem

#endif // UNIMEM_COMMON_TABLE_HH
