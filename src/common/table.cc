#include "common/table.hh"

#include <algorithm>
#include <cstdlib>
#include <iomanip>
#include <sstream>

#include "common/log.hh"

namespace unimem {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> row)
{
    if (row.size() != headers_.size()) {
        panic("Table: row arity %zu does not match header arity %zu",
              row.size(), headers_.size());
    }
    rows_.push_back(std::move(row));
}

std::string
Table::num(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

namespace {

bool
csvRequested()
{
    static const bool csv = [] {
        const char* v = std::getenv("UNIMEM_TABLE");
        return v != nullptr && std::string(v) == "csv";
    }();
    return csv;
}

void
printCsvField(std::ostream& os, const std::string& field)
{
    if (field.find_first_of(",\"\n") == std::string::npos) {
        os << field;
        return;
    }
    os << '"';
    for (char c : field) {
        if (c == '"')
            os << '"';
        os << c;
    }
    os << '"';
}

} // namespace

void
Table::printCsv(std::ostream& os) const
{
    auto row_out = [&](const std::vector<std::string>& row) {
        for (size_t c = 0; c < row.size(); ++c) {
            if (c > 0)
                os << ',';
            printCsvField(os, row[c]);
        }
        os << '\n';
    };
    row_out(headers_);
    for (const auto& row : rows_)
        row_out(row);
}

void
Table::print(std::ostream& os) const
{
    if (csvRequested()) {
        printCsv(os);
        return;
    }
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto& row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto print_row = [&](const std::vector<std::string>& row) {
        for (size_t c = 0; c < row.size(); ++c) {
            os << (c == 0 ? "| " : " | ") << std::left
               << std::setw(static_cast<int>(widths[c])) << row[c];
        }
        os << " |\n";
    };

    print_row(headers_);
    os << "|";
    for (size_t c = 0; c < headers_.size(); ++c)
        os << std::string(widths[c] + 2, '-') << "|";
    os << "\n";
    for (const auto& row : rows_)
        print_row(row);
}

} // namespace unimem
