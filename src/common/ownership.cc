#include "common/ownership.hh"

#include <cstdlib>
#include <cstring>

#include "common/log.hh"

namespace unimem {
namespace ownership {

namespace detail {

std::atomic<bool> gAuditing{[] {
    if (const char* env = std::getenv("UNIMEM_OWNERSHIP_AUDIT"))
        return std::strcmp(env, "0") != 0;
#ifdef NDEBUG
    return false;
#else
    return true;
#endif
}()};

namespace {

thread_local Actor tlsActor = kNoActor;

std::atomic<u64> gChecks{0};

void
defaultHandler(const Violation& v)
{
    panic("ownership violation: %s", v.str().c_str());
}

std::atomic<Handler> gHandler{&defaultHandler};

} // namespace

void
checkSlow(Actor owner, const char* site)
{
    gChecks.fetch_add(1, std::memory_order_relaxed);
    if (tlsActor == owner)
        return;
    Violation v;
    v.actor = tlsActor;
    v.owner = owner;
    v.site = site;
    gHandler.load(std::memory_order_acquire)(v);
}

} // namespace detail

std::string
actorName(Actor a)
{
    if (a == kNoActor)
        return "none";
    if (a == kWeaver)
        return "weaver";
    return "sm" + std::to_string(a);
}

bool
auditing()
{
    return detail::gAuditing.load(std::memory_order_relaxed);
}

void
setAuditing(bool on)
{
    detail::gAuditing.store(on, std::memory_order_relaxed);
}

std::string
Violation::str() const
{
    return std::string(site) + ": actor " + actorName(actor) +
           " touched state owned by " + actorName(owner);
}

Handler
setViolationHandler(Handler h)
{
    Handler prev = detail::gHandler.exchange(
        h != nullptr ? h : &detail::defaultHandler,
        std::memory_order_acq_rel);
    return prev == &detail::defaultHandler ? nullptr : prev;
}

Actor
currentActor()
{
    return detail::tlsActor;
}

u64
checksPerformed()
{
    return detail::gChecks.load(std::memory_order_relaxed);
}

ScopedActor::ScopedActor(Actor a) : prev_(detail::tlsActor)
{
    detail::tlsActor = a;
}

ScopedActor::~ScopedActor()
{
    detail::tlsActor = prev_;
}

} // namespace ownership
} // namespace unimem
