#include "common/stats.hh"

#include "common/log.hh"

namespace unimem {

void
StatSet::set(const std::string& name, double value)
{
    values_[name] = value;
}

void
StatSet::add(const std::string& name, double value)
{
    values_[name] += value;
}

double
StatSet::get(const std::string& name) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        fatal("StatSet: unknown statistic '%s'", name.c_str());
    return it->second;
}

double
StatSet::getOr(const std::string& name, double dflt) const
{
    auto it = values_.find(name);
    return it == values_.end() ? dflt : it->second;
}

bool
StatSet::has(const std::string& name) const
{
    return values_.count(name) != 0;
}

void
StatSet::merge(const StatSet& other)
{
    for (const auto& [name, value] : other.values_)
        values_[name] += value;
}

void
StatSet::dump(std::ostream& os) const
{
    for (const auto& [name, value] : values_)
        os << name << " = " << value << "\n";
}

} // namespace unimem
