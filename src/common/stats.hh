/**
 * @file
 * Lightweight statistics snapshot container.
 *
 * Hot-path components keep plain integer members; at the end of a run they
 * export named values into a StatSet which reports, merges and diffs them.
 */

#ifndef UNIMEM_COMMON_STATS_HH
#define UNIMEM_COMMON_STATS_HH

#include <map>
#include <ostream>
#include <string>

#include "common/types.hh"

namespace unimem {

/** An ordered name -> value map of simulation statistics. */
class StatSet
{
  public:
    /** Set (or overwrite) a statistic. */
    void set(const std::string& name, double value);

    /** Add to a statistic, creating it at zero if absent. */
    void add(const std::string& name, double value);

    /** Value of a statistic; fatal if absent and no default given. */
    double get(const std::string& name) const;

    /** Value of a statistic or @p dflt when absent. */
    double getOr(const std::string& name, double dflt) const;

    bool has(const std::string& name) const;

    /** Accumulate every entry of @p other into this set. */
    void merge(const StatSet& other);

    /** Print "name = value" lines. */
    void dump(std::ostream& os) const;

    const std::map<std::string, double>& entries() const { return values_; }

  private:
    std::map<std::string, double> values_;
};

} // namespace unimem

#endif // UNIMEM_COMMON_STATS_HH
