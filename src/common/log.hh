/**
 * @file
 * Error and status reporting helpers, following the gem5 fatal/panic split:
 * fatal() is for user errors (bad configuration), panic() is for internal
 * invariant violations (simulator bugs).
 */

#ifndef UNIMEM_COMMON_LOG_HH
#define UNIMEM_COMMON_LOG_HH

#include <string>

namespace unimem {

/**
 * Terminate the simulation due to a user-caused condition (bad config,
 * invalid arguments). Exits with status 1.
 */
[[noreturn]] void fatal(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Terminate the simulation due to an internal invariant violation.
 * Calls abort() so a core dump / debugger can inspect the state.
 */
[[noreturn]] void panic(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Warn about a condition that might indicate a problem but is survivable. */
void warn(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/** Informative status message. */
void inform(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/** printf-style formatting into a std::string. */
std::string strprintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace unimem

#endif // UNIMEM_COMMON_LOG_HH
