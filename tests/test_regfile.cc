/**
 * @file
 * Unit tests for the MRF/ORF/LRF register file hierarchy, including the
 * paper's headline property: the hierarchy removes a large fraction of
 * MRF accesses (around 60% in prior work [9]).
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "regfile/rf_hierarchy.hh"

namespace unimem {
namespace {

RfHierarchyConfig
enabledCfg()
{
    RfHierarchyConfig cfg;
    cfg.enabled = true;
    cfg.orfEntries = 4;
    return cfg;
}

TEST(WarpRegFile, LrfCapturesLastResult)
{
    WarpRegFile rf(enabledCfg(), 0);
    rf.accessOperands(instr::alu(5, 1, 2), false, nullptr); // writes r5
    u8 banks[3];
    u32 n = rf.accessOperands(instr::alu(6, 5), false, banks);
    EXPECT_EQ(n, 0u); // r5 came from the LRF
    EXPECT_EQ(rf.counts().lrfReads, 1u);
}

TEST(WarpRegFile, OrfCapturesRecentValues)
{
    WarpRegFile rf(enabledCfg(), 0);
    // Write r1..r4: r4 in LRF, r1..r3 demoted to ORF.
    for (RegId r = 1; r <= 4; ++r)
        rf.accessOperands(instr::alu(r), false, nullptr);
    u8 banks[3];
    u32 n = rf.accessOperands(instr::alu(10, 1, 2), false, banks);
    EXPECT_EQ(n, 0u);
    EXPECT_EQ(rf.counts().orfReads, 2u);
}

TEST(WarpRegFile, ColdReadsGoToMrf)
{
    WarpRegFile rf(enabledCfg(), 0);
    u8 banks[3];
    u32 n = rf.accessOperands(instr::alu(1, 7, 9), false, banks);
    EXPECT_EQ(n, 2u);
    EXPECT_EQ(rf.counts().mrfReads, 2u);
    // Bank ids are cluster-local: (reg + warpSlot) % 4.
    EXPECT_EQ(banks[0], 7 % 4);
    EXPECT_EQ(banks[1], 9 % 4);
}

TEST(WarpRegFile, BankMappingUsesWarpSlot)
{
    WarpRegFile rf(enabledCfg(), 3);
    EXPECT_EQ(rf.mrfBank(0), 3u);
    EXPECT_EQ(rf.mrfBank(1), 0u);
    EXPECT_EQ(rf.mrfBank(5), 0u);
}

TEST(WarpRegFile, EvictionWritesBackToMrf)
{
    WarpRegFile rf(enabledCfg(), 0);
    // 6 distinct writes: LRF + 4 ORF entries hold 5; one eviction.
    for (RegId r = 1; r <= 6; ++r)
        rf.accessOperands(instr::alu(r), false, nullptr);
    EXPECT_EQ(rf.counts().mrfWrites, 1u);
}

TEST(WarpRegFile, OverwriteKillsOldValueWithoutWriteback)
{
    WarpRegFile rf(enabledCfg(), 0);
    // Accumulator pattern: same destination repeatedly.
    for (int i = 0; i < 20; ++i)
        rf.accessOperands(instr::alu(7), false, nullptr);
    EXPECT_EQ(rf.counts().mrfWrites, 0u);
}

TEST(WarpRegFile, LongLatencyLoadsWriteMrfDirectly)
{
    WarpRegFile rf(enabledCfg(), 0);
    rf.accessOperands(instr::mem(Opcode::LdGlobal, 3, 1), true, nullptr);
    EXPECT_EQ(rf.counts().mrfWrites, 1u);
    EXPECT_FALSE(rf.inHierarchy(3));
}

TEST(WarpRegFile, FlushWritesDirtyStateToMrf)
{
    WarpRegFile rf(enabledCfg(), 0);
    for (RegId r = 1; r <= 3; ++r)
        rf.accessOperands(instr::alu(r), false, nullptr);
    u64 before = rf.counts().mrfWrites;
    rf.flushToMrf();
    EXPECT_EQ(rf.counts().mrfWrites - before, 3u);
    EXPECT_EQ(rf.counts().descheduleWritebacks, 3u);
    // After the flush nothing lives in the hierarchy.
    EXPECT_FALSE(rf.inHierarchy(1));
    EXPECT_FALSE(rf.inHierarchy(3));
}

TEST(WarpRegFile, DisabledHierarchyIsFlat)
{
    RfHierarchyConfig cfg;
    cfg.enabled = false;
    WarpRegFile rf(cfg, 0);
    rf.accessOperands(instr::alu(1, 2, 3), false, nullptr);
    rf.accessOperands(instr::alu(4, 1), false, nullptr);
    EXPECT_EQ(rf.counts().mrfReads, 3u);
    EXPECT_EQ(rf.counts().mrfWrites, 2u);
    EXPECT_DOUBLE_EQ(rf.counts().reduction(), 0.0);
}

/**
 * The headline property: on a representative instruction stream (mostly
 * recent-value operands with some long-lived values), the hierarchy
 * removes a large fraction of MRF accesses. Prior work reports ~60%; we
 * accept a 40-75% band.
 */
TEST(WarpRegFile, ReductionInSixtyPercentBand)
{
    WarpRegFile rf(enabledCfg(), 0);
    Rng rng(123);
    constexpr u32 num_regs = 24;
    RegId last = 0;
    for (int i = 0; i < 20000; ++i) {
        RegId dst = static_cast<RegId>(i % num_regs);
        RegId s1 = rng.chance(0.7)
                       ? last
                       : static_cast<RegId>(rng.range(num_regs));
        RegId s2 = rng.chance(0.5)
                       ? static_cast<RegId>((i + num_regs - 2) % num_regs)
                       : static_cast<RegId>(rng.range(num_regs));
        rf.accessOperands(instr::alu(dst, s1, s2), false, nullptr);
        last = dst;
        // Periodic deschedule points, as the two-level scheduler causes.
        if (i % 40 == 39)
            rf.flushToMrf();
    }
    double red = rf.counts().reduction();
    EXPECT_GT(red, 0.40) << "reduction " << red;
    EXPECT_LT(red, 0.80) << "reduction " << red;
}

TEST(RfAccessCounts, MergeAccumulates)
{
    RfAccessCounts a, b;
    a.mrfReads = 3;
    a.srcReads = 10;
    b.mrfReads = 2;
    b.srcReads = 5;
    b.descheduleWritebacks = 1;
    a.merge(b);
    EXPECT_EQ(a.mrfReads, 5u);
    EXPECT_EQ(a.srcReads, 15u);
    EXPECT_EQ(a.descheduleWritebacks, 1u);
}

} // namespace
} // namespace unimem
