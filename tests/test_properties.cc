/**
 * @file
 * Property-based sweeps (parameterized gtest) over capacities, thread
 * counts, and designs: invariants that must hold for any configuration.
 */

#include <gtest/gtest.h>

#include <random>

#include "kernels/registry.hh"
#include "sim/experiments.hh"

namespace unimem {
namespace {

constexpr double kScale = 0.1;

// ---- Cache capacity sweep: DRAM traffic is non-increasing ------------

class CacheSweep
    : public ::testing::TestWithParam<std::tuple<const char*, u64>>
{
};

TEST_P(CacheSweep, LargerCacheNeverIncreasesMisses)
{
    auto [name, cache] = GetParam();
    RunSpec small_spec;
    small_spec.partition = MemoryPartition{256_KB, 64_KB, cache};
    RunSpec big_spec;
    big_spec.partition = MemoryPartition{256_KB, 64_KB, cache * 2};

    SimResult small = simulateBenchmark(name, kScale, small_spec);
    SimResult big = simulateBenchmark(name, kScale, big_spec);
    // Cache *misses* (not sectors) must not grow with capacity; sector
    // counts can shift with timing, so compare miss counts with a small
    // tolerance for LRU boundary effects.
    EXPECT_LE(static_cast<double>(big.sm.cache.readMisses),
              static_cast<double>(small.sm.cache.readMisses) * 1.02 + 64)
        << name << " cache " << cache;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CacheSweep,
    ::testing::Combine(::testing::Values("bfs", "pcr", "nn", "lu",
                                         "srad"),
                       ::testing::Values(32_KB, 64_KB, 128_KB)),
    [](const auto& info) {
        return std::string(std::get<0>(info.param)) + "_" +
               std::to_string(std::get<1>(info.param) / 1024) + "K";
    });

// ---- Thread count sweep: occupancy consistency ------------------------

class ThreadSweep
    : public ::testing::TestWithParam<std::tuple<const char*, u32>>
{
};

TEST_P(ThreadSweep, OccupancyRespectsLimitAndWorkIsConserved)
{
    auto [name, limit] = GetParam();
    RunSpec spec;
    spec.threadLimit = limit;
    SimResult r = simulateBenchmark(name, kScale, spec);
    EXPECT_LE(r.alloc.launch.threads, limit);
    EXPECT_GT(r.alloc.launch.threads, 0u);

    // Total executed CTAs equals the kernel grid regardless of limit.
    auto k = createBenchmark(name, kScale);
    EXPECT_EQ(r.sm.ctasExecuted, k->params().gridCtas);
}

TEST_P(ThreadSweep, SameConfigIsBitReproducible)
{
    auto [name, limit] = GetParam();
    RunSpec spec;
    spec.threadLimit = limit;
    SimResult a = simulateBenchmark(name, kScale, spec);
    SimResult b = simulateBenchmark(name, kScale, spec);
    EXPECT_EQ(a.cycles(), b.cycles());
    EXPECT_EQ(a.sm.warpInstrs, b.sm.warpInstrs);
    EXPECT_EQ(a.dramSectors(), b.dramSectors());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ThreadSweep,
    ::testing::Combine(::testing::Values("vectoradd", "dgemm", "needle",
                                         "bfs"),
                       ::testing::Values(256u, 512u, 1024u)),
    [](const auto& info) {
        return std::string(std::get<0>(info.param)) + "_" +
               std::to_string(std::get<1>(info.param));
    });

// ---- Unified capacity sweep -------------------------------------------

class CapacitySweep : public ::testing::TestWithParam<u64>
{
};

TEST_P(CapacitySweep, AllocationInvariants)
{
    u64 cap = GetParam();
    for (const BenchmarkInfo& info : allBenchmarks()) {
        auto k = createBenchmark(info.name, kScale);
        AllocationDecision d = allocateUnified(k->params(), cap);
        if (!d.launch.feasible)
            continue;
        // Every byte accounted for; no overcommit.
        EXPECT_EQ(d.partition.total(), cap) << info.name;
        EXPECT_EQ(d.partition.rfBytes,
                  static_cast<u64>(d.launch.threads) *
                      d.launch.regsPerThread * 4)
            << info.name;
        // Threads are whole CTAs.
        EXPECT_EQ(d.launch.threads % k->params().ctaThreads, 0u)
            << info.name;
        // Spill multiplier only when squeezed below the requirement.
        if (d.launch.regsPerThread >= k->params().regsPerThread)
            EXPECT_DOUBLE_EQ(d.launch.spillMultiplier, 1.0)
                << info.name;
        else
            EXPECT_GE(d.launch.spillMultiplier, 1.0) << info.name;
    }
}

TEST_P(CapacitySweep, BenefitAppsPerformanceMonotonicInCapacity)
{
    // Table 6 shape: more unified capacity never hurts much. Allow a
    // small tolerance for scheduler interaction effects the paper also
    // observes (needle at 256KB vs 384KB).
    u64 cap = GetParam();
    if (cap >= 384_KB)
        GTEST_SKIP() << "needs a larger comparison point";
    for (const char* name : {"bfs", "srad"}) {
        auto runAt = [&](u64 c) {
            return static_cast<double>(
                runUnified(name, kScale, c).cycles());
        };
        EXPECT_LE(runAt(cap * 3 / 2), runAt(cap) * 1.05) << name;
    }
}

INSTANTIATE_TEST_SUITE_P(Grid, CapacitySweep,
                         ::testing::Values(128_KB, 192_KB, 256_KB,
                                           384_KB),
                         [](const auto& info) {
                             return std::to_string(info.param / 1024) +
                                    "K";
                         });

// ---- Design equivalence properties ------------------------------------

TEST(Properties, EqualPartitionEqualOccupancy)
{
    // When the unified allocator happens to choose the baseline split,
    // occupancy must match the partitioned design exactly.
    for (const BenchmarkInfo& info : allBenchmarks()) {
        auto k = createBenchmark(info.name, kScale);
        AllocationDecision uni = allocateUnified(k->params(), 384_KB);
        if (!uni.launch.feasible)
            continue;
        AllocationDecision part =
            allocatePartitioned(k->params(), uni.partition);
        ASSERT_TRUE(part.launch.feasible) << info.name;
        EXPECT_EQ(part.launch.threads, uni.launch.threads) << info.name;
        EXPECT_EQ(part.launch.regsPerThread, uni.launch.regsPerThread)
            << info.name;
    }
}

TEST(Properties, ConflictPenaltyAblationNeverSpeedsUp)
{
    for (const char* name : {"aes", "needle", "sto"}) {
        RunSpec with;
        with.design = DesignKind::Unified;
        RunSpec without = with;
        without.conflictPenalties = false;
        SimResult w = simulateBenchmark(name, kScale, with);
        SimResult wo = simulateBenchmark(name, kScale, without);
        // Small slack: removing penalties perturbs issue interleaving
        // and DRAM queueing, which can swing runtime either way by ~1%.
        EXPECT_GE(static_cast<double>(w.cycles()),
                  static_cast<double>(wo.cycles()) * 0.98)
            << name;
    }
}

TEST(Properties, AggressiveUnifiedLayoutIsSmallGain)
{
    // Paper Section 4.2: the multi-bank-per-cluster design gained only
    // ~0.5% on average.
    double total_gain = 0;
    int n = 0;
    for (const char* name : {"aes", "needle", "pcr", "scalarprod"}) {
        RunSpec simple;
        simple.design = DesignKind::Unified;
        RunSpec aggr = simple;
        aggr.aggressiveUnified = true;
        SimResult s = simulateBenchmark(name, kScale, simple);
        SimResult a = simulateBenchmark(name, kScale, aggr);
        EXPECT_LE(a.cycles(), s.cycles()) << name;
        total_gain += static_cast<double>(s.cycles()) /
                      static_cast<double>(a.cycles());
        ++n;
    }
    EXPECT_LT(total_gain / n, 1.05);
}

TEST(Properties, ActiveSetSizeFullDegeneratesToFlatScheduler)
{
    RunSpec two_level;
    RunSpec flat;
    flat.activeSetSize = kMaxWarpsPerSm;
    SimResult a = simulateBenchmark("vectoradd", kScale, two_level);
    SimResult b = simulateBenchmark("vectoradd", kScale, flat);
    // Both must complete the same work.
    EXPECT_EQ(a.sm.warpInstrs, b.sm.warpInstrs);
    // A full-size active set never deschedules for slot pressure only.
    EXPECT_LE(b.sm.sched.deschedules, a.sm.sched.deschedules + 1);
}


// ---- Randomized Section 4.5 allocation properties -----------------------

/** 16B unified bank word: every split boundary must respect it. */
constexpr u64 kBankWordBytes = 16;

KernelParams
randomKernel(std::mt19937& rng)
{
    KernelParams kp;
    kp.name = "random";
    kp.ctaThreads =
        kWarpWidth * std::uniform_int_distribution<u32>(1, 32)(rng);
    kp.regsPerThread =
        std::uniform_int_distribution<u32>(kMinRegsPerThread, 64)(rng);
    // Scratchpad declarations are bank-word granular, up to 48KB/CTA.
    kp.sharedBytesPerCta = static_cast<u32>(
        kBankWordBytes *
        std::uniform_int_distribution<u32>(0, 3072)(rng));
    kp.gridCtas = std::uniform_int_distribution<u32>(1, 64)(rng);
    return kp;
}

TEST(AllocationRandomProperties, UnifiedSplitInvariants)
{
    std::mt19937 rng(20120512); // fixed seed: reproducible failures
    int feasible = 0;
    for (int trial = 0; trial < 2000; ++trial) {
        KernelParams kp = randomKernel(rng);
        u64 capacity =
            kBankWordBytes *
            std::uniform_int_distribution<u64>(1024, 40960)(rng);
        AllocationDecision d = allocateUnified(kp, capacity);
        if (!d.launch.feasible)
            continue;
        ++feasible;

        // Every byte of the unified capacity is accounted for: the
        // register/scratchpad claim plus the cache leftover.
        EXPECT_EQ(d.partition.total(), capacity) << "trial " << trial;

        // All three regions are 16B-bank-word aligned.
        EXPECT_EQ(d.partition.rfBytes % kBankWordBytes, 0u)
            << "trial " << trial;
        EXPECT_EQ(d.partition.sharedBytes % kBankWordBytes, 0u)
            << "trial " << trial;
        EXPECT_EQ(d.partition.cacheBytes % kBankWordBytes, 0u)
            << "trial " << trial;

        // The scratchpad region covers every resident CTA's static
        // declaration - never less than the kernel declares.
        EXPECT_GE(d.partition.sharedBytes,
                  static_cast<u64>(d.launch.ctas) * kp.sharedBytesPerCta)
            << "trial " << trial;

        // Register bytes match the launch exactly.
        EXPECT_EQ(d.partition.rfBytes,
                  static_cast<u64>(d.launch.threads) *
                      d.launch.regsPerThread * kRegBytes)
            << "trial " << trial;

        // Occupancy limits hold.
        EXPECT_LE(d.launch.threads, kMaxThreadsPerSm) << "trial " << trial;
        EXPECT_EQ(d.launch.threads % kp.ctaThreads, 0u)
            << "trial " << trial;
        EXPECT_GE(d.launch.regsPerThread, kMinRegsPerThread)
            << "trial " << trial;
    }
    // The generator must actually exercise the allocator.
    EXPECT_GT(feasible, 1000);
}

TEST(AllocationRandomProperties, UnifiedNeverBeatenByDeclaredNeeds)
{
    // If a configuration is feasible, the per-CTA footprint must fit;
    // if infeasible, even one CTA's scratchpad cannot fit (allocateUnified
    // spills registers down before giving up).
    std::mt19937 rng(777);
    for (int trial = 0; trial < 2000; ++trial) {
        KernelParams kp = randomKernel(rng);
        u64 capacity =
            kBankWordBytes *
            std::uniform_int_distribution<u64>(256, 16384)(rng);
        AllocationDecision d = allocateUnified(kp, capacity);
        u64 minFootprint =
            static_cast<u64>(kp.ctaThreads) * kMinRegsPerThread *
                kRegBytes +
            kp.sharedBytesPerCta;
        if (d.launch.feasible) {
            u64 ctaFootprint = static_cast<u64>(kp.ctaThreads) *
                                   d.launch.regsPerThread * kRegBytes +
                               kp.sharedBytesPerCta;
            EXPECT_LE(ctaFootprint * d.launch.ctas, capacity)
                << "trial " << trial;
        } else {
            EXPECT_GT(minFootprint, capacity) << "trial " << trial;
        }
    }
}

TEST(AllocationRandomProperties, ThreadLimitAndOverrideRespected)
{
    std::mt19937 rng(424242);
    for (int trial = 0; trial < 1000; ++trial) {
        KernelParams kp = randomKernel(rng);
        u32 limit =
            kWarpWidth * std::uniform_int_distribution<u32>(1, 32)(rng);
        u32 regsOverride =
            std::uniform_int_distribution<u32>(0, 48)(rng);
        AllocationDecision d =
            allocateUnified(kp, 384_KB, limit, regsOverride);
        if (!d.launch.feasible)
            continue;
        EXPECT_LE(d.launch.threads, limit) << "trial " << trial;
        EXPECT_EQ(d.partition.total(), u64{384_KB}) << "trial " << trial;
        if (regsOverride >= kMinRegsPerThread) {
            u64 oneCta = static_cast<u64>(kp.ctaThreads) * regsOverride *
                             kRegBytes +
                         kp.sharedBytesPerCta;
            if (oneCta <= 384_KB) {
                EXPECT_EQ(d.launch.regsPerThread, regsOverride)
                    << "trial " << trial;
            }
        }
        // Spills appear exactly when squeezed below the requirement.
        if (d.launch.regsPerThread >= kp.regsPerThread)
            EXPECT_DOUBLE_EQ(d.launch.spillMultiplier, 1.0)
                << "trial " << trial;
        else
            EXPECT_GE(d.launch.spillMultiplier, 1.0) << "trial " << trial;
    }
}

// ---- Broad benchmark x design invariants --------------------------------

class DesignSweep : public ::testing::TestWithParam<const char*>
{
};

TEST_P(DesignSweep, CrossDesignInvariants)
{
    const char* name = GetParam();
    RunSpec part;
    SimResult rp = simulateBenchmark(name, kScale, part);

    RunSpec uni;
    uni.design = DesignKind::Unified;
    SimResult ru = simulateBenchmark(name, kScale, uni);

    // IPC can never exceed the SIMT width.
    EXPECT_LE(rp.sm.ipc(), 32.0) << name;
    EXPECT_LE(ru.sm.ipc(), 32.0) << name;

    // Work is conserved across designs when the register allocation is
    // identical (same spill behaviour): both run at the no-spill count.
    if (rp.alloc.launch.regsPerThread == ru.alloc.launch.regsPerThread &&
        rp.alloc.launch.threads == ru.alloc.launch.threads) {
        EXPECT_EQ(rp.sm.warpInstrs, ru.sm.warpInstrs) << name;
    }

    // Cycles dominate issued instructions (single-issue SM).
    EXPECT_GE(rp.cycles(), rp.sm.warpInstrs) << name;
    EXPECT_GE(ru.cycles(), ru.sm.warpInstrs) << name;

    // Energy accounting is finite and positive everywhere.
    double e = energyOf(ru, rp);
    EXPECT_GT(e, 0.0) << name;
    EXPECT_LT(e, 1.0) << name << " (joules for a millisecond-scale run)";

    // The RF hierarchy always removes some MRF traffic.
    EXPECT_GT(rp.sm.rf.reduction(), 0.0) << name;

    // DRAM sector accounting is consistent with byte accounting.
    EXPECT_EQ(rp.sm.dramBytes(),
              rp.sm.dramSectors() * kDramSectorBytes)
        << name;
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, DesignSweep,
    ::testing::ValuesIn([] {
        std::vector<const char*> names;
        for (const BenchmarkInfo& info : allBenchmarks())
            names.push_back(info.name);
        return names;
    }()),
    [](const ::testing::TestParamInfo<const char*>& info) {
        std::string name = info.param;
        for (char& c : name)
            if (c == '-')
                c = '_';
        return name;
    });

} // namespace
} // namespace unimem
