/**
 * @file
 * Tests of the simulation result cache: key sensitivity (every field
 * that reaches the SmRunConfig misses on change; specs that resolve to
 * the same allocation hit), bit-identical results with memoization on
 * and off across 1/2/8 sweep workers, LRU eviction and the size bound,
 * the ScopedResultCacheDisable guard, and cross-harness reuse between
 * runUnified and the thread-limit autotuner.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "kernels/registry.hh"
#include "sim/experiments.hh"
#include "sim/result_cache.hh"
#include "sim/sweep.hh"

namespace unimem {
namespace {

constexpr double kScale = 0.05;

/** Key of ("bfs", kScale) with @p mutate applied to the default spec. */
template <typename Mutate>
std::string
mutatedKey(Mutate&& mutate)
{
    std::unique_ptr<KernelModel> kernel = createBenchmark("bfs", kScale);
    RunSpec spec;
    mutate(spec);
    return resultCacheKey("bfs", kScale, kernel->params(), spec);
}

// ---- Key construction -------------------------------------------------

TEST(ResultCacheKey, StableForIdenticalInputs)
{
    EXPECT_EQ(mutatedKey([](RunSpec&) {}), mutatedKey([](RunSpec&) {}));
}

TEST(ResultCacheKey, MissesOnAnyFieldChange)
{
    const std::string base = mutatedKey([](RunSpec&) {});

    EXPECT_NE(mutatedKey([](RunSpec& s) { s.seed = 2; }), base);
    EXPECT_NE(mutatedKey([](RunSpec& s) {
                  s.design = DesignKind::Unified;
              }),
              base);
    EXPECT_NE(mutatedKey([](RunSpec& s) { s.activeSetSize = 4; }), base);
    EXPECT_NE(mutatedKey([](RunSpec& s) {
                  s.cachePolicy = WritePolicy::WriteBack;
              }),
              base);
    EXPECT_NE(mutatedKey([](RunSpec& s) { s.rfHierarchy = false; }),
              base);
    EXPECT_NE(mutatedKey([](RunSpec& s) { s.conflictPenalties = false; }),
              base);
    EXPECT_NE(mutatedKey([](RunSpec& s) { s.aggressiveUnified = true; }),
              base);
    EXPECT_NE(mutatedKey([](RunSpec& s) { s.regsOverride = 16; }), base);
    EXPECT_NE(mutatedKey([](RunSpec& s) { s.threadLimit = 256; }), base);
    EXPECT_NE(mutatedKey([](RunSpec& s) {
                  s.partition = MemoryPartition{128_KB, 128_KB, 128_KB};
              }),
              base);

    // Benchmark identity: name and scale are part of the key.
    std::unique_ptr<KernelModel> kernel = createBenchmark("bfs", kScale);
    EXPECT_NE(resultCacheKey("nn", kScale, kernel->params(), RunSpec{}),
              base);
    EXPECT_NE(resultCacheKey("bfs", 0.07, kernel->params(), RunSpec{}),
              base);
}

TEST(ResultCacheKey, FermiLikeAndPartitionedNeverCollide)
{
    // Both designs resolve through allocatePartitioned with the same
    // partition, but the SimResult carries the design tag, so the raw
    // spec design must stay in the key.
    const std::string part = mutatedKey([](RunSpec& s) {
        s.design = DesignKind::Partitioned;
    });
    const std::string fermi = mutatedKey([](RunSpec& s) {
        s.design = DesignKind::FermiLike;
    });
    EXPECT_NE(part, fermi);
}

TEST(ResultCacheKey, SpecsResolvingToSameAllocationShareAKey)
{
    // threadLimit 0 means "kMaxThreadsPerSm"; both resolve to the same
    // launch, so the autotuner's explicit-limit probes reuse figure
    // sweep entries instead of re-simulating.
    const std::string implicit =
        mutatedKey([](RunSpec& s) { s.threadLimit = 0; });
    const std::string explicitMax = mutatedKey(
        [](RunSpec& s) { s.threadLimit = kMaxThreadsPerSm; });
    EXPECT_EQ(implicit, explicitMax);
}

// ---- Cache behavior (local instance: no global state involved) --------

SimResult
dummyResult(u64 cycles)
{
    SimResult r;
    r.sm.cycles = cycles;
    return r;
}

/** "k<i>" built with += (GCC 12's -O2 restrict FP flags operator+). */
std::string
keyName(u64 i)
{
    std::string s = "k";
    s += std::to_string(i);
    return s;
}

TEST(ResultCacheLru, InsertLookupAndCounters)
{
    SimResultCache cache;
    EXPECT_FALSE(cache.lookup("a").has_value());
    EXPECT_EQ(cache.misses(), 1u);

    cache.insert("a", dummyResult(42));
    std::optional<SimResult> hit = cache.lookup("a");
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->sm.cycles, 42u);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.size(), 1u);

    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_FALSE(cache.lookup("a").has_value());
}

TEST(ResultCacheLru, EvictionKeepsSizeBounded)
{
    SimResultCache cache(4);
    for (u64 i = 0; i < 10; ++i)
        cache.insert(keyName(i), dummyResult(i));
    EXPECT_EQ(cache.size(), 4u);
    EXPECT_EQ(cache.evictions(), 6u);

    // Oldest entries were evicted, newest survive.
    EXPECT_FALSE(cache.lookup("k0").has_value());
    EXPECT_FALSE(cache.lookup("k5").has_value());
    EXPECT_TRUE(cache.lookup("k6").has_value());
    EXPECT_TRUE(cache.lookup("k9").has_value());
}

TEST(ResultCacheLru, LookupRefreshesRecency)
{
    SimResultCache cache(3);
    cache.insert("a", dummyResult(1));
    cache.insert("b", dummyResult(2));
    cache.insert("c", dummyResult(3));
    EXPECT_TRUE(cache.lookup("a").has_value()); // a is now most recent
    cache.insert("d", dummyResult(4));          // evicts b, not a
    EXPECT_TRUE(cache.lookup("a").has_value());
    EXPECT_FALSE(cache.lookup("b").has_value());
    EXPECT_TRUE(cache.lookup("c").has_value());
    EXPECT_TRUE(cache.lookup("d").has_value());
}

TEST(ResultCacheLru, ShrinkingCapacityEvictsImmediately)
{
    SimResultCache cache(8);
    for (u64 i = 0; i < 8; ++i)
        cache.insert(keyName(i), dummyResult(i));
    cache.setCapacity(2);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_TRUE(cache.lookup("k7").has_value());
    EXPECT_TRUE(cache.lookup("k6").has_value());
}

TEST(ResultCacheLru, DisabledCacheIsInert)
{
    SimResultCache cache;
    cache.setEnabled(false);
    u64 misses = cache.misses();
    cache.insert("a", dummyResult(1));
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_FALSE(cache.lookup("a").has_value());
    EXPECT_EQ(cache.misses(), misses) << "disabled lookups don't count";
    cache.setEnabled(true);
    cache.insert("a", dummyResult(1));
    EXPECT_TRUE(cache.lookup("a").has_value());
}

// ---- Integration with simulateBenchmark (global cache) ----------------

/**
 * Forces the global cache on for the test body (restoring the prior
 * state afterwards) so the suite still passes under
 * UNIMEM_RESULT_CACHE=0, where only these memoization-specific tests
 * would otherwise be vacuous.
 */
class ResultCacheMemo : public ::testing::Test
{
  protected:
    ResultCacheMemo() : prev_(resultCache().enabled())
    {
        resultCache().setEnabled(true);
    }

    ~ResultCacheMemo() override { resultCache().setEnabled(prev_); }

  private:
    bool prev_;
};

TEST_F(ResultCacheMemo, SecondSimulationHitsAndIsBitIdentical)
{
    resultCache().clear();
    ASSERT_TRUE(resultCache().enabled());

    RunSpec spec;
    spec.design = DesignKind::Unified;
    u64 hits0 = resultCache().hits();
    u64 misses0 = resultCache().misses();

    SimResult first = simulateBenchmark("needle", kScale, spec);
    EXPECT_EQ(resultCache().misses(), misses0 + 1);
    SimResult second = simulateBenchmark("needle", kScale, spec);
    EXPECT_EQ(resultCache().hits(), hits0 + 1);
    EXPECT_TRUE(identicalResults(first, second));

    // A cached hit must be indistinguishable from a real re-simulation.
    ScopedResultCacheDisable off;
    SimResult recomputed = simulateBenchmark("needle", kScale, spec);
    EXPECT_TRUE(identicalResults(first, recomputed));
}

TEST_F(ResultCacheMemo, AnyFieldChangeMisses)
{
    resultCache().clear();
    simulateBenchmark("bfs", kScale, RunSpec{});
    u64 hits0 = resultCache().hits();

    RunSpec seed;
    seed.seed = 7;
    simulateBenchmark("bfs", kScale, seed);
    RunSpec active;
    active.activeSetSize = 6;
    simulateBenchmark("bfs", kScale, active);
    simulateBenchmark("bfs", 0.04, RunSpec{});
    simulateBenchmark("nn", kScale, RunSpec{});
    EXPECT_EQ(resultCache().hits(), hits0)
        << "changed specs must not hit the default-spec entry";
}

TEST_F(ResultCacheMemo, ScopedDisableRestoresPriorState)
{
    ASSERT_TRUE(resultCache().enabled());
    {
        ScopedResultCacheDisable off;
        EXPECT_FALSE(resultCache().enabled());
        {
            ScopedResultCacheDisable nested;
            EXPECT_FALSE(resultCache().enabled());
        }
        EXPECT_FALSE(resultCache().enabled());
    }
    EXPECT_TRUE(resultCache().enabled());
}

TEST_F(ResultCacheMemo, AutotunerReusesFigureSweepEntries)
{
    resultCache().clear();
    runUnified("dgemm", kScale, 384_KB); // a fig8-style unified point
    u64 hits0 = resultCache().hits();
    SimResult tuned = runUnifiedAutotuned("dgemm", kScale, 384_KB);
    EXPECT_GT(resultCache().hits(), hits0)
        << "the autotuner's max-thread probe resolves to the allocation "
           "runUnified already simulated and must hit";

    ScopedResultCacheDisable off;
    SimResult reference = runUnifiedAutotuned("dgemm", kScale, 384_KB);
    EXPECT_TRUE(identicalResults(tuned, reference));
}

// ---- Sweep parity: memoization must never change results --------------

TEST_F(ResultCacheMemo, SweepResultsBitIdenticalWithCacheOnAndOff)
{
    std::vector<SweepJob> jobs;
    for (const char* name : {"vectoradd", "needle", "dgemm", "bfs"}) {
        jobs.push_back(makeSweepJob(std::string(name) + "/base", name,
                                    kScale, RunSpec{}));
        RunSpec uni;
        uni.design = DesignKind::Unified;
        jobs.push_back(makeSweepJob(std::string(name) + "/uni", name,
                                    kScale, uni));
    }

    std::vector<SimResult> reference;
    {
        ScopedResultCacheDisable off;
        reference = runSweep(jobs, 1);
    }

    resultCache().clear();
    for (u32 workers : {1u, 2u, 8u}) {
        SweepStats stats;
        std::vector<SimResult> cached = runSweep(jobs, workers, &stats);
        ASSERT_EQ(cached.size(), reference.size());
        for (size_t i = 0; i < cached.size(); ++i)
            EXPECT_TRUE(identicalResults(cached[i], reference[i]))
                << jobs[i].label << " with " << workers
                << " workers and memoization on";
        if (workers > 1) {
            EXPECT_EQ(stats.memoHits, jobs.size())
                << "the warm cache should satisfy every job";
        }
    }
}

TEST_F(ResultCacheMemo, SweepStatsSurfaceMemoCounters)
{
    resultCache().clear();
    std::vector<SweepJob> jobs{
        makeSweepJob("a", "vectoradd", kScale, RunSpec{}),
        makeSweepJob("b", "vectoradd", kScale, RunSpec{})};

    SweepStats cold;
    runSweep(jobs, 1, &cold);
    EXPECT_EQ(cold.memoHits, 1u) << "job b duplicates job a";
    EXPECT_EQ(cold.memoMisses, 1u);

    SweepStats warm;
    runSweep(jobs, 1, &warm);
    EXPECT_EQ(warm.memoHits, 2u);
    EXPECT_EQ(warm.memoMisses, 0u);
    EXPECT_NE(warm.summary().find("memo 2 hits / 0 misses"),
              std::string::npos)
        << warm.summary();
}

} // namespace
} // namespace unimem
