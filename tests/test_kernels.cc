/**
 * @file
 * Parameterized well-formedness tests over all 26 benchmark models:
 * registry metadata agreement with Table 1, register-id bounds,
 * scratchpad address bounds, barrier balance across the warps of a CTA,
 * deterministic trace generation, and non-trivial trace length.
 */

#include <algorithm>
#include <optional>

#include <gtest/gtest.h>

#include "kernels/registry.hh"
#include "kernels/workloads.hh"

namespace unimem {
namespace {

void
drainWarp(const KernelModel& k, u32 ctaId, u32 warpInCta,
          std::vector<WarpInstr>& out)
{
    WarpCtx ctx;
    ctx.ctaId = ctaId;
    ctx.warpInCta = warpInCta;
    ctx.warpsPerCta = k.params().warpsPerCta();
    ctx.threadsPerCta = k.params().ctaThreads;
    ctx.seed = 1;
    auto prog = k.warpProgram(ctx);
    out.clear();
    while (prog->fill(out)) {
        ASSERT_LT(out.size(), 10u * 1000 * 1000) << "runaway trace";
    }
}

class KernelTest : public ::testing::TestWithParam<const char*>
{
};

TEST_P(KernelTest, MetadataMatchesTable1)
{
    const BenchmarkInfo* info = findBenchmark(GetParam());
    ASSERT_NE(info, nullptr);
    auto k = createBenchmark(GetParam(), 0.25);
    const KernelParams& kp = k->params();
    kp.validate();
    EXPECT_EQ(kp.regsPerThread, info->paperRegs)
        << "registers per thread must match the paper's Table 1";
    EXPECT_NEAR(kp.sharedBytesPerThread(), info->paperSharedPerThread,
                info->paperSharedPerThread * 0.05 + 0.01)
        << "shared bytes/thread must match the paper's Table 1";
}

TEST_P(KernelTest, RegisterIdsWithinBudget)
{
    auto k = createBenchmark(GetParam(), 0.1);
    std::vector<WarpInstr> trace;
    drainWarp(*k, 0, 0, trace);
    ASSERT_FALSE(trace.empty());
    for (const WarpInstr& in : trace) {
        if (in.hasDst()) {
            EXPECT_LT(in.dst, k->params().regsPerThread);
        }
        for (u8 s = 0; s < in.numSrc; ++s) {
            if (in.src[s] != kInvalidReg) {
                EXPECT_LT(in.src[s], k->params().regsPerThread);
            }
        }
    }
}

TEST_P(KernelTest, SharedAddressesWithinCtaAllocation)
{
    auto k = createBenchmark(GetParam(), 0.1);
    const KernelParams& kp = k->params();
    for (u32 w = 0; w < kp.warpsPerCta(); ++w) {
        std::vector<WarpInstr> trace;
        drainWarp(*k, 2, w, trace);
        Addr base = static_cast<Addr>(2) * kp.sharedBytesPerCta;
        for (const WarpInstr& in : trace) {
            if (!isSharedSpace(in.op))
                continue;
            for (u32 lane = 0; lane < kWarpWidth; ++lane) {
                if (!in.laneActive(lane))
                    continue;
                ASSERT_GE(in.addr[lane], base)
                    << kp.name << " warp " << w;
                ASSERT_LT(in.addr[lane] + in.accessBytes,
                          base + kp.sharedBytesPerCta + 1)
                    << kp.name << " warp " << w;
            }
        }
    }
}

TEST_P(KernelTest, BarriersBalancedAcrossCtaWarps)
{
    auto k = createBenchmark(GetParam(), 0.1);
    const KernelParams& kp = k->params();
    std::optional<u64> expected;
    for (u32 w = 0; w < kp.warpsPerCta(); ++w) {
        std::vector<WarpInstr> trace;
        drainWarp(*k, 0, w, trace);
        u64 bars = 0;
        for (const WarpInstr& in : trace)
            if (in.op == Opcode::Bar)
                ++bars;
        if (!expected)
            expected = bars;
        EXPECT_EQ(bars, *expected)
            << kp.name << ": warp " << w << " barrier count differs";
    }
}

TEST_P(KernelTest, TraceIsDeterministic)
{
    auto k1 = createBenchmark(GetParam(), 0.1);
    auto k2 = createBenchmark(GetParam(), 0.1);
    std::vector<WarpInstr> a, b;
    drainWarp(*k1, 1, 0, a);
    drainWarp(*k2, 1, 0, b);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].op, b[i].op) << "at " << i;
        EXPECT_EQ(a[i].dst, b[i].dst) << "at " << i;
        EXPECT_EQ(a[i].activeMask, b[i].activeMask) << "at " << i;
        if (isMemOp(a[i].op)) {
            EXPECT_EQ(a[i].addr, b[i].addr) << "at " << i;
        }
    }
}

TEST_P(KernelTest, MemoryOpsHaveSaneAddresses)
{
    auto k = createBenchmark(GetParam(), 0.1);
    std::vector<WarpInstr> trace;
    drainWarp(*k, 0, 0, trace);
    u64 mem_ops = 0;
    for (const WarpInstr& in : trace) {
        if (!isMemOp(in.op))
            continue;
        ++mem_ops;
        EXPECT_TRUE(in.accessBytes == 4 || in.accessBytes == 8 ||
                    in.accessBytes == 16)
            << "access size " << static_cast<int>(in.accessBytes);
        EXPECT_NE(in.activeMask, 0u);
        for (u32 lane = 0; lane < kWarpWidth; ++lane) {
            if (!in.laneActive(lane))
                continue;
            // 4-byte alignment keeps accesses within sectors/lines.
            EXPECT_EQ(in.addr[lane] % 4, 0u);
        }
    }
    EXPECT_GT(mem_ops, 0u) << "every workload touches memory";
}

TEST_P(KernelTest, DifferentCtasCoverDifferentGlobalData)
{
    // Streaming benchmarks must not have all CTAs reading the same
    // addresses; verify CTA 0 and CTA 1 traces differ somewhere.
    auto k = createBenchmark(GetParam(), 0.1);
    std::vector<WarpInstr> a, b;
    drainWarp(*k, 0, 0, a);
    drainWarp(*k, 1, 0, b);
    bool differs = a.size() != b.size();
    for (size_t i = 0; i < std::min(a.size(), b.size()) && !differs; ++i)
        if (isMemOp(a[i].op) && a[i].addr != b[i].addr)
            differs = true;
    EXPECT_TRUE(differs) << "CTAs 0 and 1 produce identical traces";
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, KernelTest,
    ::testing::ValuesIn([] {
        std::vector<const char*> names;
        for (const BenchmarkInfo& info : allBenchmarks())
            names.push_back(info.name);
        return names;
    }()),
    [](const ::testing::TestParamInfo<const char*>& info) {
        std::string name = info.param;
        for (char& c : name)
            if (c == '-')
                c = '_';
        return name;
    });

TEST(KernelRegistry, HasAll26Benchmarks)
{
    EXPECT_EQ(allBenchmarks().size(), 26u);
    EXPECT_EQ(benefitBenchmarkNames().size(), 8u);
    EXPECT_EQ(noBenefitBenchmarkNames().size(), 18u);
}

TEST(KernelRegistry, UnknownNameReturnsNull)
{
    EXPECT_EQ(findBenchmark("nonexistent"), nullptr);
}

TEST(KernelRegistry, ScaleControlsGridSize)
{
    auto small = createBenchmark("vectoradd", 0.25);
    auto big = createBenchmark("vectoradd", 1.0);
    EXPECT_LT(small->params().gridCtas, big->params().gridCtas);
}

TEST(Needle, BlockingFactorControlsSharedFootprint)
{
    auto bf16 = makeNeedle(16, 1.0);
    auto bf32 = makeNeedle(32, 1.0);
    auto bf64 = makeNeedle(64, 1.0);
    // Quadratic growth in scratchpad per CTA.
    EXPECT_LT(bf16->params().sharedBytesPerCta,
              bf32->params().sharedBytesPerCta);
    EXPECT_LT(bf32->params().sharedBytesPerCta,
              bf64->params().sharedBytesPerCta);
    // Paper: ~264 B/thread at BF=32, ~528 at BF=64.
    EXPECT_NEAR(bf32->params().sharedBytesPerThread(), 272.0, 10.0);
    EXPECT_NEAR(bf64->params().sharedBytesPerThread(), 528.0, 10.0);
    // BF=64 CTAs span two warps.
    EXPECT_EQ(bf64->params().warpsPerCta(), 2u);
}

} // namespace
} // namespace unimem
