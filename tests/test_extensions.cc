/**
 * @file
 * Tests for the extension features: write-back cache mode (the paper's
 * Section 4.3/4.4 design-choice ablation), multi-kernel sequences with
 * per-kernel repartitioning, fixed-partition unified runs, and the
 * autotuned thread count helper.
 */

#include <gtest/gtest.h>

#include "kernels/registry.hh"
#include "mem/cache.hh"
#include "sim/experiments.hh"
#include "sim/multi_kernel.hh"

namespace unimem {
namespace {

// ---- write-back cache semantics ---------------------------------------

TEST(WriteBackCache, WriteHitMarksDirty)
{
    DataCache c(8_KB, 4, WritePolicy::WriteBack);
    c.fill(0x100 & ~127ull);
    EXPECT_FALSE(c.isDirty(0x100 & ~127ull));
    EXPECT_TRUE(c.write(0x100 & ~127ull));
    EXPECT_TRUE(c.isDirty(0x100 & ~127ull));
    EXPECT_EQ(c.dirtyLineCount(), 1u);
}

TEST(WriteBackCache, WriteThroughNeverDirty)
{
    DataCache c(8_KB, 4, WritePolicy::WriteThrough);
    c.fill(0);
    c.write(0);
    EXPECT_FALSE(c.isDirty(0));
    EXPECT_EQ(c.dirtyLineCount(), 0u);
    EXPECT_EQ(c.invalidateAll(), 0u);
}

TEST(WriteBackCache, DirtyEvictionReported)
{
    // One set: 4 lines capacity at assoc 4.
    DataCache c(512, 4, WritePolicy::WriteBack);
    for (Addr l = 0; l < 4; ++l) {
        c.fill(l * 128);
        c.write(l * 128);
    }
    EXPECT_EQ(c.dirtyLineCount(), 4u);
    // Fifth fill evicts the LRU line, which is dirty.
    EXPECT_TRUE(c.fill(4 * 128));
    EXPECT_EQ(c.stats().dirtyEvictions, 1u);
    EXPECT_EQ(c.dirtyLineCount(), 3u);
}

TEST(WriteBackCache, CleanEvictionNotReported)
{
    DataCache c(512, 4, WritePolicy::WriteBack);
    for (Addr l = 0; l < 4; ++l)
        c.fill(l * 128);
    EXPECT_FALSE(c.fill(4 * 128));
    EXPECT_EQ(c.stats().dirtyEvictions, 0u);
}

TEST(WriteBackCache, InvalidateAllReturnsDirtyCount)
{
    DataCache c(8_KB, 4, WritePolicy::WriteBack);
    for (Addr l = 0; l < 8; ++l)
        c.fill(l * 128);
    for (Addr l = 0; l < 3; ++l) {
        c.write(l * 128);
    }
    EXPECT_EQ(c.invalidateAll(), 3u);
    EXPECT_EQ(c.dirtyLineCount(), 0u);
    EXPECT_FALSE(c.contains(0));
}

TEST(WriteBackCache, MarkDirtyPanicsOnWriteThrough)
{
    DataCache c(8_KB, 4, WritePolicy::WriteThrough);
    c.fill(0);
    EXPECT_DEATH({ c.markDirty(0); }, "markDirty");
}

// ---- SM-level write policy --------------------------------------------

TEST(WriteBackSm, StoresLeaveDirtyState)
{
    RunSpec wb;
    wb.cachePolicy = WritePolicy::WriteBack;
    SimResult r = simulateBenchmark("vectoradd", 0.1, wb);
    EXPECT_GT(r.sm.dirtyLinesAtEnd, 0u);

    RunSpec wt;
    SimResult rt = simulateBenchmark("vectoradd", 0.1, wt);
    EXPECT_EQ(rt.sm.dirtyLinesAtEnd, 0u);
    EXPECT_EQ(rt.sm.cache.dirtyEvictions, 0u);
}

TEST(WriteBackSm, CoalescesRepeatedStoreTraffic)
{
    // vectoradd overwrites output lines 4 times; write-back coalesces
    // those into one eventual writeback, write-through sends each.
    RunSpec wb;
    wb.cachePolicy = WritePolicy::WriteBack;
    RunSpec wt;
    SimResult rb = simulateBenchmark("vectoradd", 0.1, wb);
    SimResult rt = simulateBenchmark("vectoradd", 0.1, wt);
    EXPECT_LT(rb.sm.dram.writeSectors + rb.sm.dirtyLinesAtEnd * 4,
              rt.sm.dram.writeSectors);
}

TEST(WriteBackSm, WorkIsIdenticalAcrossPolicies)
{
    for (const char* name : {"srad", "nn"}) {
        RunSpec wb;
        wb.cachePolicy = WritePolicy::WriteBack;
        RunSpec wt;
        SimResult rb = simulateBenchmark(name, 0.1, wb);
        SimResult rt = simulateBenchmark(name, 0.1, wt);
        EXPECT_EQ(rb.sm.warpInstrs, rt.sm.warpInstrs) << name;
        EXPECT_EQ(rb.sm.threadInstrs, rt.sm.threadInstrs) << name;
    }
}

// ---- fixed-partition unified runs --------------------------------------

TEST(FixedPartition, UsesGivenSplitWithUnifiedBanks)
{
    RunSpec spec;
    spec.design = DesignKind::Unified;
    spec.unifiedUseFixedPartition = true;
    spec.partition = MemoryPartition{128_KB, 64_KB, 192_KB};
    SimResult r = simulateBenchmark("sgemv", 0.1, spec);
    EXPECT_EQ(r.alloc.partition.cacheBytes, 192_KB);
    EXPECT_EQ(r.alloc.design, DesignKind::Unified);
}

// ---- multi-kernel sequences --------------------------------------------

std::vector<KernelStage>
mixedStages()
{
    return {{"needle", 0.1}, {"bfs", 0.1}, {"dgemm", 0.1}};
}

TEST(MultiKernel, StaticCompromiseCoversAllStages)
{
    MemoryPartition p = staticCompromisePartition(mixedStages(), 384_KB);
    // Must cover dgemm's registers (228KB) and needle's scratchpad
    // (272KB)? They cannot both fit in 384KB: the register file gives
    // way (the compiler spills), the scratchpad demand must be met.
    EXPECT_EQ(p.sharedBytes, 32u * 8712); // needle: 32 CTAs' tiles
    EXPECT_EQ(p.total(), 384_KB);
    EXPECT_LE(p.rfBytes + p.sharedBytes, 384_KB);
}

TEST(MultiKernel, SequenceRunsAllStages)
{
    SequenceResult r = runSequence(
        mixedStages(), ReconfigPolicy::UnifiedPerKernel, 384_KB);
    ASSERT_EQ(r.stages.size(), 3u);
    EXPECT_EQ(r.reconfigs, 2u);
    Cycle sum = 0;
    for (const StageResult& st : r.stages)
        sum += st.cycles + st.reconfigCycles;
    EXPECT_EQ(sum, r.totalCycles);
}

TEST(MultiKernel, WriteThroughReconfigurationIsFree)
{
    SequenceResult r = runSequence(
        mixedStages(), ReconfigPolicy::UnifiedPerKernel, 384_KB,
        WritePolicy::WriteThrough);
    for (const StageResult& st : r.stages)
        EXPECT_EQ(st.reconfigCycles, 0u) << st.benchmark;
}

TEST(MultiKernel, WriteBackReconfigurationPaysDrain)
{
    SequenceResult r = runSequence(
        mixedStages(), ReconfigPolicy::UnifiedPerKernel, 384_KB,
        WritePolicy::WriteBack);
    Cycle drain = 0;
    for (const StageResult& st : r.stages)
        drain += st.reconfigCycles;
    EXPECT_GT(drain, 0u);
}

TEST(MultiKernel, PerKernelBeatsOrMatchesStatic)
{
    // With stages that want very different splits, per-kernel
    // repartitioning must not lose to the static compromise (small
    // tolerance for scheduler noise).
    SequenceResult stat = runSequence(
        mixedStages(), ReconfigPolicy::UnifiedStatic, 384_KB);
    SequenceResult per = runSequence(
        mixedStages(), ReconfigPolicy::UnifiedPerKernel, 384_KB);
    EXPECT_LE(static_cast<double>(per.totalCycles),
              static_cast<double>(stat.totalCycles) * 1.02);
}

TEST(MultiKernel, UnifiedBeatsPartitionedOnMixedDemands)
{
    SequenceResult base = runSequence(
        mixedStages(), ReconfigPolicy::PartitionedBaseline);
    SequenceResult per = runSequence(
        mixedStages(), ReconfigPolicy::UnifiedPerKernel, 384_KB);
    EXPECT_LT(per.totalCycles, base.totalCycles);
}

TEST(MultiKernel, PolicyNames)
{
    EXPECT_STREQ(reconfigPolicyName(ReconfigPolicy::PartitionedBaseline),
                 "partitioned");
    EXPECT_STREQ(reconfigPolicyName(ReconfigPolicy::UnifiedPerKernel),
                 "unified-per-kernel");
}

// ---- autotuning ---------------------------------------------------------

TEST(Autotune, NeverWorseThanMaxThreads)
{
    for (const char* name : {"needle", "bfs"}) {
        SimResult maxed = runUnified(name, 0.15, 384_KB);
        SimResult tuned = runUnifiedAutotuned(name, 0.15, 384_KB);
        EXPECT_LE(tuned.cycles(), maxed.cycles()) << name;
    }
}

} // namespace
} // namespace unimem
