/**
 * @file
 * Regression tests that pin the paper-reproduction *shapes* measured in
 * EXPERIMENTS.md, so that future kernel or timing-model edits cannot
 * silently break the calibration:
 *  - Table 1 DRAM-traffic bands for all 26 benchmarks,
 *  - Figure 9 per-benchmark speedup/energy bands,
 *  - Table 6's needle capacity anomaly,
 *  - Figure 11's blocking-factor crossover.
 */

#include <gtest/gtest.h>

#include "kernels/registry.hh"
#include "kernels/workloads.hh"
#include "sim/experiments.hh"

namespace unimem {
namespace {

constexpr double kScale = 0.25;

double
dramAt(const std::string& name, u64 cacheBytes)
{
    RunSpec spec;
    spec.partition = MemoryPartition{256_KB, 1_MB, cacheBytes};
    return static_cast<double>(
        simulateBenchmark(name, kScale, spec).dramSectors());
}

class Table1Shape : public ::testing::TestWithParam<const char*>
{
};

TEST_P(Table1Shape, DramColumnsInBand)
{
    const BenchmarkInfo* info = findBenchmark(GetParam());
    ASSERT_NE(info, nullptr);

    double d256 = dramAt(info->name, 256_KB);
    ASSERT_GT(d256, 0.0);
    double d0 = dramAt(info->name, 0) / d256;
    double d64 = dramAt(info->name, 64_KB) / d256;

    // No-cache column: benchmarks with strong redundancy in the paper
    // must show strong redundancy here; cache-insensitive ones must
    // stay near 1; needle's overfetch inversion must reproduce.
    if (info->paperDramNone < 1.0) {
        EXPECT_LT(d0, 1.0) << info->name << " d0=" << d0;
    } else if (info->paperDramNone >= 3.0) {
        EXPECT_GT(d0, 1.7) << info->name << " d0=" << d0;
    } else if (info->paperDramNone >= 1.2) {
        EXPECT_GT(d0, 1.1) << info->name << " d0=" << d0;
        EXPECT_LT(d0, 8.0) << info->name << " d0=" << d0;
    } else {
        EXPECT_LT(d0, 1.45) << info->name << " d0=" << d0;
    }

    // 64KB column: cache-limited benchmarks keep paying at 64KB, the
    // rest are already served.
    if (info->paperDram64k >= 1.10) {
        EXPECT_GT(d64, 1.05) << info->name << " d64=" << d64;
    } else {
        EXPECT_LT(d64, 1.40) << info->name << " d64=" << d64;
    }

    // The 64KB column never exceeds the no-cache column by more than
    // the paper's ray-style overfetch margin.
    EXPECT_LT(d64, std::max(d0 * 1.3, 1.4)) << info->name;
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, Table1Shape,
    ::testing::ValuesIn([] {
        std::vector<const char*> names;
        for (const BenchmarkInfo& info : allBenchmarks())
            names.push_back(info.name);
        return names;
    }()),
    [](const ::testing::TestParamInfo<const char*>& info) {
        std::string name = info.param;
        for (char& c : name)
            if (c == '-')
                c = '_';
        return name;
    });

// ---- Figure 9 bands ----------------------------------------------------

struct Fig9Band
{
    const char* name;
    double scale;
    double lo;
    double hi;
};

class Fig9Shape : public ::testing::TestWithParam<Fig9Band>
{
};

TEST_P(Fig9Shape, SpeedupAndEnergyInBand)
{
    const Fig9Band& band = GetParam();
    SimResult base = runBaseline(band.name, band.scale);
    SimResult uni = runUnified(band.name, band.scale, 384_KB);
    Comparison c = compare(uni, base);
    EXPECT_GE(c.speedup, band.lo) << band.name;
    EXPECT_LE(c.speedup, band.hi) << band.name;
    EXPECT_LE(c.energyRatio, 1.02) << band.name;
}

INSTANTIATE_TEST_SUITE_P(
    BenefitSet, Fig9Shape,
    ::testing::Values(Fig9Band{"needle", 0.5, 1.25, 2.2},
                      Fig9Band{"lu", 0.5, 1.05, 1.6},
                      Fig9Band{"gpu-mummer", 0.5, 1.00, 1.35},
                      Fig9Band{"bfs", 0.5, 1.10, 1.9},
                      Fig9Band{"srad", 0.5, 1.05, 1.6},
                      Fig9Band{"dgemm", 0.75, 0.99, 1.25},
                      Fig9Band{"pcr", 0.5, 1.20, 2.3},
                      Fig9Band{"ray", 0.5, 1.02, 1.4}),
    [](const ::testing::TestParamInfo<Fig9Band>& info) {
        std::string name = info.param.name;
        for (char& c : name)
            if (c == '-')
                c = '_';
        return name;
    });

// ---- Table 6 / Figure 11 anomalies --------------------------------------

TEST(PaperShapes, NeedlePrefers256KOver384K)
{
    // Paper Table 6: needle 1.75 at 256KB vs 1.71 at 384KB - the
    // scheduler-interaction anomaly. The exact winner flips with the
    // workload scale (it does in the paper too); assert 256KB stays
    // competitive despite having 128KB less SRAM.
    SimResult u256 = runUnified("needle", 0.35, 256_KB);
    SimResult u384 = runUnified("needle", 0.35, 384_KB);
    EXPECT_LE(static_cast<double>(u256.cycles()),
              static_cast<double>(u384.cycles()) * 1.15);
}

TEST(PaperShapes, NeedleBlockingFactorCrossover)
{
    // Figure 11: BF=32 beats BF=64 on the partitioned design (BF=64
    // fits only one or two CTAs in 64KB of scratchpad); BF=64 wins on a
    // large unified design.
    auto cyclesOf = [](u32 bf, std::optional<u64> unified) {
        auto k = makeNeedle(bf, 0.35);
        RunSpec spec;
        if (unified) {
            spec.design = DesignKind::Unified;
            spec.unifiedCapacity = *unified;
        }
        return simulate(*k, spec).cycles();
    };
    EXPECT_LT(cyclesOf(32, std::nullopt), cyclesOf(64, std::nullopt));
    EXPECT_LT(cyclesOf(64, 512_KB), cyclesOf(32, 512_KB));
}

TEST(PaperShapes, DgemmOccupancyCollapsesAt128K)
{
    // Table 6: dgemm craters at 128KB (paper 0.77, measured ~0.5)
    // because a 57-regs/thread CTA plus its scratchpad needs ~74KB:
    // only one CTA fits.
    auto k = createBenchmark("dgemm", 0.25);
    AllocationDecision d128 = allocateUnified(k->params(), 128_KB);
    ASSERT_TRUE(d128.launch.feasible);
    EXPECT_EQ(d128.launch.threads, 256u);
    AllocationDecision d384 = allocateUnified(k->params(), 384_KB);
    EXPECT_EQ(d384.launch.threads, 1024u);
}

TEST(PaperShapes, MrfReductionBandAcrossWorkloads)
{
    // The RF hierarchy's MRF traffic reduction (prior work: ~60%)
    // varies by workload but stays substantial on compute-heavy ones.
    for (const char* name : {"dct8x8", "aes", "sobolqrng"}) {
        SimResult r = runBaseline(name, 0.2);
        EXPECT_GT(r.sm.rf.reduction(), 0.40) << name;
        EXPECT_LT(r.sm.rf.reduction(), 0.85) << name;
    }
}

TEST(PaperShapes, UnifiedOverheadAblationOrdering)
{
    // Section 6.1: the unified design pays more conflict overhead than
    // the partitioned design, but both are tiny.
    u64 part = 0, uni = 0, part_instr = 0, uni_instr = 0;
    for (const char* name : {"aes", "sto", "scalarprod"}) {
        RunSpec p;
        SimResult rp = simulateBenchmark(name, kScale, p);
        part += rp.sm.conflictPenaltyCycles;
        part_instr += rp.sm.warpInstrs;
        RunSpec u;
        u.design = DesignKind::Unified;
        SimResult ru = simulateBenchmark(name, kScale, u);
        uni += ru.sm.conflictPenaltyCycles;
        uni_instr += ru.sm.warpInstrs;
    }
    EXPECT_GE(uni, part);
    // Overhead below 0.2 cycles per instruction in both designs.
    EXPECT_LT(static_cast<double>(part) / part_instr, 0.2);
    EXPECT_LT(static_cast<double>(uni) / uni_instr, 0.2);
}

} // namespace
} // namespace unimem
