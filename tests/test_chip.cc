/**
 * @file
 * Tests for chip-level co-simulation: equivalence with the single-SM
 * methodology at proportional bandwidth, DRAM contention effects, and
 * bookkeeping invariants.
 */

#include <gtest/gtest.h>

#include "kernels/registry.hh"
#include "sim/simulator.hh"
#include "sm/chip.hh"

namespace unimem {
namespace {

SmRunConfig
smConfigFor(const KernelModel& k)
{
    SmRunConfig cfg;
    cfg.partition = baselinePartition();
    cfg.launch = occupancyPartitioned(k.params(), cfg.partition.rfBytes,
                                      cfg.partition.sharedBytes);
    return cfg;
}

TEST(Chip, OneSmMatchesSingleSmExactly)
{
    auto k = createBenchmark("sgemv", 0.15);
    SmRunConfig cfg = smConfigFor(*k);

    SmStats single = runKernel(cfg, *k);

    ChipConfig chip_cfg;
    chip_cfg.numSms = 1;
    chip_cfg.chipDramBytesPerCycle = cfg.dramBytesPerCycle;
    chip_cfg.sm = cfg;
    ChipModel chip(chip_cfg, *k);
    const ChipStats& chip_stats = chip.run();

    EXPECT_EQ(chip_stats.cycles, single.cycles);
    EXPECT_EQ(chip_stats.sms[0].warpInstrs, single.warpInstrs);
    EXPECT_EQ(chip_stats.dram.sectors(), single.dram.sectors());
}

TEST(Chip, QuantumSizeDoesNotChangeSingleSmResult)
{
    auto k = createBenchmark("vectoradd", 0.1);
    SmRunConfig cfg = smConfigFor(*k);
    Cycle prev = 0;
    for (Cycle quantum : {16ull, 64ull, 1024ull}) {
        ChipConfig chip_cfg;
        chip_cfg.numSms = 1;
        chip_cfg.chipDramBytesPerCycle = cfg.dramBytesPerCycle;
        chip_cfg.quantum = quantum;
        chip_cfg.sm = cfg;
        ChipModel chip(chip_cfg, *k);
        Cycle c = chip.run().cycles;
        if (prev != 0) {
            EXPECT_EQ(c, prev) << "quantum " << quantum;
        }
        prev = c;
    }
}

TEST(Chip, ProportionalBandwidthApproximatesSingleSm)
{
    // The paper's methodological claim: N SMs sharing N x 8 B/cycle
    // behave like one SM with 8 B/cycle. Allow 15% modeling slack (the
    // shared channel introduces inter-SM queueing jitter).
    for (const char* name : {"vectoradd", "sgemv"}) {
        auto k = createBenchmark(name, 0.15);
        SmRunConfig cfg = smConfigFor(*k);
        SmStats single = runKernel(cfg, *k);

        ChipConfig chip_cfg;
        chip_cfg.numSms = 4;
        chip_cfg.chipDramBytesPerCycle = 4 * cfg.dramBytesPerCycle;
        chip_cfg.sm = cfg;
        ChipModel chip(chip_cfg, *k);
        const ChipStats& cs = chip.run();

        double ratio = static_cast<double>(cs.maxSmCycles()) /
                       static_cast<double>(single.cycles);
        EXPECT_GT(ratio, 0.85) << name;
        EXPECT_LT(ratio, 1.25) << name;
        // All four SMs did the full grid share each.
        EXPECT_EQ(cs.warpInstrs(), 4u * single.warpInstrs);
    }
}

TEST(Chip, UnderProvisionedBandwidthSlowsTheChip)
{
    auto k = createBenchmark("vectoradd", 0.1);
    SmRunConfig cfg = smConfigFor(*k);

    ChipConfig fair;
    fair.numSms = 4;
    fair.chipDramBytesPerCycle = 32;
    fair.sm = cfg;
    auto k1 = createBenchmark("vectoradd", 0.1);
    ChipModel chip_fair(fair, *k1);
    Cycle fair_cycles = chip_fair.run().cycles;

    ChipConfig starved = fair;
    starved.chipDramBytesPerCycle = 8; // 4 SMs on one SM's bandwidth
    auto k2 = createBenchmark("vectoradd", 0.1);
    ChipModel chip_starved(starved, *k2);
    Cycle starved_cycles = chip_starved.run().cycles;

    EXPECT_GT(starved_cycles, fair_cycles * 2);
}

TEST(Chip, PerSmSeedsDiversifyTraces)
{
    // Seed-sensitive kernels (bfs probes) produce different per-SM
    // DRAM timing; deterministic kernels do not.
    auto k = createBenchmark("bfs", 0.05);
    SmRunConfig cfg = smConfigFor(*k);
    ChipConfig chip_cfg;
    chip_cfg.numSms = 2;
    chip_cfg.chipDramBytesPerCycle = 16;
    chip_cfg.sm = cfg;
    ChipModel chip(chip_cfg, *k);
    const ChipStats& cs = chip.run();
    EXPECT_EQ(cs.sms.size(), 2u);
    // Both executed nearly the same instruction count (the random
    // frontier-update masks differ slightly between seeds)...
    EXPECT_NEAR(static_cast<double>(cs.sms[0].warpInstrs),
                static_cast<double>(cs.sms[1].warpInstrs),
                0.01 * static_cast<double>(cs.sms[0].warpInstrs));
    // ...and the run is reproducible.
    auto k2 = createBenchmark("bfs", 0.05);
    ChipModel chip2(chip_cfg, *k2);
    EXPECT_EQ(chip2.run().cycles, cs.cycles);
}

TEST(Chip, MinMaxSmCycleBookkeeping)
{
    auto k = createBenchmark("hotspot", 0.1);
    SmRunConfig cfg = smConfigFor(*k);
    ChipConfig chip_cfg;
    chip_cfg.numSms = 3;
    chip_cfg.chipDramBytesPerCycle = 24;
    chip_cfg.sm = cfg;
    ChipModel chip(chip_cfg, *k);
    const ChipStats& cs = chip.run();
    EXPECT_LE(cs.minSmCycles(), cs.maxSmCycles());
    EXPECT_GE(cs.cycles, cs.maxSmCycles());
}

} // namespace
} // namespace unimem
