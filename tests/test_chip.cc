/**
 * @file
 * Tests for chip-level co-simulation: equivalence with the single-SM
 * methodology at proportional bandwidth, DRAM contention effects,
 * bookkeeping invariants, and a golden snapshot of the Section 5.1
 * chip-vs-scaled-single-SM validation table.
 *
 * The golden file lives in tests/golden/chip_validation.golden;
 * regenerate with
 *   UNIMEM_UPDATE_GOLDEN=1 ./test_chip --gtest_filter='ChipGolden.*'
 * and commit the diff.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "kernels/registry.hh"
#include "sim/simulator.hh"
#include "sm/chip.hh"

namespace unimem {
namespace {

SmRunConfig
smConfigFor(const KernelModel& k)
{
    SmRunConfig cfg;
    cfg.partition = baselinePartition();
    cfg.launch = occupancyPartitioned(k.params(), cfg.partition.rfBytes,
                                      cfg.partition.sharedBytes);
    return cfg;
}

TEST(Chip, OneSmMatchesSingleSmExactly)
{
    auto k = createBenchmark("sgemv", 0.15);
    SmRunConfig cfg = smConfigFor(*k);

    SmStats single = runKernel(cfg, *k);

    ChipConfig chip_cfg;
    chip_cfg.numSms = 1;
    chip_cfg.chipDramBytesPerCycle = cfg.dramBytesPerCycle;
    chip_cfg.sm = cfg;
    ChipModel chip(chip_cfg, *k);
    const ChipStats& chip_stats = chip.run();

    EXPECT_EQ(chip_stats.cycles, single.cycles);
    EXPECT_EQ(chip_stats.sms[0].warpInstrs, single.warpInstrs);
    EXPECT_EQ(chip_stats.dram.sectors(), single.dram.sectors());
}

TEST(Chip, QuantumSizeDoesNotChangeSingleSmResult)
{
    auto k = createBenchmark("vectoradd", 0.1);
    SmRunConfig cfg = smConfigFor(*k);
    Cycle prev = 0;
    for (Cycle quantum : {16ull, 64ull, 1024ull}) {
        ChipConfig chip_cfg;
        chip_cfg.numSms = 1;
        chip_cfg.chipDramBytesPerCycle = cfg.dramBytesPerCycle;
        chip_cfg.quantum = quantum;
        chip_cfg.sm = cfg;
        ChipModel chip(chip_cfg, *k);
        Cycle c = chip.run().cycles;
        if (prev != 0) {
            EXPECT_EQ(c, prev) << "quantum " << quantum;
        }
        prev = c;
    }
}

TEST(Chip, ProportionalBandwidthApproximatesSingleSm)
{
    // The paper's methodological claim: N SMs sharing N x 8 B/cycle
    // behave like one SM with 8 B/cycle. Allow 15% modeling slack (the
    // shared channel introduces inter-SM queueing jitter).
    for (const char* name : {"vectoradd", "sgemv"}) {
        auto k = createBenchmark(name, 0.15);
        SmRunConfig cfg = smConfigFor(*k);
        SmStats single = runKernel(cfg, *k);

        ChipConfig chip_cfg;
        chip_cfg.numSms = 4;
        chip_cfg.chipDramBytesPerCycle = 4 * cfg.dramBytesPerCycle;
        chip_cfg.sm = cfg;
        ChipModel chip(chip_cfg, *k);
        const ChipStats& cs = chip.run();

        double ratio = static_cast<double>(cs.maxSmCycles()) /
                       static_cast<double>(single.cycles);
        EXPECT_GT(ratio, 0.85) << name;
        EXPECT_LT(ratio, 1.25) << name;
        // All four SMs did the full grid share each.
        EXPECT_EQ(cs.warpInstrs(), 4u * single.warpInstrs);
    }
}

TEST(Chip, UnderProvisionedBandwidthSlowsTheChip)
{
    auto k = createBenchmark("vectoradd", 0.1);
    SmRunConfig cfg = smConfigFor(*k);

    ChipConfig fair;
    fair.numSms = 4;
    fair.chipDramBytesPerCycle = 32;
    fair.sm = cfg;
    auto k1 = createBenchmark("vectoradd", 0.1);
    ChipModel chip_fair(fair, *k1);
    Cycle fair_cycles = chip_fair.run().cycles;

    ChipConfig starved = fair;
    starved.chipDramBytesPerCycle = 8; // 4 SMs on one SM's bandwidth
    auto k2 = createBenchmark("vectoradd", 0.1);
    ChipModel chip_starved(starved, *k2);
    Cycle starved_cycles = chip_starved.run().cycles;

    EXPECT_GT(starved_cycles, fair_cycles * 2);
}

TEST(Chip, PerSmSeedsDiversifyTraces)
{
    // Seed-sensitive kernels (bfs probes) produce different per-SM
    // DRAM timing; deterministic kernels do not.
    auto k = createBenchmark("bfs", 0.05);
    SmRunConfig cfg = smConfigFor(*k);
    ChipConfig chip_cfg;
    chip_cfg.numSms = 2;
    chip_cfg.chipDramBytesPerCycle = 16;
    chip_cfg.sm = cfg;
    ChipModel chip(chip_cfg, *k);
    const ChipStats& cs = chip.run();
    EXPECT_EQ(cs.sms.size(), 2u);
    // Both executed nearly the same instruction count (the random
    // frontier-update masks differ slightly between seeds)...
    EXPECT_NEAR(static_cast<double>(cs.sms[0].warpInstrs),
                static_cast<double>(cs.sms[1].warpInstrs),
                0.01 * static_cast<double>(cs.sms[0].warpInstrs));
    // ...and the run is reproducible.
    auto k2 = createBenchmark("bfs", 0.05);
    ChipModel chip2(chip_cfg, *k2);
    EXPECT_EQ(chip2.run().cycles, cs.cycles);
}

// ---- Golden snapshot of the Section 5.1 validation table --------------

constexpr double kGoldenScale = 0.1;
constexpr u32 kGoldenSms = 4;
constexpr double kGoldenTolerance = 0.01; // 1% relative drift budget

std::string
goldenPath()
{
    return std::string(UNIMEM_SOURCE_DIR) +
           "/tests/golden/chip_validation.golden";
}

struct ChipGoldenRow
{
    std::string name;
    double singleCycles = 0.0;
    double chipMaxCycles = 0.0;
    double error = 0.0; // chip max-SM over single-SM, minus 1
};

std::vector<ChipGoldenRow>
computeChipValidationRows()
{
    std::vector<ChipGoldenRow> rows;
    for (const char* name :
         {"vectoradd", "sgemv", "bfs", "hotspot", "needle"}) {
        auto k = createBenchmark(name, kGoldenScale);
        SmRunConfig cfg = smConfigFor(*k);
        SmStats single = runKernel(cfg, *k);

        ChipConfig chip_cfg;
        chip_cfg.numSms = kGoldenSms;
        chip_cfg.chipDramBytesPerCycle =
            kGoldenSms * cfg.dramBytesPerCycle;
        chip_cfg.sm = cfg;
        auto kc = createBenchmark(name, kGoldenScale);
        ChipModel chip(chip_cfg, *kc);
        const ChipStats& cs = chip.run();

        ChipGoldenRow r;
        r.name = name;
        r.singleCycles = static_cast<double>(single.cycles);
        r.chipMaxCycles = static_cast<double>(cs.maxSmCycles());
        r.error = r.chipMaxCycles / r.singleCycles - 1.0;
        rows.push_back(r);
    }
    return rows;
}

TEST(ChipGolden, ValidationTableMatchesGoldenFile)
{
    std::vector<ChipGoldenRow> rows = computeChipValidationRows();

    if (std::getenv("UNIMEM_UPDATE_GOLDEN")) {
        std::ofstream os(goldenPath());
        ASSERT_TRUE(os) << "cannot write " << goldenPath();
        os << "# chip validation golden (paper Section 5.1: single-SM "
              "methodology vs\n"
           << "# " << kGoldenSms
           << "-SM bound-weave co-simulation at proportional "
              "bandwidth, scale "
           << kGoldenScale << ")\n"
           << "# columns: benchmark single_sm_cycles chip_max_sm_cycles "
              "error\n"
           << "# regenerate: UNIMEM_UPDATE_GOLDEN=1 ./test_chip "
              "--gtest_filter='ChipGolden.*'\n";
        os.precision(17);
        for (const ChipGoldenRow& r : rows)
            os << r.name << " " << r.singleCycles << " "
               << r.chipMaxCycles << " " << r.error << "\n";
        GTEST_SKIP() << "golden file regenerated at " << goldenPath();
    }

    std::ifstream is(goldenPath());
    ASSERT_TRUE(is) << "missing golden file " << goldenPath()
                    << " - regenerate with UNIMEM_UPDATE_GOLDEN=1";

    std::map<std::string, ChipGoldenRow> golden;
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        ChipGoldenRow r;
        ASSERT_TRUE(static_cast<bool>(ls >> r.name >> r.singleCycles >>
                                      r.chipMaxCycles >> r.error))
            << "malformed golden line: " << line;
        golden[r.name] = r;
    }
    ASSERT_EQ(golden.size(), rows.size())
        << "golden file kernel set diverged - regenerate";

    auto within = [](double got, double want) {
        double denom = std::max(std::abs(want), 1e-12);
        return std::abs(got - want) / denom <= kGoldenTolerance;
    };
    for (const ChipGoldenRow& r : rows) {
        ASSERT_TRUE(golden.count(r.name)) << r.name;
        const ChipGoldenRow& g = golden[r.name];
        EXPECT_TRUE(within(r.singleCycles, g.singleCycles))
            << r.name << " single-SM cycles drifted: got "
            << r.singleCycles << ", golden " << g.singleCycles;
        EXPECT_TRUE(within(r.chipMaxCycles, g.chipMaxCycles))
            << r.name << " chip max-SM cycles drifted: got "
            << r.chipMaxCycles << ", golden " << g.chipMaxCycles;
        // The error column is derived; tolerate absolute drift of one
        // tolerance unit (relative checks degenerate near zero).
        EXPECT_LE(std::abs(r.error - g.error), kGoldenTolerance)
            << r.name << " methodology error drifted: got " << r.error
            << ", golden " << g.error;
    }
}

TEST(Chip, MinMaxSmCycleBookkeeping)
{
    auto k = createBenchmark("hotspot", 0.1);
    SmRunConfig cfg = smConfigFor(*k);
    ChipConfig chip_cfg;
    chip_cfg.numSms = 3;
    chip_cfg.chipDramBytesPerCycle = 24;
    chip_cfg.sm = cfg;
    ChipModel chip(chip_cfg, *k);
    const ChipStats& cs = chip.run();
    EXPECT_LE(cs.minSmCycles(), cs.maxSmCycles());
    EXPECT_GE(cs.cycles, cs.maxSmCycles());
}

} // namespace
} // namespace unimem
