/**
 * @file
 * Scheduler issue-order golden test.
 *
 * The two-level scheduler's exact issue sequence — which warp issues on
 * which cycle — is observable in the exported statistics, so any inner
 * loop optimization must reproduce it bit-for-bit. This suite records
 * the full (cycle, warp, warpGlobalId, opcode) issue trace of three
 * representative kernels under both designs and pins a compressed
 * fingerprint (issue count, FNV-1a hash over every record, plus the
 * leading/trailing records verbatim for debuggability) in a golden
 * file.
 *
 * Regenerate with:
 *   UNIMEM_UPDATE_GOLDEN=1 ./build/tests/test_sched_order
 * Any intentional change to the fingerprint means the scheduler policy
 * changed and every golden number in the repo must be re-validated.
 */

#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "kernels/registry.hh"
#include "sim/simulator.hh"
#include "sm/sm.hh"

namespace unimem {
namespace {

struct TracePoint
{
    const char* kernel;
    DesignKind design;
    double scale;

    /** Two-level active set size (default 8; small values churn the
        deschedule/activation housekeeping ring far harder). */
    u32 activeSet = 8;
};

/**
 * Three workload shapes that exercise distinct scheduler paths:
 * dgemm (barrier + shared-memory heavy, register limited), bfs
 * (divergent, cache limited, long-latency deschedules), needle
 * (shared limited with barrier waves). The tiny-active-set points
 * force constant deschedule/promote traffic, so the housekeeping
 * ring processes multi-entry batches (not just the single-warp fast
 * path) on nearly every pass.
 */
const TracePoint kPoints[] = {
    {"dgemm", DesignKind::Partitioned, 0.05},
    {"dgemm", DesignKind::Unified, 0.05},
    {"bfs", DesignKind::Partitioned, 0.05},
    {"bfs", DesignKind::Unified, 0.05},
    {"needle", DesignKind::Partitioned, 0.05},
    {"needle", DesignKind::Unified, 0.05},
    {"dgemm", DesignKind::Partitioned, 0.05, 2},
    {"bfs", DesignKind::Unified, 0.05, 2},
    {"needle", DesignKind::Partitioned, 0.05, 4},
};

std::string
goldenPath()
{
    return std::string(UNIMEM_SOURCE_DIR) +
           "/tests/golden/sched_order.golden";
}

/** Run one point with the issue-trace sink installed. */
std::vector<SmModel::IssueRecord>
traceOf(const TracePoint& pt)
{
    std::unique_ptr<KernelModel> kernel =
        createBenchmark(pt.kernel, pt.scale);
    RunSpec spec;
    spec.design = pt.design;
    spec.activeSetSize = pt.activeSet;
    AllocationDecision alloc =
        resolveAllocation(kernel->params(), spec);
    EXPECT_TRUE(alloc.launch.feasible);

    // Mirror of the simulate() config mapping; the trace sink needs
    // direct SmModel access, which the facade does not expose.
    SmRunConfig cfg;
    cfg.design = spec.design;
    cfg.partition = alloc.partition;
    cfg.launch = alloc.launch;
    cfg.activeSetSize = spec.activeSetSize;
    cfg.rfHierarchy = spec.rfHierarchy;
    cfg.conflictPenalties = spec.conflictPenalties;
    cfg.aggressiveUnified = spec.aggressiveUnified;
    cfg.cachePolicy = spec.cachePolicy;
    cfg.seed = spec.seed;

    SmModel sm(cfg, *kernel);
    std::vector<SmModel::IssueRecord> trace;
    sm.setIssueTrace(&trace);
    sm.run();
    EXPECT_EQ(trace.size(), sm.stats().warpInstrs);
    return trace;
}

u64
fnv1a(const std::vector<SmModel::IssueRecord>& trace)
{
    u64 h = 14695981039346656037ull;
    auto mix = [&h](u64 v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xffu;
            h *= 1099511628211ull;
        }
    };
    for (const SmModel::IssueRecord& r : trace) {
        mix(r.cycle);
        mix(r.warp);
        mix(r.warpGlobalId);
        mix(static_cast<u64>(r.op));
    }
    return h;
}

std::string
recordStr(const SmModel::IssueRecord& r)
{
    std::ostringstream os;
    os << r.cycle << ':' << r.warp << ':' << r.warpGlobalId << ':'
       << static_cast<int>(r.op);
    return os.str();
}

/** One golden line: kernel design issues hash head tail. */
std::string
fingerprint(const TracePoint& pt,
            const std::vector<SmModel::IssueRecord>& trace)
{
    constexpr size_t kEdge = 4;
    std::ostringstream os;
    os << pt.kernel << ' ' << designName(pt.design)
       << " as=" << pt.activeSet << " issues=" << trace.size()
       << " hash=" << std::hex << fnv1a(trace) << std::dec;
    os << " head=";
    for (size_t i = 0; i < std::min(kEdge, trace.size()); ++i)
        os << (i != 0 ? "," : "") << recordStr(trace[i]);
    os << " tail=";
    size_t start = trace.size() > kEdge ? trace.size() - kEdge : 0;
    for (size_t i = start; i < trace.size(); ++i)
        os << (i != start ? "," : "") << recordStr(trace[i]);
    return os.str();
}

TEST(SchedOrder, MatchesGolden)
{
    std::vector<std::string> lines;
    lines.reserve(std::size(kPoints));
    for (const TracePoint& pt : kPoints)
        lines.push_back(fingerprint(pt, traceOf(pt)));

    if (std::getenv("UNIMEM_UPDATE_GOLDEN") != nullptr) {
        std::ofstream out(goldenPath());
        ASSERT_TRUE(out.good()) << "cannot write " << goldenPath();
        out << "# Scheduler issue-order fingerprints; regenerate with\n"
            << "# UNIMEM_UPDATE_GOLDEN=1 ./build/tests/"
               "test_sched_order\n"
            << "# kernel design issues hash head tail\n";
        for (const std::string& l : lines)
            out << l << '\n';
        GTEST_SKIP() << "golden regenerated at " << goldenPath();
    }

    std::ifstream in(goldenPath());
    ASSERT_TRUE(in.good())
        << "missing " << goldenPath()
        << " - regenerate with UNIMEM_UPDATE_GOLDEN=1";
    std::vector<std::string> golden;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        golden.push_back(line);
    }
    ASSERT_EQ(golden.size(), lines.size());
    for (size_t i = 0; i < lines.size(); ++i)
        EXPECT_EQ(lines[i], golden[i]) << "trace point " << i;
}

TEST(SchedOrder, TraceIsDeterministic)
{
    const TracePoint pt{"dgemm", DesignKind::Unified, 0.02};
    std::vector<SmModel::IssueRecord> a = traceOf(pt);
    std::vector<SmModel::IssueRecord> b = traceOf(pt);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].cycle, b[i].cycle) << "at " << i;
        ASSERT_EQ(a[i].warp, b[i].warp) << "at " << i;
        ASSERT_EQ(a[i].warpGlobalId, b[i].warpGlobalId) << "at " << i;
        ASSERT_EQ(a[i].op, b[i].op) << "at " << i;
    }
}

} // namespace
} // namespace unimem
