/**
 * @file
 * Unit tests for the static-instruction footprint cache and its
 * integration into the SM issue path.
 *
 * The cache is a pure memoization layer: a hit must replay exactly what
 * the full computation would produce, and enabling/disabling it must not
 * change a single exported statistic. The suite covers the key packing,
 * the exact-match lookup (every key field individually), the slot-hash
 * distribution (a regression test for the low-bit-degeneracy bug that
 * collapsed strided footprints onto two slots), and whole-run A/B
 * parity on a real kernel.
 */

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/conflict_model.hh"
#include "kernels/registry.hh"
#include "mem/footprint_cache.hh"
#include "sim/simulator.hh"
#include "sm/sm.hh"

namespace unimem {
namespace {

using Cache = FootprintCache<ConflictOutcome>;

WarpInstr
sharedLoadAt(Addr base, i64 stride)
{
    WarpInstr in = instr::mem(Opcode::LdShared, 4, 2);
    for (u32 lane = 0; lane < kWarpWidth; ++lane)
        in.addr[lane] =
            base + static_cast<Addr>(static_cast<i64>(lane) * stride);
    return in;
}

ConflictOutcome
outcomeTagged(u32 tag)
{
    ConflictOutcome out;
    out.penalty = tag;
    out.regPenalty = tag / 2;
    out.maxPerBank = tag + 1;
    out.distinctWords = 32;
    out.distinctChunks = 8;
    return out;
}

TEST(MrfSignature, PacksCountAndBanks)
{
    // numSrc in the top two bits, each bank's low two bits below.
    const u8 banks3[] = {1, 2, 3};
    EXPECT_EQ(mrfSignature(banks3, 3),
              (3u << 6) | (1u << 0) | (2u << 2) | (3u << 4));

    const u8 banks1[] = {2};
    EXPECT_EQ(mrfSignature(banks1, 1), (1u << 6) | (2u << 0));

    EXPECT_EQ(mrfSignature(nullptr, 0), 0u);

    // Only the cluster-local bank id (mod 4) participates.
    const u8 banksHigh[] = {5, 6};
    const u8 banksLow[] = {1, 2};
    EXPECT_EQ(mrfSignature(banksHigh, 2), mrfSignature(banksLow, 2));

    // Operand order is part of the signature (bank vectors with the
    // same multiset still count identically, so sharing them would be
    // sound, but the packing keeps them distinct and that is fine).
    const u8 ab[] = {1, 2};
    const u8 ba[] = {2, 1};
    EXPECT_NE(mrfSignature(ab, 2), mrfSignature(ba, 2));
}

TEST(FootprintCacheUnit, ComputeTableRoundTrip)
{
    Cache cache;
    const u8 banks[] = {0, 3};
    u8 sig = mrfSignature(banks, 2);

    EXPECT_EQ(cache.findCompute(sig), nullptr);
    cache.insertCompute(sig, outcomeTagged(7));

    const ConflictOutcome* hit = cache.findCompute(sig);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->penalty, 7u);
    EXPECT_EQ(hit->maxPerBank, 8u);

    // A different signature is still a miss.
    const u8 other[] = {1, 3};
    EXPECT_EQ(cache.findCompute(mrfSignature(other, 2)), nullptr);

    EXPECT_EQ(cache.stats().computeHits, 1u);
    EXPECT_EQ(cache.stats().computeMisses, 2u);
}

TEST(FootprintCacheUnit, MemRoundTripAndLineReplay)
{
    Cache cache;
    WarpInstr in = sharedLoadAt(0x1000, 4);
    const u8 banks[] = {1};
    u8 sig = mrfSignature(banks, 1);

    EXPECT_EQ(cache.findMem(in, sig), nullptr);

    Cache::MemEntry& e = cache.insertMem(in, sig);
    e.outcome = outcomeTagged(3);
    EXPECT_EQ(e.numLines, Cache::kLinesUnknown);
    e.numLines = 2;
    e.lines[0].lineAddr = 0x1000;
    e.lines[1].lineAddr = 0x1080;

    Cache::MemEntry* hit = cache.findMem(in, sig);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->outcome.penalty, 3u);
    EXPECT_EQ(hit->numLines, 2u);
    EXPECT_EQ(hit->lines[1].lineAddr, 0x1080u);

    EXPECT_EQ(cache.stats().memHits, 1u);
    EXPECT_EQ(cache.stats().memMisses, 1u);
}

TEST(FootprintCacheUnit, EveryKeyFieldParticipates)
{
    Cache cache;
    WarpInstr in = sharedLoadAt(0x2000, 8);
    const u8 banks[] = {2};
    u8 sig = mrfSignature(banks, 1);
    cache.insertMem(in, sig).outcome = outcomeTagged(1);
    ASSERT_NE(cache.findMem(in, sig), nullptr);

    // Each single-field perturbation must miss even when the perturbed
    // key happens to land in the same slot (the verify step compares
    // the full key, not just the hash).
    WarpInstr opDiff = in;
    opDiff.op = Opcode::StShared;
    EXPECT_EQ(cache.findMem(opDiff, sig), nullptr);

    WarpInstr maskDiff = in;
    maskDiff.activeMask = 0x0000ffffu;
    EXPECT_EQ(cache.findMem(maskDiff, sig), nullptr);

    WarpInstr bytesDiff = in;
    bytesDiff.accessBytes = 8;
    EXPECT_EQ(cache.findMem(bytesDiff, sig), nullptr);

    WarpInstr addrDiff = in;
    addrDiff.addr[17] += 4;
    EXPECT_EQ(cache.findMem(addrDiff, sig), nullptr);

    const u8 otherBanks[] = {3};
    EXPECT_EQ(cache.findMem(in, mrfSignature(otherBanks, 1)), nullptr);

    // The original key still hits after all the probing above.
    EXPECT_NE(cache.findMem(in, sig), nullptr);
}

/**
 * Regression: FNV's XOR/multiply are closed mod 2^k, so masking the raw
 * hash made the slot index a function of the addresses' low bits only,
 * and dgemm-style strided footprints (bases 128 apart, lanes 8 apart)
 * collapsed onto a couple of slots. With the avalanche finalizer every
 * one of these keys must survive in a cache with thousands of slots.
 */
TEST(FootprintCacheUnit, StridedKeysDoNotCollide)
{
    Cache cache;
    const u8 banks[] = {1};
    u8 sig = mrfSignature(banks, 1);
    constexpr u32 kKeys = 128;

    for (u32 i = 0; i < kKeys; ++i) {
        WarpInstr in = sharedLoadAt(static_cast<Addr>(i) * 128, 8);
        cache.insertMem(in, sig).outcome = outcomeTagged(i);
    }
    u32 survivors = 0;
    for (u32 i = 0; i < kKeys; ++i) {
        WarpInstr in = sharedLoadAt(static_cast<Addr>(i) * 128, 8);
        Cache::MemEntry* hit = cache.findMem(in, sig);
        if (hit != nullptr) {
            EXPECT_EQ(hit->outcome.penalty, i);
            ++survivors;
        }
    }
    // 128 random slots out of 8192 expect ~1 birthday collision; the
    // degenerate hash kept only 2 of 133 keys alive.
    EXPECT_GE(survivors, kKeys - 8);
}

/** Mirror of the simulate() config mapping (direct SmModel access). */
SmRunConfig
configFor(const KernelModel& kernel, DesignKind design)
{
    RunSpec spec;
    spec.design = design;
    AllocationDecision alloc = resolveAllocation(kernel.params(), spec);
    EXPECT_TRUE(alloc.launch.feasible);
    SmRunConfig cfg;
    cfg.design = spec.design;
    cfg.partition = alloc.partition;
    cfg.launch = alloc.launch;
    cfg.activeSetSize = spec.activeSetSize;
    cfg.rfHierarchy = spec.rfHierarchy;
    cfg.conflictPenalties = spec.conflictPenalties;
    cfg.aggressiveUnified = spec.aggressiveUnified;
    cfg.cachePolicy = spec.cachePolicy;
    cfg.seed = spec.seed;
    return cfg;
}

/**
 * The memoization contract: runs with the cache on and off export
 * bit-identical statistics and identical issue traces. dgemm exercises
 * both tables hard (shared-memory tile loops for the mem cache, FMA
 * chains for the compute table); bfs adds divergent, input-dependent
 * addresses that mostly miss.
 */
TEST(FootprintCacheParity, OnOffBitIdentical)
{
    for (const char* name : {"dgemm", "bfs"}) {
        for (DesignKind design :
             {DesignKind::Partitioned, DesignKind::Unified}) {
            std::unique_ptr<KernelModel> k1 = createBenchmark(name, 0.02);
            SmModel on(configFor(*k1, design), *k1);
            on.footprintCache().setEnabled(true);
            std::vector<SmModel::IssueRecord> traceOn;
            on.setIssueTrace(&traceOn);
            on.run();

            std::unique_ptr<KernelModel> k2 = createBenchmark(name, 0.02);
            SmModel off(configFor(*k2, design), *k2);
            off.footprintCache().setEnabled(false);
            std::vector<SmModel::IssueRecord> traceOff;
            off.setIssueTrace(&traceOff);
            off.run();

            // The cache must actually be in play for the comparison to
            // mean anything.
            EXPECT_GT(on.footprintStats().computeHits +
                          on.footprintStats().memHits,
                      0u)
                << name;
            EXPECT_EQ(off.footprintStats().computeHits, 0u);
            EXPECT_EQ(off.footprintStats().memHits, 0u);

            EXPECT_EQ(on.stats().toStatSet().entries(),
                      off.stats().toStatSet().entries())
                << name << " " << designName(design);

            ASSERT_EQ(traceOn.size(), traceOff.size()) << name;
            for (size_t i = 0; i < traceOn.size(); ++i) {
                ASSERT_EQ(traceOn[i].cycle, traceOff[i].cycle)
                    << name << " at " << i;
                ASSERT_EQ(traceOn[i].warp, traceOff[i].warp)
                    << name << " at " << i;
                ASSERT_EQ(traceOn[i].op, traceOff[i].op)
                    << name << " at " << i;
            }
        }
    }
}

} // namespace
} // namespace unimem
