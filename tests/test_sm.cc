/**
 * @file
 * Behavioral tests of the SM cycle model using small hand-built kernels:
 * completion, latency hiding, barrier synchronization, cache/DRAM
 * interaction, bank-conflict penalties, and the two-level scheduler's
 * deschedule-on-long-latency behaviour.
 */

#include <functional>

#include <gtest/gtest.h>

#include "sm/sm.hh"

namespace unimem {
namespace {

/** Kernel whose warp programs come from a user function. */
class TestKernel : public KernelModel
{
  public:
    using Gen = std::function<std::vector<WarpInstr>(const WarpCtx&)>;

    TestKernel(KernelParams kp, Gen gen)
        : params_(std::move(kp)), gen_(std::move(gen))
    {
    }

    const KernelParams& params() const override { return params_; }

    std::unique_ptr<WarpProgram>
    warpProgram(const WarpCtx& ctx) const override
    {
        return std::make_unique<FixedProgram>(gen_(ctx));
    }

  private:
    KernelParams params_;
    Gen gen_;
};

KernelParams
smallParams(u32 ctas = 1, u32 ctaThreads = 32, u32 regs = 16,
            u32 shared = 0)
{
    KernelParams kp;
    kp.name = "test";
    kp.regsPerThread = regs;
    kp.sharedBytesPerCta = shared;
    kp.ctaThreads = ctaThreads;
    kp.gridCtas = ctas;
    return kp;
}

SmRunConfig
configFor(const KernelParams& kp, u32 threadLimit = kMaxThreadsPerSm)
{
    SmRunConfig cfg;
    cfg.partition = baselinePartition();
    cfg.launch = occupancyPartitioned(kp, cfg.partition.rfBytes,
                                      cfg.partition.sharedBytes,
                                      threadLimit);
    return cfg;
}

WarpInstr
globalLoad(RegId dst, Addr base, i64 stride = 4)
{
    WarpInstr in = instr::mem(Opcode::LdGlobal, dst, 0);
    for (u32 lane = 0; lane < kWarpWidth; ++lane)
        in.addr[lane] = base + static_cast<Addr>(lane) * stride;
    return in;
}

WarpInstr
sharedLoad(RegId dst, Addr base, i64 stride = 4)
{
    WarpInstr in = instr::mem(Opcode::LdShared, dst, 0);
    for (u32 lane = 0; lane < kWarpWidth; ++lane)
        in.addr[lane] = base + static_cast<Addr>(lane) * stride;
    return in;
}

TEST(Sm, RunsToCompletionAndCountsInstructions)
{
    KernelParams kp = smallParams(2);
    TestKernel k(kp, [](const WarpCtx&) {
        return std::vector<WarpInstr>(10, instr::alu(1, 0));
    });
    SmStats s = runKernel(configFor(kp), k);
    EXPECT_EQ(s.warpInstrs, 20u);
    EXPECT_EQ(s.threadInstrs, 640u);
    EXPECT_EQ(s.ctasExecuted, 2u);
    EXPECT_GT(s.cycles, 10u);
}

TEST(Sm, IndependentAluStreamsPipeline)
{
    // 8 warps of independent ALU chains: the issue port should stay
    // nearly saturated (1 instr/cycle across warps).
    KernelParams kp = smallParams(1, 256);
    TestKernel k(kp, [](const WarpCtx&) {
        std::vector<WarpInstr> v;
        for (int i = 0; i < 100; ++i)
            v.push_back(instr::alu(static_cast<RegId>(i % 8)));
        return v;
    });
    SmStats s = runKernel(configFor(kp), k);
    EXPECT_EQ(s.warpInstrs, 800u);
    EXPECT_LT(s.cycles, 1000u);
}

TEST(Sm, DependentChainExposesAluLatency)
{
    // One warp, each instruction depends on the previous: ~8 cycles per
    // instruction.
    KernelParams kp = smallParams(1, 32);
    TestKernel k(kp, [](const WarpCtx&) {
        std::vector<WarpInstr> v;
        for (int i = 0; i < 50; ++i)
            v.push_back(instr::alu(1, 1));
        return v;
    });
    SmStats s = runKernel(configFor(kp), k);
    EXPECT_GE(s.cycles, 50u * 8u);
    EXPECT_LE(s.cycles, 50u * 9u + 20u);
}

TEST(Sm, MoreThreadsHideDramLatency)
{
    // Memory-bound loop: each warp loads (miss -> 400+ cycles) then
    // consumes. More resident warps -> better overlap.
    auto gen = [](const WarpCtx& ctx) {
        std::vector<WarpInstr> v;
        for (u32 i = 0; i < 20; ++i) {
            Addr base = (static_cast<Addr>(ctx.ctaId) * 64 +
                         ctx.warpInCta * 20 + i) *
                        4096;
            v.push_back(globalLoad(1, base));
            v.push_back(instr::alu(2, 1));
            v.push_back(instr::alu(3, 2));
        }
        return v;
    };
    KernelParams kp = smallParams(8, 256);
    TestKernel k(kp, gen);
    SmStats few = runKernel(configFor(kp, 256), k);
    SmStats many = runKernel(configFor(kp, 1024), k);
    EXPECT_LT(many.cycles, few.cycles);
}

TEST(Sm, CacheReducesDramTraffic)
{
    // Every warp re-reads the same small region.
    auto gen = [](const WarpCtx&) {
        std::vector<WarpInstr> v;
        for (u32 i = 0; i < 50; ++i) {
            v.push_back(globalLoad(1, (i % 4) * 128));
            v.push_back(instr::alu(2, 1));
        }
        return v;
    };
    KernelParams kp = smallParams(4, 256);
    TestKernel k(kp, gen);

    SmRunConfig with_cache = configFor(kp);
    SmStats hit = runKernel(with_cache, k);

    SmRunConfig no_cache = configFor(kp);
    no_cache.partition.cacheBytes = 0;
    SmStats miss = runKernel(no_cache, k);

    EXPECT_LT(hit.dram.sectors(), miss.dram.sectors());
    EXPECT_LE(hit.cycles, miss.cycles);
    EXPECT_GT(hit.cache.readHits, 0u);
}

TEST(Sm, WriteThroughStoresAlwaysReachDram)
{
    auto gen = [](const WarpCtx&) {
        std::vector<WarpInstr> v;
        for (u32 i = 0; i < 10; ++i) {
            WarpInstr st = instr::mem(Opcode::StGlobal, 1, 0);
            for (u32 lane = 0; lane < kWarpWidth; ++lane)
                st.addr[lane] = lane * 4; // same line every time
            v.push_back(st);
        }
        return v;
    };
    KernelParams kp = smallParams(1, 32);
    TestKernel k(kp, gen);
    SmStats s = runKernel(configFor(kp), k);
    EXPECT_EQ(s.dram.writeSectors, 10u * 4u);
}

TEST(Sm, BarrierSynchronizesCta)
{
    // Warp 0 is fast, warp 1 slow before the barrier; both then issue a
    // marker. With a working barrier no warp retires before all arrive.
    KernelParams kp = smallParams(1, 64);
    TestKernel k(kp, [](const WarpCtx& ctx) {
        std::vector<WarpInstr> v;
        if (ctx.warpInCta == 1)
            for (int i = 0; i < 20; ++i)
                v.push_back(instr::alu(1, 1)); // slow dependent chain
        v.push_back(instr::bar());
        v.push_back(instr::alu(2, 0));
        return v;
    });
    SmStats s = runKernel(configFor(kp), k);
    EXPECT_EQ(s.barriers, 2u);
    EXPECT_GE(s.cycles, 20u * 8u); // fast warp had to wait
}

TEST(Sm, UnbalancedBarrierPanics)
{
    KernelParams kp = smallParams(1, 64);
    TestKernel k(kp, [](const WarpCtx& ctx) {
        std::vector<WarpInstr> v;
        if (ctx.warpInCta == 0)
            v.push_back(instr::bar()); // warp 1 never arrives
        v.push_back(instr::alu(1, 0));
        return v;
    });
    EXPECT_DEATH(
        { runKernel(configFor(kp), k); }, "deadlock|barrier");
}

TEST(Sm, ConflictPenaltySlowsSharedScatter)
{
    // All lanes hit the same partitioned bank (stride 128B).
    auto gen = [](const WarpCtx&) {
        std::vector<WarpInstr> v;
        for (u32 i = 0; i < 50; ++i) {
            v.push_back(sharedLoad(1, 0, 128));
            v.push_back(instr::alu(2, 1));
        }
        return v;
    };
    KernelParams kp = smallParams(1, 32, 16, 4096);
    TestKernel k(kp, gen);

    SmRunConfig cfg = configFor(kp);
    SmStats with = runKernel(cfg, k);
    cfg.conflictPenalties = false;
    SmStats without = runKernel(cfg, k);
    EXPECT_GT(with.conflictPenaltyCycles, 0u);
    EXPECT_GT(with.cycles, without.cycles);
}

TEST(Sm, TwoLevelSchedulerDeschedulesOnLongLatency)
{
    auto gen = [](const WarpCtx& ctx) {
        std::vector<WarpInstr> v;
        for (u32 i = 0; i < 10; ++i) {
            v.push_back(globalLoad(
                1, (static_cast<Addr>(ctx.warpInCta) * 10 + i) * 65536));
            v.push_back(instr::alu(2, 1)); // depends on the load
        }
        return v;
    };
    KernelParams kp = smallParams(4, 256);
    TestKernel k(kp, gen);
    SmStats s = runKernel(configFor(kp), k);
    EXPECT_GT(s.sched.deschedules, 0u);
    // Deschedules force LRF/ORF writebacks to the MRF.
    EXPECT_GT(s.rf.descheduleWritebacks, 0u);
}

TEST(Sm, TextureLatencyAndPrivateCache)
{
    auto gen = [](const WarpCtx&) {
        std::vector<WarpInstr> v;
        for (u32 i = 0; i < 20; ++i) {
            WarpInstr tex = instr::mem(Opcode::Tex, 1, 0);
            for (u32 lane = 0; lane < kWarpWidth; ++lane)
                tex.addr[lane] = (i % 2) * 128; // two lines, reused
            v.push_back(tex);
            v.push_back(instr::alu(2, 1));
        }
        return v;
    };
    KernelParams kp = smallParams(1, 32);
    TestKernel k(kp, gen);
    SmStats s = runKernel(configFor(kp), k);
    // Only two compulsory texture misses reach DRAM.
    EXPECT_EQ(s.texDram.readSectors, 2u * 4u);
    EXPECT_EQ(s.dram.sectors(), 0u);
    EXPECT_GE(s.cycles, 400u);
}

TEST(Sm, TagPortSerializesMultiLineAccesses)
{
    // Column access: 32 lines per instruction -> 31 extra tag cycles.
    auto gen = [](const WarpCtx&) {
        std::vector<WarpInstr> v;
        v.push_back(globalLoad(1, 0, 8192));
        return v;
    };
    KernelParams kp = smallParams(1, 32);
    TestKernel k(kp, gen);
    SmStats s = runKernel(configFor(kp), k);
    EXPECT_EQ(s.tagSerializationCycles, 31u);
}

TEST(Sm, SpillsInflateDynamicInstructions)
{
    KernelParams kp = smallParams(2, 256, 32);
    kp.spillCurve = SpillCurve({{18, 1.5}, {32, 1.0}});
    TestKernel k(kp, [](const WarpCtx&) {
        return std::vector<WarpInstr>(100, instr::alu(1, 0));
    });

    SmRunConfig cfg = configFor(kp);
    SmStats normal = runKernel(cfg, k);

    SmRunConfig spilled = cfg;
    spilled.launch = occupancyPartitioned(kp, 256_KB, 64_KB,
                                          kMaxThreadsPerSm, 18);
    SmStats with_spills = runKernel(spilled, k);

    EXPECT_NEAR(static_cast<double>(with_spills.warpInstrs) /
                    static_cast<double>(normal.warpInstrs),
                1.5, 0.02);
    EXPECT_GT(with_spills.dram.sectors(), 0u); // spill traffic misses
}

TEST(Sm, CyclesCoverAllOutstandingWork)
{
    // A single store at the end: runtime must include its DRAM drain.
    KernelParams kp = smallParams(1, 32);
    TestKernel k(kp, [](const WarpCtx&) {
        std::vector<WarpInstr> v;
        WarpInstr st = instr::mem(Opcode::StGlobal, 1, 0);
        for (u32 lane = 0; lane < kWarpWidth; ++lane)
            st.addr[lane] = lane * 4;
        v.push_back(st);
        return v;
    });
    SmStats s = runKernel(configFor(kp), k);
    EXPECT_GE(s.cycles, 128u / 8u); // at least the bandwidth time
}

} // namespace
} // namespace unimem
