/**
 * @file
 * Tests of the static trace analyzer (analysis/lint.hh).
 *
 * Layout: one positive case (a clean hand-built kernel), one negative
 * case per diagnostic — each seeded violation built so it trips exactly
 * its intended check once — a clean-sweep test over all 26 shipped
 * kernel models, and determinism of the parallel lint driver across
 * worker counts.
 */

#include <cstdlib>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "analysis/lint.hh"
#include "analysis/liveness.hh"
#include "analysis/pass.hh"
#include "kernels/registry.hh"
#include "kernels/step_program.hh"
#include "kernels/workloads.hh"
#include "sim/sweep.hh"

namespace unimem {
namespace {

/** Hand-built kernel: fixed instruction vector + explicit params. */
class TestKernel : public KernelModel
{
  public:
    TestKernel(KernelParams kp, std::vector<WarpInstr> instrs)
        : kp_(std::move(kp)), instrs_(std::move(instrs))
    {
    }

    const KernelParams& params() const override { return kp_; }

    std::unique_ptr<WarpProgram>
    warpProgram(const WarpCtx&) const override
    {
        return std::make_unique<FixedProgram>(instrs_);
    }

  private:
    KernelParams kp_;
    std::vector<WarpInstr> instrs_;
};

KernelParams
baseParams()
{
    KernelParams kp;
    kp.name = "lint-test";
    kp.regsPerThread = 8;
    kp.sharedBytesPerCta = 256;
    kp.ctaThreads = kWarpWidth;
    kp.gridCtas = 1;
    kp.liveInRegs = 2; // r0, r1 live at entry
    return kp;
}

WarpInstr
memAt(Opcode op, Addr base, RegId dstOrData = 2, RegId addrReg = 0)
{
    WarpInstr in = instr::mem(op, dstOrData, addrReg);
    for (u32 lane = 0; lane < kWarpWidth; ++lane)
        in.addr[lane] = base + lane * 4ull;
    return in;
}

/** A well-formed two-instruction program: alu feeding a global store. */
std::vector<WarpInstr>
cleanProgram()
{
    std::vector<WarpInstr> prog;
    prog.push_back(instr::alu(2, 0, 1));
    prog.push_back(memAt(Opcode::StGlobal, 4096, /*data=*/2,
                         /*addr=*/2));
    return prog;
}

LintReport
lintOne(const KernelParams& kp, std::vector<WarpInstr> instrs,
        LintOptions opt = {})
{
    TestKernel k(kp, std::move(instrs));
    return lintKernel(k, opt);
}

/** Assert @p r has exactly one error site and it is @p id. */
void
expectOnly(const LintReport& r, DiagId id)
{
    EXPECT_EQ(r.errors(), 1u) << r.str();
    EXPECT_EQ(r.diags.countOf(id), 1u) << r.str();
}

TEST(Lint, CleanProgramHasNoFindings)
{
    LintReport r = lintOne(baseParams(), cleanProgram());
    EXPECT_TRUE(r.clean()) << r.str();
    EXPECT_EQ(r.errors() + r.warnings(), 0u) << r.str();
    EXPECT_GT(r.metrics.instrs, 0u);
}

// ---- (a) dataflow -------------------------------------------------------

TEST(Lint, ReadBeforeWriteOutsideLiveInSet)
{
    auto prog = cleanProgram();
    prog.insert(prog.begin(), instr::alu(3, /*src=*/5)); // r5 never written
    LintReport r = lintOne(baseParams(), prog);
    expectOnly(r, DiagId::ReadBeforeWrite);
}

TEST(Lint, LiveInRegistersAreReadableAtEntry)
{
    // Reading r0/r1 (declared live-in) before any write is legal.
    LintReport r = lintOne(baseParams(), cleanProgram());
    EXPECT_EQ(r.diags.countOf(DiagId::ReadBeforeWrite), 0u) << r.str();
}

TEST(Lint, LiveInAllSuppressesReadBeforeWrite)
{
    KernelParams kp = baseParams();
    kp.liveInRegs = KernelParams::kLiveInAll;
    auto prog = cleanProgram();
    prog.insert(prog.begin(), instr::alu(3, /*src=*/5));
    LintReport r = lintOne(kp, prog);
    EXPECT_TRUE(r.clean()) << r.str();
}

// ---- (b) declared register footprint ------------------------------------

TEST(Lint, DestinationBeyondDeclaredFootprint)
{
    auto prog = cleanProgram();
    prog.push_back(instr::alu(/*dst=*/9, /*src=*/2)); // regsPerThread = 8
    LintReport r = lintOne(baseParams(), prog);
    expectOnly(r, DiagId::RegOutOfRange);
}

TEST(Lint, SourceBeyondDeclaredFootprint)
{
    auto prog = cleanProgram();
    prog.push_back(instr::alu(3, /*src=*/8));
    LintReport r = lintOne(baseParams(), prog);
    expectOnly(r, DiagId::RegOutOfRange);
}

// ---- (c) address-space invariants ---------------------------------------

TEST(Lint, SharedAccessOutsideCtaSlab)
{
    auto prog = cleanProgram();
    prog.push_back(memAt(Opcode::LdShared, /*base=*/200)); // 200..328 > 256
    LintReport r = lintOne(baseParams(), prog);
    expectOnly(r, DiagId::SharedOutOfBounds);
}

TEST(Lint, SharedAccessWithoutDeclaredScratchpad)
{
    KernelParams kp = baseParams();
    kp.sharedBytesPerCta = 0;
    auto prog = cleanProgram();
    prog.push_back(memAt(Opcode::LdShared, 0));
    LintReport r = lintOne(kp, prog);
    expectOnly(r, DiagId::SharedUnallocated);
}

TEST(Lint, LocalAccessBelowAperture)
{
    auto prog = cleanProgram();
    prog.push_back(memAt(Opcode::LdLocal, /*base=*/4096)); // < kLocalBase
    LintReport r = lintOne(baseParams(), prog);
    expectOnly(r, DiagId::LocalOutsideAperture);
}

TEST(Lint, GlobalAccessInsideLocalAperture)
{
    auto prog = cleanProgram();
    prog.push_back(memAt(Opcode::LdGlobal, kLocalBase + 64));
    LintReport r = lintOne(baseParams(), prog);
    expectOnly(r, DiagId::GlobalInLocalAperture);
}

TEST(Lint, ImpossiblePerLaneSpread)
{
    auto prog = cleanProgram();
    WarpInstr in = memAt(Opcode::LdGlobal, 0);
    in.addr[31] = Addr(1) << 33; // 8 GB from lane 0 in one warp access
    prog.push_back(in);
    LintReport r = lintOne(baseParams(), prog);
    expectOnly(r, DiagId::ImpossibleLaneSpread);
}

TEST(Lint, MisalignedAddressIsAWarning)
{
    auto prog = cleanProgram();
    WarpInstr in = memAt(Opcode::LdGlobal, 4096);
    in.addr[3] += 2; // 4-byte access at a 2-byte offset
    prog.push_back(in);
    LintReport r = lintOne(baseParams(), prog);
    EXPECT_EQ(r.errors(), 0u) << r.str();
    EXPECT_EQ(r.warnings(), 1u) << r.str();
    EXPECT_EQ(r.diags.countOf(DiagId::MisalignedAddress), 1u) << r.str();
}

TEST(Lint, WerrorPromotesWarningsToErrors)
{
    auto prog = cleanProgram();
    WarpInstr in = memAt(Opcode::LdGlobal, 4096);
    in.addr[3] += 2;
    prog.push_back(in);
    LintOptions opt;
    opt.werror = true;
    LintReport r = lintOne(baseParams(), prog, opt);
    EXPECT_EQ(r.warnings(), 0u) << r.str();
    expectOnly(r, DiagId::MisalignedAddress);
}

// ---- (d) instruction well-formedness ------------------------------------

TEST(Lint, ArityOutsideOpcodeShape)
{
    auto prog = cleanProgram();
    WarpInstr in = instr::sfu(3, 2);
    in.src[1] = 0; // live-in, so only the arity itself is wrong
    in.numSrc = 2; // sfu expects exactly one source
    prog.push_back(in);
    LintReport r = lintOne(baseParams(), prog);
    expectOnly(r, DiagId::BadArity);
}

TEST(Lint, LoadWithoutDestination)
{
    auto prog = cleanProgram();
    WarpInstr in = memAt(Opcode::LdGlobal, 4096);
    in.dst = kInvalidReg;
    prog.push_back(in);
    LintReport r = lintOne(baseParams(), prog);
    expectOnly(r, DiagId::MissingDst);
}

TEST(Lint, StoreWithDestination)
{
    auto prog = cleanProgram();
    WarpInstr in = memAt(Opcode::StGlobal, 4096);
    in.dst = 3;
    prog.push_back(in);
    LintReport r = lintOne(baseParams(), prog);
    expectOnly(r, DiagId::UnexpectedDst);
}

TEST(Lint, InvalidSourceInsideDeclaredArity)
{
    auto prog = cleanProgram();
    WarpInstr in = instr::alu(3, 0, 1);
    in.src[1] = kInvalidReg; // numSrc still 2
    prog.push_back(in);
    LintReport r = lintOne(baseParams(), prog);
    expectOnly(r, DiagId::InvalidSrcOperand);
}

TEST(Lint, MemoryOpWithEmptyActiveMask)
{
    auto prog = cleanProgram();
    WarpInstr in = memAt(Opcode::StGlobal, 4096);
    in.activeMask = 0;
    prog.push_back(in);
    LintReport r = lintOne(baseParams(), prog);
    expectOnly(r, DiagId::EmptyActiveMask);
}

TEST(Lint, MemoryOpWithBadAccessBytes)
{
    auto prog = cleanProgram();
    WarpInstr in = memAt(Opcode::LdGlobal, 4096);
    in.accessBytes = 3;
    prog.push_back(in);
    LintReport r = lintOne(baseParams(), prog);
    expectOnly(r, DiagId::BadAccessBytes);
}

// ---- (e) static metrics -------------------------------------------------

TEST(Lint, RegisterPressureOfDisjointChains)
{
    // r2..r5 defined, then all four read at the end: pressure >= 4
    // (plus nothing else live in between).
    KernelParams kp = baseParams();
    kp.liveInRegs = 0;
    std::vector<WarpInstr> prog;
    for (RegId r = 2; r <= 5; ++r)
        prog.push_back(instr::alu(r));
    prog.push_back(instr::alu(6, 2, 3, 4));
    prog.push_back(instr::alu(7, 5, 6));
    LintReport r = lintOne(kp, prog);
    EXPECT_TRUE(r.clean()) << r.str();
    EXPECT_GE(r.metrics.regPressure, 4u);
    EXPECT_LE(r.metrics.regPressure, 6u);
}

TEST(Lint, OrfCaptureSeesRecentValues)
{
    // Chain of alu ops each reading the value defined immediately
    // before: every read after the first hits the LRF/ORF window.
    KernelParams kp = baseParams();
    kp.liveInRegs = 1;
    std::vector<WarpInstr> prog;
    prog.push_back(instr::alu(1, 0));
    for (int i = 0; i < 20; ++i) {
        prog.push_back(instr::alu(2, 1));
        prog.push_back(instr::alu(1, 2));
    }
    LintReport r = lintOne(kp, prog);
    EXPECT_TRUE(r.clean()) << r.str();
    EXPECT_GT(r.metrics.orfReachableFraction(), 0.9);
}

TEST(Lint, LowOrfCaptureRaisesInfoAdvisory)
{
    // Round-robin over 8 registers with reads of the value defined 7
    // defs earlier: outside a 5-deep recency window.
    KernelParams kp = baseParams();
    kp.liveInRegs = 8; // all regs live-in: no read-before-write noise
    std::vector<WarpInstr> prog;
    for (int i = 0; i < 64; ++i)
        prog.push_back(
            instr::alu(static_cast<RegId>(i % 8),
                       static_cast<RegId>((i + 1) % 8)));
    LintReport r = lintOne(kp, prog);
    EXPECT_TRUE(r.clean()) << r.str();
    EXPECT_EQ(r.diags.countOf(DiagId::LowOrfCapture), 1u) << r.str();
    EXPECT_EQ(r.infos(), 1u);
    EXPECT_LT(r.metrics.orfReachableFraction(), 0.5);
}

TEST(Lint, SharedConflictDegreeOfStridedAccess)
{
    // Stride of 2 words over 32 lanes: 64 words over 32 banks, every
    // touched bank hit twice -> degree 2; unit stride -> degree 1.
    KernelParams kp = baseParams();
    kp.sharedBytesPerCta = 1024;

    WarpInstr unit = memAt(Opcode::LdShared, 0);
    WarpInstr strided = memAt(Opcode::LdShared, 0);
    for (u32 lane = 0; lane < kWarpWidth; ++lane)
        strided.addr[lane] = lane * 8ull;

    LintReport r = lintOne(kp, {cleanProgram()[0], unit, strided});
    EXPECT_TRUE(r.clean()) << r.str();
    EXPECT_EQ(r.metrics.sharedDegreeMax, 2u);
    // Per sampled warp: one conflict-free op, one degree-2 op.
    EXPECT_EQ(r.metrics.sharedOps, 2 * r.metrics.sharedConflictFree)
        << r.str();
}

// ---- dedup & engine behaviour -------------------------------------------

TEST(Lint, RepeatedFindingsDeduplicateWithCounts)
{
    auto prog = cleanProgram();
    for (int i = 0; i < 5; ++i)
        prog.push_back(instr::alu(3, /*src=*/5)); // same RBW site x5
    LintReport r = lintOne(baseParams(), prog);
    expectOnly(r, DiagId::ReadBeforeWrite);
    const Diagnostic* rbw = nullptr;
    for (const Diagnostic& d : r.diags.diagnostics())
        if (d.id == DiagId::ReadBeforeWrite)
            rbw = &d;
    ASSERT_NE(rbw, nullptr);
    // One site, one occurrence per sampled warp per repeat (2 seeds).
    EXPECT_EQ(rbw->occurrences, 10u) << r.str();
}

TEST(Lint, PerIdSiteCapSuppresses)
{
    DiagnosticOptions opt;
    opt.maxSitesPerId = 2;
    DiagnosticEngine eng(opt);
    DiagLoc loc;
    loc.kernel = "k";
    for (int i = 0; i < 5; ++i)
        eng.report(DiagId::BadArity, loc, "site " + std::to_string(i));
    EXPECT_EQ(eng.countOf(DiagId::BadArity), 2u);
    EXPECT_EQ(eng.suppressedCount(), 3u);
}

TEST(Lint, EngineMergePreservesCountsAndDedups)
{
    DiagnosticEngine a, b;
    DiagLoc loc;
    loc.kernel = "k";
    a.report(DiagId::BadArity, loc, "shared site");
    b.report(DiagId::BadArity, loc, "shared site");
    b.report(DiagId::MissingDst, loc, "only in b");
    a.merge(b);
    EXPECT_EQ(a.countOf(DiagId::BadArity), 1u);
    EXPECT_EQ(a.countOf(DiagId::MissingDst), 1u);
    ASSERT_GE(a.diagnostics().size(), 1u);
    EXPECT_EQ(a.diagnostics()[0].occurrences, 2u);
}

// ---- warp sampling ------------------------------------------------------

TEST(Lint, WarpSamplesCoverCtaAndWarpExtremes)
{
    KernelParams kp = baseParams();
    kp.gridCtas = 9;
    kp.ctaThreads = 128; // 4 warps
    LintOptions opt;
    std::vector<WarpCtx> samples = lintWarpSamples(kp, opt);
    // 2 seeds x {0, 4, 8} x {0, 3}
    EXPECT_EQ(samples.size(), 12u);
    bool sawLast = false;
    for (const WarpCtx& ctx : samples)
        if (ctx.ctaId == 8 && ctx.warpInCta == 3)
            sawLast = true;
    EXPECT_TRUE(sawLast);
}

TEST(Lint, SingleWarpKernelSamplesDeduplicate)
{
    KernelParams kp = baseParams(); // 1 CTA, 1 warp
    LintOptions opt;
    opt.seeds = {7};
    EXPECT_EQ(lintWarpSamples(kp, opt).size(), 1u);
}

// ---- shipped kernels ----------------------------------------------------

TEST(LintSweep, AllShippedKernelsLintErrorFree)
{
    LintOptions opt;
    opt.werror = true; // warnings fail too
    for (const BenchmarkInfo& info : allBenchmarks()) {
        auto k = createBenchmark(info.name, 0.5);
        LintReport r = lintKernel(*k, opt);
        EXPECT_TRUE(r.clean()) << r.str();
    }
}

TEST(LintSweep, NeedleBlockingVariantsLintErrorFree)
{
    // The BF=16/64 variants are not registry entries but are shipped
    // (fig11); the BF edge tiles are where address underflow once hid.
    for (u32 bf : {16u, 64u}) {
        auto k = makeNeedle(bf, 0.5);
        LintReport r = lintKernel(*k);
        EXPECT_TRUE(r.clean()) << r.str();
    }
}

TEST(LintSweep, ShippedMetricsLandInPlausibleBands)
{
    // Spot-check the metrics the docs quote: dgemm's register blocking
    // must show the deepest pressure, and every kernel's ORF-reachable
    // fraction should sit in the Section 2.1 band.
    u32 dgemmPressure = 0;
    u32 maxOther = 0;
    for (const BenchmarkInfo& info : allBenchmarks()) {
        auto k = createBenchmark(info.name, 0.5);
        LintReport r = lintKernel(*k);
        EXPECT_GT(r.metrics.orfReachableFraction(), 0.5) << info.name;
        EXPECT_LE(r.metrics.regPressure,
                  k->params().regsPerThread)
            << info.name << ": pressure above declared footprint";
        if (std::string(info.name) == "dgemm")
            dgemmPressure = r.metrics.regPressure;
        else
            maxOther = std::max(maxOther, r.metrics.regPressure);
    }
    EXPECT_GT(dgemmPressure, maxOther);
}

// ---- determinism across worker counts -----------------------------------

std::string
lintAllViaSweep(u32 workers)
{
    std::vector<std::string> names;
    for (const BenchmarkInfo& info : allBenchmarks())
        names.push_back(info.name);
    std::vector<LintReport> reports(names.size());
    std::vector<SweepJob> jobs;
    for (size_t i = 0; i < names.size(); ++i) {
        SweepJob j;
        j.label = "lint " + names[i];
        j.run = [&reports, &names, i]() {
            auto k = createBenchmark(names[i], 0.5);
            reports[i] = lintKernel(*k);
            return SimResult{};
        };
        jobs.push_back(std::move(j));
    }
    runSweep(jobs, workers);
    std::string out;
    for (const LintReport& r : reports)
        out += r.str();
    return out;
}

TEST(LintSweep, OutputIdenticalAcrossWorkerCounts)
{
    std::string serial = lintAllViaSweep(1);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, lintAllViaSweep(2));
    EXPECT_EQ(serial, lintAllViaSweep(8));
}

// ---- liveness unit ------------------------------------------------------

TEST(Liveness, IntervalOverlapCountsSimultaneousValues)
{
    TraceLiveness lv(/*numRegs=*/8, /*liveInRegs=*/0);
    // def r0; def r1; use both -> two simultaneously live values.
    lv.step(instr::alu(0));
    lv.step(instr::alu(1));
    lv.step(instr::alu(2, 0, 1));
    LivenessSummary s = lv.finish();
    EXPECT_EQ(s.maxLive, 2u);
    EXPECT_EQ(s.regReads, 2u);
}

TEST(Liveness, DeadDefsContributeNoPressure)
{
    TraceLiveness lv(8, 0);
    for (RegId r = 0; r < 6; ++r)
        lv.step(instr::alu(r)); // never read
    EXPECT_EQ(lv.finish().maxLive, 0u);
}

TEST(Liveness, RedefinitionEndsTheOldInterval)
{
    TraceLiveness lv(8, 0);
    lv.step(instr::alu(0));
    lv.step(instr::alu(1, 0));
    lv.step(instr::alu(0));     // kills the first r0 value
    lv.step(instr::alu(2, 0));
    EXPECT_EQ(lv.finish().maxLive, 1u);
}

// ---- hazard sink --------------------------------------------------------

TEST(Liveness, DeadLoadOverwriteReachesTheSink)
{
    TraceLiveness lv(8, 0);
    std::vector<HazardEvent> events;
    lv.setHazardSink([&](const HazardEvent& e) { events.push_back(e); });

    WarpInstr ld = instr::mem(Opcode::LdGlobal, /*dst=*/3, /*addr=*/0);
    lv.step(instr::alu(0));
    lv.step(ld);                // r3 <- load at pos 1
    lv.step(instr::alu(3, 0));  // overwritten, never read
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].kind, HazardEvent::Kind::DeadLoadOverwrite);
    EXPECT_EQ(events[0].reg, 3u);
    EXPECT_EQ(events[0].defPos, 1u);
    EXPECT_EQ(events[0].redefPos, 2u);
}

TEST(Liveness, WindowWawReachesTheSink)
{
    TraceLiveness lv(8, 0);
    std::vector<HazardEvent> events;
    lv.setHazardSink([&](const HazardEvent& e) { events.push_back(e); });

    lv.step(instr::alu(3));    // def r3
    lv.step(instr::alu(3));    // redef inside the window, zero reads
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].kind, HazardEvent::Kind::WindowWaw);
    EXPECT_EQ(events[0].reg, 3u);
}

TEST(Liveness, ReadBetweenDefsIsNoHazard)
{
    TraceLiveness lv(8, 0);
    std::vector<HazardEvent> events;
    lv.setHazardSink([&](const HazardEvent& e) { events.push_back(e); });

    lv.step(instr::alu(3));
    lv.step(instr::alu(4, 3)); // read r3
    lv.step(instr::alu(3));    // legal redefinition
    EXPECT_TRUE(events.empty());
}

TEST(Liveness, UnusedLiveInOverwriteIsNoHazard)
{
    TraceLiveness lv(8, /*liveIn=*/2);
    std::vector<HazardEvent> events;
    lv.setHazardSink([&](const HazardEvent& e) { events.push_back(e); });

    lv.step(instr::alu(0)); // kernels routinely ignore some inputs
    lv.step(instr::alu(1));
    EXPECT_TRUE(events.empty());
}

// ---- pass framework -----------------------------------------------------

TEST(PassFramework, RegistryIsWellFormed)
{
    verifyPassRegistry(); // panics on any violation
    EXPECT_EQ(allPasses().size(), 5u);
    EXPECT_NE(findPass("warp-invariants"), nullptr);
    EXPECT_NE(findPass("bank-conflict-xcheck"), nullptr);
    EXPECT_EQ(findPass("no-such-pass"), nullptr);
    EXPECT_EQ(defaultPassNames(),
              (std::vector<std::string>{"warp-invariants",
                                        "barrier-sync",
                                        "register-hazard"}));
}

TEST(PassFramework, ReportCarriesPerPassResults)
{
    LintReport r = lintOne(baseParams(), cleanProgram());
    ASSERT_EQ(r.passes.size(), 3u);
    EXPECT_EQ(r.passes[0].pass, "warp-invariants");
    EXPECT_EQ(r.passes[1].pass, "barrier-sync");
    EXPECT_EQ(r.passes[2].pass, "register-hazard");
    EXPECT_FALSE(r.passes[0].stats.empty());
    // The report's headline metrics mirror the warp-invariants pass.
    EXPECT_EQ(r.metrics.instrs, r.passes[0].metrics.instrs);
}

TEST(PassFramework, ExplicitPassListRunsExactlyThose)
{
    TestKernel k(baseParams(), cleanProgram());
    LintReport r = lintKernel(k, {}, {"barrier-sync"});
    ASSERT_EQ(r.passes.size(), 1u);
    EXPECT_EQ(r.passes[0].pass, "barrier-sync");
    // warp-invariants did not run, so its metrics stay empty.
    EXPECT_EQ(r.metrics.instrs, 0u);
}

// ---- barrier-sync pass --------------------------------------------------

/** Kernel whose warp 0 executes one extra barrier (a guaranteed hang). */
class DivergentBarrierKernel : public KernelModel
{
  public:
    explicit DivergentBarrierKernel(bool divergent)
        : divergent_(divergent)
    {
        kp_.name = "barrier-test";
        kp_.regsPerThread = 8;
        kp_.ctaThreads = 2 * kWarpWidth; // two warps per CTA
        kp_.gridCtas = 2;
        kp_.liveInRegs = 2;
    }

    const KernelParams& params() const override { return kp_; }

    std::unique_ptr<WarpProgram>
    warpProgram(const WarpCtx& ctx) const override
    {
        std::vector<WarpInstr> prog;
        prog.push_back(instr::alu(2, 0, 1));
        prog.push_back(instr::bar());
        if (divergent_ && ctx.warpInCta == 0)
            prog.push_back(instr::bar());
        return std::make_unique<FixedProgram>(prog);
    }

  private:
    KernelParams kp_;
    bool divergent_;
};

TEST(PassBarrier, UnequalBarCountsAreDivergence)
{
    DivergentBarrierKernel k(/*divergent=*/true);
    LintReport r = lintKernel(k, {}, {"barrier-sync"});
    EXPECT_FALSE(r.clean()) << r.str();
    EXPECT_GE(r.diags.countOf(DiagId::BarrierDivergence), 1u)
        << r.str();
}

TEST(PassBarrier, EqualBarCountsProveClean)
{
    DivergentBarrierKernel k(/*divergent=*/false);
    LintReport r = lintKernel(k, {}, {"barrier-sync"});
    EXPECT_TRUE(r.clean()) << r.str();
    EXPECT_EQ(r.diags.countOf(DiagId::BarrierDivergence), 0u);
}

TEST(PassBarrier, BudgetExhaustionWarnsInsteadOfGuessing)
{
    DivergentBarrierKernel k(/*divergent=*/true);
    LintOptions opt;
    opt.barrierScanBudget = 2; // truncates inside the first CTA
    LintReport r = lintKernel(k, opt, {"barrier-sync"});
    EXPECT_GE(r.diags.countOf(DiagId::TraceBoundExceeded), 1u)
        << r.str();
    // Partial counts prove nothing, so no divergence may be claimed.
    EXPECT_EQ(r.diags.countOf(DiagId::BarrierDivergence), 0u)
        << r.str();
}

// ---- register-hazard pass -----------------------------------------------

TEST(PassRegHazard, DeadLoadOverwriteFlagged)
{
    std::vector<WarpInstr> prog;
    prog.push_back(memAt(Opcode::LdGlobal, 4096, /*dst=*/2, /*addr=*/0));
    prog.push_back(instr::alu(2, 0, 1)); // overwrite, never read
    prog.push_back(memAt(Opcode::StGlobal, 8192, /*data=*/2,
                         /*addr=*/2));
    TestKernel k(baseParams(), prog);
    LintReport r = lintKernel(k, {}, {"register-hazard"});
    EXPECT_TRUE(r.clean()) << r.str(); // advisory, not an error
    EXPECT_EQ(r.diags.countOf(DiagId::DeadLoadOverwrite), 1u)
        << r.str();
}

TEST(PassRegHazard, WindowWawFlagged)
{
    std::vector<WarpInstr> prog;
    prog.push_back(instr::alu(3, 0));
    prog.push_back(instr::alu(3, 1)); // zero-read redef in the window
    prog.push_back(instr::alu(4, 3));
    TestKernel k(baseParams(), prog);
    LintReport r = lintKernel(k, {}, {"register-hazard"});
    EXPECT_EQ(r.diags.countOf(DiagId::OrfWindowWaw), 1u) << r.str();
}

TEST(PassRegHazard, OversizedSharedIsInfeasiblePartitioned)
{
    KernelParams kp = baseParams();
    kp.sharedBytesPerCta = 128 * 1024; // above the 64 KB scratchpad
    TestKernel k(kp, cleanProgram());
    LintReport r = lintKernel(k, {}, {"register-hazard"});
    // Partitioned cannot launch; the 384 KB unified pool still can.
    EXPECT_EQ(r.diags.countOf(DiagId::AllocInfeasibleLaunch), 1u)
        << r.str();
}

TEST(PassRegHazard, ShippedKernelAllocationsAreLegal)
{
    auto k = createBenchmark("vectoradd", 0.05);
    LintReport r = lintKernel(*k, {}, {"register-hazard"});
    EXPECT_EQ(r.diags.countOf(DiagId::AllocInfeasibleLaunch), 0u);
    EXPECT_EQ(r.diags.countOf(DiagId::AllocOverSubscribed), 0u);
    EXPECT_EQ(r.diags.countOf(DiagId::AllocPartitionOverlap), 0u);
}

// ---- bank-conflict differential cross-check -----------------------------

double
passStat(const PassResult& pr, const std::string& name)
{
    for (const auto& [k, v] : pr.stats)
        if (k == name)
            return v;
    ADD_FAILURE() << "missing pass stat " << name;
    return -1.0;
}

TEST(PassXcheck, SimulatorMatchesStaticPredictorBitExactly)
{
    // dgemm mixes conflict-free and degree-2 shared accesses (8-byte
    // loads); the cross-check must agree on every instruction in both
    // designs.
    auto k = createBenchmark("dgemm", 0.25);
    LintReport r = lintKernel(*k, {}, {"bank-conflict-xcheck"});
    ASSERT_EQ(r.passes.size(), 1u);
    EXPECT_TRUE(r.clean()) << r.str();
    EXPECT_EQ(r.diags.countOf(DiagId::BankConflictMismatch), 0u)
        << r.str();
    EXPECT_GT(passStat(r.passes[0], "ops_checked"), 0.0);
    EXPECT_EQ(passStat(r.passes[0], "mismatches"), 0.0);
}

// ---- chip-ownership pass ------------------------------------------------

TEST(PassOwnership, BoundPhaseIsOwnershipCleanOnShippedKernel)
{
    auto k = createBenchmark("vectoradd", 0.05);
    LintReport r = lintKernel(*k, {}, {"chip-ownership"});
    ASSERT_EQ(r.passes.size(), 1u);
    EXPECT_TRUE(r.clean()) << r.str();
    EXPECT_EQ(r.diags.countOf(DiagId::OwnershipViolation), 0u)
        << r.str();
    EXPECT_GT(passStat(r.passes[0], "ownership_checks"), 0.0);
    EXPECT_EQ(passStat(r.passes[0], "violations"), 0.0);
}

// ---- diagnostic engine: filtering, caps, registry -----------------------

TEST(Lint, EngineSeverityFilterDropsBelowMin)
{
    DiagnosticOptions opt;
    opt.minSeverity = Severity::Warning;
    DiagnosticEngine eng(opt);
    DiagLoc loc;
    loc.kernel = "k";
    eng.report(DiagId::LowOrfCapture, loc, "advisory");   // info
    eng.report(DiagId::MisalignedAddress, loc, "warning");
    EXPECT_EQ(eng.diagnostics().size(), 1u);
    EXPECT_EQ(eng.filteredCount(), 1u);
    EXPECT_EQ(eng.countOf(DiagId::MisalignedAddress), 1u);
    EXPECT_EQ(eng.suppressedCount(), 0u); // filtered, not suppressed
}

TEST(Lint, WerrorPromotionHappensBeforeTheFilter)
{
    DiagnosticOptions opt;
    opt.minSeverity = Severity::Error;
    opt.werror = true;
    DiagnosticEngine eng(opt);
    DiagLoc loc;
    loc.kernel = "k";
    eng.report(DiagId::MisalignedAddress, loc, "promoted"); // w -> e
    eng.report(DiagId::LowOrfCapture, loc, "still info");
    EXPECT_EQ(eng.count(Severity::Error), 1u);
    EXPECT_EQ(eng.filteredCount(), 1u);
}

TEST(Lint, GlobalSiteCapSuppressesAcrossIds)
{
    DiagnosticOptions opt;
    opt.maxTotalSites = 2;
    DiagnosticEngine eng(opt);
    DiagLoc loc;
    loc.kernel = "k";
    eng.report(DiagId::BadArity, loc, "a");
    eng.report(DiagId::MissingDst, loc, "b");
    eng.report(DiagId::UnexpectedDst, loc, "c"); // over the cap
    eng.report(DiagId::BadArity, loc, "a");      // dup still counts
    EXPECT_EQ(eng.diagnostics().size(), 2u);
    EXPECT_EQ(eng.suppressedCount(), 1u);
    EXPECT_EQ(eng.diagnostics()[0].occurrences, 2u);
}

TEST(Lint, DiagRegistryIsDenseUniqueAndStable)
{
    verifyDiagRegistry(); // panics on violation
    EXPECT_EQ(kNumDiagIds, 24u);
    EXPECT_STREQ(diagName(DiagId::BarrierDivergence),
                 "barrier-divergence");
    EXPECT_STREQ(diagName(DiagId::OwnershipViolation),
                 "ownership-violation");
}

// ---- golden lint snapshot over every shipped kernel ---------------------

std::string
lintSnapshotPath()
{
    return std::string(UNIMEM_SOURCE_DIR) +
           "/tests/golden/lint_snapshot.golden";
}

std::string
computeLintSnapshot()
{
    std::ostringstream os;
    for (const BenchmarkInfo& info : allBenchmarks()) {
        auto k = createBenchmark(info.name, 0.5);
        LintReport r = lintKernel(*k);
        os << r.str();
    }
    return os.str();
}

TEST(LintSweep, SnapshotMatchesGoldenFile)
{
    std::string snapshot = computeLintSnapshot();

    if (std::getenv("UNIMEM_UPDATE_GOLDEN")) {
        std::ofstream os(lintSnapshotPath());
        ASSERT_TRUE(os) << "cannot write " << lintSnapshotPath();
        os << "# lint snapshot: default analysis passes over all "
              "shipped kernels at scale 0.5\n"
           << "# regenerate: UNIMEM_UPDATE_GOLDEN=1 ./test_analysis "
              "--gtest_filter='LintSweep.SnapshotMatchesGoldenFile'\n"
           << snapshot;
        GTEST_SKIP() << "golden file regenerated at "
                     << lintSnapshotPath();
    }

    std::ifstream is(lintSnapshotPath());
    ASSERT_TRUE(is) << "missing golden file " << lintSnapshotPath()
                    << " - regenerate with UNIMEM_UPDATE_GOLDEN=1";
    std::ostringstream golden;
    std::string line;
    while (std::getline(is, line)) {
        if (!line.empty() && line[0] == '#')
            continue;
        golden << line << "\n";
    }
    EXPECT_EQ(snapshot, golden.str())
        << "lint output drifted from the golden snapshot; if the "
           "change is intended, regenerate with UNIMEM_UPDATE_GOLDEN=1";
}

} // namespace
} // namespace unimem
