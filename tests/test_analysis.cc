/**
 * @file
 * Tests of the static trace analyzer (analysis/lint.hh).
 *
 * Layout: one positive case (a clean hand-built kernel), one negative
 * case per diagnostic — each seeded violation built so it trips exactly
 * its intended check once — a clean-sweep test over all 26 shipped
 * kernel models, and determinism of the parallel lint driver across
 * worker counts.
 */

#include <gtest/gtest.h>

#include "analysis/lint.hh"
#include "analysis/liveness.hh"
#include "kernels/registry.hh"
#include "kernels/step_program.hh"
#include "kernels/workloads.hh"
#include "sim/sweep.hh"

namespace unimem {
namespace {

/** Hand-built kernel: fixed instruction vector + explicit params. */
class TestKernel : public KernelModel
{
  public:
    TestKernel(KernelParams kp, std::vector<WarpInstr> instrs)
        : kp_(std::move(kp)), instrs_(std::move(instrs))
    {
    }

    const KernelParams& params() const override { return kp_; }

    std::unique_ptr<WarpProgram>
    warpProgram(const WarpCtx&) const override
    {
        return std::make_unique<FixedProgram>(instrs_);
    }

  private:
    KernelParams kp_;
    std::vector<WarpInstr> instrs_;
};

KernelParams
baseParams()
{
    KernelParams kp;
    kp.name = "lint-test";
    kp.regsPerThread = 8;
    kp.sharedBytesPerCta = 256;
    kp.ctaThreads = kWarpWidth;
    kp.gridCtas = 1;
    kp.liveInRegs = 2; // r0, r1 live at entry
    return kp;
}

WarpInstr
memAt(Opcode op, Addr base, RegId dstOrData = 2, RegId addrReg = 0)
{
    WarpInstr in = instr::mem(op, dstOrData, addrReg);
    for (u32 lane = 0; lane < kWarpWidth; ++lane)
        in.addr[lane] = base + lane * 4ull;
    return in;
}

/** A well-formed two-instruction program: alu feeding a global store. */
std::vector<WarpInstr>
cleanProgram()
{
    std::vector<WarpInstr> prog;
    prog.push_back(instr::alu(2, 0, 1));
    prog.push_back(memAt(Opcode::StGlobal, 4096, /*data=*/2,
                         /*addr=*/2));
    return prog;
}

LintReport
lintOne(const KernelParams& kp, std::vector<WarpInstr> instrs,
        LintOptions opt = {})
{
    TestKernel k(kp, std::move(instrs));
    return lintKernel(k, opt);
}

/** Assert @p r has exactly one error site and it is @p id. */
void
expectOnly(const LintReport& r, DiagId id)
{
    EXPECT_EQ(r.errors(), 1u) << r.str();
    EXPECT_EQ(r.diags.countOf(id), 1u) << r.str();
}

TEST(Lint, CleanProgramHasNoFindings)
{
    LintReport r = lintOne(baseParams(), cleanProgram());
    EXPECT_TRUE(r.clean()) << r.str();
    EXPECT_EQ(r.errors() + r.warnings(), 0u) << r.str();
    EXPECT_GT(r.metrics.instrs, 0u);
}

// ---- (a) dataflow -------------------------------------------------------

TEST(Lint, ReadBeforeWriteOutsideLiveInSet)
{
    auto prog = cleanProgram();
    prog.insert(prog.begin(), instr::alu(3, /*src=*/5)); // r5 never written
    LintReport r = lintOne(baseParams(), prog);
    expectOnly(r, DiagId::ReadBeforeWrite);
}

TEST(Lint, LiveInRegistersAreReadableAtEntry)
{
    // Reading r0/r1 (declared live-in) before any write is legal.
    LintReport r = lintOne(baseParams(), cleanProgram());
    EXPECT_EQ(r.diags.countOf(DiagId::ReadBeforeWrite), 0u) << r.str();
}

TEST(Lint, LiveInAllSuppressesReadBeforeWrite)
{
    KernelParams kp = baseParams();
    kp.liveInRegs = KernelParams::kLiveInAll;
    auto prog = cleanProgram();
    prog.insert(prog.begin(), instr::alu(3, /*src=*/5));
    LintReport r = lintOne(kp, prog);
    EXPECT_TRUE(r.clean()) << r.str();
}

// ---- (b) declared register footprint ------------------------------------

TEST(Lint, DestinationBeyondDeclaredFootprint)
{
    auto prog = cleanProgram();
    prog.push_back(instr::alu(/*dst=*/9, /*src=*/2)); // regsPerThread = 8
    LintReport r = lintOne(baseParams(), prog);
    expectOnly(r, DiagId::RegOutOfRange);
}

TEST(Lint, SourceBeyondDeclaredFootprint)
{
    auto prog = cleanProgram();
    prog.push_back(instr::alu(3, /*src=*/8));
    LintReport r = lintOne(baseParams(), prog);
    expectOnly(r, DiagId::RegOutOfRange);
}

// ---- (c) address-space invariants ---------------------------------------

TEST(Lint, SharedAccessOutsideCtaSlab)
{
    auto prog = cleanProgram();
    prog.push_back(memAt(Opcode::LdShared, /*base=*/200)); // 200..328 > 256
    LintReport r = lintOne(baseParams(), prog);
    expectOnly(r, DiagId::SharedOutOfBounds);
}

TEST(Lint, SharedAccessWithoutDeclaredScratchpad)
{
    KernelParams kp = baseParams();
    kp.sharedBytesPerCta = 0;
    auto prog = cleanProgram();
    prog.push_back(memAt(Opcode::LdShared, 0));
    LintReport r = lintOne(kp, prog);
    expectOnly(r, DiagId::SharedUnallocated);
}

TEST(Lint, LocalAccessBelowAperture)
{
    auto prog = cleanProgram();
    prog.push_back(memAt(Opcode::LdLocal, /*base=*/4096)); // < kLocalBase
    LintReport r = lintOne(baseParams(), prog);
    expectOnly(r, DiagId::LocalOutsideAperture);
}

TEST(Lint, GlobalAccessInsideLocalAperture)
{
    auto prog = cleanProgram();
    prog.push_back(memAt(Opcode::LdGlobal, kLocalBase + 64));
    LintReport r = lintOne(baseParams(), prog);
    expectOnly(r, DiagId::GlobalInLocalAperture);
}

TEST(Lint, ImpossiblePerLaneSpread)
{
    auto prog = cleanProgram();
    WarpInstr in = memAt(Opcode::LdGlobal, 0);
    in.addr[31] = Addr(1) << 33; // 8 GB from lane 0 in one warp access
    prog.push_back(in);
    LintReport r = lintOne(baseParams(), prog);
    expectOnly(r, DiagId::ImpossibleLaneSpread);
}

TEST(Lint, MisalignedAddressIsAWarning)
{
    auto prog = cleanProgram();
    WarpInstr in = memAt(Opcode::LdGlobal, 4096);
    in.addr[3] += 2; // 4-byte access at a 2-byte offset
    prog.push_back(in);
    LintReport r = lintOne(baseParams(), prog);
    EXPECT_EQ(r.errors(), 0u) << r.str();
    EXPECT_EQ(r.warnings(), 1u) << r.str();
    EXPECT_EQ(r.diags.countOf(DiagId::MisalignedAddress), 1u) << r.str();
}

TEST(Lint, WerrorPromotesWarningsToErrors)
{
    auto prog = cleanProgram();
    WarpInstr in = memAt(Opcode::LdGlobal, 4096);
    in.addr[3] += 2;
    prog.push_back(in);
    LintOptions opt;
    opt.werror = true;
    LintReport r = lintOne(baseParams(), prog, opt);
    EXPECT_EQ(r.warnings(), 0u) << r.str();
    expectOnly(r, DiagId::MisalignedAddress);
}

// ---- (d) instruction well-formedness ------------------------------------

TEST(Lint, ArityOutsideOpcodeShape)
{
    auto prog = cleanProgram();
    WarpInstr in = instr::sfu(3, 2);
    in.src[1] = 0; // live-in, so only the arity itself is wrong
    in.numSrc = 2; // sfu expects exactly one source
    prog.push_back(in);
    LintReport r = lintOne(baseParams(), prog);
    expectOnly(r, DiagId::BadArity);
}

TEST(Lint, LoadWithoutDestination)
{
    auto prog = cleanProgram();
    WarpInstr in = memAt(Opcode::LdGlobal, 4096);
    in.dst = kInvalidReg;
    prog.push_back(in);
    LintReport r = lintOne(baseParams(), prog);
    expectOnly(r, DiagId::MissingDst);
}

TEST(Lint, StoreWithDestination)
{
    auto prog = cleanProgram();
    WarpInstr in = memAt(Opcode::StGlobal, 4096);
    in.dst = 3;
    prog.push_back(in);
    LintReport r = lintOne(baseParams(), prog);
    expectOnly(r, DiagId::UnexpectedDst);
}

TEST(Lint, InvalidSourceInsideDeclaredArity)
{
    auto prog = cleanProgram();
    WarpInstr in = instr::alu(3, 0, 1);
    in.src[1] = kInvalidReg; // numSrc still 2
    prog.push_back(in);
    LintReport r = lintOne(baseParams(), prog);
    expectOnly(r, DiagId::InvalidSrcOperand);
}

TEST(Lint, MemoryOpWithEmptyActiveMask)
{
    auto prog = cleanProgram();
    WarpInstr in = memAt(Opcode::StGlobal, 4096);
    in.activeMask = 0;
    prog.push_back(in);
    LintReport r = lintOne(baseParams(), prog);
    expectOnly(r, DiagId::EmptyActiveMask);
}

TEST(Lint, MemoryOpWithBadAccessBytes)
{
    auto prog = cleanProgram();
    WarpInstr in = memAt(Opcode::LdGlobal, 4096);
    in.accessBytes = 3;
    prog.push_back(in);
    LintReport r = lintOne(baseParams(), prog);
    expectOnly(r, DiagId::BadAccessBytes);
}

// ---- (e) static metrics -------------------------------------------------

TEST(Lint, RegisterPressureOfDisjointChains)
{
    // r2..r5 defined, then all four read at the end: pressure >= 4
    // (plus nothing else live in between).
    KernelParams kp = baseParams();
    kp.liveInRegs = 0;
    std::vector<WarpInstr> prog;
    for (RegId r = 2; r <= 5; ++r)
        prog.push_back(instr::alu(r));
    prog.push_back(instr::alu(6, 2, 3, 4));
    prog.push_back(instr::alu(7, 5, 6));
    LintReport r = lintOne(kp, prog);
    EXPECT_TRUE(r.clean()) << r.str();
    EXPECT_GE(r.metrics.regPressure, 4u);
    EXPECT_LE(r.metrics.regPressure, 6u);
}

TEST(Lint, OrfCaptureSeesRecentValues)
{
    // Chain of alu ops each reading the value defined immediately
    // before: every read after the first hits the LRF/ORF window.
    KernelParams kp = baseParams();
    kp.liveInRegs = 1;
    std::vector<WarpInstr> prog;
    prog.push_back(instr::alu(1, 0));
    for (int i = 0; i < 20; ++i) {
        prog.push_back(instr::alu(2, 1));
        prog.push_back(instr::alu(1, 2));
    }
    LintReport r = lintOne(kp, prog);
    EXPECT_TRUE(r.clean()) << r.str();
    EXPECT_GT(r.metrics.orfReachableFraction(), 0.9);
}

TEST(Lint, LowOrfCaptureRaisesInfoAdvisory)
{
    // Round-robin over 8 registers with reads of the value defined 7
    // defs earlier: outside a 5-deep recency window.
    KernelParams kp = baseParams();
    kp.liveInRegs = 8; // all regs live-in: no read-before-write noise
    std::vector<WarpInstr> prog;
    for (int i = 0; i < 64; ++i)
        prog.push_back(
            instr::alu(static_cast<RegId>(i % 8),
                       static_cast<RegId>((i + 1) % 8)));
    LintReport r = lintOne(kp, prog);
    EXPECT_TRUE(r.clean()) << r.str();
    EXPECT_EQ(r.diags.countOf(DiagId::LowOrfCapture), 1u) << r.str();
    EXPECT_EQ(r.infos(), 1u);
    EXPECT_LT(r.metrics.orfReachableFraction(), 0.5);
}

TEST(Lint, SharedConflictDegreeOfStridedAccess)
{
    // Stride of 2 words over 32 lanes: 64 words over 32 banks, every
    // touched bank hit twice -> degree 2; unit stride -> degree 1.
    KernelParams kp = baseParams();
    kp.sharedBytesPerCta = 1024;

    WarpInstr unit = memAt(Opcode::LdShared, 0);
    WarpInstr strided = memAt(Opcode::LdShared, 0);
    for (u32 lane = 0; lane < kWarpWidth; ++lane)
        strided.addr[lane] = lane * 8ull;

    LintReport r = lintOne(kp, {cleanProgram()[0], unit, strided});
    EXPECT_TRUE(r.clean()) << r.str();
    EXPECT_EQ(r.metrics.sharedDegreeMax, 2u);
    // Per sampled warp: one conflict-free op, one degree-2 op.
    EXPECT_EQ(r.metrics.sharedOps, 2 * r.metrics.sharedConflictFree)
        << r.str();
}

// ---- dedup & engine behaviour -------------------------------------------

TEST(Lint, RepeatedFindingsDeduplicateWithCounts)
{
    auto prog = cleanProgram();
    for (int i = 0; i < 5; ++i)
        prog.push_back(instr::alu(3, /*src=*/5)); // same RBW site x5
    LintReport r = lintOne(baseParams(), prog);
    expectOnly(r, DiagId::ReadBeforeWrite);
    const Diagnostic* rbw = nullptr;
    for (const Diagnostic& d : r.diags.diagnostics())
        if (d.id == DiagId::ReadBeforeWrite)
            rbw = &d;
    ASSERT_NE(rbw, nullptr);
    // One site, one occurrence per sampled warp per repeat (2 seeds).
    EXPECT_EQ(rbw->occurrences, 10u) << r.str();
}

TEST(Lint, PerIdSiteCapSuppresses)
{
    DiagnosticOptions opt;
    opt.maxSitesPerId = 2;
    DiagnosticEngine eng(opt);
    DiagLoc loc;
    loc.kernel = "k";
    for (int i = 0; i < 5; ++i)
        eng.report(DiagId::BadArity, loc, "site " + std::to_string(i));
    EXPECT_EQ(eng.countOf(DiagId::BadArity), 2u);
    EXPECT_EQ(eng.suppressedCount(), 3u);
}

TEST(Lint, EngineMergePreservesCountsAndDedups)
{
    DiagnosticEngine a, b;
    DiagLoc loc;
    loc.kernel = "k";
    a.report(DiagId::BadArity, loc, "shared site");
    b.report(DiagId::BadArity, loc, "shared site");
    b.report(DiagId::MissingDst, loc, "only in b");
    a.merge(b);
    EXPECT_EQ(a.countOf(DiagId::BadArity), 1u);
    EXPECT_EQ(a.countOf(DiagId::MissingDst), 1u);
    ASSERT_GE(a.diagnostics().size(), 1u);
    EXPECT_EQ(a.diagnostics()[0].occurrences, 2u);
}

// ---- warp sampling ------------------------------------------------------

TEST(Lint, WarpSamplesCoverCtaAndWarpExtremes)
{
    KernelParams kp = baseParams();
    kp.gridCtas = 9;
    kp.ctaThreads = 128; // 4 warps
    LintOptions opt;
    std::vector<WarpCtx> samples = lintWarpSamples(kp, opt);
    // 2 seeds x {0, 4, 8} x {0, 3}
    EXPECT_EQ(samples.size(), 12u);
    bool sawLast = false;
    for (const WarpCtx& ctx : samples)
        if (ctx.ctaId == 8 && ctx.warpInCta == 3)
            sawLast = true;
    EXPECT_TRUE(sawLast);
}

TEST(Lint, SingleWarpKernelSamplesDeduplicate)
{
    KernelParams kp = baseParams(); // 1 CTA, 1 warp
    LintOptions opt;
    opt.seeds = {7};
    EXPECT_EQ(lintWarpSamples(kp, opt).size(), 1u);
}

// ---- shipped kernels ----------------------------------------------------

TEST(LintSweep, AllShippedKernelsLintErrorFree)
{
    LintOptions opt;
    opt.werror = true; // warnings fail too
    for (const BenchmarkInfo& info : allBenchmarks()) {
        auto k = createBenchmark(info.name, 0.5);
        LintReport r = lintKernel(*k, opt);
        EXPECT_TRUE(r.clean()) << r.str();
    }
}

TEST(LintSweep, NeedleBlockingVariantsLintErrorFree)
{
    // The BF=16/64 variants are not registry entries but are shipped
    // (fig11); the BF edge tiles are where address underflow once hid.
    for (u32 bf : {16u, 64u}) {
        auto k = makeNeedle(bf, 0.5);
        LintReport r = lintKernel(*k);
        EXPECT_TRUE(r.clean()) << r.str();
    }
}

TEST(LintSweep, ShippedMetricsLandInPlausibleBands)
{
    // Spot-check the metrics the docs quote: dgemm's register blocking
    // must show the deepest pressure, and every kernel's ORF-reachable
    // fraction should sit in the Section 2.1 band.
    u32 dgemmPressure = 0;
    u32 maxOther = 0;
    for (const BenchmarkInfo& info : allBenchmarks()) {
        auto k = createBenchmark(info.name, 0.5);
        LintReport r = lintKernel(*k);
        EXPECT_GT(r.metrics.orfReachableFraction(), 0.5) << info.name;
        EXPECT_LE(r.metrics.regPressure,
                  k->params().regsPerThread)
            << info.name << ": pressure above declared footprint";
        if (std::string(info.name) == "dgemm")
            dgemmPressure = r.metrics.regPressure;
        else
            maxOther = std::max(maxOther, r.metrics.regPressure);
    }
    EXPECT_GT(dgemmPressure, maxOther);
}

// ---- determinism across worker counts -----------------------------------

std::string
lintAllViaSweep(u32 workers)
{
    std::vector<std::string> names;
    for (const BenchmarkInfo& info : allBenchmarks())
        names.push_back(info.name);
    std::vector<LintReport> reports(names.size());
    std::vector<SweepJob> jobs;
    for (size_t i = 0; i < names.size(); ++i) {
        SweepJob j;
        j.label = "lint " + names[i];
        j.run = [&reports, &names, i]() {
            auto k = createBenchmark(names[i], 0.5);
            reports[i] = lintKernel(*k);
            return SimResult{};
        };
        jobs.push_back(std::move(j));
    }
    runSweep(jobs, workers);
    std::string out;
    for (const LintReport& r : reports)
        out += r.str();
    return out;
}

TEST(LintSweep, OutputIdenticalAcrossWorkerCounts)
{
    std::string serial = lintAllViaSweep(1);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, lintAllViaSweep(2));
    EXPECT_EQ(serial, lintAllViaSweep(8));
}

// ---- liveness unit ------------------------------------------------------

TEST(Liveness, IntervalOverlapCountsSimultaneousValues)
{
    TraceLiveness lv(/*numRegs=*/8, /*liveInRegs=*/0);
    // def r0; def r1; use both -> two simultaneously live values.
    lv.step(instr::alu(0));
    lv.step(instr::alu(1));
    lv.step(instr::alu(2, 0, 1));
    LivenessSummary s = lv.finish();
    EXPECT_EQ(s.maxLive, 2u);
    EXPECT_EQ(s.regReads, 2u);
}

TEST(Liveness, DeadDefsContributeNoPressure)
{
    TraceLiveness lv(8, 0);
    for (RegId r = 0; r < 6; ++r)
        lv.step(instr::alu(r)); // never read
    EXPECT_EQ(lv.finish().maxLive, 0u);
}

TEST(Liveness, RedefinitionEndsTheOldInterval)
{
    TraceLiveness lv(8, 0);
    lv.step(instr::alu(0));
    lv.step(instr::alu(1, 0));
    lv.step(instr::alu(0));     // kills the first r0 value
    lv.step(instr::alu(2, 0));
    EXPECT_EQ(lv.finish().maxLive, 1u);
}

} // namespace
} // namespace unimem
