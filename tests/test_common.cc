/**
 * @file
 * Unit tests for the common utilities: RNG determinism, statistics
 * container, table formatting, and CLI parsing.
 */

#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "common/cli.hh"
#include "common/log.hh"
#include "common/ownership.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"

namespace unimem {
namespace {

TEST(Rng, DeterministicFromSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_EQ(same, 0);
}

TEST(Rng, RangeStaysInBounds)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.range(17), 17u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(9);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        double v = r.uniform();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ZeroSeedIsValid)
{
    Rng r(0);
    EXPECT_NE(r.next(), 0u);
}

TEST(StatSet, SetGetAndMerge)
{
    StatSet a;
    a.set("cycles", 100);
    a.add("cycles", 50);
    EXPECT_DOUBLE_EQ(a.get("cycles"), 150.0);
    EXPECT_TRUE(a.has("cycles"));
    EXPECT_FALSE(a.has("missing"));
    EXPECT_DOUBLE_EQ(a.getOr("missing", 7.0), 7.0);

    StatSet b;
    b.set("cycles", 10);
    b.set("instrs", 5);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.get("cycles"), 160.0);
    EXPECT_DOUBLE_EQ(a.get("instrs"), 5.0);
}

TEST(StatSet, DumpProducesSortedLines)
{
    StatSet s;
    s.set("b", 2);
    s.set("a", 1);
    std::ostringstream os;
    s.dump(os);
    EXPECT_EQ(os.str(), "a = 1\nb = 2\n");
}

TEST(Table, AlignsColumns)
{
    Table t({"name", "value"});
    t.addRow({"x", "1"});
    t.addRow({"longer", "2.50"});
    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("| name   | value |"), std::string::npos);
    EXPECT_NE(out.find("| longer | 2.50  |"), std::string::npos);
    EXPECT_EQ(t.numRows(), 2u);
}

TEST(Table, NumFormatsPrecision)
{
    EXPECT_EQ(Table::num(1.23456, 2), "1.23");
    EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(Cli, ParsesFlagsAndPositional)
{
    const char* argv[] = {"prog", "--capacity-kb=384", "--verbose",
                          "needle", "--ratio=1.5"};
    CliArgs args(5, argv);
    EXPECT_EQ(args.getInt("capacity-kb", 0), 384);
    EXPECT_TRUE(args.getBool("verbose", false));
    EXPECT_DOUBLE_EQ(args.getDouble("ratio", 0.0), 1.5);
    EXPECT_EQ(args.getString("missing", "dflt"), "dflt");
    ASSERT_EQ(args.positional().size(), 1u);
    EXPECT_EQ(args.positional()[0], "needle");
}

TEST(Cli, BooleanSpellings)
{
    const char* argv[] = {"prog", "--a=yes", "--b=off", "--c=1"};
    CliArgs args(4, argv);
    EXPECT_TRUE(args.getBool("a", false));
    EXPECT_FALSE(args.getBool("b", true));
    EXPECT_TRUE(args.getBool("c", false));
}

TEST(Log, StrprintfFormats)
{
    EXPECT_EQ(strprintf("%d-%s", 42, "x"), "42-x");
}

TEST(Types, KbLiteral)
{
    EXPECT_EQ(64_KB, 65536u);
    EXPECT_EQ(1_MB, 1048576u);
}

// ---- bound-phase ownership auditing -------------------------------------

std::vector<ownership::Violation> gViolations;

void
recordViolation(const ownership::Violation& v)
{
    gViolations.push_back(v);
}

/** Arms auditing with a collecting handler; restores prior state. */
class OwnershipFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        gViolations.clear();
        prevAuditing_ = ownership::auditing();
        prevHandler_ = ownership::setViolationHandler(recordViolation);
        ownership::setAuditing(true);
    }

    void
    TearDown() override
    {
        ownership::setAuditing(prevAuditing_);
        ownership::setViolationHandler(prevHandler_);
    }

  private:
    bool prevAuditing_ = false;
    ownership::Handler prevHandler_ = nullptr;
};

TEST_F(OwnershipFixture, ScopedActorNestsAndRestores)
{
    EXPECT_EQ(ownership::currentActor(), ownership::kNoActor);
    {
        ownership::ScopedActor sm(3);
        EXPECT_EQ(ownership::currentActor(), 3u);
        {
            ownership::ScopedActor weaver(ownership::kWeaver);
            EXPECT_EQ(ownership::currentActor(), ownership::kWeaver);
        }
        EXPECT_EQ(ownership::currentActor(), 3u);
    }
    EXPECT_EQ(ownership::currentActor(), ownership::kNoActor);
}

TEST_F(OwnershipFixture, MatchingActorPasses)
{
    ownership::ScopedActor sm(2);
    u64 before = ownership::checksPerformed();
    ownership::check(2, "test-site");
    EXPECT_TRUE(gViolations.empty());
    EXPECT_EQ(ownership::checksPerformed(), before + 1);
}

TEST_F(OwnershipFixture, MismatchInvokesHandlerWithDetails)
{
    ownership::ScopedActor sm(1);
    ownership::check(4, "DramRequestQueue::recordRead");
    ASSERT_EQ(gViolations.size(), 1u);
    EXPECT_EQ(gViolations[0].actor, 1u);
    EXPECT_EQ(gViolations[0].owner, 4u);
    EXPECT_STREQ(gViolations[0].site, "DramRequestQueue::recordRead");
    // The rendered form names both parties and the site.
    std::string s = gViolations[0].str();
    EXPECT_NE(s.find("sm1"), std::string::npos) << s;
    EXPECT_NE(s.find("sm4"), std::string::npos) << s;
    EXPECT_NE(s.find("DramRequestQueue::recordRead"), std::string::npos)
        << s;
}

TEST_F(OwnershipFixture, UnownedResourcesAreExempt)
{
    // kNoActor owner = single-SM mode; ownership is a chip contract.
    ownership::ScopedActor sm(1);
    ownership::check(ownership::kNoActor, "test-site");
    EXPECT_TRUE(gViolations.empty());
}

TEST_F(OwnershipFixture, DisabledAuditingSkipsChecks)
{
    ownership::setAuditing(false);
    ownership::ScopedActor sm(1);
    u64 before = ownership::checksPerformed();
    ownership::check(4, "test-site"); // mismatch, but auditing is off
    EXPECT_TRUE(gViolations.empty());
    EXPECT_EQ(ownership::checksPerformed(), before);
}

TEST_F(OwnershipFixture, ActorNames)
{
    EXPECT_EQ(ownership::actorName(0), "sm0");
    EXPECT_EQ(ownership::actorName(ownership::kWeaver), "weaver");
    EXPECT_EQ(ownership::actorName(ownership::kNoActor), "none");
}

} // namespace
} // namespace unimem
