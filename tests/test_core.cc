/**
 * @file
 * Unit tests for the unified-memory core: partition descriptors,
 * Fermi-like options, the conflict/arbitration model for both bank
 * organizations, and the Section 4.5 allocation policy.
 */

#include <gtest/gtest.h>

#include "core/allocation.hh"
#include "core/conflict_model.hh"
#include "core/partition.hh"

namespace unimem {
namespace {

TEST(Partition, BaselineIsPaperConfiguration)
{
    MemoryPartition p = baselinePartition();
    EXPECT_EQ(p.rfBytes, 256_KB);
    EXPECT_EQ(p.sharedBytes, 64_KB);
    EXPECT_EQ(p.cacheBytes, 64_KB);
    EXPECT_EQ(p.total(), 384_KB);
}

TEST(Partition, FermiLikeOptionsSplitThreeToOne)
{
    auto opts = fermiLikeOptions(384_KB);
    ASSERT_EQ(opts.size(), 2u);
    EXPECT_EQ(opts[0].rfBytes, 256_KB);
    EXPECT_EQ(opts[0].sharedBytes, 96_KB);
    EXPECT_EQ(opts[0].cacheBytes, 32_KB);
    EXPECT_EQ(opts[1].sharedBytes, 32_KB);
    EXPECT_EQ(opts[1].cacheBytes, 96_KB);
}

TEST(Partition, UnifiedBankSizing)
{
    EXPECT_EQ(unifiedBankBytes(384_KB), 12_KB);
    EXPECT_EQ(unifiedBankBytes(256_KB), 8_KB);
    EXPECT_EQ(unifiedBankBytes(128_KB), 4_KB);
}

TEST(Partition, TagStorageMatchesPaperScale)
{
    // Paper Section 4.1: ~1.125KB for 64KB, up to 7.125KB for 384KB.
    EXPECT_NEAR(static_cast<double>(tagStorageBytes(64_KB)), 1152.0,
                200.0);
    EXPECT_NEAR(static_cast<double>(tagStorageBytes(384_KB)), 7296.0,
                600.0);
}

// ---- Conflict model --------------------------------------------------

WarpInstr
sharedLoad(const std::array<Addr, kWarpWidth>& addrs)
{
    WarpInstr in = instr::mem(Opcode::LdShared, 1, 0);
    in.addr = addrs;
    return in;
}

TEST(ConflictModel, AluNoMrfConflictWhenBanksDiffer)
{
    ConflictModel pm(DesignKind::Partitioned);
    ConflictModel um(DesignKind::Unified);
    WarpInstr in = instr::alu(5, 1, 2);
    u8 banks[3] = {1, 2};
    EXPECT_EQ(pm.evaluate(in, banks, 2).penalty, 0u);
    EXPECT_EQ(um.evaluate(in, banks, 2).penalty, 0u);
}

TEST(ConflictModel, MrfBankConflictIdenticalInBothDesigns)
{
    // Two operands in the same bank: paper Section 4.2 says the register
    // mapping is unchanged by unification.
    ConflictModel pm(DesignKind::Partitioned);
    ConflictModel um(DesignKind::Unified);
    WarpInstr in = instr::alu(5, 0, 4); // r0 and r4 both map to bank 0
    u8 banks[3] = {0, 0};
    EXPECT_EQ(pm.evaluate(in, banks, 2).penalty, 1u);
    EXPECT_EQ(um.evaluate(in, banks, 2).penalty, 1u);
    EXPECT_EQ(pm.evaluate(in, banks, 2).maxPerBank, 2u);
}

TEST(ConflictModel, PartitionedUnitStrideSharedConflictFree)
{
    std::array<Addr, kWarpWidth> a{};
    for (u32 i = 0; i < kWarpWidth; ++i)
        a[i] = i * 4; // one word per bank
    ConflictModel pm(DesignKind::Partitioned);
    ConflictOutcome out = pm.evaluate(sharedLoad(a), nullptr, 0);
    EXPECT_EQ(out.penalty, 0u);
    EXPECT_EQ(out.distinctWords, 32u);
}

TEST(ConflictModel, PartitionedPowerOfTwoStrideConflicts)
{
    // Stride of 32 words: all lanes hit bank 0 -> 31 penalty cycles.
    std::array<Addr, kWarpWidth> a{};
    for (u32 i = 0; i < kWarpWidth; ++i)
        a[i] = static_cast<Addr>(i) * 32 * 4;
    ConflictModel pm(DesignKind::Partitioned);
    ConflictOutcome out = pm.evaluate(sharedLoad(a), nullptr, 0);
    EXPECT_EQ(out.penalty, 31u);
    EXPECT_EQ(out.maxPerBank, 32u);
}

TEST(ConflictModel, BroadcastIsFree)
{
    std::array<Addr, kWarpWidth> a{};
    a.fill(0x40);
    ConflictModel pm(DesignKind::Partitioned);
    ConflictModel um(DesignKind::Unified);
    EXPECT_EQ(pm.evaluate(sharedLoad(a), nullptr, 0).penalty, 0u);
    EXPECT_EQ(um.evaluate(sharedLoad(a), nullptr, 0).penalty, 0u);
}

TEST(ConflictModel, UnifiedUnitStrideSharedConflictFree)
{
    // 32 lanes x 4B = 8 chunks, one per cluster.
    std::array<Addr, kWarpWidth> a{};
    for (u32 i = 0; i < kWarpWidth; ++i)
        a[i] = i * 4;
    ConflictModel um(DesignKind::Unified);
    ConflictOutcome out = um.evaluate(sharedLoad(a), nullptr, 0);
    EXPECT_EQ(out.penalty, 0u);
    EXPECT_EQ(out.distinctChunks, 8u);
}

TEST(ConflictModel, UnifiedClusterSerializationIsCoarser)
{
    // Stride of 132B: words are lane*33, i.e. one per partitioned bank
    // (conflict-free), but the 16-byte chunks land four-deep in each
    // cluster, so the simple unified design pays 3 cycles per access
    // ("a warp's shared memory accesses must coalesce to 8 banks rather
    // than 32", paper Section 4.2).
    std::array<Addr, kWarpWidth> a{};
    for (u32 i = 0; i < kWarpWidth; ++i)
        a[i] = static_cast<Addr>(i) * 132;
    ConflictModel pm(DesignKind::Partitioned);
    ConflictModel um(DesignKind::Unified);
    EXPECT_EQ(pm.evaluate(sharedLoad(a), nullptr, 0).penalty, 0u);
    ConflictOutcome u = um.evaluate(sharedLoad(a), nullptr, 0);
    EXPECT_EQ(u.penalty, 3u);

    // A 128B stride hits a single bank in both organizations.
    for (u32 i = 0; i < kWarpWidth; ++i)
        a[i] = static_cast<Addr>(i) * 128;
    EXPECT_EQ(pm.evaluate(sharedLoad(a), nullptr, 0).penalty, 31u);
    EXPECT_EQ(um.evaluate(sharedLoad(a), nullptr, 0).penalty, 31u);
}

TEST(ConflictModel, AggressiveUnifiedRelaxesClusterLimit)
{
    // 16-byte stride: 32 distinct chunks, 4 per cluster, all four banks
    // of each cluster used once -> simple design pays 3, aggressive 0.
    std::array<Addr, kWarpWidth> a{};
    for (u32 i = 0; i < kWarpWidth; ++i)
        a[i] = static_cast<Addr>(i) * 16;
    ConflictModel simple(DesignKind::Unified, false);
    ConflictModel aggressive(DesignKind::Unified, true);
    EXPECT_EQ(simple.evaluate(sharedLoad(a), nullptr, 0).penalty, 3u);
    EXPECT_EQ(aggressive.evaluate(sharedLoad(a), nullptr, 0).penalty, 0u);
}

TEST(ConflictModel, ArbitrationConflictRegisterVsMemory)
{
    // A unified-design memory instruction whose MRF read lands in the
    // same bank as its data chunk: the paper's arbitration conflict.
    // Chunk k=0 -> cluster 0, bank 0; register read in bank 0 collides.
    std::array<Addr, kWarpWidth> a{};
    a.fill(0); // one chunk: cluster 0, bank 0
    WarpInstr in = sharedLoad(a);
    u8 banks[3] = {0};
    ConflictModel um(DesignKind::Unified);
    EXPECT_EQ(um.evaluate(in, banks, 1).penalty, 1u);
    // In a different bank there is no arbitration conflict.
    u8 banks2[3] = {1};
    EXPECT_EQ(um.evaluate(in, banks2, 1).penalty, 0u);
    // The partitioned design keeps registers in a separate structure.
    ConflictModel pm(DesignKind::Partitioned);
    EXPECT_EQ(pm.evaluate(in, banks, 1).penalty, 0u);
}

TEST(ConflictModel, GlobalLineAccessConflictFreeInPartitioned)
{
    std::array<Addr, kWarpWidth> a{};
    for (u32 i = 0; i < kWarpWidth; ++i)
        a[i] = i * 4;
    WarpInstr in = instr::mem(Opcode::LdGlobal, 1, 0);
    in.addr = a;
    ConflictModel pm(DesignKind::Partitioned);
    ConflictOutcome out = pm.evaluate(in, nullptr, 0);
    EXPECT_EQ(out.penalty, 0u);
    EXPECT_EQ(out.maxPerBank, 1u);
}

TEST(ConflictModel, TextureBypassesDataBanks)
{
    std::array<Addr, kWarpWidth> a{};
    for (u32 i = 0; i < kWarpWidth; ++i)
        a[i] = static_cast<Addr>(i) * 128;
    WarpInstr in = instr::mem(Opcode::Tex, 1, 0);
    in.addr = a;
    ConflictModel um(DesignKind::Unified);
    EXPECT_EQ(um.evaluate(in, nullptr, 0).penalty, 0u);
    EXPECT_EQ(um.evaluate(in, nullptr, 0).distinctChunks, 0u);
}


TEST(ConflictModel, StoreDataOperandCountsAsAccess)
{
    // A scratchpad store reads address + data registers from the MRF;
    // two reads in the same bank conflict like any other instruction.
    std::array<Addr, kWarpWidth> a{};
    for (u32 i = 0; i < kWarpWidth; ++i)
        a[i] = i * 4;
    WarpInstr st = instr::mem(Opcode::StShared, 4, 0);
    st.addr = a;
    u8 banks[3] = {2, 2};
    ConflictModel pm(DesignKind::Partitioned);
    EXPECT_EQ(pm.evaluate(st, banks, 2).penalty, 1u);
}

TEST(ConflictModel, UnifiedGlobalLinesUseOneBankPerCluster)
{
    // Four consecutive lines map to the four banks: conflict-free; four
    // lines with a 512B stride all map to bank 0: serialized.
    ConflictModel um(DesignKind::Unified);
    WarpInstr ld = instr::mem(Opcode::LdGlobal, 1, 0);
    for (u32 lane = 0; lane < kWarpWidth; ++lane)
        ld.addr[lane] = static_cast<Addr>(lane / 8) * 128 + (lane % 8) * 16;
    EXPECT_EQ(um.evaluate(ld, nullptr, 0).penalty, 0u);

    for (u32 lane = 0; lane < kWarpWidth; ++lane)
        ld.addr[lane] = static_cast<Addr>(lane / 8) * 512 + (lane % 8) * 16;
    EXPECT_EQ(um.evaluate(ld, nullptr, 0).penalty, 3u);
}

TEST(ConflictModel, UnifiedGlobalArbitrationWithRegisterBank)
{
    // One line (bank 0 in every cluster) + a register read in bank 0:
    // an arbitration conflict; register in bank 1: none.
    ConflictModel um(DesignKind::Unified);
    WarpInstr ld = instr::mem(Opcode::LdGlobal, 1, 0);
    for (u32 lane = 0; lane < kWarpWidth; ++lane)
        ld.addr[lane] = lane * 4; // line 0 -> bank 0
    u8 bank0[3] = {0};
    u8 bank1[3] = {1};
    EXPECT_EQ(um.evaluate(ld, bank0, 1).penalty, 1u);
    EXPECT_EQ(um.evaluate(ld, bank1, 1).penalty, 0u);
}

TEST(ConflictModel, BarrierHasNoAccesses)
{
    ConflictModel um(DesignKind::Unified);
    ConflictOutcome out = um.evaluate(instr::bar(), nullptr, 0);
    EXPECT_EQ(out.penalty, 0u);
    EXPECT_EQ(out.maxPerBank, 0u);
    EXPECT_EQ(out.distinctChunks, 0u);
}

TEST(ConflictModel, FermiLikeBehavesAsPartitioned)
{
    ConflictModel fermi(DesignKind::FermiLike);
    ConflictModel part(DesignKind::Partitioned);
    std::array<Addr, kWarpWidth> a{};
    for (u32 i = 0; i < kWarpWidth; ++i)
        a[i] = static_cast<Addr>(i) * 132;
    WarpInstr ld = sharedLoad(a);
    u8 banks[3] = {0, 0};
    EXPECT_EQ(fermi.evaluate(ld, banks, 2).penalty,
              part.evaluate(ld, banks, 2).penalty);
    EXPECT_EQ(fermi.evaluate(ld, banks, 2).maxPerBank,
              part.evaluate(ld, banks, 2).maxPerBank);
}

TEST(ConflictModel, RegPenaltySplitMatchesOpcodeKind)
{
    // Compute instructions attribute conflicts to the issue stage;
    // memory instructions to the access port.
    ConflictModel um(DesignKind::Unified);
    u8 banks[3] = {0, 0};
    WarpInstr alu_in = instr::alu(1, 0, 4);
    ConflictOutcome alu_out = um.evaluate(alu_in, banks, 2);
    EXPECT_EQ(alu_out.regPenalty, alu_out.penalty);
    EXPECT_GT(alu_out.penalty, 0u);

    std::array<Addr, kWarpWidth> a{};
    for (u32 i = 0; i < kWarpWidth; ++i)
        a[i] = i * 4;
    WarpInstr ld = sharedLoad(a);
    ConflictOutcome mem_out = um.evaluate(ld, banks, 2);
    EXPECT_EQ(mem_out.regPenalty, 0u);
}
// ---- Allocation policy -----------------------------------------------

KernelParams
kernelWith(u32 regs, u32 sharedPerCta, u32 ctaThreads = 256)
{
    KernelParams kp;
    kp.name = "test";
    kp.regsPerThread = regs;
    kp.sharedBytesPerCta = sharedPerCta;
    kp.ctaThreads = ctaThreads;
    kp.gridCtas = 64;
    return kp;
}

TEST(Allocation, UnifiedPartitionSumsToCapacity)
{
    AllocationDecision d = allocateUnified(kernelWith(33, 5120), 384_KB);
    ASSERT_TRUE(d.launch.feasible);
    EXPECT_EQ(d.partition.total(), 384_KB);
    EXPECT_EQ(d.design, DesignKind::Unified);
}

TEST(Allocation, PaperFigure8Bfs)
{
    // bfs: 36KB of registers, no shared, ~348KB cache.
    AllocationDecision d = allocateUnified(kernelWith(9, 0), 384_KB);
    EXPECT_EQ(d.partition.rfBytes, 36_KB);
    EXPECT_EQ(d.partition.sharedBytes, 0u);
    EXPECT_EQ(d.partition.cacheBytes, 348_KB);
}

TEST(Allocation, PaperFigure8Dgemm)
{
    // dgemm: 228KB registers + 66.5KB shared + remainder cache.
    AllocationDecision d = allocateUnified(kernelWith(57, 17024),
                                           384_KB);
    EXPECT_EQ(d.partition.rfBytes, 228_KB);
    EXPECT_EQ(d.partition.sharedBytes, 4u * 17024);
    EXPECT_EQ(d.launch.threads, 1024u);
}

TEST(Allocation, FermiLikeReturnsBothOptions)
{
    auto opts = allocateFermiLike(kernelWith(20, 20000), 384_KB);
    ASSERT_EQ(opts.size(), 2u);
    // 96KB shared fits 4 CTAs; 32KB shared fits only 1.
    EXPECT_TRUE(opts[0].launch.feasible);
    EXPECT_TRUE(opts[1].launch.feasible);
    EXPECT_GT(opts[0].launch.threads, opts[1].launch.threads);
}

TEST(Allocation, PartitionedKeepsPhysicalCapacities)
{
    AllocationDecision d = allocatePartitioned(
        kernelWith(20, 4096), baselinePartition());
    EXPECT_EQ(d.partition.cacheBytes, 64_KB);
    EXPECT_TRUE(d.launch.feasible);
}

} // namespace
} // namespace unimem
