/**
 * @file
 * Hot-state layout parity suite (DESIGN.md Section 12).
 *
 * The scheduler's per-warp hot state (ready cycles, head readiness,
 * dirty/barrier flags) is stored in struct-of-arrays form purely for
 * speed; the simulation outcome must be bit-identical to the original
 * array-of-structs engine. This suite pins that contract two ways:
 *
 *  - a golden fingerprint of every Table 1 kernel under both designs,
 *    generated from the pre-refactor engine, that any layout change
 *    perturbing semantics (a missed readiness-cache invalidation, a
 *    reordered housekeeping pass, a dropped dirty mark) will break;
 *  - the Debug-only UNIMEM_SOA_AUDIT shadow verifier, which must both
 *    pass its internal consistency checks and leave every exported
 *    statistic untouched.
 *
 * Regenerate with:
 *   UNIMEM_UPDATE_GOLDEN=1 ./build/tests/test_soa_state
 * Only a deliberate scheduler-policy change may regenerate this file,
 * and then every golden number in the repo must be re-validated.
 */

#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "kernels/registry.hh"
#include "sim/simulator.hh"

namespace unimem {
namespace {

std::string
goldenPath()
{
    return std::string(UNIMEM_SOURCE_DIR) +
           "/tests/golden/soa_parity.golden";
}

constexpr double kScale = 0.05;

/** FNV-1a over every semantically meaningful exported statistic. */
u64
statsHash(const SmStats& s)
{
    u64 h = 14695981039346656037ull;
    auto mix = [&h](u64 v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xffu;
            h *= 1099511628211ull;
        }
    };
    mix(s.cycles);
    mix(s.warpInstrs);
    mix(s.threadInstrs);
    mix(s.barriers);
    mix(s.ctasExecuted);
    for (u64 n : s.issuedByOp)
        mix(n);
    mix(s.conflictPenaltyCycles);
    mix(s.tagSerializationCycles);
    mix(s.sharedReadBytes);
    mix(s.sharedWriteBytes);
    mix(s.cacheReadBytes);
    mix(s.cacheWriteBytes);
    mix(s.sched.deschedules);
    mix(s.sched.activations);
    mix(s.rf.mrfReads);
    mix(s.rf.mrfWrites);
    mix(s.rf.descheduleWritebacks);
    mix(s.dramSectors());
    return h;
}

std::string
fingerprint(const std::string& name, DesignKind design)
{
    std::unique_ptr<KernelModel> kernel = createBenchmark(name, kScale);
    RunSpec spec;
    spec.design = design;
    SimResult r = simulate(*kernel, spec);
    std::ostringstream os;
    os << name << ' ' << designName(design) << " cycles=" << r.sm.cycles
       << " instrs=" << r.sm.warpInstrs << " hash=" << std::hex
       << statsHash(r.sm) << std::dec;
    return os.str();
}

TEST(SoaParity, AllKernelsBothDesignsMatchGolden)
{
    std::vector<std::string> lines;
    for (const BenchmarkInfo& info : allBenchmarks()) {
        lines.push_back(fingerprint(info.name, DesignKind::Partitioned));
        lines.push_back(fingerprint(info.name, DesignKind::Unified));
    }

    if (std::getenv("UNIMEM_UPDATE_GOLDEN") != nullptr) {
        std::ofstream out(goldenPath());
        ASSERT_TRUE(out.good()) << "cannot write " << goldenPath();
        out << "# Per-kernel simulation fingerprints pinned across the\n"
            << "# SoA hot-state refactor; regenerate with\n"
            << "# UNIMEM_UPDATE_GOLDEN=1 ./build/tests/test_soa_state\n"
            << "# kernel design cycles instrs hash\n";
        for (const std::string& l : lines)
            out << l << '\n';
        GTEST_SKIP() << "golden regenerated at " << goldenPath();
    }

    std::ifstream in(goldenPath());
    ASSERT_TRUE(in.good())
        << "missing " << goldenPath()
        << " - regenerate with UNIMEM_UPDATE_GOLDEN=1";
    std::vector<std::string> golden;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        golden.push_back(line);
    }
    ASSERT_EQ(golden.size(), lines.size());
    for (size_t i = 0; i < lines.size(); ++i)
        EXPECT_EQ(lines[i], golden[i]) << "kernel point " << i;
}

/**
 * The shadow audit (UNIMEM_SOA_AUDIT=1, Debug builds) cross-checks the
 * SoA arrays against the cold per-warp state at every quantum boundary.
 * It must not perturb a single exported statistic, and a clean run over
 * scheduler-heavy kernels doubles as the audit's own smoke test (any
 * SoA/cold divergence panics).
 */
TEST(SoaParity, AuditMatchesUnaudited)
{
    const char* kernels[] = {"dgemm", "bfs", "needle"};
    for (const char* name : kernels) {
        for (DesignKind design :
             {DesignKind::Partitioned, DesignKind::Unified}) {
            std::unique_ptr<KernelModel> kernel =
                createBenchmark(name, kScale);
            RunSpec spec;
            spec.design = design;

            ASSERT_EQ(unsetenv("UNIMEM_SOA_AUDIT"), 0);
            SimResult plain = simulate(*kernel, spec);
            ASSERT_EQ(setenv("UNIMEM_SOA_AUDIT", "1", 1), 0);
            SimResult audited = simulate(*kernel, spec);
            ASSERT_EQ(unsetenv("UNIMEM_SOA_AUDIT"), 0);

            EXPECT_TRUE(identicalResults(plain, audited))
                << name << " under audit diverged";
        }
    }
}

} // namespace
} // namespace unimem
