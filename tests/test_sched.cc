/**
 * @file
 * Unit tests for the scheduling layer: scoreboard dependence tracking,
 * two-level warp scheduler state machine, and CTA occupancy calculation
 * for the partitioned and unified designs.
 */

#include <gtest/gtest.h>

#include "sched/occupancy.hh"
#include "sched/scoreboard.hh"
#include "sched/two_level_scheduler.hh"

namespace unimem {
namespace {

TEST(Scoreboard, ReadyCycleTracksRawAndWaw)
{
    Scoreboard sb;
    sb.setPending(3, 100, false);
    EXPECT_EQ(sb.readyCycle(instr::alu(1, 3)), 100u);  // RAW
    EXPECT_EQ(sb.readyCycle(instr::alu(3, 1)), 100u);  // WAW
    EXPECT_EQ(sb.readyCycle(instr::alu(5, 6)), 0u);
}

TEST(Scoreboard, LongLatencyFlagLifecycle)
{
    Scoreboard sb;
    sb.setPending(3, 500, true);
    EXPECT_TRUE(sb.dependsOnLongLatency(instr::alu(1, 3)));
    EXPECT_TRUE(sb.anyLongLatencyPending());
    sb.clearPending(3);
    EXPECT_FALSE(sb.dependsOnLongLatency(instr::alu(1, 3)));
    EXPECT_FALSE(sb.anyLongLatencyPending());
}

TEST(Scoreboard, WawOverPendingLongOpKeepsCount)
{
    Scoreboard sb;
    sb.setPending(3, 500, true);
    sb.setPending(3, 600, true); // WAW overwrite
    EXPECT_TRUE(sb.anyLongLatencyPending());
    sb.clearPending(3);
    EXPECT_FALSE(sb.anyLongLatencyPending());
}

TEST(Scoreboard, ResetClearsEverything)
{
    Scoreboard sb;
    sb.setPending(1, 9, true);
    sb.reset();
    EXPECT_EQ(sb.readyCycle(instr::alu(0, 1)), 0u);
    EXPECT_FALSE(sb.anyLongLatencyPending());
}

TEST(TwoLevelScheduler, ActiveSetCapped)
{
    TwoLevelScheduler s(4);
    for (u32 w = 0; w < 8; ++w)
        s.addWarp(w);
    EXPECT_EQ(s.activeWarps().size(), 4u);
    EXPECT_EQ(s.numResident(), 8u);
    for (u32 w = 0; w < 4; ++w)
        EXPECT_TRUE(s.isActive(w));
    EXPECT_FALSE(s.isActive(5));
}

TEST(TwoLevelScheduler, DeschedulePromotesEligible)
{
    TwoLevelScheduler s(2);
    s.addWarp(0);
    s.addWarp(1);
    s.addWarp(2); // eligible, waiting for a slot
    s.deschedule(0);
    EXPECT_FALSE(s.isActive(0));
    EXPECT_TRUE(s.isActive(2));
    EXPECT_EQ(s.stats().deschedules, 1u);
}

TEST(TwoLevelScheduler, SignalEligibleReactivates)
{
    TwoLevelScheduler s(2);
    s.addWarp(0);
    s.addWarp(1);
    s.deschedule(0);
    EXPECT_EQ(s.activeWarps().size(), 1u);
    s.signalEligible(0);
    EXPECT_TRUE(s.isActive(0)); // slot was free
    // Double signal is harmless.
    s.signalEligible(0);
    EXPECT_EQ(s.activeWarps().size(), 2u);
}

TEST(TwoLevelScheduler, RoundRobinIsFair)
{
    TwoLevelScheduler s(4);
    for (u32 w = 0; w < 4; ++w)
        s.addWarp(w);
    std::vector<u32> picks;
    for (int i = 0; i < 8; ++i)
        picks.push_back(s.pickIssue([](u32) { return true; }));
    for (u32 w = 0; w < 4; ++w) {
        EXPECT_EQ(picks[w], w);
        EXPECT_EQ(picks[w + 4], w);
    }
}

TEST(TwoLevelScheduler, PickSkipsNotReady)
{
    TwoLevelScheduler s(4);
    for (u32 w = 0; w < 3; ++w)
        s.addWarp(w);
    u32 pick = s.pickIssue([](u32 w) { return w == 2; });
    EXPECT_EQ(pick, 2u);
    pick = s.pickIssue([](u32) { return false; });
    EXPECT_EQ(pick, TwoLevelScheduler::kNone);
}

TEST(TwoLevelScheduler, RetireFreesSlot)
{
    TwoLevelScheduler s(2);
    for (u32 w = 0; w < 3; ++w)
        s.addWarp(w);
    s.retire(0);
    EXPECT_EQ(s.numResident(), 2u);
    EXPECT_TRUE(s.isActive(2)); // promoted
}

// ---- Occupancy -------------------------------------------------------

KernelParams
kernelWith(u32 regs, u32 sharedPerCta, u32 ctaThreads = 256)
{
    KernelParams kp;
    kp.name = "test";
    kp.regsPerThread = regs;
    kp.sharedBytesPerCta = sharedPerCta;
    kp.ctaThreads = ctaThreads;
    kp.gridCtas = 64;
    return kp;
}

TEST(Occupancy, BaselineFullOccupancy)
{
    // 20 regs x 256 thr x 4B = 20KB/CTA -> RF allows 12; threads cap 4.
    LaunchConfig lc = occupancyPartitioned(kernelWith(20, 0), 256_KB,
                                           64_KB);
    ASSERT_TRUE(lc.feasible);
    EXPECT_EQ(lc.threads, 1024u);
    EXPECT_EQ(lc.ctas, 4u);
    EXPECT_EQ(lc.regsPerThread, 20u);
    EXPECT_DOUBLE_EQ(lc.spillMultiplier, 1.0);
}

TEST(Occupancy, RegisterLimited)
{
    // dgemm-like: 57 regs -> 57KB/CTA; 256KB RF fits 4 CTAs; shared
    // 17KB/CTA on 64KB fits only 3.
    LaunchConfig lc = occupancyPartitioned(kernelWith(57, 17024), 256_KB,
                                           64_KB);
    ASSERT_TRUE(lc.feasible);
    EXPECT_EQ(lc.ctas, 3u);
    EXPECT_EQ(lc.threads, 768u);
}

TEST(Occupancy, SharedLimitedNeedle)
{
    // needle BF=32: 8712B/CTA of 32 threads; 64KB shared -> 7 CTAs.
    LaunchConfig lc = occupancyPartitioned(kernelWith(18, 8712, 32),
                                           256_KB, 64_KB);
    ASSERT_TRUE(lc.feasible);
    EXPECT_EQ(lc.ctas, 7u);
    EXPECT_EQ(lc.threads, 224u);
}

TEST(Occupancy, RegsOverrideBelowNeedInducesSpills)
{
    KernelParams kp = kernelWith(32, 0);
    kp.spillCurve = SpillCurve({{18, 1.4}, {32, 1.0}});
    LaunchConfig lc = occupancyPartitioned(kp, 256_KB, 64_KB, 1024, 18);
    ASSERT_TRUE(lc.feasible);
    EXPECT_EQ(lc.regsPerThread, 18u);
    EXPECT_DOUBLE_EQ(lc.spillMultiplier, 1.4);
}

TEST(Occupancy, RegsOverrideAboveNeedNoSpills)
{
    KernelParams kp = kernelWith(20, 0);
    kp.spillCurve = SpillCurve({{18, 1.2}, {24, 1.0}});
    LaunchConfig lc = occupancyPartitioned(kp, 256_KB, 64_KB, 1024, 64);
    ASSERT_TRUE(lc.feasible);
    EXPECT_EQ(lc.regsPerThread, 64u);
    EXPECT_DOUBLE_EQ(lc.spillMultiplier, 1.0);
}

TEST(Occupancy, CompilerSpillsWhenRfTooSmallForOneCta)
{
    KernelParams kp = kernelWith(64, 0);
    kp.spillCurve = SpillCurve({{18, 1.5}, {64, 1.0}});
    // 16KB RF: 64 regs x 256 x 4 = 64KB does not fit; spills down to 16.
    LaunchConfig lc = occupancyPartitioned(kp, 16_KB, 64_KB);
    ASSERT_TRUE(lc.feasible);
    EXPECT_EQ(lc.regsPerThread, 16u);
    EXPECT_GT(lc.spillMultiplier, 1.0);
}

TEST(Occupancy, ThreadLimitCapsCtas)
{
    LaunchConfig lc =
        occupancyPartitioned(kernelWith(16, 0), 256_KB, 64_KB, 512);
    ASSERT_TRUE(lc.feasible);
    EXPECT_EQ(lc.threads, 512u);
}

TEST(Occupancy, UnifiedLeftoverBecomesCache)
{
    // bfs-like: 9 regs, no shared; 384KB unified.
    UnifiedLaunch ul = occupancyUnified(kernelWith(9, 0), 384_KB);
    ASSERT_TRUE(ul.launch.feasible);
    EXPECT_EQ(ul.launch.threads, 1024u);
    EXPECT_EQ(ul.launch.rfBytes, 1024u * 9 * 4);
    EXPECT_EQ(ul.cacheBytes, 384_KB - 1024u * 9 * 4);
}

TEST(Occupancy, UnifiedDgemmFitsFullOccupancy)
{
    // Paper Figure 8: dgemm at 384KB -> 228KB RF + ~66KB shared + rest.
    UnifiedLaunch ul = occupancyUnified(kernelWith(57, 17024), 384_KB);
    ASSERT_TRUE(ul.launch.feasible);
    EXPECT_EQ(ul.launch.threads, 1024u);
    EXPECT_EQ(ul.launch.rfBytes, 1024u * 57 * 4); // 228KB
    EXPECT_EQ(ul.launch.sharedBytes, 4u * 17024);
    EXPECT_EQ(ul.cacheBytes,
              384_KB - 1024u * 57 * 4 - 4u * 17024);
}

TEST(Occupancy, UnifiedNeedleTradesCacheForThreads)
{
    // needle BF=32 at 384KB: all 32 CTAs fit, shared = 272KB.
    UnifiedLaunch ul = occupancyUnified(kernelWith(18, 8712, 32), 384_KB);
    ASSERT_TRUE(ul.launch.feasible);
    EXPECT_EQ(ul.launch.threads, 1024u);
    EXPECT_EQ(ul.launch.sharedBytes, 32u * 8712);
}

TEST(Occupancy, UnifiedInfeasibleWhenSharedAloneTooBig)
{
    UnifiedLaunch ul = occupancyUnified(kernelWith(16, 200000), 128_KB);
    EXPECT_FALSE(ul.launch.feasible);
}

TEST(Occupancy, UnifiedSmallCapacitySpillsRegisters)
{
    // 57-reg kernel at 64KB unified: one CTA at 57 regs needs 58KB+17KB;
    // the compiler spills down so one CTA fits.
    UnifiedLaunch ul = occupancyUnified(kernelWith(57, 17024), 64_KB);
    ASSERT_TRUE(ul.launch.feasible);
    EXPECT_LT(ul.launch.regsPerThread, 57u);
    EXPECT_GE(ul.launch.regsPerThread, kMinRegsPerThread);
}

} // namespace
} // namespace unimem
