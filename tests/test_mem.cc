/**
 * @file
 * Unit tests for the memory substrates: coalescer, data cache, DRAM
 * bandwidth/latency model, and the bank-conflict counters.
 */

#include <gtest/gtest.h>

#include "mem/bank_conflicts.hh"
#include "mem/cache.hh"
#include "mem/coalescer.hh"
#include "mem/dram.hh"

namespace unimem {
namespace {

WarpInstr
loadAt(std::array<Addr, kWarpWidth> addrs, u8 bytes = 4,
       u32 mask = 0xffffffffu)
{
    WarpInstr in = instr::mem(Opcode::LdGlobal, 1, 0, mask);
    in.addr = addrs;
    in.accessBytes = bytes;
    return in;
}

TEST(Coalescer, UnitStrideIsOneLine)
{
    std::array<Addr, kWarpWidth> a{};
    for (u32 i = 0; i < kWarpWidth; ++i)
        a[i] = 0x1000 + i * 4;
    auto out = coalesce(loadAt(a));
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].lineAddr, 0x1000u);
    EXPECT_EQ(out[0].sectorMask, 0x0f);
    EXPECT_EQ(out[0].numSectors(), 4u);
    EXPECT_EQ(out[0].bytesTouched, 128u);
}

TEST(Coalescer, StridedTouchesPartialSectors)
{
    // 16-byte stride: 4 lines, every sector touched by 2 lanes.
    std::array<Addr, kWarpWidth> a{};
    for (u32 i = 0; i < kWarpWidth; ++i)
        a[i] = i * 16;
    auto out = coalesce(loadAt(a));
    ASSERT_EQ(out.size(), 4u);
    for (const auto& acc : out) {
        EXPECT_EQ(acc.numSectors(), 4u);
        EXPECT_EQ(acc.bytesTouched, 32u);
    }
}

TEST(Coalescer, BroadcastIsSingleSector)
{
    std::array<Addr, kWarpWidth> a{};
    a.fill(0x2000);
    auto out = coalesce(loadAt(a));
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].numSectors(), 1u);
}

TEST(Coalescer, RespectsActiveMask)
{
    std::array<Addr, kWarpWidth> a{};
    for (u32 i = 0; i < kWarpWidth; ++i)
        a[i] = i * 128; // one line each
    auto out = coalesce(loadAt(a, 4, 0x3)); // only lanes 0, 1
    EXPECT_EQ(out.size(), 2u);
}

TEST(Coalescer, ColumnAccessOverfetch)
{
    // 8KB-stride column: 32 distinct lines, 4 bytes used per line.
    std::array<Addr, kWarpWidth> a{};
    for (u32 i = 0; i < kWarpWidth; ++i)
        a[i] = static_cast<Addr>(i) * 8192;
    auto out = coalesce(loadAt(a));
    EXPECT_EQ(out.size(), 32u);
    for (const auto& acc : out)
        EXPECT_EQ(acc.numSectors(), 1u);
}

TEST(Cache, HitAfterFill)
{
    DataCache c(64_KB);
    EXPECT_FALSE(c.read(0x1000 & ~127ull));
    c.fill(0x1000 & ~127ull);
    EXPECT_TRUE(c.read(0x1000 & ~127ull));
    EXPECT_EQ(c.stats().readHits, 1u);
    EXPECT_EQ(c.stats().readMisses, 1u);
}

TEST(Cache, ZeroCapacityAlwaysMisses)
{
    DataCache c(0);
    EXPECT_FALSE(c.enabled());
    EXPECT_FALSE(c.read(0));
    c.fill(0);
    EXPECT_FALSE(c.read(0));
}

TEST(Cache, LruEvictionWithinSet)
{
    // Tiny cache: 4 lines, 4-way = 1 set.
    DataCache c(512, 4);
    ASSERT_EQ(c.numSets(), 1u);
    for (Addr l = 0; l < 4; ++l)
        c.fill(l * 128);
    EXPECT_TRUE(c.read(0)); // touch line 0: now MRU
    c.fill(4 * 128);        // evicts LRU (line 1)
    EXPECT_TRUE(c.contains(0));
    EXPECT_FALSE(c.contains(128));
    EXPECT_TRUE(c.contains(4 * 128));
}

TEST(Cache, WriteThroughNeverAllocates)
{
    DataCache c(64_KB);
    EXPECT_FALSE(c.write(0x80));
    EXPECT_FALSE(c.contains(0x80));
    c.fill(0x80);
    EXPECT_TRUE(c.write(0x80));
    EXPECT_EQ(c.stats().writeHits, 1u);
    EXPECT_EQ(c.stats().writeMisses, 1u);
}

TEST(Cache, InvalidateAllDropsEverything)
{
    DataCache c(8_KB);
    for (Addr l = 0; l < 16; ++l)
        c.fill(l * 128);
    c.invalidateAll();
    for (Addr l = 0; l < 16; ++l)
        EXPECT_FALSE(c.contains(l * 128));
}

TEST(Cache, OddCapacityUsesAllLines)
{
    // 88KB leftover from the allocator: sets round to a power of two and
    // associativity absorbs the remainder.
    DataCache c(88_KB);
    EXPECT_TRUE(c.enabled());
    u64 lines = 0;
    for (Addr l = 0; l < 88_KB / 128; ++l) {
        c.fill(l * 128);
        ++lines;
    }
    u64 resident = 0;
    for (Addr l = 0; l < lines; ++l)
        if (c.contains(l * 128))
            ++resident;
    // All capacity usable: nothing was evicted while filling once.
    EXPECT_EQ(resident, lines);
}

TEST(Dram, LatencyAndBandwidth)
{
    DramModel d(8, 400);
    // One 128B line = 4 sectors = 128B / 8Bpc = 16 cycles + latency.
    Cycle r = d.read(0, 4);
    EXPECT_EQ(r, 16u + 400u);
    EXPECT_EQ(d.stats().readSectors, 4u);
    EXPECT_EQ(d.nextFree(), 16u);
}

TEST(Dram, BackToBackRequestsSerialize)
{
    DramModel d(8, 400);
    Cycle r1 = d.read(0, 4);
    Cycle r2 = d.read(0, 4);
    EXPECT_EQ(r2 - r1, 16u); // second waits for bandwidth
}

TEST(Dram, WritesArePostedButConsumeBandwidth)
{
    DramModel d(8, 400);
    Cycle w = d.write(0, 1); // 32B -> 4 cycles
    EXPECT_EQ(w, 4u);
    Cycle r = d.read(0, 1);
    EXPECT_EQ(r, 4u + 4u + 400u);
    EXPECT_EQ(d.stats().writeSectors, 1u);
}

TEST(Dram, IdleGapResets)
{
    DramModel d(8, 400);
    d.read(0, 4);
    Cycle r = d.read(1000, 4);
    EXPECT_EQ(r, 1000u + 16u + 400u);
}

TEST(BankAccessCounter, PenaltyIsMaxMinusOne)
{
    BankAccessCounter c;
    EXPECT_EQ(c.penalty(), 0u);
    c.add(3);
    EXPECT_EQ(c.penalty(), 0u);
    c.add(3);
    c.add(5);
    EXPECT_EQ(c.maxCount(), 2u);
    EXPECT_EQ(c.penalty(), 1u);
    EXPECT_EQ(c.total(), 3u);
    c.reset();
    EXPECT_EQ(c.maxCount(), 0u);
}

TEST(ConflictHistogram, BucketsAndFractions)
{
    ConflictHistogram h;
    h.record(0);
    h.record(1);
    h.record(2);
    h.record(4);
    h.record(9);
    EXPECT_EQ(h.total(), 5u);
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(3), 1u);
    EXPECT_EQ(h.bucket(4), 1u);
    EXPECT_DOUBLE_EQ(h.fraction(0), 0.4);

    ConflictHistogram h2;
    h2.record(1);
    h.merge(h2);
    EXPECT_EQ(h.total(), 6u);
    EXPECT_EQ(h.bucket(0), 3u);
}

} // namespace
} // namespace unimem
