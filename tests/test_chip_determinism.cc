/**
 * @file
 * Determinism tier for the parallel bound-weave chip engine
 * (DESIGN.md Section 10): the worker count must never change any
 * simulation result, bit for bit.
 *
 *  - worker sweep: 1/2/4/8-worker chip runs over a regular
 *    (vectoradd), an irregular (bfs), and a barrier-heavy (needle)
 *    kernel compared field-by-field against the 1-worker reference
 *  - quantum audit: which chip stats are quantum-invariant (work
 *    done) and which legitimately move (multi-SM contention timing)
 *  - symmetric-grid skew: a seed-independent compute-only kernel
 *    must finish on every SM at the same cycle (zero skew, zero
 *    imbalance)
 *  - randomized stress: random ChipConfigs re-run with two different
 *    worker counts must agree exactly; also run under the
 *    ThreadSanitizer gate (scripts/check.sh --tsan-only)
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <mutex>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "common/ownership.hh"
#include "kernels/registry.hh"
#include "sim/simulator.hh"
#include "sm/chip.hh"

namespace unimem {
namespace {

SmRunConfig
smConfigFor(const KernelModel& k)
{
    SmRunConfig cfg;
    cfg.partition = baselinePartition();
    cfg.launch = occupancyPartitioned(k.params(), cfg.partition.rfBytes,
                                      cfg.partition.sharedBytes);
    return cfg;
}

/**
 * Everything a chip run computes, minus fields that are allowed to
 * depend on the host (workersUsed) or on nothing at all. Two runs of
 * the same ChipConfig must produce equal fingerprints no matter how
 * many bound-phase workers either used.
 */
struct ChipFingerprint
{
    Cycle cycles = 0;
    u64 dramSectors = 0;
    u64 texDramSectors = 0;
    u64 windows = 0;
    u64 boundPasses = 0;
    u64 weaveRequests = 0;
    u64 weaveStallCycles = 0;
    u64 smQuantaRun = 0;
    u64 smQuantaSkipped = 0;
    std::vector<u64> perSmSectors;
    std::vector<std::map<std::string, double>> smStats;

    bool
    operator==(const ChipFingerprint& o) const
    {
        return cycles == o.cycles && dramSectors == o.dramSectors &&
               texDramSectors == o.texDramSectors &&
               windows == o.windows && boundPasses == o.boundPasses &&
               weaveRequests == o.weaveRequests &&
               weaveStallCycles == o.weaveStallCycles &&
               smQuantaRun == o.smQuantaRun &&
               smQuantaSkipped == o.smQuantaSkipped &&
               perSmSectors == o.perSmSectors && smStats == o.smStats;
    }
};

ChipFingerprint
fingerprint(const ChipStats& cs)
{
    ChipFingerprint fp;
    fp.cycles = cs.cycles;
    fp.dramSectors = cs.dram.sectors();
    fp.texDramSectors = cs.texDram.sectors();
    fp.windows = cs.windows;
    fp.boundPasses = cs.boundPasses;
    fp.weaveRequests = cs.weaveRequests;
    fp.weaveStallCycles = cs.weaveStallCycles;
    fp.smQuantaRun = cs.smQuantaRun;
    fp.smQuantaSkipped = cs.smQuantaSkipped;
    fp.perSmSectors = cs.perSmDramSectors;
    for (const SmStats& s : cs.sms)
        fp.smStats.push_back(s.toStatSet().entries());
    return fp;
}

ChipFingerprint
runChip(const ChipConfig& cfg, const std::string& kernel, double scale)
{
    auto k = createBenchmark(kernel, scale);
    ChipModel chip(cfg, *k);
    return fingerprint(chip.run());
}

// ---- Worker-count invariance: the core determinism contract -----------

TEST(ChipDeterminism, WorkerCountBitIdentical_1_2_4_8)
{
    struct Workload
    {
        const char* name;
        double scale;
    };
    // Regular streaming, irregular data-dependent, and barrier-heavy
    // traffic shapes; each stresses a different bound-weave path.
    const Workload workloads[] = {
        {"vectoradd", 0.05}, {"bfs", 0.04}, {"needle", 0.04}};

    for (const Workload& w : workloads) {
        auto k = createBenchmark(w.name, w.scale);
        ChipConfig cfg;
        cfg.numSms = 8;
        cfg.sm = smConfigFor(*k);
        cfg.chipDramBytesPerCycle = 8 * cfg.sm.dramBytesPerCycle;

        cfg.workers = 1;
        ChipFingerprint reference = runChip(cfg, w.name, w.scale);
        for (u32 workers : {2u, 4u, 8u}) {
            cfg.workers = workers;
            EXPECT_TRUE(runChip(cfg, w.name, w.scale) == reference)
                << w.name << " diverges with " << workers << " workers";
        }
    }
}

// ---- Ownership audit: bound-phase isolation by construction -----------

std::mutex gViolationMu;
std::vector<ownership::Violation> gViolations;

void
collectViolation(const ownership::Violation& v)
{
    std::lock_guard<std::mutex> lk(gViolationMu);
    gViolations.push_back(v);
}

TEST(ChipDeterminism, OwnershipAuditCleanAcrossWorkerCounts)
{
    // Bit-identical fingerprints prove the weave *result* is invariant;
    // the ownership auditor proves the *process* is data-isolated: no
    // SM touches another SM's DRAM queue or a weave-only entry point
    // during the bound phase, at any worker count.
    bool prevAuditing = ownership::auditing();
    ownership::Handler prev =
        ownership::setViolationHandler(collectViolation);
    ownership::setAuditing(true);
    {
        std::lock_guard<std::mutex> lk(gViolationMu);
        gViolations.clear();
    }
    u64 checksBefore = ownership::checksPerformed();

    auto k = createBenchmark("vectoradd", 0.05);
    ChipConfig cfg;
    cfg.numSms = 8;
    cfg.sm = smConfigFor(*k);
    cfg.chipDramBytesPerCycle = 8 * cfg.sm.dramBytesPerCycle;
    for (u32 workers : {1u, 2u, 4u, 8u}) {
        cfg.workers = workers;
        runChip(cfg, "vectoradd", 0.05);
    }

    ownership::setAuditing(prevAuditing);
    ownership::setViolationHandler(prev);

    EXPECT_GT(ownership::checksPerformed(), checksBefore)
        << "the audited run must actually exercise ownership checks";
    std::lock_guard<std::mutex> lk(gViolationMu);
    for (const ownership::Violation& v : gViolations)
        ADD_FAILURE() << v.str();
    EXPECT_TRUE(gViolations.empty());
}

TEST(ChipDeterminism, WorkerCountResolution)
{
    EXPECT_EQ(ChipModel::resolveWorkerCount(3, 8), 3u);
    EXPECT_EQ(ChipModel::resolveWorkerCount(16, 4), 4u)
        << "workers are capped to the SM count";
    u32 resolved = ChipModel::resolveWorkerCount(0, 8);
    EXPECT_GE(resolved, 1u);
    EXPECT_LE(resolved, 8u);

    // 0 resolves through the UNIMEM_CHIP_JOBS environment variable.
    const char* saved = std::getenv("UNIMEM_CHIP_JOBS");
    std::string savedCopy = saved ? saved : "";
    setenv("UNIMEM_CHIP_JOBS", "6", 1);
    EXPECT_EQ(ChipModel::resolveWorkerCount(0, 16), 6u);
    EXPECT_EQ(ChipModel::resolveWorkerCount(0, 4), 4u);
    if (saved)
        setenv("UNIMEM_CHIP_JOBS", savedCopy.c_str(), 1);
    else
        unsetenv("UNIMEM_CHIP_JOBS");
}

// ---- Quantum audit: what may and may not move with the quantum --------

TEST(ChipDeterminism, QuantumSweepAuditsInvariantWork)
{
    // The quantum controls how coarsely the weave interleaves multi-SM
    // DRAM traffic, so *timing* (cycles, stall accounting) may shift
    // between quanta. The *work* each SM performs is a function of its
    // trace alone and must not: warp instructions, barriers, CTAs, and
    // the total replayed request count all stay fixed.
    auto k = createBenchmark("sgemv", 0.05);
    ChipConfig cfg;
    cfg.numSms = 4;
    cfg.sm = smConfigFor(*k);
    cfg.chipDramBytesPerCycle = 4 * cfg.sm.dramBytesPerCycle;

    struct WorkAudit
    {
        u64 warpInstrs = 0;
        u64 barriers = 0;
        u64 ctas = 0;
        u64 weaveRequests = 0;
        Cycle cycles = 0;
    };
    std::vector<WorkAudit> audits;
    for (Cycle quantum : {16ull, 64ull, 256ull}) {
        cfg.quantum = quantum;
        auto kq = createBenchmark("sgemv", 0.05);
        ChipModel chip(cfg, *kq);
        const ChipStats& cs = chip.run();
        WorkAudit a;
        a.warpInstrs = cs.warpInstrs();
        for (const SmStats& s : cs.sms) {
            a.barriers += s.barriers;
            a.ctas += s.ctasExecuted;
        }
        a.weaveRequests = cs.weaveRequests;
        a.cycles = cs.cycles;
        audits.push_back(a);

        std::ostringstream os;
        os << "quantum " << quantum << ": " << cs.cycles << " cycles, "
           << cs.windows << " windows, " << cs.boundPasses
           << " bound passes, utilization "
           << cs.quantumUtilization();
        RecordProperty("quantum_" + std::to_string(quantum), os.str());
        std::cout << "[ audit    ] " << os.str() << "\n";
    }
    for (size_t i = 1; i < audits.size(); ++i) {
        EXPECT_EQ(audits[i].warpInstrs, audits[0].warpInstrs);
        EXPECT_EQ(audits[i].barriers, audits[0].barriers);
        EXPECT_EQ(audits[i].ctas, audits[0].ctas);
        EXPECT_EQ(audits[i].weaveRequests, audits[0].weaveRequests);
    }
}

// ---- Symmetric grids finish together ----------------------------------

/** Compute-only kernel that ignores the per-SM trace seed entirely. */
class SymmetricKernel : public KernelModel
{
  public:
    SymmetricKernel()
    {
        kp_.name = "symmetric";
        kp_.regsPerThread = 16;
        kp_.sharedBytesPerCta = 0;
        kp_.ctaThreads = 2 * kWarpWidth;
        kp_.gridCtas = 6;
    }

    const KernelParams& params() const override { return kp_; }

    std::unique_ptr<WarpProgram>
    warpProgram(const WarpCtx&) const override
    {
        std::vector<WarpInstr> prog;
        for (int rep = 0; rep < 40; ++rep) {
            prog.push_back(instr::alu(2, 0, 1));
            prog.push_back(instr::alu(3, 2, 1, kInvalidReg, true));
            prog.push_back(instr::sfu(4, 3));
            prog.push_back(instr::bar());
        }
        return std::make_unique<FixedProgram>(prog);
    }

  private:
    KernelParams kp_;
};

TEST(ChipDeterminism, SymmetricGridHasZeroSkew)
{
    // Identical per-SM traces with no shared-resource traffic must
    // finish in lockstep: per-SM completion cycles equal, zero finish
    // skew, zero load imbalance.
    SymmetricKernel k;
    ChipConfig cfg;
    cfg.numSms = 4;
    cfg.sm = smConfigFor(k);
    cfg.chipDramBytesPerCycle = 4 * cfg.sm.dramBytesPerCycle;
    ChipModel chip(cfg, k);
    const ChipStats& cs = chip.run();

    ASSERT_EQ(cs.sms.size(), 4u);
    for (const SmStats& s : cs.sms)
        EXPECT_EQ(s.cycles, cs.sms[0].cycles);
    EXPECT_EQ(cs.finishSkew(), 0u);
    EXPECT_DOUBLE_EQ(cs.loadImbalance(), 0.0);
    for (u64 sectors : cs.perSmDramSectors)
        EXPECT_EQ(sectors, 0u) << "compute-only kernel hit DRAM";
    for (const SmStats& s : cs.sms)
        EXPECT_EQ(s.toStatSet().entries(),
                  cs.sms[0].toStatSet().entries());
}

TEST(ChipDeterminism, SkewBookkeepingIsConsistent)
{
    auto k = createBenchmark("bfs", 0.04);
    ChipConfig cfg;
    cfg.numSms = 3;
    cfg.sm = smConfigFor(*k);
    cfg.chipDramBytesPerCycle = 3 * cfg.sm.dramBytesPerCycle;
    ChipModel chip(cfg, *k);
    const ChipStats& cs = chip.run();
    EXPECT_EQ(cs.finishSkew(), cs.maxSmCycles() - cs.minSmCycles());
    EXPECT_GE(cs.loadImbalance(), 0.0);
    for (const SmStats& s : cs.sms)
        EXPECT_GT(s.cycles, 0u) << "per-SM completion cycle missing";
}

// ---- Randomized configuration stress ----------------------------------

TEST(ChipDeterminism, RandomConfigsAgreeAcrossWorkerCounts)
{
    // Fixed seed: the "random" configurations are the same every run,
    // so a failure here is reproducible. Each configuration runs twice
    // with independently drawn worker counts; the fingerprints must
    // match exactly. scripts/check.sh --tsan-only replays this whole
    // binary under ThreadSanitizer to catch races the equality check
    // cannot see.
    std::mt19937 rng(12345);
    const char* kernels[] = {"vectoradd", "bfs"};
    const Cycle quanta[] = {16, 64, 256, 1024};

    for (int iter = 0; iter < 8; ++iter) {
        ChipConfig cfg;
        cfg.numSms = 1 + static_cast<u32>(rng() % 32);
        cfg.chipDramBytesPerCycle = 8u << (rng() % 6);
        cfg.quantum = quanta[rng() % 4];
        const char* kernel = kernels[iter % 2];
        auto k = createBenchmark(kernel, 0.02);
        cfg.sm = smConfigFor(*k);

        cfg.workers = 1 + static_cast<u32>(rng() % 8);
        ChipFingerprint a = runChip(cfg, kernel, 0.02);
        u32 workersA = cfg.workers;
        cfg.workers = 1 + static_cast<u32>(rng() % 8);
        ChipFingerprint b = runChip(cfg, kernel, 0.02);

        EXPECT_TRUE(a == b)
            << "iter " << iter << " (" << kernel << ", " << cfg.numSms
            << " SMs, " << cfg.chipDramBytesPerCycle << " B/cyc, "
            << "quantum " << cfg.quantum << "): " << workersA << " vs "
            << cfg.workers << " workers diverge";

        // Structural invariants of any chip run.
        EXPECT_EQ(a.perSmSectors.size(), cfg.numSms);
        EXPECT_EQ(a.smStats.size(), cfg.numSms);
        u64 sectorSum = 0;
        for (u64 s : a.perSmSectors)
            sectorSum += s;
        EXPECT_EQ(sectorSum, a.dramSectors + a.texDramSectors)
            << "per-SM DRAM shares must add up to the chip traffic";
        EXPECT_GE(a.cycles, 1u);
        // Every window except the final all-finished one runs >= 1 SM.
        EXPECT_GE(a.smQuantaRun + 1, a.windows);
    }
}

} // namespace
} // namespace unimem
