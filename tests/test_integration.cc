/**
 * @file
 * End-to-end integration tests reproducing the paper's headline claims
 * at reduced workload scale:
 *  - no-benefit applications suffer negligibly from unification (Fig 7),
 *  - benefit applications gain performance and reduce DRAM traffic
 *    (Fig 9),
 *  - the Fermi-like limited design lands between the two (Fig 10),
 *  - the Section 4.5 allocation reproduces Figure 8's splits,
 *  - the RF hierarchy is the key enabler for unification (Section 6.1).
 */

#include <gtest/gtest.h>

#include "kernels/registry.hh"
#include "sim/experiments.hh"

namespace unimem {
namespace {

constexpr double kScale = 0.2; // keep integration runs quick

TEST(Integration, NeedleGainsLargeSpeedupFromSharedCapacity)
{
    SimResult base = runBaseline("needle", kScale);
    SimResult uni = runUnified("needle", kScale, 384_KB);
    // Partitioned: 64KB shared caps needle at 224 threads; unified runs
    // the full 1024.
    EXPECT_EQ(base.alloc.launch.threads, 224u);
    EXPECT_EQ(uni.alloc.launch.threads, 1024u);
    Comparison c = compare(uni, base);
    EXPECT_GT(c.speedup, 1.10);
    EXPECT_LT(c.energyRatio, 1.0);
}

TEST(Integration, BfsGainsFromLargeCache)
{
    SimResult base = runBaseline("bfs", kScale);
    SimResult uni = runUnified("bfs", kScale, 384_KB);
    EXPECT_EQ(uni.alloc.partition.cacheBytes, 348_KB);
    Comparison c = compare(uni, base);
    EXPECT_GT(c.speedup, 1.0);
    EXPECT_LT(c.dramRatio, 1.0); // fewer DRAM accesses (paper: -32%..)
}

TEST(Integration, DgemmGainsOccupancyNotCache)
{
    // dgemm's gain comes from CTA-wave granularity (4 vs 3 concurrent
    // CTAs), which needs several waves to show; run at a larger scale.
    SimResult base = runBaseline("dgemm", 0.75);
    SimResult uni = runUnified("dgemm", 0.75, 384_KB);
    EXPECT_GT(uni.alloc.launch.threads, base.alloc.launch.threads);
    Comparison c = compare(uni, base);
    EXPECT_GT(c.speedup, 1.0);
    // Paper: dgemm is the one benefit app with no DRAM reduction.
    EXPECT_NEAR(c.dramRatio, 1.0, 0.1);
}

TEST(Integration, BenefitSetImprovesOnAverage)
{
    double sum = 0;
    int n = 0;
    for (const std::string& name : benefitBenchmarkNames()) {
        // dgemm needs several CTA waves for its occupancy gain.
        double scale = name == "dgemm" ? 0.75 : kScale;
        SimResult base = runBaseline(name, scale);
        SimResult uni = runUnified(name, scale, 384_KB);
        Comparison c = compare(uni, base);
        EXPECT_GT(c.speedup, 0.99) << name;
        sum += c.speedup;
        ++n;
    }
    EXPECT_GT(sum / n, 1.05); // paper average: 1.16
}

TEST(Integration, NoBenefitSetHasSmallOverhead)
{
    // Paper Figure 7: |performance delta| < 1%; we allow 3% at reduced
    // scale. Spot-check a representative subset to keep runtime down.
    for (const char* name :
         {"vectoradd", "nbody", "aes", "dct8x8", "hotspot", "sto"}) {
        SimResult base = runBaseline(name, kScale);
        SimResult uni = runUnified(name, kScale, 384_KB);
        Comparison c = compare(uni, base);
        EXPECT_GT(c.speedup, 0.97) << name;
        EXPECT_LT(c.energyRatio, 1.05) << name;
    }
}

TEST(Integration, FermiLikeIsLimitedFlexibility)
{
    // For a cache-hungry benchmark the Fermi-like design improves on the
    // baseline but the fully unified design does at least as well.
    SimResult base = runBaseline("bfs", kScale);
    SimResult fermi = runFermiBest("bfs", kScale, 384_KB);
    SimResult uni = runUnified("bfs", kScale, 384_KB);
    double f = compare(fermi, base).speedup;
    double u = compare(uni, base).speedup;
    EXPECT_GT(f, 0.99);
    EXPECT_GE(u, f - 0.02);
    // Fermi-like keeps the register file fixed.
    EXPECT_EQ(fermi.alloc.partition.rfBytes, 256_KB);
}

TEST(Integration, AllocationNeverExceedsCapacity)
{
    for (u64 cap : {128_KB, 256_KB, 384_KB}) {
        for (const BenchmarkInfo& info : allBenchmarks()) {
            auto k = createBenchmark(info.name, 0.1);
            AllocationDecision d = allocateUnified(k->params(), cap);
            if (!d.launch.feasible)
                continue;
            EXPECT_LE(d.partition.rfBytes + d.partition.sharedBytes,
                      cap)
                << info.name;
            EXPECT_EQ(d.partition.total(), cap) << info.name;
        }
    }
}

TEST(Integration, RfHierarchyIsKeyEnabler)
{
    // Without the ORF/LRF, MRF traffic grows and unified arbitration
    // conflicts increase (paper Section 6.1).
    RunSpec with;
    with.design = DesignKind::Unified;
    with.unifiedCapacity = 384_KB;
    RunSpec without = with;
    without.rfHierarchy = false;

    SimResult rw = simulateBenchmark("pcr", kScale, with);
    SimResult rwo = simulateBenchmark("pcr", kScale, without);
    EXPECT_LT(rw.sm.rf.mrfAccesses(), rwo.sm.rf.mrfAccesses());
    EXPECT_GT(rw.sm.rf.reduction(), 0.35);
    EXPECT_LE(rw.sm.conflictPenaltyCycles, rwo.sm.conflictPenaltyCycles);
}

TEST(Integration, Table5ShapeHolds)
{
    // Most warp instructions access each bank at most once in both
    // designs; the unified design shifts slightly more instructions
    // into the >=2 buckets.
    double part_le1 = 0, uni_le1 = 0;
    int n = 0;
    for (const char* name : {"aes", "vectoradd", "hotspot", "sgemv"}) {
        RunSpec p;
        SimResult rp = simulateBenchmark(name, kScale, p);
        RunSpec u;
        u.design = DesignKind::Unified;
        SimResult ru = simulateBenchmark(name, kScale, u);
        part_le1 += rp.sm.conflictHist.fraction(0);
        uni_le1 += ru.sm.conflictHist.fraction(0);
        ++n;
    }
    part_le1 /= n;
    uni_le1 /= n;
    EXPECT_GT(part_le1, 0.90); // paper: 97.0%
    EXPECT_GT(uni_le1, 0.88);  // paper: 96.4%
    EXPECT_LE(uni_le1, part_le1 + 0.01);
}

TEST(Integration, DramColumnShapes)
{
    // Table 1 columns 10-12 qualitative shapes at reduced scale:
    // monotone non-increasing DRAM traffic with cache size for
    // cache-limited apps; large no-cache ratios for redundancy apps.
    auto dram_at = [&](const char* name, u64 cache) {
        RunSpec spec;
        spec.partition = MemoryPartition{256_KB, 64_KB, cache};
        return static_cast<double>(
            simulateBenchmark(name, kScale, spec).dramSectors());
    };
    for (const char* name : {"bfs", "nn", "vectoradd", "matrixmul"}) {
        double none = dram_at(name, 0);
        double small = dram_at(name, 64_KB);
        double big = dram_at(name, 256_KB);
        EXPECT_GT(none / big, 1.2) << name;
        EXPECT_GE(small / big, 0.95) << name;
    }
    // nn is the extreme case (paper: 20.8x without a cache).
    EXPECT_GT(dram_at("nn", 0) / dram_at("nn", 256_KB), 5.0);
}

TEST(Integration, ReconfigurationIsCheapWriteThrough)
{
    // Repartitioning between kernels only invalidates the (clean)
    // cache: verify a second run on the same SM-equivalent fresh state
    // produces identical results, i.e. no hidden dirty state.
    SimResult a = runUnified("sgemv", kScale, 256_KB);
    SimResult b = runUnified("sgemv", kScale, 256_KB);
    EXPECT_EQ(a.cycles(), b.cycles());
    EXPECT_EQ(a.dramSectors(), b.dramSectors());
}

} // namespace
} // namespace unimem
