/**
 * @file
 * Unit tests for the Section 5.2 energy model: Table 4 reproduction,
 * wiring overhead, leakage scaling, DRAM energy, and calibration.
 */

#include <gtest/gtest.h>

#include "energy/energy_model.hh"
#include "sim/simulator.hh"

namespace unimem {
namespace {

TEST(BankEnergy, ReproducesTable4)
{
    // Paper Table 4 (pJ per 16-byte access), tolerance 5%.
    EXPECT_NEAR(bankReadEnergy(8_KB) * 1e12, 9.8, 0.5);
    EXPECT_NEAR(bankWriteEnergy(8_KB) * 1e12, 11.8, 0.6);
    EXPECT_NEAR(bankReadEnergy(2_KB) * 1e12, 3.9, 0.2);
    EXPECT_NEAR(bankWriteEnergy(2_KB) * 1e12, 5.1, 0.3);
    EXPECT_NEAR(bankReadEnergy(12_KB) * 1e12, 12.1, 0.6);
    EXPECT_NEAR(bankWriteEnergy(12_KB) * 1e12, 14.9, 0.8);
}

TEST(BankEnergy, MonotonicInCapacity)
{
    double prev = 0;
    for (u64 kb = 1; kb <= 16; ++kb) {
        double e = bankReadEnergy(kb * 1024);
        EXPECT_GT(e, prev);
        prev = e;
    }
}

TEST(BankEnergy, WriteCostsMoreThanRead)
{
    for (u64 kb : {2, 4, 8, 12})
        EXPECT_GT(bankWriteEnergy(kb * 1024), bankReadEnergy(kb * 1024));
}

EnergyInputs
someInputs(DesignKind design)
{
    EnergyInputs in;
    in.design = design;
    in.partition = baselinePartition();
    in.cycles = 1000000;
    in.mrfReads = 400000;
    in.mrfWrites = 300000;
    in.sharedReadBytes = 10_MB;
    in.sharedWriteBytes = 5_MB;
    in.cacheReadBytes = 8_MB;
    in.cacheWriteBytes = 4_MB;
    in.dramBytes = 2_MB;
    return in;
}

TEST(EnergyModel, UnifiedPaysWiringOverheadOnDataOnly)
{
    EnergyParams p;
    EnergyInputs part = someInputs(DesignKind::Partitioned);
    EnergyInputs uni = someInputs(DesignKind::Unified);
    // Same partition sizes: unified banks are total/32 = 12KB.
    double e_part = bankAccessEnergy(part, p);
    double e_uni = bankAccessEnergy(uni, p);
    // Unified: bigger banks for data + wiring factor, bigger banks for
    // MRF too (12KB vs 8KB) -> strictly more bank energy.
    EXPECT_GT(e_uni, e_part);

    // With zero data traffic, the difference is only the bank size (no
    // wiring factor on MRF accesses).
    part.sharedReadBytes = part.sharedWriteBytes = 0;
    part.cacheReadBytes = part.cacheWriteBytes = 0;
    uni.sharedReadBytes = uni.sharedWriteBytes = 0;
    uni.cacheReadBytes = uni.cacheWriteBytes = 0;
    double mrf_part = bankAccessEnergy(part, p);
    double mrf_uni = bankAccessEnergy(uni, p);
    double expect_ratio = bankReadEnergy(12_KB) / bankReadEnergy(8_KB);
    EXPECT_NEAR(mrf_uni / mrf_part, expect_ratio, 0.05);
}

TEST(EnergyModel, DramEnergyIs40pJPerBit)
{
    EnergyParams p;
    EnergyInputs in;
    in.partition = baselinePartition();
    in.cycles = 1000;
    in.dramBytes = 1000;
    EnergyBreakdown b = computeEnergy(in, p, 1.0);
    EXPECT_NEAR(b.dramJ, 1000.0 * 8 * 40e-12, 1e-12);
}

TEST(EnergyModel, LeakageScalesWithCapacityAndTime)
{
    EnergyParams p;
    EnergyInputs big;
    big.partition = baselinePartition(); // 384KB
    big.cycles = 1000000;                // 1 ms at 1GHz
    EnergyInputs small = big;
    small.partition = MemoryPartition{96_KB, 16_KB, 16_KB}; // 128KB

    EnergyBreakdown bb = computeEnergy(big, p, 1.0);
    EnergyBreakdown sb = computeEnergy(small, p, 1.0);
    // 384KB baseline leaks 0.9W; 128KB leaks 0.9 - 256*2.37mW.
    EXPECT_NEAR(bb.leakageJ, 0.9e-3, 1e-6);
    EXPECT_NEAR(sb.leakageJ, (0.9 - 256 * 2.37e-3) * 1e-3, 1e-6);
}

TEST(EnergyModel, FasterRunLeaksLess)
{
    EnergyParams p;
    EnergyInputs slow = someInputs(DesignKind::Partitioned);
    EnergyInputs fast = slow;
    fast.cycles = slow.cycles / 2;
    EXPECT_LT(computeEnergy(fast, p, 1.0).leakageJ,
              computeEnergy(slow, p, 1.0).leakageJ);
}

TEST(EnergyModel, CalibrationRecoversPaperDynamicPower)
{
    EnergyParams p;
    EnergyInputs base = someInputs(DesignKind::Partitioned);
    double other = calibrateOtherDynamicPower(base, p);
    // other + bank power == 1.9W by construction.
    double seconds = static_cast<double>(base.cycles) / p.frequencyHz;
    double bank_power = bankAccessEnergy(base, p) / seconds;
    EXPECT_NEAR(other + bank_power, p.smDynamicPowerW, 1e-9);
}

TEST(EnergyModel, CalibrationClampsAtFloor)
{
    EnergyParams p;
    EnergyInputs base = someInputs(DesignKind::Partitioned);
    base.cycles = 100; // absurdly short -> bank power dominates
    double other = calibrateOtherDynamicPower(base, p);
    EXPECT_GE(other, p.minOtherDynamicPowerW);
}

TEST(EnergyModel, TotalIsSumOfParts)
{
    EnergyParams p;
    EnergyInputs in = someInputs(DesignKind::Unified);
    EnergyBreakdown b = computeEnergy(in, p, 1.2);
    EXPECT_NEAR(b.total(),
                b.coreDynamicJ + b.bankAccessJ + b.leakageJ + b.dramJ,
                1e-15);
    EXPECT_GT(b.coreDynamicJ, 0.0);
    EXPECT_GT(b.bankAccessJ, 0.0);
}


TEST(EnergyModel, WiringFactorIsExactlyTenPercent)
{
    // Same bank size in both designs (12KB): partitioned with a 384KB
    // cache vs a 384KB unified pool. Data-bank energy must differ by
    // exactly the 1.10 wiring factor.
    EnergyParams p;
    EnergyInputs part;
    part.design = DesignKind::Partitioned;
    part.partition = MemoryPartition{0, 0, 384_KB};
    part.cacheReadBytes = 1_MB;
    EnergyInputs uni = part;
    uni.design = DesignKind::Unified;
    double e_part = bankAccessEnergy(part, p);
    double e_uni = bankAccessEnergy(uni, p);
    EXPECT_NEAR(e_uni / e_part, 1.10, 1e-9);
}

TEST(EnergyModel, ZeroCapacityStructuresCostNothing)
{
    EnergyParams p;
    EnergyInputs in;
    in.partition = MemoryPartition{256_KB, 0, 0};
    in.sharedReadBytes = 1_MB; // no scratchpad exists: charged nowhere
    in.cacheWriteBytes = 1_MB;
    EXPECT_DOUBLE_EQ(bankAccessEnergy(in, p), 0.0);
}

TEST(EnergyModel, MrfAccessTouchesEveryCluster)
{
    EnergyParams p;
    EnergyInputs in;
    in.partition = baselinePartition();
    in.mrfReads = 1000;
    double e = bankAccessEnergy(in, p);
    EXPECT_NEAR(e, 1000.0 * kNumClusters * bankReadEnergy(8_KB), 1e-15);
}

TEST(EnergyModel, EnergyInputsMappingFromSmStats)
{
    SmStats s;
    s.cycles = 12345;
    s.rf.mrfReads = 10;
    s.rf.mrfWrites = 20;
    s.sharedReadBytes = 100;
    s.sharedWriteBytes = 200;
    s.cacheReadBytes = 300;
    s.cacheWriteBytes = 400;
    s.dram.readSectors = 5;
    s.texDram.readSectors = 3;

    AllocationDecision d;
    d.design = DesignKind::Unified;
    d.partition = MemoryPartition{100_KB, 50_KB, 234_KB};

    EnergyInputs in = energyInputsOf(s, d);
    EXPECT_EQ(in.cycles, 12345u);
    EXPECT_EQ(in.mrfReads, 10u);
    EXPECT_EQ(in.mrfWrites, 20u);
    EXPECT_EQ(in.sharedReadBytes, 100u);
    EXPECT_EQ(in.cacheWriteBytes, 400u);
    EXPECT_EQ(in.dramBytes, 8u * kDramSectorBytes);
    EXPECT_EQ(in.design, DesignKind::Unified);
    EXPECT_EQ(in.partition.total(), 384_KB);
}

} // namespace
} // namespace unimem
