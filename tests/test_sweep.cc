/**
 * @file
 * Tests of the parallel sweep engine: golden-baseline determinism
 * (serial vs 1/2/8 workers over the full 26-kernel fig8-style sweep),
 * a mixed-job stress test (ordering, exception propagation), the
 * RunSpec seed-plumbing audit backing the pool's determinism
 * guarantee, and a tolerance-checked golden snapshot of the fig8
 * comparison table.
 *
 * Golden files live in tests/golden/; regenerate with
 *   UNIMEM_UPDATE_GOLDEN=1 ./test_sweep --gtest_filter='GoldenStats.*'
 * and commit the diff.
 *
 * Tests whose strength depends on actually re-running the simulator
 * (serial-vs-parallel equality, seed plumbing, nested sweeps) disable
 * the result cache with ScopedResultCacheDisable; the golden-stats
 * snapshot runs with the cache at its default so both modes are
 * exercised in one suite (test_result_cache covers on/off parity).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "kernels/registry.hh"
#include "sim/experiments.hh"
#include "sim/result_cache.hh"
#include "sim/sweep.hh"

namespace unimem {
namespace {

constexpr double kScale = 0.05;

/** The fig8-style sweep: every registry kernel on baseline + unified. */
std::vector<SweepJob>
fig8Jobs(double scale)
{
    std::vector<SweepJob> jobs;
    for (const BenchmarkInfo& info : allBenchmarks()) {
        jobs.push_back(makeSweepJob(std::string(info.name) + "/baseline",
                                    info.name, scale, RunSpec{}));
        RunSpec uni;
        uni.design = DesignKind::Unified;
        uni.unifiedCapacity = 384_KB;
        jobs.push_back(makeSweepJob(std::string(info.name) + "/unified",
                                    info.name, scale, uni));
    }
    return jobs;
}

// ---- Golden baseline: parallel == serial, bit for bit -----------------

TEST(SweepGoldenBaseline, ParallelMatchesSerialAt_1_2_8_Workers)
{
    // Memoization off: every worker count must really re-simulate for
    // the parallel-equals-serial comparison to mean anything.
    ScopedResultCacheDisable noCache;
    std::vector<SweepJob> jobs = fig8Jobs(kScale);
    ASSERT_EQ(jobs.size(), 2 * allBenchmarks().size());

    // Serial reference computed without the engine.
    std::vector<SimResult> reference;
    for (const SweepJob& job : jobs)
        reference.push_back(
            simulateBenchmark(job.benchmark, job.scale, job.spec));

    double serialWall = 0.0;
    for (u32 workers : {1u, 2u, 8u}) {
        SweepStats stats;
        std::vector<SimResult> results =
            runSweep(jobs, workers, &stats);
        ASSERT_EQ(results.size(), reference.size()) << workers;
        for (size_t i = 0; i < results.size(); ++i)
            EXPECT_TRUE(identicalResults(results[i], reference[i]))
                << jobs[i].label << " diverges with " << workers
                << " workers";

        EXPECT_EQ(stats.jobCount, jobs.size());
        EXPECT_EQ(stats.workers, workers);
        EXPECT_GT(stats.wallSeconds, 0.0);
        EXPECT_GT(stats.utilization(), 0.0);
        EXPECT_LE(stats.utilization(), 1.0 + 1e-9);
        for (size_t i = 0; i < jobs.size(); ++i)
            EXPECT_EQ(stats.jobCycles[i], reference[i].cycles())
                << jobs[i].label;

        if (workers == 1)
            serialWall = stats.wallSeconds;
        std::ostringstream os;
        os << workers << " workers: " << stats.summary();
        RecordProperty("sweep_" + std::to_string(workers), os.str());
        std::cout << "[ sweep    ] " << os.str() << "\n";

        // The acceptance criterion "8 workers beat serial" only holds
        // on a multi-core host; on smaller machines just report.
        if (workers == 8 && std::thread::hardware_concurrency() >= 8) {
            EXPECT_LT(stats.wallSeconds, serialWall)
                << "8-worker fig8 sweep should beat the serial wall "
                   "time on this host";
        }
    }
}

// ---- Seed plumbing: the determinism precondition ----------------------

TEST(SweepDeterminism, SameRunSpecSameSimResult)
{
    // A cached copy would make this vacuous; force re-simulation.
    ScopedResultCacheDisable noCache;
    for (const char* name : {"vectoradd", "needle", "dgemm", "bfs"}) {
        for (DesignKind design :
             {DesignKind::Partitioned, DesignKind::Unified}) {
            RunSpec spec;
            spec.design = design;
            SimResult a = simulateBenchmark(name, kScale, spec);
            SimResult b = simulateBenchmark(name, kScale, spec);
            EXPECT_TRUE(identicalResults(a, b))
                << name << " on " << designName(design);
        }
    }
}

TEST(SweepDeterminism, DifferentSeedsAreIndependentRuns)
{
    // Seeds flow all the way to the trace generators: a and b must not
    // share RNG state (identical twice, not coincidentally equal once).
    ScopedResultCacheDisable noCache;
    RunSpec s1;
    s1.seed = 1;
    RunSpec s2;
    s2.seed = 99;
    SimResult a1 = simulateBenchmark("bfs", kScale, s1);
    SimResult b1 = simulateBenchmark("bfs", kScale, s2);
    SimResult a2 = simulateBenchmark("bfs", kScale, s1);
    SimResult b2 = simulateBenchmark("bfs", kScale, s2);
    EXPECT_TRUE(identicalResults(a1, a2));
    EXPECT_TRUE(identicalResults(b1, b2));
}

TEST(SweepDeterminism, IdenticalResultsDetectsDivergence)
{
    SimResult a = simulateBenchmark("vectoradd", kScale, RunSpec{});
    SimResult b = a;
    EXPECT_TRUE(identicalResults(a, b));
    b.sm.cycles += 1;
    EXPECT_FALSE(identicalResults(a, b));
}

// ---- Stress: ordering, mixed jobs, exceptions, races ------------------

/** Synthetic result encoding a job index (no simulation). */
SimResult
syntheticResult(u64 index)
{
    SimResult r;
    r.sm.cycles = 1000 + index;
    r.sm.warpInstrs = 3 * index + 1;
    r.alloc.launch.feasible = true;
    r.alloc.launch.threads = static_cast<u32>(index % 1024);
    return r;
}

TEST(SweepStress, FiveHundredMixedJobsKeepSubmissionOrder)
{
    // Mix cheap synthetic jobs with real simulations so workers finish
    // out of submission order; results must come back in order anyway.
    const size_t kJobs = 500;
    const char* simNames[] = {"vectoradd", "bfs", "nn", "lps"};
    SimResult simReference[4];
    for (int i = 0; i < 4; ++i) {
        RunSpec spec;
        spec.design = i % 2 == 0 ? DesignKind::Unified
                                 : DesignKind::Partitioned;
        simReference[i] = simulateBenchmark(simNames[i], 0.02, spec);
    }

    std::vector<SweepJob> jobs;
    for (size_t i = 0; i < kJobs; ++i) {
        SweepJob job;
        job.label = "stress/" + std::to_string(i);
        if (i % 7 == 3) {
            int which = static_cast<int>(i / 7) % 4;
            RunSpec spec;
            spec.design = which % 2 == 0 ? DesignKind::Unified
                                         : DesignKind::Partitioned;
            job.benchmark = simNames[which];
            job.scale = 0.02;
            job.spec = spec;
        } else {
            job.run = [i] { return syntheticResult(i); };
        }
        jobs.push_back(std::move(job));
    }

    SweepStats stats;
    std::vector<SimResult> results = runSweep(jobs, 8, &stats);
    ASSERT_EQ(results.size(), kJobs);
    EXPECT_EQ(stats.jobCount, kJobs);
    for (size_t i = 0; i < kJobs; ++i) {
        if (i % 7 == 3) {
            int which = static_cast<int>(i / 7) % 4;
            EXPECT_TRUE(
                identicalResults(results[i], simReference[which]))
                << jobs[i].label;
        } else {
            EXPECT_EQ(results[i].cycles(), 1000 + i) << jobs[i].label;
            EXPECT_EQ(results[i].sm.warpInstrs, 3 * i + 1)
                << jobs[i].label;
        }
    }
}

TEST(SweepStress, FirstExceptionInSubmissionOrderPropagates)
{
    std::vector<SweepJob> jobs;
    for (size_t i = 0; i < 64; ++i) {
        SweepJob job;
        job.label = "throwing/" + std::to_string(i);
        if (i == 17 || i == 41) {
            job.run = [i]() -> SimResult {
                throw std::runtime_error("boom " + std::to_string(i));
            };
        } else {
            job.run = [i] { return syntheticResult(i); };
        }
        jobs.push_back(std::move(job));
    }

    try {
        runSweep(jobs, 8);
        FAIL() << "expected the sweep to rethrow";
    } catch (const std::runtime_error& e) {
        // Job 17 fails first in submission order even if a later
        // worker hits job 41 earlier in wall time.
        EXPECT_NE(std::string(e.what()).find("throwing/17"),
                  std::string::npos)
            << e.what();
        EXPECT_NE(std::string(e.what()).find("boom 17"),
                  std::string::npos)
            << e.what();
    }
}

TEST(SweepStress, EmptyAndSingleJobBatches)
{
    EXPECT_TRUE(runSweep({}, 8).empty());

    std::vector<SweepJob> one{
        makeSweepJob("solo", "vectoradd", 0.02, RunSpec{})};
    SweepStats stats;
    std::vector<SimResult> results = runSweep(one, 8, &stats);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(stats.workers, 1u) << "single job should not spawn a pool";
    EXPECT_TRUE(identicalResults(
        results[0], simulateBenchmark("vectoradd", 0.02, RunSpec{})));
}

TEST(SweepStress, NestedSweepRunsSeriallyInsideWorker)
{
    // The nested runFermiBest calls must actually sweep, not hit.
    ScopedResultCacheDisable noCache;
    EXPECT_FALSE(SweepRunner::inSweepWorker());
    std::vector<SweepJob> outer;
    for (int i = 0; i < 4; ++i) {
        SweepJob job;
        job.label = "outer/" + std::to_string(i);
        job.run = [] {
            EXPECT_TRUE(SweepRunner::inSweepWorker());
            // runFermiBest sweeps internally; inside a worker it must
            // degrade to serial execution instead of nesting pools.
            return runFermiBest("srad", 0.02, 384_KB);
        };
        outer.push_back(std::move(job));
    }
    std::vector<SimResult> results = runSweep(outer, 4);
    SimResult reference = runFermiBest("srad", 0.02, 384_KB);
    for (const SimResult& r : results)
        EXPECT_TRUE(identicalResults(r, reference));
    EXPECT_FALSE(SweepRunner::inSweepWorker());
}

TEST(SweepStress, WorkerCountResolution)
{
    EXPECT_EQ(SweepRunner::resolveWorkerCount(3), 3u);
    EXPECT_GE(SweepRunner::resolveWorkerCount(0), 1u);
    SweepRunner r(5);
    EXPECT_EQ(r.workers(), 5u);
}

// ---- Golden-stats snapshot of the fig8 comparison table ---------------

constexpr double kGoldenScale = 0.1;
constexpr double kGoldenTolerance = 0.01; // 1% relative drift budget

std::string
goldenPath()
{
    return std::string(UNIMEM_SOURCE_DIR) +
           "/tests/golden/fig8_comparison.golden";
}

struct GoldenRow
{
    std::string name;
    double speedup = 0.0;
    double energy = 0.0;
    double dram = 0.0;
};

std::vector<GoldenRow>
computeFig8Rows()
{
    std::vector<SimResult> results =
        runSweep(fig8Jobs(kGoldenScale), 0);
    std::vector<GoldenRow> rows;
    size_t i = 0;
    for (const BenchmarkInfo& info : allBenchmarks()) {
        const SimResult& base = results[2 * i];
        const SimResult& uni = results[2 * i + 1];
        ++i;
        Comparison c = compare(uni, base);
        rows.push_back({info.name, c.speedup, c.energyRatio, c.dramRatio});
    }
    return rows;
}

TEST(GoldenStats, Fig8ComparisonMatchesGoldenFile)
{
    std::vector<GoldenRow> rows = computeFig8Rows();

    if (std::getenv("UNIMEM_UPDATE_GOLDEN")) {
        std::ofstream os(goldenPath());
        ASSERT_TRUE(os) << "cannot write " << goldenPath();
        os << "# fig8 comparison golden (unified 384KB vs partitioned "
              "baseline, scale "
           << kGoldenScale << ")\n"
           << "# columns: benchmark speedup energy_ratio dram_ratio\n"
           << "# regenerate: UNIMEM_UPDATE_GOLDEN=1 ./test_sweep "
              "--gtest_filter='GoldenStats.*'\n";
        os.precision(17);
        for (const GoldenRow& r : rows)
            os << r.name << " " << r.speedup << " " << r.energy << " "
               << r.dram << "\n";
        GTEST_SKIP() << "golden file regenerated at " << goldenPath();
    }

    std::ifstream is(goldenPath());
    ASSERT_TRUE(is) << "missing golden file " << goldenPath()
                    << " - regenerate with UNIMEM_UPDATE_GOLDEN=1";

    std::map<std::string, GoldenRow> golden;
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        GoldenRow r;
        ASSERT_TRUE(static_cast<bool>(ls >> r.name >> r.speedup >>
                                      r.energy >> r.dram))
            << "malformed golden line: " << line;
        golden[r.name] = r;
    }
    ASSERT_EQ(golden.size(), rows.size())
        << "golden file kernel set diverged - regenerate";

    auto within = [](double got, double want) {
        double denom = std::max(std::abs(want), 1e-12);
        return std::abs(got - want) / denom <= kGoldenTolerance;
    };
    for (const GoldenRow& r : rows) {
        ASSERT_TRUE(golden.count(r.name)) << r.name;
        const GoldenRow& g = golden[r.name];
        EXPECT_TRUE(within(r.speedup, g.speedup))
            << r.name << " speedup drifted: got " << r.speedup
            << ", golden " << g.speedup;
        EXPECT_TRUE(within(r.energy, g.energy))
            << r.name << " energy ratio drifted: got " << r.energy
            << ", golden " << g.energy;
        EXPECT_TRUE(within(r.dram, g.dram))
            << r.name << " dram ratio drifted: got " << r.dram
            << ", golden " << g.dram;
    }
}

} // namespace
} // namespace unimem
