/**
 * @file
 * Advanced SM behaviours: partial active masks, CTA waves, the local
 * memory (spill) path through the cache, per-opcode accounting, stats
 * export, issue-port vs memory-port stall separation, and multi-warp
 * CTA barriers across waves.
 */

#include <functional>

#include <gtest/gtest.h>

#include "sm/sm.hh"

namespace unimem {
namespace {

class FnKernel : public KernelModel
{
  public:
    using Gen = std::function<std::vector<WarpInstr>(const WarpCtx&)>;

    FnKernel(KernelParams kp, Gen gen)
        : params_(std::move(kp)), gen_(std::move(gen))
    {
    }

    const KernelParams& params() const override { return params_; }

    std::unique_ptr<WarpProgram>
    warpProgram(const WarpCtx& ctx) const override
    {
        return std::make_unique<FixedProgram>(gen_(ctx));
    }

  private:
    KernelParams params_;
    Gen gen_;
};

KernelParams
params(u32 gridCtas, u32 ctaThreads = 32, u32 regs = 16, u32 shared = 0)
{
    KernelParams kp;
    kp.name = "adv";
    kp.regsPerThread = regs;
    kp.sharedBytesPerCta = shared;
    kp.ctaThreads = ctaThreads;
    kp.gridCtas = gridCtas;
    return kp;
}

SmRunConfig
cfgFor(const KernelParams& kp, u32 threadLimit = kMaxThreadsPerSm)
{
    SmRunConfig cfg;
    cfg.partition = baselinePartition();
    cfg.launch = occupancyPartitioned(kp, cfg.partition.rfBytes,
                                      cfg.partition.sharedBytes,
                                      threadLimit);
    return cfg;
}

TEST(SmAdvanced, PartialMasksCountActiveLanesOnly)
{
    KernelParams kp = params(1);
    FnKernel k(kp, [](const WarpCtx&) {
        std::vector<WarpInstr> v;
        WarpInstr half = instr::alu(1, 0);
        half.activeMask = 0x0000ffffu;
        v.push_back(half);
        WarpInstr one = instr::alu(2, 1);
        one.activeMask = 0x1u;
        v.push_back(one);
        v.push_back(instr::alu(3, 2)); // full
        return v;
    });
    SmStats s = runKernel(cfgFor(kp), k);
    EXPECT_EQ(s.warpInstrs, 3u);
    EXPECT_EQ(s.threadInstrs, 16u + 1u + 32u);
}

TEST(SmAdvanced, OpcodeCountersSumToWarpInstrs)
{
    KernelParams kp = params(2, 64, 16, 512);
    FnKernel k(kp, [](const WarpCtx&) {
        std::vector<WarpInstr> v;
        v.push_back(instr::alu(1, 0));
        v.push_back(instr::alu(2, 1, 3, kInvalidReg, true));
        v.push_back(instr::sfu(3, 2));
        WarpInstr st = instr::mem(Opcode::StShared, 3, 1);
        for (u32 lane = 0; lane < kWarpWidth; ++lane)
            st.addr[lane] = lane * 4;
        v.push_back(st);
        v.push_back(instr::bar());
        return v;
    });
    SmStats s = runKernel(cfgFor(kp), k);
    u64 sum = 0;
    for (u64 c : s.issuedByOp)
        sum += c;
    EXPECT_EQ(sum, s.warpInstrs);
    EXPECT_EQ(s.issued(Opcode::IntAlu), 4u);
    EXPECT_EQ(s.issued(Opcode::FpAlu), 4u);
    EXPECT_EQ(s.issued(Opcode::Sfu), 4u);
    EXPECT_EQ(s.issued(Opcode::StShared), 4u);
    EXPECT_EQ(s.issued(Opcode::Bar), 4u);
}

TEST(SmAdvanced, CtaWavesReuseSlots)
{
    // 12 single-warp CTAs but room for only 4 at a time (thread limit).
    KernelParams kp = params(12, 32);
    FnKernel k(kp, [](const WarpCtx& ctx) {
        std::vector<WarpInstr> v(5 + ctx.ctaId % 3, instr::alu(1, 1));
        v.push_back(instr::bar());
        v.push_back(instr::alu(2, 1));
        return v;
    });
    SmStats s = runKernel(cfgFor(kp, 128), k);
    EXPECT_EQ(s.ctasExecuted, 12u);
    EXPECT_EQ(s.barriers, 12u);
}

TEST(SmAdvanced, MultiWarpBarrierAcrossWaves)
{
    // 4-warp CTAs with skewed pre-barrier work; several waves.
    KernelParams kp = params(6, 128);
    FnKernel k(kp, [](const WarpCtx& ctx) {
        std::vector<WarpInstr> v(1 + 7 * ctx.warpInCta,
                                 instr::alu(1, 1));
        v.push_back(instr::bar());
        v.push_back(instr::alu(2, 0));
        v.push_back(instr::bar());
        return v;
    });
    SmStats s = runKernel(cfgFor(kp, 256), k);
    EXPECT_EQ(s.ctasExecuted, 6u);
    EXPECT_EQ(s.barriers, 6u * 4u * 2u);
}

TEST(SmAdvanced, LocalMemoryGoesThroughCache)
{
    // Spill traffic (ld.local/st.local) is cacheable: fills after the
    // first miss make re-fills hit.
    KernelParams kp = params(1);
    FnKernel k(kp, [](const WarpCtx&) {
        std::vector<WarpInstr> v;
        for (int rep = 0; rep < 8; ++rep) {
            WarpInstr ld = instr::mem(Opcode::LdLocal, 2, 1);
            for (u32 lane = 0; lane < kWarpWidth; ++lane)
                ld.addr[lane] = kLocalBase + lane * 4;
            v.push_back(ld);
            v.push_back(instr::alu(3, 2));
        }
        return v;
    });
    SmStats s = runKernel(cfgFor(kp), k);
    EXPECT_EQ(s.cache.readMisses, 1u);
    EXPECT_EQ(s.cache.readHits, 7u);
    EXPECT_EQ(s.dram.readSectors, 4u); // one 128B line
}

TEST(SmAdvanced, MrfConflictStallsIssuePort)
{
    // Back-to-back independent ALU ops from one warp whose two sources
    // share a bank: the issue port pays one extra cycle each.
    KernelParams kp = params(1);
    auto gen = [](bool conflict) {
        return [conflict](const WarpCtx&) {
            std::vector<WarpInstr> v;
            for (int i = 0; i < 64; ++i) {
                // Independent ops (rotating dst) so issue rate is the
                // bottleneck; r8/r12 share bank 0 (slot 0), r8/r9 don't.
                RegId d = static_cast<RegId>(i % 8);
                WarpInstr in = conflict ? instr::alu(d, 8, 12)
                                        : instr::alu(d, 8, 9);
                v.push_back(in);
            }
            return v;
        };
    };
    FnKernel bad(kp, gen(true));
    FnKernel good(kp, gen(false));
    SmRunConfig cfg = cfgFor(kp);
    cfg.rfHierarchy = false; // force every read to the MRF
    SmStats sb = runKernel(cfg, bad);
    SmStats sg = runKernel(cfg, good);
    EXPECT_GT(sb.conflictPenaltyCycles, sg.conflictPenaltyCycles);
    EXPECT_GT(sb.cycles, sg.cycles);
}

TEST(SmAdvanced, SharedScatterDoesNotBlockOtherWarpsAlu)
{
    // One warp hammers a fully conflicting scatter; other warps run
    // pure ALU chains. Their combined runtime should be near the ALU
    // warps' standalone runtime (memory-port serialization, not issue
    // stalls).
    KernelParams kp = params(1, 256, 16, 8192);
    FnKernel k(kp, [](const WarpCtx& ctx) {
        std::vector<WarpInstr> v;
        if (ctx.warpInCta == 0) {
            for (int i = 0; i < 50; ++i) {
                WarpInstr ld = instr::mem(Opcode::LdShared, 2, 1);
                for (u32 lane = 0; lane < kWarpWidth; ++lane)
                    ld.addr[lane] = lane * 128; // single-bank scatter
                v.push_back(ld);
            }
        } else {
            for (int i = 0; i < 220; ++i)
                v.push_back(instr::alu(static_cast<RegId>(i % 8)));
        }
        return v;
    });
    SmStats s = runKernel(cfgFor(kp), k);
    // 7 ALU warps x 220 instructions = 1540 issue slots; the scatter
    // warp's ~50*31 penalty cycles mostly overlap with them instead of
    // adding on top (fully additive would be ~3100 cycles).
    EXPECT_LT(s.cycles, 2950u);
    EXPECT_GT(s.conflictPenaltyCycles, 1000u);
}

TEST(SmAdvanced, StatSetExportIsConsistent)
{
    KernelParams kp = params(2, 64);
    FnKernel k(kp, [](const WarpCtx&) {
        std::vector<WarpInstr> v(20, instr::alu(1, 0));
        return v;
    });
    SmStats s = runKernel(cfgFor(kp), k);
    StatSet set = s.toStatSet();
    EXPECT_DOUBLE_EQ(set.get("cycles"), static_cast<double>(s.cycles));
    EXPECT_DOUBLE_EQ(set.get("warp_instrs"),
                     static_cast<double>(s.warpInstrs));
    EXPECT_DOUBLE_EQ(set.get("ipc"), s.ipc());
    EXPECT_DOUBLE_EQ(set.get("issued.ialu"),
                     static_cast<double>(s.issued(Opcode::IntAlu)));
    EXPECT_TRUE(set.has("rf.mrf_reduction"));
    EXPECT_TRUE(set.has("conflict.max_per_bank.<=1"));
}

TEST(SmAdvanced, TagPortChargedEvenWithoutCache)
{
    // Address-generation throughput: one transaction per cycle even
    // when the cache is disabled.
    KernelParams kp = params(1);
    FnKernel k(kp, [](const WarpCtx&) {
        std::vector<WarpInstr> v;
        WarpInstr ld = instr::mem(Opcode::LdGlobal, 2, 1);
        for (u32 lane = 0; lane < kWarpWidth; ++lane)
            ld.addr[lane] = static_cast<Addr>(lane) * 4096;
        v.push_back(ld);
        return v;
    });
    SmRunConfig cfg = cfgFor(kp);
    cfg.partition.cacheBytes = 0;
    SmStats s = runKernel(cfg, k);
    EXPECT_EQ(s.tagSerializationCycles, 31u);
}

TEST(SmAdvanced, SeedPerturbsNothingForDeterministicKernels)
{
    KernelParams kp = params(2, 64);
    FnKernel k(kp, [](const WarpCtx&) {
        return std::vector<WarpInstr>(30, instr::alu(1, 0));
    });
    SmRunConfig a = cfgFor(kp);
    a.seed = 1;
    SmRunConfig b = cfgFor(kp);
    b.seed = 999;
    EXPECT_EQ(runKernel(a, k).cycles, runKernel(b, k).cycles);
}

} // namespace
} // namespace unimem
