/**
 * @file
 * Randomized golden-model tests: independently coded reference
 * implementations are driven with the same random stimulus as the
 * production components and must agree exactly.
 *  - DataCache vs a straightforward per-set LRU list,
 *  - Scoreboard vs a map of pending registers,
 *  - occupancy calculators vs brute-force feasibility search,
 *  - Table CSV rendering.
 */

#include <list>
#include <map>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "common/table.hh"
#include "mem/cache.hh"
#include "sched/occupancy.hh"
#include "sched/scoreboard.hh"

namespace unimem {
namespace {

/** Trivially correct set-associative LRU reference. */
class RefCache
{
  public:
    RefCache(u64 capacity, u32 assoc)
        : lineCount_(capacity / kCacheLineBytes)
    {
        numSets_ = static_cast<u32>(lineCount_ / assoc);
        assoc_ = static_cast<u32>(lineCount_ / numSets_);
        sets_.resize(numSets_);
    }

    bool
    read(Addr line)
    {
        auto& set = sets_[line / kCacheLineBytes % numSets_];
        for (auto it = set.begin(); it != set.end(); ++it) {
            if (*it == line) {
                set.erase(it);
                set.push_front(line);
                return true;
            }
        }
        return false;
    }

    void
    fill(Addr line)
    {
        auto& set = sets_[line / kCacheLineBytes % numSets_];
        for (Addr l : set)
            if (l == line)
                return;
        if (set.size() == assoc_)
            set.pop_back();
        set.push_front(line);
    }

  private:
    u64 lineCount_;
    u32 numSets_;
    u32 assoc_;
    std::vector<std::list<Addr>> sets_;
};

TEST(GoldenModels, CacheMatchesReferenceLru)
{
    for (u64 capacity : {8_KB, 64_KB, 88_KB}) {
        DataCache dut(capacity, 4);
        RefCache ref(capacity, 4);
        Rng rng(capacity);
        for (int i = 0; i < 50000; ++i) {
            // Mix of hot lines and cold misses.
            Addr line =
                (rng.chance(0.8) ? rng.range(capacity / kCacheLineBytes)
                                 : rng.range(1u << 20)) *
                kCacheLineBytes;
            bool hit_dut = dut.read(line);
            bool hit_ref = ref.read(line);
            ASSERT_EQ(hit_dut, hit_ref)
                << "capacity " << capacity << " access " << i;
            if (!hit_dut) {
                dut.fill(line);
                ref.fill(line);
            }
        }
    }
}

TEST(GoldenModels, ScoreboardMatchesReferenceMap)
{
    Scoreboard sb;
    std::map<RegId, std::pair<Cycle, bool>> ref; // reg -> (ready, longLat)
    Rng rng(7);
    Cycle now = 0;
    for (int i = 0; i < 20000; ++i) {
        now += rng.range(4);
        int action = static_cast<int>(rng.range(3));
        RegId r = static_cast<RegId>(rng.range(64));
        if (action == 0) {
            Cycle ready = now + rng.range(400);
            bool ll = rng.chance(0.3);
            sb.setPending(r, ready, ll);
            ref[r] = {ready, ll};
        } else if (action == 1) {
            sb.clearPending(r);
            if (ref.count(r))
                ref[r].second = false;
        } else {
            WarpInstr in = instr::alu(
                static_cast<RegId>(rng.range(64)),
                static_cast<RegId>(rng.range(64)),
                static_cast<RegId>(rng.range(64)));
            Cycle expect = 0;
            bool expect_ll = false;
            auto look = [&](RegId reg) {
                auto it = ref.find(reg);
                if (it == ref.end())
                    return;
                expect = std::max(expect, it->second.first);
                expect_ll = expect_ll || it->second.second;
            };
            look(in.src[0]);
            look(in.src[1]);
            look(in.dst);
            ASSERT_EQ(sb.readyCycle(in), expect) << "access " << i;
            ASSERT_EQ(sb.dependsOnLongLatency(in), expect_ll)
                << "access " << i;
        }
    }
}

TEST(GoldenModels, OccupancyMatchesBruteForce)
{
    Rng rng(99);
    for (int trial = 0; trial < 2000; ++trial) {
        KernelParams kp;
        kp.name = "rand";
        kp.regsPerThread = 8 + static_cast<u32>(rng.range(57));
        kp.ctaThreads = 32u * (1 + static_cast<u32>(rng.range(8)));
        kp.sharedBytesPerCta = static_cast<u32>(rng.range(40000));
        kp.gridCtas = 16;
        u64 rf_cap = (32 + rng.range(256)) * 1024;
        u64 sh_cap = rng.range(128) * 1024;

        LaunchConfig lc =
            occupancyPartitioned(kp, rf_cap, sh_cap, kMaxThreadsPerSm);

        // Brute force: the largest CTA count satisfying all limits at
        // the kernel's requested register count (or the reduced count
        // the calculator chose).
        u32 regs = lc.feasible ? lc.regsPerThread : kp.regsPerThread;
        u32 best = 0;
        for (u32 ctas = 1; ctas <= kMaxWarpsPerSm; ++ctas) {
            u64 rf = static_cast<u64>(ctas) * kp.ctaThreads * regs * 4;
            u64 sh = static_cast<u64>(ctas) * kp.sharedBytesPerCta;
            u64 threads = static_cast<u64>(ctas) * kp.ctaThreads;
            if (rf <= rf_cap && sh <= sh_cap &&
                threads <= kMaxThreadsPerSm)
                best = ctas;
        }
        if (best == 0) {
            EXPECT_FALSE(lc.feasible) << "trial " << trial;
        } else {
            ASSERT_TRUE(lc.feasible) << "trial " << trial;
            EXPECT_EQ(lc.ctas, best) << "trial " << trial;
        }
    }
}

TEST(GoldenModels, UnifiedOccupancyInvariant)
{
    Rng rng(123);
    for (int trial = 0; trial < 2000; ++trial) {
        KernelParams kp;
        kp.name = "rand";
        kp.regsPerThread = 8 + static_cast<u32>(rng.range(57));
        kp.ctaThreads = 32u * (1 + static_cast<u32>(rng.range(8)));
        kp.sharedBytesPerCta = static_cast<u32>(rng.range(40000));
        kp.gridCtas = 16;
        u64 cap = (64 + rng.range(448)) * 1024;

        UnifiedLaunch ul = occupancyUnified(kp, cap, kMaxThreadsPerSm);
        if (!ul.launch.feasible)
            continue;
        // Consumed + leftover == capacity, and one more CTA would not
        // have fit (or the thread limit binds).
        EXPECT_EQ(ul.launch.rfBytes + ul.launch.sharedBytes +
                      ul.cacheBytes,
                  cap);
        u64 per_cta = static_cast<u64>(kp.ctaThreads) *
                          ul.launch.regsPerThread * 4 +
                      kp.sharedBytesPerCta;
        bool thread_bound =
            (ul.launch.ctas + 1) * kp.ctaThreads > kMaxThreadsPerSm;
        bool capacity_bound = (ul.launch.ctas + 1) * per_cta > cap;
        EXPECT_TRUE(thread_bound || capacity_bound) << "trial " << trial;
    }
}

TEST(GoldenModels, CsvRenderingQuotesSpecials)
{
    Table t({"a", "b"});
    t.addRow({"plain", "with,comma"});
    t.addRow({"with\"quote", "x"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(),
              "a,b\nplain,\"with,comma\"\n\"with\"\"quote\",x\n");
}

} // namespace
} // namespace unimem
