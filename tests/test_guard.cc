/**
 * @file
 * Livelock-guard regression tests.
 *
 * The guard counts advance-loop iterations *without the clock moving*
 * and only panics when one clock value accumulates an absurd number of
 * them. An earlier draft budgeted total iterations instead, which a
 * chip co-simulation slicing the run into thousands of short
 * advance(limit) calls (each re-entering the loop at the same clock
 * value it left) could trip on a perfectly healthy kernel. These tests
 * pin both properties: sliced stepping produces bit-identical results,
 * and the guard's high-water mark stays O(1) no matter how the run is
 * chopped up.
 */

#include <memory>

#include <gtest/gtest.h>

#include "kernels/registry.hh"
#include "sim/simulator.hh"
#include "sm/sm.hh"

namespace unimem {
namespace {

SmRunConfig
configFor(const KernelModel& kernel, DesignKind design)
{
    RunSpec spec;
    spec.design = design;
    AllocationDecision alloc = resolveAllocation(kernel.params(), spec);
    EXPECT_TRUE(alloc.launch.feasible);
    SmRunConfig cfg;
    cfg.design = spec.design;
    cfg.partition = alloc.partition;
    cfg.launch = alloc.launch;
    cfg.activeSetSize = spec.activeSetSize;
    cfg.rfHierarchy = spec.rfHierarchy;
    cfg.conflictPenalties = spec.conflictPenalties;
    cfg.aggressiveUnified = spec.aggressiveUnified;
    cfg.cachePolicy = spec.cachePolicy;
    cfg.seed = spec.seed;
    return cfg;
}

/** A whole run in one advance() keeps the no-progress counter tiny. */
TEST(LivelockGuard, WholeRunPeakIsSmall)
{
    std::unique_ptr<KernelModel> k = createBenchmark("dgemm", 0.05);
    SmModel sm(configFor(*k, DesignKind::Unified), *k);
    sm.run();
    // Each clock value gets a handful of iterations (event drain,
    // issue, port-busy jump); anything beyond that indicates the loop
    // is spinning without progress.
    EXPECT_LE(sm.guardPeak(), 8u);
    EXPECT_GT(sm.stats().cycles, 0u);
}

/**
 * Interleaved one-cycle advance() slices re-enter the loop at the same
 * clock value tens of thousands of times across the run. The guard
 * must not accumulate across calls that *do* make progress, and the
 * result must match the unsliced run bit for bit.
 */
TEST(LivelockGuard, SlicedAdvanceMatchesAndDoesNotTrip)
{
    for (DesignKind design :
         {DesignKind::Partitioned, DesignKind::Unified}) {
        std::unique_ptr<KernelModel> k1 = createBenchmark("dgemm", 0.02);
        SmModel whole(configFor(*k1, design), *k1);
        whole.run();

        std::unique_ptr<KernelModel> k2 = createBenchmark("dgemm", 0.02);
        SmModel sliced(configFor(*k2, design), *k2);
        sliced.start();
        u64 slices = 0;
        while (!sliced.finished()) {
            // Alternate 1-cycle and 3-cycle limits so slice boundaries
            // land both on and between interesting cycles.
            Cycle step = (slices & 1) ? 3 : 1;
            sliced.advance(sliced.now() + step);
            ++slices;
            ASSERT_LT(slices, 100u * 1000 * 1000) << "runaway slicing";
        }
        sliced.finalize();

        // advance() may overshoot each limit by one scheduling
        // decision, so slices per cycle can be well below 1; just
        // require enough re-entries to make the test meaningful.
        EXPECT_GT(slices, whole.stats().cycles / 16) << "test is vacuous";
        EXPECT_LE(sliced.guardPeak(), 8u) << designName(design);
        EXPECT_EQ(whole.stats().toStatSet().entries(),
                  sliced.stats().toStatSet().entries())
            << designName(design);
    }
}

} // namespace
} // namespace unimem
