/**
 * @file
 * Structural tests of individual workload models: these pin the
 * *mechanisms* behind each benchmark's Table 1 behaviour (broadcasts,
 * line revisits, scatter widths, barrier cadence, fp64 widths), so a
 * kernel edit that silently changes the memory character fails here
 * before it shows up as a calibration drift.
 */

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "kernels/registry.hh"
#include "kernels/workloads.hh"

namespace unimem {
namespace {

std::vector<WarpInstr>
traceOf(const KernelModel& k, u32 ctaId = 0, u32 warpInCta = 0)
{
    WarpCtx ctx;
    ctx.ctaId = ctaId;
    ctx.warpInCta = warpInCta;
    ctx.warpsPerCta = k.params().warpsPerCta();
    ctx.threadsPerCta = k.params().ctaThreads;
    ctx.seed = 1;
    auto prog = k.warpProgram(ctx);
    std::vector<WarpInstr> out;
    while (prog->fill(out)) {
    }
    return out;
}

u32
distinctLanes(const WarpInstr& in)
{
    std::set<Addr> s;
    for (u32 lane = 0; lane < kWarpWidth; ++lane)
        if (in.laneActive(lane))
            s.insert(in.addr[lane]);
    return static_cast<u32>(s.size());
}

TEST(KernelStructure, NeedleBarrierCadence)
{
    // One barrier per anti-diagonal plus the prologue barrier.
    for (u32 bf : {16u, 32u, 64u}) {
        auto k = makeNeedle(bf, 0.1);
        u32 bars = 0;
        for (const WarpInstr& in : traceOf(*k))
            if (in.op == Opcode::Bar)
                ++bars;
        EXPECT_EQ(bars, 2 * bf - 1 + 1) << "bf " << bf;
    }
}

TEST(KernelStructure, NeedleBorderColumnOverfetches)
{
    // The border-column load touches many distinct lines with few bytes
    // each (the source of Table 1's 0.85 no-cache entry).
    auto k = makeNeedle(32, 0.1);
    bool found = false;
    for (const WarpInstr& in : traceOf(*k)) {
        if (in.op != Opcode::LdGlobal)
            continue;
        std::set<Addr> lines;
        for (u32 lane = 0; lane < kWarpWidth; ++lane)
            if (in.laneActive(lane))
                lines.insert(in.addr[lane] / kCacheLineBytes);
        if (lines.size() >= 16)
            found = true;
    }
    EXPECT_TRUE(found) << "no column-style overfetching load";
}

TEST(KernelStructure, MummerTreeWalksBroadcast)
{
    // Warps traverse the suffix tree together: tree loads are
    // broadcasts (one distinct address across the warp).
    auto k = createBenchmark("gpu-mummer", 0.1);
    u32 broadcasts = 0, loads = 0;
    for (const WarpInstr& in : traceOf(*k)) {
        if (in.op != Opcode::LdGlobal)
            continue;
        ++loads;
        if (distinctLanes(in) == 1)
            ++broadcasts;
    }
    EXPECT_GT(loads, 0u);
    // Tree reads dominate (10 per query) over query-stream reads.
    EXPECT_GT(static_cast<double>(broadcasts) / loads, 0.7);
}

TEST(KernelStructure, NnRereadsTheSameRecordEveryQuery)
{
    auto k = createBenchmark("nn", 0.1);
    std::map<Addr, u32> reads;
    for (const WarpInstr& in : traceOf(*k))
        if (in.op == Opcode::LdGlobal)
            ++reads[in.addr[0]];
    ASSERT_EQ(reads.size(), 1u) << "one record per thread";
    EXPECT_EQ(reads.begin()->second, 20u) << "20 queries";
}

TEST(KernelStructure, VectorAddRevisitsLines)
{
    // Each 512B group is touched by four consecutive instructions
    // (j = 0..3), the redundancy a small cache filters.
    auto k = createBenchmark("vectoradd", 0.1);
    std::map<Addr, u32> group_touches;
    for (const WarpInstr& in : traceOf(*k))
        if (in.op == Opcode::LdGlobal)
            ++group_touches[in.addr[0] / 512];
    for (const auto& [group, touches] : group_touches)
        EXPECT_EQ(touches, 4u) << "group " << group;
}

TEST(KernelStructure, DgemmIsDoublePrecision)
{
    auto k = createBenchmark("dgemm", 0.1);
    for (const WarpInstr& in : traceOf(*k)) {
        if (in.op == Opcode::LdGlobal || in.op == Opcode::StGlobal ||
            in.op == Opcode::LdShared || in.op == Opcode::StShared) {
            EXPECT_EQ(in.accessBytes, 8u) << "fp64 accesses";
        }
    }
}

TEST(KernelStructure, DgemmUsesWideAccumulatorSet)
{
    // Register blocking: many distinct destination registers near the
    // top of the register budget.
    auto k = createBenchmark("dgemm", 0.1);
    std::set<RegId> dsts;
    for (const WarpInstr& in : traceOf(*k))
        if ((in.op == Opcode::FpAlu) && in.hasDst() && in.dst >= 40)
            dsts.insert(in.dst);
    EXPECT_GE(dsts.size(), 12u);
}

TEST(KernelStructure, AesLookupsAreNearlyConflictFree)
{
    // Tuned T-box accesses: distinct partitioned banks for almost all
    // lanes (Section 2.1's "common optimization").
    auto k = createBenchmark("aes", 0.1);
    u64 lookups = 0, conflicted = 0;
    for (const WarpInstr& in : traceOf(*k)) {
        if (in.op != Opcode::LdShared)
            continue;
        ++lookups;
        std::map<Addr, u32> bank_count;
        std::set<Addr> words;
        for (u32 lane = 0; lane < kWarpWidth; ++lane)
            if (in.laneActive(lane))
                words.insert(in.addr[lane] / 4);
        for (Addr w : words)
            ++bank_count[w % 32];
        for (const auto& [bank, count] : bank_count)
            if (count > 1) {
                ++conflicted;
                break;
            }
    }
    ASSERT_GT(lookups, 0u);
    EXPECT_LT(static_cast<double>(conflicted) / lookups, 0.35);
}

TEST(KernelStructure, PcrStrideDoublesPerStep)
{
    // The delta-chain: step s's far read equals step s+1's near read.
    auto k = createBenchmark("pcr", 0.1);
    std::vector<Addr> far, near;
    // Collect the first array's (kArrayBase) reads per step: reads come
    // in triplets (delta/2, delta, 2*delta).
    std::vector<Addr> a_reads;
    for (const WarpInstr& in : traceOf(*k))
        if (in.op == Opcode::LdGlobal && in.addr[0] < (1ull << 31))
            a_reads.push_back(in.addr[0]);
    ASSERT_GE(a_reads.size(), 8u);
    // reads per step on array a: delta/2, delta, 2delta, rmw-base.
    for (size_t step = 0; step + 1 < a_reads.size() / 4; ++step) {
        Addr two_delta = a_reads[step * 4 + 2];
        Addr next_delta = a_reads[(step + 1) * 4 + 1];
        EXPECT_EQ(two_delta, next_delta) << "step " << step;
    }
}

TEST(KernelStructure, RayStreamsDominateScatteredSamples)
{
    auto k = createBenchmark("ray", 0.1);
    u64 stream_sectors = 0, scatter_sectors = 0;
    for (const WarpInstr& in : traceOf(*k)) {
        if (!isMemOp(in.op))
            continue;
        std::set<Addr> sectors;
        for (u32 lane = 0; lane < kWarpWidth; ++lane)
            if (in.laneActive(lane))
                sectors.insert(in.addr[lane] / kDramSectorBytes);
        // The 224KB environment lives at kEnvBase (bit 32 set, below
        // the frame buffer).
        bool is_env = (in.addr[0] >> 32) == 1;
        if (is_env)
            scatter_sectors += sectors.size();
        else if (in.op == Opcode::LdGlobal || in.op == Opcode::StGlobal)
            stream_sectors += sectors.size();
    }
    EXPECT_GT(stream_sectors, scatter_sectors * 2);
}

TEST(KernelStructure, BicubicUsesOnlyTextureFetches)
{
    auto k = createBenchmark("bicubictexture", 0.1);
    u64 tex = 0, global_loads = 0;
    for (const WarpInstr& in : traceOf(*k)) {
        if (in.op == Opcode::Tex)
            ++tex;
        if (in.op == Opcode::LdGlobal)
            ++global_loads;
    }
    EXPECT_GT(tex, 0u);
    EXPECT_EQ(global_loads, 0u)
        << "all reads go through the texture unit";
}

TEST(KernelStructure, StoOverlappingWindows)
{
    // The four chunk loads overlap at 4-byte shifts: their address sets
    // cover nearly identical lines.
    auto k = createBenchmark("sto", 0.1);
    std::vector<std::set<Addr>> first_lines;
    for (const WarpInstr& in : traceOf(*k)) {
        if (in.op != Opcode::LdGlobal)
            continue;
        std::set<Addr> lines;
        for (u32 lane = 0; lane < kWarpWidth; ++lane)
            lines.insert(in.addr[lane] / kCacheLineBytes);
        first_lines.push_back(lines);
        if (first_lines.size() == 4)
            break;
    }
    ASSERT_EQ(first_lines.size(), 4u);
    for (size_t i = 1; i < 4; ++i) {
        std::set<Addr> inter;
        for (Addr l : first_lines[0])
            if (first_lines[i].count(l))
                inter.insert(l);
        EXPECT_GE(inter.size(), first_lines[0].size() - 1)
            << "window " << i << " barely overlaps";
    }
}

TEST(KernelStructure, SharedHeavyKernelsAreSharedHeavy)
{
    // The paper's shared-memory-limited class must actually execute
    // mostly scratchpad traffic among its memory operations.
    for (const char* name : {"sto", "needle"}) {
        auto k = createBenchmark(name, 0.1);
        u64 shared_ops = 0, global_ops = 0;
        for (const WarpInstr& in : traceOf(*k)) {
            if (isSharedSpace(in.op))
                ++shared_ops;
            else if (isGlobalSpace(in.op))
                ++global_ops;
        }
        EXPECT_GT(shared_ops, global_ops) << name;
    }
}

} // namespace
} // namespace unimem
