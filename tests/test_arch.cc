/**
 * @file
 * Unit tests for the arch layer: opcode classification, warp instruction
 * construction, spill curves, kernel parameter validation, trace
 * streaming, and spill/fill injection.
 */

#include <gtest/gtest.h>

#include "arch/kernel_params.hh"
#include "arch/spill_injector.hh"
#include "arch/warp_program.hh"

namespace unimem {
namespace {

TEST(Opcode, Classification)
{
    EXPECT_TRUE(isMemOp(Opcode::LdGlobal));
    EXPECT_TRUE(isMemOp(Opcode::Tex));
    EXPECT_FALSE(isMemOp(Opcode::IntAlu));
    EXPECT_FALSE(isMemOp(Opcode::Bar));

    EXPECT_TRUE(isLoad(Opcode::LdShared));
    EXPECT_FALSE(isLoad(Opcode::StShared));
    EXPECT_TRUE(isStore(Opcode::StLocal));

    EXPECT_TRUE(isGlobalSpace(Opcode::LdLocal));
    EXPECT_FALSE(isGlobalSpace(Opcode::LdShared));
    EXPECT_TRUE(isSharedSpace(Opcode::StShared));

    EXPECT_TRUE(isLongLatency(Opcode::LdGlobal));
    EXPECT_TRUE(isLongLatency(Opcode::Tex));
    EXPECT_FALSE(isLongLatency(Opcode::LdShared));
    EXPECT_FALSE(isLongLatency(Opcode::StGlobal));
}

TEST(Opcode, NamesAreDistinct)
{
    EXPECT_STREQ(opcodeName(Opcode::IntAlu), "ialu");
    EXPECT_STRNE(opcodeName(Opcode::LdGlobal),
                 opcodeName(Opcode::StGlobal));
}

TEST(WarpInstr, FactoryAlu)
{
    WarpInstr in = instr::alu(5, 3, 4);
    EXPECT_EQ(in.op, Opcode::IntAlu);
    EXPECT_EQ(in.dst, 5);
    EXPECT_EQ(in.numSrc, 2);
    EXPECT_TRUE(in.hasDst());
    EXPECT_EQ(in.numActive(), 32u);
}

TEST(WarpInstr, FactoryMem)
{
    WarpInstr ld = instr::mem(Opcode::LdGlobal, 7, 2);
    EXPECT_EQ(ld.dst, 7);
    EXPECT_EQ(ld.numSrc, 1);

    WarpInstr st = instr::mem(Opcode::StGlobal, 7, 2, 0x0000ffffu);
    EXPECT_FALSE(st.hasDst());
    EXPECT_EQ(st.numSrc, 2);
    EXPECT_EQ(st.numActive(), 16u);
    EXPECT_TRUE(st.laneActive(0));
    EXPECT_FALSE(st.laneActive(31));
}

TEST(SpillCurve, IdentityByDefault)
{
    SpillCurve c;
    EXPECT_TRUE(c.identity());
    EXPECT_DOUBLE_EQ(c.multiplier(8), 1.0);
    EXPECT_DOUBLE_EQ(c.multiplier(64), 1.0);
}

TEST(SpillCurve, InterpolatesBetweenPoints)
{
    SpillCurve c({{18, 1.42}, {24, 1.22}, {32, 1.0}});
    EXPECT_DOUBLE_EQ(c.multiplier(18), 1.42);
    EXPECT_NEAR(c.multiplier(21), 1.32, 1e-9);
    EXPECT_DOUBLE_EQ(c.multiplier(32), 1.0);
    EXPECT_DOUBLE_EQ(c.multiplier(64), 1.0);
}

TEST(SpillCurve, ExtrapolatesBelowFirstPoint)
{
    SpillCurve c({{18, 1.42}, {24, 1.22}});
    double m12 = c.multiplier(12);
    EXPECT_GT(m12, 1.42);
    EXPECT_LE(m12, SpillCurve::kMaxMultiplier);
}

TEST(SpillCurve, MonotonicNonIncreasing)
{
    SpillCurve c({{18, 1.39}, {24, 1.18}, {32, 1.03}, {40, 1.0}});
    double prev = c.multiplier(8);
    for (u32 r = 9; r <= 64; ++r) {
        double m = c.multiplier(r);
        EXPECT_LE(m, prev + 1e-12) << "at r=" << r;
        prev = m;
    }
}

TEST(KernelParams, SharedPerThread)
{
    KernelParams kp;
    kp.name = "t";
    kp.ctaThreads = 256;
    kp.sharedBytesPerCta = 1024;
    EXPECT_DOUBLE_EQ(kp.sharedBytesPerThread(), 4.0);
    EXPECT_EQ(kp.warpsPerCta(), 8u);
    kp.validate(); // must not die
}

TEST(InstrStream, PeekPopAndExhaustion)
{
    std::vector<WarpInstr> v = {instr::alu(0), instr::alu(1),
                                instr::bar()};
    InstrStream s(std::make_unique<FixedProgram>(v));
    ASSERT_NE(s.peek(), nullptr);
    EXPECT_EQ(s.peek()->dst, 0);
    EXPECT_EQ(s.peek()->dst, 0); // peek is idempotent
    s.pop();
    EXPECT_EQ(s.peek()->dst, 1);
    s.pop();
    EXPECT_EQ(s.peek()->op, Opcode::Bar);
    s.pop();
    EXPECT_EQ(s.peek(), nullptr);
    EXPECT_TRUE(s.exhausted());
}

std::vector<WarpInstr>
drain(WarpProgram& prog)
{
    std::vector<WarpInstr> out;
    while (prog.fill(out)) {
    }
    return out;
}

TEST(SpillInjector, NoSpillsWhenRegsSufficient)
{
    std::vector<WarpInstr> base(100, instr::alu(3, 1, 2));
    SpillConfig cfg;
    cfg.neededRegs = 16;
    cfg.allocatedRegs = 16;
    cfg.multiplier = 1.0;
    SpillInjector inj(std::make_unique<FixedProgram>(base), cfg, 0);
    std::vector<WarpInstr> out = drain(inj);
    EXPECT_EQ(out.size(), base.size());
    for (const WarpInstr& in : out)
        EXPECT_NE(in.op, Opcode::StLocal);
}

TEST(SpillInjector, InjectsAtConfiguredRate)
{
    std::vector<WarpInstr> base(1000, instr::alu(3, 1, 2));
    SpillConfig cfg;
    cfg.neededRegs = 32;
    cfg.allocatedRegs = 18;
    cfg.multiplier = 1.4;
    SpillInjector inj(std::make_unique<FixedProgram>(base), cfg, 0);
    std::vector<WarpInstr> out = drain(inj);
    EXPECT_NEAR(static_cast<double>(out.size()) / base.size(), 1.4, 0.01);

    // Injected ops alternate stores and fills in local space.
    u64 st = 0, ld = 0;
    for (const WarpInstr& in : out) {
        if (in.op == Opcode::StLocal)
            ++st;
        else if (in.op == Opcode::LdLocal)
            ++ld;
    }
    EXPECT_NEAR(static_cast<double>(st), static_cast<double>(ld), 1.0);
    EXPECT_EQ(st + ld, out.size() - base.size());
}

TEST(SpillInjector, RemapsRegistersIntoAllocatedRange)
{
    std::vector<WarpInstr> base;
    for (RegId r = 0; r < 32; ++r)
        base.push_back(instr::alu(r, static_cast<RegId>(31 - r)));
    SpillConfig cfg;
    cfg.neededRegs = 32;
    cfg.allocatedRegs = 18;
    cfg.multiplier = 1.2;
    SpillInjector inj(std::make_unique<FixedProgram>(base), cfg, 3);
    for (const WarpInstr& in : drain(inj)) {
        if (in.hasDst()) {
            EXPECT_LT(in.dst, cfg.allocatedRegs);
        }
        for (u8 s = 0; s < in.numSrc; ++s) {
            EXPECT_LT(in.src[s], cfg.allocatedRegs);
        }
    }
}

TEST(SpillInjector, SpillAddressesCoalesceAndAreWarpPrivate)
{
    SpillConfig cfg;
    cfg.neededRegs = 24;
    cfg.allocatedRegs = 18;
    cfg.multiplier = 1.3;
    SpillInjector a(std::make_unique<FixedProgram>(std::vector<WarpInstr>{}), cfg, 0);
    SpillInjector b(std::make_unique<FixedProgram>(std::vector<WarpInstr>{}), cfg, 1);

    // Lane-interleaved: consecutive lanes 4B apart (coalesced line).
    EXPECT_EQ(a.slotAddr(0, 1) - a.slotAddr(0, 0), 4u);
    EXPECT_GE(a.slotAddr(0, 0), kLocalBase);
    // Different warps never overlap.
    u64 warp_bytes =
        static_cast<u64>(cfg.numSlots()) * kWarpWidth * kRegBytes;
    EXPECT_EQ(b.slotAddr(0, 0) - a.slotAddr(0, 0), warp_bytes);
}

TEST(SpillInjector, BarriersNeverSpill)
{
    std::vector<WarpInstr> base(50, instr::bar());
    SpillConfig cfg;
    cfg.neededRegs = 32;
    cfg.allocatedRegs = 18;
    cfg.multiplier = 2.0;
    SpillInjector inj(std::make_unique<FixedProgram>(base), cfg, 0);
    std::vector<WarpInstr> out = drain(inj);
    EXPECT_EQ(out.size(), base.size());
}

} // namespace
} // namespace unimem

// ---- Trace serialization (arch/trace_io) -------------------------------

#include <sstream>

#include "arch/trace_io.hh"

namespace unimem {
namespace {

/** Tiny kernel covering every opcode and a partial mask. */
class TraceProbeKernel : public KernelModel
{
  public:
    TraceProbeKernel()
    {
        params_.name = "probe";
        params_.regsPerThread = 8;
        params_.sharedBytesPerCta = 1024;
        params_.ctaThreads = 64;
        params_.gridCtas = 2;
    }

    const KernelParams& params() const override { return params_; }

    std::unique_ptr<WarpProgram>
    warpProgram(const WarpCtx& ctx) const override
    {
        std::vector<WarpInstr> v;
        v.push_back(instr::alu(1, 0));
        v.push_back(instr::alu(2, 1, 3, kInvalidReg, true));
        v.push_back(instr::sfu(3, 2));

        WarpInstr ld = instr::mem(Opcode::LdGlobal, 4, 1, 0x0f0f0f0fu);
        for (u32 lane = 0; lane < kWarpWidth; ++lane)
            ld.addr[lane] = 0x1000 + ctx.ctaId * 4096 +
                            ctx.warpInCta * 512 + lane * 8;
        ld.accessBytes = 8;
        v.push_back(ld);

        WarpInstr st = instr::mem(Opcode::StShared, 4, 2);
        for (u32 lane = 0; lane < kWarpWidth; ++lane)
            st.addr[lane] = static_cast<Addr>(ctx.ctaId) * 1024 +
                            lane * 4;
        v.push_back(st);
        v.push_back(instr::bar());

        WarpInstr tex = instr::mem(Opcode::Tex, 5, 1);
        for (u32 lane = 0; lane < kWarpWidth; ++lane)
            tex.addr[lane] = lane * 128;
        v.push_back(tex);
        return std::make_unique<FixedProgram>(v);
    }

  private:
    KernelParams params_;
};

TEST(TraceIo, RoundTripPreservesEverything)
{
    TraceProbeKernel k;
    std::stringstream ss;
    writeTrace(k, ss);
    TraceFileKernel loaded(ss);

    EXPECT_EQ(loaded.params().name, "probe");
    EXPECT_EQ(loaded.params().regsPerThread, 8u);
    EXPECT_EQ(loaded.params().sharedBytesPerCta, 1024u);
    EXPECT_EQ(loaded.params().ctaThreads, 64u);
    EXPECT_EQ(loaded.params().gridCtas, 2u);
    EXPECT_EQ(loaded.numWarps(), 4u); // 2 CTAs x 2 warps

    for (u32 cta = 0; cta < 2; ++cta) {
        for (u32 w = 0; w < 2; ++w) {
            WarpCtx ctx;
            ctx.ctaId = cta;
            ctx.warpInCta = w;
            ctx.warpsPerCta = 2;
            ctx.threadsPerCta = 64;
            std::vector<WarpInstr> a, b;
            auto pa = k.warpProgram(ctx);
            while (pa->fill(a)) {
            }
            auto pb = loaded.warpProgram(ctx);
            while (pb->fill(b)) {
            }
            ASSERT_EQ(a.size(), b.size());
            for (size_t i = 0; i < a.size(); ++i) {
                EXPECT_EQ(a[i].op, b[i].op) << i;
                EXPECT_EQ(a[i].dst, b[i].dst) << i;
                EXPECT_EQ(a[i].numSrc, b[i].numSrc) << i;
                EXPECT_EQ(a[i].activeMask, b[i].activeMask) << i;
                EXPECT_EQ(a[i].accessBytes, b[i].accessBytes) << i;
                if (isMemOp(a[i].op)) {
                    for (u32 lane = 0; lane < kWarpWidth; ++lane) {
                        if (a[i].laneActive(lane)) {
                            EXPECT_EQ(a[i].addr[lane], b[i].addr[lane])
                                << i << " lane " << lane;
                        }
                    }
                }
            }
        }
    }
}

TEST(TraceIo, RejectsBadMagic)
{
    std::stringstream ss("not-a-trace 1\n");
    EXPECT_DEATH({ TraceFileKernel k(ss); }, "magic");
}

TEST(TraceIo, RejectsWrongVersion)
{
    std::stringstream ss("unimem-trace 99\nkernel x regs 8 cta 32 "
                         "grid 1\n");
    EXPECT_DEATH({ TraceFileKernel k(ss); }, "version");
}

TEST(TraceIo, RejectsMissingWarps)
{
    std::stringstream ss(
        "unimem-trace 1\nkernel x regs 8 shared 0 cta 64 grid 2\n"
        "warp 0 0\ni ialu 1 0 65535 65535 ffffffff 4\nend\n");
    EXPECT_DEATH({ TraceFileKernel k(ss); }, "warp streams");
}

TEST(TraceIo, RejectsAddressesWithoutMemOp)
{
    std::stringstream ss(
        "unimem-trace 1\nkernel x regs 8 shared 0 cta 32 grid 1\n"
        "warp 0 0\na 1000\nend\n");
    EXPECT_DEATH({ TraceFileKernel k(ss); }, "address");
}

} // namespace
} // namespace unimem
