file(REMOVE_RECURSE
  "CMakeFiles/needle_tuning.dir/needle_tuning.cpp.o"
  "CMakeFiles/needle_tuning.dir/needle_tuning.cpp.o.d"
  "needle_tuning"
  "needle_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/needle_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
