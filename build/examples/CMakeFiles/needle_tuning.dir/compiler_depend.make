# Empty compiler generated dependencies file for needle_tuning.
# This may be replaced when dependencies are built.
