file(REMOVE_RECURSE
  "CMakeFiles/multi_kernel_app.dir/multi_kernel_app.cpp.o"
  "CMakeFiles/multi_kernel_app.dir/multi_kernel_app.cpp.o.d"
  "multi_kernel_app"
  "multi_kernel_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_kernel_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
