# Empty dependencies file for multi_kernel_app.
# This may be replaced when dependencies are built.
