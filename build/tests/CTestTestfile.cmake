# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_arch[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_regfile[1]_include.cmake")
include("/root/repo/build/tests/test_sched[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_energy[1]_include.cmake")
include("/root/repo/build/tests/test_sm[1]_include.cmake")
include("/root/repo/build/tests/test_kernels[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_paper_shapes[1]_include.cmake")
include("/root/repo/build/tests/test_sm_advanced[1]_include.cmake")
include("/root/repo/build/tests/test_chip[1]_include.cmake")
include("/root/repo/build/tests/test_golden_models[1]_include.cmake")
include("/root/repo/build/tests/test_kernel_structure[1]_include.cmake")
