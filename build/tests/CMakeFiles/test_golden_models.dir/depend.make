# Empty dependencies file for test_golden_models.
# This may be replaced when dependencies are built.
