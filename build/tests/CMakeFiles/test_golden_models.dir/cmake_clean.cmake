file(REMOVE_RECURSE
  "CMakeFiles/test_golden_models.dir/test_golden_models.cc.o"
  "CMakeFiles/test_golden_models.dir/test_golden_models.cc.o.d"
  "test_golden_models"
  "test_golden_models.pdb"
  "test_golden_models[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_golden_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
