file(REMOVE_RECURSE
  "CMakeFiles/test_sm_advanced.dir/test_sm_advanced.cc.o"
  "CMakeFiles/test_sm_advanced.dir/test_sm_advanced.cc.o.d"
  "test_sm_advanced"
  "test_sm_advanced.pdb"
  "test_sm_advanced[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sm_advanced.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
