
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_common.cc" "tests/CMakeFiles/test_common.dir/test_common.cc.o" "gcc" "tests/CMakeFiles/test_common.dir/test_common.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/unimem_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/unimem_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/sm/CMakeFiles/unimem_sm.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/unimem_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/unimem_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/unimem_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/regfile/CMakeFiles/unimem_regfile.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/unimem_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/unimem_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/unimem_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
