# Empty compiler generated dependencies file for unimem_sim.
# This may be replaced when dependencies are built.
