file(REMOVE_RECURSE
  "libunimem_sim.a"
)
