file(REMOVE_RECURSE
  "CMakeFiles/unimem_sim.dir/experiments.cc.o"
  "CMakeFiles/unimem_sim.dir/experiments.cc.o.d"
  "CMakeFiles/unimem_sim.dir/multi_kernel.cc.o"
  "CMakeFiles/unimem_sim.dir/multi_kernel.cc.o.d"
  "CMakeFiles/unimem_sim.dir/simulator.cc.o"
  "CMakeFiles/unimem_sim.dir/simulator.cc.o.d"
  "libunimem_sim.a"
  "libunimem_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unimem_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
