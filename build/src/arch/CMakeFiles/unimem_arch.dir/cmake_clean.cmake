file(REMOVE_RECURSE
  "CMakeFiles/unimem_arch.dir/kernel_params.cc.o"
  "CMakeFiles/unimem_arch.dir/kernel_params.cc.o.d"
  "CMakeFiles/unimem_arch.dir/opcode.cc.o"
  "CMakeFiles/unimem_arch.dir/opcode.cc.o.d"
  "CMakeFiles/unimem_arch.dir/spill_injector.cc.o"
  "CMakeFiles/unimem_arch.dir/spill_injector.cc.o.d"
  "CMakeFiles/unimem_arch.dir/trace_io.cc.o"
  "CMakeFiles/unimem_arch.dir/trace_io.cc.o.d"
  "libunimem_arch.a"
  "libunimem_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unimem_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
