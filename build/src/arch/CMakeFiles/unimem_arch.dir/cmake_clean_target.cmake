file(REMOVE_RECURSE
  "libunimem_arch.a"
)
