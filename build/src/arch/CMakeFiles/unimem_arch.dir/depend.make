# Empty dependencies file for unimem_arch.
# This may be replaced when dependencies are built.
