
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/kernel_params.cc" "src/arch/CMakeFiles/unimem_arch.dir/kernel_params.cc.o" "gcc" "src/arch/CMakeFiles/unimem_arch.dir/kernel_params.cc.o.d"
  "/root/repo/src/arch/opcode.cc" "src/arch/CMakeFiles/unimem_arch.dir/opcode.cc.o" "gcc" "src/arch/CMakeFiles/unimem_arch.dir/opcode.cc.o.d"
  "/root/repo/src/arch/spill_injector.cc" "src/arch/CMakeFiles/unimem_arch.dir/spill_injector.cc.o" "gcc" "src/arch/CMakeFiles/unimem_arch.dir/spill_injector.cc.o.d"
  "/root/repo/src/arch/trace_io.cc" "src/arch/CMakeFiles/unimem_arch.dir/trace_io.cc.o" "gcc" "src/arch/CMakeFiles/unimem_arch.dir/trace_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/unimem_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
