# Empty dependencies file for unimem_sched.
# This may be replaced when dependencies are built.
