file(REMOVE_RECURSE
  "CMakeFiles/unimem_sched.dir/occupancy.cc.o"
  "CMakeFiles/unimem_sched.dir/occupancy.cc.o.d"
  "CMakeFiles/unimem_sched.dir/scoreboard.cc.o"
  "CMakeFiles/unimem_sched.dir/scoreboard.cc.o.d"
  "CMakeFiles/unimem_sched.dir/two_level_scheduler.cc.o"
  "CMakeFiles/unimem_sched.dir/two_level_scheduler.cc.o.d"
  "libunimem_sched.a"
  "libunimem_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unimem_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
