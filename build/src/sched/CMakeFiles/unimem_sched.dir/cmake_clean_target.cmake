file(REMOVE_RECURSE
  "libunimem_sched.a"
)
