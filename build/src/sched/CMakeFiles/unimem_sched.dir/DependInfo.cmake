
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/occupancy.cc" "src/sched/CMakeFiles/unimem_sched.dir/occupancy.cc.o" "gcc" "src/sched/CMakeFiles/unimem_sched.dir/occupancy.cc.o.d"
  "/root/repo/src/sched/scoreboard.cc" "src/sched/CMakeFiles/unimem_sched.dir/scoreboard.cc.o" "gcc" "src/sched/CMakeFiles/unimem_sched.dir/scoreboard.cc.o.d"
  "/root/repo/src/sched/two_level_scheduler.cc" "src/sched/CMakeFiles/unimem_sched.dir/two_level_scheduler.cc.o" "gcc" "src/sched/CMakeFiles/unimem_sched.dir/two_level_scheduler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/arch/CMakeFiles/unimem_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/unimem_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
