file(REMOVE_RECURSE
  "CMakeFiles/unimem_common.dir/cli.cc.o"
  "CMakeFiles/unimem_common.dir/cli.cc.o.d"
  "CMakeFiles/unimem_common.dir/log.cc.o"
  "CMakeFiles/unimem_common.dir/log.cc.o.d"
  "CMakeFiles/unimem_common.dir/stats.cc.o"
  "CMakeFiles/unimem_common.dir/stats.cc.o.d"
  "CMakeFiles/unimem_common.dir/table.cc.o"
  "CMakeFiles/unimem_common.dir/table.cc.o.d"
  "libunimem_common.a"
  "libunimem_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unimem_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
