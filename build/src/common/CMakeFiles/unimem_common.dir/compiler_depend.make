# Empty compiler generated dependencies file for unimem_common.
# This may be replaced when dependencies are built.
