file(REMOVE_RECURSE
  "libunimem_common.a"
)
