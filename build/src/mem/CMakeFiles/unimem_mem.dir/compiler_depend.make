# Empty compiler generated dependencies file for unimem_mem.
# This may be replaced when dependencies are built.
