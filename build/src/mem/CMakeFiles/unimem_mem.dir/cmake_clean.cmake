file(REMOVE_RECURSE
  "CMakeFiles/unimem_mem.dir/bank_conflicts.cc.o"
  "CMakeFiles/unimem_mem.dir/bank_conflicts.cc.o.d"
  "CMakeFiles/unimem_mem.dir/cache.cc.o"
  "CMakeFiles/unimem_mem.dir/cache.cc.o.d"
  "CMakeFiles/unimem_mem.dir/coalescer.cc.o"
  "CMakeFiles/unimem_mem.dir/coalescer.cc.o.d"
  "CMakeFiles/unimem_mem.dir/dram.cc.o"
  "CMakeFiles/unimem_mem.dir/dram.cc.o.d"
  "libunimem_mem.a"
  "libunimem_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unimem_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
