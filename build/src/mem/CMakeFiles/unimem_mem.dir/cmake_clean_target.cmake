file(REMOVE_RECURSE
  "libunimem_mem.a"
)
