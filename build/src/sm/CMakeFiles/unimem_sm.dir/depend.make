# Empty dependencies file for unimem_sm.
# This may be replaced when dependencies are built.
