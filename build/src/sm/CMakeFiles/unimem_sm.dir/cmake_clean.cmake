file(REMOVE_RECURSE
  "CMakeFiles/unimem_sm.dir/chip.cc.o"
  "CMakeFiles/unimem_sm.dir/chip.cc.o.d"
  "CMakeFiles/unimem_sm.dir/sm.cc.o"
  "CMakeFiles/unimem_sm.dir/sm.cc.o.d"
  "CMakeFiles/unimem_sm.dir/sm_stats.cc.o"
  "CMakeFiles/unimem_sm.dir/sm_stats.cc.o.d"
  "CMakeFiles/unimem_sm.dir/tex_unit.cc.o"
  "CMakeFiles/unimem_sm.dir/tex_unit.cc.o.d"
  "libunimem_sm.a"
  "libunimem_sm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unimem_sm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
