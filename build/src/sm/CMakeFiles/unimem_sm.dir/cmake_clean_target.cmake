file(REMOVE_RECURSE
  "libunimem_sm.a"
)
