# Empty dependencies file for unimem_energy.
# This may be replaced when dependencies are built.
