file(REMOVE_RECURSE
  "libunimem_energy.a"
)
