file(REMOVE_RECURSE
  "CMakeFiles/unimem_energy.dir/energy_model.cc.o"
  "CMakeFiles/unimem_energy.dir/energy_model.cc.o.d"
  "libunimem_energy.a"
  "libunimem_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unimem_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
