file(REMOVE_RECURSE
  "CMakeFiles/unimem_regfile.dir/rf_hierarchy.cc.o"
  "CMakeFiles/unimem_regfile.dir/rf_hierarchy.cc.o.d"
  "libunimem_regfile.a"
  "libunimem_regfile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unimem_regfile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
