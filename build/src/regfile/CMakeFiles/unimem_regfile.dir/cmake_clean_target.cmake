file(REMOVE_RECURSE
  "libunimem_regfile.a"
)
