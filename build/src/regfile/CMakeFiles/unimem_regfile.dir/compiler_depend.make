# Empty compiler generated dependencies file for unimem_regfile.
# This may be replaced when dependencies are built.
