
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/aes.cc" "src/kernels/CMakeFiles/unimem_kernels.dir/aes.cc.o" "gcc" "src/kernels/CMakeFiles/unimem_kernels.dir/aes.cc.o.d"
  "/root/repo/src/kernels/backprop.cc" "src/kernels/CMakeFiles/unimem_kernels.dir/backprop.cc.o" "gcc" "src/kernels/CMakeFiles/unimem_kernels.dir/backprop.cc.o.d"
  "/root/repo/src/kernels/bfs.cc" "src/kernels/CMakeFiles/unimem_kernels.dir/bfs.cc.o" "gcc" "src/kernels/CMakeFiles/unimem_kernels.dir/bfs.cc.o.d"
  "/root/repo/src/kernels/bicubictexture.cc" "src/kernels/CMakeFiles/unimem_kernels.dir/bicubictexture.cc.o" "gcc" "src/kernels/CMakeFiles/unimem_kernels.dir/bicubictexture.cc.o.d"
  "/root/repo/src/kernels/dct8x8.cc" "src/kernels/CMakeFiles/unimem_kernels.dir/dct8x8.cc.o" "gcc" "src/kernels/CMakeFiles/unimem_kernels.dir/dct8x8.cc.o.d"
  "/root/repo/src/kernels/dgemm.cc" "src/kernels/CMakeFiles/unimem_kernels.dir/dgemm.cc.o" "gcc" "src/kernels/CMakeFiles/unimem_kernels.dir/dgemm.cc.o.d"
  "/root/repo/src/kernels/dwthaar1d.cc" "src/kernels/CMakeFiles/unimem_kernels.dir/dwthaar1d.cc.o" "gcc" "src/kernels/CMakeFiles/unimem_kernels.dir/dwthaar1d.cc.o.d"
  "/root/repo/src/kernels/hotspot.cc" "src/kernels/CMakeFiles/unimem_kernels.dir/hotspot.cc.o" "gcc" "src/kernels/CMakeFiles/unimem_kernels.dir/hotspot.cc.o.d"
  "/root/repo/src/kernels/hwt.cc" "src/kernels/CMakeFiles/unimem_kernels.dir/hwt.cc.o" "gcc" "src/kernels/CMakeFiles/unimem_kernels.dir/hwt.cc.o.d"
  "/root/repo/src/kernels/lps.cc" "src/kernels/CMakeFiles/unimem_kernels.dir/lps.cc.o" "gcc" "src/kernels/CMakeFiles/unimem_kernels.dir/lps.cc.o.d"
  "/root/repo/src/kernels/lu.cc" "src/kernels/CMakeFiles/unimem_kernels.dir/lu.cc.o" "gcc" "src/kernels/CMakeFiles/unimem_kernels.dir/lu.cc.o.d"
  "/root/repo/src/kernels/matrixmul.cc" "src/kernels/CMakeFiles/unimem_kernels.dir/matrixmul.cc.o" "gcc" "src/kernels/CMakeFiles/unimem_kernels.dir/matrixmul.cc.o.d"
  "/root/repo/src/kernels/mummer.cc" "src/kernels/CMakeFiles/unimem_kernels.dir/mummer.cc.o" "gcc" "src/kernels/CMakeFiles/unimem_kernels.dir/mummer.cc.o.d"
  "/root/repo/src/kernels/nbody.cc" "src/kernels/CMakeFiles/unimem_kernels.dir/nbody.cc.o" "gcc" "src/kernels/CMakeFiles/unimem_kernels.dir/nbody.cc.o.d"
  "/root/repo/src/kernels/needle.cc" "src/kernels/CMakeFiles/unimem_kernels.dir/needle.cc.o" "gcc" "src/kernels/CMakeFiles/unimem_kernels.dir/needle.cc.o.d"
  "/root/repo/src/kernels/nn.cc" "src/kernels/CMakeFiles/unimem_kernels.dir/nn.cc.o" "gcc" "src/kernels/CMakeFiles/unimem_kernels.dir/nn.cc.o.d"
  "/root/repo/src/kernels/pcr.cc" "src/kernels/CMakeFiles/unimem_kernels.dir/pcr.cc.o" "gcc" "src/kernels/CMakeFiles/unimem_kernels.dir/pcr.cc.o.d"
  "/root/repo/src/kernels/ray.cc" "src/kernels/CMakeFiles/unimem_kernels.dir/ray.cc.o" "gcc" "src/kernels/CMakeFiles/unimem_kernels.dir/ray.cc.o.d"
  "/root/repo/src/kernels/recursivegaussian.cc" "src/kernels/CMakeFiles/unimem_kernels.dir/recursivegaussian.cc.o" "gcc" "src/kernels/CMakeFiles/unimem_kernels.dir/recursivegaussian.cc.o.d"
  "/root/repo/src/kernels/registry.cc" "src/kernels/CMakeFiles/unimem_kernels.dir/registry.cc.o" "gcc" "src/kernels/CMakeFiles/unimem_kernels.dir/registry.cc.o.d"
  "/root/repo/src/kernels/sad.cc" "src/kernels/CMakeFiles/unimem_kernels.dir/sad.cc.o" "gcc" "src/kernels/CMakeFiles/unimem_kernels.dir/sad.cc.o.d"
  "/root/repo/src/kernels/scalarprod.cc" "src/kernels/CMakeFiles/unimem_kernels.dir/scalarprod.cc.o" "gcc" "src/kernels/CMakeFiles/unimem_kernels.dir/scalarprod.cc.o.d"
  "/root/repo/src/kernels/sgemv.cc" "src/kernels/CMakeFiles/unimem_kernels.dir/sgemv.cc.o" "gcc" "src/kernels/CMakeFiles/unimem_kernels.dir/sgemv.cc.o.d"
  "/root/repo/src/kernels/sobolqrng.cc" "src/kernels/CMakeFiles/unimem_kernels.dir/sobolqrng.cc.o" "gcc" "src/kernels/CMakeFiles/unimem_kernels.dir/sobolqrng.cc.o.d"
  "/root/repo/src/kernels/srad.cc" "src/kernels/CMakeFiles/unimem_kernels.dir/srad.cc.o" "gcc" "src/kernels/CMakeFiles/unimem_kernels.dir/srad.cc.o.d"
  "/root/repo/src/kernels/step_program.cc" "src/kernels/CMakeFiles/unimem_kernels.dir/step_program.cc.o" "gcc" "src/kernels/CMakeFiles/unimem_kernels.dir/step_program.cc.o.d"
  "/root/repo/src/kernels/sto.cc" "src/kernels/CMakeFiles/unimem_kernels.dir/sto.cc.o" "gcc" "src/kernels/CMakeFiles/unimem_kernels.dir/sto.cc.o.d"
  "/root/repo/src/kernels/vectoradd.cc" "src/kernels/CMakeFiles/unimem_kernels.dir/vectoradd.cc.o" "gcc" "src/kernels/CMakeFiles/unimem_kernels.dir/vectoradd.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/arch/CMakeFiles/unimem_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/unimem_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
