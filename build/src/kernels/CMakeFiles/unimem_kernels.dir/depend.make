# Empty dependencies file for unimem_kernels.
# This may be replaced when dependencies are built.
