file(REMOVE_RECURSE
  "libunimem_kernels.a"
)
