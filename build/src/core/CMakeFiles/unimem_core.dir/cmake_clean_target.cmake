file(REMOVE_RECURSE
  "libunimem_core.a"
)
