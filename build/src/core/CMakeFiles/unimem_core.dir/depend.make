# Empty dependencies file for unimem_core.
# This may be replaced when dependencies are built.
