file(REMOVE_RECURSE
  "CMakeFiles/unimem_core.dir/allocation.cc.o"
  "CMakeFiles/unimem_core.dir/allocation.cc.o.d"
  "CMakeFiles/unimem_core.dir/conflict_model.cc.o"
  "CMakeFiles/unimem_core.dir/conflict_model.cc.o.d"
  "CMakeFiles/unimem_core.dir/partition.cc.o"
  "CMakeFiles/unimem_core.dir/partition.cc.o.d"
  "libunimem_core.a"
  "libunimem_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unimem_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
