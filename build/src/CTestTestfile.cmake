# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("arch")
subdirs("mem")
subdirs("regfile")
subdirs("sched")
subdirs("core")
subdirs("energy")
subdirs("sm")
subdirs("kernels")
subdirs("sim")
