# Empty compiler generated dependencies file for unimem_cli.
# This may be replaced when dependencies are built.
