file(REMOVE_RECURSE
  "CMakeFiles/unimem_cli.dir/unimem_cli.cpp.o"
  "CMakeFiles/unimem_cli.dir/unimem_cli.cpp.o.d"
  "unimem_cli"
  "unimem_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unimem_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
