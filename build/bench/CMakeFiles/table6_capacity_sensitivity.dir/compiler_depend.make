# Empty compiler generated dependencies file for table6_capacity_sensitivity.
# This may be replaced when dependencies are built.
