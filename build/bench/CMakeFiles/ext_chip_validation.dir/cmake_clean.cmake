file(REMOVE_RECURSE
  "CMakeFiles/ext_chip_validation.dir/ext_chip_validation.cc.o"
  "CMakeFiles/ext_chip_validation.dir/ext_chip_validation.cc.o.d"
  "ext_chip_validation"
  "ext_chip_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_chip_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
