# Empty dependencies file for ext_chip_validation.
# This may be replaced when dependencies are built.
