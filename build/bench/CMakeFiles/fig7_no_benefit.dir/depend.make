# Empty dependencies file for fig7_no_benefit.
# This may be replaced when dependencies are built.
