file(REMOVE_RECURSE
  "CMakeFiles/fig7_no_benefit.dir/fig7_no_benefit.cc.o"
  "CMakeFiles/fig7_no_benefit.dir/fig7_no_benefit.cc.o.d"
  "fig7_no_benefit"
  "fig7_no_benefit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_no_benefit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
