# Empty compiler generated dependencies file for table5_bank_conflicts.
# This may be replaced when dependencies are built.
