file(REMOVE_RECURSE
  "CMakeFiles/table5_bank_conflicts.dir/table5_bank_conflicts.cc.o"
  "CMakeFiles/table5_bank_conflicts.dir/table5_bank_conflicts.cc.o.d"
  "table5_bank_conflicts"
  "table5_bank_conflicts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_bank_conflicts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
