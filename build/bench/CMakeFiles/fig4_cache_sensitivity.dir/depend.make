# Empty dependencies file for fig4_cache_sensitivity.
# This may be replaced when dependencies are built.
