file(REMOVE_RECURSE
  "CMakeFiles/fig4_cache_sensitivity.dir/fig4_cache_sensitivity.cc.o"
  "CMakeFiles/fig4_cache_sensitivity.dir/fig4_cache_sensitivity.cc.o.d"
  "fig4_cache_sensitivity"
  "fig4_cache_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_cache_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
