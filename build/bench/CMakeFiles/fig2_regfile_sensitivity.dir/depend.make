# Empty dependencies file for fig2_regfile_sensitivity.
# This may be replaced when dependencies are built.
