file(REMOVE_RECURSE
  "CMakeFiles/fig2_regfile_sensitivity.dir/fig2_regfile_sensitivity.cc.o"
  "CMakeFiles/fig2_regfile_sensitivity.dir/fig2_regfile_sensitivity.cc.o.d"
  "fig2_regfile_sensitivity"
  "fig2_regfile_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_regfile_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
