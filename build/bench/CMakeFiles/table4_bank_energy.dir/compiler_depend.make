# Empty compiler generated dependencies file for table4_bank_energy.
# This may be replaced when dependencies are built.
