file(REMOVE_RECURSE
  "CMakeFiles/table4_bank_energy.dir/table4_bank_energy.cc.o"
  "CMakeFiles/table4_bank_energy.dir/table4_bank_energy.cc.o.d"
  "table4_bank_energy"
  "table4_bank_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_bank_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
