file(REMOVE_RECURSE
  "CMakeFiles/microbench_simulator.dir/microbench_simulator.cc.o"
  "CMakeFiles/microbench_simulator.dir/microbench_simulator.cc.o.d"
  "microbench_simulator"
  "microbench_simulator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microbench_simulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
