# Empty compiler generated dependencies file for microbench_simulator.
# This may be replaced when dependencies are built.
