file(REMOVE_RECURSE
  "CMakeFiles/fig10_fermi_like.dir/fig10_fermi_like.cc.o"
  "CMakeFiles/fig10_fermi_like.dir/fig10_fermi_like.cc.o.d"
  "fig10_fermi_like"
  "fig10_fermi_like.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_fermi_like.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
