# Empty compiler generated dependencies file for fig10_fermi_like.
# This may be replaced when dependencies are built.
