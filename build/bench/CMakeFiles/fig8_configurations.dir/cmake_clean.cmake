file(REMOVE_RECURSE
  "CMakeFiles/fig8_configurations.dir/fig8_configurations.cc.o"
  "CMakeFiles/fig8_configurations.dir/fig8_configurations.cc.o.d"
  "fig8_configurations"
  "fig8_configurations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_configurations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
