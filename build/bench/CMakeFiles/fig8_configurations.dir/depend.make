# Empty dependencies file for fig8_configurations.
# This may be replaced when dependencies are built.
