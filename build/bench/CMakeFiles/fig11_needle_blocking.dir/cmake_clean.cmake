file(REMOVE_RECURSE
  "CMakeFiles/fig11_needle_blocking.dir/fig11_needle_blocking.cc.o"
  "CMakeFiles/fig11_needle_blocking.dir/fig11_needle_blocking.cc.o.d"
  "fig11_needle_blocking"
  "fig11_needle_blocking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_needle_blocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
