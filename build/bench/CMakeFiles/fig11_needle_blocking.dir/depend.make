# Empty dependencies file for fig11_needle_blocking.
# This may be replaced when dependencies are built.
