file(REMOVE_RECURSE
  "CMakeFiles/ext_multi_kernel.dir/ext_multi_kernel.cc.o"
  "CMakeFiles/ext_multi_kernel.dir/ext_multi_kernel.cc.o.d"
  "ext_multi_kernel"
  "ext_multi_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_multi_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
