# Empty compiler generated dependencies file for ext_multi_kernel.
# This may be replaced when dependencies are built.
