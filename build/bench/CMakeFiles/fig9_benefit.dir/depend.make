# Empty dependencies file for fig9_benefit.
# This may be replaced when dependencies are built.
