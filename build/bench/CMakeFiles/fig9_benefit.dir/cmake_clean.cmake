file(REMOVE_RECURSE
  "CMakeFiles/fig9_benefit.dir/fig9_benefit.cc.o"
  "CMakeFiles/fig9_benefit.dir/fig9_benefit.cc.o.d"
  "fig9_benefit"
  "fig9_benefit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_benefit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
