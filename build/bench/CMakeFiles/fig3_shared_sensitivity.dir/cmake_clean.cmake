file(REMOVE_RECURSE
  "CMakeFiles/fig3_shared_sensitivity.dir/fig3_shared_sensitivity.cc.o"
  "CMakeFiles/fig3_shared_sensitivity.dir/fig3_shared_sensitivity.cc.o.d"
  "fig3_shared_sensitivity"
  "fig3_shared_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_shared_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
