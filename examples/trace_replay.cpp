/**
 * @file
 * Trace-driven workflow (the paper's Ocelot methodology, Section 5.1):
 * dump a workload's execution/address trace to a file, reload it as a
 * kernel, and verify the replay simulates identically. External traces
 * in the same format (see arch/trace_io.hh) can drive every experiment
 * in this repository.
 *
 * Usage:
 *   trace_replay [--benchmark=sgemv] [--scale=0.25]
 *                [--file=/tmp/unimem.trace]
 */

#include <fstream>
#include <iostream>

#include "arch/trace_io.hh"
#include "common/cli.hh"
#include "common/log.hh"
#include "common/table.hh"
#include "kernels/registry.hh"
#include "sim/simulator.hh"

using namespace unimem;

int
main(int argc, char** argv)
{
    CliArgs args(argc, argv);
    std::string name = args.getString("benchmark", "sgemv");
    double scale = args.getDouble("scale", 0.25);
    std::string path = args.getString("file", "/tmp/unimem.trace");

    if (findBenchmark(name) == nullptr) {
        std::cerr << "unknown benchmark '" << name << "'\n";
        return 1;
    }

    auto original = createBenchmark(name, scale);

    std::cout << "dumping " << name << " trace to " << path << " ...\n";
    {
        std::ofstream os(path);
        if (!os)
            fatal("cannot open %s for writing", path.c_str());
        writeTrace(*original, os);
    }

    std::ifstream is(path);
    if (!is)
        fatal("cannot reopen %s", path.c_str());
    TraceFileKernel replay(is);
    std::cout << "reloaded " << replay.numWarps() << " warp streams ("
              << replay.params().gridCtas << " CTAs x "
              << replay.params().warpsPerCta() << " warps)\n\n";

    RunSpec spec;
    SimResult a = simulate(*original, spec);
    SimResult b = simulate(replay, spec);

    Table t({"source", "cycles", "warp instrs", "dram sectors", "ipc"});
    t.addRow({"generator", std::to_string(a.cycles()),
              std::to_string(a.sm.warpInstrs),
              std::to_string(a.dramSectors()), Table::num(a.sm.ipc(), 2)});
    t.addRow({"trace file", std::to_string(b.cycles()),
              std::to_string(b.sm.warpInstrs),
              std::to_string(b.dramSectors()), Table::num(b.sm.ipc(), 2)});
    t.print(std::cout);

    bool identical = a.cycles() == b.cycles() &&
                     a.sm.warpInstrs == b.sm.warpInstrs &&
                     a.dramSectors() == b.dramSectors();
    std::cout << "\nreplay " << (identical ? "IDENTICAL" : "DIVERGED")
              << "\n";
    return identical ? 0 : 1;
}
