/**
 * @file
 * Capacity explorer: for one benchmark, sweep the unified memory
 * capacity and print how the Section 4.5 allocator splits it, plus the
 * resulting performance/energy against the partitioned baseline. This is
 * the "how much on-chip storage should an SM have?" question of paper
 * Section 6.4.
 *
 * Usage:
 *   capacity_explorer [--benchmark=pcr] [--scale=0.5] [--jobs=N]
 *                     [--min-kb=96] [--max-kb=512] [--step-kb=32]
 */

#include <iostream>

#include "common/cli.hh"
#include "common/table.hh"
#include "kernels/registry.hh"
#include "sim/experiments.hh"
#include "sim/sweep.hh"

using namespace unimem;

int
main(int argc, char** argv)
{
    CliArgs args(argc, argv);
    std::string name = args.getString("benchmark", "pcr");
    double scale = args.getDouble("scale", 0.5);
    u32 jobs = static_cast<u32>(args.getInt("jobs", 0));
    u64 min_kb = static_cast<u64>(args.getInt("min-kb", 96));
    u64 max_kb = static_cast<u64>(args.getInt("max-kb", 512));
    u64 step_kb = static_cast<u64>(args.getInt("step-kb", 32));

    if (findBenchmark(name) == nullptr) {
        std::cerr << "unknown benchmark '" << name << "'\n";
        return 1;
    }

    std::cout << "benchmark " << name << ": unified capacity sweep "
              << min_kb << "KB.." << max_kb << "KB (baseline: partitioned "
              << "256/64/64)\n\n";

    // One sweep: the baseline plus every feasible capacity point.
    std::vector<SweepJob> sweep;
    sweep.push_back(
        makeSweepJob(name + "/baseline", name, scale, RunSpec{}));
    std::vector<u64> feasibleKb;
    for (u64 kb = min_kb; kb <= max_kb; kb += step_kb) {
        auto k = createBenchmark(name, scale);
        if (!allocateUnified(k->params(), kb * 1024).launch.feasible)
            continue;
        RunSpec spec;
        spec.design = DesignKind::Unified;
        spec.unifiedCapacity = kb * 1024;
        sweep.push_back(makeSweepJob(
            name + "/" + std::to_string(kb) + "K", name, scale, spec));
        feasibleKb.push_back(kb);
    }
    SweepStats stats;
    std::vector<SimResult> results = runSweep(sweep, jobs, &stats);
    const SimResult& base = results[0];

    Table t({"capacity", "RF KB", "shared KB", "cache KB", "threads",
             "perf", "energy"});
    size_t fi = 0;
    for (u64 kb = min_kb; kb <= max_kb; kb += step_kb) {
        if (fi >= feasibleKb.size() || feasibleKb[fi] != kb) {
            t.addRow({std::to_string(kb) + " KB", "-", "-", "-",
                      "does not fit", "-", "-"});
            continue;
        }
        const SimResult& uni = results[1 + fi++];
        const AllocationDecision& d = uni.alloc;
        Comparison c = compare(uni, base);
        t.addRow({std::to_string(kb) + " KB",
                  std::to_string(d.partition.rfBytes / 1024),
                  std::to_string(d.partition.sharedBytes / 1024),
                  std::to_string(d.partition.cacheBytes / 1024),
                  std::to_string(d.launch.threads),
                  Table::num(c.speedup, 3), Table::num(c.energyRatio, 3)});
    }
    t.print(std::cout);
    std::cout << "\nsweep: " << stats.summary() << "\n";

    std::cout << "\nReading the table: performance usually saturates "
                 "once occupancy is maxed and the working set is "
                 "cached; energy has a sweet spot because extra SRAM "
                 "capacity leaks (paper Section 6.4).\n";
    return 0;
}
