/**
 * @file
 * Application tuning case study (paper Section 6.5 / Figure 11): on a
 * unified-memory GPU, the needle programmer can pick a larger blocking
 * factor because the scratchpad is no longer capped at 64 KB. This
 * example compares needle BF=16/32/64 on the partitioned baseline and
 * on unified designs of several capacities, printing the best
 * configuration for each machine.
 *
 * Usage:
 *   needle_tuning [--scale=0.5]
 */

#include <iostream>
#include <optional>

#include "common/cli.hh"
#include "common/table.hh"
#include "kernels/workloads.hh"
#include "sim/experiments.hh"

using namespace unimem;

namespace {

struct Outcome
{
    bool fits = false;
    Cycle cycles = 0;
    u32 threads = 0;
    u64 sharedKb = 0;
};

Outcome
runNeedle(u32 bf, double scale, std::optional<u64> unifiedCapacity)
{
    auto k = makeNeedle(bf, scale);
    RunSpec spec;
    if (unifiedCapacity) {
        spec.design = DesignKind::Unified;
        spec.unifiedCapacity = *unifiedCapacity;
    }
    AllocationDecision d = resolveAllocation(k->params(), spec);
    Outcome o;
    if (!d.launch.feasible)
        return o;
    SimResult r = simulate(*k, spec);
    o.fits = true;
    o.cycles = r.cycles();
    o.threads = d.launch.threads;
    o.sharedKb = d.launch.sharedBytes / 1024;
    return o;
}

} // namespace

int
main(int argc, char** argv)
{
    CliArgs args(argc, argv);
    double scale = args.getDouble("scale", 0.5);

    std::cout << "needle blocking-factor tuning (paper Section 6.5)\n\n";

    struct Machine
    {
        const char* label;
        std::optional<u64> unified;
    };
    const Machine machines[] = {
        {"partitioned 256/64/64", std::nullopt},
        {"unified 256KB", 256_KB},
        {"unified 384KB", 384_KB},
        {"unified 512KB", 512_KB},
    };

    for (const Machine& m : machines) {
        std::cout << "--- " << m.label << " ---\n";
        Table t({"BF", "threads", "shared KB", "cycles", "norm perf"});
        std::optional<double> best;
        Outcome results[3];
        const u32 bfs[] = {16, 32, 64};
        for (int i = 0; i < 3; ++i) {
            results[i] = runNeedle(bfs[i], scale, m.unified);
            if (results[i].fits) {
                double c = static_cast<double>(results[i].cycles);
                best = best ? std::min(*best, c) : c;
            }
        }
        u32 best_bf = 0;
        for (int i = 0; i < 3; ++i) {
            const Outcome& o = results[i];
            if (!o.fits) {
                t.addRow({std::to_string(bfs[i]), "-", "-",
                          "does not fit", "-"});
                continue;
            }
            double norm = *best / static_cast<double>(o.cycles);
            if (norm >= 0.9999)
                best_bf = bfs[i];
            t.addRow({std::to_string(bfs[i]), std::to_string(o.threads),
                      std::to_string(o.sharedKb),
                      std::to_string(o.cycles), Table::num(norm, 3)});
        }
        t.print(std::cout);
        std::cout << "best blocking factor: " << best_bf << "\n\n";
    }

    std::cout << "Expected shape (paper Figure 11): small scratchpads "
                 "force BF=16/32; with >300KB available, BF=64 wins "
                 "while needing fewer concurrent threads.\n";
    return 0;
}
