/**
 * @file
 * Defining your own workload against the public API: a KernelModel
 * subclass whose warp programs are built with the StepProgram helpers.
 *
 * The example models a histogram kernel: streaming element loads,
 * scattered scratchpad increments (a classic bank-conflict workload),
 * and a final flush to global memory. It is then evaluated on the
 * partitioned and unified designs across capacities.
 *
 * Usage:
 *   custom_kernel [--bins=256] [--scale=1.0]
 */

#include <iostream>

#include "common/cli.hh"
#include "common/table.hh"
#include "kernels/step_program.hh"
#include "kernels/workloads.hh"
#include "sim/experiments.hh"

using namespace unimem;

namespace {

class HistogramProgram : public StepProgram
{
  public:
    HistogramProgram(const WarpCtx& ctx, const KernelParams& kp,
                     u32 bins)
        : StepProgram(ctx, kp.regsPerThread, kChunks + 1,
                      kp.sharedBytesPerCta),
          bins_(bins)
    {
        warpGid_ = static_cast<Addr>(ctx.ctaId) * ctx.warpsPerCta +
                   ctx.warpInCta;
    }

    static constexpr u32 kChunks = 24;

  protected:
    void
    emitStep(u32 step) override
    {
        if (step == kChunks) {
            // Flush this warp's private sub-histogram.
            ldShared(static_cast<Addr>(ctx().warpInCta) * bins_ * 4, 4,
                     4);
            stGlobal((2ull << 32) + warpGid_ * bins_ * 4, 4, 4);
            return;
        }
        // Stream a chunk of input elements (coalesced).
        ldGlobal((warpGid_ * kChunks + step) * kWarpWidth * 4, 4, 4);
        alu(2);
        // Scattered increment: read-modify-write of a random bin in the
        // warp's scratchpad sub-histogram.
        for (u32 i = 0; i < 2; ++i) {
            LaneAddrs a{};
            for (u32 lane = 0; lane < kWarpWidth; ++lane)
                a[lane] = static_cast<Addr>(ctx().warpInCta) * bins_ * 4 +
                          rng().range(bins_) * 4;
            ldSharedIdx(a, 4);
            alu(1);
            stSharedIdx(a, 4);
        }
    }

  private:
    u32 bins_;
    Addr warpGid_ = 0;
};

class HistogramKernel : public SyntheticKernel
{
  public:
    HistogramKernel(u32 bins, double scale) : bins_(bins)
    {
        params_.name = "histogram";
        params_.regsPerThread = 16;
        params_.ctaThreads = 256;
        // One private sub-histogram per warp.
        params_.sharedBytesPerCta = 8 * bins * 4;
        params_.gridCtas = scaledCtas(24, scale);
    }

    std::unique_ptr<WarpProgram>
    warpProgram(const WarpCtx& ctx) const override
    {
        return std::make_unique<HistogramProgram>(ctx, params_, bins_);
    }

  private:
    u32 bins_;
};

} // namespace

int
main(int argc, char** argv)
{
    CliArgs args(argc, argv);
    u32 bins = static_cast<u32>(args.getInt("bins", 256));
    double scale = args.getDouble("scale", 1.0);

    HistogramKernel kernel(bins, scale);
    std::cout << "custom kernel '" << kernel.params().name << "': "
              << bins << " bins, "
              << Table::num(kernel.params().sharedBytesPerThread(), 1)
              << " B scratchpad/thread\n\n";

    RunSpec part;
    SimResult base = simulate(kernel, part);

    Table t({"design", "partition", "threads", "cycles", "perf",
             "conflict stall cyc", "instr <=1 bank"});
    auto row = [&](const char* label, const SimResult& r) {
        t.addRow({label, r.alloc.partition.str(),
                  std::to_string(r.alloc.launch.threads),
                  std::to_string(r.cycles()),
                  Table::num(static_cast<double>(base.cycles()) /
                                 static_cast<double>(r.cycles()),
                             3),
                  std::to_string(r.sm.conflictPenaltyCycles),
                  Table::num(r.sm.conflictHist.fraction(0) * 100.0, 1) +
                      "%"});
    };
    row("partitioned 384KB", base);

    for (u64 kb : {128ull, 256ull, 384ull}) {
        RunSpec uni;
        uni.design = DesignKind::Unified;
        uni.unifiedCapacity = kb * 1024;
        HistogramKernel k2(bins, scale);
        AllocationDecision d = resolveAllocation(k2.params(), uni);
        if (!d.launch.feasible)
            continue;
        SimResult r = simulate(k2, uni);
        std::string label = "unified " + std::to_string(kb) + "KB";
        row(label.c_str(), r);
    }
    t.print(std::cout);

    std::cout << "\nThe scattered scratchpad increments show the unified "
                 "design's coarser scatter granularity (8 clusters of "
                 "16B vs 32 banks of 4B, paper Section 4.2) in the "
                 "conflict columns.\n";
    return 0;
}
