/**
 * @file
 * Multi-kernel application example (paper Section 4.4): a synthetic
 * "genomics pipeline" launches needle (alignment), then bfs (graph
 * assembly walk), then nn (candidate scoring). Each stage wants a
 * completely different memory split, which is exactly where per-kernel
 * repartitioning of the unified memory shines.
 *
 * Usage:
 *   multi_kernel_app [--scale=0.35] [--capacity-kb=384] [--write-back]
 */

#include <iostream>

#include "common/cli.hh"
#include "common/table.hh"
#include "sim/multi_kernel.hh"

using namespace unimem;

int
main(int argc, char** argv)
{
    CliArgs args(argc, argv);
    double scale = args.getDouble("scale", 0.35);
    u64 capacity =
        static_cast<u64>(args.getInt("capacity-kb", 384)) * 1024;
    WritePolicy policy = args.getBool("write-back", false)
                             ? WritePolicy::WriteBack
                             : WritePolicy::WriteThrough;

    std::vector<KernelStage> stages = {
        {"needle", scale}, {"bfs", scale}, {"nn", scale}};

    std::cout << "genomics pipeline: needle -> bfs -> nn ("
              << capacity / 1024 << "KB unified, "
              << (policy == WritePolicy::WriteBack ? "write-back"
                                                   : "write-through")
              << " cache)\n\n";

    SequenceResult base =
        runSequence(stages, ReconfigPolicy::PartitionedBaseline,
                    capacity, policy);
    SequenceResult stat = runSequence(
        stages, ReconfigPolicy::UnifiedStatic, capacity, policy);
    SequenceResult per = runSequence(
        stages, ReconfigPolicy::UnifiedPerKernel, capacity, policy);

    for (const SequenceResult* seq : {&base, &stat, &per}) {
        std::cout << "--- " << reconfigPolicyName(seq->policy) << " ---\n";
        Table t({"stage", "partition", "threads", "cycles",
                 "reconfig drain"});
        for (const StageResult& st : seq->stages)
            t.addRow({st.benchmark, st.partition.str(),
                      std::to_string(st.threads),
                      std::to_string(st.cycles),
                      std::to_string(st.reconfigCycles)});
        t.print(std::cout);
        std::cout << "total: " << seq->totalCycles << " cycles (speedup "
                  << Table::num(static_cast<double>(base.totalCycles) /
                                    static_cast<double>(seq->totalCycles),
                                3)
                  << "x vs baseline)\n\n";
    }

    std::cout << "Takeaway (Section 4.4): the write-through cache makes "
                 "repartitioning free, so a unified SM can give needle "
                 "its scratchpad, bfs its cache, and nn its tiny "
                 "footprint - in one application.\n";
    return 0;
}
