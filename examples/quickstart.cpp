/**
 * @file
 * Quickstart: run one benchmark on the hard-partitioned baseline and on
 * the unified design, and print the headline comparison the paper makes
 * (performance, chip energy, DRAM traffic).
 *
 * Usage:
 *   quickstart [--benchmark=needle] [--capacity-kb=384] [--scale=1.0]
 *              [--dump-stats]
 */

#include <iostream>

#include "common/cli.hh"
#include "common/table.hh"
#include "kernels/registry.hh"
#include "sim/experiments.hh"

using namespace unimem;

int
main(int argc, char** argv)
{
    CliArgs args(argc, argv);
    std::string name = args.getString("benchmark", "needle");
    u64 capacity = static_cast<u64>(args.getInt("capacity-kb", 384)) * 1024;
    double scale = args.getDouble("scale", 1.0);

    if (findBenchmark(name) == nullptr) {
        std::cerr << "unknown benchmark '" << name << "'; available:\n";
        for (const BenchmarkInfo& info : allBenchmarks())
            std::cerr << "  " << info.name << " ("
                      << categoryName(info.category) << ")\n";
        return 1;
    }

    std::cout << "benchmark: " << name << ", unified capacity: "
              << capacity / 1024 << " KB\n\n";

    SimResult base = runBaseline(name, scale);
    SimResult uni = runUnified(name, scale, capacity);
    Comparison cmp = compare(uni, base);

    auto describe = [](const char* label, const SimResult& r) {
        std::cout << label << ": " << r.alloc.partition.str() << "\n"
                  << "  threads=" << r.alloc.launch.threads
                  << " regs/thread=" << r.alloc.launch.regsPerThread
                  << " ctas=" << r.alloc.launch.ctas << "\n"
                  << "  cycles=" << r.cycles()
                  << " ipc=" << Table::num(r.sm.ipc(), 2)
                  << " dram-sectors=" << r.dramSectors() << "\n";
    };
    describe("partitioned baseline", base);
    describe("unified design     ", uni);

    std::cout << "\nunified vs partitioned:\n"
              << "  speedup      " << Table::num(cmp.speedup, 3) << "x\n"
              << "  energy ratio " << Table::num(cmp.energyRatio, 3)
              << " (lower is better)\n"
              << "  dram ratio   " << Table::num(cmp.dramRatio, 3)
              << " (lower is better)\n";

    if (args.getBool("dump-stats", false)) {
        std::cout << "\n--- full statistics (unified run) ---\n";
        uni.sm.toStatSet().dump(std::cout);
    }
    return 0;
}
